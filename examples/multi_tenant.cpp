// Multi-tenant: four logical clients sharing one card through the
// event-driven CoprocessorServer.
//
//   1. provision the ROM with a service mix (crypto + DSP),
//   2. each client runs a closed loop: hash, encrypt, filter, transform —
//      whatever its role needs — keeping one request in flight,
//   3. the server pipelines them: while client 0's AES owns the fabric,
//      client 1's payload rides the PCI bus, client 2's SHA-256
//      configuration streams through the config engine (overlapped
//      reconfiguration — the device stage is two resources), and client 3
//      queues; the Frame Replacement Table arbitrates whose functions stay
//      resident,
//   4. read per-client latency, the overlap win vs the blocking API, and
//      where requests waited — split into PCI-bus, config-engine and
//      fabric wait, plus the reconfiguration time hidden behind execution.
//
// Build & run:  ./build/multi_tenant
#include <cstdio>
#include <map>
#include <vector>

#include "core/server.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

int main() {
  using aad::algorithms::KernelId;
  namespace core = aad::core;
  namespace workload = aad::workload;

  // 1. One card, one ROM, a mixed service catalog.  Delta reconfiguration
  //    tracks per-frame fabric content so a reload pays only for changed
  //    frames; kAuto lets the MCU pick each function's codec at download
  //    time (trial-compress, model the cold load, choose).
  core::CoprocessorConfig cc;
  cc.mcu.engine.delta_reconfig = true;
  core::AgileCoprocessor card(cc);
  const std::vector<KernelId> mix = {KernelId::kAes128, KernelId::kSha256,
                                     KernelId::kFir16, KernelId::kFft,
                                     KernelId::kCrc32, KernelId::kMd5};
  for (KernelId id : mix) card.download(id, aad::compress::CodecId::kAuto);
  std::printf("provisioned %zu functions; fabric holds %u frames\n",
              mix.size(), card.fabric().geometry().frame_count);

  // 2. Four closed-loop tenants with a shared zipf popularity ranking.
  workload::MultiClientConfig wc;
  wc.clients = 4;
  wc.requests_per_client = 25;
  wc.seed = 2005;
  wc.zipf_s = 1.0;
  wc.payload_blocks = 8;
  wc.mode = workload::ArrivalMode::kClosedLoop;
  wc.mean_think_time = aad::sim::SimTime::us(20);
  for (KernelId id : mix)
    wc.functions.push_back(aad::algorithms::function_id(id));
  const auto trace = workload::make_multi_client(wc);

  // 3. Replay through the server and drain the event queue.
  core::CoprocessorServer server(card);
  workload::replay(server, trace,
                   [](workload::FunctionId fn, std::size_t blocks,
                      std::size_t index) {
                     return aad::algorithms::spec(static_cast<KernelId>(fn))
                         .make_input(blocks, index);
                   });
  server.run();

  // 4. What happened.
  const auto stats = server.stats();
  std::printf("\n%llu requests from %u tenants in %.2f ms of simulated time "
              "(%.0f req/s)\n",
              static_cast<unsigned long long>(stats.completed), wc.clients,
              stats.makespan.milliseconds(), stats.throughput_rps);
  std::printf("latency: p50 %.1f us   p90 %.1f us   p99 %.1f us   "
              "max %.1f us\n",
              stats.latency.p50.microseconds(),
              stats.latency.p90.microseconds(),
              stats.latency.p99.microseconds(),
              stats.latency.max.microseconds());

  struct PerClient {
    std::size_t requests = 0;
    aad::sim::SimTime latency, engine_wait, fabric_wait, bus_wait, hidden;
    std::size_t hits = 0;
  };
  std::map<unsigned, PerClient> tenants;
  for (const core::ServerRequest& r : server.completed()) {
    PerClient& t = tenants[r.client];
    ++t.requests;
    t.latency += r.latency();
    t.engine_wait += r.engine_wait;
    t.fabric_wait += r.fabric_wait;
    t.bus_wait += r.bus_wait;
    t.hidden += r.hidden_reconfig;
    if (r.load.hit) ++t.hits;
  }
  std::puts("\ntenant  requests  mean-latency  config-hits  engine-wait  "
            "fabric-wait  hidden-reconfig");
  for (const auto& [client, t] : tenants)
    std::printf("  %u     %zu        %7.1f us     %zu/%zu        %7.1f us   "
                "%7.1f us   %7.1f us\n",
                client, t.requests,
                t.latency.microseconds() / static_cast<double>(t.requests),
                t.hits, t.requests, t.engine_wait.microseconds(),
                t.fabric_wait.microseconds(), t.hidden.microseconds());
  std::printf("\noverlapped reconfiguration: %llu loads streamed while the "
              "fabric executed, hiding %.1f us of reconfiguration\n",
              static_cast<unsigned long long>(stats.overlapped_loads),
              stats.total_hidden_reconfig.microseconds());

  const auto device = card.stats().device;
  std::printf("\ncard: %llu invocations, %llu reconfigurations, %llu "
              "evictions — tenants contend for residency\n",
              static_cast<unsigned long long>(device.invocations),
              static_cast<unsigned long long>(device.config_misses),
              static_cast<unsigned long long>(device.evictions));
  std::printf("delta reconfiguration: %llu frames skipped by the content "
              "tracker; %llu compressed bytes streamed from ROM\n",
              static_cast<unsigned long long>(stats.frames_skipped_delta),
              static_cast<unsigned long long>(stats.bytes_streamed));
  std::printf("auto codec picks:");
  for (const auto& [codec, picks] : stats.codec_picks)
    std::printf("  %s x%llu", to_string(codec),
                static_cast<unsigned long long>(picks));
  std::puts("");
  std::printf("PCI: %llu DMA grants, %llu had to queue (%.1f us total "
              "arbitration wait)\n",
              static_cast<unsigned long long>(card.bus().stats().grants),
              static_cast<unsigned long long>(
                  card.bus().stats().contended_grants),
              card.bus().stats().queue_delay.microseconds());
  return 0;
}
