// On-demand DSP: a sensor pipeline that alternates between time-domain
// filtering (FIR) and spectral analysis (FFT) phases.
//
// The two kernels together need 22 of 48 frames, so they coexist; a
// periodic "batch analytics" phase additionally wants matmul + sha256 +
// aes128 (36 more frames, 58 total), which forces swapping.  The example shows how phase
// changes amortize reconfiguration: within a phase everything is a config
// hit, and the swap cost is paid once per phase boundary.
//
// Build & run:  ./build/examples/ondemand_dsp
#include <cmath>
#include <cstdio>

#include "core/coprocessor.h"
#include "mcu/report.h"

namespace {

using aad::algorithms::KernelId;

aad::Bytes make_tone_block(std::size_t samples, double freq_fraction,
                           double amplitude) {
  aad::Bytes out(samples * 2);
  for (std::size_t i = 0; i < samples; ++i) {
    const double v = amplitude *
                     std::sin(2.0 * 3.14159265358979 * freq_fraction *
                              static_cast<double>(i));
    const auto s = static_cast<std::int16_t>(v);
    out[2 * i] = static_cast<aad::Byte>(static_cast<std::uint16_t>(s));
    out[2 * i + 1] =
        static_cast<aad::Byte>(static_cast<std::uint16_t>(s) >> 8);
  }
  return out;
}

}  // namespace

int main() {
  aad::core::AgileCoprocessor card;
  for (KernelId id : {KernelId::kFir16, KernelId::kFft, KernelId::kMatMul,
                      KernelId::kSha256, KernelId::kAes128})
    card.download(id);

  std::puts("phase        step  kernel   latency(us)  hit  resident-frames");
  std::puts(std::string(68, '-').c_str());

  auto show = [&](const char* phase, int step,
                  const aad::core::InvokeOutcome& out, const char* kernel) {
    unsigned frames = 0;
    for (const auto& [fn, entry] : card.mcu().frame_table())
      frames += static_cast<unsigned>(entry.frames.size());
    std::printf("%-12s %-5d %-8s %-12.1f %-4s %u/48\n", phase, step, kernel,
                out.latency.microseconds(),
                out.device.load.hit ? "yes" : "NO", frames);
  };

  for (int cycle = 0; cycle < 2; ++cycle) {
    std::printf("frame map: %s\n", aad::mcu::frame_map(card.mcu()).c_str());
    // --- streaming phase: FIR filter then FFT on each block --------------
    for (int step = 0; step < 3; ++step) {
      const auto block =
          make_tone_block(256, /*freq=*/0.05 + 0.1 * step, 12000.0);
      const auto filtered = card.invoke(KernelId::kFir16, block);
      show("stream", step, filtered, "fir16");
      const auto spectrum = card.invoke(KernelId::kFft, filtered.output);
      show("stream", step, spectrum, "fft");
    }
    // --- analytics phase: correlation matrix + integrity digest ----------
    for (int step = 0; step < 2; ++step) {
      const auto& mm = aad::algorithms::spec(KernelId::kMatMul);
      const auto a = card.invoke(KernelId::kMatMul,
                                 mm.make_input(16, 77 + step));
      show("analytics", step, a, "matmul");
      const auto d = card.invoke(KernelId::kSha256, a.output);
      show("analytics", step, d, "sha256");
      // Encrypt the digest for the uplink report (key || digest-block).
      const auto& aes = aad::algorithms::spec(KernelId::kAes128);
      aad::Bytes report = aes.make_input(1, 5);  // 16B key + 16B block
      std::copy(d.output.begin(), d.output.begin() + 16, report.begin() + 16);
      const auto e = card.invoke(KernelId::kAes128, report);
      show("analytics", step, e, "aes128");
    }
  }

  const auto stats = card.stats();
  std::printf("\nphase working sets swapped on demand: %llu evictions, "
              "%llu frames reconfigured, %.1f%% hit rate, simulated time "
              "%.2f ms\n",
              static_cast<unsigned long long>(stats.device.evictions),
              static_cast<unsigned long long>(stats.device.frames_configured),
              100.0 * static_cast<double>(stats.device.config_hits) /
                  static_cast<double>(stats.device.invocations),
              stats.uptime.milliseconds());
  return 0;
}
