// Fleet: sixteen clients spread across four coprocessor cards by a
// residency-affinity dispatcher.
//
//   1. provision a 4-card fleet (every card: own PCI bus, MCU, fabric —
//      one shared simulated clock),
//   2. replay a zipf-skewed closed-loop trace through the fleet,
//   3. the dispatcher routes each arriving request to a card that already
//      holds the function's configuration, so the fleet behaves like a
//      partitioned configuration cache: SHA-256 lives on card 0, AES on
//      card 1, ... and reconfigurations mostly vanish,
//   4. compare against round-robin on the identical trace, then read the
//      per-card breakdown.
//
// Build & run:  ./build/fleet
#include <cstdio>

#include "core/fleet.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace {

aad::core::FleetStats run_policy(aad::core::DispatchPolicy policy,
                                 const aad::workload::MultiClientTrace& trace) {
  aad::core::FleetConfig fc;
  fc.cards = 4;
  fc.policy = policy;
  aad::core::CoprocessorFleet fleet(fc);
  fleet.download_all();
  aad::workload::replay(
      fleet, trace,
      [](aad::workload::FunctionId fn, std::size_t blocks, std::size_t index) {
        return aad::algorithms::bank_input(fn, blocks, index);
      });
  fleet.run();
  return fleet.stats();
}

}  // namespace

int main() {
  namespace core = aad::core;
  namespace workload = aad::workload;

  // 1+2. Sixteen closed-loop clients, zipf(1.1) over the whole catalog.
  workload::MultiClientConfig wc;
  wc.clients = 16;
  wc.requests_per_client = 20;
  wc.seed = 2005;
  wc.zipf_s = 1.1;
  wc.payload_blocks = 4;
  wc.mode = workload::ArrivalMode::kClosedLoop;
  wc.functions = aad::algorithms::function_bank();
  const auto trace = workload::make_multi_client(wc);
  std::printf("trace: %zu requests from %u clients over %zu functions\n",
              trace.total_requests(), wc.clients, wc.functions.size());

  // 3+4. The same trace under both dispatch policies.
  const auto rr = run_policy(core::DispatchPolicy::kRoundRobin, trace);
  const auto aff = run_policy(core::DispatchPolicy::kResidencyAffinity, trace);

  std::puts("\npolicy               hit%   req/s    p50       p99");
  for (const auto* s : {&rr, &aff})
    std::printf("%-20s %4.1f   %6.0f   %6.1f us %8.1f us\n",
                core::to_string(s == &rr
                                    ? core::DispatchPolicy::kRoundRobin
                                    : core::DispatchPolicy::kResidencyAffinity),
                100.0 * s->hit_rate, s->throughput_rps,
                s->latency.p50.microseconds(),
                s->latency.p99.microseconds());
  std::printf("\naffinity routed %llu requests to a resident card, fell back "
              "on %llu cold ones\n",
              static_cast<unsigned long long>(aff.affinity_routed),
              static_cast<unsigned long long>(aff.affinity_fallback));

  std::puts("\nper-card breakdown under residency-affinity:");
  std::puts("card  dispatched  hit%   resident-fns  p99");
  for (const auto& card : aff.cards)
    std::printf("  %u   %6llu      %5.1f  %6zu        %8.1f us\n", card.card,
                static_cast<unsigned long long>(card.dispatched),
                100.0 * card.hit_rate, card.resident,
                card.server.latency.p99.microseconds());

  std::printf("\nthe fleet cleared the trace %.2fx faster than round-robin "
              "dispatch on the same four cards\n",
              aff.throughput_rps / rr.throughput_rps);
  return 0;
}
