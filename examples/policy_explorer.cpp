// Policy explorer: a small CLI for experimenting with the mini-OS knobs —
// replacement policy, allocation strategy, trace shape and length.
//
// Usage:
//   policy_explorer [policy] [trace] [length]
//     policy: lru | fifo | lfu | random | belady | all   (default all)
//     trace:  zipf | uniform | rr | markov | phased       (default zipf)
//     length: request count                               (default 300)
//
// Example:
//   ./build/examples/policy_explorer all markov 500
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/coprocessor.h"
#include "workload/trace.h"

namespace {

using namespace aad;
using algorithms::KernelId;

const std::vector<KernelId> kBank = {
    KernelId::kAes128, KernelId::kDes,    KernelId::kXtea,
    KernelId::kSha1,   KernelId::kSha256, KernelId::kMd5,
    KernelId::kMatMul, KernelId::kFft,    KernelId::kFir16};

workload::Trace build_trace(const std::string& shape, std::size_t length) {
  workload::TraceConfig config;
  for (KernelId id : kBank)
    config.functions.push_back(algorithms::function_id(id));
  config.length = length;
  config.seed = 17;
  if (shape == "uniform") return workload::make_uniform(config);
  if (shape == "rr") return workload::make_round_robin(config);
  if (shape == "markov") return workload::make_markov(config, 0.8);
  if (shape == "phased") return workload::make_phased(config, 3, 40);
  return workload::make_zipf(config, 1.2);
}

void run_policy(mcu::PolicyKind kind, const workload::Trace& trace) {
  core::CoprocessorConfig config;
  config.mcu.policy = kind;
  core::AgileCoprocessor card(config);
  for (KernelId id : kBank) card.download(id);
  if (kind == mcu::PolicyKind::kBelady)
    card.mcu().policy().set_future(workload::function_sequence(trace));

  double total_us = 0;
  for (const auto& request : trace) {
    const auto& spec =
        algorithms::spec(static_cast<KernelId>(request.function));
    total_us +=
        card.invoke_function(request.function, spec.make_input(1, 1))
            .latency.microseconds();
  }
  const auto& stats = card.stats().device;
  std::printf("%-8s hit-rate %5.1f%%   evictions %4llu   frames %5llu   "
              "mean latency %7.1f us\n",
              to_string(kind),
              100.0 * static_cast<double>(stats.config_hits) /
                  static_cast<double>(stats.invocations),
              static_cast<unsigned long long>(stats.evictions),
              static_cast<unsigned long long>(stats.frames_configured),
              total_us / static_cast<double>(trace.size()));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string policy = argc > 1 ? argv[1] : "all";
  const std::string shape = argc > 2 ? argv[2] : "zipf";
  const std::size_t length =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 300;

  const auto trace = build_trace(shape, length);
  std::printf("trace: %s, %zu requests over %zu kernels "
              "(85 frames of demand on a 48-frame device)\n\n",
              shape.c_str(), trace.size(), kBank.size());

  const std::vector<std::pair<std::string, mcu::PolicyKind>> kinds = {
      {"belady", mcu::PolicyKind::kBelady}, {"lru", mcu::PolicyKind::kLru},
      {"lfu", mcu::PolicyKind::kLfu},       {"fifo", mcu::PolicyKind::kFifo},
      {"random", mcu::PolicyKind::kRandom}};
  bool matched = false;
  for (const auto& [name, kind] : kinds) {
    if (policy == "all" || policy == name) {
      run_policy(kind, trace);
      matched = true;
    }
  }
  if (!matched) {
    std::fprintf(stderr,
                 "unknown policy '%s' (use lru|fifo|lfu|random|belady|all)\n",
                 policy.c_str());
    return 1;
  }
  return 0;
}
