// Quickstart: the five-minute tour of the Agile Algorithm-On-Demand
// co-processor.
//
//   1. create a card,
//   2. download two functions into its ROM (compressed bitstreams),
//   3. invoke them on demand — the first call partially reconfigures the
//      FPGA, the second is a config hit,
//   4. read the latency breakdown and device statistics.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/coprocessor.h"

int main() {
  using aad::algorithms::KernelId;

  // 1. A default card: 48-frame / 16-CLB-row fabric, PCI 32/33, 66 MHz MCU.
  aad::core::AgileCoprocessor card;

  // 2. Provision the ROM over PCI.  Bitstreams are compressed with the
  //    frame-delta codec (the paper's "exploit CLB symmetry" idea).
  const auto sha = card.download(KernelId::kSha256);
  const auto crc = card.download(KernelId::kCrc32);
  std::printf("provisioned ROM: %s (%u frames, %u B compressed), "
              "%s (%u frames, %u B compressed)\n",
              sha.name.c_str(), sha.frames, sha.compressed_size,
              crc.name.c_str(), crc.frames, crc.compressed_size);

  // 3. Invoke on demand.  Input/output formats are per kernel; SHA-256
  //    hashes raw bytes.
  const std::string message = "agile algorithm-on-demand co-processor";
  const aad::ByteSpan payload(
      reinterpret_cast<const aad::Byte*>(message.data()), message.size());

  const auto cold = card.invoke(KernelId::kSha256, payload);
  std::printf("\nSHA-256 (cold): %.1f us end-to-end, of which %.1f us was "
              "streaming partial reconfiguration of %u frames\n",
              cold.latency.microseconds(),
              cold.device.load.reconfig_time.microseconds(),
              cold.device.load.frames_configured);

  const auto warm = card.invoke(KernelId::kSha256, payload);
  std::printf("SHA-256 (warm): %.1f us — config hit, no reconfiguration\n",
              warm.latency.microseconds());

  std::printf("digest: ");
  for (aad::Byte b : warm.output) std::printf("%02x", b);
  std::printf("\n");

  // The CRC32 kernel is a *real netlist*: it was technology-mapped to
  // LUT4s, placed into frames, and the simulated fabric executes it from
  // the configuration plane, one byte per cycle.
  const auto crc_result = card.invoke(KernelId::kCrc32, payload);
  std::printf("\nCRC-32 via the fabric (%lld cycles on the 100 MHz fabric): "
              "0x%02x%02x%02x%02x\n",
              static_cast<long long>(crc_result.device.exec_cycles),
              crc_result.output[3], crc_result.output[2],
              crc_result.output[1], crc_result.output[0]);

  // Cross-check against the host-only software baseline.
  const auto host = card.run_on_host(KernelId::kCrc32, payload);
  std::printf("host baseline agrees: %s\n",
              host.output == crc_result.output ? "yes" : "NO (bug!)");

  // 4. Statistics.
  const auto stats = card.stats();
  std::printf("\ndevice stats: %llu invocations, %llu config hits, "
              "%llu misses, %llu frames configured\n",
              static_cast<unsigned long long>(stats.device.invocations),
              static_cast<unsigned long long>(stats.device.config_hits),
              static_cast<unsigned long long>(stats.device.config_misses),
              static_cast<unsigned long long>(stats.device.frames_configured));
  std::printf("PCI: %llu B to card, %llu B from card, bus busy %.1f us\n",
              static_cast<unsigned long long>(stats.bus.bytes_to_device),
              static_cast<unsigned long long>(stats.bus.bytes_from_device),
              stats.bus.bus_time.microseconds());
  std::printf("simulated uptime: %.2f ms\n", stats.uptime.milliseconds());
  return 0;
}
