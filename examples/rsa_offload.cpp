// RSA offload: the workload class where a PCI 32/33 co-processor genuinely
// beats the host.
//
// Streaming kernels (ciphers, hashes) are bus-bound on a 133 MB/s PCI slot,
// but modular exponentiation moves a few hundred bytes and computes for
// milliseconds — exactly the profile the algorithm-agile crypto engines of
// the paper's refs [1][2] targeted.  This example runs a small TLS-style
// handshake farm: the card grinds 1024-bit private-key operations while the
// cheap per-connection symmetric work stays on the host.
//
// Build & run:  ./build/examples/rsa_offload
#include <cstdio>

#include "core/coprocessor.h"

int main() {
  using aad::algorithms::KernelId;

  aad::core::AgileCoprocessor card;
  card.download(KernelId::kModExp);

  const auto& spec = aad::algorithms::spec(KernelId::kModExp);

  std::puts("handshake  width  host(ms)   card(ms)   speedup  hit");
  std::puts(std::string(60, '-').c_str());

  double host_total = 0;
  double card_total = 0;
  for (int handshake = 0; handshake < 6; ++handshake) {
    // blocks=4 -> 1024-bit operands (base || exponent || modulus).
    const aad::Bytes op =
        spec.make_input(4, 1000 + static_cast<std::uint64_t>(handshake));
    const auto hw = card.invoke(KernelId::kModExp, op);
    const auto sw = card.run_on_host(KernelId::kModExp, op);
    if (hw.output != sw.output) {
      std::puts("MISMATCH — modexp kernel diverged from host result");
      return 1;
    }
    host_total += sw.latency.milliseconds();
    card_total += hw.latency.milliseconds();
    std::printf("%-10d %-6d %-10.2f %-10.2f %-8.2f %s\n", handshake, 1024,
                sw.latency.milliseconds(), hw.latency.milliseconds(),
                sw.latency.milliseconds() / hw.latency.milliseconds(),
                hw.device.load.hit ? "yes" : "no");
  }

  std::printf("\ntotal: host %.2f ms vs card %.2f ms -> %.2fx; the first "
              "call amortizes %u frames of partial reconfiguration\n",
              host_total, card_total, host_total / card_total,
              spec.nominal_frames);
  std::printf("bus payload per op: %zu B in / %zu B out — compute density "
              "is what beats the PCI wall\n",
              static_cast<std::size_t>(384), static_cast<std::size_t>(128));
  return 0;
}
