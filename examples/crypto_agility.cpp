// Crypto agility: the workload the paper's lineage targets (refs [1] and
// [2] are algorithm-agile crypto co-processors for IPSec-era stacks).
//
// A gateway terminates sessions that negotiated different transforms
// (AES-128, DES, XTEA for confidentiality; SHA-1, SHA-256, MD5 for
// integrity).  The whole transform bank does not fit the FPGA at once
// (49 frames of demand on a 48-frame device), so the mini-OS swaps
// functions on demand with LRU replacement — the co-processor stays
// "algorithm agile" without host intervention.
//
// Build & run:  ./build/examples/crypto_agility
#include <cstdio>
#include <map>

#include "core/coprocessor.h"
#include "workload/trace.h"

namespace {

using aad::algorithms::KernelId;

struct Session {
  const char* peer;
  KernelId cipher;
  KernelId digest;
  std::size_t packets;
};

}  // namespace

int main() {
  aad::core::CoprocessorConfig config;
  config.mcu.policy = aad::mcu::PolicyKind::kLru;  // the paper's policy
  aad::core::AgileCoprocessor card(config);

  for (KernelId id : {KernelId::kAes128, KernelId::kDes, KernelId::kXtea,
                      KernelId::kSha1, KernelId::kSha256, KernelId::kMd5})
    card.download(id);

  // Three tunnels with different negotiated transforms, serviced in an
  // interleaved round-robin (the adversarial case for a fixed-function
  // accelerator, the bread-and-butter case for an agile one).
  const Session sessions[] = {
      {"10.0.0.2  (ESP aes128 + sha256)", KernelId::kAes128,
       KernelId::kSha256, 6},
      {"10.0.0.7  (ESP des    + sha1)", KernelId::kDes, KernelId::kSha1, 6},
      {"10.0.0.9  (ESP xtea   + md5)", KernelId::kXtea, KernelId::kMd5, 6},
  };

  std::puts("packet  session                             cipher  digest  "
            "latency(us)  reconfig(us)");
  std::puts(std::string(96, '-').c_str());

  // Packets arrive in per-tunnel bursts (TCP windows, VPN bulk transfers),
  // so each session's transforms are loaded once per burst and then hit.
  std::map<const char*, std::uint64_t> seq;
  double total_us = 0;
  std::size_t packet_count = 0;
  for (std::size_t round = 0; round < 2; ++round) {
    for (const Session& s : sessions) {
      for (std::size_t burst = 0; burst < s.packets / 2; ++burst) {
        // Encrypt a 256-byte payload then hash the ciphertext.
        const auto& cipher_spec = aad::algorithms::spec(s.cipher);
        const aad::Bytes packet =
            cipher_spec.make_input(256 / 16, 1000 * round + seq[s.peer]);
        const auto enc = card.invoke(s.cipher, packet);
        const auto mac = card.invoke(s.digest, enc.output);
        const double us =
            enc.latency.microseconds() + mac.latency.microseconds();
        total_us += us;
        ++packet_count;
        const double reconfig_us =
            enc.device.load.reconfig_time.microseconds() +
            mac.device.load.reconfig_time.microseconds();
        std::printf("%-7llu %-35s %-7s %-7s %-12.1f %.1f\n",
                    static_cast<unsigned long long>(seq[s.peer]++), s.peer,
                    aad::algorithms::spec(s.cipher).name.c_str(),
                    aad::algorithms::spec(s.digest).name.c_str(), us,
                    reconfig_us);
      }
    }
  }

  const auto stats = card.stats();
  std::printf("\n%llu transform invocations, %.1f%% config hits, "
              "%llu evictions (LRU), mean %.1f us/packet\n",
              static_cast<unsigned long long>(stats.device.invocations),
              100.0 * static_cast<double>(stats.device.config_hits) /
                  static_cast<double>(stats.device.invocations),
              static_cast<unsigned long long>(stats.device.evictions),
              total_us / static_cast<double>(packet_count));
  std::printf("frames configured over the run: %llu "
              "(full-device reloads would have cost %llu)\n",
              static_cast<unsigned long long>(stats.device.frames_configured),
              static_cast<unsigned long long>(
                  stats.device.config_misses *
                  card.fabric().geometry().frame_count));
  return 0;
}
