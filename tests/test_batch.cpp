// Tests for same-function request batching (core/batch_policy.h): the
// none policy serves every request as a batch of one (bit-exact with the
// unbatched server), greedy drains the same-function queue behind one
// decode + load, the windowed policy degenerates to no-batch on a lone
// request and coalesces late arrivals inside its horizon, the batch's pin
// reference survives an overlapped load's pin/unpin cycle (eviction
// pressure mid-batch), and a single-card fleet with batching is bit-exact
// with a bare CoprocessorServer.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/fleet.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace aad::core {
namespace {

using algorithms::KernelId;

Bytes kernel_input(KernelId id, std::size_t blocks, std::uint64_t seed) {
  return algorithms::spec(id).make_input(blocks, seed);
}

Bytes request_input(workload::FunctionId fn, std::size_t blocks,
                    std::size_t index) {
  return algorithms::bank_input(fn, blocks, index);
}

workload::MultiClientTrace bursty_trace(std::uint64_t seed) {
  workload::BurstyConfig bc;
  bc.clients = 4;
  bc.bursts = 3;
  bc.burst_size = 4;
  bc.functions = algorithms::function_bank();
  bc.seed = seed;
  bc.payload_blocks = 2;
  bc.zipf_s = 0.5;
  bc.mean_intra_gap = sim::SimTime::us(20);
  bc.mean_inter_gap = sim::SimTime::us(150);
  return workload::make_bursty(bc);
}

TEST(BatchPolicyTest, ModeNamesRoundTrip) {
  EXPECT_STREQ(to_string(BatchMode::kNone), "none");
  EXPECT_STREQ(to_string(BatchMode::kGreedy), "greedy");
  EXPECT_STREQ(to_string(BatchMode::kWindowed), "windowed");
}

TEST(BatchPolicyTest, NonePolicyServesEveryRequestAsBatchOfOne) {
  AgileCoprocessor card;
  card.download_all();
  CoprocessorServer server(card);  // default config: BatchMode::kNone
  ASSERT_EQ(server.config().batch.mode, BatchMode::kNone);
  workload::replay(server, bursty_trace(11), request_input);
  server.run();

  const auto stats = server.stats();
  ASSERT_GT(stats.completed, 0u);
  EXPECT_EQ(stats.batches, stats.completed);  // one commit per request
  EXPECT_EQ(stats.coalesced_loads, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_size, 1.0);
  EXPECT_EQ(stats.total_amortized_reconfig, sim::SimTime::zero());
  for (const ServerRequest& r : server.completed()) {
    EXPECT_EQ(r.batch_size, 1u);
    EXPECT_FALSE(r.coalesced_load);
  }
}

TEST(BatchPolicyTest, GreedyDrainsSameFunctionQueueBehindOneLoad) {
  // A long COLD blocker owns the config engine (18-frame ModExp load) and
  // then the fabric while four cold SHA-256 requests queue up; greedy
  // drains all four into one batch: one leader paying the decode + load,
  // three coalesced followers running back-to-back fabric windows.
  const Bytes blocker = kernel_input(KernelId::kModExp, 8, 1);
  AgileCoprocessor card;
  card.download(KernelId::kModExp);
  card.download(KernelId::kSha256);
  ServerConfig sc;
  sc.batch.mode = BatchMode::kGreedy;
  CoprocessorServer server(card, sc);
  server.submit(0, KernelId::kModExp, blocker);
  std::vector<Bytes> inputs;
  for (unsigned c = 0; c < 4; ++c) {
    inputs.push_back(kernel_input(KernelId::kSha256, 4, 10 + c));
    server.submit(1 + c, KernelId::kSha256, inputs.back());
  }
  server.run();

  std::vector<const ServerRequest*> batch;
  for (const ServerRequest& r : server.completed())
    if (r.function == algorithms::function_id(KernelId::kSha256))
      batch.push_back(&r);
  ASSERT_EQ(batch.size(), 4u);
  std::sort(batch.begin(), batch.end(),
            [](const ServerRequest* a, const ServerRequest* b) {
              return a->fabric_start < b->fabric_start;
            });

  const ServerRequest* leader = batch.front();
  EXPECT_FALSE(leader->coalesced_load);
  EXPECT_FALSE(leader->load.hit);  // the one real load
  EXPECT_GT(leader->prepare_time, sim::SimTime::zero());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i]->batch_id, leader->batch_id);
    EXPECT_EQ(batch[i]->batch_size, 4u);
    if (i > 0) {
      EXPECT_TRUE(batch[i]->coalesced_load);
      EXPECT_TRUE(batch[i]->load.hit);  // rode the leader's load
      EXPECT_EQ(batch[i]->decode_time, sim::SimTime::zero());
      EXPECT_EQ(batch[i]->prepare_time, sim::SimTime::zero());
      // Back-to-back fabric windows: no gap behind the predecessor.
      EXPECT_EQ(batch[i]->fabric_start,
                batch[i - 1]->fabric_start + batch[i - 1]->execute_time);
    }
    // Outputs stay bit-exact with the host software baseline.
    EXPECT_EQ(batch[i]->output,
              algorithms::spec(KernelId::kSha256)
                  .software(inputs[batch[i]->client - 1]));
  }

  const auto stats = server.stats();
  EXPECT_EQ(stats.coalesced_loads, 3u);
  EXPECT_EQ(stats.total_amortized_reconfig, leader->prepare_time * 3);
}

TEST(BatchPolicyTest, WindowExpiryWithSingleRequestDegeneratesToNoBatch) {
  // One lone request under the windowed policy: nothing coalesces, the
  // hold expires, and the request commits as a batch of one — delayed by
  // exactly the window, never starved.
  const Bytes input = kernel_input(KernelId::kSha256, 8, 5);
  const auto run_once = [&](BatchMode mode, sim::SimTime window) {
    AgileCoprocessor card;
    card.download(KernelId::kSha256);
    ServerConfig sc;
    sc.batch.mode = mode;
    sc.batch.window = window;
    CoprocessorServer server(card, sc);
    server.submit(0, KernelId::kSha256, input);
    server.run();
    return server.completed().front();
  };

  const sim::SimTime window = sim::SimTime::us(40);
  const ServerRequest none = run_once(BatchMode::kNone, window);
  const ServerRequest windowed = run_once(BatchMode::kWindowed, window);

  EXPECT_EQ(windowed.batch_size, 1u);
  EXPECT_FALSE(windowed.coalesced_load);
  // The only difference is the hold: the engine window starts one horizon
  // later, and everything downstream shifts rigidly with it.
  EXPECT_EQ(windowed.device_start, none.device_start + window);
  EXPECT_EQ(windowed.complete_time, none.complete_time + window);
  EXPECT_EQ(windowed.prepare_time, none.prepare_time);
  EXPECT_EQ(windowed.execute_time, none.execute_time);
  EXPECT_EQ(windowed.output, none.output);
}

TEST(BatchPolicyTest, WindowedCoalescesArrivalsInsideTheHorizon) {
  // Request 1 reaches the device and the windowed policy holds; request 2
  // for the same function arrives inside the horizon and joins the batch.
  const Bytes input_a = kernel_input(KernelId::kSha256, 8, 6);
  const Bytes input_b = kernel_input(KernelId::kSha256, 8, 7);
  AgileCoprocessor card;
  card.download(KernelId::kSha256);
  ServerConfig sc;
  sc.batch.mode = BatchMode::kWindowed;
  sc.batch.window = sim::SimTime::us(200);
  CoprocessorServer server(card, sc);
  server.submit(0, KernelId::kSha256, input_a);
  server.submit_function_at(server.now() + sim::SimTime::us(50), 1,
                            algorithms::function_id(KernelId::kSha256),
                            input_b);
  server.run();

  ASSERT_EQ(server.completed().size(), 2u);
  const auto stats = server.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.coalesced_loads, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_size, 2.0);
  for (const ServerRequest& r : server.completed()) {
    EXPECT_EQ(r.batch_size, 2u);
    EXPECT_EQ(r.output, algorithms::spec(KernelId::kSha256)
                            .software(r.client == 0 ? input_a : input_b));
  }
}

TEST(BatchPolicyTest, WindowedHoldSurvivesThePickMovingToAnotherFunction) {
  // Composing windowed batching with a resident-first device scheduler:
  // cold MatMul opens a hold, then a resident SHA-256 request arrives and
  // resident-first re-picks SHA-256 mid-hold, opening a second hold.
  // MatMul's horizon anchor must survive that interleaving — measured
  // from the FIRST time it became the pick — and its hold must expire on
  // its own clock even while SHA-256 is the pick: MatMul commits the
  // instant its window runs out, instead of waiting for the pick to
  // bounce back (which would let every resident arrival defer it by
  // another full window, unbounded).
  AgileCoprocessor card;
  card.download(KernelId::kSha256);
  card.download(KernelId::kMatMul);
  const auto sha = algorithms::function_id(KernelId::kSha256);
  const auto matmul = algorithms::function_id(KernelId::kMatMul);

  ServerConfig sc;
  sc.device_policy = DevicePolicy::kResidentFirst;
  sc.batch.mode = BatchMode::kWindowed;
  sc.batch.window = sim::SimTime::us(100);
  CoprocessorServer server(card, sc);
  // Warm SHA-256 so resident-first has something to jump the queue with.
  server.submit(0, KernelId::kSha256, kernel_input(KernelId::kSha256, 2, 1));
  server.run();

  server.submit(1, KernelId::kMatMul, kernel_input(KernelId::kMatMul, 2, 2));
  server.submit_function_at(server.now() + sim::SimTime::us(30), 2, sha,
                            kernel_input(KernelId::kSha256, 2, 3));
  server.run();

  const ServerRequest* mm = nullptr;
  const ServerRequest* warm_sha = nullptr;
  for (const ServerRequest& r : server.completed()) {
    if (r.function == matmul) mm = &r;
    if (r.client == 2 && r.function == sha) warm_sha = &r;
  }
  ASSERT_NE(mm, nullptr);
  ASSERT_NE(warm_sha, nullptr);
  // SHA-256 reached the device later and was the resident-first pick when
  // MatMul's horizon ran out.
  EXPECT_GT(warm_sha->device_ready, mm->device_ready);
  // MatMul commits exactly one window after it FIRST became the pick —
  // its anchor survived SHA-256 stealing the pick, and its expiry
  // overrode SHA-256's still-open hold.
  EXPECT_EQ(mm->device_start, mm->device_ready + sc.batch.window);
  // SHA-256's own expired hold then takes the engine the moment MatMul's
  // engine window releases it.
  EXPECT_EQ(warm_sha->device_start, mm->device_start + mm->prepare_time);
}

TEST(BatchPolicyTest, EvictionPressureMidBatchKeepsTheFunctionPinned) {
  // A three-request SHA-256 batch owns the fabric; mid-batch, a cold
  // MatMul load streams through the engine (overlapped reconfiguration)
  // on a full device, forcing the eviction loop.  The overlapped load's
  // own PinGuard pins SHA-256 and releases it when the load commits — and
  // because Mcu pins are refcounted, the BATCH's reference must survive
  // that release, keeping SHA-256 resident until its last window retires.
  AgileCoprocessor card;
  card.download(KernelId::kSha256);   // 10 frames
  card.download(KernelId::kAes128);   // 12 frames
  card.download(KernelId::kFft);      // 16 frames
  card.download(KernelId::kMatMul);   // 14 frames: 38 resident + 14 > 48
  const auto sha = algorithms::function_id(KernelId::kSha256);
  const auto matmul = algorithms::function_id(KernelId::kMatMul);

  ServerConfig sc;
  sc.batch.mode = BatchMode::kGreedy;
  CoprocessorServer server(card, sc);
  // Make AES + FFT resident so MatMul's load has eviction candidates.
  server.submit(0, KernelId::kAes128, kernel_input(KernelId::kAes128, 2, 1));
  server.submit(0, KernelId::kFft, kernel_input(KernelId::kFft, 2, 2));
  server.run();

  // The batch: three long SHA-256 requests (big payloads keep the fabric
  // busy while the MatMul load streams).
  std::vector<Bytes> sha_inputs;
  for (unsigned c = 0; c < 3; ++c) {
    sha_inputs.push_back(kernel_input(KernelId::kSha256, 256, 20 + c));
    server.submit(1 + c, KernelId::kSha256, sha_inputs.back());
  }
  const Bytes mm_input = kernel_input(KernelId::kMatMul, 2, 9);
  server.submit(4, KernelId::kMatMul, mm_input);

  // Step the event loop until MatMul's overlapped load has committed (its
  // PinGuard has pinned and unpinned SHA-256 by then): the batch's own
  // reference must still hold.
  bool observed = false;
  for (int step = 0; step < 10000 && !observed; ++step) {
    server.run_until(server.now() + sim::SimTime::us(20));
    if (card.mcu().is_resident(matmul) && server.in_flight() > 0) {
      EXPECT_TRUE(card.mcu().is_pinned(sha))
          << "batch pin lost before the last window retired";
      EXPECT_TRUE(card.mcu().is_resident(sha));
      observed = true;
    }
  }
  ASSERT_TRUE(observed) << "MatMul load never committed mid-batch";
  server.run();

  // The load had to evict on a full device — and could not touch the
  // pinned batch function.
  ASSERT_EQ(server.completed().size(), 6u);
  for (const ServerRequest& r : server.completed()) {
    if (r.function == matmul) {
      EXPECT_GE(r.load.evictions, 1u);
    }
    if (r.function == sha) {
      EXPECT_EQ(r.output,
                algorithms::spec(KernelId::kSha256)
                    .software(sha_inputs[r.client - 1]));
    }
  }
  EXPECT_TRUE(card.mcu().is_resident(sha));
  // Every reference was released: the batch retired, the guards unwound.
  EXPECT_EQ(card.mcu().pinned_count(), 0u);
}

TEST(BatchPolicyTest, SingleCardFleetWithBatchingIsBitExactWithServer) {
  // FleetConfig::server threads the batch policy through to every shard;
  // a one-card fleet running greedy batching must reproduce the bare
  // server's timings event for event.
  const auto trace = bursty_trace(23);
  ServerConfig sc;
  sc.batch.mode = BatchMode::kGreedy;

  AgileCoprocessor card;
  card.download_all();
  CoprocessorServer server(card, sc);
  workload::replay(server, trace, request_input);
  server.run();

  FleetConfig fc;
  fc.cards = 1;
  fc.policy = DispatchPolicy::kResidencyAffinity;
  fc.server = sc;
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  workload::replay(fleet, trace, request_input);
  fleet.run();

  ASSERT_EQ(fleet.server(0).config().batch.mode, BatchMode::kGreedy);
  const auto& direct = server.completed();
  const auto& sharded = fleet.server(0).completed();
  ASSERT_EQ(direct.size(), sharded.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].client, sharded[i].client);
    EXPECT_EQ(direct[i].function, sharded[i].function);
    EXPECT_EQ(direct[i].output, sharded[i].output);
    EXPECT_EQ(direct[i].submit_time, sharded[i].submit_time);
    EXPECT_EQ(direct[i].complete_time, sharded[i].complete_time);
    EXPECT_EQ(direct[i].batch_id, sharded[i].batch_id);
    EXPECT_EQ(direct[i].batch_size, sharded[i].batch_size);
    EXPECT_EQ(direct[i].coalesced_load, sharded[i].coalesced_load);
  }
  const auto a = server.stats();
  const auto b = fleet.stats();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.coalesced_loads, b.coalesced_loads);
  EXPECT_EQ(a.total_amortized_reconfig, b.total_amortized_reconfig);
}

TEST(BatchPolicyTest, OpenBatchRoutingSteersSameFunctionToTheHoldingCard) {
  // Card 0 starts a windowed hold for SHA-256; even once its queue is
  // longer than card 1's, the affinity router keeps steering SHA-256
  // arrivals to card 0 — they join the open batch and share its load.
  FleetConfig fc;
  fc.cards = 2;
  fc.policy = DispatchPolicy::kResidencyAffinity;
  fc.server.batch.mode = BatchMode::kWindowed;
  fc.server.batch.window = sim::SimTime::ms(5);  // hold long enough to probe
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  const auto sha = algorithms::function_id(KernelId::kSha256);

  fleet.submit(0, KernelId::kSha256, kernel_input(KernelId::kSha256, 4, 1));
  // Step until the request reaches card 0's device stage and the windowed
  // policy opens the hold.
  bool open = false;
  for (int step = 0; step < 10000 && !open; ++step) {
    fleet.run_until(fleet.now() + sim::SimTime::us(5));
    open = fleet.server(0).open_batch_for(sha);
  }
  ASSERT_TRUE(open) << "windowed policy never opened a batch hold";

  // The open batch outranks least-queued: card 0 wins for SHA-256 even
  // with the deeper queue, while other functions still balance away.
  EXPECT_EQ(fleet.preview_card(sha), 0u);
  const auto id_b = fleet.submit(1, KernelId::kSha256,
                                 kernel_input(KernelId::kSha256, 4, 2));
  (void)id_b;
  fleet.run();

  const auto stats = fleet.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.coalesced_loads, 1u);  // the second request joined
  EXPECT_EQ(stats.cards[0].server.completed, 2u);
  EXPECT_EQ(stats.cards[1].server.completed, 0u);
}

}  // namespace
}  // namespace aad::core
