// Tests for the golden software implementations: published test vectors for
// the crypto/hash kernels, algebraic self-checks for the numeric kernels.
#include <gtest/gtest.h>

#include <string>

#include "algorithms/aes.h"
#include "algorithms/bignum.h"
#include "algorithms/des.h"
#include "algorithms/fft.h"
#include "algorithms/fir.h"
#include "algorithms/matmul.h"
#include "algorithms/md5.h"
#include "algorithms/sha1.h"
#include "algorithms/sha256.h"
#include "algorithms/xtea.h"
#include "common/prng.h"

namespace aad::algorithms {
namespace {

Bytes from_hex(const std::string& hex) {
  Bytes out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(static_cast<Byte>(
        std::stoi(hex.substr(i, 2), nullptr, 16)));
  return out;
}

std::string to_hex(ByteSpan data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (Byte b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

ByteSpan span_of(const std::string& s) {
  return ByteSpan(reinterpret_cast<const Byte*>(s.data()), s.size());
}

// --- AES-128 (FIPS-197 Appendix B / C.1) -------------------------------------

TEST(AesTest, SboxKnownEntries) {
  const auto& box = Aes128::sbox();
  EXPECT_EQ(box[0x00], 0x63);
  EXPECT_EQ(box[0x01], 0x7C);
  EXPECT_EQ(box[0x53], 0xED);
  EXPECT_EQ(box[0xFF], 0x16);
}

TEST(AesTest, Fips197ExampleVector) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes plain = from_hex("00112233445566778899aabbccddeeff");
  const Aes128 aes(key);
  const Bytes cipher = aes.encrypt_ecb(plain);
  EXPECT_EQ(to_hex(cipher), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesTest, Fips197AppendixBVector) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes plain = from_hex("3243f6a8885a308d313198a2e0370734");
  const Aes128 aes(key);
  EXPECT_EQ(to_hex(aes.encrypt_ecb(plain)),
            "3925841d02dc09fbdc118597196a0b32");
}

TEST(AesTest, EcbIsBlockwiseIndependent) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Aes128 aes(key);
  Bytes two_blocks(32, 0x42);
  const Bytes c = aes.encrypt_ecb(two_blocks);
  EXPECT_TRUE(std::equal(c.begin(), c.begin() + 16, c.begin() + 16));
}

TEST(AesTest, RejectsBadSizes) {
  EXPECT_THROW(Aes128(Bytes(15, 0)), Error);
  const Aes128 aes(Bytes(16, 0));
  EXPECT_THROW(aes.encrypt_ecb(Bytes(17, 0)), Error);
}

// --- DES (classic worked example; e.g. FIPS 46 test) ---------------------------

TEST(DesTest, ClassicWorkedExample) {
  // The widely published K=133457799BBCDFF1, M=0123456789ABCDEF example.
  const Bytes key = from_hex("133457799bbcdff1");
  const Des des(key);
  EXPECT_EQ(des.encrypt_block(0x0123456789ABCDEFull), 0x85E813540F0AB405ull);
}

TEST(DesTest, EncryptDecryptRoundtrip) {
  const Bytes key = from_hex("0123456789abcdef");
  const Des des(key);
  Prng rng(5);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t m = rng.next();
    EXPECT_EQ(des.decrypt_block(des.encrypt_block(m)), m);
  }
}

TEST(DesTest, AvalancheOnKeyBit) {
  const Des a(from_hex("0000000000000000"));
  const Des b(from_hex("0000000000000010"));  // one key bit flipped
  const std::uint64_t c1 = a.encrypt_block(0);
  const std::uint64_t c2 = b.encrypt_block(0);
  const unsigned diff = static_cast<unsigned>(__builtin_popcountll(c1 ^ c2));
  EXPECT_GT(diff, 10u);  // strong diffusion
}

TEST(DesTest, EcbWrapper) {
  const Bytes key = from_hex("133457799bbcdff1");
  const Des des(key);
  const Bytes plain = from_hex("0123456789abcdef0123456789abcdef");
  const Bytes cipher = des.encrypt_ecb(plain);
  EXPECT_EQ(to_hex(ByteSpan(cipher.data(), 8)), "85e813540f0ab405");
  EXPECT_TRUE(std::equal(cipher.begin(), cipher.begin() + 8,
                         cipher.begin() + 8));
}

// --- XTEA ----------------------------------------------------------------------

TEST(XteaTest, EncryptDecryptRoundtrip) {
  Prng rng(11);
  Bytes key(16);
  for (auto& b : key) b = static_cast<Byte>(rng.next());
  const Xtea xtea(key);
  for (int i = 0; i < 50; ++i) {
    std::uint32_t v0 = static_cast<std::uint32_t>(rng.next());
    std::uint32_t v1 = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t o0 = v0, o1 = v1;
    xtea.encrypt_block(v0, v1);
    EXPECT_FALSE(v0 == o0 && v1 == o1);
    xtea.decrypt_block(v0, v1);
    EXPECT_EQ(v0, o0);
    EXPECT_EQ(v1, o1);
  }
}

TEST(XteaTest, KnownReferenceBehaviour) {
  // With an all-zero key and zero plaintext XTEA is deterministic; pin the
  // value our implementation produces as a regression anchor and confirm a
  // one-bit plaintext change diffuses.
  const Xtea xtea(Bytes(16, 0));
  std::uint32_t a0 = 0, a1 = 0;
  xtea.encrypt_block(a0, a1);
  std::uint32_t b0 = 1, b1 = 0;
  xtea.encrypt_block(b0, b1);
  EXPECT_NE(a0, b0);
  const unsigned diff = static_cast<unsigned>(
      __builtin_popcountll((static_cast<std::uint64_t>(a0 ^ b0) << 32) |
                           (a1 ^ b1)));
  EXPECT_GT(diff, 16u);
}

// --- hashes ----------------------------------------------------------------------

TEST(Sha1Test, StandardVectors) {
  EXPECT_EQ(to_hex(Sha1::hash(span_of("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(to_hex(Sha1::hash(span_of(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(to_hex(Sha1::hash(span_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MultiBlockAndIncremental) {
  const std::string a(1000, 'a');
  Sha1 h;
  h.update(span_of(a));
  h.update(span_of(a));
  const auto split = h.digest();
  const std::string aa(2000, 'a');
  EXPECT_EQ(split, Sha1::hash(span_of(aa)));
}

TEST(Sha256Test, StandardVectors) {
  EXPECT_EQ(to_hex(Sha256::hash(span_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(Sha256::hash(span_of(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(span_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Md5Test, StandardVectors) {
  EXPECT_EQ(to_hex(Md5::hash(span_of(""))),
            "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(to_hex(Md5::hash(span_of("abc"))),
            "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(to_hex(Md5::hash(span_of("message digest"))),
            "f96b697d7cb7938d525a2f31aaf161d0");
}

// --- matmul ----------------------------------------------------------------------

TEST(MatmulTest, IdentityAndKnownProduct) {
  const std::size_t n = 4;
  std::vector<std::int16_t> identity(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) identity[i * n + i] = 1;
  std::vector<std::int16_t> a(n * n);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<std::int16_t>(i * 3 - 7);
  const auto c = matmul(a, identity, n);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(c[i], a[i]);
}

TEST(MatmulTest, MatchesNaiveOnRandom) {
  const std::size_t n = 8;
  Prng rng(3);
  std::vector<std::int16_t> a(n * n), b(n * n);
  for (auto& v : a) v = static_cast<std::int16_t>(rng.next());
  for (auto& v : b) v = static_cast<std::int16_t>(rng.next());
  const auto c = matmul(a, b, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      // The reference accumulator wraps at 32 bits like the hardware MAC
      // (unsigned arithmetic keeps the wrap well-defined).
      std::uint32_t expect = 0;
      for (std::size_t k = 0; k < n; ++k)
        expect += static_cast<std::uint32_t>(
            static_cast<std::int32_t>(a[i * n + k]) * b[k * n + j]);
      EXPECT_EQ(c[i * n + j], static_cast<std::int32_t>(expect));
    }
}

TEST(MatmulTest, ByteWrapperRoundtrip) {
  const auto& input = Bytes(4 * 4 * 4, 1);  // n=4: A=B=0x0101 pattern
  const Bytes out = matmul_bytes(input);
  EXPECT_EQ(out.size(), 4u * 4u * 4u);
  EXPECT_THROW(matmul_bytes(Bytes(10, 0)), Error);
}

// --- FFT ------------------------------------------------------------------------

TEST(FftTest, ImpulseGivesFlatSpectrum) {
  // x = [A, 0, 0, ...] -> X[k] = A / N (with the per-stage 1/2 scaling).
  std::vector<ComplexQ15> data(16);
  data[0].re = 16000;
  fft_q15(data);
  for (const auto& bin : data) {
    EXPECT_NEAR(bin.re, 1000, 2);
    EXPECT_NEAR(bin.im, 0, 2);
  }
}

TEST(FftTest, DcGivesSingleBin) {
  std::vector<ComplexQ15> data(16);
  for (auto& s : data) s.re = 1600;
  fft_q15(data);
  EXPECT_NEAR(data[0].re, 1600, 4);  // sum/N = 1600
  for (std::size_t i = 1; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].re, 0, 4);
    EXPECT_NEAR(data[i].im, 0, 4);
  }
}

TEST(FftTest, LinearityApproximately) {
  Prng rng(8);
  std::vector<ComplexQ15> x(32), y(32), sum(32);
  for (std::size_t i = 0; i < 32; ++i) {
    x[i].re = static_cast<std::int16_t>(rng.next_below(4000));
    y[i].re = static_cast<std::int16_t>(rng.next_below(4000));
    sum[i].re = static_cast<std::int16_t>(x[i].re + y[i].re);
  }
  auto fx = x, fy = y, fs = sum;
  fft_q15(fx);
  fft_q15(fy);
  fft_q15(fs);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(fs[i].re, fx[i].re + fy[i].re, 8);
    EXPECT_NEAR(fs[i].im, fx[i].im + fy[i].im, 8);
  }
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<ComplexQ15> data(12);
  EXPECT_THROW(fft_q15(data), Error);
}

// --- big integers / modexp --------------------------------------------------------

TEST(BigUintTest, BytesRoundtripAndCompare) {
  Prng rng(2);
  Bytes raw(40);
  for (auto& b : raw) b = static_cast<Byte>(rng.next());
  const BigUint v = BigUint::from_bytes(raw);
  EXPECT_EQ(v.to_bytes(40), raw);
  EXPECT_EQ(BigUint::compare(v, v), 0);
  EXPECT_LT(BigUint::compare(BigUint{5}, BigUint{9}), 0);
  EXPECT_GT(BigUint::compare(BigUint::add(v, BigUint{1}), v), 0);
}

TEST(BigUintTest, AddSubMulAgainstU64) {
  Prng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next() >> 33;  // keep products in range
    const std::uint64_t b = rng.next() >> 33;
    EXPECT_EQ(BigUint::add(BigUint{a}, BigUint{b}), BigUint{a + b});
    EXPECT_EQ(BigUint::mul(BigUint{a}, BigUint{b}), BigUint{a * b});
    if (a >= b) {
      EXPECT_EQ(BigUint::sub(BigUint{a}, BigUint{b}), BigUint{a - b});
    }
  }
  EXPECT_THROW(BigUint::sub(BigUint{1}, BigUint{2}), Error);
}

TEST(BigUintTest, ModAgainstU64) {
  Prng rng(4);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next();
    const std::uint64_t m = 1 + (rng.next() >> 20);
    EXPECT_EQ(BigUint::mod(BigUint{a}, BigUint{m}), BigUint{a % m});
  }
  EXPECT_THROW(BigUint::mod(BigUint{5}, BigUint{}), Error);
}

TEST(BigUintTest, ModExpSmallCases) {
  // 3^7 mod 10 = 2187 mod 10 = 7; 5^0 mod 7 = 1; 2^10 mod 1024+1.
  EXPECT_EQ(BigUint::mod_exp(BigUint{3}, BigUint{7}, BigUint{10}),
            BigUint{7});
  EXPECT_EQ(BigUint::mod_exp(BigUint{5}, BigUint{}, BigUint{7}), BigUint{1});
  EXPECT_EQ(BigUint::mod_exp(BigUint{2}, BigUint{10}, BigUint{1025}),
            BigUint{1024 % 1025});
}

TEST(BigUintTest, FermatLittleTheoremHolds) {
  // a^(p-1) = 1 mod p for prime p and gcd(a,p)=1 — a strong algebraic
  // self-check exercising multi-limb mul/mod.
  const std::uint64_t p = 1000003;  // prime
  Prng rng(6);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t a = 2 + rng.next_below(p - 3);
    EXPECT_EQ(BigUint::mod_exp(BigUint{a}, BigUint{p - 1}, BigUint{p}),
              BigUint{1});
  }
}

TEST(BigUintTest, ModExpMultiplicativeProperty) {
  // (a*b)^e mod m == (a^e * b^e) mod m.
  Prng rng(7);
  Bytes ab(24), bb(24), mb(24);
  for (auto& x : ab) x = static_cast<Byte>(rng.next());
  for (auto& x : bb) x = static_cast<Byte>(rng.next());
  for (auto& x : mb) x = static_cast<Byte>(rng.next());
  mb[23] |= 0x80;
  mb[0] |= 1;
  const BigUint a = BigUint::from_bytes(ab);
  const BigUint b = BigUint::from_bytes(bb);
  const BigUint m = BigUint::from_bytes(mb);
  const BigUint e{65537};
  const BigUint lhs = BigUint::mod_exp(BigUint::mul(a, b), e, m);
  const BigUint rhs = BigUint::mod(
      BigUint::mul(BigUint::mod_exp(a, e, m), BigUint::mod_exp(b, e, m)), m);
  EXPECT_EQ(lhs, rhs);
}

TEST(ModexpBytesTest, ContractAndValidation) {
  Bytes in(96, 0);  // 256-bit operands
  in[0] = 3;        // base = 3
  in[32] = 4;       // exponent = 4
  in[64] = 13;      // modulus = 13 -> 81 mod 13 = 3
  const Bytes out = modexp_bytes(in);
  EXPECT_EQ(out.size(), 32u);
  EXPECT_EQ(out[0], 3);
  EXPECT_THROW(modexp_bytes(Bytes(10, 1)), Error);
  Bytes bad(96, 0);  // modulus 0
  EXPECT_THROW(modexp_bytes(bad), Error);
}

// --- FIR -------------------------------------------------------------------------

TEST(FirTest, ImpulseResponseIsCoefficients) {
  const auto coeffs = default_lowpass16();
  std::vector<std::int16_t> impulse(32, 0);
  impulse[0] = 1 << 14;  // unit in Q1.14
  const auto y = fir(impulse, coeffs);
  for (std::size_t k = 0; k < coeffs.size(); ++k)
    EXPECT_NEAR(y[k], coeffs[k], 1);
  for (std::size_t k = coeffs.size(); k < y.size(); ++k) EXPECT_EQ(y[k], 0);
}

TEST(FirTest, LowpassAttenuatesNyquist) {
  const auto coeffs = default_lowpass16();
  std::vector<std::int16_t> nyquist(256), dc(256);
  for (std::size_t i = 0; i < 256; ++i) {
    nyquist[i] = static_cast<std::int16_t>((i % 2) ? -8000 : 8000);
    dc[i] = 8000;
  }
  const auto yn = fir(nyquist, coeffs);
  const auto yd = fir(dc, coeffs);
  double pn = 0, pd = 0;
  for (std::size_t i = 64; i < 256; ++i) {  // skip the transient
    pn += std::abs(static_cast<double>(yn[i]));
    pd += std::abs(static_cast<double>(yd[i]));
  }
  EXPECT_LT(pn, pd / 4.0);
}

TEST(FirTest, ByteWrapperShapes) {
  const Bytes out = fir_bytes(Bytes(128, 0x10));
  EXPECT_EQ(out.size(), 128u);
  EXPECT_THROW(fir_bytes(Bytes(3, 0)), Error);
}

}  // namespace
}  // namespace aad::algorithms
