// Fault injection + recovery across the fleet.
//
// The headline is the property-based sweep: seeded random fault plans
// (card deaths, recoveries, ROM corruption) run against every dispatch x
// batch policy combination, then tests/invariant_harness.h asserts the
// system-wide invariants (conservation, pin hygiene, death isolation,
// delta-tracker consistency, determinism).  The mutation tests doctor a
// clean run to prove the harness actually catches violations.  Around the
// sweep sit targeted regressions: redispatch off a dead card, CRC-reject +
// refetch recovery, watchdog timeouts retrying on a survivor, cold fabric
// after revival, and a differential test that every DeviceScheduler x
// BatchPolicy combination completes the exact same request set as the
// FIFO/no-batch baseline.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "invariant_harness.h"
#include "workload/replay.h"

namespace aad::core {
namespace {

Bytes request_input(workload::FunctionId fn, std::size_t blocks,
                    std::size_t index) {
  return algorithms::bank_input(fn, blocks, index);
}

// --- property-based invariant sweep ----------------------------------------

harness::HarnessConfig sweep_config(std::uint64_t seed, unsigned slot) {
  harness::HarnessConfig hc;
  hc.seed = seed;
  // Rotate through >= 3 dispatch policies x 2 batch modes; fold the device
  // scheduler, delta reconfiguration, corruption, and the watchdog in as
  // extra axes so 5 PR seeds already cross most of the space and 50
  // nightly seeds cover it many times over.
  static const DispatchPolicy kDispatch[] = {DispatchPolicy::kRoundRobin,
                                             DispatchPolicy::kLeastQueued,
                                             DispatchPolicy::kResidencyAffinity};
  hc.dispatch = kDispatch[slot % 3];
  hc.batch.mode = (slot % 6) < 3 ? BatchMode::kNone : BatchMode::kGreedy;
  hc.device = (slot % 2) ? DevicePolicy::kResidentFirst : DevicePolicy::kFifo;
  hc.delta_reconfig = (slot % 2) == 1;
  hc.timeout = (slot % 3 == 0) ? sim::SimTime::us(800) : sim::SimTime::zero();
  // Speculative prefetch rides along on a co-prime cadence (slots 2-3 of
  // every 4) so the sweep crosses it with every other axis: the invariants
  // must hold when a card dies mid-prefetch, and speculative pins must
  // unwind exactly like demand pins.
  hc.prefetch = (slot % 4) >= 2;
  // Compress the fault horizon into the traffic window so deaths land while
  // requests are actually in flight.
  hc.death_rate_per_ms = 0.3;
  hc.mean_downtime = sim::SimTime::us(400);
  hc.corruption_rate_per_ms = (slot % 2) ? 0.2 : 0.0;
  hc.fault_horizon = sim::SimTime::ms(3);
  hc.clients = 4;
  hc.bursts = 2;
  hc.burst_size = 4;
  return hc;
}

TEST(InvariantSweepTest, CleanAcrossSeedsAndPolicies) {
  const unsigned seeds = harness::invariant_seed_count();
  std::vector<std::uint64_t> failing;
  for (unsigned s = 0; s < seeds; ++s) {
    const harness::HarnessConfig hc = sweep_config(1000 + s, s);
    harness::InvariantHarness h(hc);
    h.run();
    const std::vector<std::string> violations = h.check();
    if (!violations.empty()) {
      failing.push_back(hc.seed);
      for (const std::string& v : violations)
        ADD_FAILURE() << "seed " << hc.seed << ": " << v;
    }
  }
  if (!failing.empty()) {
    // Nightly CI points AAD_FAILING_SEEDS_FILE at a path it uploads as an
    // artifact, so a red run carries its repro seeds with it.
    std::ostringstream os;
    os << "FAILING_SEEDS:";
    for (const std::uint64_t seed : failing) os << ' ' << seed;
    std::cerr << os.str() << std::endl;
    if (const char* path = std::getenv("AAD_FAILING_SEEDS_FILE")) {
      std::ofstream out(path, std::ios::app);
      out << os.str() << '\n';
    }
  }
}

TEST(InvariantSweepTest, SameSeedSameDigest) {
  const harness::HarnessConfig hc = sweep_config(424242, 3);
  harness::InvariantHarness a(hc);
  harness::InvariantHarness b(hc);
  a.run();
  b.run();
  EXPECT_TRUE(a.check().empty());
  EXPECT_EQ(a.digest(), b.digest());
}

// Heavier prefetch pressure than the rotating sweep: every seed runs with
// the predictor on at low confidence (many speculative loads) under the
// same compressed death plans.  A card dying mid-prefetch must not break
// conservation or leak the transient pins the pump holds during its
// feasibility probe + load.
TEST(InvariantSweepTest, CleanWithPrefetchUnderFaults) {
  const unsigned seeds = harness::invariant_seed_count();
  for (unsigned s = 0; s < seeds; ++s) {
    harness::HarnessConfig hc = sweep_config(3000 + s, s);
    hc.prefetch = true;
    hc.prefetch_confidence = 0.3;
    harness::InvariantHarness h(hc);
    h.run();
    for (const std::string& v : h.check())
      ADD_FAILURE() << "prefetch seed " << hc.seed << ": " << v;
    // Speculative ledger closes: every issued prefetch was consumed by a
    // demand hit, stolen/wiped (wasted), or is still resident awaiting one
    // (a subset of prefetch_outstanding, which also counts unissued
    // candidates).
    for (unsigned i = 0; i < h.fleet().card_count(); ++i) {
      const ServerStats stats = h.fleet().server(i).stats();
      EXPECT_GE(stats.prefetch_issued,
                stats.prefetch_hits + stats.prefetch_wasted)
          << "seed " << hc.seed << " card " << i;
      EXPECT_LE(
          stats.prefetch_issued - stats.prefetch_hits - stats.prefetch_wasted,
          h.fleet().server(i).prefetch_outstanding())
          << "seed " << hc.seed << " card " << i;
    }
  }
}

TEST(InvariantSweepTest, PrefetchSameSeedSameDigest) {
  harness::HarnessConfig hc = sweep_config(424243, 2);
  hc.prefetch = true;
  hc.prefetch_confidence = 0.3;
  harness::InvariantHarness a(hc);
  harness::InvariantHarness b(hc);
  a.run();
  b.run();
  EXPECT_TRUE(a.check().empty());
  EXPECT_EQ(a.digest(), b.digest());
}

// The harness must catch a run whose completion ledger was doctored —
// otherwise "no violations" could mean "checks nothing".
TEST(InvariantSweepTest, MutantDoubleCompletionIsCaught) {
  harness::HarnessConfig hc;
  hc.seed = 7;
  hc.death_rate_per_ms = 0.0;  // clean run, then tamper
  harness::InvariantHarness h(hc);
  h.run();
  ASSERT_TRUE(h.check().empty());
  ASSERT_FALSE(h.completions().empty());
  h.completions().front() = 2;  // pretend a hook double-fired
  const std::vector<std::string> violations = h.check();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("conservation"), std::string::npos);
}

TEST(InvariantSweepTest, MutantLeakedPinIsCaught) {
  harness::HarnessConfig hc;
  hc.seed = 11;
  hc.death_rate_per_ms = 0.0;
  harness::InvariantHarness h(hc);
  h.run();
  ASSERT_TRUE(h.check().empty());
  // Leak a pin on some card that still holds residency.
  bool leaked = false;
  for (unsigned i = 0; i < h.fleet().card_count() && !leaked; ++i) {
    const auto resident = h.fleet().card(i).mcu().resident_functions();
    if (resident.empty()) continue;
    h.fleet().card(i).mcu().pin(resident.front());
    leaked = true;
  }
  ASSERT_TRUE(leaked) << "no card kept residency; cannot stage the mutant";
  const std::vector<std::string> violations = h.check();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("pins"), std::string::npos);
}

// --- targeted fault regressions --------------------------------------------

workload::MultiClientTrace bursty_trace(std::uint64_t seed, unsigned clients,
                                        std::size_t bursts,
                                        std::size_t burst_size) {
  workload::BurstyConfig wc;
  wc.clients = clients;
  wc.bursts = bursts;
  wc.burst_size = burst_size;
  wc.functions = algorithms::function_bank();
  wc.seed = seed;
  return workload::make_bursty(wc);
}

// Three of four cards die mid-burst (one for good); every request still
// completes or fails exactly once, nothing hangs, and the recovery
// counters show the machinery actually ran.
TEST(FaultRecoveryTest, ZeroHungRequestsUnderDeathPlan) {
  FleetConfig fc;
  fc.cards = 4;
  fc.retry.timeout = sim::SimTime::ms(5);  // backstop watchdog
  fc.faults.deaths = {
      {0, sim::SimTime::us(100), sim::SimTime::us(900)},
      {1, sim::SimTime::us(250), sim::SimTime::us(1200)},
      {2, sim::SimTime::us(400), sim::SimTime::zero()},  // never recovers
  };
  CoprocessorFleet fleet(fc);
  fleet.download_all();

  const workload::MultiClientTrace trace = bursty_trace(31, 6, 3, 4);
  std::vector<unsigned> fired(trace.total_requests(), 0);
  std::size_t index = 0;
  const sim::SimTime base = fleet.now();
  for (const auto& client : trace.clients)
    for (const auto& r : client.requests) {
      const std::size_t slot = index++;
      fleet.submit_function_at(
          base + r.offset, client.client, r.function,
          algorithms::bank_input(r.function, r.payload_blocks, slot),
          [&fired, slot](const ServerRequest&) { ++fired[slot]; });
    }
  fleet.run();

  EXPECT_EQ(fleet.in_flight(), 0u);
  EXPECT_TRUE(fleet.scheduler().idle());
  for (std::size_t i = 0; i < fired.size(); ++i)
    EXPECT_EQ(fired[i], 1u) << "request " << i << " hung or double-completed";

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.deaths, 3u);
  EXPECT_GT(stats.redispatched, 0u);
  EXPECT_EQ(stats.completed + stats.failed, fired.size());
  EXPECT_TRUE(fleet.card_alive(0));
  EXPECT_TRUE(fleet.card_alive(1));
  EXPECT_FALSE(fleet.card_alive(2));
  EXPECT_TRUE(fleet.card_alive(3));
}

// A revived card comes back with a cold fabric: nothing resident, nothing
// pinned, and it serves traffic again afterwards.
TEST(FaultRecoveryTest, DeathRecoveryLeavesFabricCold) {
  FleetConfig fc;
  fc.cards = 2;
  fc.policy = DispatchPolicy::kRoundRobin;
  fc.retry.timeout = sim::SimTime::ms(5);
  fc.faults.deaths = {{0, sim::SimTime::us(300), sim::SimTime::us(700)}};
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  const sim::SimTime base = fleet.now();

  const workload::MultiClientTrace trace = bursty_trace(5, 4, 2, 3);
  std::size_t fired = 0;
  std::size_t index = 0;
  for (const auto& client : trace.clients)
    for (const auto& r : client.requests) {
      fleet.submit_function_at(
          base + r.offset, client.client, r.function,
          algorithms::bank_input(r.function, r.payload_blocks, index++),
          [&fired](const ServerRequest&) { ++fired; });
    }
  // Probe the card while it is down: dead, cold, unpinned.
  fleet.scheduler().schedule_at(base + sim::SimTime::us(350), [&fleet] {
    EXPECT_FALSE(fleet.card_alive(0));
    EXPECT_EQ(fleet.card(0).mcu().resident_count(), 0u);
    EXPECT_EQ(fleet.card(0).mcu().pinned_count(), 0u);
  });
  fleet.run();

  EXPECT_TRUE(fleet.card_alive(0));
  EXPECT_EQ(fired, index);
  EXPECT_EQ(fleet.in_flight(), 0u);
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.deaths, 1u);
  EXPECT_EQ(stats.completed + stats.failed, fired);
}

// With a single card and a death that never recovers, in-flight and
// later-arriving requests fail cleanly (kCardDeath) instead of hanging.
TEST(FaultRecoveryTest, NoSurvivorFailsCleanly) {
  FleetConfig fc;
  fc.cards = 1;
  fc.faults.deaths = {{0, sim::SimTime::us(200), sim::SimTime::zero()}};
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  const sim::SimTime base = fleet.now();

  const workload::MultiClientTrace trace = bursty_trace(13, 3, 2, 3);
  std::size_t ok = 0, failed = 0;
  std::size_t index = 0;
  for (const auto& client : trace.clients)
    for (const auto& r : client.requests) {
      fleet.submit_function_at(
          base + r.offset, client.client, r.function,
          algorithms::bank_input(r.function, r.payload_blocks, index++),
          [&ok, &failed](const ServerRequest& done) {
            if (done.failed) {
              EXPECT_EQ(done.fail_reason, FailReason::kCardDeath);
              ++failed;
            } else {
              ++ok;
            }
          });
    }
  fleet.run();

  EXPECT_EQ(ok + failed, index);
  EXPECT_GT(failed, 0u);
  EXPECT_EQ(fleet.in_flight(), 0u);
  EXPECT_TRUE(fleet.scheduler().idle());
  EXPECT_FALSE(fleet.card_alive(0));
}

// --- corrupted bitstreams ---------------------------------------------------

// A corrupted ROM image is rejected by the CRC check before any frame is
// programmed, re-fetched from the pristine host copy, and the request then
// completes normally.
TEST(CrcRejectTest, RefetchRecoversCorruptedBitstream) {
  AgileCoprocessor card;
  card.download_all();
  const memory::FunctionId fn = algorithms::function_bank().front();
  ASSERT_TRUE(card.mcu().rom().corrupt_payload(fn, /*seed=*/99,
                                               /*bit_flips=*/8));

  CoprocessorServer server(card, {});
  bool fired = false;
  server.submit_function(0, fn, algorithms::bank_input(fn, 2, 0),
                         [&fired](const ServerRequest& done) {
                           fired = true;
                           EXPECT_FALSE(done.failed);
                           EXPECT_FALSE(done.output.empty());
                         });
  server.run();

  EXPECT_TRUE(fired);
  EXPECT_EQ(card.mcu().stats().crc_rejects, 1u);
  EXPECT_EQ(card.mcu().stats().refetches, 1u);
  EXPECT_TRUE(card.mcu().is_resident(fn));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.crc_rejects, 1u);
  EXPECT_EQ(stats.refetches, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

// With refetch disabled the load is rejected cleanly: the request fails
// with kCrcReject, nothing is programmed, no pins leak, and the card keeps
// serving other functions.
TEST(CrcRejectTest, WithoutRefetchFailsCleanly) {
  CoprocessorConfig cc;
  cc.mcu.refetch_on_crc_reject = false;
  AgileCoprocessor card(cc);
  card.download_all();
  const auto bank = algorithms::function_bank();
  ASSERT_GE(bank.size(), 2u);
  const memory::FunctionId bad = bank[0];
  const memory::FunctionId good = bank[1];
  ASSERT_TRUE(card.mcu().rom().corrupt_payload(bad, 99, 8));

  CoprocessorServer server(card, {});
  bool bad_fired = false, good_fired = false;
  server.submit_function(0, bad, algorithms::bank_input(bad, 1, 0),
                         [&bad_fired](const ServerRequest& done) {
                           bad_fired = true;
                           EXPECT_TRUE(done.failed);
                           EXPECT_EQ(done.fail_reason, FailReason::kCrcReject);
                         });
  server.submit_function(1, good, algorithms::bank_input(good, 1, 1),
                         [&good_fired](const ServerRequest& done) {
                           good_fired = true;
                           EXPECT_FALSE(done.failed);
                         });
  server.run();

  EXPECT_TRUE(bad_fired);
  EXPECT_TRUE(good_fired);
  EXPECT_EQ(card.mcu().stats().crc_rejects, 1u);
  EXPECT_EQ(card.mcu().stats().refetches, 0u);
  EXPECT_FALSE(card.mcu().is_resident(bad));
  EXPECT_TRUE(card.mcu().is_resident(good));
  EXPECT_EQ(card.mcu().pinned_count(), 0u);
  EXPECT_EQ(server.stats().failed, 1u);
  EXPECT_EQ(server.in_flight(), 0u);
}

// --- watchdog timeouts ------------------------------------------------------

// A request stuck behind a deep backlog on one card times out, is pulled
// off that queue (it never committed), and retries on the idle survivor.
TEST(TimeoutTest, RetriesOnSurvivor) {
  FleetConfig fc;
  fc.cards = 2;
  fc.policy = DispatchPolicy::kRoundRobin;
  fc.retry.timeout = sim::SimTime::us(300);
  fc.retry.max_retries = 3;
  fc.retry.backoff_base = sim::SimTime::us(50);
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  const auto bank = algorithms::function_bank();

  // Bury card 0 under direct submissions the fleet does not track.
  for (unsigned i = 0; i < 24; ++i) {
    const memory::FunctionId fn = bank[i % bank.size()];
    fleet.server(0).submit_function(100 + i, fn,
                                    algorithms::bank_input(fn, 2, i), {});
  }
  // Round-robin sends the first fleet ticket to card 0's backlog.
  bool fired = false;
  fleet.submit_function(0, bank.front(),
                        algorithms::bank_input(bank.front(), 1, 1000),
                        [&fired](const ServerRequest& done) {
                          fired = true;
                          EXPECT_FALSE(done.failed);
                        });
  fleet.run();

  EXPECT_TRUE(fired);
  const FleetStats stats = fleet.stats();
  EXPECT_GE(stats.timeouts, 1u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(fleet.in_flight(), 0u);
}

// With a single card, exhausting the retry budget fails the request with
// kTimeout instead of retrying forever.
TEST(TimeoutTest, ExhaustedRetriesFail) {
  FleetConfig fc;
  fc.cards = 1;
  fc.retry.timeout = sim::SimTime::us(100);
  fc.retry.max_retries = 1;
  fc.retry.backoff_base = sim::SimTime::us(50);
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  const auto bank = algorithms::function_bank();

  for (unsigned i = 0; i < 40; ++i) {
    const memory::FunctionId fn = bank[i % bank.size()];
    fleet.server(0).submit_function(100 + i, fn,
                                    algorithms::bank_input(fn, 2, i), {});
  }
  bool fired = false;
  fleet.submit_function(0, bank.front(),
                        algorithms::bank_input(bank.front(), 1, 1000),
                        [&fired](const ServerRequest& done) {
                          fired = true;
                          EXPECT_TRUE(done.failed);
                          EXPECT_EQ(done.fail_reason, FailReason::kTimeout);
                        });
  fleet.run();

  EXPECT_TRUE(fired);
  const FleetStats stats = fleet.stats();
  EXPECT_GE(stats.timeouts, 2u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(fleet.in_flight(), 0u);
}

// --- fault machinery is inert when disarmed ---------------------------------

std::uint64_t completed_digest(const CoprocessorFleet& fleet) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (unsigned i = 0; i < fleet.card_count(); ++i)
    for (const ServerRequest& r : fleet.server(i).completed()) {
      mix(r.id);
      mix(r.client);
      mix(r.function);
      mix(static_cast<std::uint64_t>(r.submit_time.picoseconds()));
      mix(static_cast<std::uint64_t>(r.complete_time.picoseconds()));
      mix(r.output.size());
    }
  return h;
}

// Arming the watchdog with a timeout that never fires routes every request
// through the ticket machinery — and must not move a single completion
// time.  This is the in-test face of the PR's byte-identity guarantee.
TEST(FaultModeTest, IdleWatchdogIsTimingNeutral) {
  const workload::MultiClientTrace trace = bursty_trace(21, 4, 2, 4);
  const auto run_fleet = [&trace](bool watchdog) {
    FleetConfig fc;
    fc.cards = 2;
    if (watchdog) fc.retry.timeout = sim::SimTime::ms(1000);  // never fires
    CoprocessorFleet fleet(fc);
    fleet.download_all();
    workload::replay(fleet, trace, request_input);
    fleet.run();
    const FleetStats stats = fleet.stats();
    EXPECT_EQ(stats.timeouts, 0u);
    EXPECT_EQ(stats.failed, 0u);
    return completed_digest(fleet);
  };
  EXPECT_EQ(run_fleet(false), run_fleet(true));
}

// --- differential: schedulers and batchers preserve the served set ----------

// Every DeviceScheduler x BatchPolicy combination must complete exactly the
// same multiset of (client, function, output) as the FIFO/no-batch
// baseline on the same trace — policies reorder and coalesce work, they
// never change what gets computed.
TEST(DifferentialTest, AllCombosCompleteSameRequestSet) {
  const workload::MultiClientTrace trace = bursty_trace(77, 4, 2, 4);
  const auto served_set = [&trace](DevicePolicy dp, BatchMode bm) {
    AgileCoprocessor card;
    card.download_all();
    ServerConfig sc;
    sc.device_policy = dp;
    sc.batch.mode = bm;
    CoprocessorServer server(card, sc);
    workload::replay(server, trace, request_input);
    server.run();
    std::multiset<std::string> set;
    for (const ServerRequest& r : server.completed()) {
      std::ostringstream os;
      os << r.client << '/' << r.function << '/';
      for (const Byte b : r.output) os << static_cast<unsigned>(b) << ',';
      set.insert(os.str());
    }
    EXPECT_EQ(set.size(), trace.total_requests());
    return set;
  };

  const auto baseline = served_set(DevicePolicy::kFifo, BatchMode::kNone);
  for (const DevicePolicy dp :
       {DevicePolicy::kFifo, DevicePolicy::kResidentFirst,
        DevicePolicy::kShortestReconfigFirst}) {
    for (const BatchMode bm :
         {BatchMode::kNone, BatchMode::kGreedy, BatchMode::kWindowed}) {
      if (dp == DevicePolicy::kFifo && bm == BatchMode::kNone) continue;
      EXPECT_EQ(served_set(dp, bm), baseline)
          << "policy " << to_string(dp) << " x " << to_string(bm)
          << " served a different request set";
    }
  }
}

}  // namespace
}  // namespace aad::core
