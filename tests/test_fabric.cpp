// Tests for the fabric: CLB config codec roundtrips, switch-word
// consistency checking, configuration memory, config-port timing, and the
// headline property — a function executed *from the configuration plane*
// matches gate-level simulation, even when relocated to scattered frames.
#include <gtest/gtest.h>

#include "common/prng.h"
#include "fabric/clbcodec.h"
#include "fabric/config_memory.h"
#include "fabric/fabric.h"
#include "netlist/generators.h"
#include "netlist/lutmap.h"
#include "netlist/simulate.h"

namespace aad::fabric {
namespace {

using netlist::LutNetwork;
using netlist::LutSlot;
using netlist::NetKind;
using netlist::NetRef;

LutSlot random_slot(Prng& rng, std::uint32_t max_index) {
  LutSlot s;
  s.truth = static_cast<std::uint16_t>(rng.next());
  s.has_ff = rng.next_bool(0.3);
  s.is_output = rng.next_bool(0.2);
  s.output_bit = static_cast<std::uint16_t>(rng.next_below(512));
  for (auto& pin : s.pins) {
    pin.kind = static_cast<NetKind>(rng.next_below(6));
    pin.index = static_cast<std::uint32_t>(rng.next_below(max_index));
  }
  return s;
}

TEST(ClbCodec, SlotRoundtripRandomized) {
  Prng rng(321);
  for (int trial = 0; trial < 200; ++trial) {
    const LutSlot original = random_slot(rng, 1u << 20);
    Word words[kWordsPerLutSlot];
    encode_slot(original, words);
    EXPECT_EQ(decode_slot(std::span<const Word>(words, kWordsPerLutSlot)),
              original);
  }
}

TEST(ClbCodec, InvalidPinKindRejected) {
  Word words[kWordsPerLutSlot] = {0, 7u /* kind 7 invalid */, 0, 0, 0};
  EXPECT_THROW(decode_slot(std::span<const Word>(words, kWordsPerLutSlot)),
               Error);
}

TEST(ClbCodec, FrameRoundtripForMappedDesign) {
  const FrameGeometry geometry;
  const LutNetwork network =
      netlist::map_to_luts(netlist::make_ripple_adder(16));
  const auto frames = encode_frames(network, geometry);
  const LutNetwork back =
      decode_frames(frames, geometry, network.name(),
                    network.input_width(), network.output_width());
  EXPECT_EQ(back.slots(), network.slots());
}

TEST(ClbCodec, SwitchWordTamperDetected) {
  const FrameGeometry geometry;
  const LutNetwork network = netlist::map_to_luts(netlist::make_parity(16));
  auto frames = encode_frames(network, geometry);
  // Flip one switch word (words 20..23 of the first CLB are switch config).
  frames[0][20] ^= 0x1;
  EXPECT_THROW(decode_frames(frames, geometry, "x", 16, 1), Error);
}

TEST(ClbCodec, EmptyNetworkStillOneFrame) {
  const FrameGeometry geometry;
  const LutNetwork empty("none", 0, 0);
  const auto frames = encode_frames(empty, geometry);
  EXPECT_EQ(frames.size(), 1u);
}

TEST(Geometry, DerivedSizes) {
  FrameGeometry g;
  g.clb_rows = 16;
  g.frame_count = 48;
  EXPECT_EQ(g.slots_per_frame(), 64u);
  EXPECT_EQ(g.words_per_frame(), 16u * 24u);
  EXPECT_EQ(g.device_words(), 48u * 16u * 24u);
  EXPECT_EQ(g.frame_bytes(), 16u * 24u * 4u);
  EXPECT_THROW((FrameGeometry{0, 1}.validate()), Error);
  EXPECT_NE(device_id(g).find("48x16"), std::string::npos);
}

TEST(ConfigMemoryTest, FrameWriteReadAndStats) {
  const FrameGeometry geometry;
  ConfigMemory mem(geometry);
  std::vector<Word> payload(geometry.words_per_frame());
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<Word>(i * 3 + 1);
  mem.write_frame(5, payload);
  const auto back = mem.read_frame(5);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), back.begin()));
  EXPECT_EQ(mem.frame_writes(), 1u);
  EXPECT_EQ(mem.words_written(), payload.size());
  // Other frames untouched.
  for (Word w : mem.read_frame(4)) EXPECT_EQ(w, 0u);
}

TEST(ConfigMemoryTest, BoundsAndSizesEnforced) {
  const FrameGeometry geometry;
  ConfigMemory mem(geometry);
  std::vector<Word> wrong(geometry.words_per_frame() - 1);
  EXPECT_THROW(mem.write_frame(0, wrong), Error);
  std::vector<Word> ok(geometry.words_per_frame());
  EXPECT_THROW(mem.write_frame(geometry.frame_count, ok), Error);
  EXPECT_THROW(mem.read_frame(geometry.frame_count), Error);
  std::vector<Word> small(geometry.device_words() - 1);
  EXPECT_THROW(mem.write_full(small), Error);
}

TEST(ConfigPort, PartialBeatsFullProportionally) {
  const FrameGeometry geometry;
  const ConfigPortModel port;
  const auto one = port.frame_time(geometry);
  const auto full = port.full_time(geometry);
  // Full configuration must cost roughly frame_count partial frames.
  const double ratio = full.nanoseconds() / one.nanoseconds();
  EXPECT_GT(ratio, geometry.frame_count * 0.8);
  EXPECT_LT(ratio, geometry.frame_count * 1.3);
}

TEST(ConfigPort, WiderPortIsFaster) {
  const FrameGeometry geometry;
  ConfigPortModel narrow;
  narrow.width_bits = 8;
  ConfigPortModel wide;
  wide.width_bits = 32;
  EXPECT_LT(wide.frame_time(geometry), narrow.frame_time(geometry));
}

// --- executing from the configuration plane -----------------------------------

TEST(FabricExecute, AdderFromConfigPlaneMatchesGolden) {
  Fabric fabric;
  const netlist::Netlist nl = netlist::make_ripple_adder(16);
  const LutNetwork mapped = netlist::map_to_luts(nl);
  const auto frames = encode_frames(mapped, fabric.geometry());

  // Configure into contiguous frames 3..
  std::vector<FrameIndex> targets;
  for (std::size_t i = 0; i < frames.size(); ++i)
    targets.push_back(static_cast<FrameIndex>(3 + i));
  for (std::size_t i = 0; i < frames.size(); ++i)
    fabric.configure_frame(targets[i], frames[i]);

  const LutNetwork extracted = fabric.extract_network(
      targets, "add16", mapped.input_width(), mapped.output_width());
  EXPECT_EQ(extracted.slots(), mapped.slots());
}

TEST(FabricExecute, RelocationToScatteredFramesPreservesFunction) {
  Fabric fabric;
  const netlist::Netlist nl = netlist::make_comparator(16);
  const LutNetwork mapped = netlist::map_to_luts(nl);
  const auto frames = encode_frames(mapped, fabric.geometry());
  ASSERT_GE(fabric.geometry().frame_count, frames.size() * 7);

  // Non-contiguous placement: frames 40, 11, 27, ... order matters, not
  // adjacency — this is the paper's §2.5 claim made executable.
  std::vector<FrameIndex> scattered;
  const FrameIndex pool[] = {40, 11, 27, 5, 33, 2, 19, 45};
  for (std::size_t i = 0; i < frames.size(); ++i) {
    scattered.push_back(pool[i % 8]);
    fabric.configure_frame(scattered.back(), frames[i]);
  }

  const LutNetwork extracted = fabric.extract_network(
      scattered, "cmp16", mapped.input_width(), mapped.output_width());
  netlist::LutExecutor from_plane(extracted);
  netlist::Simulator golden(nl);
  Prng rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<bool> in(32);
    for (auto&& b : in) b = rng.next_bool(0.5);
    EXPECT_EQ(from_plane.step(in), golden.step(in));
  }
}

TEST(FabricExecute, SequentialKernelFromPlane) {
  Fabric fabric;
  const netlist::Netlist nl = netlist::make_crc32_datapath();
  const LutNetwork mapped = netlist::map_to_luts(nl);
  const auto frames = encode_frames(mapped, fabric.geometry());
  std::vector<FrameIndex> targets;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    targets.push_back(static_cast<FrameIndex>(i));
    fabric.configure_frame(targets.back(), frames[i]);
  }
  const LutNetwork extracted =
      fabric.extract_network(targets, "crc32", 9, 32);
  netlist::LutExecutor ex(extracted);
  const std::string msg = "123456789";
  for (char ch : msg) {
    std::vector<bool> in(9, false);
    for (int i = 0; i < 8; ++i) in[static_cast<std::size_t>(i)] = (ch >> i) & 1;
    in[8] = true;
    ex.step(in);
  }
  const auto out = ex.step(std::vector<bool>(9, false));
  std::uint32_t crc = 0;
  for (int i = 0; i < 32; ++i)
    if (out[static_cast<std::size_t>(i)]) crc |= 1u << i;
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(FabricExecute, ReconfigurationReplacesFunction) {
  Fabric fabric;
  const auto add = netlist::map_to_luts(netlist::make_ripple_adder(8));
  const auto par = netlist::map_to_luts(netlist::make_parity(16));
  const auto add_frames = encode_frames(add, fabric.geometry());
  const auto par_frames = encode_frames(par, fabric.geometry());

  std::vector<FrameIndex> targets;
  for (std::size_t i = 0; i < add_frames.size(); ++i) {
    targets.push_back(static_cast<FrameIndex>(i));
    fabric.configure_frame(targets.back(), add_frames[i]);
  }
  // Swap in parity over the same frames (partial reconfiguration).
  std::vector<FrameIndex> par_targets;
  for (std::size_t i = 0; i < par_frames.size(); ++i) {
    par_targets.push_back(static_cast<FrameIndex>(i));
    fabric.configure_frame(par_targets.back(), par_frames[i]);
  }
  const auto extracted = fabric.extract_network(par_targets, "parity16",
                                                par.input_width(),
                                                par.output_width());
  EXPECT_EQ(extracted.slots(), par.slots());
  EXPECT_EQ(fabric.memory().frame_writes(),
            add_frames.size() + par_frames.size());
}

TEST(FabricExecute, EraseClearsPlane) {
  Fabric fabric;
  const auto add = netlist::map_to_luts(netlist::make_ripple_adder(8));
  const auto frames = encode_frames(add, fabric.geometry());
  fabric.configure_frame(0, frames[0]);
  fabric.erase();
  for (Word w : fabric.memory().read_frame(0)) EXPECT_EQ(w, 0u);
}

}  // namespace
}  // namespace aad::fabric
