// Tests for the sharded CoprocessorFleet: dispatch policies route
// deterministically, residency-affinity earns a higher configuration-cache
// hit rate than round-robin on skewed traffic, a single-card fleet is
// bit-exact with a bare CoprocessorServer, and the aggregated statistics
// stay coherent.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "bitstream/synth.h"
#include "core/fleet.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace aad::core {
namespace {

using algorithms::KernelId;

Bytes request_input(workload::FunctionId fn, std::size_t blocks,
                    std::size_t index) {
  return algorithms::bank_input(fn, blocks, index);
}

workload::MultiClientTrace skewed_trace(std::uint64_t seed) {
  workload::MultiClientConfig wc;
  wc.clients = 8;
  wc.requests_per_client = 16;
  wc.functions = algorithms::function_bank();
  wc.seed = seed;
  wc.zipf_s = 1.1;  // a popular head the affinity router can keep resident
  wc.payload_blocks = 2;
  wc.mode = workload::ArrivalMode::kClosedLoop;
  return workload::make_multi_client(wc);
}

FleetStats run_fleet(unsigned cards, DispatchPolicy policy,
                     const workload::MultiClientTrace& trace) {
  FleetConfig fc;
  fc.cards = cards;
  fc.policy = policy;
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  workload::replay(fleet, trace, request_input);
  fleet.run();
  return fleet.stats();
}

TEST(CoprocessorFleetTest, SingleCardFleetIsBitExactWithServer) {
  workload::MultiClientConfig wc;
  wc.clients = 4;
  wc.requests_per_client = 8;
  wc.functions = algorithms::function_bank();
  wc.seed = 13;
  wc.zipf_s = 1.0;
  wc.mode = workload::ArrivalMode::kOpenLoop;
  wc.mean_interarrival = sim::SimTime::us(80);
  const auto trace = workload::make_multi_client(wc);

  AgileCoprocessor card;
  card.download_all();
  CoprocessorServer server(card);
  workload::replay(server, trace, request_input);
  server.run();

  FleetConfig fc;
  fc.cards = 1;
  fc.policy = DispatchPolicy::kResidencyAffinity;
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  workload::replay(fleet, trace, request_input);
  fleet.run();

  // The extra dispatch hop must not perturb timing: every request's full
  // breakdown matches the bare server, event for event.  (Only the id
  // labels differ — the bare server numbers requests at submission, the
  // fleet's inner server at arrival.)
  const auto& direct = server.completed();
  const auto& sharded = fleet.server(0).completed();
  ASSERT_EQ(direct.size(), sharded.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].client, sharded[i].client);
    EXPECT_EQ(direct[i].function, sharded[i].function);
    EXPECT_EQ(direct[i].output, sharded[i].output);
    EXPECT_EQ(direct[i].submit_time, sharded[i].submit_time);
    EXPECT_EQ(direct[i].complete_time, sharded[i].complete_time);
    EXPECT_EQ(direct[i].bus_wait, sharded[i].bus_wait);
    EXPECT_EQ(direct[i].device_wait, sharded[i].device_wait);
    EXPECT_EQ(direct[i].load.hit, sharded[i].load.hit);
  }
  const auto a = server.stats();
  const auto b = fleet.stats();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.latency.p50, b.latency.p50);
  EXPECT_EQ(a.latency.p99, b.latency.p99);
}

TEST(CoprocessorFleetTest, RoundRobinCyclesCardsInOrder) {
  FleetConfig fc;
  fc.cards = 4;
  fc.policy = DispatchPolicy::kRoundRobin;
  CoprocessorFleet fleet(fc);
  fleet.download(KernelId::kXtea);

  const auto fn = algorithms::function_id(KernelId::kXtea);
  // Probing never advances the cursor...
  EXPECT_EQ(fleet.preview_card(fn), 0u);
  EXPECT_EQ(fleet.preview_card(fn), 0u);
  // ...only real dispatches do, cycling the cards in index order.
  for (unsigned i = 0; i < 8; ++i) {
    fleet.submit(i, KernelId::kXtea, request_input(fn, 1, i));
    fleet.run();
    EXPECT_EQ(fleet.stats().cards[i % 4].dispatched, i / 4 + 1)
        << "request " << i;
    EXPECT_EQ(fleet.preview_card(fn), (i + 1) % 4u);
  }
}

TEST(CoprocessorFleetTest, LeastQueuedBreaksTiesTowardLowestCard) {
  FleetConfig fc;
  fc.cards = 3;
  fc.policy = DispatchPolicy::kLeastQueued;
  CoprocessorFleet fleet(fc);
  fleet.download(KernelId::kCrc32);
  const auto fn = algorithms::function_id(KernelId::kCrc32);
  // Idle fleet: every probe is a three-way tie and must resolve to card 0.
  EXPECT_EQ(fleet.preview_card(fn), 0u);
  EXPECT_EQ(fleet.preview_card(fn), 0u);
}

TEST(CoprocessorFleetTest, AffinityRoutesToTheResidentCard) {
  FleetConfig fc;
  fc.cards = 4;
  fc.policy = DispatchPolicy::kResidencyAffinity;
  CoprocessorFleet fleet(fc);
  fleet.download_all();

  const auto fn = algorithms::function_id(KernelId::kSha256);
  // Cold fleet: no card holds SHA-256, so dispatch falls back (to card 0,
  // the least-queued tie-winner) and the warm-up makes card 0 resident.
  fleet.submit(0, KernelId::kSha256, request_input(fn, 2, 1));
  fleet.run();
  ASSERT_TRUE(fleet.card(0).mcu().is_resident(fn));

  const auto before = fleet.stats();
  EXPECT_EQ(before.affinity_fallback, 1u);

  // Warm fleet: every later SHA-256 request chases the resident card.
  for (unsigned i = 0; i < 4; ++i)
    fleet.submit(i, KernelId::kSha256, request_input(fn, 2, 2 + i));
  fleet.run();

  const auto after = fleet.stats();
  EXPECT_EQ(after.affinity_routed, before.affinity_routed + 4);
  EXPECT_EQ(after.cards[0].dispatched, 5u);
  for (unsigned i = 1; i < 4; ++i)
    EXPECT_EQ(after.cards[i].dispatched, 0u) << "card " << i;
  // All follow-ups were configuration hits on card 0.
  EXPECT_EQ(after.cards[0].config_hits, 4u);
}

TEST(CoprocessorFleetTest, AffinityBeatsRoundRobinHitRateOnSkewedTrace) {
  const auto trace = skewed_trace(29);
  const auto rr = run_fleet(4, DispatchPolicy::kRoundRobin, trace);
  const auto aff = run_fleet(4, DispatchPolicy::kResidencyAffinity, trace);

  ASSERT_EQ(rr.completed, trace.total_requests());
  ASSERT_EQ(aff.completed, trace.total_requests());
  // The whole point of the fleet's affinity signal: strictly more requests
  // find their configuration already on the fabric.
  EXPECT_GT(aff.hit_rate, rr.hit_rate);
  EXPECT_GT(aff.config_hits, rr.config_hits);
}

TEST(CoprocessorFleetTest, DispatchIsDeterministicAcrossRuns) {
  const auto trace = skewed_trace(31);
  for (const auto policy :
       {DispatchPolicy::kRoundRobin, DispatchPolicy::kLeastQueued,
        DispatchPolicy::kResidencyAffinity}) {
    const auto a = run_fleet(3, policy, trace);
    const auto b = run_fleet(3, policy, trace);
    EXPECT_EQ(a.completed, b.completed) << to_string(policy);
    EXPECT_EQ(a.makespan, b.makespan) << to_string(policy);
    EXPECT_EQ(a.config_hits, b.config_hits) << to_string(policy);
    EXPECT_EQ(a.latency.p99, b.latency.p99) << to_string(policy);
    ASSERT_EQ(a.cards.size(), b.cards.size());
    for (std::size_t i = 0; i < a.cards.size(); ++i)
      EXPECT_EQ(a.cards[i].dispatched, b.cards[i].dispatched)
          << to_string(policy) << " card " << i;
  }
}

TEST(CoprocessorFleetTest, OutputsMatchHostBaselineOnEveryCard) {
  FleetConfig fc;
  fc.cards = 3;
  fc.policy = DispatchPolicy::kRoundRobin;  // spray across all cards
  CoprocessorFleet fleet(fc);
  fleet.download_all();

  std::vector<std::pair<KernelId, Bytes>> submitted;
  unsigned client = 0;
  for (const auto& spec : algorithms::catalog()) {
    Bytes input = spec.make_input(2, 90 + client);
    fleet.submit(client, spec.id, input);
    submitted.emplace_back(spec.id, std::move(input));
    ++client;
  }
  fleet.run();

  std::size_t checked = 0;
  for (unsigned i = 0; i < fleet.card_count(); ++i)
    for (const ServerRequest& r : fleet.server(i).completed()) {
      const auto& [kernel, input] = submitted.at(r.client);
      ASSERT_EQ(algorithms::function_id(kernel), r.function);
      EXPECT_EQ(r.output, algorithms::spec(kernel).software(input))
          << algorithms::spec(kernel).name;
      ++checked;
    }
  EXPECT_EQ(checked, submitted.size());
}

TEST(CoprocessorFleetTest, StatsAggregateTheCards) {
  const auto trace = skewed_trace(37);
  FleetConfig fc;
  fc.cards = 4;
  fc.policy = DispatchPolicy::kResidencyAffinity;
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  workload::replay(fleet, trace, request_input);
  fleet.run();
  const auto stats = fleet.stats();

  EXPECT_EQ(stats.submitted, trace.total_requests());
  EXPECT_EQ(stats.completed, trace.total_requests());
  EXPECT_EQ(fleet.in_flight(), 0u);
  EXPECT_EQ(stats.config_hits + stats.config_misses, stats.completed);
  EXPECT_EQ(stats.affinity_routed + stats.affinity_fallback, stats.submitted);

  std::uint64_t per_card_completed = 0, per_card_dispatched = 0;
  for (const auto& card : stats.cards) {
    per_card_completed += card.server.completed;
    per_card_dispatched += card.dispatched;
    EXPECT_EQ(card.queue_depth, 0u);
    if (card.server.completed > 0) {  // an idle card's summary is all zeros
      EXPECT_LE(stats.latency.min, card.server.latency.min);
      EXPECT_GE(stats.latency.max, card.server.latency.max);
    }
  }
  EXPECT_EQ(per_card_completed, stats.completed);
  EXPECT_EQ(per_card_dispatched, stats.submitted);
  EXPECT_GT(stats.throughput_rps, 0.0);
  EXPECT_LE(stats.latency.p50, stats.latency.p99);
}

TEST(CoprocessorFleetTest, ClosedLoopReplayDrivesTheFleet) {
  workload::MultiClientConfig wc;
  wc.clients = 6;
  wc.requests_per_client = 4;
  wc.functions = algorithms::function_bank();
  wc.seed = 41;
  wc.mode = workload::ArrivalMode::kClosedLoop;
  wc.mean_think_time = sim::SimTime::us(15);
  const auto trace = workload::make_multi_client(wc);

  FleetConfig fc;
  fc.cards = 2;
  fc.policy = DispatchPolicy::kLeastQueued;
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  const std::size_t primed = workload::replay(fleet, trace, request_input);
  EXPECT_EQ(primed, wc.clients);  // one outstanding request per client
  fleet.run();
  EXPECT_EQ(fleet.stats().completed, wc.clients * wc.requests_per_client);
}

TEST(CoprocessorFleetTest, InFlightCountsDirectServerSubmissions) {
  FleetConfig fc;
  fc.cards = 2;
  CoprocessorFleet fleet(fc);
  fleet.download(KernelId::kCrc32);
  const auto fn = algorithms::function_id(KernelId::kCrc32);

  // One request through the dispatcher, one bypassing it straight into a
  // card's server — both count, and the tally drains to zero.
  fleet.submit(0, KernelId::kCrc32, request_input(fn, 1, 1));
  fleet.server(1).submit(0, KernelId::kCrc32, request_input(fn, 1, 2));
  EXPECT_EQ(fleet.in_flight(), 2u);
  fleet.run();
  EXPECT_EQ(fleet.in_flight(), 0u);
  const auto stats = fleet.stats();
  EXPECT_EQ(stats.submitted, 2u);  // the direct submission counts too
  EXPECT_EQ(stats.completed, 2u);
}

TEST(CoprocessorFleetTest, PolicyNamesRoundTrip) {
  EXPECT_STREQ(to_string(DispatchPolicy::kRoundRobin), "round-robin");
  EXPECT_STREQ(to_string(DispatchPolicy::kLeastQueued), "least-queued");
  EXPECT_STREQ(to_string(DispatchPolicy::kResidencyAffinity),
               "residency-affinity");
  EXPECT_STREQ(to_string(DevicePolicy::kFifo), "fifo");
  EXPECT_STREQ(to_string(DevicePolicy::kResidentFirst), "resident-first");
  EXPECT_STREQ(to_string(DevicePolicy::kShortestReconfigFirst),
               "shortest-reconfig-first");
}

TEST(CoprocessorFleetTest, DevicePolicyComposesWithDispatchPolicy) {
  // Dispatch picks the card, the device scheduler orders that card's ready
  // queue: the FleetConfig.server knobs reach every shard, the run
  // completes, and the overlap accounting aggregates fleet-wide.
  const auto trace = skewed_trace(31);
  FleetConfig fc;
  fc.cards = 2;
  fc.policy = DispatchPolicy::kResidencyAffinity;
  fc.server.device_policy = DevicePolicy::kResidentFirst;
  fc.server.overlap_reconfig = true;
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  for (unsigned i = 0; i < fleet.card_count(); ++i) {
    EXPECT_EQ(fleet.server(i).config().device_policy,
              DevicePolicy::kResidentFirst);
    EXPECT_TRUE(fleet.server(i).config().overlap_reconfig);
  }
  workload::replay(fleet, trace, request_input);
  fleet.run();

  const auto stats = fleet.stats();
  EXPECT_EQ(stats.completed, trace.total_requests());
  EXPECT_EQ(stats.total_device_wait,
            stats.total_engine_wait + stats.total_fabric_wait);
  // Per-card hidden-reconfig sums equal the fleet-wide total.
  sim::SimTime hidden;
  std::uint64_t overlapped = 0;
  for (const auto& card : stats.cards) {
    hidden += card.server.total_hidden_reconfig;
    overlapped += card.server.overlapped_loads;
  }
  EXPECT_EQ(stats.total_hidden_reconfig, hidden);
  EXPECT_EQ(stats.overlapped_loads, overlapped);
}

TEST(CoprocessorFleetTest, SingleCardFleetBitExactUnderReorderingPolicy) {
  // The dispatch hop stays timing-neutral for every ServerConfig, not just
  // the FIFO default.
  const auto trace = skewed_trace(37);
  ServerConfig sc;
  sc.device_policy = DevicePolicy::kShortestReconfigFirst;
  sc.overlap_reconfig = true;

  AgileCoprocessor card;
  card.download_all();
  CoprocessorServer server(card, sc);
  workload::replay(server, trace, request_input);
  server.run();

  FleetConfig fc;
  fc.cards = 1;
  fc.server = sc;
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  workload::replay(fleet, trace, request_input);
  fleet.run();

  const auto a = server.stats();
  const auto b = fleet.stats();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.latency.p99, b.latency.p99);
  EXPECT_EQ(a.total_hidden_reconfig, b.total_hidden_reconfig);
  EXPECT_EQ(a.total_engine_wait, b.total_engine_wait);
  EXPECT_EQ(a.total_fabric_wait, b.total_fabric_wait);
}

TEST(CoprocessorFleetTest, CostRoutingSteersToTheCheapestDeltaCard) {
  // Two versions of a 12-frame behavioral function differing in 2 frames.
  const auto& spec = algorithms::spec(KernelId::kXtea);
  bitstream::SynthParams params;
  params.frames = 12;
  params.seed = 21;
  bitstream::Bitstream v0 = bitstream::synthesize_behavioral(
      spec.name, algorithms::function_id(KernelId::kXtea), spec.input_width,
      spec.output_width, fabric::FrameGeometry{}, params);
  params.seed = 22;
  const bitstream::Bitstream alt = bitstream::synthesize_behavioral(
      spec.name, algorithms::function_id(KernelId::kXtea), spec.input_width,
      spec.output_width, fabric::FrameGeometry{}, params);
  bitstream::Bitstream v1 = v0;
  for (unsigned d = 0; d < 2; ++d) v1.frames[d] = alt.frames[d];

  auto make_fleet = [&](bool cost_routing) {
    FleetConfig fc;
    fc.cards = 2;
    fc.policy = DispatchPolicy::kResidencyAffinity;
    fc.cost_routing = cost_routing;
    fc.card.mcu.engine.delta_reconfig = true;
    auto fleet = std::make_unique<CoprocessorFleet>(fc);
    fleet->download_bitstream(9000, v0);
    fleet->download_bitstream(9001, v1);
    // Card 1 ran v0 and evicted it: its fabric still holds v0's frames, so
    // loading v1 there streams only the 2 dirty frames.  Card 0 is cold.
    fleet->card(1).mcu().ensure_loaded(9000);
    fleet->card(1).mcu().evict(9000);
    return fleet;
  };

  // Cost routing: no card is resident for v1, but card 1's delta estimate
  // is far below a cold load, so the tier-3 router picks it.
  auto fleet = make_fleet(true);
  EXPECT_EQ(fleet->preview_card(9001), 1u);
  fleet->submit_function(0, 9001, spec.make_input(2, 1));
  fleet->run();
  const auto stats = fleet->stats();
  EXPECT_EQ(stats.delta_routed, 1u);
  EXPECT_EQ(stats.affinity_fallback, 0u);
  EXPECT_EQ(stats.frames_skipped_delta, 10u);  // only 2 of 12 streamed

  // Binary residency check only: v1 is resident nowhere, so the request
  // falls back to least-queued — the cold card 0, paying the full load.
  auto binary = make_fleet(false);
  EXPECT_EQ(binary->preview_card(9001), 0u);
  binary->submit_function(0, 9001, spec.make_input(2, 1));
  binary->run();
  EXPECT_EQ(binary->stats().delta_routed, 0u);
  EXPECT_EQ(binary->stats().affinity_fallback, 1u);
}

TEST(CoprocessorFleetTest, SubmitInThePastThrows) {
  FleetConfig fc;
  fc.cards = 1;
  CoprocessorFleet fleet(fc);
  fleet.download(KernelId::kXtea);
  const auto fn = algorithms::function_id(KernelId::kXtea);
  fleet.submit(0, KernelId::kXtea, request_input(fn, 1, 1));
  fleet.run();
  EXPECT_THROW(
      fleet.submit_function_at(sim::SimTime::zero(), 0, fn,
                               request_input(fn, 1, 2)),
      Error);
}

}  // namespace
}  // namespace aad::core
