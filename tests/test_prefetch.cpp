// Speculative configuration prefetch: the Markov predictor
// (core/predictor.h), the MCU-level speculative steal rule, the server's
// idle-cycle pump accounting, and the fleet's prefetched routing tier.
//
// The load-bearing safety property is tested at every layer: a
// speculative load must never delay real work.  At the MCU that means a
// demand miss steals speculative frames FIRST (before the replacement
// policy even speaks); at the server it means the pump only runs on a
// fully idle card and only evicts dead-looking residents; and with the
// feature off, every prefetch counter is zero and the pipeline is
// untouched.
#include <gtest/gtest.h>

#include <vector>

#include "algorithms/kernels.h"
#include "core/fleet.h"
#include "core/predictor.h"
#include "core/server.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace aad::core {
namespace {

// --- FunctionPredictor unit behavior ----------------------------------------

TEST(PredictorTest, LearnsDominantSuccessor) {
  FunctionPredictor p;
  for (int i = 0; i < 4; ++i) {
    p.observe(0, 10);
    p.observe(0, 20);
  }
  const auto after_a = p.predict_after(0, 10);
  ASSERT_TRUE(after_a.has_value());
  EXPECT_EQ(after_a->function, 20u);
  EXPECT_DOUBLE_EQ(after_a->confidence, 1.0);
  // predict() conditions on the client's LAST completion (20 here).
  const auto next = p.predict(0);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->function, 10u);
}

TEST(PredictorTest, SelfTransitionsCarryNoSignal) {
  FunctionPredictor p;
  // A A A B, repeated: the only recorded edges are A->B and B->A — the
  // within-burst repeats are dropped (the repeat is already resident), so
  // the table is burst-granular.
  for (int i = 0; i < 3; ++i) {
    p.observe(0, 10);
    p.observe(0, 10);
    p.observe(0, 10);
    p.observe(0, 20);
  }
  EXPECT_EQ(p.observations(), 5u);  // 3x (A->B) + 2x (B->A), repeats free
  const auto after_a = p.predict_after(0, 10);
  ASSERT_TRUE(after_a.has_value());
  EXPECT_EQ(after_a->function, 20u);
  EXPECT_DOUBLE_EQ(after_a->confidence, 1.0);  // repeats did not dilute it
}

TEST(PredictorTest, ConfidenceAndSampleGating) {
  PredictorConfig pc;  // min_confidence 0.55, min_samples 2
  FunctionPredictor p(pc);
  // One observation: below min_samples.
  p.observe(0, 10);
  p.observe(0, 20);
  EXPECT_FALSE(p.predict_after(0, 10).has_value());
  // Even split A->B / A->C: 0.5 < 0.55, too flat to speak.
  p.observe(0, 10);
  p.observe(0, 30);
  EXPECT_FALSE(p.predict_after(0, 10).has_value());
  // A third edge to B tips the row over the threshold.
  p.observe(0, 10);
  p.observe(0, 20);
  const auto pred = p.predict_after(0, 10);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->function, 20u);
}

TEST(PredictorTest, UnseenClientAndFunctionFallBackToNothing) {
  FunctionPredictor p;
  EXPECT_FALSE(p.predict(7).has_value());
  p.observe(0, 10);
  p.observe(0, 20);
  p.observe(0, 10);
  p.observe(0, 20);
  EXPECT_FALSE(p.predict(7).has_value());             // other client
  EXPECT_FALSE(p.predict_after(0, 999).has_value());  // unseen function
}

TEST(PredictorTest, TieBreaksTowardLowestFunctionId) {
  PredictorConfig pc;
  pc.min_confidence = 0.5;
  FunctionPredictor p(pc);
  // Equal counts A->30 and A->20: the prediction must be a pure function
  // of the table, so the tie goes to the lower id.
  p.observe(0, 10);
  p.observe(0, 30);
  p.observe(0, 10);
  p.observe(0, 20);
  const auto pred = p.predict_after(0, 10);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->function, 20u);
  EXPECT_DOUBLE_EQ(pred->confidence, 0.5);
}

TEST(PredictorTest, DecayLetsANewWorkingSetOvertakeStaleHistory) {
  PredictorConfig pc;
  pc.decay_limit = 8;
  FunctionPredictor p(pc);
  for (int i = 0; i < 20; ++i) {
    p.observe(0, 10);
    p.observe(0, 20);  // long A->B history
  }
  // The client shifts to A->C.  With halving at 8 the stale majority is
  // overtaken in a bounded number of observations, not proportional to
  // the 20-round history.
  int flips = 0;
  for (; flips < 12; ++flips) {
    p.observe(0, 10);
    p.observe(0, 30);
    const auto pred = p.predict_after(0, 10);
    if (pred && pred->function == 30u) break;
  }
  EXPECT_LT(flips, 12) << "prediction never adapted to the shifted set";
}

// --- MCU: speculative residents and the steal rule --------------------------

// Pick bank functions and a geometry such that two functions fill the
// card exactly: the canonical contention triangle for eviction tests.
struct Triangle {
  memory::FunctionId a = 0, b = 0, c = 0;
  unsigned frames = 0;  ///< geometry sized to hold exactly {a, b}
};

std::map<memory::FunctionId, unsigned> probe_footprints() {
  AgileCoprocessor probe;
  probe.download_all();
  std::map<memory::FunctionId, unsigned> frames;
  for (const memory::FunctionId fn : algorithms::function_bank())
    frames[fn] = probe.mcu().estimate_load(fn).frames;
  return frames;
}

// Evicting b alone must make room for c: footprint(c) <= footprint(b).
Triangle make_steal_triangle() {
  const auto frames = probe_footprints();
  Triangle t;
  for (const auto& [fn, f] : frames) {
    if (t.b == 0 || f > frames.at(t.b)) t.b = fn;  // largest
    if (t.c == 0 || f < frames.at(t.c)) t.c = fn;  // smallest
  }
  for (const auto& [fn, f] : frames)
    if (fn != t.b && fn != t.c) { t.a = fn; break; }
  EXPECT_LE(frames.at(t.c), frames.at(t.b));
  t.frames = frames.at(t.a) + frames.at(t.b);
  return t;
}

// Evicting b alone must NOT make room for c (c needs a's frames too):
// footprint(b) < footprint(c) <= footprint(a) + footprint(b).
Triangle make_cadence_triangle() {
  const auto frames = probe_footprints();
  Triangle t;
  for (const auto& [fn, f] : frames) {
    if (t.a == 0 || f > frames.at(t.a)) t.a = fn;  // largest
    if (t.b == 0 || f < frames.at(t.b)) t.b = fn;  // smallest
  }
  const unsigned fa = frames.at(t.a), fb = frames.at(t.b);
  for (const auto& [fn, f] : frames)
    if (fn != t.a && fn != t.b && f > fb && f <= fa + fb) { t.c = fn; break; }
  EXPECT_NE(t.c, 0u) << "bank has no middle-weight function";
  t.frames = fa + fb;
  return t;
}

// A demand miss that needs frames steals them from a speculative resident
// IMMEDIATELY — even when the speculative function is the most recently
// touched and LRU would have evicted the older demand resident.
TEST(McuStealTest, DemandMissStealsSpeculativeBeforeLru) {
  const Triangle t = make_steal_triangle();
  CoprocessorConfig cc;
  cc.fabric.geometry.frame_count = t.frames;
  AgileCoprocessor card(cc);
  card.download_all();
  mcu::Mcu& mcu = card.mcu();

  sim::SimTime elapsed;
  mcu.load_invoke(t.a, sim::SimTime::us(0), &elapsed);   // demand, old
  mcu.load_invoke(t.b, sim::SimTime::us(500), &elapsed); // newer
  mcu.mark_speculative(t.b);
  ASSERT_TRUE(mcu.is_resident(t.a));
  ASSERT_TRUE(mcu.is_resident(t.b));
  ASSERT_EQ(mcu.speculative_count(), 1u);

  // Demand-load c: LRU's victim would be a (oldest), but the speculative
  // b must be stolen first.
  mcu.load_invoke(t.c, sim::SimTime::us(1000), &elapsed);
  EXPECT_TRUE(mcu.is_resident(t.c));
  EXPECT_FALSE(mcu.is_resident(t.b)) << "speculative frames were not stolen";
  EXPECT_TRUE(mcu.is_resident(t.a)) << "demand resident evicted instead of "
                                       "the speculative one";
  EXPECT_EQ(mcu.speculative_count(), 0u);
}

TEST(McuStealTest, PrefetchFeasibleProtectsLiveResidents) {
  const Triangle t = make_steal_triangle();
  CoprocessorConfig cc;
  cc.fabric.geometry.frame_count = t.frames;
  AgileCoprocessor card(cc);
  card.download_all();
  mcu::Mcu& mcu = card.mcu();

  sim::SimTime elapsed;
  mcu.load_invoke(t.a, sim::SimTime::us(0), &elapsed);
  mcu.load_invoke(t.b, sim::SimTime::us(100), &elapsed);
  const sim::SimTime min_idle = sim::SimTime::ms(1);

  // Residents touched 200us ago are live: speculating c may not displace
  // them even though load_feasible (the demand rule) would allow it.
  const sim::SimTime soon = sim::SimTime::us(300);
  EXPECT_TRUE(mcu.load_feasible(t.c));
  EXPECT_FALSE(mcu.prefetch_feasible(t.c, soon, min_idle, 2.0));

  // Resident functions are vacuously feasible; unknown ids never are.
  EXPECT_TRUE(mcu.prefetch_feasible(t.a, soon, min_idle, 2.0));
  EXPECT_FALSE(mcu.prefetch_feasible(999999u, soon, min_idle, 2.0));

  // Once both residents have idled past the floor they are dead and the
  // same speculation becomes feasible.
  EXPECT_TRUE(
      mcu.prefetch_feasible(t.c, sim::SimTime::ms(50), min_idle, 2.0));

  // Other speculative residents are always fair game, idle or not.
  mcu.mark_speculative(t.b);
  EXPECT_TRUE(mcu.prefetch_feasible(t.c, soon, min_idle, 2.0));
}

// The frequency-aware half of the gate: a resident reaccessed on a slow
// cadence is protected for a multiple of its own observed gap, well past
// the plain idle floor.
TEST(McuStealTest, PrefetchFeasibleScalesWithObservedCadence) {
  const Triangle t = make_cadence_triangle();
  CoprocessorConfig cc;
  cc.fabric.geometry.frame_count = t.frames;
  AgileCoprocessor card(cc);
  card.download_all();
  mcu::Mcu& mcu = card.mcu();

  sim::SimTime elapsed;
  mcu.load_invoke(t.a, sim::SimTime::us(0), &elapsed);
  mcu.load_invoke(t.b, sim::SimTime::us(0), &elapsed);
  // Re-access a on a 4ms cadence (resident load_invoke = FRT hit): mean
  // gap 4ms, so with factor 2 it stays protected until ~8ms idle even
  // though the 1ms floor has long passed.
  mcu.load_invoke(t.a, sim::SimTime::ms(4), &elapsed);
  mcu.load_invoke(t.a, sim::SimTime::ms(8), &elapsed);

  const sim::SimTime min_idle = sim::SimTime::ms(1);
  // At 9ms: b (accessed once, threshold = the 1ms floor) has idled 9ms
  // and is dead, but c does not fit in b\'s frames alone; a has idled
  // only 1ms < 2 x 4ms, so it still blocks the placement.
  EXPECT_FALSE(
      mcu.prefetch_feasible(t.c, sim::SimTime::ms(9), min_idle, 2.0))
      << "resident on a 4ms cadence was treated as dead at 1ms idle";
  // At 20ms a has idled 12ms > 2 x 4ms: both dead, speculation allowed.
  EXPECT_TRUE(
      mcu.prefetch_feasible(t.c, sim::SimTime::ms(20), min_idle, 2.0));
}

// --- server: pump accounting ------------------------------------------------

Bytes request_input(workload::FunctionId fn, std::size_t blocks,
                    std::size_t index) {
  return algorithms::bank_input(fn, blocks, index);
}

// A queued prefetch issues once the card is fully idle, the later demand
// for it is a hit, and the paid engine time is booked as hidden.
TEST(ServerPrefetchTest, IssueThenDemandHitAccounting) {
  AgileCoprocessor card;  // default geometry: free frames abound
  card.download_all();
  ServerConfig sc;
  sc.prefetch.enabled = true;
  CoprocessorServer server(card, sc);
  const auto bank = algorithms::function_bank();
  const memory::FunctionId a = bank[0], b = bank[1];

  server.submit_function(0, a, algorithms::bank_input(a, 1, 0), {});
  server.run();
  ASSERT_EQ(server.stats().prefetch_issued, 0u);

  server.queue_prefetch_at(server.now(), b);
  server.run();
  EXPECT_EQ(server.stats().prefetch_issued, 1u);
  EXPECT_TRUE(card.mcu().is_resident(b));
  EXPECT_TRUE(card.mcu().is_speculative(b));
  EXPECT_TRUE(server.prefetch_resident(b));
  EXPECT_EQ(card.mcu().pinned_count(), 0u) << "pump leaked a pin";

  bool fired = false;
  server.submit_function(0, b, algorithms::bank_input(b, 1, 1),
                         [&fired](const ServerRequest& done) {
                           fired = true;
                           EXPECT_FALSE(done.failed);
                           EXPECT_TRUE(done.load.hit)
                               << "prefetched function reloaded on demand";
                         });
  server.run();
  EXPECT_TRUE(fired);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.prefetch_hits, 1u);
  EXPECT_EQ(stats.prefetch_wasted, 0u);
  EXPECT_GT(stats.hidden_reconfig_prefetch, sim::SimTime::zero());
  EXPECT_FALSE(card.mcu().is_speculative(b)) << "hit did not consume the tag";
  EXPECT_FALSE(server.prefetch_resident(b));
  EXPECT_EQ(server.prefetch_outstanding(), 0u);
}

// A speculative resident stolen by demand work before its demand arrives
// is booked as wasted when that demand finally misses.
TEST(ServerPrefetchTest, StolenPrefetchBooksAsWasted) {
  const Triangle t = make_steal_triangle();
  CoprocessorConfig cc;
  cc.fabric.geometry.frame_count = t.frames;
  AgileCoprocessor card(cc);
  card.download_all();
  ServerConfig sc;
  sc.prefetch.enabled = true;
  CoprocessorServer server(card, sc);

  // Warm a, then prefetch c speculatively next to it.
  server.submit_function(0, t.a, algorithms::bank_input(t.a, 1, 0), {});
  server.run();
  server.queue_prefetch_at(server.now(), t.c);
  server.run();
  ASSERT_EQ(server.stats().prefetch_issued, 1u);
  ASSERT_TRUE(card.mcu().is_speculative(t.c));

  // Demand b: the triangle does not hold three, so the speculative c is
  // stolen to make room — real work was never delayed by the guess.
  server.submit_function(0, t.b, algorithms::bank_input(t.b, 1, 1), {});
  server.run();
  EXPECT_FALSE(card.mcu().is_resident(t.c));
  EXPECT_EQ(card.mcu().speculative_count(), 0u);

  // The demand for c now misses and settles the ledger: wasted, not hit.
  server.submit_function(0, t.c, algorithms::bank_input(t.c, 1, 2), {});
  server.run();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.prefetch_hits, 0u);
  EXPECT_EQ(stats.prefetch_wasted, 1u);
  EXPECT_EQ(stats.hidden_reconfig_prefetch, sim::SimTime::zero());
  EXPECT_EQ(server.prefetch_outstanding(), 0u);
}

// With the feature off (the default), the whole subsystem is inert: no
// counters move and queue_prefetch_at is a no-op.
TEST(ServerPrefetchTest, DisabledPathIsInert) {
  AgileCoprocessor card;
  card.download_all();
  CoprocessorServer server(card, {});
  const auto bank = algorithms::function_bank();
  server.queue_prefetch_at(server.now(), bank[1]);  // must be a no-op
  for (unsigned i = 0; i < 6; ++i)
    server.submit_function(i % 2, bank[i % bank.size()],
                           algorithms::bank_input(bank[i % bank.size()], 1, i),
                           {});
  server.run();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.prefetch_issued, 0u);
  EXPECT_EQ(stats.prefetch_hits, 0u);
  EXPECT_EQ(stats.prefetch_wasted, 0u);
  EXPECT_EQ(stats.hidden_reconfig_prefetch, sim::SimTime::zero());
  EXPECT_EQ(server.prefetch_outstanding(), 0u);
  EXPECT_EQ(card.mcu().speculative_count(), 0u);
}

// --- fleet: the prefetched routing tier -------------------------------------

// A card that prefetched a function wins routing for the demand that
// follows, ahead of every tier except an open batch.
TEST(FleetPrefetchTest, PrefetchedCardWinsRouting) {
  FleetConfig fc;
  fc.cards = 2;
  fc.policy = DispatchPolicy::kResidencyAffinity;
  fc.server.prefetch.enabled = true;
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  const auto bank = algorithms::function_bank();
  const memory::FunctionId fn = bank[3];

  // Warm fn speculatively on card 1 only.
  fleet.server(1).queue_prefetch_at(fleet.now(), fn);
  fleet.run();
  ASSERT_TRUE(fleet.server(1).prefetch_resident(fn));
  ASSERT_FALSE(fleet.server(0).prefetch_resident(fn));
  EXPECT_EQ(fleet.preview_card(fn), 1u);

  bool fired = false;
  fleet.submit_function(0, fn, algorithms::bank_input(fn, 1, 0),
                        [&fired](const ServerRequest& done) {
                          fired = true;
                          EXPECT_FALSE(done.failed);
                          EXPECT_TRUE(done.load.hit);
                        });
  fleet.run();
  EXPECT_TRUE(fired);
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.prefetch_routed, 1u);
  EXPECT_EQ(stats.prefetch_hits, 1u);
  EXPECT_GT(stats.hidden_reconfig_prefetch, sim::SimTime::zero());
}

// Fleet-wide off-path: a real multi-client run with prefetch disabled
// reports zero across every prefetch counter.
TEST(FleetPrefetchTest, DisabledFleetCountersStayZero) {
  workload::BurstyConfig wc;
  wc.clients = 4;
  wc.bursts = 2;
  wc.burst_size = 4;
  wc.functions = algorithms::function_bank();
  wc.seed = 91;
  FleetConfig fc;
  fc.cards = 2;
  fc.policy = DispatchPolicy::kResidencyAffinity;
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  workload::replay(fleet, workload::make_bursty(wc), request_input);
  fleet.run();
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.prefetch_routed, 0u);
  EXPECT_EQ(stats.prefetch_issued, 0u);
  EXPECT_EQ(stats.prefetch_hits, 0u);
  EXPECT_EQ(stats.prefetch_wasted, 0u);
  EXPECT_EQ(stats.prefetch_cross, 0u);
  EXPECT_EQ(stats.hidden_reconfig_prefetch, sim::SimTime::zero());
}

// Cross-card warming: with the hot card's frames pinned full by a live
// working set, the fleet predictor parks the predicted next function on
// the cold sibling and the routing tier steers the demand there.
TEST(FleetPrefetchTest, PhasedWorkloadPrefetchesAndHits) {
  workload::PhasedConfig pc;
  pc.clients = 4;
  pc.phases = 5;
  pc.requests_per_phase = 10;
  pc.functions = algorithms::function_bank();
  pc.working_set = 3;
  pc.phase_stride = 3;
  pc.seed = 17;
  pc.mean_interarrival = sim::SimTime::ms(1);
  FleetConfig fc;
  fc.cards = 2;
  fc.policy = DispatchPolicy::kResidencyAffinity;
  fc.server.prefetch.enabled = true;
  fc.server.prefetch.predictor.min_confidence = 0.35;
  CoprocessorFleet fleet(fc);
  fleet.download_all();
  workload::replay(fleet, workload::make_phased(pc), request_input);
  fleet.run();
  const FleetStats stats = fleet.stats();
  EXPECT_GT(stats.prefetch_issued, 0u) << "pump never fired on phased load";
  EXPECT_GE(stats.prefetch_issued,
            stats.prefetch_hits + stats.prefetch_wasted);
  EXPECT_EQ(fleet.in_flight(), 0u);
  for (unsigned i = 0; i < fleet.card_count(); ++i)
    EXPECT_EQ(fleet.card(i).mcu().pinned_count(), 0u)
        << "card " << i << " leaked a prefetch pin";
}

}  // namespace
}  // namespace aad::core
