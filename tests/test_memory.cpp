// Tests for the two-ended ROM image, record serialization, ROM/RAM timing
// models and the local RAM staging buffer.
#include <gtest/gtest.h>

#include "common/prng.h"
#include "memory/ram.h"
#include "memory/rom.h"

namespace aad::memory {
namespace {

RomRecord sample_record(FunctionId id) {
  RomRecord rec;
  rec.function_id = id;
  rec.name = "kernel" + std::to_string(id);
  rec.kind = bitstream::FunctionKind::kBehavioral;
  rec.codec = compress::CodecId::kLzss;
  rec.raw_size = 6144;
  rec.frames = 4;
  rec.clb_rows = 16;
  rec.input_width = 64;
  rec.output_width = 64;
  rec.kernel_id = id;
  return rec;
}

Bytes payload_of(std::size_t n, std::uint64_t seed) {
  Prng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = static_cast<Byte>(rng.next());
  return b;
}

TEST(RomRecordTest, SerializeParseRoundtrip) {
  RomRecord rec = sample_record(3);
  rec.start = 1234;
  rec.compressed_size = 999;
  rec.payload_crc = 0xDEADBEEF;
  const Bytes wire = serialize_record(rec);
  EXPECT_EQ(wire.size(), kRecordBytes);
  EXPECT_EQ(parse_record(wire), rec);
}

TEST(RomRecordTest, ChecksumCatchesTamper) {
  const Bytes wire = serialize_record(sample_record(1));
  for (std::size_t pos : {std::size_t{0}, std::size_t{10}, kRecordBytes - 1}) {
    Bytes bad = wire;
    bad[pos] ^= 0x01;
    EXPECT_THROW(parse_record(bad), Error) << "pos " << pos;
  }
}

TEST(RomImageTest, StoreAssignsLayoutFields) {
  RomImage rom(64 * 1024);
  const Bytes payload = payload_of(1000, 5);
  const RomRecord stored = rom.store(sample_record(1), payload);
  EXPECT_EQ(stored.start, 0u);
  EXPECT_EQ(stored.compressed_size, 1000u);
  const Bytes p2 = payload_of(500, 6);
  const RomRecord second = rom.store(sample_record(2), p2);
  EXPECT_EQ(second.start, 1000u);  // data grows upward
  EXPECT_EQ(rom.records().size(), 2u);
  EXPECT_EQ(rom.data_bytes(), 1500u);
  EXPECT_EQ(rom.record_bytes(), 2 * kRecordBytes);
}

TEST(RomImageTest, PayloadReadBack) {
  RomImage rom(64 * 1024);
  const Bytes payload = payload_of(777, 9);
  const RomRecord stored = rom.store(sample_record(4), payload);
  const ByteSpan back = rom.payload(stored);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), back.begin()));
}

TEST(RomImageTest, LookupByFunctionId) {
  RomImage rom(64 * 1024);
  rom.store(sample_record(10), payload_of(100, 1));
  rom.store(sample_record(20), payload_of(100, 2));
  EXPECT_TRUE(rom.lookup(10).has_value());
  EXPECT_EQ(rom.lookup(20)->function_id, 20u);
  EXPECT_FALSE(rom.lookup(30).has_value());
}

TEST(RomImageTest, DuplicateIdRejected) {
  RomImage rom(64 * 1024);
  rom.store(sample_record(1), payload_of(10, 1));
  EXPECT_THROW(rom.store(sample_record(1), payload_of(10, 2)), Error);
}

TEST(RomImageTest, TwoEndedCollisionIsCapacityExceeded) {
  // 4 KiB ROM: data region + record slots must not meet.
  RomImage rom(4096);
  rom.store(sample_record(1), payload_of(3000, 1));
  try {
    rom.store(sample_record(2), payload_of(2000, 2));
    FAIL() << "expected capacity exception";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCapacityExceeded);
  }
  // A stream that still fits (4096 - 3000 - 2*64 = 968) is accepted.
  EXPECT_NO_THROW(rom.store(sample_record(3), payload_of(900, 3)));
  // And now even a tiny one collides with the record region.
  EXPECT_THROW(rom.store(sample_record(4), payload_of(100, 4)), Error);
}

TEST(RomImageTest, FreeBytesAccounting) {
  RomImage rom(8192);
  const std::size_t before = rom.free_bytes();
  rom.store(sample_record(1), payload_of(1000, 1));
  EXPECT_EQ(rom.free_bytes(), before - 1000 - kRecordBytes);
}

TEST(RomImageTest, ClearErasesEverything) {
  RomImage rom(8192);
  rom.store(sample_record(1), payload_of(1000, 1));
  rom.clear();
  EXPECT_TRUE(rom.records().empty());
  EXPECT_EQ(rom.data_bytes(), 0u);
  EXPECT_FALSE(rom.lookup(1).has_value());
}

TEST(RomTimingTest, SequentialReadScalesWithSize) {
  const RomTiming timing;
  EXPECT_EQ(timing.read_time(0), sim::SimTime::zero());
  const auto t1k = timing.read_time(1024);
  const auto t4k = timing.read_time(4096);
  EXPECT_GT(t4k, t1k * 3);
  EXPECT_LT(t4k, t1k * 5);
  // Writes are slower (flash programming).
  EXPECT_GT(timing.write_time(1024), t1k * 3);
}

TEST(LocalRamTest, AllocateWriteRead) {
  LocalRam ram(4096);
  const std::size_t off = ram.allocate(128);
  const Bytes data = payload_of(128, 3);
  ram.write(off, data);
  const ByteSpan back = ram.read(off, 128);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), back.begin()));
}

TEST(LocalRamTest, ExhaustionThrows) {
  LocalRam ram(256);
  ram.allocate(200);
  EXPECT_THROW(ram.allocate(100), Error);
  ram.reset_allocation();
  EXPECT_NO_THROW(ram.allocate(100));
}

TEST(LocalRamTest, HighWaterMarkTracksPeak) {
  LocalRam ram(1024);
  ram.allocate(100);
  ram.allocate(200);
  ram.reset_allocation();
  ram.allocate(50);
  EXPECT_EQ(ram.high_water_mark(), 300u);
}

TEST(LocalRamTest, BoundsChecked) {
  LocalRam ram(64);
  EXPECT_THROW(ram.write(60, payload_of(8, 1)), Error);
  EXPECT_THROW(ram.read(60, 8), Error);
}

TEST(RamTimingTest, AccessTimeScales) {
  const RamTiming timing;
  EXPECT_LT(timing.access_time(4), timing.access_time(400));
}

}  // namespace
}  // namespace aad::memory
