// The telemetry subsystem: the perf-counter registry (telemetry/registry.h)
// and the Chrome-trace sink (telemetry/trace_sink.h).
//
// Registry: get-or-register handle stability, enumeration order, reset
// semantics, and the cross-kind name-collision contract — plus the
// integration property the refactor rests on: McuStats/ServerStats are thin
// views over the card's registry, so the named counters and the snapshot
// structs can never disagree.
//
// Trace sink: deterministic merge order, the span/instant encodings, and
// span *nesting* on real server runs across the three lifecycle paths —
// overlapped reconfiguration, windowed batching (hold spans), and
// speculative prefetch (engine-lane speculation) — with the hardware lanes
// (pci/engine/fabric) staying serialized, because each mirrors a resource
// the simulator books exclusively.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/coprocessor.h"
#include "core/fleet.h"
#include "core/server.h"
#include "telemetry/registry.h"
#include "telemetry/trace_sink.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace aad {
namespace {

using algorithms::KernelId;
using telemetry::TraceEvent;

// --- registry ---------------------------------------------------------------

TEST(RegistryTest, GetOrRegisterReturnsOneStableHandle) {
  telemetry::Registry registry;
  telemetry::Counter& a = registry.counter("mcu.invocations");
  telemetry::Counter& b = registry.counter("mcu.invocations");
  EXPECT_EQ(&a, &b);  // two subsystems may share one counter
  EXPECT_EQ(registry.size(), 1u);

  a.add();
  b.add(4);
  EXPECT_EQ(a.value(), 5u);

  a.add_time(sim::SimTime::us(2));
  EXPECT_EQ(a.time(), sim::SimTime::us(2) + sim::SimTime::ps(5));
}

TEST(RegistryTest, GaugeTracksLevelAndHighWater) {
  telemetry::Registry registry;
  telemetry::Gauge& depth = registry.gauge("server.device_queue_depth");
  depth.set(3);
  depth.adjust(+2);
  depth.set(1);
  EXPECT_EQ(depth.value(), 1);
  EXPECT_EQ(depth.high_water(), 5);  // only ever rises
}

TEST(RegistryTest, SnapshotEnumeratesInRegistrationOrder) {
  telemetry::Registry registry;
  registry.counter("a.hits").add(7);
  registry.gauge("a.depth").set(-2);
  registry.counter("b.misses");

  const std::vector<telemetry::MetricSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a.hits");
  EXPECT_EQ(samples[0].kind, telemetry::MetricKind::kCounter);
  EXPECT_EQ(samples[0].value, 7u);
  EXPECT_EQ(samples[1].name, "b.misses");
  EXPECT_EQ(samples[1].value, 0u);
  EXPECT_EQ(samples[2].name, "a.depth");
  EXPECT_EQ(samples[2].kind, telemetry::MetricKind::kGauge);
  EXPECT_EQ(samples[2].high_water, 0);
}

TEST(RegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  telemetry::Registry registry;
  telemetry::Counter& hits = registry.counter("hits");
  telemetry::Gauge& depth = registry.gauge("depth");
  hits.add(9);
  depth.set(4);

  registry.reset();
  EXPECT_EQ(registry.size(), 2u);          // registrations survive
  EXPECT_EQ(&registry.counter("hits"), &hits);  // handles stay valid
  EXPECT_EQ(hits.value(), 0u);
  EXPECT_EQ(depth.value(), 0);
  EXPECT_EQ(depth.high_water(), 0);  // high-water resets too

  hits.add();
  EXPECT_EQ(registry.find_counter("hits")->value(), 1u);
}

TEST(RegistryTest, CrossKindNameCollisionIsFatal) {
  telemetry::Registry registry;
  registry.counter("mcu.evictions");
  EXPECT_THROW(registry.gauge("mcu.evictions"), Error);
  registry.gauge("queue");
  EXPECT_THROW(registry.counter("queue"), Error);
}

TEST(RegistryTest, FindProbesWithoutRegistering) {
  telemetry::Registry registry;
  EXPECT_EQ(registry.find_counter("absent"), nullptr);
  EXPECT_EQ(registry.find_gauge("absent"), nullptr);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(RegistryTest, CardStatsAreAViewOverTheRegistry) {
  // The refactor's core property: Mcu::stats() is built BY READING the
  // card's registry, so the enumerable counters and the snapshot struct
  // cannot drift apart.
  core::AgileCoprocessor card;
  card.download(KernelId::kSha256);
  card.download(KernelId::kAes128);
  const Bytes input = algorithms::bank_input(
      algorithms::function_id(KernelId::kSha256), 2, 1);
  card.invoke(KernelId::kSha256, input);
  card.invoke(KernelId::kSha256, input);

  const mcu::McuStats stats = card.mcu().stats();
  EXPECT_EQ(stats.invocations, 2u);
  const telemetry::Counter* invocations =
      card.registry().find_counter("mcu.invocations");
  ASSERT_NE(invocations, nullptr);
  EXPECT_EQ(invocations->value(), stats.invocations);
  EXPECT_EQ(card.registry().find_counter("mcu.config_hits")->value(),
            stats.config_hits);
  EXPECT_EQ(card.registry().find_counter("mcu.config_misses")->value(),
            stats.config_misses);
}

// --- trace sink (unit) ------------------------------------------------------

TEST(TraceSinkTest, MergeIsTheDeterministicTotalOrder) {
  telemetry::TraceSink sink;
  const std::uint32_t p1 = sink.add_process("card 0");
  const std::uint32_t p2 = sink.add_process("card 1");
  telemetry::TraceTrack* a = sink.add_track(p1, "engine", 0);
  telemetry::TraceTrack* b = sink.add_track(p2, "engine", 1);

  // Record out of time order and across tracks; merged() must come back
  // sorted by (ts, process, track, seq) regardless of append order.
  b->span("engine", "load", sim::SimTime::us(5), sim::SimTime::us(7));
  a->instant("fault", "late", sim::SimTime::us(9));
  a->span("engine", "load", sim::SimTime::us(1), sim::SimTime::us(2));
  a->span("engine", "decode", sim::SimTime::us(5), sim::SimTime::us(6));

  const std::vector<TraceEvent> merged = sink.merged();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_STREQ(merged[0].name, "load");      // ts=1, card 0
  EXPECT_EQ(merged[0].card, 0);
  EXPECT_STREQ(merged[1].name, "decode");    // ts=5, process 1 < process 2
  EXPECT_EQ(merged[1].process, p1);
  EXPECT_STREQ(merged[2].name, "load");      // ts=5, process 2
  EXPECT_EQ(merged[2].process, p2);
  EXPECT_STREQ(merged[3].name, "late");      // ts=9, instant
  EXPECT_FALSE(merged[3].is_span());
  EXPECT_TRUE(merged[0].is_span());
}

TEST(TraceSinkTest, SpanEndingBeforeItBeginsIsFatal) {
  telemetry::TraceSink sink;
  telemetry::TraceTrack* t = sink.add_track(sink.add_process("p"), "lane");
  EXPECT_THROW(
      t->span("pci", "bad", sim::SimTime::us(2), sim::SimTime::us(1)), Error);
  EXPECT_TRUE(sink.empty());
}

TEST(TraceSinkTest, WriteChromeTraceEmitsNamedTracks) {
  telemetry::TraceSink sink;
  const std::uint32_t pid = sink.add_process("card 0");
  telemetry::TraceTrack* pci = sink.add_track(pid, "pci", 0);
  pci->span("pci", "pci-in", sim::SimTime::us(1), sim::SimTime::us(3),
            /*request=*/7, /*client=*/2, /*function=*/11);

  const std::string path =
      ::testing::TempDir() + "telemetry_trace_test.json";
  ASSERT_TRUE(sink.write_chrome_trace(path.c_str()));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 12, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.find("\"process_name\""), std::string::npos);
  EXPECT_NE(contents.find("\"card 0\""), std::string::npos);
  EXPECT_NE(contents.find("\"pci-in\""), std::string::npos);
  // ts = 1us as fixed six-decimal microseconds; request arg present.
  EXPECT_NE(contents.find("\"ts\":1.000000"), std::string::npos);
  EXPECT_NE(contents.find("\"request\":7"), std::string::npos);
}

// --- trace spans on real server runs ----------------------------------------

// The four lanes CoprocessorServer::attach_trace registers, in order.
constexpr std::uint32_t kPciLane = 0;
constexpr std::uint32_t kEngineLane = 1;
constexpr std::uint32_t kFabricLane = 2;
constexpr std::uint32_t kBatchLane = 3;

Bytes request_input(workload::FunctionId fn, std::size_t blocks,
                    std::size_t index) {
  return algorithms::bank_input(fn, blocks, index);
}

std::vector<TraceEvent> lane(const std::vector<TraceEvent>& merged,
                             std::uint32_t track, std::uint32_t process = 1) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : merged)
    if (e.process == process && e.track == track) out.push_back(e);
  return out;
}

std::vector<TraceEvent> lane_spans(const std::vector<TraceEvent>& merged,
                                   std::uint32_t track,
                                   std::uint32_t process = 1) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : lane(merged, track, process))
    if (e.is_span()) out.push_back(e);
  return out;
}

// Hardware lanes mirror exclusively-booked resources: their spans must
// tile without overlap.
void expect_serialized(const std::vector<TraceEvent>& spans,
                       const char* which) {
  std::int64_t busy_until = 0;
  for (const TraceEvent& e : spans) {
    EXPECT_GE(e.ts_ps, busy_until)
        << which << " lane: span '" << e.name << "' overlaps its predecessor";
    busy_until = e.ts_ps + e.dur_ps;
  }
}

std::size_t count_named(const std::vector<TraceEvent>& events,
                        const char* name) {
  std::size_t n = 0;
  for (const TraceEvent& e : events)
    if (std::strcmp(e.name, name) == 0) ++n;
  return n;
}

TEST(ServerTraceTest, OverlapRunEmitsNestedLifecycleSpans) {
  workload::MultiClientConfig wc;
  wc.clients = 4;
  wc.requests_per_client = 8;
  wc.functions = algorithms::function_bank();
  wc.seed = 21;
  wc.zipf_s = 1.0;
  wc.payload_blocks = 2;
  wc.mode = workload::ArrivalMode::kOpenLoop;
  wc.mean_interarrival = sim::SimTime::us(80);
  const auto trace = workload::make_multi_client(wc);

  core::AgileCoprocessor card;
  card.download_all();
  core::CoprocessorServer server(card);  // overlapped reconfiguration on
  telemetry::TraceSink sink;
  server.attach_trace(sink, "card 0", 0);
  workload::replay(server, trace, request_input);
  server.run();
  const core::ServerStats stats = server.stats();
  const std::vector<TraceEvent> merged = sink.merged();

  // Every lane only carries its own categories, stamped with the card.
  for (const TraceEvent& e : merged) EXPECT_EQ(e.card, 0);

  const auto pci = lane_spans(merged, kPciLane);
  const auto engine = lane_spans(merged, kEngineLane);
  const auto fabric = lane_spans(merged, kFabricLane);
  expect_serialized(pci, "pci");
  expect_serialized(engine, "engine");
  expect_serialized(fabric, "fabric");

  // One pci-in + one pci-out per completed request; one execute window per
  // completed request; one decode per committed batch (batch-of-one here,
  // so the engine's decode count IS the registry's batch counter).
  EXPECT_EQ(count_named(pci, "pci-in"), stats.completed);
  EXPECT_EQ(count_named(pci, "pci-out"), stats.completed);
  EXPECT_EQ(fabric.size(), stats.completed);
  EXPECT_EQ(count_named(engine, "decode"), stats.batches);
  EXPECT_EQ(stats.batches, stats.completed);  // BatchMode::kNone

  // Nesting per request: pci-in ends before its execute window begins, and
  // the execute window ends before pci-out begins.  Spans carry the args
  // the validator (scripts/check_trace.py) requires.
  std::map<std::int64_t, std::int64_t> pci_in_end, exec_begin, exec_end;
  for (const TraceEvent& e : pci)
    if (std::strcmp(e.name, "pci-in") == 0)
      pci_in_end[e.request] = e.ts_ps + e.dur_ps;
  for (const TraceEvent& e : fabric) {
    exec_begin[e.request] = e.ts_ps;
    exec_end[e.request] = e.ts_ps + e.dur_ps;
    EXPECT_GE(e.request, 0);
    EXPECT_GE(e.client, 0);
    EXPECT_GE(e.function, 0);
  }
  for (const TraceEvent& e : pci)
    if (std::strcmp(e.name, "pci-out") == 0) {
      ASSERT_TRUE(exec_end.contains(e.request));
      EXPECT_LE(exec_end[e.request], e.ts_ps);
    }
  for (const auto& [request, begin] : exec_begin) {
    ASSERT_TRUE(pci_in_end.contains(request));
    EXPECT_LE(pci_in_end[request], begin);
  }
}

TEST(ServerTraceTest, WindowedBatchingEmitsHoldSpans) {
  // Bursty same-function traffic under a windowed horizon: followers
  // coalesce behind a leader, and every hold that actually delayed its
  // batch shows up as a batch-hold span on the (logical, overlappable)
  // batch lane.
  workload::BurstyConfig bc;
  bc.clients = 3;
  bc.bursts = 2;
  bc.burst_size = 4;
  bc.functions = {algorithms::function_id(KernelId::kSha256),
                  algorithms::function_id(KernelId::kAes128),
                  algorithms::function_id(KernelId::kFft)};
  bc.seed = 59;
  bc.payload_blocks = 2;
  bc.zipf_s = 0.3;
  bc.mean_intra_gap = sim::SimTime::us(40);
  bc.mean_inter_gap = sim::SimTime::us(3000);
  const auto trace = workload::make_bursty(bc);

  core::ServerConfig sc;
  sc.batch.mode = core::BatchMode::kWindowed;
  sc.batch.window = sim::SimTime::us(50);

  core::AgileCoprocessor card;
  card.download_all();
  core::CoprocessorServer server(card, sc);
  telemetry::TraceSink sink;
  server.attach_trace(sink, "card 0", 0);
  workload::replay(server, trace, request_input);
  server.run();
  const core::ServerStats stats = server.stats();
  const std::vector<TraceEvent> merged = sink.merged();

  ASSERT_GT(stats.coalesced_loads, 0u);  // batching actually happened
  EXPECT_LT(stats.batches, stats.completed);

  // decode spans still count batches (leaders), and the fabric still runs
  // one execute window per member, serialized.
  const auto engine = lane_spans(merged, kEngineLane);
  const auto fabric = lane_spans(merged, kFabricLane);
  EXPECT_EQ(count_named(engine, "decode"), stats.batches);
  EXPECT_EQ(fabric.size(), stats.completed);
  expect_serialized(fabric, "fabric");

  const auto holds = lane_spans(merged, kBatchLane);
  EXPECT_GT(holds.size(), 0u);
  for (const TraceEvent& e : holds) {
    EXPECT_STREQ(e.name, "batch-hold");
    EXPECT_GE(e.function, 0);  // which function the window held for
    EXPECT_GT(e.dur_ps, 0);    // zero-delay holds are not recorded
  }
}

TEST(ServerTraceTest, PrefetchRunEmitsSpeculativeEngineSpans) {
  // A strictly cyclic pattern over heavyweight kernels whose combined
  // footprint exceeds the fabric (so the next function in the cycle is
  // never still resident): the Markov predictor reaches full confidence
  // after one period, and the pump issues speculative loads in the idle
  // windows between arrivals — each one a prefetch-load span on the ENGINE
  // lane (speculation occupies the real config engine), still serialized
  // against the demand decode/loads.  A one-card fleet, because only a
  // fleet dispatches at arrival time — a bare server counts pre-submitted
  // trace requests as in flight, which parks the idle-only pump.
  core::FleetConfig fc;
  fc.cards = 1;
  fc.server.prefetch.enabled = true;
  fc.server.prefetch.predictor.min_confidence = 0.35;
  core::CoprocessorFleet fleet(fc);
  telemetry::TraceSink sink;
  fleet.attach_trace(sink, "fleet");
  fleet.download_all();

  const std::vector<memory::FunctionId> cycle = {
      algorithms::function_id(KernelId::kSha256),
      algorithms::function_id(KernelId::kAes128),
      algorithms::function_id(KernelId::kMatMul),
      algorithms::function_id(KernelId::kFft),
      algorithms::function_id(KernelId::kModExp)};
  const sim::SimTime base = fleet.now();  // download_all advanced the clock
  for (std::size_t i = 0; i < 25; ++i) {
    const memory::FunctionId fn = cycle[i % cycle.size()];
    fleet.submit_function_at(base + sim::SimTime::ms(3 * (i + 1)),
                             /*client=*/0, fn,
                             algorithms::bank_input(fn, 2, i),
                             [](const core::ServerRequest&) {});
  }
  fleet.run();
  const core::FleetStats stats = fleet.stats();
  const std::vector<TraceEvent> merged = sink.merged();

  ASSERT_GT(stats.prefetch_issued, 0u);
  EXPECT_GT(stats.prefetch_hits, 0u);

  // Process 1 is the fleet (dispatch lane); process 2 is card 0's lanes.
  const auto dispatch = lane(merged, 0, /*process=*/1);
  EXPECT_EQ(dispatch.size(), stats.submitted);
  for (const TraceEvent& e : dispatch) {
    EXPECT_STREQ(e.name, "dispatch");
    EXPECT_EQ(e.card, 0);  // which card the decision picked
  }

  const auto engine = lane_spans(merged, kEngineLane, /*process=*/2);
  expect_serialized(engine, "engine");
  EXPECT_EQ(count_named(engine, "prefetch-load"), stats.prefetch_issued);
  for (const TraceEvent& e : engine)
    if (std::strcmp(e.name, "prefetch-load") == 0) {
      EXPECT_STREQ(e.category, "prefetch");
      EXPECT_GE(e.function, 0);   // what was speculated
      EXPECT_EQ(e.request, -1);   // no demand request owns it
    }
}

}  // namespace
}  // namespace aad
