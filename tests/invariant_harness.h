// Property-based invariant harness for fault injection + recovery.
//
// One harness case = one seeded (fault plan, workload, fleet configuration)
// triple driven to completion, followed by a sweep of system-wide
// invariants that must hold for EVERY seed, not just the hand-picked
// regression scenarios:
//
//   1. Conservation — every submitted request completes or fails exactly
//      once (its hook fires once), ok + failed == submitted, and the fleet
//      drains (in_flight() == 0, scheduler idle).
//   2. Pin hygiene — after the drain, no card holds a pin reference
//      (PinGuard/batch unpins balanced even across deaths and cancels).
//   3. Liveness isolation — no completed request's fabric window overlaps
//      a death interval of the card it ran on (a dead card does no work).
//   4. Delta-tracker consistency — every tracked frame hash of a resident
//      function matches a readback of the fabric words it claims to
//      describe, across deaths (reset_fabric clears tracking) and
//      recoveries (cold fabric, fresh tracking).
//   5. Determinism — the same seed produces a byte-identical outcome
//      digest (compare InvariantHarness::digest() across two runs).
//
// Tests assert check() returns no violations across many seeds and policy
// combinations; the mutation tests assert a deliberately broken run (a
// doctored completion count, a leaked pin) is CAUGHT, so the harness can
// never silently rot into a tautology.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/kernels.h"
#include "core/fleet.h"
#include "sim/fault.h"
#include "workload/multiclient.h"

namespace aad::harness {

/// Host threads for harness fleets: the AAD_INVARIANT_THREADS environment
/// variable (the TSan job and the nightly sweep set it to exercise the
/// sharded parallel engine) or `fallback` (1 = classic engine).
inline unsigned invariant_thread_count(unsigned fallback = 1) {
  if (const char* env = std::getenv("AAD_INVARIANT_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  return fallback;
}

struct HarnessConfig {
  std::uint64_t seed = 1;

  // Fleet shape.
  unsigned cards = 4;
  /// Simulation engine threads (FleetConfig::threads).  Defaults to the
  /// AAD_INVARIANT_THREADS environment override so the existing sweeps
  /// re-run unchanged against the parallel engine; 1 = classic engine.
  unsigned threads = invariant_thread_count();
  core::DispatchPolicy dispatch = core::DispatchPolicy::kResidencyAffinity;
  core::DevicePolicy device = core::DevicePolicy::kFifo;
  core::BatchConfig batch;  ///< kNone default: batches of one
  bool overlap_reconfig = true;
  bool delta_reconfig = false;

  // Fault plan (sim/fault.h generator knobs).
  double death_rate_per_ms = 0.02;
  sim::SimTime mean_downtime = sim::SimTime::ms(1);
  double corruption_rate_per_ms = 0.0;
  sim::SimTime fault_horizon = sim::SimTime::ms(20);

  // Watchdog (zero timeout = disabled).
  sim::SimTime timeout;
  unsigned max_retries = 2;

  // Speculative prefetch (core::PrefetchConfig).  Off by default so every
  // pre-existing sweep is unchanged; the prefetch sweeps turn it on to
  // prove speculative pins unwind like demand pins across deaths.
  bool prefetch = false;
  double prefetch_confidence = 0.35;

  // Workload (bursty open-loop traffic over the full kernel bank).
  unsigned clients = 6;
  std::size_t bursts = 3;
  std::size_t burst_size = 4;
  double zipf_s = 0.9;
};

/// FNV-1a fingerprint of a drained fleet's outcome: headline stats plus
/// every completed record's identity and timeline, per card.  Shared by
/// InvariantHarness::digest() (invariant 5) and bench_parallel's digest
/// column, and THE equality tests/test_parallel.cpp holds across thread
/// counts: digest(threads=N) == digest(threads=1) for open-loop traces.
inline std::uint64_t fleet_digest(const core::CoprocessorFleet& fleet,
                                  std::uint64_t h = 1469598103934665603ull) {
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  const core::FleetStats stats = fleet.stats();
  mix(stats.submitted);
  mix(stats.completed);
  mix(stats.failed);
  mix(stats.deaths);
  mix(stats.redispatched);
  mix(stats.retries);
  mix(stats.timeouts);
  mix(stats.crc_rejects);
  mix(stats.refetches);
  mix(static_cast<std::uint64_t>(stats.makespan.picoseconds()));
  for (unsigned i = 0; i < fleet.card_count(); ++i) {
    for (const core::ServerRequest& r : fleet.server(i).completed()) {
      mix(r.id);
      mix(r.client);
      mix(r.function);
      mix(static_cast<std::uint64_t>(r.submit_time.picoseconds()));
      mix(static_cast<std::uint64_t>(r.complete_time.picoseconds()));
      mix(r.output.size());
      mix(r.failed ? 1 : 0);
    }
  }
  return h;
}

class InvariantHarness {
 public:
  explicit InvariantHarness(const HarnessConfig& config)
      : config_(config),
        plan_(make_plan(config)),
        fleet_(make_fleet_config(config, plan_)) {}

  /// Provision every card, submit the seeded workload, drain the fleet.
  void run() {
    fleet_.download_all();
    base_ = fleet_.now();  // fault-plan times are relative to first submit
    const workload::MultiClientTrace trace = make_trace(config_);
    for (const auto& client : trace.clients) {
      for (std::size_t k = 0; k < client.requests.size(); ++k) {
        const workload::ClientRequest& request = client.requests[k];
        const std::size_t index = completions_.size();
        completions_.push_back(0);
        fleet_.submit_function_at(
            base_ + request.offset, client.client, request.function,
            algorithms::bank_input(request.function, request.payload_blocks,
                                   index),
            [this, index](const core::ServerRequest& r) {
              ++completions_[index];
              r.failed ? ++failed_ : ++ok_;
            });
      }
    }
    fleet_.run();
  }

  /// Invariants 1-4.  Empty = the run is clean.
  std::vector<std::string> check() {
    std::vector<std::string> violations;
    check_conservation(violations);
    check_pins(violations);
    check_death_isolation(violations);
    check_delta_tracker(violations);
    return violations;
  }

  /// Deterministic fingerprint of the whole outcome (stats + every
  /// completed record's identity and timeline) — invariant 5 compares it
  /// across two runs of the same seed.
  std::uint64_t digest() const {
    std::uint64_t h = fleet_digest(fleet_);
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
      }
    };
    mix(ok_);
    mix(failed_);
    return h;
  }

  core::CoprocessorFleet& fleet() noexcept { return fleet_; }
  const sim::FaultPlan& plan() const noexcept { return plan_; }
  /// Mutable on purpose: the mutation tests tamper with it to prove the
  /// conservation check actually bites.
  std::vector<unsigned>& completions() noexcept { return completions_; }
  std::uint64_t ok() const noexcept { return ok_; }
  std::uint64_t failed() const noexcept { return failed_; }

 private:
  static sim::FaultPlan make_plan(const HarnessConfig& config) {
    sim::RandomFaultConfig fc;
    fc.seed = config.seed;
    fc.cards = config.cards;
    fc.horizon = config.fault_horizon;
    fc.death_rate_per_ms = config.death_rate_per_ms;
    fc.mean_downtime = config.mean_downtime;
    fc.corruption_rate_per_ms = config.corruption_rate_per_ms;
    fc.functions = algorithms::function_bank();
    return make_random_fault_plan(fc);
  }

  static core::FleetConfig make_fleet_config(const HarnessConfig& config,
                                             const sim::FaultPlan& plan) {
    core::FleetConfig fc;
    fc.cards = config.cards;
    fc.policy = config.dispatch;
    fc.server.device_policy = config.device;
    fc.server.overlap_reconfig = config.overlap_reconfig;
    fc.server.batch = config.batch;
    fc.card.mcu.engine.delta_reconfig = config.delta_reconfig;
    fc.faults = plan;
    fc.retry.timeout = config.timeout;
    fc.retry.max_retries = config.max_retries;
    fc.threads = config.threads;
    fc.server.prefetch.enabled = config.prefetch;
    fc.server.prefetch.predictor.min_confidence = config.prefetch_confidence;
    return fc;
  }

  static workload::MultiClientTrace make_trace(const HarnessConfig& config) {
    workload::BurstyConfig wc;
    wc.clients = config.clients;
    wc.bursts = config.bursts;
    wc.burst_size = config.burst_size;
    wc.functions = algorithms::function_bank();
    wc.seed = config.seed * 1000003ull + 17;
    wc.zipf_s = config.zipf_s;
    return workload::make_bursty(wc);
  }

  void check_conservation(std::vector<std::string>& violations) {
    for (std::size_t i = 0; i < completions_.size(); ++i)
      if (completions_[i] != 1) {
        std::ostringstream os;
        os << "conservation: request " << i << " completed "
           << completions_[i] << " times (want exactly 1)";
        violations.push_back(os.str());
      }
    if (ok_ + failed_ != completions_.size()) {
      std::ostringstream os;
      os << "conservation: ok(" << ok_ << ") + failed(" << failed_
         << ") != submitted(" << completions_.size() << ")";
      violations.push_back(os.str());
    }
    if (fleet_.in_flight() != 0)
      violations.push_back("conservation: fleet still has " +
                           std::to_string(fleet_.in_flight()) +
                           " requests in flight after the drain");
    // sim_idle/sim_pending span the coordination queue AND every card
    // shard under the parallel engine (== scheduler() in classic mode).
    if (!fleet_.sim_idle())
      violations.push_back("conservation: scheduler still holds " +
                           std::to_string(fleet_.sim_pending()) +
                           " live events after the drain");
  }

  void check_pins(std::vector<std::string>& violations) {
    for (unsigned i = 0; i < fleet_.card_count(); ++i)
      if (fleet_.card(i).mcu().pinned_count() != 0)
        violations.push_back(
            "pins: card " + std::to_string(i) + " still holds " +
            std::to_string(fleet_.card(i).mcu().pinned_count()) +
            " pinned functions after the drain");
  }

  void check_death_isolation(std::vector<std::string>& violations) {
    for (unsigned i = 0; i < fleet_.card_count(); ++i) {
      for (const core::ServerRequest& r : fleet_.server(i).completed()) {
        if (r.failed) continue;  // no fabric window at all
        const sim::SimTime begin = r.fabric_start;
        const sim::SimTime end = r.fabric_start + r.execute_time;
        for (const sim::CardDeath& death : plan_.deaths) {
          if (death.card != i) continue;
          const sim::SimTime down = base_ + death.at;
          // recover_at <= at means the card never comes back: the death
          // interval is open-ended.
          const bool recovers = death.recover_at > death.at;
          const sim::SimTime up = base_ + death.recover_at;
          const bool overlaps =
              begin < (recovers ? up : sim::SimTime::ps(
                                           std::numeric_limits<
                                               std::int64_t>::max())) &&
              end > down;
          if (overlaps) {
            std::ostringstream os;
            os << "death isolation: request " << r.id << " executed on card "
               << i << " during its death interval";
            violations.push_back(os.str());
          }
        }
      }
    }
  }

  void check_delta_tracker(std::vector<std::string>& violations) {
    if (!config_.delta_reconfig) return;
    for (unsigned i = 0; i < fleet_.card_count(); ++i) {
      const mcu::Mcu& mcu = fleet_.card(i).mcu();
      const fabric::Fabric& fabric = fleet_.card(i).fabric();
      for (const memory::FunctionId id : mcu.resident_functions()) {
        for (const fabric::FrameIndex frame : mcu.frames_of(id)) {
          const std::uint64_t tracked = mcu.engine().frame_hash(frame);
          if (tracked == 0) continue;  // unknown is vacuously consistent
          const auto words = fabric.memory().read_frame(frame);
          Bytes bytes;
          bytes.reserve(words.size() * sizeof(fabric::Word));
          for (const fabric::Word word : words)
            for (unsigned b = 0; b < sizeof(fabric::Word); ++b)
              bytes.push_back(static_cast<Byte>((word >> (8 * b)) & 0xff));
          const std::uint64_t actual = mcu::window_content_hash(bytes);
          if (tracked != actual) {
            std::ostringstream os;
            os << "delta tracker: card " << i << " frame " << frame
               << " of function " << id
               << " tracks a hash that does not match the fabric readback";
            violations.push_back(os.str());
          }
        }
      }
    }
  }

  HarnessConfig config_;
  sim::FaultPlan plan_;
  core::CoprocessorFleet fleet_;
  sim::SimTime base_;
  std::vector<unsigned> completions_;
  std::uint64_t ok_ = 0;
  std::uint64_t failed_ = 0;
};

/// PR-gating default is 5 seeds; the nightly CI job raises it to 50 via the
/// AAD_INVARIANT_SEEDS environment variable (failing seeds are printed so
/// the artifact upload can capture them).
inline unsigned invariant_seed_count(unsigned fallback = 5) {
  if (const char* env = std::getenv("AAD_INVARIANT_SEEDS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  return fallback;
}

}  // namespace aad::harness
