// Tests for the AADB bitstream container, the behavioral synthesizer and
// content statistics.
#include <gtest/gtest.h>

#include "bitstream/bitstream.h"
#include "bitstream/stats.h"
#include "bitstream/synth.h"
#include "common/prng.h"
#include "fabric/clbcodec.h"
#include "netlist/generators.h"
#include "netlist/lutmap.h"

namespace aad::bitstream {
namespace {

Bitstream sample_netlist_bitstream() {
  const fabric::FrameGeometry geometry;
  return from_network(netlist::map_to_luts(netlist::make_ripple_adder(16)),
                      geometry);
}

TEST(BitstreamFormat, SerializeParseRoundtrip) {
  const Bitstream original = sample_netlist_bitstream();
  const Bytes wire = serialize(original);
  const Bitstream back = parse(wire);
  EXPECT_EQ(back, original);
  EXPECT_EQ(wire.size(), original.byte_size());
}

TEST(BitstreamFormat, CrcCorruptionDetected) {
  const Bitstream original = sample_netlist_bitstream();
  Bytes wire = serialize(original);
  wire[wire.size() / 2] ^= 0x40;
  EXPECT_THROW(parse(wire), Error);
}

TEST(BitstreamFormat, TruncationDetected) {
  const Bitstream original = sample_netlist_bitstream();
  Bytes wire = serialize(original);
  wire.resize(wire.size() - 5);
  EXPECT_THROW(parse(wire), Error);
  EXPECT_THROW(parse(ByteSpan(wire.data(), 3)), Error);
}

TEST(BitstreamFormat, BadMagicRejected) {
  const Bitstream original = sample_netlist_bitstream();
  Bytes wire = serialize(original);
  wire[0] ^= 0xFF;
  EXPECT_THROW(parse(wire), Error);
}

TEST(BitstreamFormat, NameTooLongRejected) {
  Bitstream bs = sample_netlist_bitstream();
  bs.info.name = std::string(40, 'x');
  EXPECT_THROW(serialize(bs), Error);
}

TEST(BitstreamFormat, HeaderFieldsSurvive) {
  Bitstream bs = sample_netlist_bitstream();
  bs.info.kind = FunctionKind::kBehavioral;
  bs.info.kernel_id = 77;
  const Bitstream back = parse(serialize(bs));
  EXPECT_EQ(back.info.kind, FunctionKind::kBehavioral);
  EXPECT_EQ(back.info.kernel_id, 77u);
  EXPECT_EQ(back.info.name, bs.info.name);
  EXPECT_EQ(back.info.input_width, bs.info.input_width);
}

TEST(BitstreamFormat, PackFramePayloadsLayout) {
  const Bitstream bs = sample_netlist_bitstream();
  const Bytes payload = pack_frame_payloads(bs);
  EXPECT_EQ(payload.size(),
            bs.frame_count() * bs.info.geometry.frame_bytes());
  // First word of the payload must equal the first config word.
  const auto words = bytes_to_words(ByteSpan(payload.data(), 4));
  EXPECT_EQ(words[0], bs.frames[0][0]);
  EXPECT_THROW(bytes_to_words(ByteSpan(payload.data(), 3)), Error);
}

// --- behavioral synthesis ------------------------------------------------------

TEST(SynthTest, ProducesRequestedFootprint) {
  const fabric::FrameGeometry geometry;
  SynthParams params;
  params.frames = 6;
  const Bitstream bs =
      synthesize_behavioral("fake", 42, 64, 64, geometry, params);
  EXPECT_EQ(bs.frame_count(), 6u);
  EXPECT_EQ(bs.info.kind, FunctionKind::kBehavioral);
  EXPECT_EQ(bs.info.kernel_id, 42u);
}

TEST(SynthTest, OutputDecodesAndValidates) {
  // The synthesized stream must be structurally legal — decode_frames
  // validates pin references, switch words and output coverage.
  const fabric::FrameGeometry geometry;
  SynthParams params;
  params.frames = 4;
  const Bitstream bs =
      synthesize_behavioral("fake", 7, 32, 48, geometry, params);
  EXPECT_NO_THROW(fabric::decode_frames(bs.frames, geometry, "fake", 32, 48));
}

TEST(SynthTest, DeterministicForSeed) {
  const fabric::FrameGeometry geometry;
  SynthParams params;
  params.frames = 3;
  const Bitstream a = synthesize_behavioral("k", 9, 16, 16, geometry, params);
  const Bitstream b = synthesize_behavioral("k", 9, 16, 16, geometry, params);
  EXPECT_EQ(a, b);
  params.seed = 2;
  const Bitstream c = synthesize_behavioral("k", 9, 16, 16, geometry, params);
  EXPECT_NE(a, c);
}

TEST(SynthTest, FootprintTooSmallForOutputsRejected) {
  const fabric::FrameGeometry geometry;  // 64 slots per frame
  SynthParams params;
  params.frames = 1;
  EXPECT_THROW(
      synthesize_behavioral("k", 1, 8, /*output_width=*/65, geometry, params),
      Error);
}

TEST(SynthTest, DensityControlsSparsity) {
  const fabric::FrameGeometry geometry;
  SynthParams dense;
  dense.frames = 8;
  dense.density = 0.95;
  SynthParams sparse = dense;
  sparse.density = 0.25;
  const auto d = analyze(
      synthesize_behavioral("d", 1, 32, 32, geometry, dense));
  const auto s = analyze(
      synthesize_behavioral("s", 1, 32, 32, geometry, sparse));
  EXPECT_GT(s.zero_word_fraction, d.zero_word_fraction);
}

// --- stats ----------------------------------------------------------------------

TEST(StatsTest, RandomDataHasHighEntropy) {
  Prng rng(1);
  Bytes data(4096);
  for (auto& b : data) b = static_cast<Byte>(rng.next());
  const auto s = analyze_bytes(data);
  EXPECT_GT(s.byte_entropy_bits, 7.5);
  EXPECT_LT(s.zero_byte_fraction, 0.05);
}

TEST(StatsTest, ZeroDataHasZeroEntropy) {
  const Bytes data(4096, 0);
  const auto s = analyze_bytes(data);
  EXPECT_DOUBLE_EQ(s.byte_entropy_bits, 0.0);
  EXPECT_DOUBLE_EQ(s.zero_byte_fraction, 1.0);
}

TEST(StatsTest, RealBitstreamIsStructured) {
  const auto s = analyze(sample_netlist_bitstream());
  // Config planes are sparse and low-entropy relative to random data.
  EXPECT_GT(s.zero_byte_fraction, 0.2);
  EXPECT_LT(s.byte_entropy_bits, 6.0);
  EXPECT_FALSE(to_string(s).empty());
}

TEST(StatsTest, SynthStreamsShowInterframeSimilarity) {
  const fabric::FrameGeometry geometry;
  SynthParams params;
  params.frames = 8;
  const auto s =
      analyze(synthesize_behavioral("k", 3, 64, 64, geometry, params));
  // The slot layout repeats frame to frame, so some same-offset words match.
  EXPECT_GT(s.interframe_similarity, 0.0);
}

}  // namespace
}  // namespace aad::bitstream
