// Integration tests for the microcontroller mini-OS: provisioning, the
// on-demand load path (hit / miss / eviction), the streaming configuration
// engine, and execution from the configuration plane.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "algorithms/kernels.h"
#include "bitstream/synth.h"
#include "common/crc32.h"
#include "common/prng.h"
#include "fabric/fabric.h"
#include "mcu/mcu.h"

namespace aad::mcu {
namespace {

using algorithms::KernelId;

class McuFixture : public ::testing::Test {
 protected:
  McuFixture()
      : mcu_(fabric_, scheduler_, trace_, registry_, runtime_,
             make_config()) {
    algorithms::register_runtimes(runtime_);
  }

  static McuConfig make_config() {
    McuConfig config;
    config.codec = compress::CodecId::kFrameDelta;
    return config;
  }

  memory::RomRecord provision(KernelId id) {
    const auto& spec = algorithms::spec(id);
    return mcu_.store_function(algorithms::function_id(id),
                               spec.make_bitstream(fabric_.geometry()));
  }

  fabric::Fabric fabric_;
  sim::Scheduler scheduler_;
  sim::Trace trace_;
  telemetry::Registry registry_;
  RuntimeRegistry runtime_;
  Mcu mcu_;
};

TEST_F(McuFixture, StoreFunctionWritesRomRecord) {
  const auto record = provision(KernelId::kAdder32);
  EXPECT_EQ(record.function_id, algorithms::function_id(KernelId::kAdder32));
  EXPECT_GT(record.compressed_size, 0u);
  EXPECT_LT(record.compressed_size, record.raw_size);  // it compresses
  EXPECT_TRUE(mcu_.rom().lookup(record.function_id).has_value());
  EXPECT_GT(scheduler_.now(), sim::SimTime::zero());  // ROM programming time
}

TEST_F(McuFixture, InvokeUnprovisionedFunctionFails) {
  try {
    Bytes in(8, 0);
    mcu_.invoke(9999, in);
    FAIL() << "expected NotFound";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
}

TEST_F(McuFixture, FirstInvokeMissesThenHits) {
  provision(KernelId::kAdder32);
  const auto& spec = algorithms::spec(KernelId::kAdder32);
  const Bytes input = spec.make_input(1, 42);

  const auto first = mcu_.invoke(algorithms::function_id(KernelId::kAdder32),
                                 input);
  EXPECT_FALSE(first.load.hit);
  EXPECT_GT(first.load.frames_configured, 0u);
  EXPECT_GT(first.load.reconfig_time, sim::SimTime::zero());

  const auto second = mcu_.invoke(algorithms::function_id(KernelId::kAdder32),
                                  input);
  EXPECT_TRUE(second.load.hit);
  EXPECT_EQ(second.load.reconfig_time, sim::SimTime::zero());
  EXPECT_LT(second.total, first.total);

  EXPECT_EQ(mcu_.stats().config_hits, 1u);
  EXPECT_EQ(mcu_.stats().config_misses, 1u);
}

TEST_F(McuFixture, NetlistKernelComputesCorrectlyFromPlane) {
  provision(KernelId::kAdder32);
  const auto& spec = algorithms::spec(KernelId::kAdder32);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Bytes input = spec.make_input(1, seed);
    const auto result =
        mcu_.invoke(algorithms::function_id(KernelId::kAdder32), input);
    EXPECT_EQ(result.output, spec.software(input)) << "seed " << seed;
  }
}

TEST_F(McuFixture, SequentialNetlistKernelCrc32) {
  provision(KernelId::kCrc32);
  const auto& spec = algorithms::spec(KernelId::kCrc32);
  const Bytes input = spec.make_input(64, 7);
  const auto result =
      mcu_.invoke(algorithms::function_id(KernelId::kCrc32), input);
  EXPECT_EQ(result.output, spec.software(input));
  // Cycle count is real: one per byte plus the drain cycle.
  EXPECT_EQ(result.exec_cycles,
            static_cast<std::int64_t>(input.size()) + 1);
}

TEST_F(McuFixture, BehavioralKernelUsesCycleModel) {
  provision(KernelId::kXtea);
  const auto& spec = algorithms::spec(KernelId::kXtea);
  const Bytes input = spec.make_input(4, 3);
  const auto result =
      mcu_.invoke(algorithms::function_id(KernelId::kXtea), input);
  EXPECT_EQ(result.output, spec.software(input));
  EXPECT_EQ(result.exec_cycles, spec.fabric_cycles(input.size()));
}

TEST_F(McuFixture, EvictionTriggersWhenDeviceFull) {
  // 48-frame device; load kernels until the free list is exhausted.
  provision(KernelId::kAes128);   // 12
  provision(KernelId::kFft);      // 16
  provision(KernelId::kMatMul);   // 14
  provision(KernelId::kSha256);   // 10 -> would need eviction at 42 used

  mcu_.ensure_loaded(algorithms::function_id(KernelId::kAes128));
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kFft));
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kMatMul));
  EXPECT_EQ(mcu_.resident_functions().size(), 3u);

  const auto load = mcu_.ensure_loaded(
      algorithms::function_id(KernelId::kSha256));
  EXPECT_FALSE(load.hit);
  EXPECT_GE(load.evictions, 1u);
  EXPECT_TRUE(mcu_.is_resident(algorithms::function_id(KernelId::kSha256)));
  EXPECT_GE(mcu_.stats().evictions, 1u);
}

TEST_F(McuFixture, LruVictimIsLeastRecentlyUsed) {
  provision(KernelId::kAes128);   // 12
  provision(KernelId::kFft);      // 16
  provision(KernelId::kMatMul);   // 14
  provision(KernelId::kSha256);   // 10

  mcu_.ensure_loaded(algorithms::function_id(KernelId::kAes128));
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kFft));
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kMatMul));
  // Touch AES and FFT so MatMul is the LRU entry.
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kAes128));
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kFft));

  mcu_.ensure_loaded(algorithms::function_id(KernelId::kSha256));
  EXPECT_FALSE(mcu_.is_resident(algorithms::function_id(KernelId::kMatMul)));
  EXPECT_TRUE(mcu_.is_resident(algorithms::function_id(KernelId::kAes128)));
  EXPECT_TRUE(mcu_.is_resident(algorithms::function_id(KernelId::kFft)));
}

TEST_F(McuFixture, FrameTableMatchesPaperStructure) {
  provision(KernelId::kAdder32);
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kAdder32));
  const auto& table = mcu_.frame_table();
  ASSERT_EQ(table.size(), 1u);
  const auto& entry = table.begin()->second;
  EXPECT_FALSE(entry.frames.empty());          // list of frames occupied
  EXPECT_GT(entry.access_count, 0u);           // usage statistics
  EXPECT_GE(entry.last_access, entry.loaded_at);  // time stamp semantics
}

TEST_F(McuFixture, ExplicitEvictFreesFrames) {
  provision(KernelId::kAdder32);
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kAdder32));
  const unsigned free_before = mcu_.free_frames().free_count();
  mcu_.evict(algorithms::function_id(KernelId::kAdder32));
  EXPECT_GT(mcu_.free_frames().free_count(), free_before);
  EXPECT_FALSE(mcu_.is_resident(algorithms::function_id(KernelId::kAdder32)));
  EXPECT_THROW(mcu_.evict(algorithms::function_id(KernelId::kAdder32)),
               Error);
}

TEST_F(McuFixture, ReloadAfterEvictionStillCorrect) {
  provision(KernelId::kCrc32);
  const auto& spec = algorithms::spec(KernelId::kCrc32);
  const Bytes input = spec.make_input(16, 5);
  const auto fid = algorithms::function_id(KernelId::kCrc32);
  const auto r1 = mcu_.invoke(fid, input);
  mcu_.evict(fid);
  const auto r2 = mcu_.invoke(fid, input);
  EXPECT_FALSE(r2.load.hit);
  EXPECT_EQ(r1.output, r2.output);
}

TEST_F(McuFixture, ResetFabricDropsEverything) {
  provision(KernelId::kAdder32);
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kAdder32));
  mcu_.reset_fabric();
  EXPECT_TRUE(mcu_.resident_functions().empty());
  EXPECT_EQ(mcu_.free_frames().free_count(),
            fabric_.geometry().frame_count);
}

TEST_F(McuFixture, CorruptRomPayloadDetectedAtConfigure) {
  const auto record = provision(KernelId::kAdder32);
  // Store a record whose CRC we then invalidate by rebuilding a fake record
  // pointing into noise: easiest corruption is a doctored copy.
  memory::RomRecord bad = record;
  bad.payload_crc ^= 0xFFFFFFFF;
  ConfigEngine engine;
  std::vector<fabric::FrameIndex> targets;
  for (unsigned i = 0; i < record.frames; ++i) targets.push_back(i);
  try {
    engine.configure(mcu_.rom(), bad, targets, fabric_,
                     memory::RomTiming{}, nullptr, sim::SimTime::zero());
    FAIL() << "expected CRC failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptData);
  }
}

TEST_F(McuFixture, ConfigEnginePipelineTimingBreakdown) {
  const auto record = provision(KernelId::kFft);  // 16 frames, big stream
  ConfigEngine engine;
  std::vector<fabric::FrameIndex> targets;
  for (unsigned i = 0; i < record.frames; ++i) targets.push_back(i);
  const auto result =
      engine.configure(mcu_.rom(), record, targets, fabric_,
                       memory::RomTiming{}, nullptr, sim::SimTime::zero());
  EXPECT_EQ(result.frames_written, record.frames);
  EXPECT_EQ(result.raw_bytes, record.raw_size);
  // The pipeline overlaps stages: total must be less than the sum of all
  // stage times but at least the slowest stage's bound.
  const auto sum =
      result.rom_bound + result.decompress_bound + result.config_bound;
  EXPECT_LT(result.total, sum);
  EXPECT_GE(result.total, result.config_bound);
}

TEST_F(McuFixture, GeometryMismatchRejected) {
  fabric::FrameGeometry other;
  other.clb_rows = 8;
  bitstream::SynthParams params;
  params.frames = 2;
  const auto bs =
      bitstream::synthesize_behavioral("alien", 500, 8, 8, other, params);
  EXPECT_THROW(mcu_.store_function(500, bs), Error);
}

TEST_F(McuFixture, OversizedFunctionRejected) {
  bitstream::SynthParams params;
  params.frames = fabric_.geometry().frame_count + 1;
  const auto bs = bitstream::synthesize_behavioral(
      "huge", 501, 8, 8, fabric_.geometry(), params);
  EXPECT_THROW(mcu_.store_function(501, bs), Error);
}

// --- difference-based reconfiguration (paper ref [4]) -------------------------

class DiffMcuFixture : public ::testing::Test {
 protected:
  DiffMcuFixture()
      : mcu_(fabric_, scheduler_, trace_, registry_, runtime_, config()) {
    algorithms::register_runtimes(runtime_);
  }
  static McuConfig config() {
    McuConfig c;
    c.engine.difference_based = true;
    return c;
  }
  fabric::Fabric fabric_;
  sim::Scheduler scheduler_;
  sim::Trace trace_;
  telemetry::Registry registry_;
  RuntimeRegistry runtime_;
  Mcu mcu_;
};

TEST_F(DiffMcuFixture, ReloadIntoSameFramesSkipsAllWrites) {
  const auto& spec = algorithms::spec(KernelId::kAdder32);
  mcu_.store_function(algorithms::function_id(KernelId::kAdder32),
                      spec.make_bitstream(fabric_.geometry()));
  const auto fid = algorithms::function_id(KernelId::kAdder32);

  const auto first = mcu_.ensure_loaded(fid);
  EXPECT_GT(first.frames_configured, 0u);
  const auto written_before = fabric_.memory().frame_writes();

  // Evict (frames are NOT erased) and reload: first-fit hands back the same
  // frames, the readback compare matches, and zero port writes happen.
  mcu_.evict(fid);
  const auto second = mcu_.ensure_loaded(fid);
  EXPECT_FALSE(second.hit);
  EXPECT_EQ(second.frames_configured, 0u);
  EXPECT_EQ(fabric_.memory().frame_writes(), written_before);
  EXPECT_GT(mcu_.stats().frames_skipped, 0u);
  // And it is cheaper than the first load.
  EXPECT_LT(second.reconfig_time, first.reconfig_time);

  // The function still computes from the (untouched) configuration plane.
  const Bytes input = spec.make_input(1, 17);
  EXPECT_EQ(mcu_.invoke(fid, input).output, spec.software(input));
}

TEST_F(DiffMcuFixture, DifferentContentStillWritten) {
  for (KernelId id : {KernelId::kAdder32, KernelId::kParity32}) {
    const auto& spec = algorithms::spec(id);
    mcu_.store_function(algorithms::function_id(id),
                        spec.make_bitstream(fabric_.geometry()));
  }
  // Load adder, evict, load parity into the overlapping region: content
  // differs, so the write must happen and parity must compute correctly.
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kAdder32));
  mcu_.evict(algorithms::function_id(KernelId::kAdder32));
  const auto load =
      mcu_.ensure_loaded(algorithms::function_id(KernelId::kParity32));
  EXPECT_GT(load.frames_configured, 0u);
  const auto& spec = algorithms::spec(KernelId::kParity32);
  const Bytes input = spec.make_input(1, 3);
  EXPECT_EQ(mcu_.invoke(algorithms::function_id(KernelId::kParity32), input)
                .output,
            spec.software(input));
}

// --- defragmentation ------------------------------------------------------------

TEST_F(McuFixture, DefragmentCompactsFreeSpace) {
  provision(KernelId::kAes128);   // 12
  provision(KernelId::kFft);      // 16
  provision(KernelId::kMatMul);   // 14
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kAes128));
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kFft));
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kMatMul));
  // Punch a hole in the middle.
  mcu_.evict(algorithms::function_id(KernelId::kFft));
  EXPECT_LT(mcu_.free_frames().largest_free_run(),
            mcu_.free_frames().free_count());

  const auto result = mcu_.defragment();
  EXPECT_GE(result.functions_moved, 1u);
  EXPECT_EQ(mcu_.free_frames().largest_free_run(),
            mcu_.free_frames().free_count());
  EXPECT_GT(result.time, sim::SimTime::zero());

  // Relocated functions still compute (executors were invalidated and are
  // rebuilt from the new frames).
  for (KernelId id : {KernelId::kAes128, KernelId::kMatMul}) {
    const auto& spec = algorithms::spec(id);
    const Bytes input = spec.make_input(1, 9);
    const auto r = mcu_.invoke(algorithms::function_id(id), input);
    EXPECT_TRUE(r.load.hit) << spec.name;
    EXPECT_EQ(r.output, spec.software(input)) << spec.name;
  }
}

TEST_F(McuFixture, DefragmentOnEmptyOrPackedDeviceIsNoOp) {
  const auto empty = mcu_.defragment();
  EXPECT_EQ(empty.functions_moved, 0u);
  provision(KernelId::kAdder32);
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kAdder32));
  const auto packed = mcu_.defragment();  // already at frame 0
  EXPECT_EQ(packed.functions_moved, 0u);
}

TEST(McuDefragOnPressure, AvoidsEvictionUnderPureFragmentation) {
  fabric::Fabric fabric;
  sim::Scheduler scheduler;
  sim::Trace trace;
  RuntimeRegistry runtime;
  algorithms::register_runtimes(runtime);
  McuConfig config;
  config.defragment_on_pressure = true;
  telemetry::Registry registry;
  Mcu mcu(fabric, scheduler, trace, registry, runtime, config);

  for (KernelId id : {KernelId::kAes128, KernelId::kFft, KernelId::kMatMul,
                      KernelId::kModExp}) {
    const auto& spec = algorithms::spec(id);
    mcu.store_function(algorithms::function_id(id),
                       spec.make_bitstream(fabric.geometry()));
  }
  // aes 0..11, fft 12..27, matmul 28..41; evict aes -> free {0..11, 42..47}
  // = 18 frames but largest run only 12.
  mcu.ensure_loaded(algorithms::function_id(KernelId::kAes128));
  mcu.ensure_loaded(algorithms::function_id(KernelId::kFft));
  mcu.ensure_loaded(algorithms::function_id(KernelId::kMatMul));
  mcu.evict(algorithms::function_id(KernelId::kAes128));
  ASSERT_EQ(mcu.free_frames().free_count(), 18u);
  ASSERT_LT(mcu.free_frames().largest_free_run(), 18u);

  // modexp needs 18 contiguous frames: only compaction can satisfy it
  // without evicting anyone.
  const auto load =
      mcu.ensure_loaded(algorithms::function_id(KernelId::kModExp));
  EXPECT_EQ(load.evictions, 0u);
  EXPECT_EQ(mcu.stats().defragmentations, 1u);
  EXPECT_TRUE(mcu.is_resident(algorithms::function_id(KernelId::kFft)));
  EXPECT_TRUE(mcu.is_resident(algorithms::function_id(KernelId::kMatMul)));
}

TEST_F(McuFixture, StatsAccumulateAcrossInvokes) {
  provision(KernelId::kAdder32);
  provision(KernelId::kParity32);
  const auto a = algorithms::function_id(KernelId::kAdder32);
  const auto p = algorithms::function_id(KernelId::kParity32);
  mcu_.invoke(a, algorithms::spec(KernelId::kAdder32).make_input(1, 1));
  mcu_.invoke(p, algorithms::spec(KernelId::kParity32).make_input(1, 1));
  mcu_.invoke(a, algorithms::spec(KernelId::kAdder32).make_input(1, 2));
  const McuStats& s = mcu_.stats();
  EXPECT_EQ(s.invocations, 3u);
  EXPECT_EQ(s.config_misses, 2u);
  EXPECT_EQ(s.config_hits, 1u);
  EXPECT_GT(s.frames_configured, 0u);
  EXPECT_GT(s.compressed_bytes_streamed, 0u);
}

TEST_F(McuFixture, FramesOfReportsResidencyFrameSets) {
  provision(KernelId::kAes128);
  provision(KernelId::kSha256);
  const auto aes = algorithms::function_id(KernelId::kAes128);
  const auto sha = algorithms::function_id(KernelId::kSha256);
  EXPECT_TRUE(mcu_.frames_of(aes).empty());  // not resident yet

  mcu_.ensure_loaded(aes);
  mcu_.ensure_loaded(sha);
  const auto aes_frames = mcu_.frames_of(aes);
  const auto sha_frames = mcu_.frames_of(sha);
  EXPECT_EQ(aes_frames.size(), 12u);
  EXPECT_EQ(sha_frames.size(), 10u);
  // Two resident functions never share a frame — the disjointness the
  // overlapped-reconfiguration path relies on.
  for (const auto f : aes_frames)
    for (const auto g : sha_frames) EXPECT_NE(f, g);

  mcu_.evict(aes);
  EXPECT_TRUE(mcu_.frames_of(aes).empty());
}

TEST_F(McuFixture, PinExcludesFunctionFromEviction) {
  // 48-frame device: AES(12) + FFT(16) + MatMul(14) fill it to 42; SHA256
  // (10) forces the eviction loop.  With LRU the victim would be AES, but
  // a pinned AES (as if mid-execution on the fabric) must survive.
  provision(KernelId::kAes128);
  provision(KernelId::kFft);
  provision(KernelId::kMatMul);
  provision(KernelId::kSha256);
  const auto aes = algorithms::function_id(KernelId::kAes128);
  mcu_.ensure_loaded(aes);
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kFft));
  mcu_.ensure_loaded(algorithms::function_id(KernelId::kMatMul));

  mcu_.pin(aes);
  EXPECT_TRUE(mcu_.is_pinned(aes));
  const auto load =
      mcu_.ensure_loaded(algorithms::function_id(KernelId::kSha256));
  EXPECT_GE(load.evictions, 1u);
  EXPECT_TRUE(mcu_.is_resident(aes));  // LRU victim, but pinned
  mcu_.unpin(aes);
  EXPECT_FALSE(mcu_.is_pinned(aes));
}

TEST_F(McuFixture, PinnedFunctionsRejectEvictAndDefragment) {
  provision(KernelId::kAdder32);
  const auto fid = algorithms::function_id(KernelId::kAdder32);
  mcu_.ensure_loaded(fid);
  mcu_.pin(fid);
  EXPECT_THROW(mcu_.evict(fid), Error);          // host-directed swap-out
  EXPECT_THROW(mcu_.defragment(), Error);        // would relocate its frames
  mcu_.unpin(fid);
  mcu_.evict(fid);                               // legal once unpinned
  EXPECT_FALSE(mcu_.is_resident(fid));
  EXPECT_THROW(mcu_.pin(fid), Error);            // pinning needs residency
}

TEST_F(McuFixture, PinReferencesCompose) {
  // Two independent holders — a request batch spanning several fabric
  // windows, and an overlapped load's PinGuard — pin the same function;
  // the function stays pinned until BOTH release (refcounted, not a set).
  provision(KernelId::kAdder32);
  const auto fid = algorithms::function_id(KernelId::kAdder32);
  mcu_.ensure_loaded(fid);

  mcu_.pin(fid);    // the batch's reference
  mcu_.pin(fid);    // an overlapped load's guard
  EXPECT_EQ(mcu_.pin_count(fid), 2u);
  EXPECT_EQ(mcu_.pinned_count(), 1u);  // one function, two references

  mcu_.unpin(fid);  // the guard releases when the load commits
  EXPECT_TRUE(mcu_.is_pinned(fid));    // the batch still holds it
  EXPECT_EQ(mcu_.pin_count(fid), 1u);
  EXPECT_THROW(mcu_.evict(fid), Error);

  mcu_.unpin(fid);  // the batch's last window retires
  EXPECT_FALSE(mcu_.is_pinned(fid));
  EXPECT_EQ(mcu_.pin_count(fid), 0u);
  mcu_.unpin(fid);  // over-release is a harmless no-op
  EXPECT_EQ(mcu_.pin_count(fid), 0u);
  mcu_.evict(fid);  // evictable again
  EXPECT_FALSE(mcu_.is_resident(fid));
}

TEST_F(McuFixture, LoadFeasibleHonorsPinnedLimitState) {
  // Fill the device, pin everything: no load can be placed.  Unpin one
  // function and the load becomes feasible again (its frames could be
  // evicted in the limit).
  provision(KernelId::kAes128);
  provision(KernelId::kFft);
  provision(KernelId::kMatMul);
  provision(KernelId::kSha256);
  const auto aes = algorithms::function_id(KernelId::kAes128);
  const auto fft = algorithms::function_id(KernelId::kFft);
  const auto mm = algorithms::function_id(KernelId::kMatMul);
  const auto sha = algorithms::function_id(KernelId::kSha256);
  mcu_.ensure_loaded(aes);
  mcu_.ensure_loaded(fft);
  mcu_.ensure_loaded(mm);  // 42 of 48 frames used

  EXPECT_TRUE(mcu_.load_feasible(aes));  // hit: always feasible
  mcu_.pin(aes);
  mcu_.pin(fft);
  mcu_.pin(mm);
  EXPECT_FALSE(mcu_.load_feasible(sha));  // 6 free frames, 10 needed
  mcu_.unpin(fft);
  EXPECT_TRUE(mcu_.load_feasible(sha));   // evicting FFT frees a 16-run

  // The eviction loop respects the remaining pins: SHA-256 lands without
  // touching AES or MatMul.
  const auto load = mcu_.ensure_loaded(sha);
  EXPECT_GE(load.evictions, 1u);
  EXPECT_TRUE(mcu_.is_resident(aes));
  EXPECT_TRUE(mcu_.is_resident(mm));
  EXPECT_FALSE(mcu_.is_resident(fft));
  mcu_.unpin(aes);
  mcu_.unpin(mm);
}

TEST_F(McuFixture, DecodeAndLoadComposeIntoPrepare) {
  // The split primitives must reproduce prepare_invoke exactly: same
  // durations, same residency outcome — the no-overlap server path's
  // bit-exactness rests on this.
  provision(KernelId::kAdder32);
  provision(KernelId::kParity32);
  const auto a = algorithms::function_id(KernelId::kAdder32);
  const auto p = algorithms::function_id(KernelId::kParity32);

  const sim::SimTime start = scheduler_.now();
  const sim::SimTime decode = mcu_.decode_invoke(start);
  EXPECT_GT(decode, sim::SimTime::zero());
  sim::SimTime load_elapsed;
  const LoadResult load = mcu_.load_invoke(a, start + decode, &load_elapsed);
  EXPECT_FALSE(load.hit);
  EXPECT_GT(load_elapsed, sim::SimTime::zero());

  const PreparedInvoke prep = mcu_.prepare_invoke(p, start);
  EXPECT_EQ(prep.firmware_time, decode);  // same fixed command decode
  EXPECT_EQ(prep.time, prep.firmware_time + prep.load.reconfig_time);
  EXPECT_EQ(mcu_.stats().invocations, 2u);  // decode_invoke counts the call
}

// --- delta reconfiguration (frame-content tracking) ---------------------------

class DeltaMcuFixture : public ::testing::Test {
 protected:
  static constexpr memory::FunctionId kV0 = 9000;
  static constexpr memory::FunctionId kV1 = 9001;
  static constexpr unsigned kFrames = 12;
  static constexpr unsigned kDirty = 2;

  DeltaMcuFixture()
      : mcu_(fabric_, scheduler_, trace_, registry_, runtime_, config()) {
    algorithms::register_runtimes(runtime_);
  }

  static McuConfig config() {
    McuConfig c;
    c.engine.delta_reconfig = true;
    return c;
  }

  /// Two versions of a 12-frame behavioral function whose bitstreams
  /// differ in exactly kDirty frames.
  void provision_versions() {
    const auto& spec = algorithms::spec(KernelId::kXtea);
    bitstream::SynthParams params;
    params.frames = kFrames;
    params.seed = 11;
    bitstream::Bitstream v0 = bitstream::synthesize_behavioral(
        spec.name, algorithms::function_id(KernelId::kXtea), spec.input_width,
        spec.output_width, fabric_.geometry(), params);
    params.seed = 12;
    const bitstream::Bitstream alt = bitstream::synthesize_behavioral(
        spec.name, algorithms::function_id(KernelId::kXtea), spec.input_width,
        spec.output_width, fabric_.geometry(), params);
    bitstream::Bitstream v1 = v0;
    for (unsigned d = 0; d < kDirty; ++d) v1.frames[d] = alt.frames[d];
    mcu_.store_function(kV0, v0);
    mcu_.store_function(kV1, v1);
  }

  fabric::Fabric fabric_;
  sim::Scheduler scheduler_;
  sim::Trace trace_;
  telemetry::Registry registry_;
  RuntimeRegistry runtime_;
  Mcu mcu_;
};

TEST_F(DeltaMcuFixture, ReloadAfterEvictionSkipsEveryMatchedFrame) {
  provision_versions();
  const auto first = mcu_.ensure_loaded(kV0);
  EXPECT_EQ(first.frames_configured, kFrames);

  // Eviction leaves fabric content AND the hash tracker intact; first-fit
  // hands the same frames back, so the whole load collapses to per-window
  // delta checks — no ROM fetch, no decompression, no port writes.
  mcu_.evict(kV0);
  const auto bytes_before = mcu_.stats().compressed_bytes_streamed;
  const auto second = mcu_.ensure_loaded(kV0);
  EXPECT_FALSE(second.hit);
  EXPECT_EQ(second.frames_configured, 0u);
  EXPECT_EQ(mcu_.stats().frames_skipped_delta, kFrames);
  EXPECT_EQ(mcu_.stats().compressed_bytes_streamed, bytes_before);
  EXPECT_LT(second.reconfig_time * 3, first.reconfig_time);

  const auto& spec = algorithms::spec(KernelId::kXtea);
  const Bytes input = spec.make_input(1, 5);
  EXPECT_EQ(mcu_.invoke(kV0, input).output, spec.software(input));
}

TEST_F(DeltaMcuFixture, CrossFunctionMatchStreamsOnlyDirtyFrames) {
  provision_versions();
  mcu_.ensure_loaded(kV0);
  mcu_.evict(kV0);

  // The sibling version reuses v0's frames: only the kDirty differing
  // windows stream through the pipeline.
  const auto load = mcu_.ensure_loaded(kV1);
  EXPECT_EQ(load.frames_configured, kDirty);
  EXPECT_EQ(mcu_.stats().frames_skipped_delta, kFrames - kDirty);
}

TEST_F(DeltaMcuFixture, InPlaceUpgradeEvictsTheMatchedSibling) {
  provision_versions();
  mcu_.ensure_loaded(kV0);
  const auto v0_frames = mcu_.frames_of(kV0);

  // v0 is still resident and the device has plenty of free frames, but the
  // upgrade plan prefers claiming v0's frame set: most of v1's load then
  // delta-skips, instead of streaming 12 cold frames elsewhere.
  const auto load = mcu_.ensure_loaded(kV1);
  EXPECT_EQ(load.evictions, 1u);
  EXPECT_FALSE(mcu_.is_resident(kV0));
  EXPECT_TRUE(mcu_.is_resident(kV1));
  EXPECT_EQ(mcu_.frames_of(kV1), v0_frames);
  EXPECT_EQ(load.frames_configured, kDirty);
}

TEST_F(DeltaMcuFixture, EstimateLoadMatchesActualElapsedExactly) {
  provision_versions();

  // Cold miss, no eviction: the estimator runs the same pipeline
  // recurrence the engine executes, so the prediction is exact.
  const auto cold = mcu_.estimate_load(kV0);
  ASSERT_TRUE(cold.known);
  EXPECT_FALSE(cold.resident);
  EXPECT_EQ(cold.frames_matched, 0u);
  sim::SimTime t0 = scheduler_.now();
  mcu_.ensure_loaded(kV0);
  EXPECT_EQ(scheduler_.now() - t0, cold.time);

  // Resident: zero cost.
  const auto hit = mcu_.estimate_load(kV0);
  EXPECT_TRUE(hit.resident);
  EXPECT_EQ(hit.time, sim::SimTime::zero());

  // In-place upgrade (one eviction, kDirty streamed windows): still exact.
  const auto upgrade = mcu_.estimate_load(kV1);
  ASSERT_TRUE(upgrade.known);
  EXPECT_EQ(upgrade.frames_matched, kFrames - kDirty);
  EXPECT_EQ(upgrade.evictions, 1u);
  t0 = scheduler_.now();
  mcu_.ensure_loaded(kV1);
  EXPECT_EQ(scheduler_.now() - t0, upgrade.time);

  // Unknown function: not provisioned, nothing to model.
  EXPECT_FALSE(mcu_.estimate_load(4242).known);
}

TEST_F(DeltaMcuFixture, AutoCodecPicksARealCodecAndRecordsIt) {
  const auto& spec = algorithms::spec(KernelId::kXtea);
  const auto record =
      mcu_.store_function(algorithms::function_id(KernelId::kXtea),
                          spec.make_bitstream(fabric_.geometry()),
                          compress::CodecId::kAuto);
  EXPECT_NE(record.codec, compress::CodecId::kAuto);
  EXPECT_EQ(mcu_.stats().codec_picks.at(record.codec), 1u);

  // The pick is the stored codec: the load decompresses with it.
  const Bytes input = spec.make_input(1, 9);
  EXPECT_EQ(mcu_.invoke(algorithms::function_id(KernelId::kXtea), input)
                .output,
            spec.software(input));
}

// Randomized property test: a seeded stream of pin / unpin / invoke /
// evict / defragment operations against a shadow model of the pin table.
// The driver-visible invariants must hold after every step, whatever the
// interleaving: pin_refs mirrors the model exactly, pinned functions are
// always resident (eviction pressure and compaction never touch them), and
// releasing every reference leaves the card fully evictable again.
TEST_F(McuFixture, RandomizedPinLoadEvictProperty) {
  const std::vector<KernelId> kernels = {
      KernelId::kAdder32, KernelId::kParity32, KernelId::kCrc32,
      KernelId::kAes128,  KernelId::kSha256,   KernelId::kMatMul,
      KernelId::kFft,     KernelId::kFir16};
  std::vector<memory::FunctionId> bank;
  for (const KernelId k : kernels) {
    provision(k);
    bank.push_back(algorithms::function_id(k));
  }

  Prng rng(20260808);
  std::map<memory::FunctionId, unsigned> model;  // shadow pin table
  const auto check_model = [&] {
    std::size_t pinned_functions = 0;
    for (const memory::FunctionId id : bank) {
      const auto it = model.find(id);
      const unsigned want = it == model.end() ? 0 : it->second;
      ASSERT_EQ(mcu_.pin_count(id), want) << "function " << id;
      if (want == 0) continue;
      ++pinned_functions;
      ASSERT_TRUE(mcu_.is_pinned(id));
      ASSERT_TRUE(mcu_.is_resident(id))
          << "pinned function " << id << " was evicted";
    }
    ASSERT_EQ(mcu_.pinned_count(), pinned_functions);
  };

  for (int step = 0; step < 300; ++step) {
    const memory::FunctionId id = bank[rng.next_below(bank.size())];
    switch (rng.next_below(8)) {
      case 0:
      case 1:
      case 2: {  // invoke: load (evicting under pressure) + execute
        if (!mcu_.is_resident(id) && !mcu_.load_feasible(id)) break;
        const auto result =
            mcu_.invoke(id, algorithms::bank_input(id, 1, rng.next()));
        ASSERT_FALSE(result.output.empty());
        ASSERT_TRUE(mcu_.is_resident(id));
        break;
      }
      case 3:
      case 4:  // pin: cap concurrent pins so big kernels stay placeable
        if (!mcu_.is_resident(id) || mcu_.pinned_count() >= 3) break;
        mcu_.pin(id);
        ++model[id];
        break;
      case 5:  // unpin (sometimes of an unpinned function: must no-op)
        mcu_.unpin(id);
        if (const auto it = model.find(id); it != model.end())
          if (--it->second == 0) model.erase(it);
        break;
      case 6:  // evict an unpinned resident function
        if (!mcu_.is_resident(id) || mcu_.is_pinned(id)) break;
        mcu_.evict(id);
        ASSERT_FALSE(mcu_.is_resident(id));
        break;
      case 7:  // compaction relocates frames; the driver refuses to move
                // pinned ones at all
        if (mcu_.pinned_count() > 0) {
          EXPECT_THROW(mcu_.defragment(), Error);
        } else {
          mcu_.defragment();
        }
        break;
    }
    check_model();
  }

  // Release everything: the card must end fully unpinned with every
  // remaining resident function still invokable.
  for (auto& [id, refs] : model)
    while (refs-- > 0) mcu_.unpin(id);
  model.clear();
  EXPECT_EQ(mcu_.pinned_count(), 0u);
  for (const memory::FunctionId id : bank) {
    if (!mcu_.is_resident(id)) continue;
    EXPECT_FALSE(
        mcu_.invoke(id, algorithms::bank_input(id, 1, 999)).output.empty());
  }
}

TEST_F(DeltaMcuFixture, ResetFabricClearsTheDeltaTracker) {
  provision_versions();
  mcu_.ensure_loaded(kV0);
  mcu_.evict(kV0);
  mcu_.reset_fabric();

  // A full reset wipes frame content, so the tracker must forget its
  // hashes — stale matches would skip windows whose frames are now blank.
  const auto load = mcu_.ensure_loaded(kV0);
  EXPECT_EQ(load.frames_configured, kFrames);
  EXPECT_EQ(mcu_.stats().frames_skipped_delta, 0u);
}

}  // namespace
}  // namespace aad::mcu
