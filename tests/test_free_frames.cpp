// Tests for the mini-OS Free Frame List: allocation strategies,
// fragmentation behaviour and invariant enforcement.
#include <gtest/gtest.h>

#include "common/prng.h"
#include "mcu/free_frame_list.h"

namespace aad::mcu {
namespace {

TEST(FreeFrameListTest, StartsAllFree) {
  FreeFrameList ffl(16);
  EXPECT_EQ(ffl.free_count(), 16u);
  EXPECT_EQ(ffl.largest_free_run(), 16u);
  EXPECT_EQ(ffl.free_run_count(), 1u);
  EXPECT_DOUBLE_EQ(ffl.external_fragmentation(), 0.0);
}

TEST(FreeFrameListTest, FirstFitTakesLowestRun) {
  FreeFrameList ffl(16);
  const auto a = ffl.allocate(4, AllocationStrategy::kFirstFitContiguous);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, (std::vector<fabric::FrameIndex>{0, 1, 2, 3}));
  const auto b = ffl.allocate(2, AllocationStrategy::kFirstFitContiguous);
  EXPECT_EQ(*b, (std::vector<fabric::FrameIndex>{4, 5}));
  EXPECT_EQ(ffl.free_count(), 10u);
}

TEST(FreeFrameListTest, BestFitPrefersTightestHole) {
  FreeFrameList ffl(16);
  // Carve holes of size 3 (frames 0..2) and size 6 (frames 10..15):
  auto big = ffl.allocate(16, AllocationStrategy::kFirstFitContiguous);
  ASSERT_TRUE(big.has_value());
  ffl.release(std::vector<fabric::FrameIndex>{0, 1, 2});
  ffl.release(std::vector<fabric::FrameIndex>{10, 11, 12, 13, 14, 15});
  // best-fit for 3 should take the size-3 hole even though 10.. also fits.
  const auto got = ffl.allocate(3, AllocationStrategy::kBestFitContiguous);
  EXPECT_EQ(*got, (std::vector<fabric::FrameIndex>{0, 1, 2}));
  // first-fit for 3 would also have chosen 0..2 here; check the reverse:
  ffl.release(*got);
  const auto got2 = ffl.allocate(5, AllocationStrategy::kBestFitContiguous);
  EXPECT_EQ(*got2, (std::vector<fabric::FrameIndex>{10, 11, 12, 13, 14}));
}

TEST(FreeFrameListTest, ContiguousFailsUnderFragmentationButGatherSucceeds) {
  FreeFrameList ffl(8);
  auto all = ffl.allocate(8, AllocationStrategy::kFirstFitContiguous);
  ASSERT_TRUE(all.has_value());
  // Free alternating frames: 4 free, but max run is 1.
  ffl.release(std::vector<fabric::FrameIndex>{0, 2, 4, 6});
  EXPECT_EQ(ffl.free_count(), 4u);
  EXPECT_EQ(ffl.largest_free_run(), 1u);
  EXPECT_GT(ffl.external_fragmentation(), 0.7);

  EXPECT_FALSE(
      ffl.allocate(2, AllocationStrategy::kFirstFitContiguous).has_value());
  EXPECT_FALSE(
      ffl.allocate(2, AllocationStrategy::kBestFitContiguous).has_value());
  const auto scattered =
      ffl.allocate(3, AllocationStrategy::kGatherScattered);
  ASSERT_TRUE(scattered.has_value());
  EXPECT_EQ(*scattered, (std::vector<fabric::FrameIndex>{0, 2, 4}));
}

TEST(FreeFrameListTest, AllocationFailsWhenShortOfFrames) {
  FreeFrameList ffl(4);
  EXPECT_FALSE(
      ffl.allocate(5, AllocationStrategy::kGatherScattered).has_value());
  auto got = ffl.allocate(4, AllocationStrategy::kGatherScattered);
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(
      ffl.allocate(1, AllocationStrategy::kGatherScattered).has_value());
}

TEST(FreeFrameListTest, DoubleReleaseThrows) {
  FreeFrameList ffl(8);
  const auto got = ffl.allocate(2, AllocationStrategy::kFirstFitContiguous);
  ffl.release(*got);
  EXPECT_THROW(ffl.release(*got), Error);
  EXPECT_THROW(ffl.release(std::vector<fabric::FrameIndex>{99}), Error);
}

TEST(FreeFrameListTest, ResetRestoresEverything) {
  FreeFrameList ffl(8);
  ffl.allocate(5, AllocationStrategy::kGatherScattered);
  ffl.reset();
  EXPECT_EQ(ffl.free_count(), 8u);
  EXPECT_EQ(ffl.largest_free_run(), 8u);
}

TEST(FreeFrameListTest, RunCountTracksHoles) {
  FreeFrameList ffl(10);
  auto all = ffl.allocate(10, AllocationStrategy::kFirstFitContiguous);
  ffl.release(std::vector<fabric::FrameIndex>{1, 2});
  ffl.release(std::vector<fabric::FrameIndex>{5});
  ffl.release(std::vector<fabric::FrameIndex>{8, 9});
  EXPECT_EQ(ffl.free_run_count(), 3u);
  EXPECT_EQ(ffl.largest_free_run(), 2u);
}

// Property: a long random alloc/release churn never corrupts the counters.
TEST(FreeFrameListTest, RandomChurnPreservesInvariants) {
  FreeFrameList ffl(48);
  Prng rng(2024);
  std::vector<std::vector<fabric::FrameIndex>> held;
  for (int step = 0; step < 2000; ++step) {
    if (rng.next_bool(0.55) || held.empty()) {
      const unsigned want = 1 + static_cast<unsigned>(rng.next_below(6));
      const auto strategy = static_cast<AllocationStrategy>(rng.next_below(3));
      auto got = ffl.allocate(want, strategy);
      if (got) {
        // No frame may be handed out twice.
        for (auto f : *got)
          for (const auto& other : held)
            for (auto g : other) ASSERT_NE(f, g);
        held.push_back(std::move(*got));
      }
    } else {
      const std::size_t pick = rng.next_below(held.size());
      ffl.release(held[pick]);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    // Counter consistency.
    unsigned used = 0;
    for (const auto& h : held) used += static_cast<unsigned>(h.size());
    ASSERT_EQ(ffl.free_count(), 48u - used);
    ASSERT_LE(ffl.largest_free_run(), ffl.free_count());
  }
}

TEST(AllocationStrategyTest, Names) {
  EXPECT_STREQ(to_string(AllocationStrategy::kFirstFitContiguous),
               "first-fit");
  EXPECT_STREQ(to_string(AllocationStrategy::kBestFitContiguous), "best-fit");
  EXPECT_STREQ(to_string(AllocationStrategy::kGatherScattered), "gather");
}

}  // namespace
}  // namespace aad::mcu
