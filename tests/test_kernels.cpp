// Tests for the kernel catalog: completeness, footprint sanity, bitstream
// buildability for every kernel, and cycle/host models' monotonicity.
#include <gtest/gtest.h>

#include <set>

#include "algorithms/kernels.h"
#include "bitstream/stats.h"

namespace aad::algorithms {
namespace {

TEST(CatalogTest, HasBothKindsAndUniqueIds) {
  const auto& all = catalog();
  EXPECT_GE(all.size(), 15u);
  std::set<std::uint32_t> ids;
  std::set<std::string> names;
  unsigned netlist_count = 0, behavioral_count = 0;
  for (const auto& s : all) {
    EXPECT_TRUE(ids.insert(function_id(s.id)).second) << s.name;
    EXPECT_TRUE(names.insert(s.name).second) << s.name;
    if (s.kind == bitstream::FunctionKind::kNetlist) {
      ++netlist_count;
    } else {
      ++behavioral_count;
    }
    EXPECT_NE(s.software, nullptr) << s.name;
    EXPECT_NE(s.host_time, nullptr) << s.name;
    EXPECT_NE(s.make_bitstream, nullptr) << s.name;
    EXPECT_NE(s.make_input, nullptr) << s.name;
    if (s.kind == bitstream::FunctionKind::kBehavioral) {
      EXPECT_NE(s.fabric_cycles, nullptr) << s.name;
    }
  }
  EXPECT_GE(netlist_count, 8u);
  EXPECT_GE(behavioral_count, 9u);
}

TEST(CatalogTest, SpecLookup) {
  EXPECT_EQ(spec(KernelId::kAes128).name, "aes128");
  EXPECT_EQ(spec(KernelId::kCrc32).kind, bitstream::FunctionKind::kNetlist);
}

TEST(CatalogTest, EveryKernelBuildsAValidBitstream) {
  const fabric::FrameGeometry geometry;
  for (const auto& s : catalog()) {
    const auto bs = s.make_bitstream(geometry);
    EXPECT_EQ(bs.info.kernel_id, function_id(s.id)) << s.name;
    EXPECT_EQ(bs.info.kind, s.kind) << s.name;
    EXPECT_EQ(bs.info.input_width, s.input_width) << s.name;
    EXPECT_EQ(bs.info.output_width, s.output_width) << s.name;
    EXPECT_EQ(bs.frame_count(), s.nominal_frames) << s.name;
    // Must fit the device with room for at least one more small function.
    EXPECT_LT(bs.frame_count(), geometry.frame_count) << s.name;
    // Wire format roundtrip.
    EXPECT_EQ(bitstream::parse(bitstream::serialize(bs)), bs) << s.name;
  }
}

TEST(CatalogTest, SoftwareAcceptsCanonicalInput) {
  for (const auto& s : catalog()) {
    const Bytes in = s.make_input(2, 99);
    const Bytes out = s.software(in);
    EXPECT_FALSE(out.empty()) << s.name;
  }
}

TEST(CatalogTest, BehavioralCycleModelsAreMonotonic) {
  for (const auto& s : catalog()) {
    if (!s.fabric_cycles) continue;
    const Bytes small = s.make_input(1, 1);
    const Bytes big = s.make_input(8, 1);
    EXPECT_LE(s.fabric_cycles(small.size()), s.fabric_cycles(big.size()))
        << s.name;
    EXPECT_GT(s.fabric_cycles(small.size()), 0) << s.name;
  }
}

TEST(CatalogTest, HostTimesGrowWithInput) {
  for (KernelId id : {KernelId::kAes128, KernelId::kSha1, KernelId::kCrc32,
                      KernelId::kFir16}) {
    const auto& s = spec(id);
    const Bytes small = s.make_input(1, 1);
    const Bytes big = s.make_input(16, 1);
    EXPECT_LT(s.host_time(small.size()), s.host_time(big.size())) << s.name;
  }
}

TEST(CatalogTest, FootprintsCreatePressureOnDefaultDevice) {
  // The behavioral working set must exceed the device so replacement
  // actually happens in the experiments.
  const fabric::FrameGeometry geometry;
  unsigned total = 0;
  for (const auto& s : catalog())
    if (s.kind == bitstream::FunctionKind::kBehavioral)
      total += s.nominal_frames;
  EXPECT_GT(total, geometry.frame_count);
}

TEST(CatalogTest, UnknownIdThrows) {
  EXPECT_THROW(spec(static_cast<KernelId>(999)), Error);
}

TEST(CatalogTest, BehavioralStreamsLookRealistic) {
  const fabric::FrameGeometry geometry;
  const auto bs = spec(KernelId::kAes128).make_bitstream(geometry);
  const auto stats = bitstream::analyze(bs);
  // Structured, not random: entropy well below 8 bits/byte, some zero words.
  EXPECT_LT(stats.byte_entropy_bits, 6.5);
  EXPECT_GT(stats.zero_word_fraction, 0.02);
}

TEST(RuntimeRegistryTest, RegistersWithoutDuplicates) {
  mcu::RuntimeRegistry registry;
  register_runtimes(registry);
  EXPECT_TRUE(registry.has_netlist_driver(function_id(KernelId::kCrc32)));
  EXPECT_TRUE(registry.has_netlist_driver(function_id(KernelId::kLfsr32)));
  EXPECT_FALSE(registry.has_netlist_driver(function_id(KernelId::kAdder32)));
  EXPECT_NO_THROW(registry.behavioral(function_id(KernelId::kAes128)));
  EXPECT_THROW(registry.behavioral(function_id(KernelId::kAdder32)), Error);
  // Double registration is a programming error.
  EXPECT_THROW(register_runtimes(registry), Error);
}

}  // namespace
}  // namespace aad::algorithms
