// The sharded conservative-parallel simulation engine (sim/parallel.h) and
// its fleet integration (FleetConfig::threads).
//
// Two layers of guarantees, both held here:
//
//   1. Engine-level — conservative synchronization is OBSERVED, not just
//      asserted: a coordination event reads shard state and must see
//      exactly the prefix of card history below its timestamp; cross-shard
//      messages merge in (when, source, posting order); clocks and counts
//      behave like the classic engine's.
//   2. Fleet-level equivalence — the headline property from the PR:
//      digest(threads=N) == digest(threads=1) for open-loop traces across
//      seeds and dispatch x device x batch x fault combinations (a new
//      slot axis over tests/invariant_harness.h), plus run-to-run
//      determinism for a fixed thread count, with the invariant suite
//      staying clean under the parallel engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "invariant_harness.h"
#include "sim/parallel.h"
#include "telemetry/trace_sink.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace aad {
namespace {

using sim::ParallelScheduler;
using sim::SimTime;

// --- engine level -----------------------------------------------------------

TEST(ParallelSchedulerTest, CoordinationEventSeesExactShardPrefix) {
  // Shard 0 writes x=1 at 5ns and x=2 at 15ns; a coordination event at
  // 10ns reads x.  A huge lookahead would LET the shard run to 15ns in one
  // round — the coordination horizon must stop it at 10ns first, so the
  // read sees 1.  This is the routing-reads-are-exact property the fleet
  // depends on.
  ParallelScheduler engine(2, 2, SimTime::ms(1));
  int x = 0;
  int seen = -1;
  engine.shard(0).schedule_at(SimTime::ns(5), [&] { x = 1; });
  engine.shard(0).schedule_at(SimTime::ns(15), [&] { x = 2; });
  engine.coord().schedule_at(SimTime::ns(10), [&] { seen = x; });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(x, 2);
  EXPECT_EQ(engine.now(), SimTime::ns(15));
  EXPECT_TRUE(engine.idle());
}

TEST(ParallelSchedulerTest, SameTimeMessagesMergeBySourceShard) {
  // Four shards each post a coordination message dated at the same
  // instant, from events racing on the worker pool; delivery must be
  // source-ordered (then posting-ordered within a source), independent of
  // which worker ran which shard first.
  for (unsigned threads : {1u, 2u, 4u}) {
    ParallelScheduler engine(4, threads, SimTime::ns(10));
    std::vector<int> order;
    for (unsigned s = 0; s < 4; ++s) {
      engine.shard(s).schedule_at(SimTime::ns(7), [&engine, &order, s] {
        engine.post_to_coord(s, SimTime::ns(7),
                             [&order, s] { order.push_back(static_cast<int>(s)); });
        engine.post_to_coord(s, SimTime::ns(7), [&order, s] {
          order.push_back(static_cast<int>(s) + 10);
        });
      });
    }
    engine.run();
    EXPECT_EQ(order, (std::vector<int>{0, 10, 1, 11, 2, 12, 3, 13}))
        << "threads=" << threads;
  }
}

TEST(ParallelSchedulerTest, ShardsAdvanceInLookaheadWindowsWhenCoordIsIdle) {
  // With no coordination events pending, shards may only outrun the
  // slowest shard's next event by the lookahead — staleness of any future
  // cross-shard interaction is bounded by construction.
  ParallelScheduler engine(2, 2, SimTime::ns(10));
  std::vector<std::pair<int, std::int64_t>> log;  // (shard, time) on coord
  for (int k = 1; k <= 3; ++k) {
    engine.shard(0).schedule_at(SimTime::ns(k), [&engine, &log, k] {
      engine.post_to_coord(0, SimTime::ns(k),
                           [&log, k] { log.emplace_back(0, k); });
    });
    engine.shard(1).schedule_at(SimTime::ns(100 * k), [&engine, &log, k] {
      engine.post_to_coord(1, SimTime::ns(100 * k),
                           [&log, k] { log.emplace_back(1, 100 * k); });
    });
  }
  engine.run();
  // Merged coordination order is globally time-sorted.
  const std::vector<std::pair<int, std::int64_t>> want = {
      {0, 1}, {0, 2}, {0, 3}, {1, 100}, {1, 200}, {1, 300}};
  EXPECT_EQ(log, want);
  EXPECT_GE(engine.rounds(), 2u);  // bounded windows force multiple rounds
}

TEST(ParallelSchedulerTest, RunUntilStopsAtDeadlineAndAlignsClocks) {
  ParallelScheduler engine(2, 2, SimTime::ns(5));
  int fired = 0;
  engine.shard(0).schedule_at(SimTime::ns(8), [&] { ++fired; });
  engine.shard(1).schedule_at(SimTime::ns(20), [&] { ++fired; });
  engine.coord().schedule_at(SimTime::ns(12), [&] { ++fired; });
  EXPECT_EQ(engine.run_until(SimTime::ns(15)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), SimTime::ns(15));
  EXPECT_EQ(engine.coord().now(), SimTime::ns(15));
  EXPECT_EQ(engine.shard(0).now(), SimTime::ns(15));
  EXPECT_EQ(engine.pending(), 1u);
  EXPECT_EQ(engine.run(), 1u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(engine.now(), SimTime::ns(20));
}

TEST(ParallelSchedulerTest, CoordinationMayScheduleOntoShards) {
  // The fleet's dispatch hop: a coordination event at t plants a card
  // event at the same t; the card must still run it (next round).
  ParallelScheduler engine(2, 2, SimTime::ns(5));
  std::vector<int> order;
  engine.coord().schedule_at(SimTime::ns(10), [&] {
    order.push_back(0);
    engine.shard(1).schedule_at(SimTime::ns(10), [&] { order.push_back(1); });
  });
  EXPECT_EQ(engine.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(ParallelSchedulerTest, WorkerExceptionPropagatesToTheDriver) {
  ParallelScheduler engine(2, 2, SimTime::ns(5));
  engine.shard(0).schedule_at(SimTime::ns(1), [] {});
  engine.shard(1).schedule_at(SimTime::ns(2),
                              [] { AAD_CHECK(false, "shard blew up"); });
  EXPECT_THROW(engine.run(), Error);
}

TEST(ParallelSchedulerTest, SameWorkloadSameLogForEveryThreadCount) {
  // A synthetic mesh of card chains + cross-shard messages; the merged
  // coordination log (the only shared observable) must be identical for
  // 1, 2, and 3 threads.
  const auto run_log = [](unsigned threads) {
    ParallelScheduler engine(3, threads, SimTime::ns(7));
    std::vector<std::int64_t> log;
    for (unsigned s = 0; s < 3; ++s) {
      // Self-rescheduling chain: event k schedules event k+1.
      struct Chain {
        ParallelScheduler* engine;
        std::vector<std::int64_t>* log;
        unsigned shard;
        int remaining;
        void fire() {
          const SimTime t = engine->shard(shard).now();
          engine->post_to_coord(
              shard, t, [log = log, v = t.picoseconds() * 10 + shard] {
                log->push_back(static_cast<std::int64_t>(v));
              });
          if (--remaining > 0) {
            engine->shard(shard).schedule_after(
                SimTime::ns(3 + shard), [self = *this]() mutable { self.fire(); });
          }
        }
      };
      Chain chain{&engine, &log, s, 20};
      engine.shard(s).schedule_at(SimTime::ns(1 + s),
                                  [chain]() mutable { chain.fire(); });
    }
    engine.run();
    return log;
  };
  const std::vector<std::int64_t> baseline = run_log(1);
  EXPECT_EQ(baseline.size(), 60u);
  EXPECT_EQ(run_log(2), baseline);
  EXPECT_EQ(run_log(3), baseline);
}

// --- fleet level ------------------------------------------------------------

// The slot axis: dispatch x device x batch x fault combinations the
// equivalence sweep crosses with seeds.  Mirrors test_faults' sweep shape
// but pins each slot explicitly so a digest mismatch names its recipe.
struct Slot {
  const char* name;
  void (*mutate)(harness::HarnessConfig&);
};

const Slot kSlots[] = {
    {"round-robin/fifo/none/fault-free",
     [](harness::HarnessConfig& hc) {
       hc.dispatch = core::DispatchPolicy::kRoundRobin;
       hc.death_rate_per_ms = 0.0;
     }},
    {"least-queued/fifo/greedy/deaths",
     [](harness::HarnessConfig& hc) {
       hc.dispatch = core::DispatchPolicy::kLeastQueued;
       hc.batch.mode = core::BatchMode::kGreedy;
     }},
    {"affinity/resident-first/none/deaths",
     [](harness::HarnessConfig& hc) {
       hc.device = core::DevicePolicy::kResidentFirst;
     }},
    {"affinity/fifo/windowed/deaths+delta",
     [](harness::HarnessConfig& hc) {
       hc.batch.mode = core::BatchMode::kWindowed;
       hc.delta_reconfig = true;
     }},
    {"affinity/fifo/none/deaths+watchdog",
     [](harness::HarnessConfig& hc) {
       hc.timeout = sim::SimTime::us(800);
     }},
    {"affinity/fifo/greedy/corruption",
     [](harness::HarnessConfig& hc) {
       hc.batch.mode = core::BatchMode::kGreedy;
       hc.death_rate_per_ms = 0.0;
       hc.corruption_rate_per_ms = 0.25;
     }},
    // Prefetch slots: speculative loads are planted from the dispatch path
    // (coordination time) and pumped on idle cards, so the equivalence must
    // survive the predictor being hot on every card — fault-free and under
    // deaths.
    {"affinity/fifo/none/prefetch/fault-free",
     [](harness::HarnessConfig& hc) {
       hc.prefetch = true;
       hc.death_rate_per_ms = 0.0;
     }},
    {"affinity/fifo/greedy/prefetch/deaths",
     [](harness::HarnessConfig& hc) {
       hc.prefetch = true;
       hc.batch.mode = core::BatchMode::kGreedy;
     }},
};

harness::HarnessConfig slot_config(const Slot& slot, std::uint64_t seed,
                                   unsigned threads) {
  harness::HarnessConfig hc;
  hc.seed = seed;
  hc.threads = threads;
  // Compact traffic + fault horizon so deaths land while requests fly.
  hc.death_rate_per_ms = 0.3;
  hc.mean_downtime = sim::SimTime::us(400);
  hc.fault_horizon = sim::SimTime::ms(3);
  hc.clients = 4;
  hc.bursts = 2;
  hc.burst_size = 4;
  slot.mutate(hc);
  return hc;
}

std::uint64_t run_digest(const harness::HarnessConfig& hc) {
  harness::InvariantHarness h(hc);
  h.run();
  return h.digest();
}

TEST(ParallelFleetEquivalenceTest, DigestMatchesSingleThreadAcrossSeeds) {
  // The headline property: for open-loop traces the parallel engine is not
  // "statistically close" to the classic one — it is outcome-identical.
  // >= 10 seeds per slot (60 fleet pairs at the default count).
  const unsigned seeds = std::max(10u, harness::invariant_seed_count(10));
  for (const Slot& slot : kSlots) {
    for (unsigned s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 4200 + s;
      const std::uint64_t classic =
          run_digest(slot_config(slot, seed, 1));
      const std::uint64_t parallel =
          run_digest(slot_config(slot, seed, 4));
      EXPECT_EQ(parallel, classic)
          << "slot " << slot.name << " seed " << seed;
    }
  }
}

TEST(ParallelFleetEquivalenceTest, FixedThreadCountIsDeterministicRunToRun) {
  // Determinism is per (seed, workload), not per thread count: any worker
  // count produces the same digest, twice over.
  const harness::HarnessConfig two = slot_config(kSlots[4], 777, 2);
  const harness::HarnessConfig four = slot_config(kSlots[4], 777, 4);
  const std::uint64_t d2a = run_digest(two);
  const std::uint64_t d2b = run_digest(two);
  const std::uint64_t d4a = run_digest(four);
  const std::uint64_t d4b = run_digest(four);
  EXPECT_EQ(d2a, d2b);
  EXPECT_EQ(d4a, d4b);
  EXPECT_EQ(d2a, d4a);
}

TEST(ParallelFleetEquivalenceTest, InvariantsHoldUnderTheParallelEngine) {
  // The full fault-injection invariant suite (conservation, pin hygiene,
  // death isolation, delta-tracker consistency) on threads=4 runs.
  for (const Slot& slot : kSlots) {
    harness::InvariantHarness h(slot_config(slot, 9001, 4));
    h.run();
    const std::vector<std::string> violations = h.check();
    for (const std::string& v : violations)
      ADD_FAILURE() << "slot " << slot.name << ": " << v;
  }
}

TEST(ParallelFleetTest, ProvisioningTimelineMatchesClassic) {
  // download_all serializes card downloads on one clock in classic mode;
  // the parallel fleet must land on the SAME instant (the digest mixes
  // absolute times, so provisioning skew would break every equivalence).
  core::FleetConfig classic;
  classic.cards = 4;
  core::FleetConfig parallel = classic;
  parallel.threads = 4;
  core::CoprocessorFleet a(classic);
  core::CoprocessorFleet b(parallel);
  a.download_all();
  b.download_all();
  EXPECT_GT(a.now(), sim::SimTime::zero());
  EXPECT_EQ(b.now(), a.now());
}

TEST(ParallelFleetTest, ThreadCountIsClampedAndReported) {
  core::FleetConfig fc;
  fc.cards = 2;
  fc.threads = 16;  // more threads than cards buys nothing
  core::CoprocessorFleet fleet(fc);
  EXPECT_EQ(fleet.threads(), 2u);
  ASSERT_NE(fleet.parallel_engine(), nullptr);
  EXPECT_GT(fleet.parallel_engine()->lookahead(), sim::SimTime::zero());
  core::FleetConfig single;
  core::CoprocessorFleet classic(single);
  EXPECT_EQ(classic.threads(), 1u);
  EXPECT_EQ(classic.parallel_engine(), nullptr);
}

TEST(ParallelFleetTest, ClosedLoopTrafficDrainsDeterministically) {
  // Closed-loop resubmissions are round-aligned under the parallel engine
  // (documented divergence from classic interleaving) — but they must
  // still drain completely and reproducibly.
  const auto run_once = [] {
    core::FleetConfig fc;
    fc.cards = 4;
    fc.threads = 4;
    core::CoprocessorFleet fleet(fc);
    fleet.download_all();
    const auto bank = algorithms::function_bank();
    std::uint64_t completed = 0;
    // 3 clients, each chaining 8 requests: completion k submits k+1.
    struct Loop {
      core::CoprocessorFleet* fleet;
      const std::vector<memory::FunctionId>* bank;
      std::uint64_t* completed;
      unsigned client;
      int remaining;
      void next() {
        const memory::FunctionId fn =
            (*bank)[(client + static_cast<unsigned>(remaining)) % bank->size()];
        fleet->submit_function(
            client, fn, algorithms::bank_input(fn, 2, client),
            [self = *this](const core::ServerRequest&) mutable {
              ++*self.completed;
              if (--self.remaining > 0) self.next();
            });
      }
    };
    for (unsigned c = 0; c < 3; ++c) {
      Loop loop{&fleet, &bank, &completed, c, 8};
      loop.next();
    }
    fleet.run();
    EXPECT_EQ(completed, 24u);
    EXPECT_TRUE(fleet.sim_idle());
    EXPECT_EQ(fleet.in_flight(), 0u);
    return harness::fleet_digest(fleet);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ParallelFleetEquivalenceTest, TraceSpanSetMatchesSingleThread) {
  // The telemetry extension of the digest property: for an open-loop trace
  // the Chrome-trace span set is IDENTICAL between the classic engine and
  // the sharded one.  Each card's lanes are private per-shard buffers and
  // merged() sorts by the total order (ts, process, track, seq), so no
  // worker interleaving can reorder, drop, or retime a span.
  workload::MultiClientConfig wc;
  wc.clients = 4;
  wc.requests_per_client = 8;
  wc.functions = algorithms::function_bank();
  wc.seed = 31;
  wc.zipf_s = 1.1;
  wc.payload_blocks = 2;
  wc.mode = workload::ArrivalMode::kOpenLoop;
  wc.mean_interarrival = sim::SimTime::us(60);
  const auto trace = workload::make_multi_client(wc);

  const auto run = [&trace](unsigned threads) {
    core::FleetConfig fc;
    fc.cards = 4;
    fc.threads = threads;
    fc.policy = core::DispatchPolicy::kResidencyAffinity;
    core::CoprocessorFleet fleet(fc);
    telemetry::TraceSink sink;
    fleet.attach_trace(sink, "fleet");
    fleet.download_all();
    workload::replay(fleet, trace,
                     [](workload::FunctionId fn, std::size_t blocks,
                        std::size_t index) {
                       return algorithms::bank_input(fn, blocks, index);
                     });
    fleet.run();
    return sink.merged();
  };

  const std::vector<telemetry::TraceEvent> classic = run(1);
  const std::vector<telemetry::TraceEvent> sharded = run(4);
  ASSERT_FALSE(classic.empty());
  ASSERT_EQ(sharded.size(), classic.size());
  for (std::size_t i = 0; i < classic.size(); ++i) {
    const telemetry::TraceEvent& a = classic[i];
    const telemetry::TraceEvent& b = sharded[i];
    EXPECT_EQ(b.ts_ps, a.ts_ps) << "event " << i;
    EXPECT_EQ(b.dur_ps, a.dur_ps) << "event " << i;
    EXPECT_EQ(b.process, a.process) << "event " << i;
    EXPECT_EQ(b.track, a.track) << "event " << i;
    EXPECT_EQ(b.seq, a.seq) << "event " << i;
    EXPECT_STREQ(b.name, a.name) << "event " << i;
    EXPECT_STREQ(b.category, a.category) << "event " << i;
    EXPECT_EQ(b.request, a.request) << "event " << i;
    EXPECT_EQ(b.client, a.client) << "event " << i;
    EXPECT_EQ(b.function, a.function) << "event " << i;
    EXPECT_EQ(b.card, a.card) << "event " << i;
  }
}

}  // namespace
}  // namespace aad
