// Tests for the LUT4 technology mapper and the LutNetwork executor:
// differential equivalence (gate-level Simulator vs mapped LutExecutor) on
// every generator, mapper statistics, and structural validation.
#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/prng.h"
#include "netlist/generators.h"
#include "netlist/lutmap.h"
#include "netlist/simulate.h"

namespace aad::netlist {
namespace {

std::vector<bool> random_bits(std::size_t n, Prng& rng) {
  std::vector<bool> bits(n);
  for (auto&& b : bits) b = rng.next_bool(0.5);
  return bits;
}

/// Step both implementations in lock-step over random stimuli and compare
/// every output every cycle.
void expect_equivalent(const Netlist& nl, int cycles, std::uint64_t seed) {
  const LutNetwork mapped = map_to_luts(nl);
  Simulator golden(nl);
  LutExecutor executor(mapped);
  Prng rng(seed);
  for (int c = 0; c < cycles; ++c) {
    const auto in = random_bits(nl.input_bit_count(), rng);
    const auto expect = golden.step(in);
    const auto got = executor.step(in);
    ASSERT_EQ(expect, got) << nl.name() << " diverged at cycle " << c;
  }
}

struct GeneratorCase {
  const char* label;
  Netlist (*build)();
};

Netlist build_adder() { return make_ripple_adder(16); }
Netlist build_parity() { return make_parity(24); }
Netlist build_popcount() { return make_popcount(16); }
Netlist build_comparator() { return make_comparator(12); }
Netlist build_gray() { return make_gray_encoder(20); }
Netlist build_mul() { return make_array_multiplier(6); }
Netlist build_crc() { return make_crc32_datapath(); }
Netlist build_lfsr() { return make_lfsr(24, {0, 3, 5, 23}); }

class MapperEquivalence
    : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(MapperEquivalence, MatchesGateLevelSimulation) {
  const auto& param = GetParam();
  expect_equivalent(param.build(), /*cycles=*/40,
                    /*seed=*/std::hash<std::string>{}(param.label));
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, MapperEquivalence,
    ::testing::Values(GeneratorCase{"adder", build_adder},
                      GeneratorCase{"parity", build_parity},
                      GeneratorCase{"popcount", build_popcount},
                      GeneratorCase{"comparator", build_comparator},
                      GeneratorCase{"gray", build_gray},
                      GeneratorCase{"mul", build_mul},
                      GeneratorCase{"crc32", build_crc},
                      GeneratorCase{"lfsr", build_lfsr}),
    [](const ::testing::TestParamInfo<GeneratorCase>& info) {
      return info.param.label;
    });

TEST(MapperStats, InvertersAreFolded) {
  // The CRC datapath is full of NOTs (state recoding); none may survive.
  MapStats stats;
  const LutNetwork mapped = map_to_luts(make_crc32_datapath(), &stats);
  EXPECT_GT(stats.inverters_folded, 0u);
  EXPECT_GT(stats.buffers_elided, 0u);
  EXPECT_EQ(mapped.input_width(), 9u);
  EXPECT_EQ(mapped.output_width(), 32u);
  EXPECT_EQ(mapped.ff_count(), 32u);
}

TEST(MapperStats, LutCountNeverExceedsGateCount) {
  // Each logic gate maps to at most one LUT, plus output pass-throughs.
  const Netlist nl = make_ripple_adder(32);
  MapStats stats;
  const LutNetwork mapped = map_to_luts(nl, &stats);
  EXPECT_LE(stats.luts_out,
            stats.gates_in + stats.passthroughs_added);
  EXPECT_GT(mapped.lut_count(), 0u);
}

TEST(MapperOutputs, ConstantAndInputDrivenOutputs) {
  // Outputs driven by a constant, a raw input, and a negated input all need
  // pass-through LUTs.
  Netlist nl("edge");
  const auto in = nl.add_input_port("in", 1);
  const NodeId k1 = nl.add_const(true);
  const NodeId inv = nl.add_not(in[0]);
  nl.bind_output_port("konst", {k1});
  nl.bind_output_port("pass", {in[0]});
  nl.bind_output_port("npass", {inv});
  nl.validate();

  MapStats stats;
  const LutNetwork mapped = map_to_luts(nl, &stats);
  EXPECT_EQ(stats.passthroughs_added, 3u);

  LutExecutor ex(mapped);
  auto out = ex.step({false});
  EXPECT_TRUE(out[0]);    // constant 1
  EXPECT_FALSE(out[1]);   // passes 0
  EXPECT_TRUE(out[2]);    // inverted 0
  out = ex.step({true});
  EXPECT_TRUE(out[1]);
  EXPECT_FALSE(out[2]);
}

TEST(MapperOutputs, SharedDriverGetsSecondPassthrough) {
  Netlist nl("shared");
  const auto in = nl.add_input_port("in", 2);
  const NodeId x = nl.add_xor(in[0], in[1]);
  nl.bind_output_port("a", {x});
  nl.bind_output_port("b", {x});
  nl.validate();
  const LutNetwork mapped = map_to_luts(nl);
  LutExecutor ex(mapped);
  const auto out = ex.step({true, false});
  EXPECT_TRUE(out[0]);
  EXPECT_TRUE(out[1]);
}

TEST(LutNetworkValidate, ForwardCombRefRejected) {
  LutNetwork net("bad", 1, 1);
  LutSlot s0;
  s0.truth = 0xAAAA;
  s0.pins[0] = NetRef{NetKind::kLutComb, 1};  // forward, no FF
  s0.is_output = true;
  s0.output_bit = 0;
  net.add_slot(s0);
  LutSlot s1;
  s1.pins[0] = NetRef{NetKind::kPrimary, 0};
  net.add_slot(s1);
  EXPECT_THROW(net.validate(), Error);
}

TEST(LutNetworkValidate, RegRefMustTargetFf) {
  LutNetwork net("bad", 1, 1);
  LutSlot s0;
  s0.pins[0] = NetRef{NetKind::kPrimary, 0};
  net.add_slot(s0);
  LutSlot s1;
  s1.truth = 0xAAAA;
  s1.pins[0] = NetRef{NetKind::kLutReg, 0};  // slot 0 has no FF
  s1.is_output = true;
  net.add_slot(s1);
  EXPECT_THROW(net.validate(), Error);
}

TEST(LutNetworkValidate, MissingOutputDriverRejected) {
  LutNetwork net("bad", 1, 2);
  LutSlot s0;
  s0.truth = 0xAAAA;
  s0.pins[0] = NetRef{NetKind::kPrimary, 0};
  s0.is_output = true;
  s0.output_bit = 0;
  net.add_slot(s0);  // bit 1 never driven
  EXPECT_THROW(net.validate(), Error);
}

TEST(LutNetworkValidate, DoubleDriverRejected) {
  LutNetwork net("bad", 1, 1);
  for (int i = 0; i < 2; ++i) {
    LutSlot s;
    s.truth = 0xAAAA;
    s.pins[0] = NetRef{NetKind::kPrimary, 0};
    s.is_output = true;
    s.output_bit = 0;
    net.add_slot(s);
  }
  EXPECT_THROW(net.validate(), Error);
}

TEST(EvalTruth, TruthTableIndexing) {
  // truth = f(p0) = p0 -> 0xAAAA.
  EXPECT_FALSE(eval_truth(0xAAAA, false, false, false, false));
  EXPECT_TRUE(eval_truth(0xAAAA, true, false, false, false));
  // xor(p0,p1) = 0x6666.
  EXPECT_TRUE(eval_truth(0x6666, true, false, true, true));
  EXPECT_FALSE(eval_truth(0x6666, true, true, false, false));
}

TEST(LutExecutor, ResetClearsState) {
  Netlist nl = make_lfsr(8, {0, 2});
  const LutNetwork mapped = map_to_luts(nl);
  LutExecutor ex(mapped);
  std::vector<bool> load(9, false);
  load[3] = true;
  load[8] = true;  // load bit
  ex.step(load);
  ex.reset();
  // After reset the registered state reads as zero again.
  const auto out = ex.step(std::vector<bool>(9, false));
  EXPECT_EQ(std::count(out.begin(), out.end(), true), 0);
}

}  // namespace
}  // namespace aad::netlist
