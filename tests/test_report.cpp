// Tests for the mini-OS state reports (frame map, Frame Replacement Table
// rendering) and geometry-parameterized end-to-end integration: the whole
// stack must work unchanged across device shapes.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/coprocessor.h"
#include "mcu/report.h"

namespace aad {
namespace {

using algorithms::KernelId;

TEST(FrameMapTest, EmptyDeviceAllDots) {
  core::AgileCoprocessor cp;
  const std::string map = mcu::frame_map(cp.mcu());
  EXPECT_EQ(map.size(), cp.fabric().geometry().frame_count);
  EXPECT_EQ(map, std::string(map.size(), '.'));
}

TEST(FrameMapTest, ResidentFunctionsGetLetters) {
  core::AgileCoprocessor cp;
  cp.download(KernelId::kAes128);
  cp.download(KernelId::kXtea);
  cp.preload(KernelId::kAes128);
  cp.preload(KernelId::kXtea);
  const std::string map = mcu::frame_map(cp.mcu());
  const auto a_count = std::count(map.begin(), map.end(), 'A');
  const auto b_count = std::count(map.begin(), map.end(), 'B');
  EXPECT_EQ(static_cast<unsigned>(a_count + b_count),
            algorithms::spec(KernelId::kAes128).nominal_frames +
                algorithms::spec(KernelId::kXtea).nominal_frames);
  EXPECT_NE(map.find('.'), std::string::npos);  // free frames remain
}

TEST(FrameMapTest, EvictionReturnsDots) {
  core::AgileCoprocessor cp;
  cp.download(KernelId::kXtea);
  cp.preload(KernelId::kXtea);
  cp.evict(KernelId::kXtea);
  const std::string map = mcu::frame_map(cp.mcu());
  EXPECT_EQ(map, std::string(map.size(), '.'));
}

TEST(FrameTableReportTest, MentionsResidents) {
  core::AgileCoprocessor cp;
  cp.download(KernelId::kSha1);
  cp.preload(KernelId::kSha1);
  const std::string report = mcu::frame_table_report(cp.mcu());
  EXPECT_NE(report.find("1 resident"), std::string::npos);
  EXPECT_NE(report.find("8 frames"), std::string::npos);
}

// --- geometry sweep: the whole stack on different device shapes ---------------

struct GeometryCase {
  unsigned frames;
  unsigned rows;
};

class GeometrySweep : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(GeometrySweep, NetlistKernelsComputeOnAnyDevice) {
  const auto& param = GetParam();
  core::CoprocessorConfig config;
  config.fabric.geometry.frame_count = param.frames;
  config.fabric.geometry.clb_rows = param.rows;
  core::AgileCoprocessor cp(config);

  for (KernelId id : {KernelId::kAdder32, KernelId::kCrc32,
                      KernelId::kParity32}) {
    const auto& spec = algorithms::spec(id);
    cp.download(id);
    const Bytes input = spec.make_input(3, param.frames * 100 + param.rows);
    EXPECT_EQ(cp.invoke(id, input).output, spec.software(input))
        << spec.name << " on " << param.frames << "x" << param.rows;
  }
}

TEST_P(GeometrySweep, FootprintScalesInverselyWithRowHeight) {
  const auto& param = GetParam();
  fabric::FrameGeometry geometry;
  geometry.frame_count = param.frames;
  geometry.clb_rows = param.rows;
  const auto bs = algorithms::spec(KernelId::kCrc32).make_bitstream(geometry);
  // LUT count is geometry-independent; frames = ceil(luts / (4 * rows)).
  const auto reference =
      algorithms::spec(KernelId::kCrc32).make_bitstream({});
  const std::size_t luts_upper =
      reference.frame_count() * fabric::FrameGeometry{}.slots_per_frame();
  EXPECT_LE(bs.frame_count() * geometry.slots_per_frame(),
            luts_upper + geometry.slots_per_frame());
  EXPECT_LE(bs.frame_count(), geometry.frame_count);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometrySweep,
    ::testing::Values(GeometryCase{48, 16}, GeometryCase{24, 8},
                      GeometryCase{96, 32}, GeometryCase{12, 64}),
    [](const ::testing::TestParamInfo<GeometryCase>& info) {
      return std::to_string(info.param.frames) + "x" +
             std::to_string(info.param.rows);
    });

}  // namespace
}  // namespace aad
