// Tests for the gate-level netlist IR, the golden simulator, and every
// circuit generator (differentially against plain C++ arithmetic).
#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/crc32.h"
#include "common/prng.h"
#include "netlist/generators.h"
#include "netlist/netlist.h"
#include "netlist/simulate.h"

namespace aad::netlist {
namespace {

std::vector<bool> to_bits(std::uint64_t value, unsigned width) {
  std::vector<bool> bits(width);
  for (unsigned i = 0; i < width; ++i) bits[i] = (value >> i) & 1u;
  return bits;
}

std::uint64_t from_bits(const std::vector<bool>& bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits[i]) v |= std::uint64_t{1} << i;
  return v;
}

std::vector<bool> concat(std::vector<bool> a, const std::vector<bool>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

// --- IR basics ---------------------------------------------------------------

TEST(NetlistIr, ArityIsEnforced) {
  Netlist nl("t");
  const NodeId a = nl.add_input();
  EXPECT_THROW(nl.add_gate(GateKind::kAnd, {a}), Error);
  EXPECT_THROW(nl.add_gate(GateKind::kNot, {a, a}), Error);
  EXPECT_THROW(nl.add_gate(GateKind::kMux, {a, a}), Error);
}

TEST(NetlistIr, DanglingDffIsRejectedByValidate) {
  Netlist nl("t");
  const NodeId d = nl.add_dff();
  nl.bind_output_port("q", {d});
  EXPECT_THROW(nl.validate(), Error);
}

TEST(NetlistIr, CombinationalCycleDetected) {
  Netlist nl("t");
  const NodeId a = nl.add_input();
  nl.bind_input_port("a", {a});
  // Build x = and(a, y); y = or(x, a) -> cycle via manual fanin surgery is
  // impossible through the API (fanins must already exist), so use a DFF
  // loop which IS legal, then check validate accepts it.
  const NodeId q = nl.add_dff();
  const NodeId x = nl.add_and(a, q);
  nl.connect_dff(q, x);
  nl.bind_output_port("x", {x});
  EXPECT_NO_THROW(nl.validate());  // sequential loop is fine
}

TEST(NetlistIr, PortLookup) {
  Netlist nl("t");
  nl.add_input_port("data", 4);
  const auto& p = nl.input_port("data");
  EXPECT_EQ(p.bits.size(), 4u);
  EXPECT_THROW(nl.input_port("nope"), Error);
  EXPECT_EQ(nl.input_bit_count(), 4u);
}

TEST(NetlistIr, DffStateAdvancesOnStep) {
  // One-bit register: q' = d.
  Netlist nl("reg");
  const auto d = nl.add_input_port("d", 1);
  const NodeId q = nl.add_dff(d[0]);
  nl.bind_output_port("q", {q});
  nl.validate();
  Simulator sim(nl);
  // Output is pre-latch: first step shows reset state 0.
  EXPECT_EQ(sim.step({true})[0], false);
  EXPECT_EQ(sim.step({false})[0], true);   // captured the 1
  EXPECT_EQ(sim.step({false})[0], false);  // captured the 0
}

// --- generators, differential against arithmetic ------------------------------

class AdderWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdderWidths, MatchesIntegerAddition) {
  const unsigned width = GetParam();
  Netlist nl = make_ripple_adder(width);
  Simulator sim(nl);
  Prng rng(width);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t a = rng.next() & bits::low_mask(width);
    const std::uint64_t b = rng.next() & bits::low_mask(width);
    const auto out =
        sim.evaluate(concat(to_bits(a, width), to_bits(b, width)));
    const std::uint64_t sum = from_bits(out);
    EXPECT_EQ(sum, a + b) << "width=" << width << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidths,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u, 32u));

class ParityWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParityWidths, MatchesPopcountParity) {
  const unsigned width = GetParam();
  Netlist nl = make_parity(width);
  Simulator sim(nl);
  Prng rng(width * 7 + 1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t v = rng.next() & bits::low_mask(width);
    const auto out = sim.evaluate(to_bits(v, width));
    EXPECT_EQ(out[0], (bits::popcount(v) & 1u) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ParityWidths,
                         ::testing::Values(1u, 2u, 5u, 8u, 32u, 64u));

class PopcountWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(PopcountWidths, MatchesPopcount) {
  const unsigned width = GetParam();
  Netlist nl = make_popcount(width);
  Simulator sim(nl);
  Prng rng(width * 13 + 5);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t v = rng.next() & bits::low_mask(width);
    EXPECT_EQ(from_bits(sim.evaluate(to_bits(v, width))), bits::popcount(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PopcountWidths,
                         ::testing::Values(1u, 3u, 8u, 15u, 32u));

class ComparatorWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(ComparatorWidths, MatchesIntegerCompare) {
  const unsigned width = GetParam();
  Netlist nl = make_comparator(width);
  Simulator sim(nl);
  Prng rng(width * 3 + 11);
  for (int trial = 0; trial < 80; ++trial) {
    // Mix equal pairs in (1/4 of trials) so eq gets exercised.
    std::uint64_t a = rng.next() & bits::low_mask(width);
    std::uint64_t b =
        (trial % 4 == 0) ? a : rng.next() & bits::low_mask(width);
    const auto out =
        sim.evaluate(concat(to_bits(a, width), to_bits(b, width)));
    EXPECT_EQ(out[0], a == b);
    EXPECT_EQ(out[1], a < b);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ComparatorWidths,
                         ::testing::Values(1u, 4u, 8u, 32u));

TEST(GrayEncoder, MatchesXorShift) {
  Netlist nl = make_gray_encoder(16);
  Simulator sim(nl);
  for (std::uint64_t v : {0ull, 1ull, 0xFFFFull, 0xA5A5ull, 0x1234ull}) {
    EXPECT_EQ(from_bits(sim.evaluate(to_bits(v, 16))), v ^ (v >> 1));
  }
}

class MultiplierWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(MultiplierWidths, MatchesIntegerProduct) {
  const unsigned width = GetParam();
  Netlist nl = make_array_multiplier(width);
  Simulator sim(nl);
  Prng rng(width + 77);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t a = rng.next() & bits::low_mask(width);
    const std::uint64_t b = rng.next() & bits::low_mask(width);
    EXPECT_EQ(from_bits(sim.evaluate(
                  concat(to_bits(a, width), to_bits(b, width)))),
              a * b);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultiplierWidths,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Crc32Datapath, MatchesSoftwareCrc32) {
  Netlist nl = make_crc32_datapath();
  Simulator sim(nl);
  const std::string msg = "123456789";
  for (char ch : msg) {
    auto in = to_bits(static_cast<std::uint8_t>(ch), 8);
    in.push_back(true);  // valid
    sim.step(in);
  }
  std::vector<bool> drain(9, false);
  const auto out = sim.step(drain);
  EXPECT_EQ(from_bits(out), 0xCBF43926u);
}

TEST(Crc32Datapath, ValidLowHoldsState) {
  Netlist nl = make_crc32_datapath();
  Simulator sim(nl);
  auto in = to_bits(0xAB, 8);
  in.push_back(true);
  sim.step(in);
  std::vector<bool> idle(9, false);
  const auto after_one = sim.step(idle);
  const auto after_two = sim.step(idle);  // more idle cycles change nothing
  EXPECT_EQ(after_one, after_two);
}

TEST(Crc32Datapath, IncrementalOverRandomData) {
  Netlist nl = make_crc32_datapath();
  Simulator sim(nl);
  Prng rng(99);
  Bytes data(64);
  for (auto& b : data) b = static_cast<Byte>(rng.next());
  for (Byte b : data) {
    auto in = to_bits(b, 8);
    in.push_back(true);
    sim.step(in);
  }
  const auto out = sim.step(std::vector<bool>(9, false));
  EXPECT_EQ(from_bits(out), Crc32::compute(data));
}

TEST(Lfsr, LoadThenShiftMatchesReference) {
  const std::vector<unsigned> taps = {0, 1, 21, 31};
  Netlist nl = make_lfsr(32, taps);
  Simulator sim(nl);
  const std::uint32_t seed = 0xACE1u;

  auto ref_step = [&](std::uint32_t s) {
    std::uint32_t fb = 0;
    for (unsigned t : taps) fb ^= (s >> t) & 1u;
    return (s >> 1) | (fb << 31);
  };

  // Load.
  auto in = to_bits(seed, 32);
  in.push_back(true);
  sim.step(in);
  // Shift 100 and compare state each cycle (output is pre-latch).
  std::uint32_t expect = seed;
  std::vector<bool> shift(33, false);
  for (int i = 0; i < 100; ++i) {
    const auto out = sim.step(shift);
    EXPECT_EQ(from_bits(out), expect) << "at cycle " << i;
    expect = ref_step(expect);
  }
}

TEST(Lfsr, RejectsBadTaps) {
  EXPECT_THROW(make_lfsr(8, {9}), Error);
  EXPECT_THROW(make_lfsr(8, {}), Error);
}

TEST(Generators, GateCountsAreReasonable) {
  // Smoke budget check: the CRC datapath should map to a few hundred gates,
  // not thousands (inverter folding and buffer elision keep it lean later).
  const Netlist crc = make_crc32_datapath();
  EXPECT_GT(crc.logic_gate_count(), 100u);
  EXPECT_LT(crc.logic_gate_count(), 2000u);
  EXPECT_EQ(crc.dff_count(), 32u);
}

}  // namespace
}  // namespace aad::netlist
