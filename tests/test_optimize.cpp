// Tests for the netlist optimizer: equivalence preservation (differential
// against the unoptimized netlist on every generator), specific rewrite
// rules, and reduction accounting.
#include <gtest/gtest.h>

#include "common/prng.h"
#include "netlist/generators.h"
#include "netlist/lutmap.h"
#include "netlist/optimize.h"
#include "netlist/simulate.h"

namespace aad::netlist {
namespace {

void expect_equivalent(const Netlist& original, int cycles,
                       std::uint64_t seed) {
  const Netlist optimized = optimize(original);
  Simulator a(original);
  Simulator b(optimized);
  Prng rng(seed);
  for (int c = 0; c < cycles; ++c) {
    std::vector<bool> in(original.input_bit_count());
    for (auto&& bit : in) bit = rng.next_bool(0.5);
    ASSERT_EQ(a.step(in), b.step(in))
        << original.name() << " diverged after optimization, cycle " << c;
  }
}

struct GeneratorCase {
  const char* label;
  Netlist (*build)();
};

Netlist build_adder() { return make_ripple_adder(24); }
Netlist build_parity() { return make_parity(33); }
Netlist build_popcount() { return make_popcount(17); }
Netlist build_comparator() { return make_comparator(16); }
Netlist build_gray() { return make_gray_encoder(16); }
Netlist build_mul() { return make_array_multiplier(7); }
Netlist build_crc() { return make_crc32_datapath(); }
Netlist build_lfsr() { return make_lfsr(16, {0, 2, 3, 5}); }

class OptimizerEquivalence
    : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(OptimizerEquivalence, PreservesBehaviour) {
  expect_equivalent(GetParam().build(), 40,
                    std::hash<std::string>{}(GetParam().label));
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, OptimizerEquivalence,
    ::testing::Values(GeneratorCase{"adder", build_adder},
                      GeneratorCase{"parity", build_parity},
                      GeneratorCase{"popcount", build_popcount},
                      GeneratorCase{"comparator", build_comparator},
                      GeneratorCase{"gray", build_gray},
                      GeneratorCase{"mul", build_mul},
                      GeneratorCase{"crc32", build_crc},
                      GeneratorCase{"lfsr", build_lfsr}),
    [](const ::testing::TestParamInfo<GeneratorCase>& info) {
      return info.param.label;
    });

TEST(Optimizer, ShrinksGeneratorNetlists) {
  // The generators splice in constants (carry-in 0, padding) and repeated
  // subexpressions; the optimizer must find some of it.
  for (auto build : {build_adder, build_comparator, build_mul}) {
    OptStats stats;
    const Netlist nl = build();
    optimize(nl, &stats);
    EXPECT_LT(stats.nodes_out, stats.nodes_in) << nl.name();
    EXPECT_GT(stats.constants_folded + stats.gates_merged +
                  stats.dead_removed,
              0u)
        << nl.name();
  }
}

TEST(Optimizer, ConstantFoldingRules) {
  Netlist nl("fold");
  const auto in = nl.add_input_port("in", 1);
  const NodeId zero = nl.add_const(false);
  const NodeId one = nl.add_const(true);
  nl.bind_output_port("and0", {nl.add_and(in[0], zero)});   // -> 0
  nl.bind_output_port("or1", {nl.add_or(in[0], one)});      // -> 1
  nl.bind_output_port("xor0", {nl.add_xor(in[0], zero)});   // -> in
  nl.bind_output_port("xor1", {nl.add_xor(in[0], one)});    // -> !in
  nl.bind_output_port("xx", {nl.add_xor(in[0], in[0])});    // -> 0
  nl.bind_output_port("mux", {nl.add_mux(zero, one, in[0])});  // -> in
  nl.validate();

  OptStats stats;
  const Netlist opt = optimize(nl, &stats);
  EXPECT_GE(stats.constants_folded, 5u);
  // Behaviour check over both input values.
  Simulator sim(opt);
  const auto out0 = sim.evaluate({false});
  EXPECT_EQ(out0, (std::vector<bool>{false, true, false, true, false, false}));
  const auto out1 = sim.evaluate({true});
  EXPECT_EQ(out1, (std::vector<bool>{false, true, true, false, false, true}));
}

TEST(Optimizer, StructuralHashingMergesDuplicates) {
  Netlist nl("dup");
  const auto in = nl.add_input_port("in", 2);
  // Same gate three times, two with swapped (commutative) fanins.
  const NodeId x1 = nl.add_and(in[0], in[1]);
  const NodeId x2 = nl.add_and(in[1], in[0]);
  const NodeId x3 = nl.add_and(in[0], in[1]);
  nl.bind_output_port("o", {nl.add_xor(nl.add_xor(x1, x2), x3)});
  nl.validate();

  OptStats stats;
  const Netlist opt = optimize(nl, &stats);
  EXPECT_GE(stats.gates_merged, 2u);
  // xor(x,x)=0 then xor(0,x)=x: the whole thing folds to and(in0,in1).
  Simulator sim(opt);
  EXPECT_TRUE(sim.evaluate({true, true})[0]);
  EXPECT_FALSE(sim.evaluate({true, false})[0]);
}

TEST(Optimizer, DeadCodeEliminated) {
  Netlist nl("dead");
  const auto in = nl.add_input_port("in", 2);
  const NodeId used = nl.add_and(in[0], in[1]);
  // A whole dead cone, including a dead DFF.
  const NodeId d1 = nl.add_or(in[0], in[1]);
  const NodeId d2 = nl.add_xor(d1, in[0]);
  nl.add_dff(d2);
  nl.bind_output_port("o", {used});
  nl.validate();

  OptStats stats;
  const Netlist opt = optimize(nl, &stats);
  EXPECT_GE(stats.dead_removed, 3u);
  EXPECT_EQ(opt.dff_count(), 0u);
  expect_equivalent(nl, 10, 5);
}

TEST(Optimizer, PortsArePreservedExactly) {
  const Netlist nl = make_comparator(8);
  const Netlist opt = optimize(nl);
  ASSERT_EQ(opt.input_ports().size(), nl.input_ports().size());
  ASSERT_EQ(opt.output_ports().size(), nl.output_ports().size());
  for (std::size_t i = 0; i < nl.input_ports().size(); ++i) {
    EXPECT_EQ(opt.input_ports()[i].name, nl.input_ports()[i].name);
    EXPECT_EQ(opt.input_ports()[i].bits.size(),
              nl.input_ports()[i].bits.size());
  }
  for (std::size_t i = 0; i < nl.output_ports().size(); ++i)
    EXPECT_EQ(opt.output_ports()[i].name, nl.output_ports()[i].name);
}

TEST(Optimizer, MappedFootprintShrinks) {
  // The end-to-end payoff: optimized netlists map to fewer (or equal) LUTs.
  for (auto build : {build_adder, build_mul, build_crc}) {
    const Netlist nl = build();
    const auto raw = map_to_luts(nl);
    const auto opt = map_to_luts(optimize(nl));
    EXPECT_LE(opt.lut_count(), raw.lut_count()) << nl.name();
  }
}

TEST(Optimizer, IdempotentAtFixedPoint) {
  const Netlist once = optimize(make_array_multiplier(6));
  OptStats stats;
  const Netlist twice = optimize(once, &stats);
  EXPECT_EQ(twice.node_count(), once.node_count());
}

TEST(Optimizer, SequentialFeedbackSurvives) {
  // LFSR state must keep advancing identically after optimization.
  const Netlist nl = make_lfsr(12, {0, 3});
  const Netlist opt = optimize(nl);
  EXPECT_EQ(opt.dff_count(), 12u);
  expect_equivalent(nl, 64, 77);
}

}  // namespace
}  // namespace aad::netlist
