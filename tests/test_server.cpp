// Tests for the event-driven CoprocessorServer: requests from multiple
// logical clients overlap on the card (PCI transfers during reconfiguration
// / execution), outputs stay bit-exact with the host baseline, and the
// latency/throughput statistics are coherent.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/server.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace aad::core {
namespace {

using algorithms::KernelId;

Bytes kernel_input(KernelId id, std::size_t blocks, std::uint64_t seed) {
  return algorithms::spec(id).make_input(blocks, seed);
}

TEST(CoprocessorServerTest, TwoClientsOverlapAndStayBitExact) {
  const Bytes input_a = kernel_input(KernelId::kAes128, 16, 7);
  const Bytes input_b = kernel_input(KernelId::kSha256, 16, 8);

  // Baseline: the same two cold requests, strictly sequential through the
  // synchronous API.
  AgileCoprocessor sequential;
  sequential.download(KernelId::kAes128);
  sequential.download(KernelId::kSha256);
  const auto seq_a = sequential.invoke(KernelId::kAes128, input_a);
  const auto seq_b = sequential.invoke(KernelId::kSha256, input_b);
  const sim::SimTime sequential_total = seq_a.latency + seq_b.latency;

  // Event-driven: both submitted at t=0 by different clients.
  AgileCoprocessor card;
  card.download(KernelId::kAes128);
  card.download(KernelId::kSha256);
  CoprocessorServer server(card);
  server.submit(0, KernelId::kAes128, input_a);
  server.submit(1, KernelId::kSha256, input_b);
  server.run();

  const auto stats = server.stats();
  ASSERT_EQ(stats.completed, 2u);
  // Overlap actually happened: B's input DMA rode the bus while A owned the
  // card, so the combined makespan beats the sequential sum.
  EXPECT_LT(stats.makespan, sequential_total);

  // Outputs identical to the host-only software baseline.
  for (const ServerRequest& r : server.completed()) {
    const KernelId id = static_cast<KernelId>(r.function);
    const ByteSpan in = id == KernelId::kAes128 ? ByteSpan(input_a)
                                                : ByteSpan(input_b);
    EXPECT_EQ(r.output, algorithms::spec(id).software(in));
  }
}

TEST(CoprocessorServerTest, ResidentRequestsPipelineOnTheBus) {
  AgileCoprocessor card;
  card.download(KernelId::kSha256);
  const Bytes input = kernel_input(KernelId::kSha256, 32, 3);

  // Warm single-request latency through the synchronous path.
  AgileCoprocessor reference;
  reference.download(KernelId::kSha256);
  reference.invoke(KernelId::kSha256, input);  // make it resident
  const auto warm = reference.invoke(KernelId::kSha256, input);

  CoprocessorServer server(card);
  server.submit(0, KernelId::kSha256, input);  // cold leader
  server.run();
  const sim::SimTime warm_begin = server.now();
  constexpr int kFollowers = 6;
  for (int i = 0; i < kFollowers; ++i)
    server.submit(static_cast<unsigned>(i), KernelId::kSha256, input);
  server.run();

  // The followers were all warm and their PCI transfers overlapped the
  // card's compute, so the batch beats back-to-back synchronous warm calls.
  const sim::SimTime batch = server.now() - warm_begin;
  EXPECT_LT(batch, warm.latency * kFollowers);
  EXPECT_EQ(server.stats().completed, 1u + kFollowers);
}

TEST(CoprocessorServerTest, RequestBreakdownIsCoherent) {
  AgileCoprocessor card;
  card.download(KernelId::kCrc32);
  CoprocessorServer server(card);
  const Bytes input = kernel_input(KernelId::kCrc32, 8, 1);
  server.submit(3, KernelId::kCrc32, input);
  server.run();

  ASSERT_EQ(server.completed().size(), 1u);
  const ServerRequest& r = server.completed().front();
  EXPECT_EQ(r.client, 3u);
  EXPECT_FALSE(r.load.hit);
  EXPECT_GT(r.pci_in_time, sim::SimTime::zero());
  EXPECT_GT(r.prepare_time, sim::SimTime::zero());
  EXPECT_GT(r.execute_time, sim::SimTime::zero());
  EXPECT_GT(r.pci_out_time, sim::SimTime::zero());
  // Stage boundaries are ordered and the uncontended single request never
  // waits for a resource.
  EXPECT_EQ(r.bus_wait, sim::SimTime::zero());
  EXPECT_EQ(r.device_wait, sim::SimTime::zero());
  EXPECT_EQ(r.pci_in_start, r.submit_time);
  EXPECT_EQ(r.device_start, r.pci_in_start + r.pci_in_time);
  EXPECT_EQ(r.pci_out_start,
            r.device_start + r.prepare_time + r.execute_time);
  EXPECT_EQ(r.complete_time, r.pci_out_start + r.pci_out_time);
  EXPECT_EQ(r.latency(), r.pci_in_time + r.prepare_time + r.execute_time +
                             r.pci_out_time);
}

TEST(CoprocessorServerTest, ContendedRequestsWaitAndStaysAccounted) {
  AgileCoprocessor card;
  card.download(KernelId::kMd5);
  CoprocessorServer server(card);
  const Bytes input = kernel_input(KernelId::kMd5, 64, 2);
  for (unsigned c = 0; c < 4; ++c) server.submit(c, KernelId::kMd5, input);
  server.run();

  const auto stats = server.stats();
  ASSERT_EQ(stats.completed, 4u);
  // With four simultaneous arrivals something had to queue somewhere.
  EXPECT_GT(stats.total_bus_wait + stats.total_device_wait,
            sim::SimTime::zero());
  EXPECT_GT(card.bus().stats().grants, 0u);
  // Latencies are monotone in queue position.
  EXPECT_LE(stats.latency.min, stats.latency.p50);
  EXPECT_LE(stats.latency.p50, stats.latency.p90);
  EXPECT_LE(stats.latency.p90, stats.latency.p99);
  EXPECT_LE(stats.latency.p99, stats.latency.max);
  EXPECT_LE(stats.latency.min, stats.latency.mean);
  EXPECT_LE(stats.latency.mean, stats.latency.max);
  EXPECT_GT(stats.throughput_rps, 0.0);
}

TEST(CoprocessorServerTest, CompletionHookFiresAtCompletionTime) {
  AgileCoprocessor card;
  card.download(KernelId::kXtea);
  CoprocessorServer server(card);
  sim::SimTime seen;
  server.submit(0, KernelId::kXtea, kernel_input(KernelId::kXtea, 2, 5),
                [&](const ServerRequest& r) { seen = r.complete_time; });
  server.run();
  EXPECT_EQ(seen, server.completed().front().complete_time);
  EXPECT_EQ(server.in_flight(), 0u);
}

TEST(CoprocessorServerTest, MixedKernelsAllMatchHostBaseline) {
  AgileCoprocessor card;
  card.download_all();
  CoprocessorServer server(card);

  std::map<std::uint64_t, std::pair<KernelId, Bytes>> submitted;
  unsigned client = 0;
  for (const auto& spec : algorithms::catalog()) {
    Bytes input = spec.make_input(2, 40 + client);
    const auto id = server.submit(client % 4, spec.id, input);
    submitted.emplace(id, std::make_pair(spec.id, std::move(input)));
    ++client;
  }
  server.run();

  ASSERT_EQ(server.completed().size(), submitted.size());
  for (const ServerRequest& r : server.completed()) {
    const auto& [kernel, input] = submitted.at(r.id);
    EXPECT_EQ(r.output, algorithms::spec(kernel).software(input))
        << algorithms::spec(kernel).name;
  }
}

TEST(CoprocessorServerTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    AgileCoprocessor card;
    card.download_all();
    CoprocessorServer server(card);
    workload::MultiClientConfig wc;
    wc.clients = 3;
    wc.requests_per_client = 8;
    wc.seed = 17;
    wc.zipf_s = 1.0;
    wc.mode = workload::ArrivalMode::kOpenLoop;
    wc.mean_interarrival = sim::SimTime::us(50);
    for (const auto& spec : algorithms::catalog())
      wc.functions.push_back(algorithms::function_id(spec.id));
    const auto trace = workload::make_multi_client(wc);
    workload::replay(server, trace,
                     [](workload::FunctionId fn, std::size_t blocks,
                        std::size_t index) {
                       return algorithms::spec(static_cast<KernelId>(fn))
                           .make_input(blocks, index);
                     });
    server.run();
    return server.stats();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.latency.p99, b.latency.p99);
  EXPECT_EQ(a.total_bus_wait, b.total_bus_wait);
}

TEST(CoprocessorServerReplayTest, ClosedLoopKeepsOneRequestPerClient) {
  AgileCoprocessor card;
  card.download_all();
  CoprocessorServer server(card);

  workload::MultiClientConfig wc;
  wc.clients = 3;
  wc.requests_per_client = 5;
  wc.seed = 9;
  wc.mode = workload::ArrivalMode::kClosedLoop;
  wc.mean_think_time = sim::SimTime::us(10);
  for (const auto& spec : algorithms::catalog())
    wc.functions.push_back(algorithms::function_id(spec.id));
  const auto trace = workload::make_multi_client(wc);

  const std::size_t primed = workload::replay(
      server, trace,
      [](workload::FunctionId fn, std::size_t blocks, std::size_t index) {
        return algorithms::spec(static_cast<KernelId>(fn))
            .make_input(blocks, index);
      });
  EXPECT_EQ(primed, wc.clients);  // one outstanding request per client
  server.run();

  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, wc.clients * wc.requests_per_client);

  // Closed loop: within a client, request i+1 is submitted only after
  // request i completed.
  std::map<unsigned, std::vector<const ServerRequest*>> by_client;
  for (const ServerRequest& r : server.completed())
    by_client[r.client].push_back(&r);
  for (auto& [client, requests] : by_client) {
    std::sort(requests.begin(), requests.end(),
              [](const ServerRequest* a, const ServerRequest* b) {
                return a->submit_time < b->submit_time;
              });
    for (std::size_t i = 1; i < requests.size(); ++i)
      EXPECT_GE(requests[i]->submit_time, requests[i - 1]->complete_time)
          << "client " << client << " request " << i;
  }
}

TEST(CoprocessorServerReplayTest, OpenLoopArrivalsFollowTheTrace) {
  AgileCoprocessor card;
  card.download(KernelId::kFir16);
  CoprocessorServer server(card);

  workload::MultiClientConfig wc;
  wc.clients = 2;
  wc.requests_per_client = 4;
  wc.seed = 21;
  wc.mode = workload::ArrivalMode::kOpenLoop;
  wc.mean_interarrival = sim::SimTime::us(75);
  wc.functions = {algorithms::function_id(KernelId::kFir16)};
  const auto trace = workload::make_multi_client(wc);

  const sim::SimTime start = server.now();  // replay anchors offsets here
  const std::size_t submitted = workload::replay(
      server, trace,
      [](workload::FunctionId, std::size_t blocks, std::size_t index) {
        return algorithms::spec(KernelId::kFir16).make_input(blocks, index);
      });
  EXPECT_EQ(submitted, trace.total_requests());
  server.run();

  // Every completed request arrived exactly at its trace offset, whether or
  // not the card was keeping up.
  std::map<unsigned, std::vector<sim::SimTime>> arrivals;
  for (const ServerRequest& r : server.completed())
    arrivals[r.client].push_back(r.submit_time);
  for (auto& [client, times] : arrivals) std::sort(times.begin(), times.end());
  for (const auto& ct : trace.clients) {
    ASSERT_EQ(arrivals.at(ct.client).size(), ct.requests.size());
    for (std::size_t i = 0; i < ct.requests.size(); ++i)
      EXPECT_EQ(arrivals.at(ct.client)[i], start + ct.requests[i].offset)
          << "client " << ct.client << " request " << i;
  }
}

TEST(SummarizeLatenciesTest, EmptySampleIsAllZero) {
  const LatencySummary s = summarize_latencies({});
  EXPECT_EQ(s.min, sim::SimTime::zero());
  EXPECT_EQ(s.mean, sim::SimTime::zero());
  EXPECT_EQ(s.p50, sim::SimTime::zero());
  EXPECT_EQ(s.p90, sim::SimTime::zero());
  EXPECT_EQ(s.p99, sim::SimTime::zero());
  EXPECT_EQ(s.max, sim::SimTime::zero());
}

TEST(SummarizeLatenciesTest, SingleSampleIsItsOwnPercentiles) {
  const sim::SimTime t = sim::SimTime::us(42);
  const LatencySummary s = summarize_latencies({t});
  EXPECT_EQ(s.min, t);
  EXPECT_EQ(s.mean, t);
  EXPECT_EQ(s.p50, t);
  EXPECT_EQ(s.p90, t);
  EXPECT_EQ(s.p99, t);
  EXPECT_EQ(s.max, t);
}

TEST(SummarizeLatenciesTest, NearestRankOnSmallSamples) {
  // Nearest-rank: the q-quantile of n samples is sorted[ceil(q*n) - 1].
  // With 10 samples 10us..100us: p50 -> rank 5 (50us), p90 -> rank 9
  // (90us), and p99 -> rank 10 — on any sample smaller than 100 the p99
  // collapses to the max, which is exactly what it should report.
  std::vector<sim::SimTime> sample;
  for (int i = 10; i <= 100; i += 10) sample.push_back(sim::SimTime::us(i));
  const LatencySummary s = summarize_latencies(std::move(sample));
  EXPECT_EQ(s.min, sim::SimTime::us(10));
  EXPECT_EQ(s.mean, sim::SimTime::us(55));
  EXPECT_EQ(s.p50, sim::SimTime::us(50));
  EXPECT_EQ(s.p90, sim::SimTime::us(90));
  EXPECT_EQ(s.p99, sim::SimTime::us(100));
  EXPECT_EQ(s.max, sim::SimTime::us(100));

  // Order of arrival must not matter (the summary sorts its copy).
  const LatencySummary shuffled = summarize_latencies(
      {sim::SimTime::us(30), sim::SimTime::us(10), sim::SimTime::us(20)});
  EXPECT_EQ(shuffled.p50, sim::SimTime::us(20));
  EXPECT_EQ(shuffled.p99, sim::SimTime::us(30));
}

// The acceptance bar for the device-stage split: with the FIFO device
// policy and overlap disabled, the two-resource server must reproduce the
// pre-split single-busy-until-scalar timings exactly.  Those timings are
// fully characterized by the serialized recurrence
//
//   device_start[i] = max(device_ready[i], fabric_end[i-1])
//   fabric_start[i] = device_start[i] + prepare_time[i]   (no gap)
//
// over requests in service order, with all engine/fabric waits folded into
// the single wait-for-the-previous-request term.
TEST(CoprocessorServerRegressionTest, NoOverlapFifoMatchesSerializedDevice) {
  AgileCoprocessor card;
  card.download_all();
  ServerConfig sc;
  sc.device_policy = DevicePolicy::kFifo;
  sc.overlap_reconfig = false;
  CoprocessorServer server(card, sc);

  workload::MultiClientConfig wc;
  wc.clients = 4;
  wc.requests_per_client = 10;
  wc.seed = 29;
  wc.zipf_s = 0.8;
  wc.payload_blocks = 8;
  wc.mode = workload::ArrivalMode::kOpenLoop;
  wc.mean_interarrival = sim::SimTime::us(40);  // overload: queues form
  for (const auto& spec : algorithms::catalog())
    wc.functions.push_back(algorithms::function_id(spec.id));
  const auto trace = workload::make_multi_client(wc);
  workload::replay(server, trace,
                   [](workload::FunctionId fn, std::size_t blocks,
                      std::size_t index) {
                     return algorithms::spec(static_cast<KernelId>(fn))
                         .make_input(blocks, index);
                   });
  server.run();

  std::vector<const ServerRequest*> order;
  for (const ServerRequest& r : server.completed()) order.push_back(&r);
  ASSERT_EQ(order.size(), wc.clients * wc.requests_per_client);
  std::sort(order.begin(), order.end(),
            [](const ServerRequest* a, const ServerRequest* b) {
              return a->device_start < b->device_start;
            });

  sim::SimTime prev_fabric_end;
  for (const ServerRequest* r : order) {
    EXPECT_EQ(r->device_start, std::max(r->device_ready, prev_fabric_end));
    EXPECT_EQ(r->fabric_start, r->device_start + r->prepare_time);
    EXPECT_EQ(r->engine_wait, r->device_start - r->device_ready);
    EXPECT_EQ(r->fabric_wait, sim::SimTime::zero());
    EXPECT_EQ(r->device_wait, r->engine_wait);
    EXPECT_EQ(r->hidden_reconfig, sim::SimTime::zero());
    prev_fabric_end = r->fabric_start + r->execute_time;
    EXPECT_GE(r->pci_out_start, prev_fabric_end);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.total_hidden_reconfig, sim::SimTime::zero());
  EXPECT_EQ(stats.overlapped_loads, 0u);
  EXPECT_EQ(stats.total_fabric_wait, sim::SimTime::zero());
  EXPECT_EQ(stats.total_device_wait, stats.total_engine_wait);
}

TEST(CoprocessorServerOverlapTest, ReconfigurationHidesBehindExecution) {
  // Request A: resident function with a long fabric execution.  Request B:
  // a cold function — with overlap on, B's configuration streams through
  // the engine while A still owns the fabric.
  struct Outcome {
    sim::SimTime makespan, hidden;
    sim::SimTime b_device_start, a_fabric_end;
    Bytes a_output, b_output;
  };
  const Bytes input_a = kernel_input(KernelId::kSha256, 512, 3);
  const Bytes input_b = kernel_input(KernelId::kAes128, 4, 4);
  const auto run_once = [&](bool overlap) {
    AgileCoprocessor card;
    card.download(KernelId::kSha256);
    card.download(KernelId::kAes128);
    ServerConfig sc;
    sc.overlap_reconfig = overlap;
    CoprocessorServer server(card, sc);
    server.submit(0, KernelId::kSha256, input_a);  // long leader
    server.submit(1, KernelId::kAes128, input_b);  // cold follower
    server.run();
    Outcome out;
    const auto stats = server.stats();
    out.makespan = stats.makespan;
    out.hidden = stats.total_hidden_reconfig;
    for (const ServerRequest& r : server.completed()) {
      if (r.client == 0) {
        out.a_fabric_end = r.fabric_start + r.execute_time;
        out.a_output = r.output;
      } else {
        out.b_device_start = r.device_start;
        out.b_output = r.output;
      }
    }
    return out;
  };

  const Outcome serialized = run_once(false);
  const Outcome overlapped = run_once(true);

  // Overlap really happened: B's engine window began while A owned the
  // fabric, reconfiguration time was hidden, and the makespan shrank.
  EXPECT_LT(overlapped.b_device_start, overlapped.a_fabric_end);
  EXPECT_GT(overlapped.hidden, sim::SimTime::zero());
  EXPECT_LT(overlapped.makespan, serialized.makespan);
  EXPECT_EQ(serialized.hidden, sim::SimTime::zero());

  // And it is timing-only: outputs stay bit-exact either way.
  const Bytes want_a = algorithms::spec(KernelId::kSha256).software(input_a);
  const Bytes want_b = algorithms::spec(KernelId::kAes128).software(input_b);
  EXPECT_EQ(serialized.a_output, want_a);
  EXPECT_EQ(overlapped.a_output, want_a);
  EXPECT_EQ(serialized.b_output, want_b);
  EXPECT_EQ(overlapped.b_output, want_b);
}

TEST(CoprocessorServerOverlapTest, EvictionHeavyTraceStaysBitExact) {
  // Overlapped loads evict non-pinned victims while the fabric is busy;
  // every output must still match the host software baseline.
  AgileCoprocessor card;
  card.download_all();
  CoprocessorServer server(card);  // defaults: FIFO + overlap
  ASSERT_TRUE(server.config().overlap_reconfig);

  std::map<std::uint64_t, std::pair<KernelId, Bytes>> submitted;
  unsigned client = 0;
  for (int round = 0; round < 3; ++round)
    for (const auto& spec : algorithms::catalog()) {
      Bytes input = spec.make_input(4, 60 + client);
      const auto id = server.submit(client % 5, spec.id, input);
      submitted.emplace(id, std::make_pair(spec.id, std::move(input)));
      ++client;
    }
  server.run();

  ASSERT_EQ(server.completed().size(), submitted.size());
  for (const ServerRequest& r : server.completed()) {
    const auto& [kernel, input] = submitted.at(r.id);
    EXPECT_EQ(r.output, algorithms::spec(kernel).software(input))
        << algorithms::spec(kernel).name;
  }
  // The thrash guarantees misses; some of their loads should have hidden
  // behind execution.
  EXPECT_GT(server.stats().total_hidden_reconfig, sim::SimTime::zero());
  EXPECT_GT(server.stats().overlapped_loads, 0u);
}

TEST(CoprocessorServerPolicyTest, ResidentFirstServesHitsBeforeMisses) {
  // A long-running resident request occupies the fabric; while it runs, a
  // miss (AES) and a hit (SHA-256) queue up.  Resident-first serves the
  // hit before the miss; FIFO preserves arrival order.
  const Bytes blocker = kernel_input(KernelId::kSha256, 512, 1);
  const Bytes miss_in = kernel_input(KernelId::kAes128, 4, 2);
  const Bytes hit_in = kernel_input(KernelId::kSha256, 4, 3);
  const auto completion_order = [&](DevicePolicy policy) {
    AgileCoprocessor card;
    card.download(KernelId::kSha256);
    card.download(KernelId::kAes128);
    ServerConfig sc;
    sc.device_policy = policy;
    sc.overlap_reconfig = false;  // serialize: ordering is the observable
    CoprocessorServer server(card, sc);
    server.submit(0, KernelId::kSha256, blocker);  // make resident + occupy
    server.run();
    server.submit(1, KernelId::kSha256, blocker);  // occupy the fabric again
    server.submit(2, KernelId::kAes128, miss_in);  // arrives first: miss
    server.submit(3, KernelId::kSha256, hit_in);   // arrives second: hit
    server.run();
    std::vector<unsigned> clients;
    for (const ServerRequest& r : server.completed())
      clients.push_back(r.client);
    return clients;
  };

  const auto fifo = completion_order(DevicePolicy::kFifo);
  ASSERT_EQ(fifo.size(), 4u);
  EXPECT_EQ(fifo[2], 2u);  // FIFO: the miss keeps its place
  EXPECT_EQ(fifo[3], 3u);

  const auto reordered = completion_order(DevicePolicy::kResidentFirst);
  ASSERT_EQ(reordered.size(), 4u);
  EXPECT_EQ(reordered[2], 3u);  // the hit jumped the miss
  EXPECT_EQ(reordered[3], 2u);
}

TEST(CoprocessorServerPolicyTest, ShortestReconfigFirstPicksSmallFootprint) {
  // Two cold functions queue behind a busy fabric: FFT (16 frames) arrives
  // before SHA-256 (10 frames).  SJF on the reconfiguration estimate
  // serves the smaller footprint first.
  const Bytes blocker = kernel_input(KernelId::kAes128, 512, 1);
  const auto completion_order = [&](DevicePolicy policy) {
    AgileCoprocessor card;
    card.download(KernelId::kAes128);
    card.download(KernelId::kFft);
    card.download(KernelId::kSha256);
    ServerConfig sc;
    sc.device_policy = policy;
    sc.overlap_reconfig = false;
    CoprocessorServer server(card, sc);
    server.submit(0, KernelId::kAes128, blocker);  // make resident + occupy
    server.run();
    server.submit(1, KernelId::kAes128, blocker);
    server.submit(2, KernelId::kFft, kernel_input(KernelId::kFft, 2, 2));
    server.submit(3, KernelId::kSha256,
                  kernel_input(KernelId::kSha256, 2, 3));
    server.run();
    std::vector<unsigned> clients;
    for (const ServerRequest& r : server.completed())
      clients.push_back(r.client);
    return clients;
  };

  const auto fifo = completion_order(DevicePolicy::kFifo);
  ASSERT_EQ(fifo.size(), 4u);
  EXPECT_EQ(fifo[2], 2u);  // arrival order

  const auto sjf = completion_order(DevicePolicy::kShortestReconfigFirst);
  ASSERT_EQ(sjf.size(), 4u);
  EXPECT_EQ(sjf[2], 3u);  // 10-frame SHA-256 before 16-frame FFT
  EXPECT_EQ(sjf[3], 2u);
}

TEST(CoprocessorServerTest, SubmitInThePastThrows) {
  AgileCoprocessor card;
  card.download(KernelId::kXtea);
  CoprocessorServer server(card);
  server.submit(0, KernelId::kXtea, kernel_input(KernelId::kXtea, 1, 1));
  server.run();
  EXPECT_THROW(server.submit_function_at(
                   sim::SimTime::zero(), 0,
                   algorithms::function_id(KernelId::kXtea),
                   kernel_input(KernelId::kXtea, 1, 1)),
               Error);
}

}  // namespace
}  // namespace aad::core
