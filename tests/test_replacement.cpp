// Tests for the Frame Replacement Policies (paper §2.5) against the Frame
// Replacement Table, including the Belady oracle's dominance property.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mcu/replacement.h"
#include "workload/trace.h"

namespace aad::mcu {
namespace {

FrameTableEntry entry(sim::SimTime last, std::uint64_t count) {
  FrameTableEntry e;
  e.last_access = last;
  e.access_count = count;
  return e;
}

TEST(LruPolicyTest, EvictsOldestTimestamp) {
  auto lru = make_policy(PolicyKind::kLru);
  FrameReplacementTable table;
  table[1] = entry(sim::SimTime::us(30), 5);
  table[2] = entry(sim::SimTime::us(10), 9);  // oldest
  table[3] = entry(sim::SimTime::us(20), 1);
  const FunctionId resident[] = {1, 2, 3};
  EXPECT_EQ(lru->choose_victim(resident, table), 2u);
}

TEST(FifoPolicyTest, EvictsInLoadOrder) {
  auto fifo = make_policy(PolicyKind::kFifo);
  FrameReplacementTable table;
  for (FunctionId f : {5u, 7u, 9u}) {
    fifo->on_load(f, sim::SimTime::zero());
    table[f] = entry(sim::SimTime::zero(), 1);
  }
  const FunctionId resident[] = {5, 7, 9};
  EXPECT_EQ(fifo->choose_victim(resident, table), 5u);
  fifo->on_evict(5);
  const FunctionId rest[] = {7, 9};
  EXPECT_EQ(fifo->choose_victim(rest, table), 7u);
  // Re-accessing does not change FIFO order.
  fifo->on_access(7, sim::SimTime::us(99));
  EXPECT_EQ(fifo->choose_victim(rest, table), 7u);
}

TEST(LfuPolicyTest, EvictsLowestCountWithLruTieBreak) {
  auto lfu = make_policy(PolicyKind::kLfu);
  FrameReplacementTable table;
  table[1] = entry(sim::SimTime::us(5), 3);
  table[2] = entry(sim::SimTime::us(9), 1);
  table[3] = entry(sim::SimTime::us(2), 1);  // same count, older
  const FunctionId resident[] = {1, 2, 3};
  EXPECT_EQ(lfu->choose_victim(resident, table), 3u);
}

TEST(RandomPolicyTest, DeterministicForSeedAndInRange) {
  auto r1 = make_policy(PolicyKind::kRandom, 7);
  auto r2 = make_policy(PolicyKind::kRandom, 7);
  FrameReplacementTable table;
  table[1] = table[2] = table[3] = entry(sim::SimTime::zero(), 1);
  const FunctionId resident[] = {1, 2, 3};
  std::set<FunctionId> seen;
  for (int i = 0; i < 50; ++i) {
    const FunctionId v = r1->choose_victim(resident, table);
    EXPECT_EQ(v, r2->choose_victim(resident, table));
    EXPECT_TRUE(v == 1 || v == 2 || v == 3);
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 1u);  // actually random, not constant
}

TEST(BeladyPolicyTest, EvictsFarthestNextUse) {
  auto belady = make_policy(PolicyKind::kBelady);
  belady->set_future({1, 2, 3, 1, 2, 1});
  FrameReplacementTable table;
  table[1] = table[2] = table[3] = entry(sim::SimTime::zero(), 1);
  const FunctionId resident[] = {1, 2, 3};
  // At cursor 0 everything is ahead; 3 is used farthest (index 2)... no:
  // next uses are 1->0, 2->1, 3->2, so evicting must pick the farthest
  // *after* consuming the stream appropriately.  Before any accesses the
  // farthest next use among {1,2,3} is 3 only until index 2; but 1 and 2
  // recur later, so the latest FINAL pick is the one whose next use is max:
  // next(1)=0, next(2)=1, next(3)=2 -> victim 3.
  EXPECT_EQ(belady->choose_victim(resident, table), 3u);
  // Consume 1, 2, 3.
  belady->on_access(1, sim::SimTime::zero());
  belady->on_access(2, sim::SimTime::zero());
  belady->on_access(3, sim::SimTime::zero());
  // Remaining future: 1, 2, 1.  next(3) = never -> victim 3.
  EXPECT_EQ(belady->choose_victim(resident, table), 3u);
  belady->on_access(1, sim::SimTime::zero());
  // Remaining: 2, 1 -> next(1)=1, next(2)=0, next(3)=never.
  EXPECT_EQ(belady->choose_victim(resident, table), 3u);
}

/// Simple frame-less cache simulation: capacity in "function slots".
/// Returns the miss count for the given policy over the trace.
unsigned simulate_misses(PolicyKind kind, const std::vector<FunctionId>& seq,
                         std::size_t capacity) {
  auto policy = make_policy(kind, 11);
  policy->set_future(seq);
  FrameReplacementTable table;
  std::set<FunctionId> resident;
  unsigned misses = 0;
  sim::SimTime now = sim::SimTime::zero();
  for (FunctionId f : seq) {
    now += sim::SimTime::us(1);
    if (!resident.contains(f)) {
      ++misses;
      if (resident.size() == capacity) {
        std::vector<FunctionId> res(resident.begin(), resident.end());
        const FunctionId victim = policy->choose_victim(res, table);
        resident.erase(victim);
        table.erase(victim);
        policy->on_evict(victim);
      }
      resident.insert(f);
      FrameTableEntry e;
      e.loaded_at = now;
      e.last_access = now;
      e.access_count = 0;
      table[f] = e;
      policy->on_load(f, now);
    }
    table[f].last_access = now;
    ++table[f].access_count;
    policy->on_access(f, now);
  }
  return misses;
}

TEST(PolicyDominance, BeladyIsOptimalOnSkewedTraces) {
  workload::TraceConfig config;
  config.functions = {1, 2, 3, 4, 5, 6, 7, 8};
  config.length = 2000;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    config.seed = seed;
    const auto seq =
        workload::function_sequence(workload::make_zipf(config, 1.0));
    const unsigned belady = simulate_misses(PolicyKind::kBelady, seq, 4);
    for (PolicyKind kind : {PolicyKind::kLru, PolicyKind::kFifo,
                            PolicyKind::kLfu, PolicyKind::kRandom}) {
      EXPECT_LE(belady, simulate_misses(kind, seq, 4))
          << "policy " << to_string(kind) << " seed " << seed;
    }
  }
}

TEST(PolicyDominance, LruBeatsRandomOnSkewedTraces) {
  workload::TraceConfig config;
  config.functions = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  config.length = 4000;
  unsigned lru_total = 0;
  unsigned random_total = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    config.seed = seed;
    const auto seq =
        workload::function_sequence(workload::make_zipf(config, 1.2));
    lru_total += simulate_misses(PolicyKind::kLru, seq, 4);
    random_total += simulate_misses(PolicyKind::kRandom, seq, 4);
  }
  EXPECT_LT(lru_total, random_total);
}

TEST(PolicyDominance, RoundRobinIsLrusWorstCase) {
  // Cyclic access over capacity+1 functions: LRU misses everything; random
  // sometimes gets lucky.
  std::vector<FunctionId> seq;
  for (int i = 0; i < 500; ++i) seq.push_back(1 + (i % 5));
  const unsigned lru = simulate_misses(PolicyKind::kLru, seq, 4);
  EXPECT_EQ(lru, 500u);  // total thrash
  EXPECT_LT(simulate_misses(PolicyKind::kRandom, seq, 4), 500u);
}

TEST(PolicyFactory, KindsAndNames) {
  for (PolicyKind kind : {PolicyKind::kLru, PolicyKind::kFifo,
                          PolicyKind::kLfu, PolicyKind::kRandom,
                          PolicyKind::kBelady}) {
    const auto policy = make_policy(kind);
    EXPECT_EQ(policy->kind(), kind);
    EXPECT_EQ(policy->name(), to_string(kind));
  }
}

TEST(PolicyEdge, EmptyResidentSetThrows) {
  auto lru = make_policy(PolicyKind::kLru);
  FrameReplacementTable table;
  EXPECT_THROW(lru->choose_victim({}, table), Error);
}

}  // namespace
}  // namespace aad::mcu
