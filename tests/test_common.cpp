// Unit tests for src/common: bit utilities, byte serialization, CRC-32,
// deterministic PRNG and the error taxonomy.
#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/bytebuffer.h"
#include "common/crc32.h"
#include "common/error.h"
#include "common/prng.h"

namespace aad {
namespace {

// --- bitops -----------------------------------------------------------------

TEST(Bitops, GetAndWithBit) {
  EXPECT_TRUE(bits::get_bit(0b1010, 1));
  EXPECT_FALSE(bits::get_bit(0b1010, 0));
  EXPECT_EQ(bits::with_bit(0, 5, true), 32u);
  EXPECT_EQ(bits::with_bit(32, 5, false), 0u);
}

TEST(Bitops, LowMaskBoundaries) {
  EXPECT_EQ(bits::low_mask(0), 0u);
  EXPECT_EQ(bits::low_mask(1), 1u);
  EXPECT_EQ(bits::low_mask(32), 0xFFFFFFFFull);
  EXPECT_EQ(bits::low_mask(64), ~std::uint64_t{0});
}

TEST(Bitops, FieldExtractInsert) {
  const std::uint64_t word = 0xABCD1234u;
  EXPECT_EQ(bits::field(word, 8, 8), 0x12u);
  EXPECT_EQ(bits::with_field(word, 8, 8, 0xFF), 0xABCDFF34u);
}

TEST(Bitops, ReverseBits) {
  EXPECT_EQ(bits::reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(bits::reverse_bits(0b110, 3), 0b011u);
  // Involution property.
  for (std::uint64_t v = 0; v < 64; ++v)
    EXPECT_EQ(bits::reverse_bits(bits::reverse_bits(v, 6), 6), v);
}

TEST(Bitops, CeilDivAndRoundUp) {
  EXPECT_EQ(bits::ceil_div(0, 4), 0u);
  EXPECT_EQ(bits::ceil_div(1, 4), 1u);
  EXPECT_EQ(bits::ceil_div(4, 4), 1u);
  EXPECT_EQ(bits::ceil_div(5, 4), 2u);
  EXPECT_EQ(bits::round_up(5, 4), 8u);
  EXPECT_EQ(bits::round_up(8, 4), 8u);
}

TEST(Bitops, Pow2Helpers) {
  EXPECT_TRUE(bits::is_pow2(1));
  EXPECT_TRUE(bits::is_pow2(64));
  EXPECT_FALSE(bits::is_pow2(0));
  EXPECT_FALSE(bits::is_pow2(6));
  EXPECT_EQ(bits::log2_exact(256), 8u);
}

TEST(BitVector, SetGetCount) {
  bits::BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.count(), 0u);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_EQ(v.count(), 3u);
  EXPECT_TRUE(v.get(64));
  EXPECT_FALSE(v.get(63));
  v.set(64, false);
  EXPECT_EQ(v.count(), 2u);
}

TEST(BitVector, FillKeepsTailZero) {
  bits::BitVector v(70, /*fill=*/true);
  EXPECT_EQ(v.count(), 70u);  // bits beyond size never counted
}

TEST(BitVector, OutOfRangeThrows) {
  bits::BitVector v(8);
  EXPECT_THROW(v.get(8), Error);
  EXPECT_THROW(v.set(9, true), Error);
}

// --- byte buffer --------------------------------------------------------------

TEST(ByteBuffer, ScalarRoundtrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x04030201);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[3], 0x04);
}

TEST(ByteBuffer, FixedStringPadsAndTruncates) {
  ByteWriter w;
  w.fixed_string("abc", 8);
  w.fixed_string("longername", 4);
  ByteReader r(w.data());
  EXPECT_EQ(r.fixed_string(8), "abc");
  EXPECT_EQ(r.fixed_string(4), "long");
}

TEST(ByteBuffer, ReadPastEndThrowsCorruptData) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  r.u8();
  EXPECT_THROW(r.u32(), Error);
  try {
    ByteReader r2(w.data());
    r2.u64();
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptData);
  }
}

TEST(ByteBuffer, PatchU32) {
  ByteWriter w;
  w.u32(0);
  w.u8(0x55);
  w.patch_u32(0, 0xCAFEBABE);
  ByteReader r(w.data());
  EXPECT_EQ(r.u32(), 0xCAFEBABEu);
  EXPECT_EQ(r.u8(), 0x55);
}

TEST(ByteBuffer, SkipAndRemaining) {
  Bytes data(10, 0x11);
  ByteReader r(data);
  r.skip(4);
  EXPECT_EQ(r.remaining(), 6u);
  EXPECT_THROW(r.skip(7), Error);
}

// --- CRC-32 -------------------------------------------------------------------

TEST(Crc32Test, StandardCheckValue) {
  const std::string s = "123456789";
  EXPECT_EQ(Crc32::compute(ByteSpan(
                reinterpret_cast<const Byte*>(s.data()), s.size())),
            0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) {
  EXPECT_EQ(Crc32::compute(ByteSpan{}), 0x00000000u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Bytes data(1000);
  Prng rng(7);
  for (auto& b : data) b = static_cast<Byte>(rng.next());
  Crc32 inc;
  inc.update(ByteSpan(data.data(), 100));
  inc.update(ByteSpan(data.data() + 100, 900));
  EXPECT_EQ(inc.value(), Crc32::compute(data));
}

TEST(Crc32Test, ResetRestoresSeed) {
  Crc32 crc;
  crc.update(Byte{0x42});
  crc.reset();
  EXPECT_EQ(crc.value(), Crc32::compute(ByteSpan{}));
}

// --- PRNG ---------------------------------------------------------------------

TEST(PrngTest, DeterministicForSeed) {
  Prng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool differs = false;
  Prng a2(42);
  for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(PrngTest, NextBelowRespectsBound) {
  Prng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(PrngTest, DoubleInUnitInterval) {
  Prng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, BoolProbabilityRoughlyHolds) {
  Prng rng(5);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.next_bool(0.25);
  EXPECT_NEAR(trues / 10000.0, 0.25, 0.03);
}

// --- errors ---------------------------------------------------------------------

TEST(ErrorTest, CarriesCodeAndMessage) {
  try {
    AAD_FAIL(ErrorCode::kCapacityExceeded, "rom full");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCapacityExceeded);
    EXPECT_NE(std::string(e.what()).find("rom full"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("CapacityExceeded"),
              std::string::npos);
  }
}

TEST(ErrorTest, RequireAndCheckMacros) {
  EXPECT_NO_THROW(AAD_REQUIRE(true, "fine"));
  EXPECT_THROW(AAD_REQUIRE(false, "nope"), Error);
  EXPECT_THROW(AAD_CHECK(false, "invariant"), Error);
}

TEST(ErrorTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c)
    EXPECT_NE(to_string(static_cast<ErrorCode>(c)), "Unknown");
}

}  // namespace
}  // namespace aad
