// Unit tests for src/sim: simulated time, frequencies, the discrete-event
// scheduler's ordering guarantees, and activity tracing.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/error.h"
#include "sim/scheduler.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace aad::sim {
namespace {

TEST(SimTimeTest, UnitConversions) {
  EXPECT_EQ(SimTime::ns(1).picoseconds(), 1000);
  EXPECT_EQ(SimTime::us(1).picoseconds(), 1'000'000);
  EXPECT_EQ(SimTime::ms(1).picoseconds(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(SimTime::us(2.5).microseconds(), 2.5);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::ns(10);
  const SimTime b = SimTime::ns(3);
  EXPECT_EQ((a + b).picoseconds(), 13000);
  EXPECT_EQ((a - b).picoseconds(), 7000);
  EXPECT_EQ((b * 4).picoseconds(), 12000);
  EXPECT_LT(b, a);
  EXPECT_EQ(SimTime::zero().picoseconds(), 0);
}

TEST(FrequencyTest, PeriodAndCycles) {
  const Frequency f = Frequency::mhz(100);
  EXPECT_EQ(f.period().picoseconds(), 10'000);  // 10 ns
  EXPECT_EQ(f.cycles(5).picoseconds(), 50'000);
  EXPECT_EQ(Frequency::mhz(33).cycles(33).nanoseconds(),
            33.0 * Frequency::mhz(33).period().nanoseconds());
}

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::ns(30), [&] { order.push_back(3); });
  s.schedule_at(SimTime::ns(10), [&] { order.push_back(1); });
  s.schedule_at(SimTime::ns(20), [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::ns(30));
}

TEST(SchedulerTest, FifoAmongEqualTimestamps) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i)
    s.schedule_at(SimTime::ns(5), [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(SimTime::ns(1), [&] {
    ++fired;
    s.schedule_after(SimTime::ns(1), [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), SimTime::ns(2));
}

TEST(SchedulerTest, CannotScheduleInThePast) {
  Scheduler s;
  s.schedule_at(SimTime::ns(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(SimTime::ns(5), [] {}), Error);
}

TEST(SchedulerTest, AdvanceRunsDueEventsAndMovesTime) {
  Scheduler s;
  bool ran = false;
  s.schedule_at(SimTime::ns(5), [&] { ran = true; });
  s.advance(SimTime::ns(10));
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), SimTime::ns(10));
  EXPECT_THROW(s.advance(SimTime::ns(-1)), Error);
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(SimTime::ns(5), [&] { ++fired; });
  s.schedule_at(SimTime::ns(15), [&] { ++fired; });
  EXPECT_EQ(s.run_until(SimTime::ns(10)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), SimTime::ns(10));
  EXPECT_EQ(s.pending(), 1u);
}

TEST(SchedulerTest, FifoStableAmongEqualTimestampsFromDifferentPosters) {
  // The staged pipeline posts events for many requests at the same instant
  // (e.g. simultaneous arrivals); service order must be posting order even
  // when the equal-timestamp events are interleaved with other times.
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::ns(10), [&] { order.push_back(100); });
  for (int i = 0; i < 4; ++i)
    s.schedule_at(SimTime::ns(20), [&order, i] { order.push_back(i); });
  s.schedule_at(SimTime::ns(15), [&] { order.push_back(101); });
  // Events scheduled *from within* an event at an already-populated
  // timestamp queue behind the earlier posters.
  s.schedule_at(SimTime::ns(10), [&] {
    s.schedule_at(SimTime::ns(20), [&] { order.push_back(4); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{100, 101, 0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, RunUntilAdvancesTimePastADrainedQueue) {
  // run_until is also the server's "idle until the deadline" primitive: a
  // queue that drains early must still leave now() at the deadline so later
  // submissions anchor correctly.
  Scheduler s;
  s.schedule_at(SimTime::ns(5), [] {});
  EXPECT_EQ(s.run_until(SimTime::ns(50)), 1u);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.now(), SimTime::ns(50));
  // And again with nothing queued at all.
  EXPECT_EQ(s.run_until(SimTime::ns(80)), 0u);
  EXPECT_EQ(s.now(), SimTime::ns(80));
}

TEST(SchedulerTest, ClearDuringARunningEventDropsTheRest) {
  // Device reset fires from inside an event handler; everything already
  // queued (same timestamp included) must vanish, and run() must stop.
  Scheduler s;
  int fired = 0;
  s.schedule_at(SimTime::ns(5), [&] {
    ++fired;
    s.clear();
  });
  s.schedule_at(SimTime::ns(5), [&] { FAIL() << "cleared, must not run"; });
  s.schedule_at(SimTime::ns(9), [&] { FAIL() << "cleared, must not run"; });
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.now(), SimTime::ns(5));
  // The scheduler stays usable after an in-flight clear.
  s.schedule_at(SimTime::ns(12), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, ClearDropsPending) {
  Scheduler s;
  s.schedule_at(SimTime::ns(5), [] { FAIL() << "should have been cleared"; });
  s.clear();
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.run(), 0u);
}

TEST(SchedulerCancelTest, CancelBeforeFireSkipsAndReleasesState) {
  // cancel() must both suppress the callback and destroy it immediately —
  // the fleet cancels watchdog closures holding request payloads, which
  // must not linger until the timestamp drains.
  Scheduler s;
  auto probe = std::make_shared<int>(7);
  std::weak_ptr<int> alive = probe;
  const EventId id = s.schedule_at(
      SimTime::ns(10), [probe] { FAIL() << "cancelled, must not run"; });
  probe.reset();
  EXPECT_FALSE(alive.expired());  // captured by the pending action
  EXPECT_TRUE(s.cancel(id));
  EXPECT_TRUE(alive.expired());  // action destroyed at cancel time
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.run(), 0u);
  EXPECT_EQ(s.now(), SimTime::zero());  // stale key must not advance time
}

TEST(SchedulerCancelTest, CancelIsSingleShot) {
  Scheduler s;
  int fired = 0;
  const EventId a = s.schedule_at(SimTime::ns(5), [&] { ++fired; });
  const EventId b = s.schedule_at(SimTime::ns(6), [] {});
  EXPECT_TRUE(s.cancel(b));
  EXPECT_FALSE(s.cancel(b));  // double-cancel is a no-op
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(s.cancel(a));  // already fired
}

TEST(SchedulerCancelTest, CancelledPeerAtSameTimestampIsInvisible) {
  // Events sharing a timestamp with a cancelled one must still run in
  // posting order, and the cancelled slot must not count as executed.
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::ns(5), [&] { order.push_back(0); });
  const EventId victim =
      s.schedule_at(SimTime::ns(5), [&] { order.push_back(1); });
  s.schedule_at(SimTime::ns(5), [&] { order.push_back(2); });
  EXPECT_EQ(s.pending(), 3u);
  EXPECT_TRUE(s.cancel(victim));
  EXPECT_EQ(s.pending(), 2u);
  EXPECT_EQ(s.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
  EXPECT_EQ(s.now(), SimTime::ns(5));
}

TEST(SchedulerCancelTest, CancelFromInsideAnEarlierEvent) {
  // The watchdog pattern: a completion event at t cancels the timeout
  // queued for t' > t before the loop ever reaches it.
  Scheduler s;
  int fired = 0;
  const EventId timeout = s.schedule_at(
      SimTime::ns(20), [] { FAIL() << "completion should have cancelled"; });
  s.schedule_at(SimTime::ns(10), [&] {
    ++fired;
    EXPECT_TRUE(s.cancel(timeout));
  });
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), SimTime::ns(10));  // cancelled tail never advances now
  EXPECT_TRUE(s.idle());
}

TEST(SchedulerCancelTest, TombstonesAreCompactedAwayBeforeTheirTimestamp) {
  // The watchdog churn pattern: one timer armed per request, almost every
  // one disarmed by its completion long before the timeout timestamp.
  // Lazy cancellation must not let the dead keys pile up in the heap for
  // the whole window — the heap stays O(live events), not O(cancels).
  Scheduler s;
  constexpr int kRequests = 20000;
  std::vector<EventId> timers;
  timers.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i)
    timers.push_back(s.schedule_at(SimTime::ms(100) + SimTime::ns(i), [] {}));
  int fired = 0;
  const EventId survivor = s.schedule_at(SimTime::ms(200), [&] { ++fired; });
  for (const EventId id : timers) EXPECT_TRUE(s.cancel(id));
  EXPECT_EQ(s.pending(), 1u);
  // Far below the 20001 keys pushed; generous headroom over the
  // pending+floor bound so the exact trigger point can evolve.
  EXPECT_LE(s.heap_size(), 256u);
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), SimTime::ms(200));
  EXPECT_FALSE(s.cancel(survivor));  // already fired
}

TEST(SchedulerCancelTest, CompactionKeepsPopOrderAndLiveEvents) {
  // Interleave live and cancelled events across shuffled timestamps, force
  // compaction, then verify the drain is byte-for-byte the classic order:
  // time-sorted, FIFO among equal timestamps, no cancelled slot firing.
  Scheduler s;
  std::vector<int> order;
  std::vector<EventId> victims;
  for (int i = 0; i < 300; ++i) {
    const SimTime when = SimTime::ns(10 + (i * 7919) % 97);
    if (i % 3 == 0) {
      s.schedule_at(when, [&order, i] { order.push_back(i); });
    } else {
      victims.push_back(
          s.schedule_at(when, [] { FAIL() << "cancelled, must not run"; }));
    }
  }
  for (const EventId id : victims) EXPECT_TRUE(s.cancel(id));
  EXPECT_LE(s.heap_size(), s.pending() + 64u);
  EXPECT_EQ(s.run(), 100u);
  EXPECT_EQ(order.size(), 100u);
  // Reconstruct the expected order: stable sort of the live posts by time.
  std::vector<int> expected;
  for (int i = 0; i < 300; i += 3) expected.push_back(i);
  std::stable_sort(expected.begin(), expected.end(), [](int a, int b) {
    return (10 + (a * 7919) % 97) < (10 + (b * 7919) % 97);
  });
  EXPECT_EQ(order, expected);
}

TEST(SchedulerTest, NextTimeReportsEarliestLiveEvent) {
  Scheduler s;
  EXPECT_FALSE(s.next_time().has_value());
  const EventId early = s.schedule_at(SimTime::ns(5), [] {});
  s.schedule_at(SimTime::ns(9), [] {});
  EXPECT_EQ(s.next_time(), SimTime::ns(5));
  // Cancelling the front must expose the next LIVE timestamp, not the
  // tombstone's.
  EXPECT_TRUE(s.cancel(early));
  EXPECT_EQ(s.next_time(), SimTime::ns(9));
  s.run();
  EXPECT_FALSE(s.next_time().has_value());
}

TEST(SchedulerTest, RunBeforeStopsShortAndLeavesTimeAtLastEvent) {
  // run_before is the parallel engine's bounded-round primitive: events
  // strictly below the horizon run, the clock is NOT dragged forward to
  // the horizon (the shard must keep reporting real progress).
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::ns(5), [&] { order.push_back(5); });
  s.schedule_at(SimTime::ns(10), [&] { order.push_back(10); });
  s.schedule_at(SimTime::ns(15), [&] { order.push_back(15); });
  EXPECT_EQ(s.run_before(SimTime::ns(10)), 1u);  // 10 is NOT < 10
  EXPECT_EQ(s.now(), SimTime::ns(5));
  EXPECT_EQ(s.run_before(SimTime::ns(16)), 2u);
  EXPECT_EQ(order, (std::vector<int>{5, 10, 15}));
  EXPECT_EQ(s.now(), SimTime::ns(15));
  EXPECT_EQ(s.run_before(SimTime::ns(100)), 0u);  // drained: time holds
  EXPECT_EQ(s.now(), SimTime::ns(15));
}

TEST(TraceTest, StageTotalsAccumulate) {
  Trace t;
  t.record(Stage::kRom, "a", SimTime::ns(0), SimTime::ns(10));
  t.record(Stage::kRom, "b", SimTime::ns(10), SimTime::ns(30));
  t.record(Stage::kExecute, "c", SimTime::ns(5), SimTime::ns(6));
  const auto totals = t.stage_totals();
  EXPECT_EQ(totals.at(Stage::kRom), SimTime::ns(30));
  EXPECT_EQ(totals.at(Stage::kExecute), SimTime::ns(1));
  EXPECT_EQ(t.spans().size(), 3u);
}

TEST(TraceTest, DisabledTraceRecordsNothing) {
  Trace t;
  t.set_enabled(false);
  t.record(Stage::kRom, "a", SimTime::ns(0), SimTime::ns(10));
  EXPECT_TRUE(t.spans().empty());
}

TEST(TraceTest, SummaryMentionsStages) {
  Trace t;
  t.record(Stage::kConfigure, "f", SimTime::ns(0), SimTime::ns(4));
  EXPECT_NE(t.summary().find("configure"), std::string::npos);
}

TEST(SimTimeTest, ToStringPicksUnits) {
  EXPECT_NE(to_string(SimTime::ns(5)).find("ns"), std::string::npos);
  EXPECT_NE(to_string(SimTime::us(5)).find("us"), std::string::npos);
  EXPECT_NE(to_string(SimTime::ms(5)).find("ms"), std::string::npos);
}

}  // namespace
}  // namespace aad::sim
