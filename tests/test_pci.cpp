// Tests for the PCI transaction-level model: padding to bus words, burst
// amortization, programmed-IO vs DMA costs and statistics accounting.
#include <gtest/gtest.h>

#include "pci/pci.h"

namespace aad::pci {
namespace {

TEST(PciPadding, RoundsToBusWords) {
  PciBus bus;
  EXPECT_EQ(bus.padded_size(0), 0u);
  EXPECT_EQ(bus.padded_size(1), 4u);
  EXPECT_EQ(bus.padded_size(4), 4u);
  EXPECT_EQ(bus.padded_size(5), 8u);
  EXPECT_EQ(bus.padded_size(1023), 1024u);
}

TEST(PciTimingModel, DmaScalesLinearlyAtLargeSizes) {
  PciBus bus;
  const auto t64k = bus.dma_time(64 * 1024);
  const auto t128k = bus.dma_time(128 * 1024);
  const double ratio = t128k.nanoseconds() / t64k.nanoseconds();
  EXPECT_NEAR(ratio, 2.0, 0.05);
}

TEST(PciTimingModel, PeakThroughputApproachesBusLimit) {
  // 32 bits @ 33 MHz = 133 MB/s theoretical; bursts should reach >80%.
  PciBus bus;
  const std::size_t bytes = 1 << 20;
  const double seconds = bus.dma_time(bytes).seconds();
  const double mbps = static_cast<double>(bytes) / seconds / 1e6;
  EXPECT_GT(mbps, 0.80 * 133.0);
  EXPECT_LT(mbps, 133.0);
}

TEST(PciTimingModel, ProgrammedIoMuchSlowerThanDma) {
  PciBus bus;
  const std::size_t bytes = 4096;
  EXPECT_GT(bus.programmed_io_time(bytes).nanoseconds(),
            3.0 * bus.dma_time(bytes).nanoseconds());
}

TEST(PciTimingModel, SmallTransfersDominatedByOverhead) {
  PciBus bus;
  const auto t4 = bus.dma_time(4);
  const auto t64 = bus.dma_time(64);
  // 16x the payload must cost far less than 16x the time.
  EXPECT_LT(t64.nanoseconds(), 4.0 * t4.nanoseconds());
}

TEST(PciStatsTest, AccountingAccumulates) {
  PciBus bus;
  bus.register_write();
  bus.register_read();
  bus.dma_to_device(100);
  bus.dma_from_device(10);
  const PciStats& s = bus.stats();
  EXPECT_EQ(s.register_writes, 1u);
  EXPECT_EQ(s.register_reads, 1u);
  EXPECT_EQ(s.dma_transfers, 2u);
  EXPECT_EQ(s.bytes_to_device, 100u);
  EXPECT_EQ(s.bytes_from_device, 12u);  // padded to bus words
  EXPECT_GT(s.bus_time, sim::SimTime::zero());
  bus.reset_stats();
  EXPECT_EQ(bus.stats().dma_transfers, 0u);
}

TEST(PciConfig, InvalidTimingRejected) {
  PciTiming bad;
  bad.bus_width_bits = 12;
  EXPECT_THROW(PciBus{bad}, Error);
  PciTiming zero_burst;
  zero_burst.max_burst_words = 0;
  EXPECT_THROW(PciBus{zero_burst}, Error);
}

TEST(PciArbitration, ConcurrentTransfersSerializeWithQueueDelay) {
  PciBus bus;
  // First transfer starts immediately; an overlapping request queues until
  // the bus frees, and the wait lands in stats().queue_delay.
  const auto a = bus.acquire(sim::SimTime::us(1), sim::SimTime::us(10));
  EXPECT_EQ(a.start, sim::SimTime::us(1));
  EXPECT_EQ(a.end, sim::SimTime::us(11));
  EXPECT_EQ(a.queue_delay, sim::SimTime::zero());

  const auto b = bus.acquire(sim::SimTime::us(4), sim::SimTime::us(2));
  EXPECT_EQ(b.start, sim::SimTime::us(11));
  EXPECT_EQ(b.end, sim::SimTime::us(13));
  EXPECT_EQ(b.queue_delay, sim::SimTime::us(7));
  EXPECT_EQ(bus.busy_until(), sim::SimTime::us(13));

  // A request after the bus went idle pays nothing.
  const auto c = bus.acquire(sim::SimTime::us(20), sim::SimTime::us(1));
  EXPECT_EQ(c.start, sim::SimTime::us(20));
  EXPECT_EQ(c.queue_delay, sim::SimTime::zero());

  EXPECT_EQ(bus.stats().grants, 3u);
  EXPECT_EQ(bus.stats().contended_grants, 1u);
  EXPECT_EQ(bus.stats().queue_delay, sim::SimTime::us(7));

  bus.release_all();
  EXPECT_EQ(bus.busy_until(), sim::SimTime::zero());
  EXPECT_EQ(bus.stats().grants, 3u);  // stats survive the reset
}

TEST(PciConfig, WiderOrFasterBusIsFaster) {
  PciTiming pci64;
  pci64.bus_width_bits = 64;
  PciTiming pci66;
  pci66.clock = sim::Frequency::mhz(66);
  PciBus base, wide(pci64), fast(pci66);
  const std::size_t bytes = 64 * 1024;
  EXPECT_LT(wide.dma_time(bytes), base.dma_time(bytes));
  EXPECT_LT(fast.dma_time(bytes), base.dma_time(bytes));
}

}  // namespace
}  // namespace aad::pci
