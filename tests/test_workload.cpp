// Tests for the workload/trace generators.
#include <gtest/gtest.h>

#include <map>

#include "common/error.h"
#include "workload/multiclient.h"
#include "workload/trace.h"

namespace aad::workload {
namespace {

TraceConfig base_config() {
  TraceConfig config;
  config.functions = {10, 20, 30, 40, 50};
  config.length = 5000;
  config.seed = 7;
  return config;
}

std::map<FunctionId, std::size_t> histogram(const Trace& trace) {
  std::map<FunctionId, std::size_t> h;
  for (const auto& r : trace) ++h[r.function];
  return h;
}

TEST(WorkloadTest, UniformCoversBankEvenly) {
  const auto trace = make_uniform(base_config());
  ASSERT_EQ(trace.size(), 5000u);
  const auto h = histogram(trace);
  EXPECT_EQ(h.size(), 5u);
  for (const auto& [fn, count] : h)
    EXPECT_NEAR(static_cast<double>(count), 1000.0, 150.0);
}

TEST(WorkloadTest, DeterministicForSeed) {
  const auto a = make_uniform(base_config());
  const auto b = make_uniform(base_config());
  EXPECT_EQ(function_sequence(a), function_sequence(b));
  auto config = base_config();
  config.seed = 8;
  EXPECT_NE(function_sequence(make_uniform(config)), function_sequence(a));
}

TEST(WorkloadTest, ZipfIsSkewedTowardRankOne) {
  const auto trace = make_zipf(base_config(), 1.2);
  const auto h = histogram(trace);
  // Rank 1 (function 10) must dominate rank 5 (function 50) heavily.
  EXPECT_GT(h.at(10), h.at(50) * 3);
  // And ordering should be monotone overall.
  EXPECT_GT(h.at(10), h.at(30));
  EXPECT_GT(h.at(30), h.at(50));
}

TEST(WorkloadTest, HigherExponentMoreSkew) {
  const auto mild = histogram(make_zipf(base_config(), 0.5));
  const auto steep = histogram(make_zipf(base_config(), 2.0));
  const double mild_share =
      static_cast<double>(mild.at(10)) / 5000.0;
  const double steep_share =
      static_cast<double>(steep.at(10)) / 5000.0;
  EXPECT_GT(steep_share, mild_share + 0.15);
}

TEST(WorkloadTest, RoundRobinCycles) {
  auto config = base_config();
  config.length = 12;
  const auto trace = make_round_robin(config);
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(trace[i].function, config.functions[i % 5]);
}

TEST(WorkloadTest, PhasedStaysInWorkingSet) {
  auto config = base_config();
  config.length = 400;
  const auto trace = make_phased(config, /*working_set=*/2,
                                 /*phase_length=*/100);
  // Within the first phase only functions[0..1] appear.
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(trace[i].function == 10 || trace[i].function == 20)
        << "at " << i;
  }
  // A later phase has shifted.
  bool saw_shifted = false;
  for (std::size_t i = 300; i < 400; ++i)
    if (trace[i].function != 10 && trace[i].function != 20) saw_shifted = true;
  EXPECT_TRUE(saw_shifted);
}

TEST(WorkloadTest, MarkovStickinessRepeats) {
  const auto sticky = make_markov(base_config(), 0.9);
  const auto loose = make_markov(base_config(), 0.0);
  auto repeats = [](const Trace& t) {
    std::size_t n = 0;
    for (std::size_t i = 1; i < t.size(); ++i)
      if (t[i].function == t[i - 1].function) ++n;
    return n;
  };
  EXPECT_GT(repeats(sticky), repeats(loose) * 2);
}

TEST(WorkloadTest, PayloadBlocksPropagate) {
  auto config = base_config();
  config.payload_blocks = 7;
  for (const auto& r : make_uniform(config)) EXPECT_EQ(r.payload_blocks, 7u);
}

TEST(WorkloadTest, InvalidConfigsRejected) {
  TraceConfig empty;
  empty.length = 10;
  EXPECT_THROW(make_uniform(empty), Error);
  auto config = base_config();
  EXPECT_THROW(make_zipf(config, 0.0), Error);
  EXPECT_THROW(make_phased(config, 0, 10), Error);
  EXPECT_THROW(make_phased(config, 9, 10), Error);
  EXPECT_THROW(make_markov(config, 1.0), Error);
}

TEST(WorkloadTest, FunctionSequenceMatchesTrace) {
  const auto trace = make_uniform(base_config());
  const auto seq = function_sequence(trace);
  ASSERT_EQ(seq.size(), trace.size());
  for (std::size_t i = 0; i < seq.size(); ++i)
    EXPECT_EQ(seq[i], trace[i].function);
}

MultiClientConfig multi_config() {
  MultiClientConfig config;
  config.clients = 4;
  config.requests_per_client = 50;
  config.functions = {1, 2, 3, 4, 5};
  config.seed = 7;
  return config;
}

TEST(MultiClientTest, ShapeAndDeterminism) {
  const auto a = make_multi_client(multi_config());
  const auto b = make_multi_client(multi_config());
  ASSERT_EQ(a.clients.size(), 4u);
  EXPECT_EQ(a.total_requests(), 200u);
  for (unsigned c = 0; c < 4; ++c) {
    EXPECT_EQ(a.clients[c].client, c);
    ASSERT_EQ(a.clients[c].requests.size(), 50u);
    for (std::size_t i = 0; i < 50; ++i) {
      EXPECT_EQ(a.clients[c].requests[i].function,
                b.clients[c].requests[i].function);
      EXPECT_EQ(a.clients[c].requests[i].offset,
                b.clients[c].requests[i].offset);
    }
  }
}

TEST(MultiClientTest, ClientsDrawIndependentSequences) {
  const auto trace = make_multi_client(multi_config());
  const auto& c0 = trace.clients[0].requests;
  const auto& c1 = trace.clients[1].requests;
  std::size_t same = 0;
  for (std::size_t i = 0; i < c0.size(); ++i)
    if (c0[i].function == c1[i].function) ++same;
  EXPECT_LT(same, c0.size());  // not the same stream replicated
}

TEST(MultiClientTest, OpenLoopOffsetsAreNonDecreasingArrivals) {
  auto config = multi_config();
  config.mode = ArrivalMode::kOpenLoop;
  config.mean_interarrival = sim::SimTime::us(100);
  const auto trace = make_multi_client(config);
  double sum_us = 0.0;
  std::size_t gaps = 0;
  for (const auto& ct : trace.clients) {
    for (std::size_t i = 1; i < ct.requests.size(); ++i) {
      EXPECT_GE(ct.requests[i].offset, ct.requests[i - 1].offset);
      sum_us += (ct.requests[i].offset - ct.requests[i - 1].offset)
                    .microseconds();
      ++gaps;
    }
  }
  // Exponential with mean 100us: the empirical mean lands near it.
  EXPECT_NEAR(sum_us / static_cast<double>(gaps), 100.0, 30.0);
}

TEST(MultiClientTest, ClosedLoopZeroThinkTimeIsSaturation) {
  auto config = multi_config();
  config.mode = ArrivalMode::kClosedLoop;
  config.mean_think_time = sim::SimTime::zero();
  const auto trace = make_multi_client(config);
  for (const auto& ct : trace.clients)
    for (const auto& r : ct.requests)
      EXPECT_EQ(r.offset, sim::SimTime::zero());
}

TEST(MultiClientTest, SharedZipfSkewConcentratesPopularity) {
  auto config = multi_config();
  config.zipf_s = 1.5;
  const auto trace = make_multi_client(config);
  std::size_t rank1 = 0, total = 0;
  for (const auto& ct : trace.clients)
    for (const auto& r : ct.requests) {
      if (r.function == config.functions.front()) ++rank1;
      ++total;
    }
  // Rank 1 of a 5-function Zipf(1.5) carries ~45% of the mass; uniform
  // would give 20%.
  EXPECT_GT(static_cast<double>(rank1) / static_cast<double>(total), 0.3);
}

TEST(MultiClientTest, RejectsEmptyBankAndZeroClients) {
  auto config = multi_config();
  config.functions.clear();
  EXPECT_THROW(make_multi_client(config), Error);
  auto config2 = multi_config();
  config2.clients = 0;
  EXPECT_THROW(make_multi_client(config2), Error);
  auto config3 = multi_config();
  config3.requests_per_client = 0;
  EXPECT_THROW(make_multi_client(config3), Error);
}

// --- incremental-variant traces -------------------------------------------------

IncrementalConfig incremental_config() {
  IncrementalConfig ic;
  ic.clients = 2;
  ic.requests_per_client = 40;
  ic.groups = {{10, 11, 12}, {20, 21}};
  ic.seed = 5;
  return ic;
}

TEST(IncrementalTest, WalksAssignedChainInVersionOrder) {
  const auto trace = make_incremental(incremental_config());
  ASSERT_EQ(trace.clients.size(), 2u);
  EXPECT_EQ(trace.mode, ArrivalMode::kOpenLoop);

  const std::vector<std::vector<FunctionId>> groups = {{10, 11, 12},
                                                       {20, 21}};
  for (unsigned c = 0; c < 2; ++c) {
    const auto& chain = groups[c];  // round-robin assignment
    const auto& requests = trace.clients[c].requests;
    ASSERT_EQ(requests.size(), 40u);
    EXPECT_EQ(requests[0].function, chain[0]);  // everyone starts at v0
    std::size_t version = 0;
    sim::SimTime last;
    for (const auto& r : requests) {
      // A request either stays on the current version or advances one
      // step (wrapping); it never jumps or leaves the chain.
      const auto it = std::find(chain.begin(), chain.end(), r.function);
      ASSERT_NE(it, chain.end());
      const auto idx =
          static_cast<std::size_t>(std::distance(chain.begin(), it));
      EXPECT_TRUE(idx == version || idx == (version + 1) % chain.size());
      version = idx;
      EXPECT_GE(r.offset, last);  // open loop: non-decreasing arrivals
      last = r.offset;
    }
  }
}

TEST(IncrementalTest, AdvanceProbabilityBounds) {
  auto ic = incremental_config();
  ic.advance = 0.0;  // nobody ever leaves version 0
  for (const auto& client : make_incremental(ic).clients)
    for (const auto& r : client.requests)
      EXPECT_TRUE(r.function == 10 || r.function == 20);

  ic.advance = 1.0;  // every request advances: versions cycle in order
  const auto trace = make_incremental(ic);
  const auto& requests = trace.clients[0].requests;
  for (std::size_t i = 0; i < requests.size(); ++i)
    EXPECT_EQ(requests[i].function, 10 + (i % 3));
}

TEST(IncrementalTest, DeterministicForSeed) {
  const auto a = make_incremental(incremental_config());
  const auto b = make_incremental(incremental_config());
  for (unsigned c = 0; c < 2; ++c) {
    ASSERT_EQ(a.clients[c].requests.size(), b.clients[c].requests.size());
    for (std::size_t i = 0; i < a.clients[c].requests.size(); ++i) {
      EXPECT_EQ(a.clients[c].requests[i].function,
                b.clients[c].requests[i].function);
      EXPECT_EQ(a.clients[c].requests[i].offset,
                b.clients[c].requests[i].offset);
    }
  }
}

TEST(IncrementalTest, DifferentSeedsDiverge) {
  // Determinism must come from the seed, not from a degenerate generator:
  // reseeding has to move at least the arrival process.
  const auto a = make_incremental(incremental_config());
  auto ic = incremental_config();
  ic.seed += 1;
  const auto b = make_incremental(ic);
  bool differs = false;
  for (unsigned c = 0; c < 2 && !differs; ++c)
    for (std::size_t i = 0; i < a.clients[c].requests.size(); ++i)
      if (a.clients[c].requests[i].function != b.clients[c].requests[i].function ||
          a.clients[c].requests[i].offset != b.clients[c].requests[i].offset) {
        differs = true;
        break;
      }
  EXPECT_TRUE(differs);
}

BurstyConfig bursty_config() {
  BurstyConfig bc;
  bc.clients = 4;
  bc.bursts = 8;
  bc.burst_size = 8;
  bc.functions = {10, 20, 30, 40, 50};
  bc.seed = 99;
  return bc;
}

TEST(BurstyTest, ShapeAndDeterminism) {
  const auto a = make_bursty(bursty_config());
  EXPECT_EQ(a.mode, ArrivalMode::kOpenLoop);
  ASSERT_EQ(a.clients.size(), 4u);
  for (const auto& client : a.clients)
    EXPECT_EQ(client.requests.size(), 64u);  // bursts x burst_size

  const auto b = make_bursty(bursty_config());
  for (unsigned c = 0; c < 4; ++c)
    for (std::size_t i = 0; i < a.clients[c].requests.size(); ++i) {
      EXPECT_EQ(a.clients[c].requests[i].function,
                b.clients[c].requests[i].function);
      EXPECT_EQ(a.clients[c].requests[i].offset,
                b.clients[c].requests[i].offset);
    }
}

TEST(BurstyTest, IntraBurstGapsAreBoundedAndInterBurstGapsDominate) {
  // The generator's whole point: requests inside a burst arrive nearly
  // back-to-back while bursts are separated by much longer idle gaps.
  // Check the two empirical gap means against their configured scales.
  const auto config = bursty_config();
  const auto trace = make_bursty(config);
  double intra_sum = 0, inter_sum = 0;
  std::size_t intra_n = 0, inter_n = 0;
  for (const auto& client : trace.clients) {
    for (std::size_t i = 1; i < client.requests.size(); ++i) {
      const double gap = (client.requests[i].offset -
                          client.requests[i - 1].offset)
                             .microseconds();
      ASSERT_GE(gap, 0.0);  // open-loop offsets are non-decreasing
      if (i % config.burst_size == 0) {
        inter_sum += gap;
        ++inter_n;
      } else {
        intra_sum += gap;
        ++intra_n;
      }
    }
  }
  ASSERT_GT(intra_n, 0u);
  ASSERT_GT(inter_n, 0u);
  const double intra_mean = intra_sum / static_cast<double>(intra_n);
  const double inter_mean = inter_sum / static_cast<double>(inter_n);
  // Exponential(5us) and Exponential(400us) sample means, hundreds /
  // dozens of draws: generous 3x bounds keep this seed-stable while still
  // catching a swapped or ignored scale.
  EXPECT_LT(intra_mean, 3.0 * config.mean_intra_gap.microseconds());
  EXPECT_GT(inter_mean, config.mean_inter_gap.microseconds() / 3.0);
  EXPECT_GT(inter_mean, 10.0 * intra_mean);
}

TEST(IncrementalTest, RejectsBadConfigs) {
  auto ic = incremental_config();
  ic.groups.clear();
  EXPECT_THROW(make_incremental(ic), Error);
  auto ic2 = incremental_config();
  ic2.groups[1].clear();  // every chain needs at least one version
  EXPECT_THROW(make_incremental(ic2), Error);
  auto ic3 = incremental_config();
  ic3.advance = 1.5;
  EXPECT_THROW(make_incremental(ic3), Error);
}

}  // namespace
}  // namespace aad::workload
