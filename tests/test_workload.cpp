// Tests for the workload/trace generators.
#include <gtest/gtest.h>

#include <map>

#include "common/error.h"
#include "workload/trace.h"

namespace aad::workload {
namespace {

TraceConfig base_config() {
  TraceConfig config;
  config.functions = {10, 20, 30, 40, 50};
  config.length = 5000;
  config.seed = 7;
  return config;
}

std::map<FunctionId, std::size_t> histogram(const Trace& trace) {
  std::map<FunctionId, std::size_t> h;
  for (const auto& r : trace) ++h[r.function];
  return h;
}

TEST(WorkloadTest, UniformCoversBankEvenly) {
  const auto trace = make_uniform(base_config());
  ASSERT_EQ(trace.size(), 5000u);
  const auto h = histogram(trace);
  EXPECT_EQ(h.size(), 5u);
  for (const auto& [fn, count] : h)
    EXPECT_NEAR(static_cast<double>(count), 1000.0, 150.0);
}

TEST(WorkloadTest, DeterministicForSeed) {
  const auto a = make_uniform(base_config());
  const auto b = make_uniform(base_config());
  EXPECT_EQ(function_sequence(a), function_sequence(b));
  auto config = base_config();
  config.seed = 8;
  EXPECT_NE(function_sequence(make_uniform(config)), function_sequence(a));
}

TEST(WorkloadTest, ZipfIsSkewedTowardRankOne) {
  const auto trace = make_zipf(base_config(), 1.2);
  const auto h = histogram(trace);
  // Rank 1 (function 10) must dominate rank 5 (function 50) heavily.
  EXPECT_GT(h.at(10), h.at(50) * 3);
  // And ordering should be monotone overall.
  EXPECT_GT(h.at(10), h.at(30));
  EXPECT_GT(h.at(30), h.at(50));
}

TEST(WorkloadTest, HigherExponentMoreSkew) {
  const auto mild = histogram(make_zipf(base_config(), 0.5));
  const auto steep = histogram(make_zipf(base_config(), 2.0));
  const double mild_share =
      static_cast<double>(mild.at(10)) / 5000.0;
  const double steep_share =
      static_cast<double>(steep.at(10)) / 5000.0;
  EXPECT_GT(steep_share, mild_share + 0.15);
}

TEST(WorkloadTest, RoundRobinCycles) {
  auto config = base_config();
  config.length = 12;
  const auto trace = make_round_robin(config);
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(trace[i].function, config.functions[i % 5]);
}

TEST(WorkloadTest, PhasedStaysInWorkingSet) {
  auto config = base_config();
  config.length = 400;
  const auto trace = make_phased(config, /*working_set=*/2,
                                 /*phase_length=*/100);
  // Within the first phase only functions[0..1] appear.
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(trace[i].function == 10 || trace[i].function == 20)
        << "at " << i;
  }
  // A later phase has shifted.
  bool saw_shifted = false;
  for (std::size_t i = 300; i < 400; ++i)
    if (trace[i].function != 10 && trace[i].function != 20) saw_shifted = true;
  EXPECT_TRUE(saw_shifted);
}

TEST(WorkloadTest, MarkovStickinessRepeats) {
  const auto sticky = make_markov(base_config(), 0.9);
  const auto loose = make_markov(base_config(), 0.0);
  auto repeats = [](const Trace& t) {
    std::size_t n = 0;
    for (std::size_t i = 1; i < t.size(); ++i)
      if (t[i].function == t[i - 1].function) ++n;
    return n;
  };
  EXPECT_GT(repeats(sticky), repeats(loose) * 2);
}

TEST(WorkloadTest, PayloadBlocksPropagate) {
  auto config = base_config();
  config.payload_blocks = 7;
  for (const auto& r : make_uniform(config)) EXPECT_EQ(r.payload_blocks, 7u);
}

TEST(WorkloadTest, InvalidConfigsRejected) {
  TraceConfig empty;
  empty.length = 10;
  EXPECT_THROW(make_uniform(empty), Error);
  auto config = base_config();
  EXPECT_THROW(make_zipf(config, 0.0), Error);
  EXPECT_THROW(make_phased(config, 0, 10), Error);
  EXPECT_THROW(make_phased(config, 9, 10), Error);
  EXPECT_THROW(make_markov(config, 1.0), Error);
}

TEST(WorkloadTest, FunctionSequenceMatchesTrace) {
  const auto trace = make_uniform(base_config());
  const auto seq = function_sequence(trace);
  ASSERT_EQ(seq.size(), trace.size());
  for (std::size_t i = 0; i < seq.size(); ++i)
    EXPECT_EQ(seq[i], trace[i].function);
}

}  // namespace
}  // namespace aad::workload
