// End-to-end tests of the public AgileCoprocessor API: Figure 1 assembled —
// PCI download, on-demand partial reconfiguration, execution, collection —
// checked bit-exact against the host software baseline for every kernel.
#include <gtest/gtest.h>

#include "core/coprocessor.h"

namespace aad::core {
namespace {

using algorithms::KernelId;

TEST(CoprocessorEndToEnd, EveryKernelMatchesHostBaseline) {
  AgileCoprocessor cp;
  cp.download_all();
  for (const auto& spec : algorithms::catalog()) {
    const Bytes input = spec.make_input(2, 1234);
    const auto hw = cp.invoke(spec.id, input);
    const auto sw = cp.run_on_host(spec.id, input);
    EXPECT_EQ(hw.output, sw.output) << spec.name;
    EXPECT_GT(hw.latency, sim::SimTime::zero()) << spec.name;
  }
}

TEST(CoprocessorEndToEnd, SecondCallIsConfigHit) {
  AgileCoprocessor cp;
  cp.download(KernelId::kSha256);
  const auto& spec = algorithms::spec(KernelId::kSha256);
  const Bytes input = spec.make_input(4, 5);
  const auto cold = cp.invoke(KernelId::kSha256, input);
  const auto warm = cp.invoke(KernelId::kSha256, input);
  EXPECT_FALSE(cold.device.load.hit);
  EXPECT_TRUE(warm.device.load.hit);
  EXPECT_LT(warm.latency, cold.latency);
  EXPECT_EQ(warm.output, cold.output);
}

TEST(CoprocessorEndToEnd, OnDemandSwappingUnderPressure) {
  AgileCoprocessor cp;
  cp.download(KernelId::kAes128);
  cp.download(KernelId::kFft);
  cp.download(KernelId::kMatMul);
  cp.download(KernelId::kSha256);

  // Cycle through all four (12+16+14+10 = 52 frames > 48): every round
  // trips at least one eviction, yet results stay correct.
  for (int round = 0; round < 3; ++round) {
    for (KernelId id : {KernelId::kAes128, KernelId::kFft, KernelId::kMatMul,
                        KernelId::kSha256}) {
      const auto& spec = algorithms::spec(id);
      const Bytes input = spec.make_input(1, static_cast<std::uint64_t>(round));
      const auto hw = cp.invoke(id, input);
      EXPECT_EQ(hw.output, spec.software(input)) << spec.name;
    }
  }
  const auto stats = cp.stats();
  EXPECT_GT(stats.device.evictions, 0u);
  EXPECT_GT(stats.device.config_misses, 4u);  // reloads happened
}

TEST(CoprocessorApi, PreloadMakesFirstInvokeAHit) {
  AgileCoprocessor cp;
  cp.download(KernelId::kXtea);
  const auto load = cp.preload(KernelId::kXtea);
  EXPECT_FALSE(load.hit);
  const auto& spec = algorithms::spec(KernelId::kXtea);
  const auto result = cp.invoke(KernelId::kXtea, spec.make_input(1, 9));
  EXPECT_TRUE(result.device.load.hit);
}

TEST(CoprocessorApi, EvictForcesReconfiguration) {
  AgileCoprocessor cp;
  cp.download(KernelId::kCrc32);
  const auto& spec = algorithms::spec(KernelId::kCrc32);
  cp.invoke(KernelId::kCrc32, spec.make_input(8, 1));
  cp.evict(KernelId::kCrc32);
  const auto again = cp.invoke(KernelId::kCrc32, spec.make_input(8, 1));
  EXPECT_FALSE(again.device.load.hit);
}

TEST(CoprocessorApi, StatsAndTimeAdvance) {
  AgileCoprocessor cp;
  cp.download(KernelId::kAdder32);
  const auto t0 = cp.now();
  cp.invoke(KernelId::kAdder32,
            algorithms::spec(KernelId::kAdder32).make_input(1, 1));
  EXPECT_GT(cp.now(), t0);
  const auto stats = cp.stats();
  EXPECT_EQ(stats.device.invocations, 1u);
  EXPECT_GT(stats.bus.dma_transfers, 0u);
  EXPECT_GT(stats.bus.bytes_to_device, 0u);
  EXPECT_EQ(stats.uptime, cp.now());
}

TEST(CoprocessorApi, TraceCapturesPipelineStages) {
  CoprocessorConfig config;
  config.trace_enabled = true;
  AgileCoprocessor cp(config);
  cp.download(KernelId::kParity32);
  cp.invoke(KernelId::kParity32,
            algorithms::spec(KernelId::kParity32).make_input(1, 1));
  const auto totals = cp.trace().stage_totals();
  EXPECT_TRUE(totals.contains(sim::Stage::kHostPci));
  EXPECT_TRUE(totals.contains(sim::Stage::kConfigure));
  EXPECT_TRUE(totals.contains(sim::Stage::kDecompress));
  EXPECT_TRUE(totals.contains(sim::Stage::kExecute));
}

TEST(CoprocessorApi, CodecChoiceAffectsRomFootprint) {
  AgileCoprocessor null_cp;
  AgileCoprocessor delta_cp;
  const auto raw =
      null_cp.download(KernelId::kAes128, compress::CodecId::kNull);
  const auto packed =
      delta_cp.download(KernelId::kAes128, compress::CodecId::kFrameDelta);
  EXPECT_LT(packed.compressed_size, raw.compressed_size);
}

TEST(CoprocessorApi, ColdInvokeCostsMoreThanWarmByReconfig) {
  AgileCoprocessor cp;
  cp.download(KernelId::kFft);
  const auto& spec = algorithms::spec(KernelId::kFft);
  const Bytes input = spec.make_input(8, 2);  // 256-point FFT
  const auto cold = cp.invoke(KernelId::kFft, input);
  const auto warm = cp.invoke(KernelId::kFft, input);
  const double gap_us =
      cold.latency.microseconds() - warm.latency.microseconds();
  const double reconfig_us =
      cold.device.load.reconfig_time.microseconds();
  EXPECT_NEAR(gap_us, reconfig_us, reconfig_us * 0.25 + 5.0);
}

TEST(CoprocessorApi, RunOnHostDoesNotTouchDevice) {
  AgileCoprocessor cp;
  cp.download(KernelId::kMd5);
  cp.run_on_host(KernelId::kMd5,
                 algorithms::spec(KernelId::kMd5).make_input(1, 1));
  EXPECT_EQ(cp.stats().device.invocations, 0u);
  EXPECT_EQ(cp.stats().bus.dma_transfers, 1u);  // only the download DMA
}

TEST(CoprocessorConfigTest, CustomGeometryWorks) {
  CoprocessorConfig config;
  config.fabric.geometry.frame_count = 24;
  config.fabric.geometry.clb_rows = 8;
  AgileCoprocessor cp(config);
  cp.download(KernelId::kParity32);
  const auto& spec = algorithms::spec(KernelId::kParity32);
  const Bytes input = spec.make_input(1, 3);
  EXPECT_EQ(cp.invoke(KernelId::kParity32, input).output,
            spec.software(input));
}

}  // namespace
}  // namespace aad::core
