// Tests for the compression codecs: parameterized roundtrips across codecs
// and data shapes, streaming window decompression, corruption handling, and
// the ratio ordering properties the experiments rely on.
#include <gtest/gtest.h>

#include <tuple>

#include "bitstream/bitstream.h"
#include "bitstream/synth.h"
#include "common/prng.h"
#include "compress/codec.h"
#include "netlist/generators.h"
#include "netlist/lutmap.h"

namespace aad::compress {
namespace {

constexpr std::size_t kFrameBytes = 1536;  // default geometry frame size

enum class Shape {
  kEmpty,
  kOneByte,
  kAllZero,
  kAllSame,
  kRandom,
  kSparse,
  kPeriodic,   // frame-periodic (what FrameDelta targets)
  kText,
  kBitstream,  // a real mapped-netlist configuration stream
};

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kEmpty: return "empty";
    case Shape::kOneByte: return "one";
    case Shape::kAllZero: return "zeros";
    case Shape::kAllSame: return "same";
    case Shape::kRandom: return "random";
    case Shape::kSparse: return "sparse";
    case Shape::kPeriodic: return "periodic";
    case Shape::kText: return "text";
    case Shape::kBitstream: return "bitstream";
  }
  return "?";
}

Bytes make_shape(Shape shape) {
  Prng rng(static_cast<std::uint64_t>(shape) + 1);
  switch (shape) {
    case Shape::kEmpty:
      return {};
    case Shape::kOneByte:
      return {0xA7};
    case Shape::kAllZero:
      return Bytes(8000, 0);
    case Shape::kAllSame:
      return Bytes(5000, 0x5A);
    case Shape::kRandom: {
      Bytes b(6000);
      for (auto& x : b) x = static_cast<Byte>(rng.next());
      return b;
    }
    case Shape::kSparse: {
      Bytes b(9000, 0);
      for (int i = 0; i < 300; ++i)
        b[rng.next_below(b.size())] = static_cast<Byte>(rng.next() | 1);
      return b;
    }
    case Shape::kPeriodic: {
      Bytes frame(kFrameBytes);
      for (auto& x : frame) x = static_cast<Byte>(rng.next());
      Bytes b;
      for (int f = 0; f < 6; ++f) {
        Bytes copy = frame;
        // a few per-frame differences
        for (int d = 0; d < 10; ++d)
          copy[rng.next_below(copy.size())] ^= 0x3;
        b.insert(b.end(), copy.begin(), copy.end());
      }
      return b;
    }
    case Shape::kText: {
      const std::string t =
          "the quick brown fox jumps over the lazy dog; "
          "the quick brown fox jumps over the lazy dog again and again. ";
      Bytes b;
      while (b.size() < 7000)
        b.insert(b.end(), t.begin(), t.end());
      return b;
    }
    case Shape::kBitstream: {
      const fabric::FrameGeometry geometry;
      const auto bs = bitstream::from_network(
          netlist::map_to_luts(netlist::make_crc32_datapath()), geometry);
      return bitstream::pack_frame_payloads(bs);
    }
  }
  return {};
}

class CodecRoundtrip
    : public ::testing::TestWithParam<std::tuple<CodecId, Shape>> {};

TEST_P(CodecRoundtrip, OneShotRoundtrip) {
  const auto [id, shape] = GetParam();
  const auto codec = make_codec(id, kFrameBytes);
  const Bytes raw = make_shape(shape);
  const Bytes compressed = codec->compress(raw);
  EXPECT_EQ(codec->decompress(compressed), raw);
}

TEST_P(CodecRoundtrip, StreamingWindowedRoundtrip) {
  const auto [id, shape] = GetParam();
  const auto codec = make_codec(id, kFrameBytes);
  const Bytes raw = make_shape(shape);
  const Bytes compressed = codec->compress(raw);

  // Pull in awkward window sizes (prime, tiny, frame-sized) to stress the
  // incremental paths.
  for (const std::size_t window :
       {std::size_t{1}, std::size_t{7}, std::size_t{193}, kFrameBytes}) {
    auto stream = codec->decompress_stream(compressed);
    ASSERT_EQ(stream->raw_size(), raw.size());
    Bytes got;
    Bytes buf(window);
    for (;;) {
      const std::size_t n = stream->read(buf);
      if (n == 0) break;
      got.insert(got.end(), buf.begin(),
                 buf.begin() + static_cast<std::ptrdiff_t>(n));
    }
    EXPECT_EQ(got, raw) << "window=" << window;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllShapes, CodecRoundtrip,
    ::testing::Combine(
        ::testing::Values(CodecId::kNull, CodecId::kRle, CodecId::kLzss,
                          CodecId::kHuffman, CodecId::kGolomb,
                          CodecId::kFrameDelta, CodecId::kDeltaGolomb),
        ::testing::Values(Shape::kEmpty, Shape::kOneByte, Shape::kAllZero,
                          Shape::kAllSame, Shape::kRandom, Shape::kSparse,
                          Shape::kPeriodic, Shape::kText, Shape::kBitstream)),
    [](const ::testing::TestParamInfo<std::tuple<CodecId, Shape>>& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) +
                         "_" + shape_name(std::get<1>(info.param));
      std::erase(name, '-');  // gtest param names must be alphanumeric
      return name;
    });

// --- ratio properties -----------------------------------------------------------

double ratio(CodecId id, const Bytes& raw) {
  const auto codec = make_codec(id, kFrameBytes);
  return static_cast<double>(codec->compress(raw).size()) /
         static_cast<double>(raw.size());
}

TEST(CodecRatios, RleCollapsesRuns) {
  EXPECT_LT(ratio(CodecId::kRle, make_shape(Shape::kAllZero)), 0.05);
  EXPECT_LT(ratio(CodecId::kRle, make_shape(Shape::kAllSame)), 0.05);
}

TEST(CodecRatios, GolombExcelsOnSparse) {
  const Bytes sparse = make_shape(Shape::kSparse);
  EXPECT_LT(ratio(CodecId::kGolomb, sparse), 0.2);
  EXPECT_LT(ratio(CodecId::kGolomb, sparse),
            ratio(CodecId::kHuffman, sparse) + 0.05);
}

TEST(CodecRatios, FrameDeltaWinsOnFramePeriodicData) {
  const Bytes periodic = make_shape(Shape::kPeriodic);
  EXPECT_LT(ratio(CodecId::kFrameDelta, periodic),
            ratio(CodecId::kRle, periodic));
  EXPECT_LT(ratio(CodecId::kFrameDelta, periodic), 0.5);
}

TEST(CodecRatios, DeltaGolombBeatsPlainGolombOnPeriodicData) {
  // The delta transform always helps the sparse coder on frame-periodic
  // content.  (It does NOT always beat delta+RLE: the Rice back end pays
  // k+1 bits of overhead per literal, so the dense first frame favours
  // RLE's 1-control-per-128-literals — see the next test for the regime
  // where the composition wins both parents.)
  const Bytes periodic = make_shape(Shape::kPeriodic);
  EXPECT_LT(ratio(CodecId::kDeltaGolomb, periodic),
            ratio(CodecId::kGolomb, periodic));
}

TEST(CodecRatios, DeltaGolombWinsBothParentsOnSparseDeltas) {
  // Sparse base frame + few per-frame diffs: delta runs far exceed RLE's
  // 130-byte repeat cap, so Rice-coded run lengths dominate.
  Prng rng(99);
  Bytes frame(kFrameBytes, 0);
  for (int i = 0; i < 20; ++i)
    frame[rng.next_below(frame.size())] = static_cast<Byte>(rng.next() | 1);
  Bytes data;
  for (int f = 0; f < 8; ++f) {
    Bytes copy = frame;
    for (int d = 0; d < 2; ++d)
      copy[rng.next_below(copy.size())] ^= 0x5;
    data.insert(data.end(), copy.begin(), copy.end());
  }
  EXPECT_LT(ratio(CodecId::kDeltaGolomb, data),
            ratio(CodecId::kFrameDelta, data));
  EXPECT_LT(ratio(CodecId::kDeltaGolomb, data),
            ratio(CodecId::kGolomb, data));
}

TEST(CodecRatios, LzssCompressesText) {
  EXPECT_LT(ratio(CodecId::kLzss, make_shape(Shape::kText)), 0.5);
}

TEST(CodecRatios, RealBitstreamCompresses) {
  const Bytes bs = make_shape(Shape::kBitstream);
  for (CodecId id : {CodecId::kRle, CodecId::kLzss, CodecId::kHuffman,
                     CodecId::kGolomb, CodecId::kFrameDelta}) {
    EXPECT_LT(ratio(id, bs), 0.9) << to_string(id);
  }
}

TEST(CodecRatios, NothingBeatsEntropyOnRandom) {
  const Bytes rnd = make_shape(Shape::kRandom);
  // No codec should blow up random data by much more than framing overhead.
  for (CodecId id : all_codec_ids())
    EXPECT_LT(ratio(id, rnd), 1.35) << to_string(id);
}

// --- corruption handling ---------------------------------------------------------

TEST(CodecCorruption, TruncatedStreamsThrow) {
  for (CodecId id : {CodecId::kRle, CodecId::kLzss, CodecId::kHuffman,
                     CodecId::kGolomb, CodecId::kFrameDelta,
                     CodecId::kDeltaGolomb}) {
    const auto codec = make_codec(id, kFrameBytes);
    const Bytes raw = make_shape(Shape::kText);
    Bytes compressed = codec->compress(raw);
    compressed.resize(compressed.size() / 2);
    EXPECT_THROW(codec->decompress(compressed), Error)
        << to_string(id);
  }
}

TEST(CodecCorruption, NullLengthMismatchThrows) {
  const auto codec = make_codec(CodecId::kNull);
  Bytes compressed = codec->compress(make_shape(Shape::kOneByte));
  compressed.push_back(0x00);  // excess payload
  EXPECT_THROW(codec->decompress(compressed), Error);
}

TEST(CodecFactory, FrameDeltaNeedsFrameBytes) {
  EXPECT_THROW(make_codec(CodecId::kFrameDelta, 0), Error);
  EXPECT_NO_THROW(make_codec(CodecId::kFrameDelta, 64));
}

TEST(CodecFactory, AllIdsConstructAndName) {
  for (CodecId id : all_codec_ids()) {
    const auto codec = make_codec(id, 64);
    EXPECT_EQ(codec->id(), id);
    EXPECT_FALSE(codec->name().empty());
    EXPECT_GT(decompress_cycles_per_byte(id), 0.0);
  }
}

TEST(CodecModel, EntropyCodersCostMoreThanCopies) {
  EXPECT_LT(decompress_cycles_per_byte(CodecId::kNull),
            decompress_cycles_per_byte(CodecId::kRle));
  EXPECT_LT(decompress_cycles_per_byte(CodecId::kRle),
            decompress_cycles_per_byte(CodecId::kHuffman));
}

// --- streaming edge cases -------------------------------------------------------

TEST(CodecStreaming, EmptyCompressedInputThrows) {
  // The 4-byte raw_size header is mandatory: a zero-length compressed
  // stream is corruption, not an empty payload.
  for (CodecId id : all_codec_ids()) {
    const auto codec = make_codec(id, kFrameBytes);
    EXPECT_THROW(codec->decompress(Bytes{}), Error) << to_string(id);
  }
}

TEST(CodecStreaming, RawSizeZeroStreamsZeroBytes) {
  for (CodecId id : all_codec_ids()) {
    const auto codec = make_codec(id, kFrameBytes);
    const Bytes compressed = codec->compress({});
    auto stream = codec->decompress_stream(compressed);
    EXPECT_EQ(stream->raw_size(), 0u) << to_string(id);
    Bytes buf(64);
    EXPECT_EQ(stream->read(buf), 0u) << to_string(id);
    EXPECT_EQ(stream->read(buf), 0u) << to_string(id);  // stays drained
  }
}

TEST(CodecStreaming, SingleFramePayloadDecodes) {
  // Exactly one frame: the frame-delta codecs have no previous frame to
  // reference, so the first window must decode standalone.
  Prng rng(97);
  Bytes raw(kFrameBytes);
  for (auto& b : raw) b = static_cast<Byte>(rng.next());
  for (CodecId id : all_codec_ids()) {
    const auto codec = make_codec(id, kFrameBytes);
    const Bytes compressed = codec->compress(raw);
    auto stream = codec->decompress_stream(compressed);
    ASSERT_EQ(stream->raw_size(), raw.size()) << to_string(id);
    Bytes buf(kFrameBytes);
    ASSERT_EQ(stream->read(buf), kFrameBytes) << to_string(id);
    EXPECT_EQ(buf, raw) << to_string(id);
    EXPECT_EQ(stream->read(buf), 0u) << to_string(id);
  }
}

TEST(CodecStreaming, DeltaStreamRebuildsItsOwnHistory) {
  // Two identical frames make frame 2 a pure copy-previous delta.  Every
  // FRESH stream over the same bytes starts with cold history and must
  // rebuild it from frame 1 — no state may leak between streams.
  const Bytes raw(2 * kFrameBytes, 0x3C);
  for (CodecId id : {CodecId::kFrameDelta, CodecId::kDeltaGolomb}) {
    const auto codec = make_codec(id, kFrameBytes);
    const Bytes compressed = codec->compress(raw);
    for (int round = 0; round < 2; ++round) {
      auto stream = codec->decompress_stream(compressed);
      Bytes got;
      Bytes buf(kFrameBytes);
      for (;;) {
        const std::size_t n = stream->read(buf);
        if (n == 0) break;
        got.insert(got.end(), buf.begin(),
                   buf.begin() + static_cast<std::ptrdiff_t>(n));
      }
      EXPECT_EQ(got, raw) << to_string(id) << " round=" << round;
    }
  }
}

// --- the kAuto sentinel ---------------------------------------------------------

TEST(CodecFactory, AutoIsASelectionPolicyNotACodec) {
  EXPECT_THROW(make_codec(CodecId::kAuto, kFrameBytes), Error);
  for (CodecId id : all_codec_ids()) EXPECT_NE(id, CodecId::kAuto);
}

TEST(CodecFactory, CodecFromStringRoundtripsEveryName) {
  for (CodecId id : all_codec_ids())
    EXPECT_EQ(codec_from_string(to_string(id)), id);
  EXPECT_EQ(codec_from_string("auto"), CodecId::kAuto);
  EXPECT_THROW(codec_from_string("zstd"), Error);
  EXPECT_THROW(codec_from_string(""), Error);
}

}  // namespace
}  // namespace aad::compress
