// Experiment E6 — PCI transfer cost vs payload size (paper §2.3: "each data
// transfer is a multiple of the width of the interface bus").
//
// Expected shape: per-transfer overhead dominates below ~1 KiB (throughput
// climbs with size), then saturates near the 133 MB/s bus ceiling; DMA
// bursts beat programmed I/O by an order of magnitude.
#include "bench_util.h"

#include "pci/pci.h"

namespace {

using namespace aad;

void transfer_table() {
  std::puts("\n=== E6: PCI 32/33 transfer cost vs payload ===");
  const std::vector<int> widths = {12, 12, 14, 12, 14};
  bench::print_row({"payload(B)", "dma(us)", "dma(MB/s)", "pio(us)",
                    "pio(MB/s)"},
                   widths);
  bench::print_rule(widths);
  pci::PciBus bus;
  for (std::size_t bytes :
       {4u, 16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u, 262144u,
        1048576u}) {
    const auto dma = bus.dma_time(bytes);
    const auto pio = bus.programmed_io_time(bytes);
    const double dmbs = static_cast<double>(bytes) / dma.seconds() / 1e6;
    const double pmbs = static_cast<double>(bytes) / pio.seconds() / 1e6;
    bench::print_row({std::to_string(bytes),
                      bench::fmt("%.2f", dma.microseconds()),
                      bench::fmt("%.1f", dmbs),
                      bench::fmt("%.2f", pio.microseconds()),
                      bench::fmt("%.1f", pmbs)},
                     widths);
  }
}

void bus_variant_table() {
  std::puts("\n=== E6b: bus variants (1 MiB DMA) ===");
  const std::vector<int> widths = {18, 12, 14};
  bench::print_row({"bus", "time(ms)", "MB/s"}, widths);
  bench::print_rule(widths);
  struct Variant {
    const char* name;
    pci::PciTiming timing;
  };
  pci::PciTiming v33;
  pci::PciTiming v66;
  v66.clock = sim::Frequency::mhz(66);
  pci::PciTiming w64;
  w64.bus_width_bits = 64;
  pci::PciTiming v66w64;
  v66w64.clock = sim::Frequency::mhz(66);
  v66w64.bus_width_bits = 64;
  for (const Variant& v :
       {Variant{"PCI 32/33", v33}, Variant{"PCI 32/66", v66},
        Variant{"PCI 64/33", w64}, Variant{"PCI 64/66", v66w64}}) {
    pci::PciBus bus(v.timing);
    const std::size_t bytes = 1 << 20;
    const auto t = bus.dma_time(bytes);
    bench::print_row({v.name, bench::fmt("%.2f", t.milliseconds()),
                      bench::fmt("%.1f",
                                 static_cast<double>(bytes) / t.seconds() /
                                     1e6)},
                     widths);
  }
}

void BM_DmaTimeModel(benchmark::State& state) {
  pci::PciBus bus;
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto t = bus.dma_time(bytes);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_DmaTimeModel)->Arg(64)->Arg(65536);

}  // namespace

void run_experiment() {
  transfer_table();
  bus_variant_table();
}
