// Experiment E4 — co-processor vs host-only speedup and crossover (the
// paper's §1 motivation: "reduce the computational overload on the host
// processors").
//
// For each behavioral kernel, sweeps input size and reports host time,
// warm co-processor time (function resident) and cold time (reconfiguration
// included).  Expected shape: the card loses at small payloads (PCI +
// reconfig overhead dominates), wins at scale; the crossover input size per
// kernel is printed.  Netlist demo kernels are reported separately — they
// never win (single-word combinational ops are exactly what should stay on
// the host), which is the honest flip side of the paper's pitch.
#include "bench_util.h"

#include "core/coprocessor.h"

namespace {

using namespace aad;
using algorithms::KernelId;

void sweep_kernel(KernelId id, const std::vector<std::size_t>& blocks) {
  const auto& spec = algorithms::spec(id);
  std::printf("\n--- %s ---\n", spec.name.c_str());
  const std::vector<int> widths = {11, 12, 12, 12, 11, 11};
  bench::print_row({"input(B)", "host(us)", "warm(us)", "cold(us)",
                    "spd-warm", "spd-cold"},
                   widths);
  bench::print_rule(widths);

  core::AgileCoprocessor cp;
  cp.download(id);
  bool crossover_reported = false;
  for (std::size_t b : blocks) {
    const Bytes input = spec.make_input(b, 7);
    // Cold: evict first if resident.
    if (cp.mcu().is_resident(algorithms::function_id(id)))
      cp.evict(id);
    const auto cold = cp.invoke(id, input);
    const auto warm = cp.invoke(id, input);
    const auto host = cp.run_on_host(id, input);

    const double sw = host.latency.microseconds();
    const double w = warm.latency.microseconds();
    const double c = cold.latency.microseconds();
    bench::print_row(
        {std::to_string(input.size()), bench::fmt("%.1f", sw),
         bench::fmt("%.1f", w), bench::fmt("%.1f", c),
         bench::fmt("%.2fx", sw / w), bench::fmt("%.2fx", sw / c)},
        widths);
    if (!crossover_reported && sw > w) {
      crossover_reported = true;
    }
  }
}

void run_behavioral_sweeps() {
  std::puts("\n=== E4: co-processor vs host-only execution ===");
  std::puts("(host model: ~3 GHz 2005-era desktop; card: 100 MHz fabric, "
            "PCI 32/33)");
  sweep_kernel(KernelId::kAes128, {1, 4, 16, 64, 256, 1024});
  sweep_kernel(KernelId::kDes, {1, 4, 16, 64, 256, 1024});
  sweep_kernel(KernelId::kSha256, {1, 4, 16, 64, 256});
  sweep_kernel(KernelId::kMatMul, {4, 8, 16, 32, 64});
  sweep_kernel(KernelId::kFft, {4, 6, 8, 10, 12});  // log2 points
  sweep_kernel(KernelId::kFir16, {1, 4, 16, 64, 256});
  sweep_kernel(KernelId::kModExp, {1, 2, 4});  // 256/512/1024-bit operands
}

void run_netlist_reality_check() {
  std::puts(
      "\n=== E4b: netlist demo kernels (expected to LOSE — per-call bus "
      "overhead dwarfs one combinational evaluation) ===");
  const std::vector<int> widths = {12, 12, 12, 12};
  bench::print_row({"kernel", "host(us)", "warm(us)", "ratio"}, widths);
  bench::print_rule(widths);
  for (KernelId id : {KernelId::kAdder32, KernelId::kParity32,
                      KernelId::kCrc32}) {
    const auto& spec = algorithms::spec(id);
    core::AgileCoprocessor cp;
    cp.download(id);
    const Bytes input = spec.make_input(64, 3);
    cp.invoke(id, input);  // warm up
    const auto warm = cp.invoke(id, input);
    const auto host = cp.run_on_host(id, input);
    bench::print_row(
        {spec.name, bench::fmt("%.2f", host.latency.microseconds()),
         bench::fmt("%.2f", warm.latency.microseconds()),
         bench::fmt("%.3fx", host.latency.microseconds() /
                                 warm.latency.microseconds())},
        widths);
  }
}

void BM_WarmInvokeAes(benchmark::State& state) {
  core::AgileCoprocessor cp;
  cp.download(KernelId::kAes128);
  const auto& spec = algorithms::spec(KernelId::kAes128);
  const Bytes input = spec.make_input(static_cast<std::size_t>(state.range(0)), 1);
  cp.invoke(KernelId::kAes128, input);
  for (auto _ : state) {
    auto out = cp.invoke(KernelId::kAes128, input);
    benchmark::DoNotOptimize(out.output);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_WarmInvokeAes)->Arg(16)->Arg(256);

void BM_HostAes(benchmark::State& state) {
  core::AgileCoprocessor cp;
  cp.download(KernelId::kAes128);
  const auto& spec = algorithms::spec(KernelId::kAes128);
  const Bytes input = spec.make_input(256, 1);
  for (auto _ : state) {
    auto out = cp.run_on_host(KernelId::kAes128, input);
    benchmark::DoNotOptimize(out.output);
  }
}
BENCHMARK(BM_HostAes);

}  // namespace

void run_experiment() {
  run_behavioral_sweeps();
  run_netlist_reality_check();
}
