// Experiment F1 — the end-to-end proof of concept (paper Figure 1 and §3).
//
// Regenerates the system-level demonstration: every kernel in the bank is
// provisioned over PCI, executed on demand (cold: ROM -> window decompress
// -> partial reconfiguration -> execute -> collect; warm: execute only),
// and the latency is attributed to pipeline stages.  This is the table a
// DATE'05 camera-ready with an evaluation section would have shown.
#include "bench_util.h"

#include "core/coprocessor.h"
#include "workload/trace.h"

namespace {

using namespace aad;
using algorithms::KernelId;

void per_kernel_table() {
  std::puts("\n=== F1: on-demand execution, every kernel in the bank ===");
  std::puts("(cold = function absent, includes streaming partial "
            "reconfiguration; warm = resident)");
  const std::vector<int> widths = {12, 11, 8, 10, 11, 11, 11, 9};
  bench::print_row({"kernel", "kind", "frames", "input(B)", "cold(us)",
                    "warm(us)", "reconfig", "cycles"},
                   widths);
  bench::print_rule(widths);

  for (const auto& spec : algorithms::catalog()) {
    core::AgileCoprocessor cp;   // fresh card per kernel: clean cold number
    cp.download(spec.id);
    const Bytes input = spec.make_input(4, 11);
    const auto cold = cp.invoke(spec.id, input);
    const auto warm = cp.invoke(spec.id, input);
    bench::print_row(
        {spec.name, to_string(spec.kind), std::to_string(spec.nominal_frames),
         std::to_string(input.size()),
         bench::fmt("%.1f", cold.latency.microseconds()),
         bench::fmt("%.1f", warm.latency.microseconds()),
         bench::fmt("%.1f", cold.device.load.reconfig_time.microseconds()),
         std::to_string(warm.device.exec_cycles)},
        widths);
  }
}

void stage_breakdown() {
  std::puts("\n=== F1b: where a cold AES-128 invocation spends its time ===");
  core::CoprocessorConfig config;
  config.trace_enabled = true;
  core::AgileCoprocessor cp(config);
  cp.download(KernelId::kAes128);
  cp.trace().clear();
  const auto& spec = algorithms::spec(KernelId::kAes128);
  const Bytes input = spec.make_input(16, 3);
  const auto cold = cp.invoke(KernelId::kAes128, input);
  const auto totals = cp.trace().stage_totals();
  const std::vector<int> widths = {14, 12, 10};
  bench::print_row({"stage", "time(us)", "share"}, widths);
  bench::print_rule(widths);
  for (const auto& [stage, time] : totals) {
    bench::print_row(
        {to_string(stage), bench::fmt("%.1f", time.microseconds()),
         bench::fmt("%.1f%%", 100.0 * time.microseconds() /
                                  cold.latency.microseconds())},
        widths);
  }
  std::printf("end-to-end: %.1f us (stages overlap in the configuration "
              "pipeline, so shares can exceed 100%%)\n",
              cold.latency.microseconds());
}

void mixed_service_run() {
  std::puts("\n=== F1c: 200-request mixed service (zipf 1.0, all kernels) ===");
  core::AgileCoprocessor cp;
  cp.download_all();
  workload::TraceConfig tc;
  for (const auto& spec : algorithms::catalog())
    tc.functions.push_back(algorithms::function_id(spec.id));
  tc.length = 200;
  tc.seed = 31;
  const auto trace = workload::make_zipf(tc, 1.0);
  double total_us = 0;
  std::size_t bytes_moved = 0;
  for (const auto& request : trace) {
    const auto& spec =
        algorithms::spec(static_cast<KernelId>(request.function));
    const Bytes input = spec.make_input(1, 1);
    const auto out = cp.invoke_function(request.function, input);
    total_us += out.latency.microseconds();
    bytes_moved += input.size() + out.output.size();
  }
  const auto stats = cp.stats();
  std::printf("  requests: %zu   mean latency: %.1f us   simulated time: "
              "%.2f ms\n",
              trace.size(), total_us / static_cast<double>(trace.size()),
              cp.now().milliseconds());
  std::printf("  config hits: %llu/%llu (%.1f%%)   evictions: %llu   frames "
              "configured: %llu\n",
              static_cast<unsigned long long>(stats.device.config_hits),
              static_cast<unsigned long long>(stats.device.invocations),
              100.0 * static_cast<double>(stats.device.config_hits) /
                  static_cast<double>(stats.device.invocations),
              static_cast<unsigned long long>(stats.device.evictions),
              static_cast<unsigned long long>(stats.device.frames_configured));
  std::printf("  PCI payload: %zu B   bus busy: %.2f ms\n", bytes_moved,
              stats.bus.bus_time.milliseconds());
}

void BM_EndToEndWarm(benchmark::State& state) {
  core::AgileCoprocessor cp;
  cp.download(KernelId::kSha256);
  const auto& spec = algorithms::spec(KernelId::kSha256);
  const Bytes input = spec.make_input(4, 1);
  cp.invoke(KernelId::kSha256, input);
  for (auto _ : state) {
    auto out = cp.invoke(KernelId::kSha256, input);
    benchmark::DoNotOptimize(out.output);
  }
  state.SetLabel("simulator wall-clock per warm invocation");
}
BENCHMARK(BM_EndToEndWarm);

void BM_EndToEndColdReconfig(benchmark::State& state) {
  core::AgileCoprocessor cp;
  cp.download(KernelId::kSha256);
  const auto& spec = algorithms::spec(KernelId::kSha256);
  const Bytes input = spec.make_input(4, 1);
  for (auto _ : state) {
    auto out = cp.invoke(KernelId::kSha256, input);
    benchmark::DoNotOptimize(out.output);
    state.PauseTiming();
    cp.evict(KernelId::kSha256);
    state.ResumeTiming();
  }
  state.SetLabel("simulator wall-clock per cold invocation");
}
BENCHMARK(BM_EndToEndColdReconfig);

}  // namespace

void run_experiment() {
  per_kernel_table();
  stage_breakdown();
  mixed_service_run();
}
