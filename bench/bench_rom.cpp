// Experiment E7 — ROM capacity and the two-ended layout (paper §2.2:
// bit-streams from one end, record table from the other).
//
// Reports how many copies of the full kernel bank fit in a given ROM per
// codec (compression directly buys algorithm-bank capacity — the reason the
// paper stores compressed streams), plus record-table overhead and
// store/lookup costs.
#include "bench_util.h"

#include "core/coprocessor.h"
#include "memory/rom.h"

namespace {

using namespace aad;

void capacity_table() {
  std::puts("\n=== E7: functions that fit a 256 KiB ROM per codec ===");
  const std::vector<int> widths = {14, 12, 14, 14};
  bench::print_row({"codec", "functions", "data bytes", "record bytes"},
                   widths);
  bench::print_rule(widths);

  const fabric::FrameGeometry geometry;
  for (const auto codec : compress::all_codec_ids()) {
    memory::RomImage rom(256 * 1024);
    const auto impl = compress::make_codec(codec, geometry.frame_bytes());
    std::uint32_t stored = 0;
    try {
      // Keep cloning the kernel bank (fresh ids) until the ROM collides.
      for (std::uint32_t copy = 0;; ++copy) {
        for (const auto& spec : algorithms::catalog()) {
          const auto bs = spec.make_bitstream(geometry);
          const Bytes raw = bitstream::pack_frame_payloads(bs);
          memory::RomRecord rec;
          rec.function_id = copy * 1000 + algorithms::function_id(spec.id);
          rec.name = spec.name;
          rec.kind = spec.kind;
          rec.codec = codec;
          rec.raw_size = static_cast<std::uint32_t>(raw.size());
          rec.frames = static_cast<std::uint16_t>(bs.frame_count());
          rec.clb_rows = static_cast<std::uint16_t>(geometry.clb_rows);
          rom.store(rec, impl->compress(raw));
          ++stored;
        }
      }
    } catch (const Error&) {
      // ROM full — the expected terminal condition.
    }
    bench::print_row({to_string(codec), std::to_string(stored),
                      std::to_string(rom.data_bytes()),
                      std::to_string(rom.record_bytes())},
                     widths);
  }
}

void provisioning_time_table() {
  std::puts("\n=== E7b: provisioning (download) cost of the full bank ===");
  const std::vector<int> widths = {14, 14, 14, 14};
  bench::print_row({"codec", "rom bytes", "pci(ms)", "total(ms)"}, widths);
  bench::print_rule(widths);
  // `--codec` narrows the table to one codec ("auto" = per-function pick).
  std::vector<compress::CodecId> codecs = {compress::CodecId::kNull,
                                           compress::CodecId::kLzss,
                                           compress::CodecId::kFrameDelta};
  if (const auto pick = bench::codec_flag()) codecs = {*pick};
  for (const auto codec : codecs) {
    core::AgileCoprocessor cp;
    const auto t0 = cp.now();
    cp.download_all(codec);
    const auto elapsed = cp.now() - t0;
    bench::print_row(
        {to_string(codec), std::to_string(cp.mcu().rom().data_bytes()),
         bench::fmt("%.2f", cp.stats().bus.bus_time.milliseconds()),
         bench::fmt("%.2f", elapsed.milliseconds())},
        widths);
  }
}

void BM_RomStore(benchmark::State& state) {
  const fabric::FrameGeometry geometry;
  const auto bs =
      algorithms::spec(algorithms::KernelId::kXtea).make_bitstream(geometry);
  const Bytes raw = bitstream::pack_frame_payloads(bs);
  const auto codec =
      compress::make_codec(compress::CodecId::kFrameDelta,
                           geometry.frame_bytes());
  const Bytes compressed = codec->compress(raw);
  std::uint32_t id = 0;
  memory::RomImage rom(16 * 1024 * 1024);
  for (auto _ : state) {
    if (rom.free_bytes() < compressed.size() + 2 * memory::kRecordBytes) {
      state.PauseTiming();
      rom.clear();
      id = 0;
      state.ResumeTiming();
    }
    memory::RomRecord rec;
    rec.function_id = id++;
    rec.name = "xtea";
    rec.raw_size = static_cast<std::uint32_t>(raw.size());
    rec.frames = static_cast<std::uint16_t>(bs.frame_count());
    rec.clb_rows = 16;
    benchmark::DoNotOptimize(rom.store(rec, compressed));
  }
}
BENCHMARK(BM_RomStore);

void BM_RomLookup(benchmark::State& state) {
  memory::RomImage rom(1024 * 1024);
  for (std::uint32_t i = 0; i < 100; ++i) {
    memory::RomRecord rec;
    rec.function_id = i;
    rec.name = "f";
    rec.clb_rows = 16;
    rom.store(rec, Bytes(64, 1));
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rom.lookup(i++ % 100));
  }
}
BENCHMARK(BM_RomLookup);

}  // namespace

void run_experiment() {
  capacity_table();
  provisioning_time_table();
}
