// Experiment E3 — Frame Replacement Policy quality (paper §2.5).
//
// The paper mandates LRU via the Frame Replacement Table's timestamps.
// This bench runs the full co-processor (streaming reconfiguration, real
// frame allocation) over four trace shapes and five policies and reports
// config-hit rate, evictions, frames configured, and mean invoke latency.
//
// Expected shape: Belady >= LRU >= FIFO/Random on skewed (zipf, markov)
// traces; round-robin over a too-big working set is LRU's worst case; all
// policies converge on uniform traces.
#include "bench_util.h"

#include "core/coprocessor.h"
#include "workload/trace.h"

namespace {

using namespace aad;
using algorithms::KernelId;

// Behavioral working set: 9 kernels, 85 frames total on a 48-frame device.
const std::vector<KernelId> kBank = {
    KernelId::kAes128, KernelId::kDes,    KernelId::kXtea,
    KernelId::kSha1,   KernelId::kSha256, KernelId::kMd5,
    KernelId::kMatMul, KernelId::kFft,    KernelId::kFir16};

struct RunResult {
  double hit_rate;
  std::uint64_t evictions;
  std::uint64_t frames;
  double mean_latency_us;
};

RunResult run_trace(mcu::PolicyKind policy, const workload::Trace& trace) {
  core::CoprocessorConfig config;
  config.mcu.policy = policy;
  core::AgileCoprocessor cp(config);
  for (KernelId id : kBank) cp.download(id);
  if (policy == mcu::PolicyKind::kBelady)
    cp.mcu().policy().set_future(workload::function_sequence(trace));

  double total_us = 0;
  for (const auto& request : trace) {
    const auto& spec = algorithms::spec(
        static_cast<KernelId>(request.function));
    const Bytes input = spec.make_input(request.payload_blocks, 1);
    total_us += cp.invoke_function(request.function, input)
                    .latency.microseconds();
  }
  const auto& stats = cp.stats().device;
  return RunResult{
      static_cast<double>(stats.config_hits) /
          static_cast<double>(stats.invocations),
      stats.evictions, stats.frames_configured,
      total_us / static_cast<double>(trace.size())};
}

workload::TraceConfig bank_config(std::size_t length, std::uint64_t seed) {
  workload::TraceConfig config;
  for (KernelId id : kBank)
    config.functions.push_back(algorithms::function_id(id));
  config.length = length;
  config.seed = seed;
  return config;
}

void run_experiment_tables() {
  struct Shape {
    const char* name;
    workload::Trace trace;
  };
  const std::size_t n = 400;
  std::vector<Shape> shapes;
  shapes.push_back({"zipf(1.2)", workload::make_zipf(bank_config(n, 1), 1.2)});
  shapes.push_back(
      {"markov(.8)", workload::make_markov(bank_config(n, 2), 0.8)});
  shapes.push_back({"round-robin", workload::make_round_robin(bank_config(n, 3))});
  shapes.push_back({"uniform", workload::make_uniform(bank_config(n, 4))});

  for (const auto& shape : shapes) {
    std::printf("\n=== E3: policy comparison on %s trace (%zu requests, "
                "9 kernels / 85 frames on a 48-frame device) ===\n",
                shape.name, shape.trace.size());
    const std::vector<int> widths = {10, 11, 11, 10, 16};
    bench::print_row(
        {"policy", "hit-rate", "evictions", "frames", "mean-lat(us)"},
        widths);
    bench::print_rule(widths);
    for (const auto kind :
         {mcu::PolicyKind::kBelady, mcu::PolicyKind::kLru,
          mcu::PolicyKind::kLfu, mcu::PolicyKind::kFifo,
          mcu::PolicyKind::kRandom}) {
      const RunResult r = run_trace(kind, shape.trace);
      bench::print_row({to_string(kind),
                        bench::fmt("%.1f%%", r.hit_rate * 100),
                        bench::fmt_u(r.evictions), bench::fmt_u(r.frames),
                        bench::fmt("%.1f", r.mean_latency_us)},
                       widths);
    }
  }
}

void BM_InvokeUnderZipfPressure(benchmark::State& state) {
  const auto kind = static_cast<mcu::PolicyKind>(state.range(0));
  core::CoprocessorConfig config;
  config.mcu.policy = kind;
  core::AgileCoprocessor cp(config);
  for (KernelId id : kBank) cp.download(id);
  const auto trace = workload::make_zipf(bank_config(4096, 9), 1.2);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& request = trace[i++ % trace.size()];
    const auto& spec =
        algorithms::spec(static_cast<KernelId>(request.function));
    const Bytes input = spec.make_input(1, 1);
    auto out = cp.invoke_function(request.function, input);
    benchmark::DoNotOptimize(out.latency);
  }
  state.SetLabel(to_string(kind));
}
BENCHMARK(BM_InvokeUnderZipfPressure)
    ->Arg(static_cast<int>(mcu::PolicyKind::kLru))
    ->Arg(static_cast<int>(mcu::PolicyKind::kRandom));

}  // namespace

void run_experiment() { run_experiment_tables(); }
