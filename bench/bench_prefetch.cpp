// Experiment P — speculative configuration prefetch (core/predictor.h, the
// server's prefetch pump, and the fleet's prefetched routing tier).
//
// The configuration engine sits idle whenever the demand queue is empty —
// exactly the cycles a predicted next function could be loading in.  Each
// server trains a per-client first-order Markov predictor on its completed
// requests and speculatively loads the predicted next configuration into
// FREE frames only (a speculative load never evicts a demand resident, and
// a demand miss steals the frames back instantly).  The fleet layers two
// more pieces on top: a routing tier that sends a request to the card that
// prefetched it, and cross-card prefetch — when the card a demand went to
// cannot hold the predicted next function, a cold sibling warms it instead.
//
//   P1 — predictor off/on per workload (bursty / incremental / phased) on a
//        2-card affinity fleet: hit rate, throughput, p99 and the prefetch
//        ledger (issued / hits / wasted / hidden reconfiguration time).
//        The phased workload is the headline: its sliding working-set
//        windows defeat pure residency affinity (each phase introduces
//        functions no card has seen) but follow a perfect first-order
//        cycle the predictor locks onto.
//   P2 — card-count sweep on the phased workload: the cross-card path only
//        exists at >= 2 cards, and the prefetched routing tier's share
//        grows with the fleet.
//
// Flags (bench_util.h parser): `--json <path>` captures the metrics;
// `--clients N` (default 6) and `--requests N` (default 24, per phase /
// chain walk) scale the traces; `--threads N` (default 1) runs the fleets
// on the sharded parallel engine; `--predictor C` (default 0.35) sets the
// ON rows' confidence threshold — low on purpose: a mispredicted prefetch
// costs only idle engine cycles and free frames, so speaking early beats
// staying silent; `--prefetch off` skips the ON rows (baseline only).
#include "bench_util.h"

#include <algorithm>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace {

using namespace aad;
using algorithms::KernelId;

using bench::request_input;

unsigned flag_clients() {
  return static_cast<unsigned>(bench::flags().get_int("clients", 6));
}
std::size_t flag_requests() {
  return static_cast<std::size_t>(bench::flags().get_int("requests", 24));
}

// The heavyweight crypto/DSP mix (6-18 of the device's 48 frames each,
// ~99 frames combined): concurrent clients genuinely contend for fabric
// area, so the predicted-next function is usually NOT already resident.
std::vector<std::uint32_t> heavy_bank() {
  std::vector<std::uint32_t> bank;
  for (const KernelId id :
       {KernelId::kAes128, KernelId::kDes, KernelId::kSha1,
        KernelId::kSha256, KernelId::kMd5, KernelId::kMatMul, KernelId::kFft,
        KernelId::kFir16, KernelId::kModExp})
    bank.push_back(algorithms::function_id(id));
  return bank;
}

workload::MultiClientTrace bursty_trace(std::uint64_t seed) {
  workload::BurstyConfig bc;
  bc.clients = flag_clients();
  bc.bursts = std::max<std::size_t>(4, flag_requests() / 3);
  bc.burst_size = 6;
  bc.functions = heavy_bank();
  bc.seed = seed;
  bc.payload_blocks = 2;
  // Strong skew: burst-to-burst transitions are draws, not a cycle, so the
  // predictor's signal IS the popularity head — after any burst, the head
  // function is the likely next.  Uniform bursts would stay under any
  // useful confidence threshold.
  bc.zipf_s = 1.1;
  // Tight bursts, long idle gaps: the burst saturates the card, the gap is
  // the idle window the pump loads the predicted next burst head into.
  bc.mean_intra_gap = sim::SimTime::us(20);
  bc.mean_inter_gap = sim::SimTime::ms(5);
  return workload::make_bursty(bc);
}

workload::MultiClientTrace incremental_trace(std::uint64_t seed) {
  // Version chains walked v -> v+1 cyclically: repeats are
  // self-transitions (dropped by the predictor), so every recorded edge is
  // the advance — the predictor reaches full confidence on the chain
  // order.  Each chain's combined footprint exceeds one card, so the
  // wrapped-around version is long evicted when the walk returns to it:
  // every advance is a miss without prefetch.
  workload::IncrementalConfig ic;
  const auto bank = heavy_bank();
  ic.groups.emplace_back(bank.begin(), bank.begin() + 5);
  ic.groups.emplace_back(bank.begin() + 5, bank.end());
  ic.clients = flag_clients();
  ic.requests_per_client = flag_requests();
  ic.seed = seed;
  ic.payload_blocks = 2;
  ic.mode = workload::ArrivalMode::kOpenLoop;
  ic.advance = 0.6;
  ic.mean_interarrival = sim::SimTime::ms(2);
  return workload::make_incremental(ic);
}

workload::MultiClientTrace phased_trace(std::uint64_t seed) {
  workload::PhasedConfig pc;
  pc.clients = flag_clients();
  // Disjoint windows that WRAP (stride == working_set, 9-function bank):
  // phase 3 revisits phase 0's window, whose cycle the predictor already
  // knows but whose functions later phases evicted — the revisit's misses
  // are exactly what the pump hides.
  pc.phases = 6;
  pc.requests_per_phase = std::max<std::size_t>(6, flag_requests() / 3);
  pc.functions = heavy_bank();
  pc.working_set = 3;
  pc.phase_stride = 3;
  pc.seed = seed;
  pc.payload_blocks = 2;
  pc.wander = 0.05;
  pc.mean_interarrival = sim::SimTime::ms(1);
  return workload::make_phased(pc);
}

core::FleetStats run_fleet(unsigned cards, bool prefetch, double confidence,
                           const workload::MultiClientTrace& trace,
                           unsigned frames = 48) {
  core::FleetConfig fc;
  fc.cards = cards;
  fc.threads = static_cast<unsigned>(bench::flags().get_int("threads", 1));
  fc.policy = core::DispatchPolicy::kResidencyAffinity;
  fc.server.prefetch.enabled = prefetch;
  fc.server.prefetch.predictor.min_confidence = confidence;
  fc.card.fabric.geometry.frame_count = frames;
  core::CoprocessorFleet fleet(fc);
  if (auto* sink = bench::trace_sink())
    fleet.attach_trace(*sink,
                       std::string("prefetch cards=") + std::to_string(cards) +
                           (prefetch ? " on" : " off"));
  fleet.download_all();
  workload::replay(fleet, trace, request_input);
  fleet.run();
  return fleet.stats();
}

void workload_sweep(const bench::PrefetchFlags& pf) {
  std::puts("\n=== P1: predictor off/on per workload, 2-card affinity fleet ===");
  std::printf("(%u open-loop clients over the heavyweight crypto/DSP bank; "
              "ON rows prefetch at confidence >= %.2f into free frames "
              "during idle engine cycles)\n",
              flag_clients(), pf.min_confidence);
  const std::vector<int> widths = {13, 9, 7, 9, 10, 8, 7, 8, 11, 10};
  bench::print_row({"workload", "prefetch", "hit%", "req/s", "p99(us)",
                    "issued", "hits", "wasted", "hidden(us)", "pf-routed"},
                   widths);
  bench::print_rule(widths);

  struct Case {
    const char* name;
    workload::MultiClientTrace trace;
    unsigned frames;  ///< per-card fabric frames (contention knob)
  };
  // The bursty case runs 32-frame cards: on the default 48 the popular
  // burst heads simply stay resident and there is nothing left to predict.
  const Case cases[] = {{"bursty", bursty_trace(21), 28},
                        {"incremental", incremental_trace(22), 48},
                        {"phased", phased_trace(23), 48}};
  for (const Case& c : cases) {
    for (const bool on : {false, true}) {
      if (on && !pf.enabled) continue;
      const auto stats = run_fleet(2, on, pf.min_confidence, c.trace, c.frames);
      const double hidden_us =
          stats.hidden_reconfig_prefetch.microseconds();
      bench::print_row(
          {c.name, on ? "on" : "off",
           bench::fmt("%.1f", 100.0 * stats.hit_rate),
           bench::fmt("%.0f", stats.throughput_rps),
           bench::fmt("%.1f", stats.latency.p99.microseconds()),
           bench::fmt_u(stats.prefetch_issued),
           bench::fmt_u(stats.prefetch_hits),
           bench::fmt_u(stats.prefetch_wasted),
           bench::fmt("%.1f", hidden_us),
           bench::fmt_u(stats.prefetch_routed)},
          widths);
      const std::string suffix =
          std::string("_") + c.name + (on ? "_on" : "_off");
      bench::json().set("prefetch_hit_rate" + suffix, stats.hit_rate);
      bench::json().set("prefetch_rps" + suffix, stats.throughput_rps);
      if (on) {
        bench::json().set(std::string("prefetch_issued_") + c.name,
                          stats.prefetch_issued);
        bench::json().set(std::string("prefetch_hits_") + c.name,
                          stats.prefetch_hits);
        bench::json().set(std::string("prefetch_wasted_") + c.name,
                          stats.prefetch_wasted);
        bench::json().set(std::string("prefetch_hidden_us_") + c.name,
                          hidden_us);
        bench::json().set(std::string("prefetch_routed_") + c.name,
                          stats.prefetch_routed);
      }
    }
  }
}

void card_sweep(const bench::PrefetchFlags& pf) {
  if (!pf.enabled) return;
  std::puts("\n=== P2: card-count sweep, phased workload ===");
  std::puts("(cross-card prefetch needs a sibling: when the card a demand "
            "went to cannot place the predicted next function in free "
            "frames, a cold sibling warms it and the prefetched routing "
            "tier steers the demand there)");
  const std::vector<int> widths = {7, 10, 9, 9, 11, 8};
  bench::print_row(
      {"cards", "hit%-off", "hit%-on", "req/s-on", "pf-routed", "cross"},
      widths);
  bench::print_rule(widths);

  const auto trace = phased_trace(29);
  for (const unsigned cards : {1u, 2u, 4u}) {
    const auto off = run_fleet(cards, false, pf.min_confidence, trace);
    const auto on = run_fleet(cards, true, pf.min_confidence, trace);
    bench::print_row({std::to_string(cards),
                      bench::fmt("%.1f", 100.0 * off.hit_rate),
                      bench::fmt("%.1f", 100.0 * on.hit_rate),
                      bench::fmt("%.0f", on.throughput_rps),
                      bench::fmt_u(on.prefetch_routed),
                      bench::fmt_u(on.prefetch_cross)},
                     widths);
    const std::string suffix = "_cards" + std::to_string(cards);
    bench::json().set("prefetch_phased_hit_off" + suffix, off.hit_rate);
    bench::json().set("prefetch_phased_hit_on" + suffix, on.hit_rate);
    bench::json().set("prefetch_phased_cross" + suffix, on.prefetch_cross);
  }
}

void BM_PrefetchPhasedFleet(benchmark::State& state) {
  // Simulator wall-clock cost of the prefetch machinery itself: the phased
  // trace through a 2-card fleet with the predictor on.
  const auto trace = phased_trace(31);
  for (auto _ : state) {
    state.PauseTiming();
    core::FleetConfig fc;
    fc.cards = 2;
    fc.policy = core::DispatchPolicy::kResidencyAffinity;
    fc.server.prefetch.enabled = true;
    fc.server.prefetch.predictor.min_confidence = 0.35;
    core::CoprocessorFleet fleet(fc);
    fleet.download_all();
    state.ResumeTiming();
    workload::replay(fleet, trace, request_input);
    fleet.run();
    benchmark::DoNotOptimize(fleet.stats().completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.total_requests()));
  state.SetLabel("requests with the prefetch pump armed");
}
BENCHMARK(BM_PrefetchPhasedFleet)->Unit(benchmark::kMillisecond);

}  // namespace

void run_experiment() {
  const bench::PrefetchFlags pf = bench::prefetch_flags(true, 0.35);
  workload_sweep(pf);
  card_sweep(pf);
}
