// Experiment P — parallel engine scaling (sim::ParallelScheduler).
//
// The sharded engine's contract is "same answer, less wall clock": with
// threads == 1 it must be byte-identical to the classic single-queue
// scheduler, and for any fixed thread count the run must be deterministic.
// This bench sweeps cards x host threads over one open-loop trace and
// reports, per cell:
//
//   * simulation results (completed requests, events executed, simulated
//     makespan, a 64-bit FNV-1a digest over the full completion record) —
//     deterministic, so the CI gate compares them against the baseline;
//   * host wall-clock ms, events/sec, and speedup vs threads=1 — honest
//     measurements of the machine the bench ran on, excluded from the gate
//     via check_bench.py --ignore-keys (see docs/BENCHMARKS.md).
//
// The digest must be IDENTICAL down the threads axis for a fixed card
// count: the bench hard-fails (exit 1) on any mismatch, so a determinism
// regression cannot hide behind a green wall-clock table.  The digest is
// tests/invariant_harness.h's fleet_digest — the same function the
// equivalence tests gate on, so the bench and the test suite cannot drift
// apart on what "same answer" means.
//
// Flags: `--cards N` caps the card sweep (default 8), `--threads N` caps
// the thread sweep (default 4), `--clients`/`--requests`/`--blocks` size
// the trace, `--json results.json` captures the metrics machine-readably.
#include "bench_util.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "tests/invariant_harness.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace {

using namespace aad;

using bench::request_input;

workload::MultiClientTrace scaling_trace(unsigned clients,
                                         std::size_t per_client,
                                         std::size_t blocks) {
  // Open loop: arrivals are absolute offsets fixed at trace-generation
  // time, so the parallel fleet's submit path never clamps them and the
  // digest matches the classic engine exactly (core/fleet.h, `threads`).
  workload::MultiClientConfig wc;
  wc.clients = clients;
  wc.requests_per_client = per_client;
  wc.functions = algorithms::function_bank();
  wc.seed = 23;
  wc.zipf_s = 1.1;
  wc.payload_blocks = blocks;
  wc.mode = workload::ArrivalMode::kOpenLoop;
  wc.mean_interarrival = sim::SimTime::us(40);
  return workload::make_multi_client(wc);
}

struct CellResult {
  core::FleetStats stats;
  std::size_t events = 0;
  std::uint64_t digest = 0;
  std::uint64_t rounds = 0;
  double host_ms = 0.0;
};

CellResult run_cell(unsigned cards, unsigned threads,
                    const workload::MultiClientTrace& trace) {
  core::FleetConfig fc;
  fc.cards = cards;
  fc.threads = threads;
  fc.policy = core::DispatchPolicy::kResidencyAffinity;
  core::CoprocessorFleet fleet(fc);
  if (auto* sink = bench::trace_sink())
    fleet.attach_trace(*sink, std::string("parallel cards=") +
                                  std::to_string(cards) + " threads=" +
                                  std::to_string(threads));
  fleet.download_all();
  workload::replay(fleet, trace, request_input);

  CellResult cell;
  const auto start = std::chrono::steady_clock::now();
  cell.events = fleet.run();
  const auto stop = std::chrono::steady_clock::now();
  cell.host_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  cell.stats = fleet.stats();
  cell.digest = harness::fleet_digest(fleet);
  if (const auto* engine = fleet.parallel_engine())
    cell.rounds = engine->rounds();
  return cell;
}

std::string hex_digest(std::uint64_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

void scaling_sweep() {
  const auto max_cards =
      static_cast<unsigned>(bench::flags().get_int("cards", 8));
  const auto max_threads =
      static_cast<unsigned>(bench::flags().get_int("threads", 4));
  const auto clients =
      static_cast<unsigned>(bench::flags().get_int("clients", 12));
  const auto per_client =
      static_cast<std::size_t>(bench::flags().get_int("requests", 24));
  const auto blocks =
      static_cast<std::size_t>(bench::flags().get_int("blocks", 6));

  std::puts("\n=== P1: cards x host threads, open-loop zipf(1.1) trace ===");
  std::printf("(%u clients x %zu requests, %zu-block payloads; digest must "
              "be constant down each card column — wall-clock columns are "
              "host measurements, ignored by the CI gate)\n",
              clients, per_client, blocks);
  const std::vector<int> widths = {7, 9, 10, 9, 13, 10, 9, 9, 18};
  bench::print_row({"cards", "threads", "requests", "events", "makespan(ms)",
                    "host(ms)", "Mev/s", "speedup", "digest"},
                   widths);
  bench::print_rule(widths);

  const auto trace = scaling_trace(clients, per_client, blocks);
  bool digest_mismatch = false;
  for (unsigned cards : {1u, 4u, 8u}) {
    if (cards > max_cards) continue;
    double base_host_ms = 0.0;
    std::uint64_t column_digest = 0;
    for (unsigned threads : {1u, 2u, 4u}) {
      if (threads > max_threads) continue;
      if (threads > cards) continue;  // the engine clamps; skip dup rows
      const CellResult cell = run_cell(cards, threads, trace);
      if (threads == 1) {
        base_host_ms = cell.host_ms;
        column_digest = cell.digest;
      } else if (cell.digest != column_digest) {
        std::fprintf(stderr,
                     "DETERMINISM FAILURE: cards=%u threads=%u digest %s != "
                     "threads=1 digest %s\n",
                     cards, threads, hex_digest(cell.digest).c_str(),
                     hex_digest(column_digest).c_str());
        digest_mismatch = true;
      }
      const double speedup =
          cell.host_ms > 0.0 ? base_host_ms / cell.host_ms : 0.0;
      const double mev_per_s =
          cell.host_ms > 0.0
              ? static_cast<double>(cell.events) / cell.host_ms / 1e3
              : 0.0;
      bench::print_row(
          {std::to_string(cards), std::to_string(threads),
           bench::fmt_u(cell.stats.completed),
           bench::fmt_u(static_cast<std::uint64_t>(cell.events)),
           bench::fmt("%.2f", cell.stats.makespan.milliseconds()),
           bench::fmt("%.1f", cell.host_ms), bench::fmt("%.2f", mev_per_s),
           bench::fmt("%.2fx", speedup), hex_digest(cell.digest)},
          widths);

      const std::string suffix =
          "_c" + std::to_string(cards) + "_t" + std::to_string(threads);
      // Deterministic metrics: gated against bench/baselines/.
      bench::json().set_string("parallel_digest" + suffix,
                               hex_digest(cell.digest));
      bench::json().set("parallel_events" + suffix,
                        static_cast<std::uint64_t>(cell.events));
      bench::json().set("parallel_completed" + suffix, cell.stats.completed);
      bench::json().set("parallel_rounds" + suffix, cell.rounds);
      // Host measurements: ride in the artifact for the perf trajectory
      // but are excluded from the gate (--ignore-keys '*host_ms*,...').
      bench::json().set("parallel_host_ms" + suffix, cell.host_ms);
      bench::json().set("parallel_events_per_sec" + suffix,
                        cell.host_ms > 0.0
                            ? static_cast<double>(cell.events) * 1e3 /
                                  cell.host_ms
                            : 0.0);
      bench::json().set("parallel_speedup" + suffix, speedup);
    }
  }
  if (digest_mismatch) {
    std::fprintf(stderr,
                 "bench_parallel: thread count changed the simulation "
                 "result; see src/sim/parallel.h for the determinism "
                 "contract\n");
    std::exit(1);
  }
}

void BM_ParallelFleetRun(benchmark::State& state) {
  // Wall-clock per event through an 8-card fleet at the given thread
  // count — the google-benchmark view of the P1 table's host(ms) column.
  const auto threads = static_cast<unsigned>(state.range(0));
  const auto trace = scaling_trace(8, 12, 6);
  std::size_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::FleetConfig fc;
    fc.cards = 8;
    fc.threads = threads;
    fc.policy = core::DispatchPolicy::kResidencyAffinity;
    core::CoprocessorFleet fleet(fc);
    fleet.download_all();
    workload::replay(fleet, trace, request_input);
    state.ResumeTiming();
    events += fleet.run();
    benchmark::DoNotOptimize(fleet.stats().completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("events through 8 card shards, " +
                 std::to_string(threads) + " host thread(s)");
}
BENCHMARK(BM_ParallelFleetRun)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

void run_experiment() { scaling_sweep(); }
