// Shared helpers for the experiment benches: table printing and a common
// main() that first emits the experiment's deterministic result table (the
// "paper row" regeneration) and then runs the google-benchmark wall-clock
// measurements.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace aad::bench {

/// Print a fixed-width table row.  Columns are pre-formatted strings.
inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "%-*s", widths[i % widths.size()],
                  cells[i].c_str());
    line += buf;
  }
  std::puts(line.c_str());
}

inline void print_rule(const std::vector<int>& widths) {
  int total = 0;
  for (int w : widths) total += w;
  std::puts(std::string(static_cast<std::size_t>(total), '-').c_str());
}

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

inline std::string fmt_u(std::uint64_t value) {
  return std::to_string(value);
}

}  // namespace aad::bench

/// Each bench defines this: prints its experiment table(s).
void run_experiment();

int main(int argc, char** argv) {
  run_experiment();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
