// Shared helpers for the experiment benches: table printing, a JSON results
// emitter (`--json <path>` captures the deterministic numbers for the perf
// trajectory across PRs), a shared `--flag value` parser, and a common
// main() that first emits the experiment's deterministic result table (the
// "paper row" regeneration) and then runs the google-benchmark wall-clock
// measurements.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/kernels.h"
#include "common/error.h"
#include "compress/codec.h"
#include "telemetry/trace_sink.h"

namespace aad::bench {

/// Canonical request payload for the trace-replay benches: the kernel's
/// make_input seeded off the request index (workload::replay's MakeInput
/// signature).
inline Bytes request_input(std::uint32_t function, std::size_t blocks,
                           std::size_t index) {
  return algorithms::bank_input(function, blocks, 1000 + index);
}

/// Print a fixed-width table row.  Columns are pre-formatted strings.
inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "%-*s", widths[i % widths.size()],
                  cells[i].c_str());
    line += buf;
  }
  std::puts(line.c_str());
}

inline void print_rule(const std::vector<int>& widths) {
  int total = 0;
  for (int w : widths) total += w;
  std::puts(std::string(static_cast<std::size_t>(total), '-').c_str());
}

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

inline std::string fmt_u(std::uint64_t value) {
  return std::to_string(value);
}

/// Machine-readable experiment results.  Benches record named metrics while
/// printing their tables; when the process was started with `--json <path>`
/// the registry is written as one flat JSON object, giving future PRs a
/// perf trajectory that scripts can diff.  Insertion order is preserved.
class JsonResults {
 public:
  void set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    upsert(key, buf);
  }
  void set(const std::string& key, std::uint64_t value) {
    upsert(key, std::to_string(value));
  }
  void set(const std::string& key, std::int64_t value) {
    upsert(key, std::to_string(value));
  }
  void set_string(const std::string& key, const std::string& value) {
    upsert(key, '"' + escaped(value) + '"');
  }

  bool empty() const noexcept { return entries_.empty(); }

  /// Write `{"key": value, ...}`; returns false on I/O failure.
  bool write(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (!f) return false;
    std::fputs("{\n", f);
    for (std::size_t i = 0; i < entries_.size(); ++i)
      std::fprintf(f, "  \"%s\": %s%s\n", escaped(entries_[i].first).c_str(),
                   entries_[i].second.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    std::fputs("}\n", f);
    return std::fclose(f) == 0;
  }

 private:
  void upsert(const std::string& key, std::string value) {
    for (auto& [k, v] : entries_)
      if (k == key) {
        v = std::move(value);
        return;
      }
    entries_.emplace_back(key, std::move(value));
  }

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> entries_;
};

/// The process-wide results registry benches record into.
inline JsonResults& json() {
  static JsonResults results;
  return results;
}

/// Shared command-line flags for the experiment benches.
///
/// The common main() strips every `--name value` / `--name=value` pair
/// whose name does not belong to google-benchmark (`--benchmark_*`,
/// `--help`, `--v`) before ::benchmark::Initialize sees the arguments, and
/// a bench's run_experiment() reads them with typed accessors and
/// defaults:
///
///   const long cards = aad::bench::flags().get_int("cards", 8);
///   const std::string policy = aad::bench::flags().get("policy", "all");
///   if (aad::bench::flags().get_bool("overlap", true)) ...
///
/// Unset flags fall back to the default, so a bare invocation regenerates
/// the documented tables; `--json <path>` rides the same mechanism.
class Flags {
 public:
  /// Strip our flags out of argv (in place); returns the new argc, or -1
  /// after printing a diagnostic when a flag is missing its value.
  int parse(int argc, char** argv) {
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0 || is_benchmark_flag(arg)) {
        argv[kept++] = argv[i];
        continue;
      }
      std::string name = arg.substr(2);
      std::string value;
      if (const auto eq = name.find('='); eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
      } else {
        // A following "--something" is the next flag, not this one's value.
        if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
          std::fprintf(stderr, "--%s requires a value argument\n",
                       name.c_str());
          return -1;
        }
        value = argv[++i];
      }
      values_[name] = value;
    }
    return kept;
  }

  bool has(const std::string& name) const {
    consumed_.insert(name);
    return values_.contains(name);
  }

  std::string get(const std::string& name, const std::string& fallback) const {
    consumed_.insert(name);
    const auto it = values_.find(name);
    return it != values_.end() ? it->second : fallback;
  }

  long get_int(const std::string& name, long fallback) const {
    consumed_.insert(name);
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const long value = std::strtol(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
      die_bad_value(name, it->second, "an integer");
    return value;
  }

  double get_double(const std::string& name, double fallback) const {
    consumed_.insert(name);
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
      die_bad_value(name, it->second, "a number");
    return value;
  }

  /// Accepts on/off, true/false, yes/no, 1/0; anything else is fatal.
  bool get_bool(const std::string& name, bool fallback) const {
    consumed_.insert(name);
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    const std::string& v = it->second;
    if (v == "on" || v == "true" || v == "yes" || v == "1") return true;
    if (v == "off" || v == "false" || v == "no" || v == "0") return false;
    die_bad_value(name, v, "on/off");
  }

  /// Flags that were passed but never read by this bench — almost always a
  /// typo (`--client` for `--clients`).  The shared main() turns any
  /// leftovers into a hard error so misspellings cannot silently run the
  /// default tables under a mislabeled configuration.
  std::vector<std::string> unread() const {
    std::vector<std::string> out;
    for (const auto& [name, value] : values_)
      if (!consumed_.contains(name)) out.push_back(name);
    return out;
  }

 private:
  static bool is_benchmark_flag(const std::string& arg) {
    return arg.rfind("--benchmark", 0) == 0 || arg == "--help" ||
           arg.rfind("--v=", 0) == 0 || arg == "--v";
  }

  [[noreturn]] static void die_bad_value(const std::string& name,
                                         const std::string& value,
                                         const char* expected) {
    std::fprintf(stderr, "--%s expects %s, got \"%s\"\n", name.c_str(),
                 expected, value.c_str());
    std::exit(2);
  }

  std::map<std::string, std::string> values_;
  mutable std::set<std::string> consumed_;  ///< names the bench looked up
};

/// The process-wide flag registry, filled by the shared main().
inline Flags& flags() {
  static Flags instance;
  return instance;
}

/// The process-wide trace sink, or nullptr unless the bench was started
/// with `--trace <path>`.  Benches that build fleets/servers attach it
/// right after construction:
///
///   if (auto* sink = aad::bench::trace_sink())
///     fleet.attach_trace(*sink, "F1 cards=4");
///
/// and the shared main() writes the merged Chrome trace to the given path
/// after run_experiment() returns.  Without the flag this returns nullptr
/// and no telemetry track is ever attached, so the hot paths stay on their
/// zero-overhead branch and the gated baselines stay byte-identical.
inline telemetry::TraceSink* trace_sink() {
  static std::unique_ptr<telemetry::TraceSink> sink =
      flags().has("trace") ? std::make_unique<telemetry::TraceSink>()
                           : nullptr;
  return sink.get();
}

/// Shared `--codec=<name|auto>` flag: the codec a bench downloads with.
/// Returns nullopt when unset (each bench keeps its documented default);
/// "auto" maps to compress::CodecId::kAuto, which makes the MCU
/// trial-compress the candidates and pick per function at download time.
/// Unknown names are fatal, like any other malformed flag value.
inline std::optional<compress::CodecId> codec_flag() {
  const std::string name = flags().get("codec", "");
  if (name.empty()) return std::nullopt;
  try {
    return compress::codec_from_string(name);
  } catch (const Error&) {
    std::fprintf(stderr, "--codec expects a codec name or \"auto\", got \"%s\"\n",
                 name.c_str());
    std::exit(2);
  }
}

/// Shared `--prefetch on|off` / `--predictor <min_confidence>` flags: the
/// speculative-prefetch switch the prefetch-aware benches honor.  Kept as a
/// plain struct (not core::PrefetchConfig) so this header stays
/// dependency-light; benches copy the two fields into their ServerConfig.
struct PrefetchFlags {
  bool enabled = false;
  double min_confidence = 0.55;
};

inline PrefetchFlags prefetch_flags(bool default_enabled = false,
                                    double default_confidence = 0.55) {
  PrefetchFlags pf;
  pf.enabled = flags().get_bool("prefetch", default_enabled);
  pf.min_confidence = flags().get_double("predictor", default_confidence);
  if (pf.min_confidence < 0.0 || pf.min_confidence > 1.0) {
    std::fprintf(stderr, "--predictor expects a confidence in [0,1], got %g\n",
                 pf.min_confidence);
    std::exit(2);
  }
  return pf;
}

}  // namespace aad::bench

/// Each bench defines this: prints its experiment table(s) and records
/// machine-readable metrics via aad::bench::json().
void run_experiment();

int main(int argc, char** argv) {
  // Strip every bench flag (including `--json <path>`) before
  // google-benchmark sees the args.
  argc = aad::bench::flags().parse(argc, argv);
  if (argc < 0) return 2;

  const std::string json_path = aad::bench::flags().get("json", "");
  const std::string trace_path = aad::bench::flags().get("trace", "");
  run_experiment();
  // Surface typo'd flags BEFORE writing the artifact: a bench that ran
  // under a default configuration because `--client` was misspelled must
  // not leave a plausible-looking results file behind.
  bool unknown = false;
  for (const std::string& name : aad::bench::flags().unread()) {
    std::fprintf(stderr, "unknown flag --%s (this bench never read it)\n",
                 name.c_str());
    unknown = true;
  }
  if (unknown) return 2;
  if (!json_path.empty() && !aad::bench::json().write(json_path.c_str())) {
    std::fprintf(stderr, "failed to write JSON results to %s\n",
                 json_path.c_str());
    return 1;
  }
  if (!trace_path.empty()) {
    aad::telemetry::TraceSink* sink = aad::bench::trace_sink();
    if (!sink->write_chrome_trace(trace_path.c_str())) {
      std::fprintf(stderr, "failed to write Chrome trace to %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu trace events to %s\n",
                 sink->event_count(), trace_path.c_str());
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
