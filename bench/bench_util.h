// Shared helpers for the experiment benches: table printing, a JSON results
// emitter (`--json <path>` captures the deterministic numbers for the perf
// trajectory across PRs), and a common main() that first emits the
// experiment's deterministic result table (the "paper row" regeneration)
// and then runs the google-benchmark wall-clock measurements.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/kernels.h"

namespace aad::bench {

/// Canonical request payload for the trace-replay benches: the kernel's
/// make_input seeded off the request index (workload::replay's MakeInput
/// signature).
inline Bytes request_input(std::uint32_t function, std::size_t blocks,
                           std::size_t index) {
  return algorithms::bank_input(function, blocks, 1000 + index);
}

/// Print a fixed-width table row.  Columns are pre-formatted strings.
inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "%-*s", widths[i % widths.size()],
                  cells[i].c_str());
    line += buf;
  }
  std::puts(line.c_str());
}

inline void print_rule(const std::vector<int>& widths) {
  int total = 0;
  for (int w : widths) total += w;
  std::puts(std::string(static_cast<std::size_t>(total), '-').c_str());
}

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

inline std::string fmt_u(std::uint64_t value) {
  return std::to_string(value);
}

/// Machine-readable experiment results.  Benches record named metrics while
/// printing their tables; when the process was started with `--json <path>`
/// the registry is written as one flat JSON object, giving future PRs a
/// perf trajectory that scripts can diff.  Insertion order is preserved.
class JsonResults {
 public:
  void set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    upsert(key, buf);
  }
  void set(const std::string& key, std::uint64_t value) {
    upsert(key, std::to_string(value));
  }
  void set(const std::string& key, std::int64_t value) {
    upsert(key, std::to_string(value));
  }
  void set_string(const std::string& key, const std::string& value) {
    upsert(key, '"' + escaped(value) + '"');
  }

  bool empty() const noexcept { return entries_.empty(); }

  /// Write `{"key": value, ...}`; returns false on I/O failure.
  bool write(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (!f) return false;
    std::fputs("{\n", f);
    for (std::size_t i = 0; i < entries_.size(); ++i)
      std::fprintf(f, "  \"%s\": %s%s\n", escaped(entries_[i].first).c_str(),
                   entries_[i].second.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    std::fputs("}\n", f);
    return std::fclose(f) == 0;
  }

 private:
  void upsert(const std::string& key, std::string value) {
    for (auto& [k, v] : entries_)
      if (k == key) {
        v = std::move(value);
        return;
      }
    entries_.emplace_back(key, std::move(value));
  }

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> entries_;
};

/// The process-wide results registry benches record into.
inline JsonResults& json() {
  static JsonResults results;
  return results;
}

}  // namespace aad::bench

/// Each bench defines this: prints its experiment table(s) and records
/// machine-readable metrics via aad::bench::json().
void run_experiment();

int main(int argc, char** argv) {
  // Strip our `--json <path>` flag before google-benchmark sees the args.
  const char* json_path = nullptr;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path argument\n");
        return 2;
      }
      json_path = argv[++i];
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  run_experiment();
  if (json_path && !aad::bench::json().write(json_path)) {
    std::fprintf(stderr, "failed to write JSON results to %s\n", json_path);
    return 1;
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
