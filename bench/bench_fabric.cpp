// Experiment E8 — fabric/netlist substrate throughput (sanity check that the
// simulation substrate is fast enough to carry the other experiments, and a
// profile of where simulator time goes).
//
// Reports LUT-network evaluation rates for each netlist kernel, the cost of
// extracting a network from the configuration plane, and the technology
// mapper's throughput.
#include "bench_util.h"

#include "fabric/clbcodec.h"
#include "fabric/fabric.h"
#include "netlist/generators.h"
#include "netlist/lutmap.h"
#include "netlist/simulate.h"

namespace {

using namespace aad;

void network_size_table() {
  std::puts("\n=== E8: mapped netlist kernels on the 48x16 device ===");
  const std::vector<int> widths = {12, 8, 8, 8, 8, 10};
  bench::print_row({"kernel", "gates", "luts", "ffs", "frames", "config B"},
                   widths);
  bench::print_rule(widths);

  struct Item {
    const char* name;
    netlist::Netlist nl;
  };
  std::vector<Item> items;
  items.push_back({"add32", netlist::make_ripple_adder(32)});
  items.push_back({"parity32", netlist::make_parity(32)});
  items.push_back({"popcnt32", netlist::make_popcount(32)});
  items.push_back({"cmp32", netlist::make_comparator(32)});
  items.push_back({"gray32", netlist::make_gray_encoder(32)});
  items.push_back({"mul8", netlist::make_array_multiplier(8)});
  items.push_back({"crc32", netlist::make_crc32_datapath()});
  items.push_back({"lfsr32", netlist::make_lfsr(32, {0, 1, 21, 31})});

  const fabric::FrameGeometry geometry;
  for (const auto& item : items) {
    netlist::MapStats stats;
    const auto mapped = netlist::map_to_luts(item.nl, &stats);
    const auto frames = fabric::encode_frames(mapped, geometry);
    bench::print_row(
        {item.name, std::to_string(item.nl.logic_gate_count()),
         std::to_string(mapped.lut_count()),
         std::to_string(mapped.ff_count()), std::to_string(frames.size()),
         std::to_string(frames.size() * geometry.frame_bytes())},
        widths);
  }
}

void BM_LutExecutorStep(benchmark::State& state) {
  const auto mapped = netlist::map_to_luts(netlist::make_crc32_datapath());
  netlist::LutExecutor ex(mapped);
  std::vector<bool> in(9, false);
  in[8] = true;
  std::size_t byte = 0;
  for (auto _ : state) {
    for (unsigned i = 0; i < 8; ++i) in[i] = (byte >> i) & 1;
    auto out = ex.step(in);
    benchmark::DoNotOptimize(out);
    ++byte;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("crc32 bytes/s through the simulated fabric");
}
BENCHMARK(BM_LutExecutorStep);

void BM_GateSimulatorStep(benchmark::State& state) {
  const auto nl = netlist::make_crc32_datapath();
  netlist::Simulator sim(nl);
  std::vector<bool> in(9, false);
  in[8] = true;
  for (auto _ : state) {
    auto out = sim.step(in);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("gate-level reference simulator");
}
BENCHMARK(BM_GateSimulatorStep);

void BM_TechnologyMap(benchmark::State& state) {
  const auto nl = netlist::make_crc32_datapath();
  for (auto _ : state) {
    auto mapped = netlist::map_to_luts(nl);
    benchmark::DoNotOptimize(mapped);
  }
}
BENCHMARK(BM_TechnologyMap);

void BM_ExtractNetworkFromPlane(benchmark::State& state) {
  fabric::Fabric fabric;
  const auto mapped = netlist::map_to_luts(netlist::make_crc32_datapath());
  const auto frames = fabric::encode_frames(mapped, fabric.geometry());
  std::vector<fabric::FrameIndex> targets;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    targets.push_back(static_cast<fabric::FrameIndex>(i));
    fabric.configure_frame(targets.back(), frames[i]);
  }
  for (auto _ : state) {
    auto network = fabric.extract_network(targets, "crc32", 9, 32);
    benchmark::DoNotOptimize(network);
  }
}
BENCHMARK(BM_ExtractNetworkFromPlane);

void BM_EncodeFrames(benchmark::State& state) {
  const fabric::FrameGeometry geometry;
  const auto mapped = netlist::map_to_luts(netlist::make_crc32_datapath());
  for (auto _ : state) {
    auto frames = fabric::encode_frames(mapped, geometry);
    benchmark::DoNotOptimize(frames);
  }
}
BENCHMARK(BM_EncodeFrames);

}  // namespace

void run_experiment() { network_size_table(); }
