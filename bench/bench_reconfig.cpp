// Experiment E1 — partial vs full reconfiguration latency.
//
// Paper hook (§2.4): "partial reconfiguration of the FPGA facilitates the
// swap-in and swap-out of functions, from the FPGA, on-demand."  The claim
// only pays off if configuring k frames costs ~k/48 of a full-device load;
// this bench sweeps function footprints and reports both, plus the
// decompression pipeline's contribution per codec.
//
// Expected shape: partial time linear in frames; speedup over full ~
// frame_count/frames; compressed streams cut the ROM-bound stage.
#include "bench_util.h"

#include "bitstream/synth.h"
#include "core/coprocessor.h"

namespace {

using namespace aad;

void sweep_partial_vs_full() {
  std::puts("\n=== E1: partial vs full reconfiguration latency ===");
  const std::vector<int> widths = {8, 14, 14, 12, 14};
  bench::print_row({"frames", "partial(us)", "full(us)", "speedup",
                    "bytes(part)"},
                   widths);
  bench::print_rule(widths);

  fabric::Fabric fabric;
  const auto& geometry = fabric.geometry();
  const auto full_time = fabric.port().full_time(geometry);

  for (unsigned frames : {1u, 2u, 4u, 8u, 12u, 16u, 24u, 32u, 48u}) {
    const auto partial = fabric.port().frame_time(geometry) *
                         static_cast<std::int64_t>(frames);
    bench::print_row(
        {std::to_string(frames),
         bench::fmt("%.1f", partial.microseconds()),
         bench::fmt("%.1f", full_time.microseconds()),
         bench::fmt("%.1fx", full_time.microseconds() /
                                 partial.microseconds()),
         std::to_string(static_cast<std::size_t>(frames) *
                        geometry.frame_bytes())},
        widths);
  }
}

void end_to_end_reconfig_by_codec() {
  std::puts(
      "\n=== E1b: end-to-end configuration time through the streaming "
      "pipeline (12-frame function) ===");
  const std::vector<int> widths = {14, 12, 12, 12, 12, 12};
  bench::print_row({"codec", "total(us)", "rom(us)", "dec(us)", "cfg(us)",
                    "rom bytes"},
                   widths);
  bench::print_rule(widths);

  // `--codec` narrows the sweep to one codec ("auto" lets the MCU pick at
  // download time); a bare run regenerates the full table.
  std::vector<compress::CodecId> codecs = compress::all_codec_ids();
  if (const auto pick = bench::codec_flag()) codecs = {*pick};
  for (const auto codec : codecs) {
    // Fresh card per codec so ROM layout is identical.
    core::AgileCoprocessor cp;
    const auto record = cp.download(algorithms::KernelId::kAes128, codec);
    mcu::ConfigEngine engine;
    std::vector<fabric::FrameIndex> targets;
    for (unsigned i = 0; i < record.frames; ++i) targets.push_back(i);
    fabric::Fabric scratch;
    const auto result = engine.configure(
        cp.mcu().rom(), record, targets, scratch, memory::RomTiming{},
        nullptr, sim::SimTime::zero());
    bench::print_row(
        {to_string(record.codec),
         bench::fmt("%.1f", result.total.microseconds()),
         bench::fmt("%.1f", result.rom_bound.microseconds()),
         bench::fmt("%.1f", result.decompress_bound.microseconds()),
         bench::fmt("%.1f", result.config_bound.microseconds()),
         std::to_string(result.compressed_bytes)},
        widths);
  }
}

void difference_based_ablation() {
  std::puts(
      "\n=== E1c: difference-based reconfiguration (paper ref [4], "
      "XAPP290) — reloading a 12-frame function into its old frames ===");
  const std::vector<int> widths = {22, 14, 14, 14};
  bench::print_row({"flow", "first(us)", "reload(us)", "port writes"},
                   widths);
  bench::print_rule(widths);

  for (const bool diff : {false, true}) {
    core::CoprocessorConfig config;
    config.mcu.engine.difference_based = diff;
    core::AgileCoprocessor cp(config);
    cp.download(algorithms::KernelId::kAes128);
    const auto fid = algorithms::function_id(algorithms::KernelId::kAes128);
    const auto first = cp.mcu().ensure_loaded(fid);
    cp.mcu().evict(fid);
    const auto writes_before = cp.fabric().memory().frame_writes();
    const auto reload = cp.mcu().ensure_loaded(fid);
    bench::print_row(
        {diff ? "difference-based" : "module-based (write)",
         bench::fmt("%.1f", first.reconfig_time.microseconds()),
         bench::fmt("%.1f", reload.reconfig_time.microseconds()),
         std::to_string(cp.fabric().memory().frame_writes() -
                        writes_before)},
        widths);
  }
  std::puts("(difference-based pays only ROM + decompress + compare on a "
            "re-load; content that differs is still written — see tests)");
}

// Wall-clock cost of the simulator itself (not the modeled device).
void BM_ConfigureFrame(benchmark::State& state) {
  fabric::Fabric fabric;
  std::vector<fabric::Word> payload(fabric.geometry().words_per_frame(), 7);
  fabric::FrameIndex f = 0;
  for (auto _ : state) {
    fabric.configure_frame(f, payload);
    f = (f + 1) % fabric.geometry().frame_count;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size() * 4));
}
BENCHMARK(BM_ConfigureFrame);

void BM_StreamingConfigure12Frames(benchmark::State& state) {
  core::AgileCoprocessor cp;
  const auto record = cp.download(algorithms::KernelId::kAes128,
                                  compress::CodecId::kFrameDelta);
  mcu::ConfigEngine engine;
  std::vector<fabric::FrameIndex> targets;
  for (unsigned i = 0; i < record.frames; ++i) targets.push_back(i);
  fabric::Fabric scratch;
  for (auto _ : state) {
    const auto result = engine.configure(
        cp.mcu().rom(), record, targets, scratch, memory::RomTiming{},
        nullptr, sim::SimTime::zero());
    benchmark::DoNotOptimize(result.total);
  }
}
BENCHMARK(BM_StreamingConfigure12Frames);

}  // namespace

void run_experiment() {
  sweep_partial_vs_full();
  end_to_end_reconfig_by_codec();
  difference_based_ablation();
}
