// Experiment T — multi-client throughput of the event-driven server.
//
// The synchronous invoke path serializes everything: PCI transfer,
// reconfiguration and fabric execution of consecutive requests never
// overlap.  The CoprocessorServer pipeline lets request B's DMA ride the
// bus while request A owns the card, so under multi-client load the same
// card clears more requests per simulated second.  Three tables:
//
//   T1 — closed-loop saturation vs client count (scaling + tail latency),
//   T2 — event-driven pipeline vs the synchronous path on one workload,
//   T3 — open-loop Poisson load sweep (tail latency vs offered load).
//
// Flags (bench_util.h parser): `--json results.json` captures the headline
// metrics machine-readably; `--clients N` caps the T1 scaling sweep
// (default 8).
#include "bench_util.h"

#include <algorithm>
#include <vector>

#include "core/server.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace {

using namespace aad;
using algorithms::KernelId;

using bench::request_input;

core::ServerStats serve_trace(const workload::MultiClientTrace& trace,
                              core::AgileCoprocessor& card) {
  core::CoprocessorServer server(card);
  if (auto* sink = bench::trace_sink())
    server.attach_trace(*sink, "throughput");
  workload::replay(server, trace, request_input);
  server.run();
  return server.stats();
}

void closed_loop_scaling() {
  std::puts("\n=== T1: closed-loop saturation, zipf(1.0) over all kernels ===");
  std::puts("(each client keeps one request in flight; fresh card per row; "
            "independent zipf streams thrash the shared fabric, so the hit "
            "rate — not the bus — bounds multi-tenant throughput)");
  const std::vector<int> widths = {9, 10, 13, 12, 10, 10, 8, 12};
  bench::print_row({"clients", "requests", "makespan(ms)", "req/s", "p50(us)",
                    "p99(us)", "hit%", "card-wait"},
                   widths);
  bench::print_rule(widths);

  const auto max_clients =
      static_cast<unsigned>(bench::flags().get_int("clients", 8));
  for (unsigned clients : {1u, 2u, 4u, 8u}) {
    if (clients > max_clients) continue;
    workload::MultiClientConfig wc;
    wc.clients = clients;
    wc.requests_per_client = 96 / clients;  // same total work per row
    wc.functions = algorithms::function_bank();
    wc.seed = 5;
    wc.zipf_s = 1.0;
    wc.payload_blocks = 4;
    wc.mode = workload::ArrivalMode::kClosedLoop;
    const auto trace = workload::make_multi_client(wc);

    core::AgileCoprocessor card;
    card.download_all();
    const auto stats = serve_trace(trace, card);
    const auto device = card.stats().device;
    const double hit_rate = 100.0 * static_cast<double>(device.config_hits) /
                            static_cast<double>(device.invocations);

    bench::print_row(
        {std::to_string(clients), bench::fmt_u(stats.completed),
         bench::fmt("%.2f", stats.makespan.milliseconds()),
         bench::fmt("%.0f", stats.throughput_rps),
         bench::fmt("%.1f", stats.latency.p50.microseconds()),
         bench::fmt("%.1f", stats.latency.p99.microseconds()),
         bench::fmt("%.0f", hit_rate),
         bench::fmt("%.1f us", stats.total_device_wait.microseconds())},
        widths);

    const std::string suffix = "_c" + std::to_string(clients);
    bench::json().set("throughput_rps" + suffix, stats.throughput_rps);
    bench::json().set("p99_us" + suffix, stats.latency.p99.microseconds());
  }
}

void pipeline_vs_synchronous() {
  std::puts("\n=== T2: event-driven pipeline vs synchronous invoke path ===");
  workload::MultiClientConfig wc;
  wc.clients = 4;
  wc.requests_per_client = 24;
  wc.functions = algorithms::function_bank();
  wc.seed = 11;
  wc.zipf_s = 1.0;
  wc.payload_blocks = 8;
  wc.mode = workload::ArrivalMode::kClosedLoop;
  const auto trace = workload::make_multi_client(wc);

  // Synchronous baseline: the same requests, round-robin across clients,
  // one at a time through the blocking API.
  core::AgileCoprocessor sync_card;
  sync_card.download_all();
  const sim::SimTime sync_begin = sync_card.now();
  for (std::size_t i = 0; i < wc.requests_per_client; ++i)
    for (const auto& ct : trace.clients) {
      const auto& r = ct.requests[i];
      sync_card.invoke_function(r.function,
                                request_input(r.function, r.payload_blocks, i));
    }
  const sim::SimTime sync_total = sync_card.now() - sync_begin;

  core::AgileCoprocessor card;
  card.download_all();
  const auto stats = serve_trace(trace, card);

  const double speedup =
      sync_total.microseconds() / stats.makespan.microseconds();
  std::printf("  %llu requests, 4 clients\n",
              static_cast<unsigned long long>(stats.completed));
  std::printf("  synchronous:  %.2f ms\n", sync_total.milliseconds());
  std::printf("  event-driven: %.2f ms   (%.2fx, overlap of PCI transfers "
              "with reconfig+execute)\n",
              stats.makespan.milliseconds(), speedup);
  bench::json().set("overlap_speedup", speedup);
  bench::json().set("sync_makespan_ms", sync_total.milliseconds());
  bench::json().set("server_makespan_ms", stats.makespan.milliseconds());
}

void resident_pipeline() {
  std::puts("\n=== T2b: back-to-back requests for one resident function ===");
  std::puts("(no reconfiguration: the pipeline hides PCI transfers behind "
            "fabric execution)");
  constexpr std::size_t kRequests = 32;
  constexpr std::size_t kBlocks = 64;
  const Bytes input = algorithms::spec(KernelId::kSha256)
                          .make_input(kBlocks, 77);

  core::AgileCoprocessor sync_card;
  sync_card.download(KernelId::kSha256);
  sync_card.invoke(KernelId::kSha256, input);  // make resident
  const sim::SimTime sync_begin = sync_card.now();
  for (std::size_t i = 0; i < kRequests; ++i)
    sync_card.invoke(KernelId::kSha256, input);
  const sim::SimTime sync_total = sync_card.now() - sync_begin;

  core::AgileCoprocessor card;
  card.download(KernelId::kSha256);
  core::CoprocessorServer server(card);
  server.submit(0, KernelId::kSha256, input);  // make resident
  server.run();
  const sim::SimTime begin = server.now();
  for (std::size_t i = 0; i < kRequests; ++i)
    server.submit(static_cast<unsigned>(i % 4), KernelId::kSha256, input);
  server.run();
  const sim::SimTime piped = server.now() - begin;

  const double speedup = sync_total.microseconds() / piped.microseconds();
  std::printf("  %zu warm SHA-256 requests (%zu-block payloads)\n", kRequests,
              kBlocks);
  std::printf("  synchronous:  %.1f us/request\n",
              sync_total.microseconds() / kRequests);
  std::printf("  pipelined:    %.1f us/request   (%.2fx)\n",
              piped.microseconds() / kRequests, speedup);
  bench::json().set("resident_pipeline_speedup", speedup);
}

void open_loop_sweep() {
  std::puts("\n=== T3: open-loop Poisson load sweep, 4 clients ===");
  const std::vector<int> widths = {18, 10, 12, 10, 10, 12};
  bench::print_row({"interarrival(us)", "req/s", "makespan(ms)", "p50(us)",
                    "p99(us)", "max-wait(us)"},
                   widths);
  bench::print_rule(widths);

  for (double us : {400.0, 200.0, 100.0, 50.0}) {
    workload::MultiClientConfig wc;
    wc.clients = 4;
    wc.requests_per_client = 24;
    wc.functions = algorithms::function_bank();
    wc.seed = 23;
    wc.zipf_s = 1.0;
    wc.payload_blocks = 4;
    wc.mode = workload::ArrivalMode::kOpenLoop;
    wc.mean_interarrival = sim::SimTime::us(us);
    const auto trace = workload::make_multi_client(wc);

    core::AgileCoprocessor card;
    card.download_all();
    core::CoprocessorServer server(card);
    workload::replay(server, trace, request_input);
    server.run();
    const auto stats = server.stats();

    sim::SimTime max_wait;
    for (const auto& r : server.completed())
      max_wait = std::max(max_wait, r.bus_wait + r.device_wait);

    bench::print_row(
        {bench::fmt("%.0f", us), bench::fmt("%.0f", stats.throughput_rps),
         bench::fmt("%.2f", stats.makespan.milliseconds()),
         bench::fmt("%.1f", stats.latency.p50.microseconds()),
         bench::fmt("%.1f", stats.latency.p99.microseconds()),
         bench::fmt("%.1f", max_wait.microseconds())},
        widths);
  }
}

void BM_ServerSaturatedThroughput(benchmark::State& state) {
  // Simulator wall-clock cost of one request through the staged pipeline.
  workload::MultiClientConfig wc;
  wc.clients = 4;
  wc.requests_per_client = 8;
  wc.functions = algorithms::function_bank();
  wc.seed = 3;
  wc.zipf_s = 1.0;
  wc.mode = workload::ArrivalMode::kClosedLoop;
  const auto trace = workload::make_multi_client(wc);
  for (auto _ : state) {
    state.PauseTiming();
    core::AgileCoprocessor card;
    card.download_all();
    state.ResumeTiming();
    core::CoprocessorServer server(card);
    workload::replay(server, trace, request_input);
    server.run();
    benchmark::DoNotOptimize(server.completed().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.total_requests()));
  state.SetLabel("requests through the event pipeline");
}
BENCHMARK(BM_ServerSaturatedThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

void run_experiment() {
  closed_loop_scaling();
  pipeline_vs_synchronous();
  resident_pipeline();
  open_loop_sweep();
}
