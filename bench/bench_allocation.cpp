// Experiment E5 — Free Frame List allocation strategies and fragmentation
// (paper §2.5: functions occupy "either a set of contiguous frames or a set
// of non-contiguous frames").
//
// Relocatable bitstreams let the mini-OS gather scattered frames; rigid
// contiguous placement suffers external fragmentation and triggers
// avoidable evictions.  This bench churns a mixed working set through the
// card under each strategy and reports evictions, allocation retries, and
// the fragmentation profile.
//
// Expected shape: gather-scattered never retries and evicts least;
// first-fit/best-fit pay extra evictions once the frame map fragments.
#include "bench_util.h"

#include "core/coprocessor.h"
#include "workload/trace.h"

namespace {

using namespace aad;
using algorithms::KernelId;

const std::vector<KernelId> kBank = {
    KernelId::kAes128, KernelId::kDes,    KernelId::kXtea,
    KernelId::kSha1,   KernelId::kSha256, KernelId::kMd5,
    KernelId::kMatMul, KernelId::kFft,    KernelId::kFir16};

struct ChurnResult {
  std::uint64_t evictions;
  std::uint64_t retries;
  std::uint64_t frames_configured;
  double hit_rate;
  double final_fragmentation;
  unsigned final_runs;
};

ChurnResult churn(mcu::AllocationStrategy strategy, std::uint64_t seed,
                  bool defrag_on_pressure = false) {
  core::CoprocessorConfig config;
  config.mcu.allocation = strategy;
  config.mcu.defragment_on_pressure = defrag_on_pressure;
  core::AgileCoprocessor cp(config);
  for (KernelId id : kBank) cp.download(id);

  workload::TraceConfig tc;
  for (KernelId id : kBank) tc.functions.push_back(algorithms::function_id(id));
  tc.length = 400;
  tc.seed = seed;
  const auto trace = workload::make_zipf(tc, 0.9);

  for (const auto& request : trace) {
    const auto& spec =
        algorithms::spec(static_cast<KernelId>(request.function));
    cp.invoke_function(request.function, spec.make_input(1, 1));
  }
  const auto& stats = cp.stats().device;
  return ChurnResult{stats.evictions,
                     stats.allocation_retries,
                     stats.frames_configured,
                     static_cast<double>(stats.config_hits) /
                         static_cast<double>(stats.invocations),
                     cp.mcu().free_frames().external_fragmentation(),
                     cp.mcu().free_frames().free_run_count()};
}

void churn_table() {
  std::puts("\n=== E5: allocation strategy under churn "
            "(zipf(0.9) x 400 requests, 9 kernels / 85 frames demand) ===");
  const std::vector<int> widths = {11, 11, 10, 10, 10, 10, 8};
  bench::print_row({"strategy", "evictions", "retries", "frames",
                    "hit-rate", "frag", "runs"},
                   widths);
  bench::print_rule(widths);
  struct Variant {
    const char* label;
    mcu::AllocationStrategy strategy;
    bool defrag;
  };
  const Variant variants[] = {
      {"gather", mcu::AllocationStrategy::kGatherScattered, false},
      {"first-fit", mcu::AllocationStrategy::kFirstFitContiguous, false},
      {"best-fit", mcu::AllocationStrategy::kBestFitContiguous, false},
      {"ff+defrag", mcu::AllocationStrategy::kFirstFitContiguous, true},
  };
  for (const Variant& v : variants) {
    // Average over 3 seeds for stability.
    ChurnResult total{0, 0, 0, 0, 0, 0};
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const ChurnResult r = churn(v.strategy, seed, v.defrag);
      total.evictions += r.evictions;
      total.retries += r.retries;
      total.frames_configured += r.frames_configured;
      total.hit_rate += r.hit_rate;
      total.final_fragmentation += r.final_fragmentation;
      total.final_runs += r.final_runs;
    }
    bench::print_row(
        {v.label, bench::fmt_u(total.evictions / 3),
         bench::fmt_u(total.retries / 3),
         bench::fmt_u(total.frames_configured / 3),
         bench::fmt("%.1f%%", total.hit_rate / 3 * 100),
         bench::fmt("%.2f", total.final_fragmentation / 3),
         bench::fmt("%.1f", total.final_runs / 3.0)},
        widths);
  }
}

void fragmentation_microbench() {
  std::puts("\n=== E5b: synthetic fragmentation — contiguous failure where "
            "scattered succeeds ===");
  const std::vector<int> widths = {26, 12, 12, 12};
  bench::print_row({"free pattern", "want", "contiguous", "gather"}, widths);
  bench::print_rule(widths);

  struct Case {
    const char* label;
    std::vector<bool> occupied;  // length 16 pattern, tiled to 48
    unsigned want;
  };
  const std::vector<Case> cases = {
      {"alternating (24 free)", {true, false}, 2},
      {"pairs (24 free)", {true, true, false, false}, 3},
      {"sparse holes (12 free)", {true, true, true, false}, 4},
  };
  // Build the pattern by allocating the whole device, then releasing the
  // frames the pattern leaves free.
  const auto make_list = [](const Case& c) {
    mcu::FreeFrameList ffl(48);
    (void)ffl.allocate(48, mcu::AllocationStrategy::kGatherScattered);
    std::vector<fabric::FrameIndex> to_free;
    for (unsigned f = 0; f < 48; ++f)
      if (!c.occupied[f % c.occupied.size()]) to_free.push_back(f);
    ffl.release(to_free);
    return ffl;
  };
  for (const auto& c : cases) {
    auto contiguous_list = make_list(c);
    auto gather_list = make_list(c);
    const bool contiguous =
        contiguous_list
            .allocate(c.want, mcu::AllocationStrategy::kFirstFitContiguous)
            .has_value();
    const bool gather =
        gather_list
            .allocate(c.want, mcu::AllocationStrategy::kGatherScattered)
            .has_value();
    bench::print_row({c.label, std::to_string(c.want),
                      contiguous ? "ok" : "FAIL", gather ? "ok" : "FAIL"},
                     widths);
  }
}

void BM_AllocateRelease(benchmark::State& state) {
  const auto strategy = static_cast<mcu::AllocationStrategy>(state.range(0));
  mcu::FreeFrameList ffl(48);
  Prng rng(1);
  std::vector<std::vector<fabric::FrameIndex>> held;
  for (auto _ : state) {
    if (rng.next_bool(0.5) || held.empty()) {
      auto got = ffl.allocate(1 + static_cast<unsigned>(rng.next_below(8)),
                              strategy);
      if (got) held.push_back(std::move(*got));
    } else {
      ffl.release(held.back());
      held.pop_back();
    }
    benchmark::DoNotOptimize(ffl.free_count());
  }
  state.SetLabel(to_string(strategy));
}
BENCHMARK(BM_AllocateRelease)->DenseRange(0, 2);

}  // namespace

void run_experiment() {
  churn_table();
  fragmentation_microbench();
}
