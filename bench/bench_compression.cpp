// Experiment E2 — bitstream compression (paper §2.2/§2.3 machinery and §4's
// open problem: "compression that can exploit the symmetry in the CLB
// architectures of FPGAs").
//
// For every kernel's real configuration stream and every codec: compressed
// ratio, modeled window-by-window decompression throughput, and the content
// statistics that explain the result.  Expected shape: frame-delta (the
// symmetry-exploiting codec) and golomb lead on sparse/regular streams;
// huffman/lzss are the generic mid-field; ratios on random-looking payloads
// approach 1.
#include "bench_util.h"

#include "bitstream/stats.h"
#include "compress/codec.h"
#include "core/coprocessor.h"

namespace {

using namespace aad;

void ratio_table() {
  std::puts("\n=== E2: compression ratio per kernel bitstream x codec ===");
  std::puts("(compressed bytes / raw bytes; lower is better)");
  const std::vector<int> widths = {12, 9, 8, 8, 8, 9, 8, 9, 12};
  bench::print_row({"kernel", "raw(B)", "rle", "lzss", "huff", "golomb",
                    "fdelta", "dgolomb", "zero-words"},
                   widths);
  bench::print_rule(widths);

  const fabric::FrameGeometry geometry;
  double sums[6] = {0, 0, 0, 0, 0, 0};
  int rows = 0;
  for (const auto& spec : algorithms::catalog()) {
    const auto bs = spec.make_bitstream(geometry);
    const Bytes raw = bitstream::pack_frame_payloads(bs);
    const auto stats = bitstream::analyze(bs);
    std::vector<std::string> cells = {spec.name, std::to_string(raw.size())};
    int i = 0;
    for (const auto codec :
         {compress::CodecId::kRle, compress::CodecId::kLzss,
          compress::CodecId::kHuffman, compress::CodecId::kGolomb,
          compress::CodecId::kFrameDelta, compress::CodecId::kDeltaGolomb}) {
      const auto impl = compress::make_codec(codec, geometry.frame_bytes());
      const double ratio = static_cast<double>(impl->compress(raw).size()) /
                           static_cast<double>(raw.size());
      sums[i++] += ratio;
      cells.push_back(bench::fmt("%.3f", ratio));
    }
    cells.push_back(bench::fmt("%.1f%%", stats.zero_word_fraction * 100));
    bench::print_row(cells, widths);
    ++rows;
  }
  bench::print_rule(widths);
  std::vector<std::string> mean = {"MEAN", ""};
  for (double s : sums) mean.push_back(bench::fmt("%.3f", s / rows));
  mean.push_back("");
  bench::print_row(mean, widths);
}

void throughput_table() {
  std::puts(
      "\n=== E2b: modeled window decompression throughput "
      "(configuration-module engine @ 66 MHz) ===");
  const std::vector<int> widths = {14, 16, 18};
  bench::print_row({"codec", "cycles/byte", "throughput(MB/s)"}, widths);
  bench::print_rule(widths);
  for (const auto codec : compress::all_codec_ids()) {
    const double cpb = compress::decompress_cycles_per_byte(codec);
    const double mbps = 66e6 / cpb / 1e6;
    bench::print_row({to_string(codec), bench::fmt("%.2f", cpb),
                      bench::fmt("%.1f", mbps)},
                     widths);
  }
  std::puts(
      "note: SelectMAP8 @ 50 MHz consumes 50 MB/s, so every codec except "
      "huffman keeps the config port saturated (pipeline overlap, E1b).");
}

// --- wall-clock codec performance (host-side reality check) --------------------

Bytes sample_stream() {
  const fabric::FrameGeometry geometry;
  const auto bs =
      algorithms::spec(algorithms::KernelId::kAes128).make_bitstream(geometry);
  return bitstream::pack_frame_payloads(bs);
}

void BM_Compress(benchmark::State& state) {
  const auto id = static_cast<compress::CodecId>(state.range(0));
  const Bytes raw = sample_stream();
  const auto codec = compress::make_codec(id, 1536);
  for (auto _ : state) {
    auto out = codec->compress(raw);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw.size()));
  state.SetLabel(to_string(id));
}
BENCHMARK(BM_Compress)->DenseRange(0, 6);

void BM_Decompress(benchmark::State& state) {
  const auto id = static_cast<compress::CodecId>(state.range(0));
  const Bytes raw = sample_stream();
  const auto codec = compress::make_codec(id, 1536);
  const Bytes compressed = codec->compress(raw);
  for (auto _ : state) {
    auto out = codec->decompress(compressed);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw.size()));
  state.SetLabel(to_string(id));
}
BENCHMARK(BM_Decompress)->DenseRange(0, 6);

}  // namespace

void run_experiment() {
  ratio_table();
  throughput_table();
}
