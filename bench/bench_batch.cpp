// Experiment B — same-function request batching (core/batch_policy.h).
//
// When the device scheduler picks a function, the BatchPolicy can drain
// every queued request for that same function into one batch that shares a
// single firmware decode + on-demand load and runs back-to-back fabric
// windows — one reconfiguration amortized across the batch.  The workload
// is the bursty open-loop generator (workload::make_bursty): concurrent
// clients each burst one function at a time, so the unbatched FIFO device
// stage sees an interleaved A,B,C,A,B,C… queue and thrashes its
// configuration state, while batching regroups the interleave.  Tables:
//
//   B1 — batch policy shoot-out (none / greedy / windowed) on the bursty
//        trace: makespan, throughput, hit rate, batch shape, amortized
//        engine time — the headline ≥1.3x over no-batch,
//   B2 — windowed-policy horizon sweep: longer windows coalesce more but
//        add head-of-line latency (the p99 shows the bet),
//   B3 — burstiness sweep (burst length 1..16), greedy vs none: batching
//        is free when there is nothing to coalesce and grows with the
//        burst length,
//   B4 — 2-card fleet, residency-affinity dispatch x batch policy: the
//        open-batch routing tier (CoprocessorServer::open_batch_for) steers
//        concurrent same-function bursts onto the card already coalescing
//        them.
//
// Flags (bench_util.h parser): `--json <path>` captures the headline
// metrics; `--clients N` (default 8), `--bursts N` per client (default 8),
// `--burstlen N` requests per burst (default 8), `--blocks N` payload
// blocks (default 4), `--intra US` / `--inter US` mean intra-/inter-burst
// gaps in microseconds (default 40 / 200 — bursts from different clients
// overlap in arrival time, the regime batching is for) and `--zipf S`
// burst-function skew (default 0.3) rescale B1, B3 and B4.  B2 studies
// the light-load trickle regime specifically, so it pins its trace shape
// (2 clients, 2-block payloads, 100us/3ms gaps) and honors only
// `--bursts` and `--burstlen`.
#include "bench_util.h"

#include <vector>

#include "core/fleet.h"
#include "core/server.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace {

using namespace aad;

using bench::request_input;

unsigned flag_clients() {
  return static_cast<unsigned>(bench::flags().get_int("clients", 8));
}
std::size_t flag_bursts() {
  return static_cast<std::size_t>(bench::flags().get_int("bursts", 8));
}
std::size_t flag_burstlen() {
  return static_cast<std::size_t>(bench::flags().get_int("burstlen", 8));
}
std::size_t flag_blocks() {
  return static_cast<std::size_t>(bench::flags().get_int("blocks", 4));
}

// The heavyweight offload mix: the crypto/DSP kernels whose footprints
// (6-18 of the device's 48 frames) are what on-demand reconfiguration is
// for.  Their combined footprint (~99 frames) is roughly twice the device,
// so concurrently bursting clients genuinely contend for fabric area — the
// tiny combinational kernels would all stay resident and hide the effect.
std::vector<std::uint32_t> heavy_bank() {
  using algorithms::KernelId;
  std::vector<std::uint32_t> bank;
  for (const KernelId id :
       {KernelId::kAes128, KernelId::kDes, KernelId::kSha1,
        KernelId::kSha256, KernelId::kMd5, KernelId::kMatMul, KernelId::kFft,
        KernelId::kFir16, KernelId::kModExp})
    bank.push_back(algorithms::function_id(id));
  return bank;
}

workload::MultiClientTrace make_trace(std::size_t burst_size,
                                      std::uint64_t seed) {
  workload::BurstyConfig bc;
  bc.clients = flag_clients();
  bc.bursts = flag_bursts();
  bc.burst_size = burst_size;
  bc.functions = heavy_bank();
  bc.seed = seed;
  bc.payload_blocks = flag_blocks();
  // Mild skew: concurrent bursts are usually DIFFERENT functions, and the
  // intra-burst gap is on the order of the inter-burst spread, so bursts
  // from different clients interleave request-by-request at the device —
  // more distinct functions in flight than the 48-frame fabric holds.
  // Without batching the FIFO stage reconfigures per request; batching
  // regroups each function's queued requests behind one load.
  bc.zipf_s = bench::flags().get_double("zipf", 0.3);
  bc.mean_intra_gap =
      sim::SimTime::us(bench::flags().get_double("intra", 40.0));
  bc.mean_inter_gap =
      sim::SimTime::us(bench::flags().get_double("inter", 200.0));
  return workload::make_bursty(bc);
}

core::ServerStats run_server(const core::ServerConfig& sc,
                             const workload::MultiClientTrace& trace,
                             double* hit_rate = nullptr) {
  core::AgileCoprocessor card;
  card.download_all();
  core::CoprocessorServer server(card, sc);
  if (auto* sink = bench::trace_sink())
    server.attach_trace(*sink,
                        std::string("batch ") + core::to_string(sc.batch.mode));
  workload::replay(server, trace, request_input);
  server.run();
  if (hit_rate) {
    // Batched followers never reach the MCU's per-command counters, so the
    // driver-visible hit rate comes from the completion records.
    std::uint64_t hits = 0;
    for (const core::ServerRequest& r : server.completed())
      if (r.load.hit) ++hits;
    *hit_rate = server.completed().empty()
                    ? 0.0
                    : static_cast<double>(hits) /
                          static_cast<double>(server.completed().size());
  }
  return server.stats();
}

core::ServerConfig batch_config(core::BatchMode mode,
                                sim::SimTime window = sim::SimTime::us(50)) {
  core::ServerConfig sc;  // FIFO device policy + overlapped reconfiguration
  sc.batch.mode = mode;
  sc.batch.window = window;
  // `--prefetch on` / `--predictor <conf>` layer speculative prefetch onto
  // every table; the default (off) regenerates the documented numbers.
  const bench::PrefetchFlags pf = bench::prefetch_flags();
  sc.prefetch.enabled = pf.enabled;
  sc.prefetch.predictor.min_confidence = pf.min_confidence;
  return sc;
}

void policy_shootout() {
  std::puts("\n=== B1: batch policy on the bursty same-function trace ===");
  std::printf("(%u open-loop clients x %zu bursts x %zu-request bursts over "
              "the heavyweight crypto/DSP bank (~2x the device's frames); "
              "concurrent bursts interleave at the device, so the unbatched "
              "FIFO stage reconfigures per request while batching pays one "
              "load per drained group)\n",
              flag_clients(), flag_bursts(), flag_burstlen());
  const std::vector<int> widths = {11, 13, 9, 7, 9, 11, 11, 13, 9};
  bench::print_row({"policy", "makespan(ms)", "req/s", "hit%", "batches",
                    "mean size", "coalesced", "amort(us)", "speedup"},
                   widths);
  bench::print_rule(widths);

  const auto trace = make_trace(flag_burstlen(), 53);
  double none_rps = 0.0;
  for (const core::BatchMode mode :
       {core::BatchMode::kNone, core::BatchMode::kGreedy,
        core::BatchMode::kWindowed}) {
    double hit_rate = 0.0;
    const auto stats = run_server(batch_config(mode), trace, &hit_rate);
    if (mode == core::BatchMode::kNone) none_rps = stats.throughput_rps;
    const double speedup =
        none_rps > 0.0 ? stats.throughput_rps / none_rps : 0.0;
    bench::print_row(
        {core::to_string(mode),
         bench::fmt("%.2f", stats.makespan.milliseconds()),
         bench::fmt("%.0f", stats.throughput_rps),
         bench::fmt("%.0f", 100.0 * hit_rate), bench::fmt_u(stats.batches),
         bench::fmt("%.2f", stats.mean_batch_size),
         bench::fmt_u(stats.coalesced_loads),
         bench::fmt("%.1f", stats.total_amortized_reconfig.microseconds()),
         bench::fmt("%.2f", speedup)},
        widths);

    const std::string suffix = std::string("_") + core::to_string(mode);
    bench::json().set("batch_makespan_ms" + suffix,
                      stats.makespan.milliseconds());
    bench::json().set("batch_rps" + suffix, stats.throughput_rps);
    bench::json().set("batch_hit_rate" + suffix, hit_rate);
    bench::json().set("batch_mean_size" + suffix, stats.mean_batch_size);
    bench::json().set("batch_coalesced" + suffix, stats.coalesced_loads);
    bench::json().set("batch_amortized_us" + suffix,
                      stats.total_amortized_reconfig.microseconds());
    if (mode != core::BatchMode::kNone)
      bench::json().set("batch_speedup" + suffix, speedup);
  }
}

void window_sweep() {
  std::puts("\n=== B2: windowed-policy horizon sweep (light-load trickle) ===");
  std::puts("(2 clients, 100us intra-burst gaps, long idle between bursts: "
            "the device drains faster than a burst arrives, so w=0 commits "
            "tiny batches — holding the pick longer coalesces more of each "
            "burst, and the p50/p99 show the latency the hold costs.  Under "
            "saturation the queue pre-forms the batches and the window is "
            "moot — that regime is B1's)");
  const std::vector<int> widths = {12, 9, 11, 11, 11, 11};
  bench::print_row({"window(us)", "req/s", "p50(us)", "p99(us)", "mean size",
                    "coalesced"},
                   widths);
  bench::print_rule(widths);

  workload::BurstyConfig bc;
  bc.clients = 2;
  bc.bursts = flag_bursts();
  bc.burst_size = flag_burstlen();
  bc.functions = heavy_bank();
  bc.seed = 59;
  bc.payload_blocks = 2;
  bc.zipf_s = 0.3;
  bc.mean_intra_gap = sim::SimTime::us(100);
  bc.mean_inter_gap = sim::SimTime::us(3000);
  const auto trace = workload::make_bursty(bc);
  for (const double window_us : {0.0, 10.0, 25.0, 50.0, 100.0, 250.0}) {
    const auto stats = run_server(
        batch_config(core::BatchMode::kWindowed, sim::SimTime::us(window_us)),
        trace);
    bench::print_row(
        {bench::fmt("%.0f", window_us),
         bench::fmt("%.0f", stats.throughput_rps),
         bench::fmt("%.1f", stats.latency.p50.microseconds()),
         bench::fmt("%.1f", stats.latency.p99.microseconds()),
         bench::fmt("%.2f", stats.mean_batch_size),
         bench::fmt_u(stats.coalesced_loads)},
        widths);
    const std::string suffix = bench::fmt("_w%.0f", window_us);
    bench::json().set("batch_window_rps" + suffix, stats.throughput_rps);
    bench::json().set("batch_window_p99_us" + suffix,
                      stats.latency.p99.microseconds());
    bench::json().set("batch_window_mean_size" + suffix,
                      stats.mean_batch_size);
  }
}

void burstiness_sweep() {
  std::puts("\n=== B3: burst length x greedy batching vs no-batch ===");
  std::puts("(even single-request bursts coalesce: under overload the "
            "ready queue holds same-function arrivals from DIFFERENT "
            "clients, and greedy drains them together; longer bursts "
            "deepen the same-function runs each drain amortizes over)");
  const std::vector<int> widths = {11, 12, 13, 11, 9};
  bench::print_row({"burst len", "none req/s", "greedy req/s", "mean size",
                    "speedup"},
                   widths);
  bench::print_rule(widths);

  for (const std::size_t burst : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{8},
                                  std::size_t{16}}) {
    const auto trace = make_trace(burst, 61);
    const auto none = run_server(batch_config(core::BatchMode::kNone), trace);
    const auto greedy =
        run_server(batch_config(core::BatchMode::kGreedy), trace);
    const double speedup = none.throughput_rps > 0.0
                               ? greedy.throughput_rps / none.throughput_rps
                               : 0.0;
    bench::print_row({bench::fmt_u(burst),
                      bench::fmt("%.0f", none.throughput_rps),
                      bench::fmt("%.0f", greedy.throughput_rps),
                      bench::fmt("%.2f", greedy.mean_batch_size),
                      bench::fmt("%.2f", speedup)},
                     widths);
    const std::string suffix = bench::fmt("_b%.0f", static_cast<double>(burst));
    bench::json().set("batch_burst_speedup" + suffix, speedup);
    bench::json().set("batch_burst_mean_size" + suffix,
                      greedy.mean_batch_size);
  }
}

void fleet_composition() {
  std::puts("\n=== B4: 2-card fleet, residency-affinity x batch policy ===");
  std::puts("(the affinity router prefers a card holding an OPEN batch for "
            "the function — open_batch_for — so concurrent same-function "
            "bursts converge on the card already coalescing them instead "
            "of splitting the batch across shards)");
  const std::vector<int> widths = {11, 13, 9, 7, 11, 11, 11};
  bench::print_row({"policy", "makespan(ms)", "req/s", "hit%", "mean size",
                    "coalesced", "amort(us)"},
                   widths);
  bench::print_rule(widths);

  const auto trace = make_trace(flag_burstlen(), 67);
  for (const core::BatchMode mode :
       {core::BatchMode::kNone, core::BatchMode::kGreedy,
        core::BatchMode::kWindowed}) {
    core::FleetConfig fc;
    fc.cards = 2;
    fc.policy = core::DispatchPolicy::kResidencyAffinity;
    fc.server = batch_config(mode);
    core::CoprocessorFleet fleet(fc);
    if (auto* sink = bench::trace_sink())
      fleet.attach_trace(*sink,
                         std::string("batch fleet ") + core::to_string(mode));
    fleet.download_all();
    workload::replay(fleet, trace, request_input);
    fleet.run();
    const auto stats = fleet.stats();
    bench::print_row(
        {core::to_string(mode),
         bench::fmt("%.2f", stats.makespan.milliseconds()),
         bench::fmt("%.0f", stats.throughput_rps),
         bench::fmt("%.0f", 100.0 * stats.hit_rate),
         bench::fmt("%.2f", stats.mean_batch_size),
         bench::fmt_u(stats.coalesced_loads),
         bench::fmt("%.1f", stats.total_amortized_reconfig.microseconds())},
        widths);
    const std::string suffix = std::string("_") + core::to_string(mode);
    bench::json().set("batch_fleet_rps" + suffix, stats.throughput_rps);
    bench::json().set("batch_fleet_hit_rate" + suffix, stats.hit_rate);
    bench::json().set("batch_fleet_mean_size" + suffix,
                      stats.mean_batch_size);
  }
}

void BM_BatchedBurstyPipeline(benchmark::State& state) {
  // Simulator wall-clock cost per request with greedy batching on the
  // bursty trace (batch formation is on the hot path of every pump).
  workload::BurstyConfig bc;
  bc.clients = 4;
  bc.bursts = 4;
  bc.burst_size = 8;
  bc.functions = algorithms::function_bank();
  bc.seed = 3;
  bc.payload_blocks = 8;
  const auto trace = workload::make_bursty(bc);
  for (auto _ : state) {
    state.PauseTiming();
    core::AgileCoprocessor card;
    card.download_all();
    state.ResumeTiming();
    core::ServerConfig sc;
    sc.batch.mode = core::BatchMode::kGreedy;
    core::CoprocessorServer server(card, sc);
    workload::replay(server, trace, request_input);
    server.run();
    benchmark::DoNotOptimize(server.stats().completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.total_requests()));
  state.SetLabel("requests through the batching device stage");
}
BENCHMARK(BM_BatchedBurstyPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

void run_experiment() {
  policy_shootout();
  window_sweep();
  burstiness_sweep();
  fleet_composition();
}
