// Experiment O — overlapped reconfiguration and device scheduling.
//
// The device stage of the pipeline is two independently-arbitrated
// resources: the configuration engine (firmware decode + on-demand load)
// and the fabric (staging + execution).  With overlap_reconfig on, a queued
// request's configuration streams through the engine while the fabric still
// executes the previous request (frames permitting — see
// core/device_scheduler.h and Mcu::pin), so reconfiguration time hides
// behind execution instead of serializing after it.  Three tables:
//
//   O1 — overlap on/off × device policy on one miss-heavy trace: the
//        headline makespan win and the per-request wait attribution
//        (engine_wait vs fabric_wait) the split makes visible,
//   O2 — hidden-reconfiguration time vs workload skew (hit rate sweep):
//        the more misses, the more there is to hide,
//   O3 — device-policy shoot-out on a mixed hot/cold trace where
//        reordering (resident-first / shortest-reconfig-first) pays.
//
// Flags (bench_util.h parser): `--json <path>` captures the headline
// metrics; `--clients N` (default 6), `--requests N` per client (default
// 20) and `--blocks N` payload blocks (default 12) rescale every table.
#include "bench_util.h"

#include <vector>

#include "core/server.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace {

using namespace aad;
using algorithms::KernelId;

using bench::request_input;

unsigned flag_clients() {
  return static_cast<unsigned>(bench::flags().get_int("clients", 6));
}
std::size_t flag_requests() {
  return static_cast<std::size_t>(bench::flags().get_int("requests", 20));
}
std::size_t flag_blocks() {
  return static_cast<std::size_t>(bench::flags().get_int("blocks", 12));
}

workload::MultiClientTrace make_trace(double zipf_s, std::uint64_t seed) {
  workload::MultiClientConfig wc;
  wc.clients = flag_clients();
  wc.requests_per_client = flag_requests();
  wc.functions = algorithms::function_bank();
  wc.seed = seed;
  wc.zipf_s = zipf_s;
  wc.payload_blocks = flag_blocks();  // execution long enough to hide behind
  wc.mode = workload::ArrivalMode::kClosedLoop;
  return workload::make_multi_client(wc);
}

core::ServerStats run_server(const core::ServerConfig& sc,
                             const workload::MultiClientTrace& trace,
                             double* hit_rate = nullptr) {
  core::AgileCoprocessor card;
  card.download_all();
  core::CoprocessorServer server(card, sc);
  if (auto* sink = bench::trace_sink())
    server.attach_trace(*sink, std::string("overlap ") +
                                   core::to_string(sc.device_policy));
  workload::replay(server, trace, request_input);
  server.run();
  if (hit_rate) {
    const auto device = card.stats().device;
    *hit_rate = device.invocations
                    ? static_cast<double>(device.config_hits) /
                          static_cast<double>(device.invocations)
                    : 0.0;
  }
  return server.stats();
}

void overlap_headline() {
  std::puts("\n=== O1: overlap on/off x device policy, miss-heavy trace ===");
  std::printf("(%u closed-loop clients, uniform draw over the full kernel "
              "bank — the fabric churns, so almost every request "
              "reconfigures; %zu-block payloads give the engine an "
              "execution to hide behind)\n",
              flag_clients(), flag_blocks());
  const std::vector<int> widths = {25, 9, 13, 10, 11, 11, 12, 12};
  bench::print_row({"device policy", "overlap", "makespan(ms)", "req/s",
                    "hidden(us)", "overlapped", "eng-wait(us)",
                    "fab-wait(us)"},
                   widths);
  bench::print_rule(widths);

  const auto trace = make_trace(0.0, 41);
  double fifo_off_ms = 0.0;
  struct Row {
    core::DevicePolicy policy;
    const char* key;
  };
  for (const Row row :
       {Row{core::DevicePolicy::kFifo, "fifo"},
        Row{core::DevicePolicy::kResidentFirst, "resident_first"},
        Row{core::DevicePolicy::kShortestReconfigFirst, "shortest_first"}}) {
    for (const bool overlap : {false, true}) {
      core::ServerConfig sc;
      sc.device_policy = row.policy;
      sc.overlap_reconfig = overlap;
      const auto stats = run_server(sc, trace);
      if (row.policy == core::DevicePolicy::kFifo && !overlap)
        fifo_off_ms = stats.makespan.milliseconds();

      bench::print_row(
          {core::to_string(row.policy), overlap ? "on" : "off",
           bench::fmt("%.2f", stats.makespan.milliseconds()),
           bench::fmt("%.0f", stats.throughput_rps),
           bench::fmt("%.1f", stats.total_hidden_reconfig.microseconds()),
           bench::fmt_u(stats.overlapped_loads),
           bench::fmt("%.1f", stats.total_engine_wait.microseconds()),
           bench::fmt("%.1f", stats.total_fabric_wait.microseconds())},
          widths);

      const std::string suffix =
          std::string("_") + row.key + (overlap ? "_on" : "_off");
      bench::json().set("overlap_makespan_ms" + suffix,
                        stats.makespan.milliseconds());
      bench::json().set("overlap_hidden_us" + suffix,
                        stats.total_hidden_reconfig.microseconds());
      bench::json().set("overlap_overlapped_loads" + suffix,
                        stats.overlapped_loads);
      if (overlap && fifo_off_ms > 0.0)
        bench::json().set(std::string("overlap_speedup_") + row.key,
                          fifo_off_ms / stats.makespan.milliseconds());
    }
  }
}

void hidden_vs_skew() {
  std::puts("\n=== O2: hidden reconfiguration vs workload skew, FIFO ===");
  std::puts("(skew raises the configuration hit rate; fewer misses mean "
            "less reconfiguration to hide — the overlap win is largest "
            "exactly where the paper's cost is largest)");
  const std::vector<int> widths = {9, 7, 14, 14, 13, 10};
  bench::print_row({"zipf s", "hit%", "serial(ms)", "overlap(ms)",
                    "hidden(us)", "win%"},
                   widths);
  bench::print_rule(widths);

  for (const double s : {0.0, 0.6, 1.1, 1.5}) {
    const auto trace = make_trace(s, 43);
    core::ServerConfig off;
    off.overlap_reconfig = false;
    core::ServerConfig on;
    on.overlap_reconfig = true;
    const auto serial = run_server(off, trace);
    double hit_rate = 0.0;
    const auto overlapped = run_server(on, trace, &hit_rate);
    const double win =
        100.0 * (serial.makespan.milliseconds() -
                 overlapped.makespan.milliseconds()) /
        serial.makespan.milliseconds();
    bench::print_row(
        {bench::fmt("%.1f", s), bench::fmt("%.0f", 100.0 * hit_rate),
         bench::fmt("%.2f", serial.makespan.milliseconds()),
         bench::fmt("%.2f", overlapped.makespan.milliseconds()),
         bench::fmt("%.1f", overlapped.total_hidden_reconfig.microseconds()),
         bench::fmt("%.1f", win)},
        widths);
    const std::string suffix = bench::fmt("_s%.1f", s);
    bench::json().set("overlap_skew_hidden_us" + suffix,
                      overlapped.total_hidden_reconfig.microseconds());
    bench::json().set("overlap_skew_win_pct" + suffix, win);
  }
}

void policy_shootout() {
  std::puts("\n=== O3: device policies on a hot/cold mix (overlap on) ===");
  std::puts("(zipf(1.1): a resident head plus a cold tail.  Reordering "
            "lets hits jump queued reconfigurations, so the fabric stays "
            "busy; shortest-reconfig-first additionally drains small "
            "footprints first)");
  const std::vector<int> widths = {25, 13, 10, 10, 11, 11};
  bench::print_row({"device policy", "makespan(ms)", "req/s", "p50(us)",
                    "p99(us)", "hidden(us)"},
                   widths);
  bench::print_rule(widths);

  const auto trace = make_trace(1.1, 47);
  for (const auto policy : {core::DevicePolicy::kFifo,
                            core::DevicePolicy::kResidentFirst,
                            core::DevicePolicy::kShortestReconfigFirst}) {
    core::ServerConfig sc;
    sc.device_policy = policy;
    const auto stats = run_server(sc, trace);
    bench::print_row(
        {core::to_string(policy),
         bench::fmt("%.2f", stats.makespan.milliseconds()),
         bench::fmt("%.0f", stats.throughput_rps),
         bench::fmt("%.1f", stats.latency.p50.microseconds()),
         bench::fmt("%.1f", stats.latency.p99.microseconds()),
         bench::fmt("%.1f", stats.total_hidden_reconfig.microseconds())},
        widths);
    bench::json().set(
        std::string("overlap_policy_rps_") + core::to_string(policy),
        stats.throughput_rps);
  }
}

void BM_OverlappedMissHeavyPipeline(benchmark::State& state) {
  // Simulator wall-clock cost per request with the two-resource device
  // stage and overlap enabled.
  workload::MultiClientConfig wc;
  wc.clients = 4;
  wc.requests_per_client = 8;
  wc.functions = algorithms::function_bank();
  wc.seed = 3;
  wc.payload_blocks = 16;
  wc.mode = workload::ArrivalMode::kClosedLoop;
  const auto trace = workload::make_multi_client(wc);
  for (auto _ : state) {
    state.PauseTiming();
    core::AgileCoprocessor card;
    card.download_all();
    state.ResumeTiming();
    core::CoprocessorServer server(card);
    workload::replay(server, trace, request_input);
    server.run();
    benchmark::DoNotOptimize(server.stats().completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.total_requests()));
  state.SetLabel("requests through the split device stage");
}
BENCHMARK(BM_OverlappedMissHeavyPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

void run_experiment() {
  overlap_headline();
  hidden_vs_skew();
  policy_shootout();
}
