// Experiment F — fault injection + recovery across the fleet (sim/fault.h,
// core/fleet.h FaultPlan/RetryConfig).
//
// Cards die and recover mid-trace under a seeded random fault plan; the
// fleet re-dispatches the dead card's queued and in-flight requests to
// survivors, the watchdog retries stragglers, and corrupted ROM images are
// CRC-rejected and re-fetched.  The experiment measures what fault
// tolerance costs while proving the fleet never strands a request:
//
//   F1 — death-rate sweep on a 4-card fleet: throughput, p99, deaths,
//        re-dispatches, retries, failures — and a `hung` column that must
//        read 0 at every rate (conservation: completed + failed ==
//        submitted),
//   F2 — ROM corruption-rate sweep: CRC rejects, pristine re-fetches, and
//        the residual failure count with re-fetch doing its job.
//
// Flags (bench_util.h parser): `--json <path>` captures the metrics;
// `--cards N` (default 4), `--clients N` (default 8), `--bursts N`
// (default 8), `--burstlen N` (default 8), `--blocks N` (default 4) and
// `--seed S` (default 53) rescale both tables; `--threads N` (default 1)
// runs the fleets on the sharded parallel engine — the tables and JSON
// are identical for every thread count (the determinism contract
// bench_parallel gates), only the host wall clock moves.
#include "bench_util.h"

#include <string>
#include <vector>

#include "core/fleet.h"
#include "sim/fault.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace {

using namespace aad;

using bench::request_input;

unsigned flag_cards() {
  return static_cast<unsigned>(bench::flags().get_int("cards", 4));
}
unsigned flag_clients() {
  return static_cast<unsigned>(bench::flags().get_int("clients", 8));
}
std::size_t flag_bursts() {
  return static_cast<std::size_t>(bench::flags().get_int("bursts", 8));
}
std::size_t flag_burstlen() {
  return static_cast<std::size_t>(bench::flags().get_int("burstlen", 8));
}
std::size_t flag_blocks() {
  return static_cast<std::size_t>(bench::flags().get_int("blocks", 4));
}
std::uint64_t flag_seed() {
  return static_cast<std::uint64_t>(bench::flags().get_int("seed", 53));
}
unsigned flag_threads() {
  return static_cast<unsigned>(bench::flags().get_int("threads", 1));
}

// The reconfiguration-heavy crypto/DSP mix (see bench_batch.cpp): enough
// combined footprint that survivors genuinely re-load the refugees'
// functions instead of serving everything from residency.
std::vector<std::uint32_t> heavy_bank() {
  using algorithms::KernelId;
  std::vector<std::uint32_t> bank;
  for (const KernelId id :
       {KernelId::kAes128, KernelId::kDes, KernelId::kSha1,
        KernelId::kSha256, KernelId::kMd5, KernelId::kMatMul, KernelId::kFft,
        KernelId::kFir16, KernelId::kModExp})
    bank.push_back(algorithms::function_id(id));
  return bank;
}

workload::MultiClientTrace make_trace() {
  workload::BurstyConfig bc;
  bc.clients = flag_clients();
  bc.bursts = flag_bursts();
  bc.burst_size = flag_burstlen();
  bc.functions = heavy_bank();
  bc.seed = flag_seed();
  bc.payload_blocks = flag_blocks();
  bc.zipf_s = 0.3;
  bc.mean_intra_gap = sim::SimTime::us(40);
  bc.mean_inter_gap = sim::SimTime::us(200);
  return workload::make_bursty(bc);
}

// Faults must land while requests are in flight, whatever the trace shape
// the flags dialed in.  Arrivals stop early but a saturated fleet keeps
// draining long after, so the horizon comes from a fault-free probe run's
// makespan rather than the last arrival offset.
sim::SimTime fault_horizon(const workload::MultiClientTrace& trace);

sim::FaultPlan make_plan(double death_rate_per_ms, double corruption_per_ms,
                         sim::SimTime horizon) {
  sim::RandomFaultConfig fc;
  fc.seed = flag_seed() * 1000003ull + 29;
  fc.cards = flag_cards();
  fc.horizon = horizon;
  fc.death_rate_per_ms = death_rate_per_ms;
  fc.mean_downtime = sim::SimTime::us(500);
  fc.corruption_rate_per_ms = corruption_per_ms;
  fc.functions = heavy_bank();
  return sim::make_random_fault_plan(fc);
}

core::FleetStats run_fleet(const sim::FaultPlan& plan,
                           const workload::MultiClientTrace& trace,
                           std::uint64_t* hung) {
  core::FleetConfig fc;
  fc.cards = flag_cards();
  fc.threads = flag_threads();
  fc.policy = core::DispatchPolicy::kLeastQueued;
  fc.faults = plan;
  fc.retry.timeout = sim::SimTime::ms(10);
  fc.retry.max_retries = 3;
  core::CoprocessorFleet fleet(fc);
  if (auto* sink = bench::trace_sink())
    fleet.attach_trace(*sink, std::string("faults cards=") +
                                  std::to_string(fc.cards));
  fleet.download_all();
  workload::replay(fleet, trace, request_input);
  fleet.run();
  const core::FleetStats stats = fleet.stats();
  // Conservation, the headline invariant: every submitted request either
  // completed or failed — nothing is stranded on a dead card's queue.
  *hung = stats.submitted - stats.completed - stats.failed +
          fleet.in_flight();
  return stats;
}

sim::SimTime fault_horizon(const workload::MultiClientTrace& trace) {
  std::uint64_t hung = 0;
  return run_fleet(sim::FaultPlan{}, trace, &hung).makespan;
}

void death_rate_sweep() {
  std::puts("\n=== F1: card-death-rate sweep (4-card fleet, bursty "
            "crypto/DSP trace) ===");
  std::printf("(%u cards, %u open-loop clients x %zu bursts x %zu-request "
              "bursts; seeded random death/recovery plan, 500us mean "
              "downtime, 10ms watchdog with 3 retries; `hung` must be 0: "
              "completed + failed == submitted)\n",
              flag_cards(), flag_clients(), flag_bursts(), flag_burstlen());
  const std::vector<int> widths = {10, 13, 9, 10, 7, 13, 8, 9, 7, 6};
  bench::print_row({"death/ms", "makespan(ms)", "req/s", "p99(us)", "deaths",
                    "redispatched", "retries", "timeouts", "failed", "hung"},
                   widths);
  bench::print_rule(widths);

  const auto trace = make_trace();
  const sim::SimTime horizon = fault_horizon(trace);
  for (const double rate : {0.0, 0.01, 0.05, 0.2}) {
    std::uint64_t hung = 0;
    const auto stats = run_fleet(make_plan(rate, 0.0, horizon), trace, &hung);
    bench::print_row(
        {bench::fmt("%.3f", rate),
         bench::fmt("%.2f", stats.makespan.milliseconds()),
         bench::fmt("%.0f", stats.throughput_rps),
         bench::fmt("%.1f", stats.latency.p99.microseconds()),
         bench::fmt_u(stats.deaths), bench::fmt_u(stats.redispatched),
         bench::fmt_u(stats.retries), bench::fmt_u(stats.timeouts),
         bench::fmt_u(stats.failed), bench::fmt_u(hung)},
        widths);

    const std::string suffix = "_d" + bench::fmt("%.0f", rate * 1000.0);
    bench::json().set("faults_rps" + suffix, stats.throughput_rps);
    bench::json().set("faults_p99_us" + suffix,
                      stats.latency.p99.microseconds());
    bench::json().set("faults_deaths" + suffix, stats.deaths);
    bench::json().set("faults_redispatched" + suffix, stats.redispatched);
    bench::json().set("faults_retries" + suffix, stats.retries);
    bench::json().set("faults_failed" + suffix, stats.failed);
    bench::json().set("faults_hung" + suffix, hung);
  }
}

void corruption_sweep() {
  std::puts("\n=== F2: ROM corruption-rate sweep (CRC reject + pristine "
            "re-fetch) ===");
  std::printf("(same fleet and trace; random bit flips land in stored "
              "images, the engine CRC-rejects the decoded image before "
              "programming a single frame and the driver re-fetches the "
              "pristine copy)\n");
  const std::vector<int> widths = {12, 13, 9, 12, 10, 7, 6};
  bench::print_row({"corrupt/ms", "makespan(ms)", "req/s", "crc_rejects",
                    "refetches", "failed", "hung"},
                   widths);
  bench::print_rule(widths);

  const auto trace = make_trace();
  const sim::SimTime horizon = fault_horizon(trace);
  for (const double rate : {0.0, 0.2, 0.5}) {
    std::uint64_t hung = 0;
    const auto stats = run_fleet(make_plan(0.0, rate, horizon), trace, &hung);
    bench::print_row({bench::fmt("%.2f", rate),
                      bench::fmt("%.2f", stats.makespan.milliseconds()),
                      bench::fmt("%.0f", stats.throughput_rps),
                      bench::fmt_u(stats.crc_rejects),
                      bench::fmt_u(stats.refetches),
                      bench::fmt_u(stats.failed), bench::fmt_u(hung)},
                     widths);

    const std::string suffix = "_c" + bench::fmt("%.0f", rate * 100.0);
    bench::json().set("faults_rps" + suffix, stats.throughput_rps);
    bench::json().set("faults_crc_rejects" + suffix, stats.crc_rejects);
    bench::json().set("faults_refetches" + suffix, stats.refetches);
    bench::json().set("faults_failed" + suffix, stats.failed);
    bench::json().set("faults_hung" + suffix, hung);
  }
}

// Wall-clock companion: the simulator's own cost of running a faulty
// fleet, for catching host-side slowdowns in the recovery machinery.
void BM_FaultyFleetPipeline(benchmark::State& state) {
  workload::BurstyConfig bc;
  bc.clients = 4;
  bc.bursts = 4;
  bc.burst_size = 4;
  bc.functions = heavy_bank();
  bc.seed = 3;
  bc.payload_blocks = 4;
  const auto trace = workload::make_bursty(bc);
  sim::RandomFaultConfig fcfg;
  fcfg.seed = 11;
  fcfg.cards = 2;
  fcfg.horizon = sim::SimTime::ms(5);
  fcfg.death_rate_per_ms = 0.02;
  fcfg.mean_downtime = sim::SimTime::us(500);
  const sim::FaultPlan plan = sim::make_random_fault_plan(fcfg);
  for (auto _ : state) {
    core::FleetConfig fc;
    fc.cards = 2;
    fc.faults = plan;
    fc.retry.timeout = sim::SimTime::ms(2);
    core::CoprocessorFleet fleet(fc);
    fleet.download_all();
    workload::replay(fleet, trace, request_input);
    fleet.run();
    benchmark::DoNotOptimize(fleet.stats().completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.total_requests()));
  state.SetLabel("requests through a fleet with an armed fault plan");
}
BENCHMARK(BM_FaultyFleetPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

void run_experiment() {
  death_rate_sweep();
  corruption_sweep();
}
