// Experiment C — delta reconfiguration, adaptive codec selection, and the
// shared load-cost model.
//
// Paper hook (§2.4 + open problems): reconfiguration cost should scale
// with the frames a function CHANGES, not with its size.  The MCU's delta
// tracker hashes per-frame fabric content and skips matched windows of a
// load entirely (ROM fetch, decompression and config-port write), so an
// incremental variant — the edit-recompile loop of a kernel whose versions
// differ in a couple of frames — reloads only its dirty frames.  Four
// tables:
//
//   C1 — codec shoot-out on a Zipf-skewed bank trace, including the kAuto
//        download-time pick (trial-compress, model the cold load, choose),
//   C2 — the headline: an incremental-variant trace under full-image loads
//        vs delta reconfiguration vs delta + auto codec,
//   C3 — device scheduling with a real cost model: FIFO vs
//        shortest-reconfig-first ordering by Mcu::estimated_load_cost,
//   C4 — fleet routing: binary residency affinity vs the cheap-delta tier
//        (cheapest expected reconfiguration, FleetConfig::cost_routing).
//
// Flags (bench_util.h parser): `--json <path>` captures the headline
// metrics; `--clients N` (default 4), `--requests N` per client (default
// 24), `--versions N` per chain (default 4) and `--advance P` (default
// 0.5) rescale the incremental tables; `--codec <name|auto>` narrows C1.
#include "bench_util.h"

#include <vector>

#include "bitstream/synth.h"
#include "core/fleet.h"
#include "core/server.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace {

using namespace aad;
using algorithms::KernelId;

using bench::request_input;

unsigned flag_clients() {
  return static_cast<unsigned>(bench::flags().get_int("clients", 4));
}
std::size_t flag_requests() {
  return static_cast<std::size_t>(bench::flags().get_int("requests", 24));
}
std::size_t flag_versions() {
  return static_cast<std::size_t>(bench::flags().get_int("versions", 4));
}

// The incremental-variant chains: two kernels, each with a version chain
// whose adjacent versions share all but kDirtyFrames frames — a 12-frame
// footprint with 2-frame edits, the shape where a full-image reload pays
// 6x what actually changed.
constexpr unsigned kChains = 2;
constexpr unsigned kChainFrames = 12;
constexpr unsigned kDirtyFrames = 2;
constexpr std::uint32_t kChainBase = 1000;  ///< variant function ids

constexpr KernelId kChainKernels[kChains] = {KernelId::kXtea,
                                             KernelId::kFir16};

std::uint32_t chain_function(unsigned chain, std::size_t version) {
  return kChainBase + chain * 100 + static_cast<std::uint32_t>(version);
}

/// Version v+1 splices kDirtyFrames frames from a differently-seeded
/// synthesis of the same shape into version v — realistic frame content on
/// both sides of every edit, and a known dirty-frame count per step.
/// (Edit positions cycle through the footprint, so chains longer than
/// kChainFrames / kDirtyFrames + 1 versions revisit earlier content.)
std::vector<std::vector<bitstream::Bitstream>> make_chains(
    std::size_t versions, const fabric::FrameGeometry& geometry = {}) {
  std::vector<std::vector<bitstream::Bitstream>> chains;
  chains.reserve(kChains);
  for (unsigned g = 0; g < kChains; ++g) {
    const auto& spec = algorithms::spec(kChainKernels[g]);
    bitstream::SynthParams params;
    params.frames = kChainFrames;
    params.seed = 90 + g;
    bitstream::Bitstream current = bitstream::synthesize_behavioral(
        spec.name, algorithms::function_id(kChainKernels[g]),
        spec.input_width, spec.output_width, geometry, params);
    params.seed = 900 + g;
    const bitstream::Bitstream edits = bitstream::synthesize_behavioral(
        spec.name, algorithms::function_id(kChainKernels[g]),
        spec.input_width, spec.output_width, geometry, params);

    std::vector<bitstream::Bitstream> chain;
    chain.reserve(versions);
    for (std::size_t v = 0; v < versions; ++v) {
      if (v > 0)
        for (unsigned d = 0; d < kDirtyFrames; ++d) {
          const std::size_t f = ((v - 1) * kDirtyFrames + d) % kChainFrames;
          current.frames[f] = edits.frames[f];
        }
      chain.push_back(current);
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

/// request_input for the variant ids: every version of a chain runs the
/// chain's behavioral kernel, so its payload is that kernel's make_input
/// (the catalog cannot look variant ids up).
Bytes chain_input(std::uint32_t function, std::size_t blocks,
                  std::size_t index) {
  if (function >= kChainBase) {
    const unsigned g = (function - kChainBase) / 100;
    return algorithms::spec(kChainKernels[g]).make_input(blocks, 1000 + index);
  }
  return request_input(function, blocks, index);
}

workload::MultiClientTrace incremental_trace(workload::ArrivalMode mode,
                                             std::size_t versions,
                                             std::uint64_t seed) {
  workload::IncrementalConfig ic;
  ic.clients = flag_clients();
  ic.requests_per_client = flag_requests();
  for (unsigned g = 0; g < kChains; ++g) {
    std::vector<workload::FunctionId> chain;
    for (std::size_t v = 0; v < versions; ++v)
      chain.push_back(chain_function(g, v));
    ic.groups.push_back(std::move(chain));
  }
  ic.seed = seed;
  ic.payload_blocks = 4;
  ic.mode = mode;
  ic.advance = bench::flags().get_double("advance", 0.5);
  ic.mean_interarrival = sim::SimTime::us(120);
  return workload::make_incremental(ic);
}

struct CaseResult {
  core::ServerStats server;
  mcu::McuStats device;
};

CaseResult run_case(bool delta, compress::CodecId codec,
                    core::DevicePolicy policy,
                    const std::vector<std::vector<bitstream::Bitstream>>& chains,
                    const workload::MultiClientTrace& trace) {
  core::CoprocessorConfig cc;
  cc.mcu.engine.delta_reconfig = delta;
  core::AgileCoprocessor card(cc);
  for (unsigned g = 0; g < chains.size(); ++g)
    for (std::size_t v = 0; v < chains[g].size(); ++v)
      card.download_bitstream(chain_function(g, v), chains[g][v], codec);
  core::ServerConfig sc;
  sc.device_policy = policy;
  core::CoprocessorServer server(card, sc);
  if (auto* sink = bench::trace_sink())
    server.attach_trace(*sink, std::string("codec case ") +
                                   (delta ? "delta " : "full ") +
                                   core::to_string(policy));
  workload::replay(server, trace, chain_input);
  server.run();
  return {server.stats(), card.mcu().stats()};
}

std::string json_codec(compress::CodecId codec) {
  std::string name = to_string(codec);
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

double bytes_per_miss(const mcu::McuStats& device) {
  return device.config_misses
             ? static_cast<double>(device.compressed_bytes_streamed) /
                   static_cast<double>(device.config_misses)
             : 0.0;
}

void codec_sweep() {
  std::puts("\n=== C1: codec shoot-out, zipf(1.1) bank trace ===");
  std::puts("(one fresh card per codec, full kernel bank; \"auto\" "
            "trial-compresses the candidates at download time and picks the "
            "cheapest modeled cold load, near-ties going to the smallest "
            "stream)");
  const std::vector<int> widths = {14, 12, 10, 14, 12};
  bench::print_row({"codec", "rom bytes", "req/s", "bytes/miss", "p99(us)"},
                   widths);
  bench::print_rule(widths);

  workload::MultiClientConfig wc;
  wc.clients = flag_clients();
  wc.requests_per_client = flag_requests();
  wc.functions = algorithms::function_bank();
  wc.seed = 23;
  wc.zipf_s = 1.1;
  wc.payload_blocks = 4;
  wc.mode = workload::ArrivalMode::kClosedLoop;
  const auto trace = workload::make_multi_client(wc);

  std::vector<compress::CodecId> codecs = compress::all_codec_ids();
  codecs.push_back(compress::CodecId::kAuto);
  if (const auto pick = bench::codec_flag()) codecs = {*pick};

  for (const auto codec : codecs) {
    core::AgileCoprocessor card;
    card.download_all(codec);
    core::CoprocessorServer server(card);
    if (auto* sink = bench::trace_sink())
      server.attach_trace(*sink,
                          std::string("codec sweep ") + to_string(codec));
    workload::replay(server, trace, request_input);
    server.run();
    const auto stats = server.stats();
    const auto& device = card.mcu().stats();
    bench::print_row(
        {to_string(codec), std::to_string(card.mcu().rom().data_bytes()),
         bench::fmt("%.0f", stats.throughput_rps),
         bench::fmt("%.0f", bytes_per_miss(device)),
         bench::fmt("%.1f", stats.latency.p99.microseconds())},
        widths);
    const std::string suffix = "_" + json_codec(codec);
    bench::json().set("codec_rps" + suffix, stats.throughput_rps);
    bench::json().set("codec_bytes_per_miss" + suffix, bytes_per_miss(device));
    if (codec == compress::CodecId::kAuto) {
      std::string picks;
      for (const auto& [chosen, count] : device.codec_picks) {
        picks += picks.empty() ? "" : ", ";
        picks += to_string(chosen);
        picks += " x" + std::to_string(count);
        bench::json().set("codec_auto_picks_" + json_codec(chosen), count);
      }
      std::printf("(auto picked: %s)\n", picks.c_str());
    }
  }
}

void delta_headline() {
  std::printf(
      "\n=== C2: incremental-variant trace — full-image vs delta "
      "reconfiguration (%u clients x %zu requests, %u-frame variants, "
      "%u dirty frames per version) ===\n",
      flag_clients(), flag_requests(), kChainFrames, kDirtyFrames);
  const std::vector<int> widths = {22, 10, 14, 14, 10};
  bench::print_row({"mode", "req/s", "bytes/miss", "delta-skips", "hit%"},
                   widths);
  bench::print_rule(widths);

  const auto chains = make_chains(flag_versions());
  const auto trace = incremental_trace(workload::ArrivalMode::kClosedLoop,
                                       flag_versions(), 29);

  struct Case {
    const char* label;
    const char* key;
    bool delta;
    compress::CodecId codec;
  };
  double full_rps = 0.0, delta_rps = 0.0;
  for (const Case c :
       {Case{"full-image", "full", false, compress::CodecId::kFrameDelta},
        Case{"delta", "delta", true, compress::CodecId::kFrameDelta},
        Case{"delta + auto codec", "delta_auto", true,
             compress::CodecId::kAuto}}) {
    const auto r =
        run_case(c.delta, c.codec, core::DevicePolicy::kFifo, chains, trace);
    const double hit_rate =
        r.device.invocations ? static_cast<double>(r.device.config_hits) /
                                   static_cast<double>(r.device.invocations)
                             : 0.0;
    bench::print_row({c.label, bench::fmt("%.0f", r.server.throughput_rps),
                      bench::fmt("%.0f", bytes_per_miss(r.device)),
                      bench::fmt_u(r.device.frames_skipped_delta),
                      bench::fmt("%.0f", 100.0 * hit_rate)},
                     widths);
    if (std::string(c.key) == "full") full_rps = r.server.throughput_rps;
    if (std::string(c.key) == "delta") delta_rps = r.server.throughput_rps;
    const std::string suffix = std::string("_") + c.key;
    bench::json().set("codec_incremental_rps" + suffix,
                      r.server.throughput_rps);
    bench::json().set("codec_incremental_bytes_per_miss" + suffix,
                      bytes_per_miss(r.device));
    bench::json().set("codec_incremental_delta_skips" + suffix,
                      r.device.frames_skipped_delta);
  }
  const double speedup = full_rps > 0.0 ? delta_rps / full_rps : 0.0;
  std::printf("(delta reconfiguration speedup on this trace: %.2fx)\n",
              speedup);
  bench::json().set("codec_delta_speedup", speedup);
}

void policy_with_cost_model() {
  std::puts(
      "\n=== C3: device scheduling against the load-cost model, delta on "
      "===");
  std::puts("(open-loop incremental trace; shortest-reconfig-first orders "
            "the ready queue by Mcu::estimated_load_cost — hits and cheap "
            "delta upgrades jump ahead of cold loads)");
  const std::vector<int> widths = {22, 10, 12, 12};
  bench::print_row({"device policy", "req/s", "p50(us)", "p99(us)"}, widths);
  bench::print_rule(widths);

  const auto chains = make_chains(flag_versions());
  const auto trace = incremental_trace(workload::ArrivalMode::kOpenLoop,
                                       flag_versions(), 31);
  struct Row {
    core::DevicePolicy policy;
    const char* key;
  };
  for (const Row row :
       {Row{core::DevicePolicy::kFifo, "fifo"},
        Row{core::DevicePolicy::kShortestReconfigFirst, "shortest_first"}}) {
    const auto r = run_case(true, compress::CodecId::kFrameDelta, row.policy,
                            chains, trace);
    bench::print_row({core::to_string(row.policy),
                      bench::fmt("%.0f", r.server.throughput_rps),
                      bench::fmt("%.1f", r.server.latency.p50.microseconds()),
                      bench::fmt("%.1f", r.server.latency.p99.microseconds())},
                     widths);
    const std::string suffix = std::string("_") + row.key;
    bench::json().set("codec_policy_rps" + suffix, r.server.throughput_rps);
    bench::json().set("codec_policy_p99_us" + suffix,
                      r.server.latency.p99.microseconds());
  }
}

void fleet_cost_routing() {
  std::puts("\n=== C4: fleet routing — binary affinity vs cheapest expected "
            "reconfiguration, 2 cards, delta on ===");
  std::puts("(one client per chain, 24-frame cards: the version chains do "
            "not fit the fleet, so residency is transient and every advance "
            "misses fleet-wide.  Binary affinity falls back to least-queued "
            "— a cold load on whichever card — while cost routing sends the "
            "advance to the card whose fabric still matches the previous "
            "version's frames)");
  const std::vector<int> widths = {22, 10, 8, 13, 11};
  bench::print_row({"routing", "req/s", "hit%", "delta-routed", "fallback"},
                   widths);
  bench::print_rule(widths);

  fabric::FrameGeometry geometry;
  geometry.frame_count = 2 * kChainFrames;
  const auto chains = make_chains(flag_versions(), geometry);
  // One client walking each chain isolates the routing decision: the only
  // cross-card question is where an advance's load lands.
  workload::IncrementalConfig ic;
  ic.clients = kChains;
  ic.requests_per_client = flag_requests();
  for (unsigned g = 0; g < kChains; ++g) {
    std::vector<workload::FunctionId> chain;
    for (std::size_t v = 0; v < flag_versions(); ++v)
      chain.push_back(chain_function(g, v));
    ic.groups.push_back(std::move(chain));
  }
  ic.seed = 37;
  ic.payload_blocks = 4;
  ic.mode = workload::ArrivalMode::kOpenLoop;
  ic.advance = bench::flags().get_double("advance", 0.5);
  ic.mean_interarrival = sim::SimTime::us(120);
  const auto trace = workload::make_incremental(ic);
  for (const bool cost : {false, true}) {
    core::FleetConfig fc;
    fc.cards = 2;
    fc.policy = core::DispatchPolicy::kResidencyAffinity;
    fc.cost_routing = cost;
    fc.card.mcu.engine.delta_reconfig = true;
    // Two 12-frame functions per card: routing decides between a cold load
    // and a delta upgrade on every advance, not just before warm-up.
    fc.card.fabric.geometry = geometry;
    core::CoprocessorFleet fleet(fc);
    if (auto* sink = bench::trace_sink())
      fleet.attach_trace(*sink, std::string("codec routing cost=") +
                                    (cost ? "on" : "off"));
    for (unsigned g = 0; g < chains.size(); ++g)
      for (std::size_t v = 0; v < chains[g].size(); ++v)
        fleet.download_bitstream(chain_function(g, v), chains[g][v],
                                 compress::CodecId::kFrameDelta);
    workload::replay(fleet, trace, chain_input);
    fleet.run();
    const auto stats = fleet.stats();
    bench::print_row({cost ? "cheapest-reconfig" : "binary affinity",
                      bench::fmt("%.0f", stats.throughput_rps),
                      bench::fmt("%.0f", 100.0 * stats.hit_rate),
                      bench::fmt_u(stats.delta_routed),
                      bench::fmt_u(stats.affinity_fallback)},
                     widths);
    const std::string suffix = cost ? "_cost" : "_binary";
    bench::json().set("codec_fleet_rps" + suffix, stats.throughput_rps);
    bench::json().set("codec_fleet_hit_rate" + suffix, stats.hit_rate);
    if (cost) {
      bench::json().set("codec_fleet_delta_routed", stats.delta_routed);
      bench::json().set("codec_fleet_frames_skipped",
                        stats.frames_skipped_delta);
    }
  }
}

// Wall-clock cost of the simulator under delta tracking (not the modeled
// device): the hash-and-compare per window must stay cheap.
void BM_IncrementalReplayDelta(benchmark::State& state) {
  const auto chains = make_chains(4);
  workload::IncrementalConfig ic;
  ic.clients = 2;
  ic.requests_per_client = 8;
  for (unsigned g = 0; g < kChains; ++g) {
    std::vector<workload::FunctionId> chain;
    for (std::size_t v = 0; v < 4; ++v) chain.push_back(chain_function(g, v));
    ic.groups.push_back(std::move(chain));
  }
  ic.seed = 3;
  ic.mode = workload::ArrivalMode::kClosedLoop;
  const auto trace = workload::make_incremental(ic);
  for (auto _ : state) {
    const auto r = run_case(true, compress::CodecId::kFrameDelta,
                            core::DevicePolicy::kFifo, chains, trace);
    benchmark::DoNotOptimize(r.server.completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.total_requests()));
  state.SetLabel("requests through the delta-tracked pipeline");
}
BENCHMARK(BM_IncrementalReplayDelta)->Unit(benchmark::kMillisecond);

}  // namespace

void run_experiment() {
  codec_sweep();
  delta_headline();
  policy_with_cost_model();
  fleet_cost_routing();
}
