// Experiment F — sharded multi-card dispatch (CoprocessorFleet).
//
// One card's fabric and PCI bus bound the CoprocessorServer's throughput;
// the fleet shards the load across N cards on one simulated clock.  The
// dispatch policy decides the locality-vs-balance trade-off: round-robin
// spreads a hot function over every fabric (reconfiguring each time),
// residency-affinity chases the card that already holds the configuration
// and skips the reconfiguration entirely.  Three tables:
//
//   F1 — card-count scaling under closed-loop saturation (speedup vs 1 card),
//   F2 — dispatch-policy shoot-out at 4 cards on a Zipf-skewed trace,
//   F3 — policy hit rates across workload skew (uniform -> heavily skewed).
//
// Flags (bench_util.h parser): `--json results.json` captures the headline
// metrics machine-readably; `--cards N` caps the F1 scaling sweep
// (default 8); `--threads N` (default 1) runs every fleet on the sharded
// parallel engine; `--prefetch on` (+ optional `--predictor <conf>`)
// layers speculative configuration prefetch onto every fleet.  The default is byte-identical to the classic engine;
// with threads >= 2 these CLOSED-loop tables shift slightly (resubmissions
// round-align, see core/fleet.h FleetConfig::threads) but deterministically
// — the same thread count always reproduces the same numbers.
#include "bench_util.h"

#include <vector>

#include "core/fleet.h"
#include "workload/multiclient.h"
#include "workload/replay.h"

namespace {

using namespace aad;
using algorithms::KernelId;

using bench::request_input;

workload::MultiClientTrace saturation_trace(double zipf_s, std::uint64_t seed,
                                            unsigned clients = 16,
                                            std::size_t per_client = 24) {
  workload::MultiClientConfig wc;
  wc.clients = clients;
  wc.requests_per_client = per_client;
  wc.functions = algorithms::function_bank();
  wc.seed = seed;
  wc.zipf_s = zipf_s;
  wc.payload_blocks = 4;
  wc.mode = workload::ArrivalMode::kClosedLoop;
  return workload::make_multi_client(wc);
}

core::FleetStats run_fleet(unsigned cards, core::DispatchPolicy policy,
                           const workload::MultiClientTrace& trace) {
  core::FleetConfig fc;
  fc.cards = cards;
  fc.threads = static_cast<unsigned>(bench::flags().get_int("threads", 1));
  fc.policy = policy;
  // `--prefetch on` / `--predictor <conf>` layer speculative prefetch onto
  // every table; the default (off) regenerates the documented numbers.
  const bench::PrefetchFlags pf = bench::prefetch_flags();
  fc.server.prefetch.enabled = pf.enabled;
  fc.server.prefetch.predictor.min_confidence = pf.min_confidence;
  core::CoprocessorFleet fleet(fc);
  if (auto* sink = bench::trace_sink())
    fleet.attach_trace(*sink, std::string("fleet cards=") +
                                  std::to_string(cards) + " " +
                                  core::to_string(policy));
  fleet.download_all();
  workload::replay(fleet, trace, request_input);
  fleet.run();
  return fleet.stats();
}

void card_scaling() {
  std::puts("\n=== F1: card-count scaling, residency-affinity dispatch ===");
  std::puts("(16 closed-loop clients saturating the fleet, zipf(1.1) over "
            "the full kernel bank; every card has its own PCI bus + fabric)");
  const std::vector<int> widths = {7, 10, 13, 12, 9, 10, 10, 8};
  bench::print_row({"cards", "requests", "makespan(ms)", "req/s", "speedup",
                    "p50(us)", "p99(us)", "hit%"},
                   widths);
  bench::print_rule(widths);

  const auto trace = saturation_trace(1.1, 7);
  const auto max_cards =
      static_cast<unsigned>(bench::flags().get_int("cards", 8));
  double base_rps = 0.0;
  for (unsigned cards : {1u, 2u, 4u, 8u}) {
    if (cards > max_cards) continue;
    const auto stats =
        run_fleet(cards, core::DispatchPolicy::kResidencyAffinity, trace);
    if (cards == 1) base_rps = stats.throughput_rps;
    const double speedup = stats.throughput_rps / base_rps;

    bench::print_row(
        {std::to_string(cards), bench::fmt_u(stats.completed),
         bench::fmt("%.2f", stats.makespan.milliseconds()),
         bench::fmt("%.0f", stats.throughput_rps),
         bench::fmt("%.2fx", speedup),
         bench::fmt("%.1f", stats.latency.p50.microseconds()),
         bench::fmt("%.1f", stats.latency.p99.microseconds()),
         bench::fmt("%.0f", 100.0 * stats.hit_rate)},
        widths);

    const std::string suffix = "_cards" + std::to_string(cards);
    bench::json().set("fleet_throughput_rps" + suffix, stats.throughput_rps);
    bench::json().set("fleet_speedup" + suffix, speedup);
    bench::json().set("fleet_hit_rate" + suffix, stats.hit_rate);
    bench::json().set("fleet_p99_us" + suffix,
                      stats.latency.p99.microseconds());
  }
}

void policy_shootout() {
  std::puts("\n=== F2: dispatch policies, 4 cards, zipf(1.1) trace ===");
  std::puts("(same trace through three fleets; affinity routes a request to "
            "a card already holding the function's configuration, so the "
            "reconfiguration is skipped on arrival)");
  const std::vector<int> widths = {20, 8, 10, 10, 10, 11, 10};
  bench::print_row({"policy", "hit%", "req/s", "p50(us)", "p99(us)",
                    "aff-routed", "fallback"},
                   widths);
  bench::print_rule(widths);

  const auto trace = saturation_trace(1.1, 11);
  struct Row {
    core::DispatchPolicy policy;
    const char* key;
  };
  for (const Row row : {Row{core::DispatchPolicy::kRoundRobin, "round_robin"},
                        Row{core::DispatchPolicy::kLeastQueued, "least_queued"},
                        Row{core::DispatchPolicy::kResidencyAffinity,
                            "affinity"}}) {
    const auto stats = run_fleet(4, row.policy, trace);
    bench::print_row(
        {core::to_string(row.policy),
         bench::fmt("%.1f", 100.0 * stats.hit_rate),
         bench::fmt("%.0f", stats.throughput_rps),
         bench::fmt("%.1f", stats.latency.p50.microseconds()),
         bench::fmt("%.1f", stats.latency.p99.microseconds()),
         bench::fmt_u(stats.affinity_routed),
         bench::fmt_u(stats.affinity_fallback)},
        widths);
    bench::json().set(std::string("fleet_hit_rate_") + row.key,
                      stats.hit_rate);
    bench::json().set(std::string("fleet_throughput_rps_") + row.key,
                      stats.throughput_rps);
    if (row.policy == core::DispatchPolicy::kResidencyAffinity) {
      // Load-cost telemetry (fleet-wide MCU counters).  Delta
      // reconfiguration is off under the default card config, so
      // delta-routed and frames-skipped pin at zero here — bench_codec C4
      // exercises the cheap-delta tier; bytes_streamed tracks the ROM
      // traffic misses actually paid for.
      std::printf("(affinity telemetry: %llu bytes streamed from ROM, "
                  "%llu delta-matched frames skipped, %llu delta-routed)\n",
                  static_cast<unsigned long long>(stats.bytes_streamed),
                  static_cast<unsigned long long>(stats.frames_skipped_delta),
                  static_cast<unsigned long long>(stats.delta_routed));
      bench::json().set("fleet_bytes_streamed", stats.bytes_streamed);
      bench::json().set("fleet_frames_skipped_delta",
                        stats.frames_skipped_delta);
      bench::json().set("fleet_delta_routed", stats.delta_routed);
    }
  }
}

void skew_sweep() {
  std::puts("\n=== F3: configuration hit rate vs workload skew, 4 cards ===");
  std::puts("(affinity routing partitions the function bank across the "
            "fabrics, so it wins at every skew; round-robin only closes the "
            "gap once skew concentrates traffic on a head small enough to "
            "stay resident on every card)");
  const std::vector<int> widths = {10, 16, 14, 12};
  bench::print_row({"zipf s", "round-robin h%", "affinity h%", "delta"},
                   widths);
  bench::print_rule(widths);

  for (const double s : {0.0, 0.6, 1.1, 1.5}) {
    const auto trace = saturation_trace(s, 17, 12, 16);
    const auto rr = run_fleet(4, core::DispatchPolicy::kRoundRobin, trace);
    const auto aff =
        run_fleet(4, core::DispatchPolicy::kResidencyAffinity, trace);
    bench::print_row({bench::fmt("%.1f", s),
                      bench::fmt("%.1f", 100.0 * rr.hit_rate),
                      bench::fmt("%.1f", 100.0 * aff.hit_rate),
                      bench::fmt("%+.1f", 100.0 * (aff.hit_rate - rr.hit_rate))},
                     widths);
    const std::string suffix = bench::fmt("_s%.1f", s);
    bench::json().set("fleet_skew_rr_hit" + suffix, rr.hit_rate);
    bench::json().set("fleet_skew_aff_hit" + suffix, aff.hit_rate);
  }
}

void BM_FleetSaturatedDispatch(benchmark::State& state) {
  // Simulator wall-clock cost per request through a 4-card fleet.
  const auto trace = saturation_trace(1.1, 3, 8, 8);
  for (auto _ : state) {
    state.PauseTiming();
    core::FleetConfig fc;
    fc.cards = 4;
    fc.policy = core::DispatchPolicy::kResidencyAffinity;
    core::CoprocessorFleet fleet(fc);
    fleet.download_all();
    state.ResumeTiming();
    workload::replay(fleet, trace, request_input);
    fleet.run();
    benchmark::DoNotOptimize(fleet.stats().completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.total_requests()));
  state.SetLabel("requests through 4 sharded pipelines");
}
BENCHMARK(BM_FleetSaturatedDispatch)->Unit(benchmark::kMillisecond);

}  // namespace

void run_experiment() {
  card_scaling();
  policy_shootout();
  skew_sweep();
}
