// ROM image with the paper's two-ended layout (§2.2):
//
//   "The compressed configuration bit-streams are loaded from one end of
//    the ROM while the record table is populated from the other end."
//
// Compressed frame-payload streams grow upward from byte 0; fixed-size
// records grow downward from the top.  The ROM is full when the two regions
// would meet.  Records hold everything the microcontroller needs: start
// address and size of the compressed stream (as in the paper), the
// function's I/O sizes, and the codec/kind/footprint metadata our richer
// pipeline requires.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bitstream/bitstream.h"
#include "common/bytebuffer.h"
#include "compress/codec.h"
#include "sim/time.h"

namespace aad::memory {

using FunctionId = std::uint32_t;

struct RomRecord {
  FunctionId function_id = 0;
  std::string name;                              ///< <= 24 bytes
  bitstream::FunctionKind kind = bitstream::FunctionKind::kNetlist;
  compress::CodecId codec = compress::CodecId::kNull;
  std::uint32_t start = 0;            ///< compressed stream offset in ROM
  std::uint32_t compressed_size = 0;  ///< bytes
  std::uint32_t raw_size = 0;         ///< decompressed payload bytes
  std::uint16_t frames = 0;           ///< frame payloads in the stream
  std::uint16_t clb_rows = 0;         ///< geometry echo (load-time check)
  std::uint32_t input_width = 0;      ///< input bus bits per cycle
  std::uint32_t output_width = 0;     ///< output bus bits per cycle
  std::uint32_t kernel_id = 0;        ///< runtime-registry key
  std::uint32_t payload_crc = 0;      ///< CRC-32 of the compressed stream

  bool operator==(const RomRecord&) const = default;
};

/// Fixed on-ROM record footprint.
constexpr std::size_t kRecordBytes = 64;

Bytes serialize_record(const RomRecord& record);
RomRecord parse_record(ByteSpan data);

/// Byte-addressable ROM with the two-ended layout.
class RomImage {
 public:
  explicit RomImage(std::size_t capacity_bytes);

  /// Append a compressed stream and its record.  `record.start`,
  /// `record.compressed_size` and `record.payload_crc` are filled in here.
  /// Throws kCapacityExceeded if data and record regions would collide,
  /// kAlreadyExists on a duplicate function id.
  RomRecord store(RomRecord record, ByteSpan compressed);

  std::optional<RomRecord> lookup(FunctionId id) const;
  const std::vector<RomRecord>& records() const noexcept { return records_; }

  /// Borrow the compressed stream of a record.
  ByteSpan payload(const RomRecord& record) const;

  // --- fault injection + recovery ------------------------------------------
  // The record table (and its payload_crc) is the driver's ground truth;
  // only the stored stream bytes take damage, so a corrupted payload is
  // detected by the configuration engine's CRC check at load time.

  /// Flip `bit_flips` payload bits of `id`'s compressed stream, drawn
  /// deterministically from `seed` (sim::RomCorruption's mechanism).
  /// Returns false (no-op) when the id is unknown or the payload is empty.
  bool corrupt_payload(FunctionId id, std::uint64_t seed, unsigned bit_flips);

  /// Overwrite `id`'s payload bytes in place — the host's re-fetch path
  /// after a CRC reject (the record, including payload_crc, is unchanged).
  /// `bytes` must match the record's compressed_size exactly.
  void rewrite_payload(FunctionId id, ByteSpan bytes);

  std::size_t capacity() const noexcept { return storage_.size(); }
  std::size_t data_bytes() const noexcept { return data_end_; }
  std::size_t record_bytes() const noexcept {
    return records_.size() * kRecordBytes;
  }
  std::size_t free_bytes() const noexcept {
    return storage_.size() - data_end_ - record_bytes();
  }

  /// Erase everything (re-provisioning from the host).
  void clear();

 private:
  Bytes storage_;
  std::size_t data_end_ = 0;          // data region: [0, data_end_)
  std::vector<RomRecord> records_;    // record region grows from the top
};

/// ROM access timing (2005-era parallel flash: slow random word access,
/// faster page-sequential streaming).
struct RomTiming {
  sim::SimTime first_word = sim::SimTime::ns(120);
  sim::SimTime sequential_word = sim::SimTime::ns(60);  // per 32-bit word
  double write_multiplier = 4.0;  ///< programming is ~4x slower than reading

  sim::SimTime read_time(std::size_t bytes) const noexcept {
    if (bytes == 0) return sim::SimTime::zero();
    const std::size_t words = (bytes + 3) / 4;
    return first_word + sequential_word * static_cast<std::int64_t>(words - 1);
  }
  sim::SimTime write_time(std::size_t bytes) const noexcept {
    const auto base = read_time(bytes);
    return sim::SimTime::ps(static_cast<std::int64_t>(
        static_cast<double>(base.picoseconds()) * write_multiplier));
  }
};

}  // namespace aad::memory
