// Local RAM: the staging buffer between the PCI interface and the data
// input / output-collection modules (paper §2.3).  Inputs land here before
// being fed to the fabric; outputs are collected here before the PCI
// read-back.  A bump allocator models the firmware's per-invocation buffer
// management; the high-water mark sizes the part.
#pragma once

#include <cstdint>

#include "common/bytebuffer.h"
#include "sim/time.h"

namespace aad::memory {

struct RamTiming {
  sim::Frequency clock = sim::Frequency::mhz(100);  // SRAM @ MCU bus speed
  unsigned words_per_cycle = 2;  // 64-bit local SRAM bus

  sim::SimTime access_time(std::size_t bytes) const noexcept {
    const std::size_t words = (bytes + 3) / 4;
    return clock.cycles(static_cast<std::int64_t>(
        (words + words_per_cycle - 1) / words_per_cycle));
  }
};

class LocalRam {
 public:
  explicit LocalRam(std::size_t capacity_bytes);

  /// Reserve `bytes` for a buffer; returns its offset.
  /// Throws kCapacityExceeded when the part is too small.
  std::size_t allocate(std::size_t bytes);

  /// Release all per-invocation buffers (end of command).
  void reset_allocation() noexcept { bump_ = 0; }

  void write(std::size_t offset, ByteSpan data);
  ByteSpan read(std::size_t offset, std::size_t bytes) const;

  std::size_t capacity() const noexcept { return storage_.size(); }
  std::size_t high_water_mark() const noexcept { return high_water_; }

 private:
  Bytes storage_;
  std::size_t bump_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace aad::memory
