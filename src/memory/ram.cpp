#include "memory/ram.h"

#include <algorithm>

namespace aad::memory {

LocalRam::LocalRam(std::size_t capacity_bytes)
    : storage_(capacity_bytes, 0) {
  AAD_REQUIRE(capacity_bytes > 0, "RAM capacity must be positive");
}

std::size_t LocalRam::allocate(std::size_t bytes) {
  if (bump_ + bytes > storage_.size())
    AAD_FAIL(ErrorCode::kCapacityExceeded, "local RAM exhausted");
  const std::size_t offset = bump_;
  bump_ += bytes;
  high_water_ = std::max(high_water_, bump_);
  return offset;
}

void LocalRam::write(std::size_t offset, ByteSpan data) {
  AAD_REQUIRE(offset + data.size() <= storage_.size(),
              "RAM write out of range");
  std::copy(data.begin(), data.end(),
            storage_.begin() + static_cast<std::ptrdiff_t>(offset));
}

ByteSpan LocalRam::read(std::size_t offset, std::size_t bytes) const {
  AAD_REQUIRE(offset + bytes <= storage_.size(), "RAM read out of range");
  return ByteSpan(storage_.data() + offset, bytes);
}

}  // namespace aad::memory
