#include "memory/rom.h"

#include <algorithm>

#include "common/crc32.h"
#include "common/prng.h"

namespace aad::memory {

Bytes serialize_record(const RomRecord& record) {
  AAD_REQUIRE(record.name.size() <= bitstream::kNameBytes,
              "record name too long");
  ByteWriter w;
  w.u32(record.function_id);
  w.fixed_string(record.name, bitstream::kNameBytes);
  w.u8(static_cast<std::uint8_t>(record.kind));
  w.u8(static_cast<std::uint8_t>(record.codec));
  w.u16(record.frames);
  w.u16(record.clb_rows);
  w.u32(record.start);
  w.u32(record.compressed_size);
  w.u32(record.raw_size);
  w.u32(record.input_width);
  w.u32(record.output_width);
  w.u32(record.kernel_id);
  w.u32(record.payload_crc);
  // Pad to the fixed footprint.
  while (w.size() < kRecordBytes - 2) w.u8(0);
  // Record checksum (16-bit fold of CRC-32) closes the slot.
  const std::uint32_t crc = Crc32::compute(w.data());
  w.u16(static_cast<std::uint16_t>(crc ^ (crc >> 16)));
  AAD_CHECK(w.size() == kRecordBytes, "record footprint drifted");
  return std::move(w).take();
}

RomRecord parse_record(ByteSpan data) {
  AAD_REQUIRE(data.size() == kRecordBytes, "record slot size mismatch");
  {
    const std::uint32_t crc = Crc32::compute(data.subspan(0, kRecordBytes - 2));
    const std::uint16_t expect =
        static_cast<std::uint16_t>(crc ^ (crc >> 16));
    const std::uint16_t stored = static_cast<std::uint16_t>(
        data[kRecordBytes - 2] | (data[kRecordBytes - 1] << 8));
    if (stored != expect)
      AAD_FAIL(ErrorCode::kCorruptData, "ROM record checksum mismatch");
  }
  ByteReader r(data);
  RomRecord rec;
  rec.function_id = r.u32();
  rec.name = r.fixed_string(bitstream::kNameBytes);
  const auto kind_raw = r.u8();
  if (kind_raw > static_cast<std::uint8_t>(bitstream::FunctionKind::kBehavioral))
    AAD_FAIL(ErrorCode::kCorruptData, "ROM record kind invalid");
  rec.kind = static_cast<bitstream::FunctionKind>(kind_raw);
  const auto codec_raw = r.u8();
  if (codec_raw > static_cast<std::uint8_t>(compress::CodecId::kDeltaGolomb))
    AAD_FAIL(ErrorCode::kCorruptData, "ROM record codec invalid");
  rec.codec = static_cast<compress::CodecId>(codec_raw);
  rec.frames = r.u16();
  rec.clb_rows = r.u16();
  rec.start = r.u32();
  rec.compressed_size = r.u32();
  rec.raw_size = r.u32();
  rec.input_width = r.u32();
  rec.output_width = r.u32();
  rec.kernel_id = r.u32();
  rec.payload_crc = r.u32();
  return rec;
}

RomImage::RomImage(std::size_t capacity_bytes)
    : storage_(capacity_bytes, 0) {
  AAD_REQUIRE(capacity_bytes >= 2 * kRecordBytes, "ROM capacity too small");
}

RomRecord RomImage::store(RomRecord record, ByteSpan compressed) {
  if (lookup(record.function_id))
    AAD_FAIL(ErrorCode::kAlreadyExists,
             "function id already stored: " + std::to_string(record.function_id));
  const std::size_t needed = compressed.size() + kRecordBytes;
  if (data_end_ + record_bytes() + needed > storage_.size())
    AAD_FAIL(ErrorCode::kCapacityExceeded,
             "ROM full: data and record regions would collide");

  record.start = static_cast<std::uint32_t>(data_end_);
  record.compressed_size = static_cast<std::uint32_t>(compressed.size());
  record.payload_crc = Crc32::compute(compressed);

  // Data region grows upward from byte 0 ...
  std::copy(compressed.begin(), compressed.end(),
            storage_.begin() + static_cast<std::ptrdiff_t>(data_end_));
  data_end_ += compressed.size();

  // ... and the record table downward from the top.
  const Bytes slot = serialize_record(record);
  const std::size_t slot_offset =
      storage_.size() - (records_.size() + 1) * kRecordBytes;
  std::copy(slot.begin(), slot.end(),
            storage_.begin() + static_cast<std::ptrdiff_t>(slot_offset));

  records_.push_back(record);
  return record;
}

std::optional<RomRecord> RomImage::lookup(FunctionId id) const {
  for (const RomRecord& rec : records_)
    if (rec.function_id == id) return rec;
  return std::nullopt;
}

ByteSpan RomImage::payload(const RomRecord& record) const {
  AAD_REQUIRE(record.start + record.compressed_size <= data_end_,
              "record payload outside ROM data region");
  return ByteSpan(storage_.data() + record.start, record.compressed_size);
}

bool RomImage::corrupt_payload(FunctionId id, std::uint64_t seed,
                               unsigned bit_flips) {
  const auto record = lookup(id);
  if (!record || record->compressed_size == 0) return false;
  Prng rng(seed);
  for (unsigned i = 0; i < bit_flips; ++i) {
    const std::size_t bit = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(record->compressed_size) * 8));
    storage_[record->start + bit / 8] ^= static_cast<Byte>(1u << (bit % 8));
  }
  return bit_flips > 0;
}

void RomImage::rewrite_payload(FunctionId id, ByteSpan bytes) {
  const auto record = lookup(id);
  AAD_REQUIRE(record.has_value(), "rewriting an unknown function's payload");
  AAD_REQUIRE(bytes.size() == record->compressed_size,
              "re-fetched payload size differs from the stored record");
  std::copy(bytes.begin(), bytes.end(),
            storage_.begin() + static_cast<std::ptrdiff_t>(record->start));
}

void RomImage::clear() {
  std::fill(storage_.begin(), storage_.end(), Byte{0});
  data_end_ = 0;
  records_.clear();
}

}  // namespace aad::memory
