// Multi-client traffic for the event-driven CoprocessorServer.
//
// A MultiClientTrace is per-client request sequences plus arrival timing in
// one of the two classic load-generation disciplines:
//   * open loop   — each client's requests arrive at pre-drawn absolute
//                   offsets (Poisson by default), regardless of how fast the
//                   card serves them: the queue grows under overload;
//   * closed loop — each client keeps at most one request outstanding and
//                   submits the next one `offset` (think time) after the
//                   previous completion: load self-limits to the card.
//
// Generation is pure data (deterministic in the seed); replay.h drives a
// trace through a server.
#pragma once

#include <cstdint>
#include <vector>

#include "common/prng.h"
#include "sim/time.h"
#include "workload/trace.h"

namespace aad::workload {

enum class ArrivalMode {
  kOpenLoop,    ///< offsets are absolute arrival times from trace start
  kClosedLoop,  ///< offsets are think times after the previous completion
};

struct ClientRequest {
  FunctionId function = 0;
  std::size_t payload_blocks = 1;
  /// Open loop: arrival offset from trace start (non-decreasing per client).
  /// Closed loop: think time between previous completion and this submit.
  sim::SimTime offset;
};

struct ClientTrace {
  unsigned client = 0;
  std::vector<ClientRequest> requests;
};

struct MultiClientTrace {
  ArrivalMode mode = ArrivalMode::kClosedLoop;
  std::vector<ClientTrace> clients;

  std::size_t total_requests() const noexcept {
    std::size_t n = 0;
    for (const auto& c : clients) n += c.requests.size();
    return n;
  }
};

struct MultiClientConfig {
  unsigned clients = 4;
  std::size_t requests_per_client = 32;
  std::vector<FunctionId> functions;  ///< the bank every client draws from
  std::uint64_t seed = 1;
  std::size_t payload_blocks = 1;
  ArrivalMode mode = ArrivalMode::kClosedLoop;
  /// Function popularity skew: 0 = uniform, > 0 = Zipf(s) (clients share the
  /// popularity ranking, which is what makes config hits possible at all).
  double zipf_s = 0.0;
  /// Open loop: mean of the exponential inter-arrival time per client.
  sim::SimTime mean_interarrival = sim::SimTime::us(200);
  /// Closed loop: mean of the exponential think time (zero = submit the
  /// next request the instant the previous completes — saturation load).
  sim::SimTime mean_think_time = sim::SimTime::zero();
};

/// Deterministic in `config.seed`; each client gets an independent stream.
MultiClientTrace make_multi_client(const MultiClientConfig& config);

/// Bursty same-function traffic: the workload request batching feeds on.
///
/// Real accelerator traffic is rarely a uniform shuffle — a client that
/// needs a kernel tends to need it many times in a row (a TLS handshake
/// storm hitting RSA, a filter bank streaming FIR blocks).  Each client
/// emits `bursts` bursts; a burst picks ONE function (Zipf-skewed when
/// `zipf_s` > 0, shared popularity ranking across clients) and issues
/// `burst_size` requests for it with short exponential intra-burst gaps,
/// then pauses for a longer exponential inter-burst gap before the next
/// burst.  Arrivals are open-loop absolute offsets, so concurrent bursts
/// from different clients interleave at the card — exactly the arrival
/// pattern where same-function batching pays and an unbatched FIFO device
/// stage thrashes its configuration state.
struct BurstyConfig {
  unsigned clients = 4;
  std::size_t bursts = 8;             ///< bursts per client
  std::size_t burst_size = 8;         ///< requests per burst
  std::vector<FunctionId> functions;  ///< burst-function bank
  std::uint64_t seed = 1;
  std::size_t payload_blocks = 1;
  /// Burst-function popularity skew: 0 = uniform, > 0 = Zipf(s).
  double zipf_s = 0.0;
  /// Mean exponential gap between requests INSIDE a burst (small: the
  /// burst arrives nearly back-to-back).
  sim::SimTime mean_intra_gap = sim::SimTime::us(5);
  /// Mean exponential gap BETWEEN bursts of one client.
  sim::SimTime mean_inter_gap = sim::SimTime::us(400);
};

/// Deterministic in `config.seed`; returns an open-loop MultiClientTrace,
/// so workload::replay drives it through a server or fleet unchanged.
MultiClientTrace make_bursty(const BurstyConfig& config);

/// Incremental-variant traffic: the workload delta reconfiguration feeds on.
///
/// An edit-compile-run loop, an adaptive filter re-tuned between blocks, a
/// kernel recompiled with new constants — each produces a CHAIN of function
/// versions whose bitstreams differ in a handful of frames.  `groups` holds
/// those chains (each inner vector is one chain, adjacent versions nearly
/// identical on the fabric); clients are assigned chains round-robin, start
/// at version 0, and on each request advance to the next version with
/// probability `advance` (wrapping cyclically), otherwise re-invoke the
/// version they are on.  Under full-image reconfiguration every advance is
/// a cold miss; under delta reconfiguration it reloads only the frames the
/// new version actually changed.
struct IncrementalConfig {
  unsigned clients = 4;
  std::size_t requests_per_client = 32;
  /// Version chains: groups[g][v] is version v of chain g.  Every chain
  /// needs at least one version; a one-version chain never misses after
  /// its first load.
  std::vector<std::vector<FunctionId>> groups;
  std::uint64_t seed = 1;
  std::size_t payload_blocks = 1;
  ArrivalMode mode = ArrivalMode::kOpenLoop;
  /// Probability a request moves its client to the chain's next version.
  double advance = 0.5;
  /// Open loop: mean of the exponential inter-arrival time per client.
  sim::SimTime mean_interarrival = sim::SimTime::us(200);
  /// Closed loop: mean of the exponential think time.
  sim::SimTime mean_think_time = sim::SimTime::zero();
};

/// Deterministic in `config.seed`; each client gets an independent stream.
MultiClientTrace make_incremental(const IncrementalConfig& config);

/// Phase-shifting traffic: the workload speculative prefetch feeds on — and
/// residency affinity alone does not.
///
/// Each client walks a sliding WINDOW over the function bank: within a
/// phase it cycles its window round-robin (so "after f comes g" is a
/// perfect first-order Markov signal), and every `requests_per_phase`
/// requests the window SLIDES by `phase_stride` functions.  The functions a
/// phase introduces have never been routed anywhere — residency affinity
/// has no card to prefer and eats a cold miss per new function — but a
/// predictor that has learned the cycle knows the next function the moment
/// the previous one completes, and a prefetch hides the load in the idle
/// window.  Clients start at staggered offsets so their working sets
/// overlap only partially, defeating the "one hot card holds everything"
/// degenerate case.  `wander` adds uniform noise draws that break the
/// cycle, dialing the predictor's attainable confidence down from 1.
struct PhasedConfig {
  unsigned clients = 4;
  std::size_t phases = 4;              ///< phases per client
  std::size_t requests_per_phase = 24; ///< requests before the window slides
  std::vector<FunctionId> functions;   ///< bank the windows slide over
  std::size_t working_set = 3;         ///< window size (functions per phase)
  std::size_t phase_stride = 2;        ///< window slide between phases
  std::uint64_t seed = 1;
  std::size_t payload_blocks = 1;
  /// Probability a request ignores the cycle and draws uniformly from the
  /// whole bank instead (0 = pure cycle, perfectly predictable).
  double wander = 0.0;
  /// Mean of the exponential inter-arrival time per client (open loop).
  sim::SimTime mean_interarrival = sim::SimTime::us(200);
};

/// Deterministic in `config.seed`; returns an open-loop MultiClientTrace.
MultiClientTrace make_phased(const PhasedConfig& config);

}  // namespace aad::workload
