// Request-trace generators for the replacement and end-to-end experiments.
//
// A trace is a sequence of function requests.  The shapes below cover the
// regimes that distinguish replacement policies:
//   * uniform     — no locality; all policies converge
//   * zipf        — skewed popularity (network/crypto service mixes);
//                   recency-aware policies win
//   * round-robin — cyclic over more functions than fit; LRU's worst case
//   * phased      — long phases using a small working set, then a switch
//   * markov      — sticky transitions (bursty back-to-back reuse)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/prng.h"

namespace aad::workload {

using FunctionId = std::uint32_t;

struct Request {
  FunctionId function;
  std::size_t payload_blocks = 1;  ///< kernel-specific payload size knob
};

using Trace = std::vector<Request>;

struct TraceConfig {
  std::vector<FunctionId> functions;  ///< the bank to draw from
  std::size_t length = 1000;
  std::uint64_t seed = 1;
  std::size_t payload_blocks = 1;
};

Trace make_uniform(const TraceConfig& config);

/// Zipf(s) over the function bank (rank 1 most popular).
Trace make_zipf(const TraceConfig& config, double s);

/// f0, f1, ..., fN-1, f0, f1, ... — the canonical LRU-adversarial loop.
Trace make_round_robin(const TraceConfig& config);

/// Phases of `phase_length` requests drawn from a working set of
/// `working_set` functions; the set shifts by one each phase.
Trace make_phased(const TraceConfig& config, std::size_t working_set,
                  std::size_t phase_length);

/// Two-state per-function stickiness: with probability `stay` the next
/// request repeats the current function, otherwise uniform re-draw.
Trace make_markov(const TraceConfig& config, double stay);

/// Function-id sequence of a trace (for Belady's future knowledge).
std::vector<FunctionId> function_sequence(const Trace& trace);

}  // namespace aad::workload
