// Replays a MultiClientTrace through an event-driven server.
//
// Header-only template so the workload layer stays independent of core: any
// server exposing the CoprocessorServer submission surface works — a single
// card's core::CoprocessorServer and the sharded core::CoprocessorFleet are
// driven interchangeably —
//
//   submit_function_at(when, client, function, Bytes input, completion)
//   now()
//
// where `completion` receives a record with a `complete_time` member.
//
// Open loop: every request is scheduled up front at its absolute arrival
// offset.  Closed loop: each client primes one request; the completion hook
// submits the next one after its think time, so at most one request per
// client is ever outstanding.  After replay(), drive server.run() to
// execute the trace.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "workload/multiclient.h"

namespace aad::workload {

namespace detail {

template <typename Server, typename MakeInput>
void submit_chain(Server& server,
                  std::shared_ptr<const std::vector<ClientRequest>> requests,
                  std::shared_ptr<std::size_t> next, unsigned client,
                  sim::SimTime when, MakeInput make_input) {
  const ClientRequest& r = (*requests)[*next];
  const std::size_t index = (*next)++;
  server.submit_function_at(
      when, client, r.function, make_input(r.function, r.payload_blocks, index),
      [&server, requests, next, client, make_input](const auto& done) {
        if (*next < requests->size()) {
          const sim::SimTime think = (*requests)[*next].offset;
          submit_chain(server, requests, next, client,
                       done.complete_time + think, make_input);
        }
      });
}

}  // namespace detail

/// Prime `server` with `trace`.  `make_input(function, payload_blocks,
/// index) -> Bytes` builds each request's payload.  Returns the number of
/// requests submitted immediately (open loop: all of them; closed loop: one
/// per client — the rest follow from completion hooks during run()).
/// The server must outlive its run(); the trace may be discarded.
template <typename Server, typename MakeInput>
std::size_t replay(Server& server, const MultiClientTrace& trace,
                   MakeInput make_input) {
  std::size_t submitted = 0;
  const sim::SimTime start = server.now();
  for (const ClientTrace& ct : trace.clients) {
    if (ct.requests.empty()) continue;
    if (trace.mode == ArrivalMode::kOpenLoop) {
      for (std::size_t i = 0; i < ct.requests.size(); ++i) {
        const ClientRequest& r = ct.requests[i];
        server.submit_function_at(
            start + r.offset, ct.client, r.function,
            make_input(r.function, r.payload_blocks, i), {});
        ++submitted;
      }
    } else {
      auto requests =
          std::make_shared<const std::vector<ClientRequest>>(ct.requests);
      auto next = std::make_shared<std::size_t>(0);
      detail::submit_chain(server, std::move(requests), std::move(next),
                           ct.client, start + ct.requests.front().offset,
                           make_input);
      ++submitted;
    }
  }
  return submitted;
}

}  // namespace aad::workload
