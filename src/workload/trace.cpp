#include "workload/trace.h"

#include <cmath>

#include "common/error.h"

namespace aad::workload {
namespace {

void require_bank(const TraceConfig& config) {
  AAD_REQUIRE(!config.functions.empty(), "trace needs a function bank");
  AAD_REQUIRE(config.length > 0, "trace length must be positive");
}

}  // namespace

Trace make_uniform(const TraceConfig& config) {
  require_bank(config);
  Prng rng(config.seed);
  Trace trace;
  trace.reserve(config.length);
  for (std::size_t i = 0; i < config.length; ++i)
    trace.push_back(
        Request{config.functions[rng.next_below(config.functions.size())],
                config.payload_blocks});
  return trace;
}

Trace make_zipf(const TraceConfig& config, double s) {
  require_bank(config);
  AAD_REQUIRE(s > 0.0, "zipf exponent must be positive");
  Prng rng(config.seed);
  // Cumulative Zipf mass over ranks (function i has rank i+1).
  std::vector<double> cdf(config.functions.size());
  double total = 0.0;
  for (std::size_t r = 0; r < cdf.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[r] = total;
  }
  Trace trace;
  trace.reserve(config.length);
  for (std::size_t i = 0; i < config.length; ++i) {
    const double u = rng.next_double() * total;
    std::size_t rank = 0;
    while (rank + 1 < cdf.size() && cdf[rank] < u) ++rank;
    trace.push_back(Request{config.functions[rank], config.payload_blocks});
  }
  return trace;
}

Trace make_round_robin(const TraceConfig& config) {
  require_bank(config);
  Trace trace;
  trace.reserve(config.length);
  for (std::size_t i = 0; i < config.length; ++i)
    trace.push_back(Request{config.functions[i % config.functions.size()],
                            config.payload_blocks});
  return trace;
}

Trace make_phased(const TraceConfig& config, std::size_t working_set,
                  std::size_t phase_length) {
  require_bank(config);
  AAD_REQUIRE(working_set >= 1 && working_set <= config.functions.size(),
              "working set must fit the bank");
  AAD_REQUIRE(phase_length >= 1, "phase length must be positive");
  Prng rng(config.seed);
  Trace trace;
  trace.reserve(config.length);
  std::size_t base = 0;
  for (std::size_t i = 0; i < config.length; ++i) {
    if (i > 0 && i % phase_length == 0) ++base;  // shift the window
    const std::size_t pick =
        (base + rng.next_below(working_set)) % config.functions.size();
    trace.push_back(Request{config.functions[pick], config.payload_blocks});
  }
  return trace;
}

Trace make_markov(const TraceConfig& config, double stay) {
  require_bank(config);
  AAD_REQUIRE(stay >= 0.0 && stay < 1.0, "stay probability must be in [0,1)");
  Prng rng(config.seed);
  Trace trace;
  trace.reserve(config.length);
  FunctionId current =
      config.functions[rng.next_below(config.functions.size())];
  for (std::size_t i = 0; i < config.length; ++i) {
    if (!rng.next_bool(stay))
      current = config.functions[rng.next_below(config.functions.size())];
    trace.push_back(Request{current, config.payload_blocks});
  }
  return trace;
}

std::vector<FunctionId> function_sequence(const Trace& trace) {
  std::vector<FunctionId> out;
  out.reserve(trace.size());
  for (const Request& r : trace) out.push_back(r.function);
  return out;
}

}  // namespace aad::workload
