#include "workload/multiclient.h"

#include <cmath>

#include "common/error.h"

namespace aad::workload {
namespace {

/// Exponential draw with the given mean (zero mean -> always zero).
sim::SimTime exponential(Prng& rng, sim::SimTime mean) {
  if (mean <= sim::SimTime::zero()) return sim::SimTime::zero();
  const double u = rng.next_double();
  const double scale = -std::log(1.0 - u);
  return sim::SimTime::ps(static_cast<std::int64_t>(
      static_cast<double>(mean.picoseconds()) * scale));
}

}  // namespace

MultiClientTrace make_multi_client(const MultiClientConfig& config) {
  AAD_REQUIRE(!config.functions.empty(),
              "multi-client trace needs a function bank");
  AAD_REQUIRE(config.clients >= 1, "need at least one client");
  AAD_REQUIRE(config.requests_per_client >= 1,
              "need at least one request per client");

  MultiClientTrace trace;
  trace.mode = config.mode;
  trace.clients.resize(config.clients);

  for (unsigned c = 0; c < config.clients; ++c) {
    ClientTrace& ct = trace.clients[c];
    ct.client = c;

    // Reuse the single-stream generators for the function sequence so the
    // popularity shapes match the replacement experiments exactly.
    TraceConfig tc;
    tc.functions = config.functions;
    tc.length = config.requests_per_client;
    tc.seed = config.seed * 1000003ull + c;
    tc.payload_blocks = config.payload_blocks;
    const Trace sequence = config.zipf_s > 0.0
                               ? make_zipf(tc, config.zipf_s)
                               : make_uniform(tc);

    Prng arrivals(tc.seed ^ 0xA5A5A5A5A5A5A5A5ull);
    sim::SimTime clock;  // open loop: running arrival time
    ct.requests.reserve(sequence.size());
    for (const Request& r : sequence) {
      ClientRequest cr;
      cr.function = r.function;
      cr.payload_blocks = r.payload_blocks;
      if (config.mode == ArrivalMode::kOpenLoop) {
        clock += exponential(arrivals, config.mean_interarrival);
        cr.offset = clock;
      } else {
        cr.offset = exponential(arrivals, config.mean_think_time);
      }
      ct.requests.push_back(cr);
    }
  }
  return trace;
}

MultiClientTrace make_bursty(const BurstyConfig& config) {
  AAD_REQUIRE(!config.functions.empty(), "bursty trace needs a function bank");
  AAD_REQUIRE(config.clients >= 1, "need at least one client");
  AAD_REQUIRE(config.bursts >= 1, "need at least one burst per client");
  AAD_REQUIRE(config.burst_size >= 1, "need at least one request per burst");

  MultiClientTrace trace;
  trace.mode = ArrivalMode::kOpenLoop;
  trace.clients.resize(config.clients);

  for (unsigned c = 0; c < config.clients; ++c) {
    ClientTrace& ct = trace.clients[c];
    ct.client = c;

    // One draw per burst through the single-stream generators, so the
    // burst-function popularity shapes match the replacement experiments
    // exactly (and the ranking is shared across clients, which is what
    // lets fleet affinity converge concurrent bursts).
    TraceConfig tc;
    tc.functions = config.functions;
    tc.length = config.bursts;
    tc.seed = config.seed * 1000003ull + c;
    tc.payload_blocks = config.payload_blocks;
    const Trace burst_functions = config.zipf_s > 0.0
                                      ? make_zipf(tc, config.zipf_s)
                                      : make_uniform(tc);

    Prng arrivals(tc.seed ^ 0x5B5B5B5B5B5B5B5Bull);
    sim::SimTime clock;  // running open-loop arrival time
    ct.requests.reserve(config.bursts * config.burst_size);
    for (const Request& burst : burst_functions) {
      clock += exponential(arrivals, config.mean_inter_gap);
      for (std::size_t i = 0; i < config.burst_size; ++i) {
        if (i > 0) clock += exponential(arrivals, config.mean_intra_gap);
        ClientRequest cr;
        cr.function = burst.function;
        cr.payload_blocks = burst.payload_blocks;
        cr.offset = clock;
        ct.requests.push_back(cr);
      }
    }
  }
  return trace;
}

MultiClientTrace make_incremental(const IncrementalConfig& config) {
  AAD_REQUIRE(!config.groups.empty(),
              "incremental trace needs at least one version chain");
  for (const auto& chain : config.groups)
    AAD_REQUIRE(!chain.empty(), "every version chain needs a version");
  AAD_REQUIRE(config.clients >= 1, "need at least one client");
  AAD_REQUIRE(config.requests_per_client >= 1,
              "need at least one request per client");
  AAD_REQUIRE(config.advance >= 0.0 && config.advance <= 1.0,
              "advance must be a probability");

  MultiClientTrace trace;
  trace.mode = config.mode;
  trace.clients.resize(config.clients);

  for (unsigned c = 0; c < config.clients; ++c) {
    ClientTrace& ct = trace.clients[c];
    ct.client = c;

    const auto& chain = config.groups[c % config.groups.size()];
    Prng rng(config.seed * 1000003ull + c);
    Prng arrivals((config.seed * 1000003ull + c) ^ 0xC3C3C3C3C3C3C3C3ull);

    std::size_t version = 0;
    sim::SimTime clock;  // open loop: running arrival time
    ct.requests.reserve(config.requests_per_client);
    for (std::size_t i = 0; i < config.requests_per_client; ++i) {
      // Advance BEFORE the first use too, except on request 0 — every
      // client's first request exercises version 0, so a fleet's cards
      // warm up on the same base image.
      if (i > 0 && rng.next_double() < config.advance)
        version = (version + 1) % chain.size();
      ClientRequest cr;
      cr.function = chain[version];
      cr.payload_blocks = config.payload_blocks;
      if (config.mode == ArrivalMode::kOpenLoop) {
        clock += exponential(arrivals, config.mean_interarrival);
        cr.offset = clock;
      } else {
        cr.offset = exponential(arrivals, config.mean_think_time);
      }
      ct.requests.push_back(cr);
    }
  }
  return trace;
}

MultiClientTrace make_phased(const PhasedConfig& config) {
  AAD_REQUIRE(!config.functions.empty(), "phased trace needs a function bank");
  AAD_REQUIRE(config.clients >= 1, "need at least one client");
  AAD_REQUIRE(config.phases >= 1, "need at least one phase per client");
  AAD_REQUIRE(config.requests_per_phase >= 1,
              "need at least one request per phase");
  AAD_REQUIRE(config.working_set >= 1, "window needs at least one function");
  AAD_REQUIRE(config.working_set <= config.functions.size(),
              "window larger than the function bank");
  AAD_REQUIRE(config.wander >= 0.0 && config.wander <= 1.0,
              "wander must be a probability");

  MultiClientTrace trace;
  trace.mode = ArrivalMode::kOpenLoop;
  trace.clients.resize(config.clients);

  const std::size_t bank = config.functions.size();
  for (unsigned c = 0; c < config.clients; ++c) {
    ClientTrace& ct = trace.clients[c];
    ct.client = c;

    // Staggered start: client c's windows begin c * working_set into the
    // bank, so concurrent clients overlap only partially and no single
    // card can simply hold the union resident.
    const std::size_t base = (static_cast<std::size_t>(c) * config.working_set) % bank;
    Prng rng(config.seed * 1000003ull + c);
    Prng arrivals((config.seed * 1000003ull + c) ^ 0xD7D7D7D7D7D7D7D7ull);

    sim::SimTime clock;  // running open-loop arrival time
    ct.requests.reserve(config.phases * config.requests_per_phase);
    for (std::size_t p = 0; p < config.phases; ++p) {
      const std::size_t start = (base + p * config.phase_stride) % bank;
      for (std::size_t i = 0; i < config.requests_per_phase; ++i) {
        ClientRequest cr;
        if (config.wander > 0.0 && rng.next_double() < config.wander) {
          cr.function =
              config.functions[rng.next_below(static_cast<std::uint64_t>(bank))];
        } else {
          cr.function = config.functions[(start + i % config.working_set) % bank];
        }
        cr.payload_blocks = config.payload_blocks;
        clock += exponential(arrivals, config.mean_interarrival);
        cr.offset = clock;
        ct.requests.push_back(cr);
      }
    }
  }
  return trace;
}

}  // namespace aad::workload
