// Parameterized circuit generators.
//
// These build the gate-level netlists of the functions that run *for real*
// on the simulated fabric (as opposed to the large behavioral kernels).
// Every generator returns a validated Netlist with named ports; widths are
// generator parameters so tests can sweep them.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace aad::netlist {

/// Ripple-carry adder.  Ports: in a[width], b[width]; out sum[width], cout[1].
Netlist make_ripple_adder(unsigned width);

/// XOR parity tree.  Ports: in data[width]; out parity[1].
Netlist make_parity(unsigned width);

/// Population count.  Ports: in data[width]; out count[ceil(log2(width+1))].
Netlist make_popcount(unsigned width);

/// Unsigned comparator.  Ports: in a[width], b[width]; out eq[1], lt[1]
/// (lt is a < b).
Netlist make_comparator(unsigned width);

/// Binary-to-Gray encoder.  Ports: in bin[width]; out gray[width].
Netlist make_gray_encoder(unsigned width);

/// Fibonacci LFSR with parallel load.
/// Ports: in init[width], load[1]; out state[width].
/// When load=1 the state is replaced by `init`; otherwise it shifts right
/// with the XOR of `taps` (bit positions) fed into the MSB.
Netlist make_lfsr(unsigned width, const std::vector<unsigned>& taps);

/// CRC-32 (IEEE, reflected) datapath, 8 bits per cycle.
/// Ports: in byte[8], valid[1]; out crc[32].
/// Registers hold the *finalized* CRC of the bytes consumed so far (the
/// xor-out is absorbed into the register encoding), so reset state 0 encodes
/// the standard 0xFFFFFFFF seed.  `valid`=0 holds state (drain cycle).
Netlist make_crc32_datapath();

/// Unsigned array multiplier.  Ports: in a[width], b[width];
/// out product[2*width].
Netlist make_array_multiplier(unsigned width);

}  // namespace aad::netlist
