// Gate-level netlist intermediate representation.
//
// Circuits destined for the simulated fabric are described as a DAG of
// primitive gates plus D flip-flops, with named multi-bit ports.  The LUT
// mapper (lutmap.h) lowers this IR to a LUT4 network which the placer packs
// into CLBs and frames.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace aad::netlist {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = ~NodeId{0};

enum class GateKind : std::uint8_t {
  kInput,   ///< primary input bit
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kXor,
  kNand,
  kNor,
  kXnor,
  kMux,     ///< fanin[2] ? fanin[1] : fanin[0]  (select is fanin 2)
  kDff,     ///< D flip-flop; fanin[0] = D, output = Q (state element)
};

const char* to_string(GateKind kind) noexcept;

/// Number of fanins each gate kind requires (kInput/kConst* take 0).
unsigned fanin_count(GateKind kind) noexcept;

struct Node {
  GateKind kind = GateKind::kConst0;
  std::vector<NodeId> fanins;
};

/// A named multi-bit port (bit 0 first).
struct Port {
  std::string name;
  std::vector<NodeId> bits;
};

/// A combinational + sequential netlist with named ports.
///
/// Invariants enforced by validate(): fanins reference earlier-created or
/// any existing nodes, fanin arity matches the gate kind, and the
/// combinational subgraph (treating DFF outputs as sources) is acyclic.
class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  // --- construction -------------------------------------------------------
  NodeId add_input();
  NodeId add_const(bool value);
  NodeId add_gate(GateKind kind, std::vector<NodeId> fanins);
  /// Convenience unary/binary/ternary builders.
  NodeId add_not(NodeId a) { return add_gate(GateKind::kNot, {a}); }
  NodeId add_buf(NodeId a) { return add_gate(GateKind::kBuf, {a}); }
  NodeId add_and(NodeId a, NodeId b) { return add_gate(GateKind::kAnd, {a, b}); }
  NodeId add_or(NodeId a, NodeId b) { return add_gate(GateKind::kOr, {a, b}); }
  NodeId add_xor(NodeId a, NodeId b) { return add_gate(GateKind::kXor, {a, b}); }
  NodeId add_nand(NodeId a, NodeId b) { return add_gate(GateKind::kNand, {a, b}); }
  NodeId add_nor(NodeId a, NodeId b) { return add_gate(GateKind::kNor, {a, b}); }
  NodeId add_xnor(NodeId a, NodeId b) { return add_gate(GateKind::kXnor, {a, b}); }
  NodeId add_mux(NodeId if0, NodeId if1, NodeId sel) {
    return add_gate(GateKind::kMux, {if0, if1, sel});
  }
  /// A D flip-flop whose D fanin may be set later (for feedback loops).
  NodeId add_dff(NodeId d = kInvalidNode);
  void connect_dff(NodeId dff, NodeId d);

  /// Declare a named input port over existing kInput nodes.
  void bind_input_port(const std::string& name, std::vector<NodeId> bits);
  /// Declare a named input port, creating `width` fresh input nodes.
  std::vector<NodeId> add_input_port(const std::string& name, std::size_t width);
  /// Declare a named output port driven by arbitrary nodes.
  void bind_output_port(const std::string& name, std::vector<NodeId> bits);

  // --- inspection ---------------------------------------------------------
  std::size_t node_count() const noexcept { return nodes_.size(); }
  const Node& node(NodeId id) const;
  const std::vector<Port>& input_ports() const noexcept { return input_ports_; }
  const std::vector<Port>& output_ports() const noexcept { return output_ports_; }
  const Port& input_port(const std::string& name) const;
  const Port& output_port(const std::string& name) const;

  /// All primary-input node ids, in port declaration order.
  std::vector<NodeId> ordered_inputs() const;
  /// All output bits, in port declaration order.
  std::vector<NodeId> ordered_outputs() const;
  std::size_t input_bit_count() const;
  std::size_t output_bit_count() const;

  /// Gate population excluding inputs/constants/buffers.
  std::size_t logic_gate_count() const noexcept;
  std::size_t dff_count() const noexcept;

  /// Topological order of the combinational graph (DFFs treated as sources;
  /// their D fanin is a sink edge).  Throws kInvalidArgument on a
  /// combinational cycle.
  std::vector<NodeId> topological_order() const;

  /// Full structural validation; throws on the first violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Port> input_ports_;
  std::vector<Port> output_ports_;
};

}  // namespace aad::netlist
