#include "netlist/lutmap.h"

#include <unordered_map>
#include <vector>

namespace aad::netlist {
namespace {

/// Mapper-internal reference: a LUT-network net plus a pending negation that
/// will be folded into the consuming truth table.
struct Ref {
  NetRef net;
  bool neg = false;
};

/// Truth table of `kind` over pins 0..2 with input polarities folded in.
/// Unused high pins replicate, so any 2-input table is valid as a LUT4.
std::uint16_t gate_truth(GateKind kind, bool n0, bool n1, bool n2) {
  std::uint16_t truth = 0;
  for (unsigned idx = 0; idx < 16; ++idx) {
    const bool a = (((idx >> 0) & 1u) != 0) != n0;
    const bool b = (((idx >> 1) & 1u) != 0) != n1;
    const bool c = (((idx >> 2) & 1u) != 0) != n2;
    bool v = false;
    switch (kind) {
      case GateKind::kAnd: v = a && b; break;
      case GateKind::kOr: v = a || b; break;
      case GateKind::kXor: v = a != b; break;
      case GateKind::kNand: v = !(a && b); break;
      case GateKind::kNor: v = !(a || b); break;
      case GateKind::kXnor: v = a == b; break;
      case GateKind::kMux: v = c ? b : a; break;
      default:
        AAD_FAIL(ErrorCode::kInternal, "gate_truth on non-logic kind");
    }
    if (v) truth = static_cast<std::uint16_t>(truth | (1u << idx));
  }
  return truth;
}

constexpr std::uint16_t kPassP0 = 0xAAAA;    // f = pin0
constexpr std::uint16_t kInvertP0 = 0x5555;  // f = !pin0

}  // namespace

LutNetwork map_to_luts(const Netlist& netlist, MapStats* stats) {
  netlist.validate();
  MapStats st;
  st.gates_in = netlist.logic_gate_count();

  LutNetwork out(netlist.name(), netlist.input_bit_count(),
                 netlist.output_bit_count());

  // Primary-input bit position per input node.
  std::unordered_map<NodeId, std::uint32_t> input_bit;
  {
    const auto inputs = netlist.ordered_inputs();
    for (std::uint32_t i = 0; i < inputs.size(); ++i) input_bit[inputs[i]] = i;
  }

  const std::size_t n = netlist.node_count();
  std::vector<Ref> ref(n);

  // Pass 1: pre-create one FF slot per DFF so registered references resolve
  // regardless of feedback direction.
  std::unordered_map<NodeId, std::uint32_t> ff_slot;
  for (NodeId id = 0; id < n; ++id) {
    if (netlist.node(id).kind != GateKind::kDff) continue;
    LutSlot slot;
    slot.has_ff = true;
    slot.truth = kPassP0;
    const std::uint32_t s = out.add_slot(slot);
    ff_slot.emplace(id, s);
    ref[id] = Ref{NetRef{NetKind::kLutReg, s}, false};
  }

  // Pass 2: map combinational nodes in topological order.
  for (NodeId id : netlist.topological_order()) {
    const Node& node = netlist.node(id);
    switch (node.kind) {
      case GateKind::kInput: {
        const auto it = input_bit.find(id);
        AAD_REQUIRE(it != input_bit.end(),
                    "primary input not bound to any input port");
        ref[id] = Ref{NetRef{NetKind::kPrimary, it->second}, false};
        break;
      }
      case GateKind::kConst0:
        ref[id] = Ref{NetRef{NetKind::kConst0, 0}, false};
        break;
      case GateKind::kConst1:
        ref[id] = Ref{NetRef{NetKind::kConst1, 0}, false};
        break;
      case GateKind::kBuf:
        ref[id] = ref[node.fanins[0]];
        ++st.buffers_elided;
        break;
      case GateKind::kNot:
        ref[id] = ref[node.fanins[0]];
        ref[id].neg = !ref[id].neg;
        ++st.inverters_folded;
        break;
      case GateKind::kDff:
        break;  // handled in passes 1 and 3
      default: {
        const Ref f0 = ref[node.fanins[0]];
        const Ref f1 = node.fanins.size() > 1 ? ref[node.fanins[1]] : Ref{};
        const Ref f2 = node.fanins.size() > 2 ? ref[node.fanins[2]] : Ref{};
        LutSlot slot;
        slot.truth = gate_truth(node.kind, f0.neg, f1.neg, f2.neg);
        slot.pins[0] = f0.net;
        if (node.fanins.size() > 1) slot.pins[1] = f1.net;
        if (node.fanins.size() > 2) slot.pins[2] = f2.net;
        ref[id] = Ref{NetRef{NetKind::kLutComb, out.add_slot(slot)}, false};
        break;
      }
    }
  }

  // Pass 3: connect DFF D paths (may be forward references; legal on FF
  // slots because they latch post-settle).
  for (const auto& [id, slot_index] : ff_slot) {
    const Ref d = ref[netlist.node(id).fanins[0]];
    LutSlot& slot = out.slot(slot_index);
    slot.pins[0] = d.net;
    slot.truth = d.neg ? kInvertP0 : kPassP0;
  }

  // Pass 4: bind output bits.  Prefer flagging the driving slot directly;
  // fall back to a pass-through LUT when the driver is a primary input, a
  // constant, a negated net, or a slot already bound to another bit.
  const auto outputs = netlist.ordered_outputs();
  for (std::uint16_t bit = 0; bit < outputs.size(); ++bit) {
    const Ref r = ref[outputs[bit]];
    const bool direct =
        !r.neg &&
        (r.net.kind == NetKind::kLutComb || r.net.kind == NetKind::kLutReg) &&
        !out.slot(r.net.index).is_output;
    if (direct) {
      LutSlot& slot = out.slot(r.net.index);
      slot.is_output = true;
      slot.output_bit = bit;
    } else {
      LutSlot pass;
      pass.truth = r.neg ? kInvertP0 : kPassP0;
      pass.pins[0] = r.net;
      pass.is_output = true;
      pass.output_bit = bit;
      out.add_slot(pass);
      ++st.passthroughs_added;
    }
  }

  st.luts_out = out.lut_count();
  st.ffs_out = out.ff_count();
  if (stats) *stats = st;
  out.validate();
  return out;
}

}  // namespace aad::netlist
