#include "netlist/optimize.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

namespace aad::netlist {
namespace {

constexpr NodeId kNone = kInvalidNode;

bool is_commutative(GateKind kind) {
  switch (kind) {
    case GateKind::kAnd:
    case GateKind::kOr:
    case GateKind::kXor:
    case GateKind::kNand:
    case GateKind::kNor:
    case GateKind::kXnor:
      return true;
    default:
      return false;
  }
}

/// One rewrite pass: constant folding + structural hashing + DCE.
class Rewriter {
 public:
  explicit Rewriter(const Netlist& in, OptStats& stats)
      : in_(in), out_(in.name()), stats_(stats) {}

  Netlist run() {
    compute_liveness();
    map_.assign(in_.node_count(), kNone);

    // Keep every primary input (port widths are part of the contract).
    for (NodeId id = 0; id < in_.node_count(); ++id)
      if (in_.node(id).kind == GateKind::kInput) map_[id] = out_.add_input();

    // Pre-create live DFFs so feedback references resolve.
    std::vector<std::pair<NodeId, NodeId>> dffs;  // old, new
    for (NodeId id = 0; id < in_.node_count(); ++id) {
      if (in_.node(id).kind != GateKind::kDff) continue;
      if (!live_[id]) {
        ++stats_.dead_removed;
        continue;
      }
      map_[id] = out_.add_dff();
      dffs.emplace_back(id, map_[id]);
    }

    for (NodeId id : in_.topological_order()) {
      const Node& node = in_.node(id);
      if (map_[id] != kNone) continue;  // inputs / DFFs already placed
      if (!live_[id]) {
        // (dead DFFs were already counted in the pre-create loop)
        if (node.kind != GateKind::kInput && node.kind != GateKind::kDff)
          ++stats_.dead_removed;
        continue;
      }
      map_[id] = rewrite(node);
    }

    // Connect DFF D paths.
    for (const auto& [old_id, new_id] : dffs)
      out_.connect_dff(new_id, map_at(in_.node(old_id).fanins[0]));

    // Rebind ports.
    for (const Port& p : in_.input_ports()) {
      std::vector<NodeId> bits;
      for (NodeId b : p.bits) bits.push_back(map_at(b));
      out_.bind_input_port(p.name, std::move(bits));
    }
    for (const Port& p : in_.output_ports()) {
      std::vector<NodeId> bits;
      for (NodeId b : p.bits) bits.push_back(map_at(b));
      out_.bind_output_port(p.name, std::move(bits));
    }
    out_.validate();
    return std::move(out_);
  }

 private:
  void compute_liveness() {
    live_.assign(in_.node_count(), false);
    std::vector<NodeId> work;
    auto mark = [&](NodeId id) {
      if (!live_[id]) {
        live_[id] = true;
        work.push_back(id);
      }
    };
    for (NodeId id : in_.ordered_outputs()) mark(id);
    while (!work.empty()) {
      const NodeId id = work.back();
      work.pop_back();
      for (NodeId f : in_.node(id).fanins) mark(f);
    }
  }

  NodeId map_at(NodeId old_id) const {
    AAD_CHECK(map_[old_id] != kNone, "reference to an unmapped node");
    return map_[old_id];
  }

  NodeId const_node(bool value) {
    NodeId& slot = value ? const1_ : const0_;
    if (slot == kNone) slot = out_.add_const(value);
    return slot;
  }

  bool is_const(NodeId new_id, bool value) const {
    return value ? new_id == const1_ : new_id == const0_;
  }
  bool is_any_const(NodeId new_id) const {
    return new_id == const0_ || new_id == const1_;
  }
  bool const_value(NodeId new_id) const { return new_id == const1_; }

  /// Hash-consed gate creation (after folding failed to simplify).
  NodeId emit(GateKind kind, std::vector<NodeId> fanins) {
    std::vector<NodeId> key_fanins = fanins;
    if (is_commutative(kind))
      std::sort(key_fanins.begin(), key_fanins.end());
    const auto key = std::make_tuple(kind, key_fanins);
    if (const auto it = hash_.find(key); it != hash_.end()) {
      ++stats_.gates_merged;
      return it->second;
    }
    const NodeId id = out_.add_gate(kind, std::move(fanins));
    hash_.emplace(key, id);
    return id;
  }

  NodeId emit_not(NodeId a) {
    if (is_any_const(a)) {
      ++stats_.constants_folded;
      return const_node(!const_value(a));
    }
    return emit(GateKind::kNot, {a});
  }

  NodeId rewrite(const Node& node) {
    switch (node.kind) {
      case GateKind::kConst0:
        return const_node(false);
      case GateKind::kConst1:
        return const_node(true);
      case GateKind::kBuf:
        return map_at(node.fanins[0]);
      case GateKind::kNot:
        return emit_not(map_at(node.fanins[0]));
      case GateKind::kMux:
        return rewrite_mux(node);
      default:
        return rewrite_binary(node);
    }
  }

  NodeId rewrite_mux(const Node& node) {
    const NodeId if0 = map_at(node.fanins[0]);
    const NodeId if1 = map_at(node.fanins[1]);
    const NodeId sel = map_at(node.fanins[2]);
    if (is_any_const(sel)) {
      ++stats_.constants_folded;
      return const_value(sel) ? if1 : if0;
    }
    if (if0 == if1) {
      ++stats_.constants_folded;
      return if0;
    }
    // mux(0, 1, s) = s ; mux(1, 0, s) = !s.
    if (is_const(if0, false) && is_const(if1, true)) {
      ++stats_.constants_folded;
      return sel;
    }
    if (is_const(if0, true) && is_const(if1, false)) {
      ++stats_.constants_folded;
      return emit_not(sel);
    }
    return emit(GateKind::kMux, {if0, if1, sel});
  }

  NodeId rewrite_binary(const Node& node) {
    const GateKind kind = node.kind;
    NodeId a = map_at(node.fanins[0]);
    NodeId b = map_at(node.fanins[1]);
    // Both constant: evaluate outright.
    if (is_any_const(a) && is_any_const(b)) {
      const bool va = const_value(a);
      const bool vb = const_value(b);
      bool v = false;
      switch (kind) {
        case GateKind::kAnd: v = va && vb; break;
        case GateKind::kOr: v = va || vb; break;
        case GateKind::kXor: v = va != vb; break;
        case GateKind::kNand: v = !(va && vb); break;
        case GateKind::kNor: v = !(va || vb); break;
        case GateKind::kXnor: v = va == vb; break;
        default: AAD_CHECK(false, "unexpected binary kind");
      }
      ++stats_.constants_folded;
      return const_node(v);
    }
    // One constant: identity / annihilator / inverter rules.
    if (is_any_const(a)) std::swap(a, b);  // constant (if any) now in b
    if (is_any_const(b)) {
      const bool v = const_value(b);
      ++stats_.constants_folded;
      switch (kind) {
        case GateKind::kAnd: return v ? a : const_node(false);
        case GateKind::kOr: return v ? const_node(true) : a;
        case GateKind::kXor: return v ? emit_not(a) : a;
        case GateKind::kNand: return v ? emit_not(a) : const_node(true);
        case GateKind::kNor: return v ? const_node(false) : emit_not(a);
        case GateKind::kXnor: return v ? a : emit_not(a);
        default: break;
      }
      AAD_CHECK(false, "unexpected binary kind");
    }
    // x op x identities.
    if (a == b) {
      ++stats_.constants_folded;
      switch (kind) {
        case GateKind::kAnd:
        case GateKind::kOr:
          return a;
        case GateKind::kXor: return const_node(false);
        case GateKind::kXnor: return const_node(true);
        case GateKind::kNand:
        case GateKind::kNor:
          return emit_not(a);
        default: break;
      }
    }
    return emit(kind, {a, b});
  }

  const Netlist& in_;
  Netlist out_;
  OptStats& stats_;
  std::vector<bool> live_;
  std::vector<NodeId> map_;
  NodeId const0_ = kNone;
  NodeId const1_ = kNone;
  std::map<std::tuple<GateKind, std::vector<NodeId>>, NodeId> hash_;
};

}  // namespace

Netlist optimize(const Netlist& input, OptStats* stats) {
  OptStats st;
  st.nodes_in = input.node_count();
  // Aliasing can expose new folds; iterate to a fixed point (bounded).
  Netlist current = Rewriter(input, st).run();
  for (int round = 0; round < 3; ++round) {
    const std::size_t before = current.node_count();
    current = Rewriter(current, st).run();
    if (current.node_count() == before) break;
  }
  st.nodes_out = current.node_count();
  if (stats) *stats = st;
  return current;
}

}  // namespace aad::netlist
