#include "netlist/lutnetwork.h"

#include <algorithm>

namespace aad::netlist {

std::uint32_t LutNetwork::add_slot(const LutSlot& slot) {
  slots_.push_back(slot);
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

LutSlot& LutNetwork::slot(std::uint32_t index) {
  AAD_REQUIRE(index < slots_.size(), "slot index out of range");
  return slots_[index];
}

std::size_t LutNetwork::ff_count() const noexcept {
  return static_cast<std::size_t>(std::count_if(
      slots_.begin(), slots_.end(), [](const LutSlot& s) { return s.has_ff; }));
}

void LutNetwork::validate() const {
  std::vector<bool> output_seen(output_width_, false);
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    const LutSlot& s = slots_[i];
    for (const NetRef& ref : s.pins) {
      switch (ref.kind) {
        case NetKind::kUnused:
        case NetKind::kConst0:
        case NetKind::kConst1:
          break;
        case NetKind::kPrimary:
          AAD_REQUIRE(ref.index < input_width_,
                      "primary pin beyond input bus width");
          break;
        case NetKind::kLutComb:
          // Combinational chains settle in slot order.  FF slots are exempt:
          // their D path is sampled after the whole network settles.
          AAD_REQUIRE(ref.index < slots_.size(), "comb pin out of range");
          AAD_REQUIRE(s.has_ff || ref.index < i,
                      "forward combinational reference outside an FF D-path");
          break;
        case NetKind::kLutReg:
          AAD_REQUIRE(ref.index < slots_.size(), "reg pin out of range");
          AAD_REQUIRE(slots_[ref.index].has_ff,
                      "registered reference to a slot without an FF");
          break;
      }
    }
    if (s.is_output) {
      AAD_REQUIRE(s.output_bit < output_width_,
                  "output bit beyond output bus width");
      AAD_REQUIRE(!output_seen[s.output_bit], "output bit driven twice");
      output_seen[s.output_bit] = true;
    }
  }
  for (std::size_t b = 0; b < output_width_; ++b)
    AAD_REQUIRE(output_seen[b], "output bit " + std::to_string(b) +
                                    " has no driver");
}

LutExecutor::LutExecutor(const LutNetwork& network)
    : network_(network),
      comb_(network.slots().size(), false),
      regs_(network.slots().size(), false) {
  network.validate();
}

void LutExecutor::reset() {
  std::fill(comb_.begin(), comb_.end(), false);
  std::fill(regs_.begin(), regs_.end(), false);
  cycles_ = 0;
}

bool LutExecutor::resolve(const NetRef& ref,
                          const std::vector<bool>& inputs) const {
  switch (ref.kind) {
    case NetKind::kUnused:
    case NetKind::kConst0:
      return false;
    case NetKind::kConst1:
      return true;
    case NetKind::kPrimary:
      return inputs[ref.index];
    case NetKind::kLutComb:
      return comb_[ref.index];
    case NetKind::kLutReg:
      return regs_[ref.index];
  }
  return false;
}

std::vector<bool> LutExecutor::step(const std::vector<bool>& inputs) {
  AAD_REQUIRE(inputs.size() == network_.input_width(),
              "executor input width mismatch");
  const auto& slots = network_.slots();

  // Phase 1: combinational settle in slot order.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const LutSlot& s = slots[i];
    comb_[i] = eval_truth(s.truth, resolve(s.pins[0], inputs),
                          resolve(s.pins[1], inputs),
                          resolve(s.pins[2], inputs),
                          resolve(s.pins[3], inputs));
  }
  // Phase 2: sample the output bus *pre-latch* — registered outputs read the
  // current state, matching the gate-level Simulator's semantics.
  std::vector<bool> outputs(network_.output_width(), false);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const LutSlot& s = slots[i];
    if (s.is_output) outputs[s.output_bit] = s.has_ff ? regs_[i] : comb_[i];
  }

  // Phase 3: FF slots re-evaluate their LUT post-settle (legalizes forward
  // D-path references) and latch.
  std::vector<bool> next_regs = regs_;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const LutSlot& s = slots[i];
    if (!s.has_ff) continue;
    next_regs[i] = eval_truth(s.truth, resolve(s.pins[0], inputs),
                              resolve(s.pins[1], inputs),
                              resolve(s.pins[2], inputs),
                              resolve(s.pins[3], inputs));
  }
  regs_.swap(next_regs);
  ++cycles_;
  return outputs;
}

}  // namespace aad::netlist
