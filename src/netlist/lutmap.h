// LUT4 technology mapper: lowers a gate-level Netlist to a LutNetwork.
//
// Mapping strategy (classic greedy structural mapping):
//   * buffers are aliased away;
//   * inverters with any fanout are *absorbed* into consumer truth tables
//     (polarity folding), so a NOT never costs a LUT;
//   * each remaining 2/3-input gate becomes one LUT4;
//   * DFFs become FF slots whose LUT routes the D signal;
//   * output bits driven by primary inputs/constants/folded inverters get a
//     pass-through LUT so the data-collection module always reads slots.
#pragma once

#include "netlist/lutnetwork.h"
#include "netlist/netlist.h"

namespace aad::netlist {

struct MapStats {
  std::size_t gates_in = 0;       ///< logic gates in the source netlist
  std::size_t luts_out = 0;       ///< slots emitted
  std::size_t ffs_out = 0;
  std::size_t inverters_folded = 0;
  std::size_t buffers_elided = 0;
  std::size_t passthroughs_added = 0;
};

/// Map `netlist` to a LUT4 network.  The result validates and, by
/// construction, computes the same function (see tests/netlist for the
/// differential check against the gate-level Simulator).
LutNetwork map_to_luts(const Netlist& netlist, MapStats* stats = nullptr);

}  // namespace aad::netlist
