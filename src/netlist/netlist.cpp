#include "netlist/netlist.h"

#include <algorithm>

namespace aad::netlist {

const char* to_string(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kInput: return "input";
    case GateKind::kConst0: return "const0";
    case GateKind::kConst1: return "const1";
    case GateKind::kBuf: return "buf";
    case GateKind::kNot: return "not";
    case GateKind::kAnd: return "and";
    case GateKind::kOr: return "or";
    case GateKind::kXor: return "xor";
    case GateKind::kNand: return "nand";
    case GateKind::kNor: return "nor";
    case GateKind::kXnor: return "xnor";
    case GateKind::kMux: return "mux";
    case GateKind::kDff: return "dff";
  }
  return "?";
}

unsigned fanin_count(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kInput:
    case GateKind::kConst0:
    case GateKind::kConst1:
      return 0;
    case GateKind::kBuf:
    case GateKind::kNot:
    case GateKind::kDff:
      return 1;
    case GateKind::kAnd:
    case GateKind::kOr:
    case GateKind::kXor:
    case GateKind::kNand:
    case GateKind::kNor:
    case GateKind::kXnor:
      return 2;
    case GateKind::kMux:
      return 3;
  }
  return 0;
}

NodeId Netlist::add_input() {
  nodes_.push_back(Node{GateKind::kInput, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Netlist::add_const(bool value) {
  nodes_.push_back(Node{value ? GateKind::kConst1 : GateKind::kConst0, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Netlist::add_gate(GateKind kind, std::vector<NodeId> fanins) {
  AAD_REQUIRE(kind != GateKind::kInput && kind != GateKind::kDff,
              "use add_input/add_dff for source nodes");
  AAD_REQUIRE(fanins.size() == fanin_count(kind),
              std::string("gate arity mismatch for ") + to_string(kind));
  for (NodeId f : fanins)
    AAD_REQUIRE(f < nodes_.size(), "fanin references unknown node");
  nodes_.push_back(Node{kind, std::move(fanins)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Netlist::add_dff(NodeId d) {
  if (d != kInvalidNode)
    AAD_REQUIRE(d < nodes_.size(), "DFF D fanin references unknown node");
  nodes_.push_back(Node{GateKind::kDff, {d}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Netlist::connect_dff(NodeId dff, NodeId d) {
  AAD_REQUIRE(dff < nodes_.size() && nodes_[dff].kind == GateKind::kDff,
              "connect_dff target is not a DFF");
  AAD_REQUIRE(d < nodes_.size(), "DFF D fanin references unknown node");
  nodes_[dff].fanins[0] = d;
}

void Netlist::bind_input_port(const std::string& name,
                              std::vector<NodeId> bits) {
  for (NodeId b : bits)
    AAD_REQUIRE(b < nodes_.size() && nodes_[b].kind == GateKind::kInput,
                "input port bit is not a primary input");
  input_ports_.push_back(Port{name, std::move(bits)});
}

std::vector<NodeId> Netlist::add_input_port(const std::string& name,
                                            std::size_t width) {
  std::vector<NodeId> bits(width);
  for (auto& b : bits) b = add_input();
  bind_input_port(name, bits);
  return bits;
}

void Netlist::bind_output_port(const std::string& name,
                               std::vector<NodeId> bits) {
  for (NodeId b : bits)
    AAD_REQUIRE(b < nodes_.size(), "output port bit references unknown node");
  output_ports_.push_back(Port{name, std::move(bits)});
}

const Node& Netlist::node(NodeId id) const {
  AAD_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const Port& Netlist::input_port(const std::string& name) const {
  for (const Port& p : input_ports_)
    if (p.name == name) return p;
  AAD_FAIL(ErrorCode::kNotFound, "no input port named " + name);
}

const Port& Netlist::output_port(const std::string& name) const {
  for (const Port& p : output_ports_)
    if (p.name == name) return p;
  AAD_FAIL(ErrorCode::kNotFound, "no output port named " + name);
}

std::vector<NodeId> Netlist::ordered_inputs() const {
  std::vector<NodeId> out;
  for (const Port& p : input_ports_)
    out.insert(out.end(), p.bits.begin(), p.bits.end());
  return out;
}

std::vector<NodeId> Netlist::ordered_outputs() const {
  std::vector<NodeId> out;
  for (const Port& p : output_ports_)
    out.insert(out.end(), p.bits.begin(), p.bits.end());
  return out;
}

std::size_t Netlist::input_bit_count() const { return ordered_inputs().size(); }
std::size_t Netlist::output_bit_count() const { return ordered_outputs().size(); }

std::size_t Netlist::logic_gate_count() const noexcept {
  std::size_t n = 0;
  for (const Node& node : nodes_) {
    switch (node.kind) {
      case GateKind::kInput:
      case GateKind::kConst0:
      case GateKind::kConst1:
      case GateKind::kBuf:
        break;
      default:
        ++n;
    }
  }
  return n;
}

std::size_t Netlist::dff_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(), [](const Node& n) {
        return n.kind == GateKind::kDff;
      }));
}

std::vector<NodeId> Netlist::topological_order() const {
  // Kahn's algorithm over the combinational graph: DFF outputs are sources
  // (their Q is available at cycle start); the D input edge is ignored here.
  const std::size_t n = nodes_.size();
  std::vector<std::uint32_t> pending(n, 0);
  std::vector<std::vector<NodeId>> fanouts(n);
  for (NodeId id = 0; id < n; ++id) {
    const Node& node = nodes_[id];
    if (node.kind == GateKind::kDff) continue;  // source in this view
    for (NodeId f : node.fanins) {
      fanouts[f].push_back(id);
      ++pending[id];
    }
  }
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < n; ++id)
    if (pending[id] == 0) ready.push_back(id);
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (NodeId out : fanouts[id])
      if (--pending[out] == 0) ready.push_back(out);
  }
  AAD_REQUIRE(order.size() == n, "netlist has a combinational cycle");
  return order;
}

void Netlist::validate() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    AAD_REQUIRE(node.fanins.size() == fanin_count(node.kind),
                "node arity mismatch");
    for (NodeId f : node.fanins)
      AAD_REQUIRE(f != kInvalidNode && f < nodes_.size(),
                  "dangling fanin (unconnected DFF?)");
  }
  (void)topological_order();  // throws on combinational cycles
  for (const Port& p : output_ports_)
    AAD_REQUIRE(!p.bits.empty(), "empty output port " + p.name);
}

}  // namespace aad::netlist
