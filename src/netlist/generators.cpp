#include "netlist/generators.h"

#include <deque>

namespace aad::netlist {
namespace {

struct SumCarry {
  NodeId sum;
  NodeId carry;
};

SumCarry full_adder(Netlist& nl, NodeId a, NodeId b, NodeId cin) {
  const NodeId axb = nl.add_xor(a, b);
  const NodeId sum = nl.add_xor(axb, cin);
  const NodeId carry = nl.add_or(nl.add_and(a, b), nl.add_and(axb, cin));
  return {sum, carry};
}

SumCarry half_adder(Netlist& nl, NodeId a, NodeId b) {
  return {nl.add_xor(a, b), nl.add_and(a, b)};
}

/// Ripple add of two bit-vectors (LSB first, possibly different widths);
/// returns width max(w)+1 including the final carry.
std::vector<NodeId> ripple_add(Netlist& nl, std::vector<NodeId> a,
                               std::vector<NodeId> b) {
  if (a.size() < b.size()) a.swap(b);
  std::vector<NodeId> out;
  out.reserve(a.size() + 1);
  NodeId carry = kInvalidNode;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i < b.size()) {
      const SumCarry sc = (carry == kInvalidNode)
                              ? half_adder(nl, a[i], b[i])
                              : full_adder(nl, a[i], b[i], carry);
      out.push_back(sc.sum);
      carry = sc.carry;
    } else if (carry != kInvalidNode) {
      const SumCarry sc = half_adder(nl, a[i], carry);
      out.push_back(sc.sum);
      carry = sc.carry;
    } else {
      out.push_back(nl.add_buf(a[i]));
    }
  }
  out.push_back(carry == kInvalidNode ? nl.add_const(false)
                                      : nl.add_buf(carry));
  return out;
}

}  // namespace

Netlist make_ripple_adder(unsigned width) {
  AAD_REQUIRE(width >= 1, "adder width must be >= 1");
  Netlist nl("rca" + std::to_string(width));
  const auto a = nl.add_input_port("a", width);
  const auto b = nl.add_input_port("b", width);
  std::vector<NodeId> sum;
  NodeId carry = nl.add_const(false);
  for (unsigned i = 0; i < width; ++i) {
    const SumCarry sc = full_adder(nl, a[i], b[i], carry);
    sum.push_back(sc.sum);
    carry = sc.carry;
  }
  nl.bind_output_port("sum", sum);
  nl.bind_output_port("cout", {carry});
  nl.validate();
  return nl;
}

Netlist make_parity(unsigned width) {
  AAD_REQUIRE(width >= 1, "parity width must be >= 1");
  Netlist nl("parity" + std::to_string(width));
  const auto data = nl.add_input_port("data", width);
  // Balanced XOR tree keeps logic depth logarithmic.
  std::deque<NodeId> work(data.begin(), data.end());
  while (work.size() > 1) {
    const NodeId x = work.front();
    work.pop_front();
    const NodeId y = work.front();
    work.pop_front();
    work.push_back(nl.add_xor(x, y));
  }
  nl.bind_output_port("parity", {work.front()});
  nl.validate();
  return nl;
}

Netlist make_popcount(unsigned width) {
  AAD_REQUIRE(width >= 1, "popcount width must be >= 1");
  Netlist nl("popcount" + std::to_string(width));
  const auto data = nl.add_input_port("data", width);
  // Adder tree: start with `width` one-bit numbers, repeatedly ripple-add
  // the two shortest until a single number remains.
  std::deque<std::vector<NodeId>> numbers;
  for (NodeId bit : data) numbers.push_back({bit});
  while (numbers.size() > 1) {
    auto a = numbers.front();
    numbers.pop_front();
    auto b = numbers.front();
    numbers.pop_front();
    numbers.push_back(ripple_add(nl, std::move(a), std::move(b)));
  }
  // Trim to the exact output width: ceil(log2(width+1)) bits.
  unsigned out_width = 1;
  while ((1u << out_width) < width + 1) ++out_width;
  auto result = numbers.front();
  result.resize(out_width, nl.add_const(false));
  nl.bind_output_port("count", result);
  nl.validate();
  return nl;
}

Netlist make_comparator(unsigned width) {
  AAD_REQUIRE(width >= 1, "comparator width must be >= 1");
  Netlist nl("cmp" + std::to_string(width));
  const auto a = nl.add_input_port("a", width);
  const auto b = nl.add_input_port("b", width);
  // MSB-down scan: lt accumulates (!a[i] & b[i]) qualified by equality of
  // all higher bits.
  NodeId eq_prefix = nl.add_const(true);
  NodeId lt = nl.add_const(false);
  for (int i = static_cast<int>(width) - 1; i >= 0; --i) {
    const NodeId bit_eq = nl.add_xnor(a[static_cast<unsigned>(i)],
                                      b[static_cast<unsigned>(i)]);
    const NodeId bit_lt = nl.add_and(nl.add_not(a[static_cast<unsigned>(i)]),
                                     b[static_cast<unsigned>(i)]);
    lt = nl.add_or(lt, nl.add_and(eq_prefix, bit_lt));
    eq_prefix = nl.add_and(eq_prefix, bit_eq);
  }
  nl.bind_output_port("eq", {eq_prefix});
  nl.bind_output_port("lt", {lt});
  nl.validate();
  return nl;
}

Netlist make_gray_encoder(unsigned width) {
  AAD_REQUIRE(width >= 1, "gray width must be >= 1");
  Netlist nl("gray" + std::to_string(width));
  const auto bin = nl.add_input_port("bin", width);
  std::vector<NodeId> gray(width);
  for (unsigned i = 0; i + 1 < width; ++i) gray[i] = nl.add_xor(bin[i], bin[i + 1]);
  gray[width - 1] = nl.add_buf(bin[width - 1]);
  nl.bind_output_port("gray", gray);
  nl.validate();
  return nl;
}

Netlist make_lfsr(unsigned width, const std::vector<unsigned>& taps) {
  AAD_REQUIRE(width >= 2, "lfsr width must be >= 2");
  AAD_REQUIRE(!taps.empty(), "lfsr needs at least one tap");
  for (unsigned t : taps)
    AAD_REQUIRE(t < width, "lfsr tap beyond register width");
  Netlist nl("lfsr" + std::to_string(width));
  const auto init = nl.add_input_port("init", width);
  const auto load = nl.add_input_port("load", 1);

  std::vector<NodeId> regs(width);
  for (auto& r : regs) r = nl.add_dff();

  NodeId feedback = regs[taps[0]];
  for (std::size_t i = 1; i < taps.size(); ++i)
    feedback = nl.add_xor(feedback, regs[taps[i]]);

  for (unsigned i = 0; i < width; ++i) {
    const NodeId shifted = (i + 1 < width) ? regs[i + 1] : feedback;
    nl.connect_dff(regs[i], nl.add_mux(shifted, init[i], load[0]));
  }
  nl.bind_output_port("state", regs);
  nl.validate();
  return nl;
}

Netlist make_crc32_datapath() {
  constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE polynomial
  Netlist nl("crc32");
  const auto byte = nl.add_input_port("byte", 8);
  const auto valid = nl.add_input_port("valid", 1);

  // Registers hold R = state ^ 0xFFFFFFFF so that the FF reset value 0
  // encodes the standard seed and R *is* the finalized CRC at any instant.
  std::vector<NodeId> regs(32);
  for (auto& r : regs) r = nl.add_dff();

  // s = ~R recovers the internal LFSR state; the mapper folds these NOTs
  // into the consuming truth tables at zero LUT cost.
  std::vector<NodeId> s(32);
  for (unsigned j = 0; j < 32; ++j) s[j] = nl.add_not(regs[j]);

  // Eight unrolled reflected bit-steps, LSB of the byte first.
  for (unsigned i = 0; i < 8; ++i) {
    const NodeId fb = nl.add_xor(s[0], byte[i]);
    std::vector<NodeId> next(32);
    for (unsigned j = 0; j < 31; ++j) {
      next[j] = ((kPoly >> j) & 1u) ? nl.add_xor(s[j + 1], fb)
                                    : nl.add_buf(s[j + 1]);
    }
    next[31] = nl.add_buf(fb);  // poly bit 31 is set; shifted-in bit is 0
    s = std::move(next);
  }

  // Write-back under `valid`; a drain cycle with valid=0 holds state.
  for (unsigned j = 0; j < 32; ++j)
    nl.connect_dff(regs[j], nl.add_mux(regs[j], nl.add_not(s[j]), valid[0]));

  nl.bind_output_port("crc", regs);
  nl.validate();
  return nl;
}

Netlist make_array_multiplier(unsigned width) {
  AAD_REQUIRE(width >= 1 && width <= 16, "multiplier width must be 1..16");
  Netlist nl("mul" + std::to_string(width));
  const auto a = nl.add_input_port("a", width);
  const auto b = nl.add_input_port("b", width);

  // Shift-add over partial-product rows.
  std::vector<NodeId> acc;  // running sum, LSB first
  for (unsigned i = 0; i < width; ++i) {
    std::vector<NodeId> row(i, kInvalidNode);
    for (auto& bit : row) bit = nl.add_const(false);
    for (unsigned j = 0; j < width; ++j) row.push_back(nl.add_and(a[j], b[i]));
    acc = acc.empty() ? std::move(row) : ripple_add(nl, std::move(acc), std::move(row));
  }
  acc.resize(2 * width, nl.add_const(false));
  nl.bind_output_port("product", acc);
  nl.validate();
  return nl;
}

}  // namespace aad::netlist
