// LUT4 network: the post-technology-mapping representation.
//
// A LutNetwork is an ordered list of logical *slots*.  Each slot holds one
// 4-input LUT (16-bit truth table), an optional D flip-flop that latches the
// LUT output at the end of every cycle, and an optional output-bus binding.
// Slot inputs reference primary input bits, other slots' combinational
// outputs, other slots' registered (Q) outputs, or constants.
//
// Slot order is the *logical placement order*: the bitstream generator packs
// slots 4-per-CLB and `clb_rows`-CLBs-per-frame in exactly this order, which
// is what makes function bitstreams relocatable to any set of free frames
// (contiguous or not) — references are slot-relative, never physical.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "common/error.h"

namespace aad::netlist {

enum class NetKind : std::uint8_t {
  kUnused = 0,  ///< pin not connected (reads as 0)
  kConst0 = 1,
  kConst1 = 2,
  kPrimary = 3,  ///< index = bit of the function input bus
  kLutComb = 4,  ///< index = earlier slot, combinational output
  kLutReg = 5,   ///< index = any slot with a flip-flop, registered Q output
};

struct NetRef {
  NetKind kind = NetKind::kUnused;
  std::uint32_t index = 0;

  bool operator==(const NetRef&) const = default;
};

/// One logical slot: LUT4 + optional FF + optional output binding.
struct LutSlot {
  std::uint16_t truth = 0;   ///< truth[idx], idx = pin3..pin0 as bits 3..0
  NetRef pins[4];
  bool has_ff = false;       ///< FF latches post-settle value of pin 0 path
  bool is_output = false;
  std::uint16_t output_bit = 0;  ///< position on the function output bus

  bool operator==(const LutSlot&) const = default;
};

/// Executable LUT4 network with a defined cycle semantics:
///   step(): settle combinational slots in slot order, sample outputs
///   (registered outputs read the *current* state, i.e. pre-latch), then
///   latch all FFs.  Sequential kernels therefore expose a `valid` enable
///   and the host samples results on the cycle after the last data beat.
class LutNetwork {
 public:
  LutNetwork() = default;
  LutNetwork(std::string name, std::size_t input_width,
             std::size_t output_width)
      : name_(std::move(name)),
        input_width_(input_width),
        output_width_(output_width) {}

  const std::string& name() const noexcept { return name_; }
  std::size_t input_width() const noexcept { return input_width_; }
  std::size_t output_width() const noexcept { return output_width_; }

  std::uint32_t add_slot(const LutSlot& slot);
  const std::vector<LutSlot>& slots() const noexcept { return slots_; }
  LutSlot& slot(std::uint32_t index);

  std::size_t lut_count() const noexcept { return slots_.size(); }
  std::size_t ff_count() const noexcept;

  /// Structural validation: pin references in range, combinational
  /// references strictly backward (except on FF D-paths, which latch after
  /// settle and may legally read forward), every output bit driven exactly
  /// once.  Throws on violation.
  void validate() const;

  bool operator==(const LutNetwork&) const = default;

 private:
  std::string name_;
  std::size_t input_width_ = 0;
  std::size_t output_width_ = 0;
  std::vector<LutSlot> slots_;
};

/// Cycle-accurate executor for a LutNetwork.
class LutExecutor {
 public:
  explicit LutExecutor(const LutNetwork& network);

  /// One clock cycle; returns the output bus.
  std::vector<bool> step(const std::vector<bool>& inputs);
  void reset();

  std::size_t cycle_count() const noexcept { return cycles_; }

 private:
  bool resolve(const NetRef& ref, const std::vector<bool>& inputs) const;

  const LutNetwork& network_;
  std::vector<bool> comb_;  // per-slot settled LUT output
  std::vector<bool> regs_;  // per-slot FF state (unused when !has_ff)
  std::size_t cycles_ = 0;
};

/// Evaluate a 16-bit truth table at the given pin values.
constexpr bool eval_truth(std::uint16_t truth, bool p0, bool p1, bool p2,
                          bool p3) noexcept {
  const unsigned idx = (p0 ? 1u : 0u) | (p1 ? 2u : 0u) | (p2 ? 4u : 0u) |
                       (p3 ? 8u : 0u);
  return (truth >> idx) & 1u;
}

}  // namespace aad::netlist
