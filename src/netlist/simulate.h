// Reference (golden) netlist simulator.
//
// Evaluates a Netlist gate-by-gate, independent of the LUT mapper and the
// fabric, so every downstream lowering step can be differentially tested
// against it.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace aad::netlist {

class Simulator {
 public:
  explicit Simulator(const Netlist& netlist);

  /// Evaluate one clock cycle: combinational settle with the given primary
  /// inputs (ordered_inputs() order), then latch all DFFs.  Returns output
  /// bits in ordered_outputs() order.
  std::vector<bool> step(const std::vector<bool>& inputs);

  /// Combinational-only evaluation (DFF state unchanged).
  std::vector<bool> evaluate(const std::vector<bool>& inputs);

  /// Reset all DFFs to zero.
  void reset();

  const std::vector<bool>& dff_state() const noexcept { return dff_values_; }

 private:
  void settle(const std::vector<bool>& inputs);

  const Netlist& netlist_;
  std::vector<NodeId> order_;
  std::vector<NodeId> input_nodes_;
  std::vector<NodeId> output_nodes_;
  std::vector<NodeId> dff_nodes_;
  std::vector<bool> values_;      // per node, after settle
  std::vector<bool> dff_values_;  // per DFF node (parallel to dff_nodes_)
};

}  // namespace aad::netlist
