#include "netlist/simulate.h"

namespace aad::netlist {

Simulator::Simulator(const Netlist& netlist)
    : netlist_(netlist),
      order_(netlist.topological_order()),
      input_nodes_(netlist.ordered_inputs()),
      output_nodes_(netlist.ordered_outputs()),
      values_(netlist.node_count(), false) {
  for (NodeId id = 0; id < netlist.node_count(); ++id)
    if (netlist.node(id).kind == GateKind::kDff) dff_nodes_.push_back(id);
  dff_values_.assign(dff_nodes_.size(), false);
}

void Simulator::reset() { dff_values_.assign(dff_nodes_.size(), false); }

void Simulator::settle(const std::vector<bool>& inputs) {
  AAD_REQUIRE(inputs.size() == input_nodes_.size(),
              "simulator input width mismatch");
  for (std::size_t i = 0; i < input_nodes_.size(); ++i)
    values_[input_nodes_[i]] = inputs[i];
  for (std::size_t i = 0; i < dff_nodes_.size(); ++i)
    values_[dff_nodes_[i]] = dff_values_[i];

  for (NodeId id : order_) {
    const Node& node = netlist_.node(id);
    auto in = [&](std::size_t k) -> bool { return values_[node.fanins[k]]; };
    switch (node.kind) {
      case GateKind::kInput:
      case GateKind::kDff:
        break;  // already seeded above
      case GateKind::kConst0: values_[id] = false; break;
      case GateKind::kConst1: values_[id] = true; break;
      case GateKind::kBuf: values_[id] = in(0); break;
      case GateKind::kNot: values_[id] = !in(0); break;
      case GateKind::kAnd: values_[id] = in(0) && in(1); break;
      case GateKind::kOr: values_[id] = in(0) || in(1); break;
      case GateKind::kXor: values_[id] = in(0) != in(1); break;
      case GateKind::kNand: values_[id] = !(in(0) && in(1)); break;
      case GateKind::kNor: values_[id] = !(in(0) || in(1)); break;
      case GateKind::kXnor: values_[id] = in(0) == in(1); break;
      case GateKind::kMux: values_[id] = in(2) ? in(1) : in(0); break;
    }
  }
}

std::vector<bool> Simulator::evaluate(const std::vector<bool>& inputs) {
  settle(inputs);
  std::vector<bool> out(output_nodes_.size());
  for (std::size_t i = 0; i < output_nodes_.size(); ++i)
    out[i] = values_[output_nodes_[i]];
  return out;
}

std::vector<bool> Simulator::step(const std::vector<bool>& inputs) {
  std::vector<bool> out = evaluate(inputs);
  for (std::size_t i = 0; i < dff_nodes_.size(); ++i)
    dff_values_[i] = values_[netlist_.node(dff_nodes_[i]).fanins[0]];
  return out;
}

}  // namespace aad::netlist
