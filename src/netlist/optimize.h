// Netlist optimization passes, run before technology mapping.
//
// Three classic transforms, each equivalence-preserving (proved
// differentially in tests/test_optimize.cpp):
//   * constant folding     — gates with constant fanins collapse to
//                            constants or wires (x&0=0, x^0=x, mux with
//                            constant select, ...);
//   * structural hashing   — common-subexpression elimination: gates with
//                            identical (kind, canonicalized fanins) merge
//                            (commutative inputs are sorted first);
//   * dead-code elimination — nodes that reach no output port or DFF are
//                            dropped.
//
// Smaller netlists map to fewer LUTs and therefore fewer frames, which
// shrinks bitstreams, ROM usage and reconfiguration time end to end —
// the ablation in bench_fabric quantifies the chain.
#pragma once

#include "netlist/netlist.h"

namespace aad::netlist {

struct OptStats {
  std::size_t nodes_in = 0;
  std::size_t nodes_out = 0;
  std::size_t constants_folded = 0;
  std::size_t gates_merged = 0;   ///< structural-hash hits
  std::size_t dead_removed = 0;

  double reduction() const noexcept {
    return nodes_in == 0
               ? 0.0
               : 1.0 - static_cast<double>(nodes_out) /
                           static_cast<double>(nodes_in);
  }
};

/// Run fold -> hash -> DCE to a fixed point (at most a few iterations).
/// Port structure (names, widths, order) is preserved exactly.
Netlist optimize(const Netlist& input, OptStats* stats = nullptr);

}  // namespace aad::netlist
