#include "core/predictor.h"

namespace aad::core {

void FunctionPredictor::observe(unsigned client,
                                memory::FunctionId function) {
  ClientState& cs = clients_[client];
  if (cs.has_last && cs.last != function) {
    Row& row = cs.rows[cs.last];
    ++row.counts[function];
    ++row.total;
    ++observations_;
    if (config_.decay_limit > 0 && row.total > config_.decay_limit) {
      row.total = 0;
      for (auto it = row.counts.begin(); it != row.counts.end();) {
        it->second /= 2;
        if (it->second == 0) {
          it = row.counts.erase(it);
        } else {
          row.total += it->second;
          ++it;
        }
      }
    }
  }
  cs.has_last = true;
  cs.last = function;
}

std::optional<Prediction> FunctionPredictor::predict(unsigned client) const {
  const auto it = clients_.find(client);
  if (it == clients_.end() || !it->second.has_last) return std::nullopt;
  return predict_after(client, it->second.last);
}

std::optional<Prediction> FunctionPredictor::predict_after(
    unsigned client, memory::FunctionId function) const {
  const auto cit = clients_.find(client);
  if (cit == clients_.end()) return std::nullopt;
  const auto rit = cit->second.rows.find(function);
  if (rit == cit->second.rows.end()) return std::nullopt;
  const Row& row = rit->second;
  if (row.total < config_.min_samples) return std::nullopt;

  // std::map iterates in ascending id order, so `>` alone gives the
  // lowest-id tie-break.
  memory::FunctionId best = 0;
  std::uint64_t best_count = 0;
  for (const auto& [fn, count] : row.counts) {
    if (count > best_count) {
      best = fn;
      best_count = count;
    }
  }
  if (best_count == 0) return std::nullopt;
  const double confidence =
      static_cast<double>(best_count) / static_cast<double>(row.total);
  if (confidence < config_.min_confidence) return std::nullopt;
  return Prediction{best, confidence};
}

}  // namespace aad::core
