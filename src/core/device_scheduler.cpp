#include "core/device_scheduler.h"

#include "common/error.h"

namespace aad::core {
namespace {

class FifoScheduler final : public DeviceScheduler {
 public:
  DevicePolicy kind() const noexcept override { return DevicePolicy::kFifo; }
  std::size_t pick(std::span<const DeviceQueueEntry> queue) override {
    AAD_CHECK(!queue.empty(), "picking from an empty device queue");
    return 0;  // the queue is kept in data-arrival order
  }
};

class ResidentFirstScheduler final : public DeviceScheduler {
 public:
  DevicePolicy kind() const noexcept override {
    return DevicePolicy::kResidentFirst;
  }
  std::size_t pick(std::span<const DeviceQueueEntry> queue) override {
    AAD_CHECK(!queue.empty(), "picking from an empty device queue");
    for (std::size_t i = 0; i < queue.size(); ++i)
      if (queue[i].resident) return i;
    return 0;  // all misses: oldest first
  }
};

class ShortestReconfigFirstScheduler final : public DeviceScheduler {
 public:
  DevicePolicy kind() const noexcept override {
    return DevicePolicy::kShortestReconfigFirst;
  }
  std::size_t pick(std::span<const DeviceQueueEntry> queue) override {
    AAD_CHECK(!queue.empty(), "picking from an empty device queue");
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue.size(); ++i)
      if (queue[i].reconfig_cost < queue[best].reconfig_cost) best = i;
    return best;  // strict < keeps ties on the earliest arrival
  }
};

}  // namespace

const char* to_string(DevicePolicy policy) {
  switch (policy) {
    case DevicePolicy::kFifo:
      return "fifo";
    case DevicePolicy::kResidentFirst:
      return "resident-first";
    case DevicePolicy::kShortestReconfigFirst:
      return "shortest-reconfig-first";
  }
  return "unknown";
}

std::unique_ptr<DeviceScheduler> make_device_scheduler(DevicePolicy policy) {
  switch (policy) {
    case DevicePolicy::kFifo:
      return std::make_unique<FifoScheduler>();
    case DevicePolicy::kResidentFirst:
      return std::make_unique<ResidentFirstScheduler>();
    case DevicePolicy::kShortestReconfigFirst:
      return std::make_unique<ShortestReconfigFirstScheduler>();
  }
  AAD_FAIL(ErrorCode::kInvalidArgument, "unknown device policy");
}

}  // namespace aad::core
