// CoprocessorFleet: N independent agile-coprocessor cards behind one
// dispatch point.
//
// One CoprocessorServer pipelines one card, so a single fabric and one PCI
// bus bound throughput.  The fleet shards the load: every card keeps its
// own PCI bus, MCU and fabric (they really are separate PCI devices), but
// all of them are driven by ONE shared discrete-event scheduler, so
// cross-card overlap — four reconfigurations in flight at once, DMA on
// four buses — is simulated faithfully on a single simulated clock.
//
// With FleetConfig::threads >= 2 the shared queue is replaced by a
// sim::ParallelScheduler: each card's pipeline events run on a private
// shard queue pumped by a worker pool, and everything cross-card (dispatch
// + routing reads, fault plans, watchdog timers, refugee re-dispatch) runs
// on the engine's coordination queue at globally synchronized instants —
// see src/sim/parallel.h for the conservative-round protocol and
// docs/ARCHITECTURE.md for the derivation.  threads == 1 (the default)
// keeps the classic engine, bit-for-bit.
//
//   host application
//     └─ CoprocessorFleet ── dispatch policy (round-robin / least-queued /
//         │                  residency-affinity)
//         ├─ CoprocessorServer ── AgileCoprocessor   card 0 (own bus+fabric)
//         ├─ CoprocessorServer ── AgileCoprocessor   card 1
//         └─ ...                                     card N-1
//
// Dispatch is deferred to each request's ARRIVAL time, not its submission
// time: an open-loop trace is pre-scheduled long before it runs, and only
// at arrival does the policy see true queue depths and fabric residency.
// The dispatch hop preserves FIFO order among same-timestamp arrivals; the
// one observable difference from a bare CoprocessorServer is an arrival
// whose timestamp exactly collides with an in-flight request's bus event
// (integer-picosecond times make that vanishingly rare).
// That is what makes residency-affinity meaningful — the paper's win is
// skipping reconfiguration on a configuration hit, so the router steers a
// request to a card whose MCU already holds the function's bitstream
// configuration (falling back to least-queued when no card does), trading
// load balance for configuration locality.
//
// Typical use:
//
//   aad::core::FleetConfig fc;
//   fc.cards = 4;
//   fc.policy = aad::core::DispatchPolicy::kResidencyAffinity;
//   aad::core::CoprocessorFleet fleet(fc);
//   fleet.download_all();                 // provision every card's ROM
//   workload::replay(fleet, trace, make_input);   // same surface as a server
//   fleet.run();
//   auto st = fleet.stats();              // fleet-wide + per-card breakdown
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/server.h"
#include "sim/fault.h"
#include "sim/parallel.h"

namespace aad::core {

/// How the fleet picks a card for an arriving request.
enum class DispatchPolicy {
  kRoundRobin,         ///< cards in cyclic order, ignoring state
  kLeastQueued,        ///< fewest in-flight requests (ties: lowest card)
  kResidencyAffinity,  ///< tiered: a card holding an OPEN batch for the
                       ///< function (CoprocessorServer::open_batch_for — the
                       ///< request joins the batch and shares its one
                       ///< decode+load), else a card where the function is
                       ///< already configured or inbound on an in-flight
                       ///< request (ties: least-queued among them), else —
                       ///< when delta reconfiguration tracks frame contents
                       ///< and FleetConfig::cost_routing is on — the card
                       ///< with the cheapest modeled load among those
                       ///< matching at least one frame
                       ///< (Mcu::estimate_load), else least-queued
};

const char* to_string(DispatchPolicy policy);

/// Request watchdog at the fleet edge.  A dispatched request that has not
/// completed within `timeout` is pulled back (CoprocessorServer::try_cancel
/// — a committed request rides to completion instead) and redispatched
/// after an exponentially growing backoff, up to `max_retries` extra
/// attempts; exhaustion surfaces the request as failed (FailReason::
/// kTimeout).  `timeout` zero disables the watchdog entirely — the fleet's
/// dispatch path is then byte-identical to the fault-free build.
struct RetryConfig {
  sim::SimTime timeout;               ///< zero = watchdog disabled
  unsigned max_retries = 2;           ///< redispatches after the first try
  double backoff = 2.0;               ///< delay multiplier per retry
  sim::SimTime backoff_base = sim::SimTime::us(100);  ///< first retry delay
};

struct FleetConfig {
  unsigned cards = 2;
  DispatchPolicy policy = DispatchPolicy::kResidencyAffinity;
  /// Applied to every card — the fleet is homogeneous (heterogeneous
  /// fleets are a later PR; the dispatch seam is already here).
  CoprocessorConfig card;
  /// Per-card pipeline knobs: device-queue policy (FIFO / resident-first /
  /// shortest-reconfiguration-first), overlapped reconfiguration, and the
  /// same-function BatchPolicy (ServerConfig::batch).  The fleet dispatch
  /// policy and the per-card policies compose: dispatch picks the card,
  /// the device scheduler orders that card's ready queue, and the batch
  /// policy coalesces same-function picks into shared-load batches.
  ServerConfig server;
  /// kResidencyAffinity only: enable the cheap-delta tier — when no card
  /// holds (or is loading) the function, route to the card whose delta
  /// tracker predicts the cheapest load instead of merely the shortest
  /// queue.  Inert unless the cards run with engine.delta_reconfig on;
  /// turn it off to compare binary residency-affinity against
  /// cheapest-expected-reconfig routing (bench_codec does).
  bool cost_routing = true;
  /// Declarative fault schedule (sim/fault.h): card deaths + recoveries and
  /// ROM corruptions.  Armed lazily at the FIRST fleet submission — plan
  /// times are relative to that instant, so provisioning time (which varies
  /// with the function set) never shifts the schedule.  An empty plan adds
  /// no events and changes nothing.
  sim::FaultPlan faults;
  /// Timeout + bounded-retry watchdog (see RetryConfig).  Disabled (zero
  /// timeout) by default.
  RetryConfig retry;
  /// Host threads driving the simulation.  1 (default): the classic shared
  /// single-queue engine — bit-identical to every earlier build.  >= 2:
  /// the sharded conservative-parallel engine (sim/parallel.h) — each card
  /// simulates on its own event queue, cross-card work runs on a
  /// coordination queue at synchronized instants.  For a fixed thread
  /// count, seed and OPEN-LOOP trace the outcome digest matches threads=1
  /// exactly (tests/test_parallel.cpp holds that line); closed-loop
  /// resubmissions are round-aligned (deterministic, documented in
  /// docs/ARCHITECTURE.md) and may diverge from the classic interleaving.
  unsigned threads = 1;
  /// threads >= 2 only: conservative-sync lookahead — how far card shards
  /// may run past the earliest card event in one round when no
  /// coordination event bounds it.  Zero (default) derives it from the
  /// card's PCI command-setup cost, the minimum latency between a routing
  /// decision and its first card-visible event.
  sim::SimTime lookahead;
};

/// One card's view of the fleet, captured by CoprocessorFleet::stats().
struct FleetCardStats {
  unsigned card = 0;
  ServerStats server;            ///< this card's pipeline stats
  std::uint64_t dispatched = 0;  ///< requests the policy routed here
  std::uint64_t config_hits = 0;    ///< completed with the config resident
  std::uint64_t config_misses = 0;  ///< completed after a reconfiguration
  double hit_rate = 0.0;         ///< hits / completed
  std::size_t queue_depth = 0;   ///< in-flight on this card right now
  std::size_t resident = 0;      ///< functions on this card's fabric now
  bool alive = true;             ///< powered on right now
  std::uint64_t deaths = 0;      ///< times this card died (FaultPlan)
};

struct FleetStats {
  /// Fleet tickets plus requests submitted directly to an exposed per-card
  /// server; affinity_routed + affinity_fallback counts only the former.
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  sim::SimTime makespan;          ///< first submission -> last completion
  double throughput_rps = 0.0;    ///< completed per simulated second
  LatencySummary latency;         ///< merged over every card's requests
  std::uint64_t config_hits = 0;
  std::uint64_t config_misses = 0;
  double hit_rate = 0.0;          ///< fleet-wide configuration hit rate
  sim::SimTime total_bus_wait;    ///< summed over all cards' buses
  sim::SimTime total_device_wait; ///< engine + fabric wait, fleet-wide
  sim::SimTime total_engine_wait;
  sim::SimTime total_fabric_wait;
  sim::SimTime total_hidden_reconfig;  ///< reconfig overlapped with execution
  std::uint64_t overlapped_loads = 0;
  // Batch amortization, fleet-wide (see ServerStats):
  std::uint64_t batches = 0;
  std::uint64_t coalesced_loads = 0;
  double mean_batch_size = 0.0;  ///< members per committed batch, fleet-wide
  sim::SimTime total_amortized_reconfig;
  // Load-cost telemetry, fleet-wide (summed over the cards' MCU counters;
  // see ServerStats):
  std::uint64_t frames_skipped_delta = 0;
  std::uint64_t bytes_streamed = 0;
  std::map<compress::CodecId, std::uint64_t> codec_picks;
  /// Residency-affinity accounting (zero under the other policies):
  std::uint64_t prefetch_routed = 0;    ///< sent to the card that PREFETCHED
                                        ///< the config (tier between
                                        ///< open-batch and resident; zero
                                        ///< unless prefetch is enabled)
  std::uint64_t affinity_routed = 0;    ///< sent to a card holding the config
                                        ///< (resident, or inbound in flight)
  std::uint64_t delta_routed = 0;       ///< cheap-delta tier: sent to the
                                        ///< card with the cheapest modeled
                                        ///< load (partial frame match)
  std::uint64_t affinity_fallback = 0;  ///< no card held or was loading it:
                                        ///< least-queued
  // Fault injection + recovery (zero in a fault-free run):
  std::uint64_t deaths = 0;        ///< card power-offs, fleet-wide
  std::uint64_t redispatched = 0;  ///< refugees resubmitted to a survivor
  std::uint64_t retries = 0;       ///< watchdog-driven redispatches
  std::uint64_t timeouts = 0;      ///< watchdog expirations that pulled a
                                   ///< request back (committed ones ride)
  /// Terminal failures surfaced to the submitter: fleet-level (no survivor,
  /// retries exhausted) plus card-level (CRC rejects).  Every submitted
  /// request ends in exactly one of completed/failed.
  std::uint64_t failed = 0;
  std::uint64_t crc_rejects = 0;   ///< corrupted-bitstream load rejections
  std::uint64_t refetches = 0;     ///< ROM repairs from the pristine copy
  // Speculative prefetch, fleet-wide (ServerStats sums; zero when off):
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_wasted = 0;
  sim::SimTime hidden_reconfig_prefetch;
  /// Cross-card prefetches handed to a cold sibling because the card the
  /// client's demand was heading to could not place the predicted next
  /// function in free frames.
  std::uint64_t prefetch_cross = 0;
  std::vector<FleetCardStats> cards;    ///< per-card breakdown, by index
};

class CoprocessorFleet {
 public:
  using Completion = CoprocessorServer::Completion;

  explicit CoprocessorFleet(const FleetConfig& config = {});

  // Every card's MCU pipeline holds a reference to scheduler_, so the
  // fleet must stay put.
  CoprocessorFleet(const CoprocessorFleet&) = delete;
  CoprocessorFleet& operator=(const CoprocessorFleet&) = delete;
  CoprocessorFleet(CoprocessorFleet&&) = delete;
  CoprocessorFleet& operator=(CoprocessorFleet&&) = delete;

  // --- provisioning --------------------------------------------------------
  // Every card gets its own copy of the function (separate ROMs).  The
  // downloads share the simulated clock, so card i+1's provisioning starts
  // after card i's finishes — one host, one provisioning thread.

  void download(algorithms::KernelId kernel,
                std::optional<compress::CodecId> codec = std::nullopt);
  void download_bitstream(memory::FunctionId id,
                          const bitstream::Bitstream& bitstream,
                          std::optional<compress::CodecId> codec = std::nullopt);
  void download_all(std::optional<compress::CodecId> codec = std::nullopt);

  // --- submission ----------------------------------------------------------
  // Same surface as CoprocessorServer, so workload::replay drives a fleet
  // unchanged.  The returned id is a fleet-wide ticket (dense submission
  // order), NOT the per-card ServerRequest::id — the card is not chosen
  // until the request arrives.

  std::uint64_t submit(unsigned client, algorithms::KernelId kernel,
                       Bytes input, Completion done = {});
  std::uint64_t submit_function(unsigned client, memory::FunctionId function,
                                Bytes input, Completion done = {});
  std::uint64_t submit_function_at(sim::SimTime when, unsigned client,
                                   memory::FunctionId function, Bytes input,
                                   Completion done = {});

  // --- event loop ----------------------------------------------------------

  /// Run until every card is idle (closed-loop completions included).
  std::size_t run();
  /// Run events up to `deadline`; in-flight requests stay queued.
  std::size_t run_until(sim::SimTime deadline);

  // --- dispatch ------------------------------------------------------------

  /// The card the policy would route `function` to right now, given current
  /// queue depths and residency — the same decision an arriving request
  /// gets, but WITHOUT advancing any dispatch state (round-robin cursor,
  /// affinity counters), so it is safe to probe from tests and demos.
  unsigned preview_card(memory::FunctionId function) const;

  // --- introspection -------------------------------------------------------

  sim::SimTime now() const noexcept {
    return parallel_ ? parallel_->now() : scheduler_.now();
  }
  unsigned card_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  DispatchPolicy policy() const noexcept { return policy_; }
  /// Host threads driving the simulation (FleetConfig::threads, clamped).
  unsigned threads() const noexcept {
    return parallel_ ? parallel_->threads() : 1;
  }
  /// Direct access to one shard.  Inspection (mcu(), stats(), bus()) is
  /// always safe; the card's SYNCHRONOUS paths (invoke, preload, evict,
  /// defragment — and provisioning) advance the fleet-shared clock and
  /// execute any pending events on it, so only use them while the fleet is
  /// quiescent (no requests in flight), as download*/the benches do.
  AgileCoprocessor& card(unsigned index);
  CoprocessorServer& server(unsigned index);
  const CoprocessorServer& server(unsigned index) const;
  /// The queue cross-card work runs on: the classic shared scheduler, or
  /// the coordination queue under threads >= 2.  Card-local pipeline
  /// events live on the card's own shard in parallel mode, so host code
  /// that needs whole-simulation facts (quiescence, live event counts)
  /// must use sim_idle()/sim_pending() instead of scheduler().idle().
  sim::Scheduler& scheduler() noexcept {
    return parallel_ ? parallel_->coord() : scheduler_;
  }
  /// Engine-wide quiescence / live-event count, across the coordination
  /// queue and every card shard (equals scheduler().idle()/pending() in
  /// classic mode).
  bool sim_idle() const noexcept {
    return parallel_ ? parallel_->idle() : scheduler_.idle();
  }
  std::size_t sim_pending() const noexcept {
    return parallel_ ? parallel_->pending() : scheduler_.pending();
  }
  /// The parallel engine, or nullptr in classic mode (round telemetry).
  const sim::ParallelScheduler* parallel_engine() const noexcept {
    return parallel_.get();
  }
  /// Submitted but not yet completed, fleet-wide (dispatched or not).
  std::uint64_t in_flight() const;
  /// Fleet-wide totals plus the per-card breakdown.
  FleetStats stats() const;

  // --- telemetry -----------------------------------------------------------

  /// Open Chrome-trace lanes for the whole fleet: one `label` process with
  /// a dispatch/fault lane, plus one process per card ("<label>/card i")
  /// with its pci/engine/fabric/batch lanes (CoprocessorServer::
  /// attach_trace).  Call before running; the sink must outlive the fleet.
  void attach_trace(telemetry::TraceSink& sink,
                    const std::string& label = "fleet");
  /// The fleet's own counter registry (routing tiers, faults, retries);
  /// each card's registry is at card(i).registry().
  telemetry::Registry& registry() noexcept { return registry_; }
  const telemetry::Registry& registry() const noexcept { return registry_; }

  // --- fault injection + recovery ------------------------------------------
  // FleetConfig::faults drives these through scheduled events; they are
  // public so tests and harnesses can inject faults imperatively too.

  /// Power the card off NOW: every pending event on its pipeline is
  /// cancelled, its fabric erased (recovery starts cold), and every request
  /// it held — queued or committed — is redispatched to a surviving card
  /// (at-least-once: a committed request's device work is lost and redone)
  /// or failed with FailReason::kCardDeath when no card survives.  No-op on
  /// an already-dead card.
  void kill_card(unsigned index);
  /// Power the card back on.  It rejoins dispatch with a cold fabric; the
  /// ROM (host-provisioned flash) survives the outage.
  void revive_card(unsigned index);
  bool card_alive(unsigned index) const {
    AAD_REQUIRE(index < card_count(), "card index out of range");
    return shards_[index].alive;
  }

 private:
  struct Shard {
    std::unique_ptr<AgileCoprocessor> card;
    std::unique_ptr<CoprocessorServer> server;
    std::uint64_t dispatched = 0;
    bool alive = true;
    std::uint64_t deaths = 0;
    sim::SimTime death_time;  ///< last power-off (the dead-interval span)
  };
  /// Fleet-edge bookkeeping for one in-flight ticket (fault mode only).
  /// The payload lives HERE only while the ticket is between cards (pulled
  /// back, awaiting redispatch); on a card, the server holds it and hands
  /// it back through try_cancel/power_off.
  struct TicketState {
    unsigned client = 0;
    memory::FunctionId function = 0;
    Bytes input;
    Completion done;               ///< the submitter's hook (fired once)
    sim::SimTime submit_time;
    unsigned attempts = 0;         ///< dispatches so far
    bool on_card = false;
    unsigned card = 0;             ///< valid while on_card
    std::uint64_t card_request = 0;
    std::optional<sim::EventId> timeout_event;
  };

  /// The queue cross-card bookkeeping schedules on (classic queue, or the
  /// parallel engine's coordination queue) and its clock.  In classic mode
  /// sim_now() == now(); in parallel mode now() is the global frontier
  /// while sim_now() is the coordination clock — always <= every shard.
  sim::Scheduler& coord() noexcept {
    return parallel_ ? parallel_->coord() : scheduler_;
  }
  sim::SimTime sim_now() const noexcept {
    return parallel_ ? parallel_->coord().now() : scheduler_.now();
  }
  /// Serialize per-card provisioning on one timeline (card i starts where
  /// card i-1 finished) regardless of engine, then re-align every clock.
  template <typename PerCard>
  void provision(PerCard&& per_card) {
    if (!parallel_) {
      for (Shard& shard : shards_) per_card(shard);
      return;
    }
    for (Shard& shard : shards_) {
      sim::Scheduler& queue = shard.card->scheduler();
      const sim::SimTime frontier = parallel_->now();
      if (frontier > queue.now()) queue.run_until(frontier);
      per_card(shard);
    }
    parallel_->sync_clocks();
  }
  unsigned least_queued() const;
  unsigned choose(memory::FunctionId function, bool& prefetch_hit,
                  bool& affinity_hit, bool& delta_hit) const;
  /// preview_card + the state updates (cursor, affinity counters).
  unsigned route(memory::FunctionId function);
  /// Can `card` take `function` into FREE frames right now?  (Speculative
  /// loads never evict demand residents.)
  bool prefetch_placeable(unsigned card, memory::FunctionId function) const;
  /// Train the fleet predictor on the dispatch stream and, when the card
  /// the demand went to cannot hold the predicted NEXT function, hand the
  /// speculation to a cold sibling.  Runs at dispatch (coordination) time,
  /// so the trigger is thread-count-invariant.
  void maybe_cross_prefetch(unsigned client, memory::FunctionId function,
                            unsigned chosen);
  void dispatch(unsigned client, memory::FunctionId function, Bytes input,
                Completion done);
  bool any_alive() const;
  /// Schedule the fault plan's events, offset by now() (first submission).
  void arm_faults();
  void dispatch_ticket(std::uint64_t ticket);
  void on_card_complete(std::uint64_t ticket, const ServerRequest& request);
  void on_timeout(std::uint64_t ticket);
  /// Terminal failure: synthesize a failed ServerRequest and fire the
  /// submitter's hook exactly once.
  void fail_ticket(std::uint64_t ticket, FailReason reason);

  DispatchPolicy policy_;
  bool cost_routing_;
  /// Classic engine (threads == 1); idle/unused when parallel_ is set.
  sim::Scheduler scheduler_;
  /// Sharded engine (threads >= 2); declared before shards_ so the cards
  /// (which hold references into its shard queues) are destroyed first.
  std::unique_ptr<sim::ParallelScheduler> parallel_;
  std::vector<Shard> shards_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t undispatched_ = 0;  ///< scheduled arrivals not yet routed
  std::uint64_t rr_cursor_ = 0;
  // Speculative prefetch at the fleet edge.  The fleet keeps its OWN
  // predictor trained on the arrival stream it routes (the per-card
  // predictors only see requests after routing splits the stream).
  bool prefetch_enabled_ = false;
  FunctionPredictor predictor_;
  // Fault machinery.  fault_mode_ gates the ticket-tracking dispatch path:
  // off (empty plan, zero timeout), submissions flow exactly as before —
  // the fault subsystem costs the fault-free build nothing.
  bool fault_mode_ = false;
  bool faults_armed_ = false;
  sim::FaultPlan faults_;
  RetryConfig retry_;
  std::map<std::uint64_t, TicketState> tickets_;

  /// Fleet-level counter registry (the cards each own their own — see
  /// AgileCoprocessor::registry()).  Coordination-thread-owned, like every
  /// other fleet member.
  telemetry::Registry registry_;
  // Registry handles — the `fleet.*` counter block; FleetStats snapshots
  // them (registered at construction, bumped on the dispatch/fault paths).
  struct Counters {
    telemetry::Counter& prefetch_routed;
    telemetry::Counter& affinity_routed;
    telemetry::Counter& delta_routed;
    telemetry::Counter& affinity_fallback;
    telemetry::Counter& prefetch_cross;
    telemetry::Counter& deaths;
    telemetry::Counter& redispatched;
    telemetry::Counter& retries;
    telemetry::Counter& timeouts;
    telemetry::Counter& failed;  ///< fleet-level terminal failures
  };
  Counters counters_;
  /// The fleet's dispatch/fault lane; null until attach_trace.
  telemetry::TraceTrack* fleet_track_ = nullptr;
};

}  // namespace aad::core
