// CoprocessorFleet: N independent agile-coprocessor cards behind one
// dispatch point.
//
// One CoprocessorServer pipelines one card, so a single fabric and one PCI
// bus bound throughput.  The fleet shards the load: every card keeps its
// own PCI bus, MCU and fabric (they really are separate PCI devices), but
// all of them are driven by ONE shared discrete-event scheduler, so
// cross-card overlap — four reconfigurations in flight at once, DMA on
// four buses — is simulated faithfully on a single simulated clock.
//
//   host application
//     └─ CoprocessorFleet ── dispatch policy (round-robin / least-queued /
//         │                  residency-affinity)
//         ├─ CoprocessorServer ── AgileCoprocessor   card 0 (own bus+fabric)
//         ├─ CoprocessorServer ── AgileCoprocessor   card 1
//         └─ ...                                     card N-1
//
// Dispatch is deferred to each request's ARRIVAL time, not its submission
// time: an open-loop trace is pre-scheduled long before it runs, and only
// at arrival does the policy see true queue depths and fabric residency.
// The dispatch hop preserves FIFO order among same-timestamp arrivals; the
// one observable difference from a bare CoprocessorServer is an arrival
// whose timestamp exactly collides with an in-flight request's bus event
// (integer-picosecond times make that vanishingly rare).
// That is what makes residency-affinity meaningful — the paper's win is
// skipping reconfiguration on a configuration hit, so the router steers a
// request to a card whose MCU already holds the function's bitstream
// configuration (falling back to least-queued when no card does), trading
// load balance for configuration locality.
//
// Typical use:
//
//   aad::core::FleetConfig fc;
//   fc.cards = 4;
//   fc.policy = aad::core::DispatchPolicy::kResidencyAffinity;
//   aad::core::CoprocessorFleet fleet(fc);
//   fleet.download_all();                 // provision every card's ROM
//   workload::replay(fleet, trace, make_input);   // same surface as a server
//   fleet.run();
//   auto st = fleet.stats();              // fleet-wide + per-card breakdown
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/server.h"

namespace aad::core {

/// How the fleet picks a card for an arriving request.
enum class DispatchPolicy {
  kRoundRobin,         ///< cards in cyclic order, ignoring state
  kLeastQueued,        ///< fewest in-flight requests (ties: lowest card)
  kResidencyAffinity,  ///< tiered: a card holding an OPEN batch for the
                       ///< function (CoprocessorServer::open_batch_for — the
                       ///< request joins the batch and shares its one
                       ///< decode+load), else a card where the function is
                       ///< already configured or inbound on an in-flight
                       ///< request (ties: least-queued among them), else —
                       ///< when delta reconfiguration tracks frame contents
                       ///< and FleetConfig::cost_routing is on — the card
                       ///< with the cheapest modeled load among those
                       ///< matching at least one frame
                       ///< (Mcu::estimate_load), else least-queued
};

const char* to_string(DispatchPolicy policy);

struct FleetConfig {
  unsigned cards = 2;
  DispatchPolicy policy = DispatchPolicy::kResidencyAffinity;
  /// Applied to every card — the fleet is homogeneous (heterogeneous
  /// fleets are a later PR; the dispatch seam is already here).
  CoprocessorConfig card;
  /// Per-card pipeline knobs: device-queue policy (FIFO / resident-first /
  /// shortest-reconfiguration-first), overlapped reconfiguration, and the
  /// same-function BatchPolicy (ServerConfig::batch).  The fleet dispatch
  /// policy and the per-card policies compose: dispatch picks the card,
  /// the device scheduler orders that card's ready queue, and the batch
  /// policy coalesces same-function picks into shared-load batches.
  ServerConfig server;
  /// kResidencyAffinity only: enable the cheap-delta tier — when no card
  /// holds (or is loading) the function, route to the card whose delta
  /// tracker predicts the cheapest load instead of merely the shortest
  /// queue.  Inert unless the cards run with engine.delta_reconfig on;
  /// turn it off to compare binary residency-affinity against
  /// cheapest-expected-reconfig routing (bench_codec does).
  bool cost_routing = true;
};

/// One card's view of the fleet, captured by CoprocessorFleet::stats().
struct FleetCardStats {
  unsigned card = 0;
  ServerStats server;            ///< this card's pipeline stats
  std::uint64_t dispatched = 0;  ///< requests the policy routed here
  std::uint64_t config_hits = 0;    ///< completed with the config resident
  std::uint64_t config_misses = 0;  ///< completed after a reconfiguration
  double hit_rate = 0.0;         ///< hits / completed
  std::size_t queue_depth = 0;   ///< in-flight on this card right now
  std::size_t resident = 0;      ///< functions on this card's fabric now
};

struct FleetStats {
  /// Fleet tickets plus requests submitted directly to an exposed per-card
  /// server; affinity_routed + affinity_fallback counts only the former.
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  sim::SimTime makespan;          ///< first submission -> last completion
  double throughput_rps = 0.0;    ///< completed per simulated second
  LatencySummary latency;         ///< merged over every card's requests
  std::uint64_t config_hits = 0;
  std::uint64_t config_misses = 0;
  double hit_rate = 0.0;          ///< fleet-wide configuration hit rate
  sim::SimTime total_bus_wait;    ///< summed over all cards' buses
  sim::SimTime total_device_wait; ///< engine + fabric wait, fleet-wide
  sim::SimTime total_engine_wait;
  sim::SimTime total_fabric_wait;
  sim::SimTime total_hidden_reconfig;  ///< reconfig overlapped with execution
  std::uint64_t overlapped_loads = 0;
  // Batch amortization, fleet-wide (see ServerStats):
  std::uint64_t batches = 0;
  std::uint64_t coalesced_loads = 0;
  double mean_batch_size = 0.0;  ///< members per committed batch, fleet-wide
  sim::SimTime total_amortized_reconfig;
  // Load-cost telemetry, fleet-wide (summed over the cards' MCU counters;
  // see ServerStats):
  std::uint64_t frames_skipped_delta = 0;
  std::uint64_t bytes_streamed = 0;
  std::map<compress::CodecId, std::uint64_t> codec_picks;
  /// Residency-affinity accounting (zero under the other policies):
  std::uint64_t affinity_routed = 0;    ///< sent to a card holding the config
                                        ///< (resident, or inbound in flight)
  std::uint64_t delta_routed = 0;       ///< cheap-delta tier: sent to the
                                        ///< card with the cheapest modeled
                                        ///< load (partial frame match)
  std::uint64_t affinity_fallback = 0;  ///< no card held or was loading it:
                                        ///< least-queued
  std::vector<FleetCardStats> cards;    ///< per-card breakdown, by index
};

class CoprocessorFleet {
 public:
  using Completion = CoprocessorServer::Completion;

  explicit CoprocessorFleet(const FleetConfig& config = {});

  // Every card's MCU pipeline holds a reference to scheduler_, so the
  // fleet must stay put.
  CoprocessorFleet(const CoprocessorFleet&) = delete;
  CoprocessorFleet& operator=(const CoprocessorFleet&) = delete;
  CoprocessorFleet(CoprocessorFleet&&) = delete;
  CoprocessorFleet& operator=(CoprocessorFleet&&) = delete;

  // --- provisioning --------------------------------------------------------
  // Every card gets its own copy of the function (separate ROMs).  The
  // downloads share the simulated clock, so card i+1's provisioning starts
  // after card i's finishes — one host, one provisioning thread.

  void download(algorithms::KernelId kernel,
                std::optional<compress::CodecId> codec = std::nullopt);
  void download_bitstream(memory::FunctionId id,
                          const bitstream::Bitstream& bitstream,
                          std::optional<compress::CodecId> codec = std::nullopt);
  void download_all(std::optional<compress::CodecId> codec = std::nullopt);

  // --- submission ----------------------------------------------------------
  // Same surface as CoprocessorServer, so workload::replay drives a fleet
  // unchanged.  The returned id is a fleet-wide ticket (dense submission
  // order), NOT the per-card ServerRequest::id — the card is not chosen
  // until the request arrives.

  std::uint64_t submit(unsigned client, algorithms::KernelId kernel,
                       Bytes input, Completion done = {});
  std::uint64_t submit_function(unsigned client, memory::FunctionId function,
                                Bytes input, Completion done = {});
  std::uint64_t submit_function_at(sim::SimTime when, unsigned client,
                                   memory::FunctionId function, Bytes input,
                                   Completion done = {});

  // --- event loop ----------------------------------------------------------

  /// Run until every card is idle (closed-loop completions included).
  std::size_t run();
  /// Run events up to `deadline`; in-flight requests stay queued.
  std::size_t run_until(sim::SimTime deadline);

  // --- dispatch ------------------------------------------------------------

  /// The card the policy would route `function` to right now, given current
  /// queue depths and residency — the same decision an arriving request
  /// gets, but WITHOUT advancing any dispatch state (round-robin cursor,
  /// affinity counters), so it is safe to probe from tests and demos.
  unsigned preview_card(memory::FunctionId function) const;

  // --- introspection -------------------------------------------------------

  sim::SimTime now() const noexcept { return scheduler_.now(); }
  unsigned card_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  DispatchPolicy policy() const noexcept { return policy_; }
  /// Direct access to one shard.  Inspection (mcu(), stats(), bus()) is
  /// always safe; the card's SYNCHRONOUS paths (invoke, preload, evict,
  /// defragment — and provisioning) advance the fleet-shared clock and
  /// execute any pending events on it, so only use them while the fleet is
  /// quiescent (no requests in flight), as download*/the benches do.
  AgileCoprocessor& card(unsigned index);
  CoprocessorServer& server(unsigned index);
  const CoprocessorServer& server(unsigned index) const;
  sim::Scheduler& scheduler() noexcept { return scheduler_; }
  /// Submitted but not yet completed, fleet-wide (dispatched or not).
  std::uint64_t in_flight() const;
  /// Fleet-wide totals plus the per-card breakdown.
  FleetStats stats() const;

 private:
  struct Shard {
    std::unique_ptr<AgileCoprocessor> card;
    std::unique_ptr<CoprocessorServer> server;
    std::uint64_t dispatched = 0;
  };

  unsigned least_queued() const;
  unsigned choose(memory::FunctionId function, bool& affinity_hit,
                  bool& delta_hit) const;
  /// preview_card + the state updates (cursor, affinity counters).
  unsigned route(memory::FunctionId function);
  void dispatch(unsigned client, memory::FunctionId function, Bytes input,
                Completion done);

  DispatchPolicy policy_;
  bool cost_routing_;
  sim::Scheduler scheduler_;
  std::vector<Shard> shards_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t undispatched_ = 0;  ///< scheduled arrivals not yet routed
  std::uint64_t rr_cursor_ = 0;
  std::uint64_t affinity_routed_ = 0;
  std::uint64_t delta_routed_ = 0;
  std::uint64_t affinity_fallback_ = 0;
};

}  // namespace aad::core
