#include "core/server.h"

#include <algorithm>

namespace aad::core {
namespace {

sim::SimTime percentile(const std::vector<sim::SimTime>& sorted, double q) {
  if (sorted.empty()) return sim::SimTime::zero();
  // Nearest-rank: the smallest value with at least q of the mass below it,
  // sorted[ceil(q*n) - 1].  The +0.999999 turns the truncation into a
  // ceiling for any q*n that is not already (within 1e-6 of) an integer,
  // so e.g. p50 of 10 samples is rank 5 and p99 of 10 samples is rank 10
  // (the max — every percentile above 1 - 1/n collapses to the max).
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(q * n + 0.999999);
  rank = std::clamp<std::size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

/// Unpins on scope exit, so a throwing load cannot leak pins.
class PinGuard {
 public:
  PinGuard(mcu::Mcu& mcu, std::vector<memory::FunctionId> pins)
      : mcu_(mcu), pins_(std::move(pins)) {
    for (const memory::FunctionId fn : pins_) mcu_.pin(fn);
  }
  ~PinGuard() {
    for (const memory::FunctionId fn : pins_) mcu_.unpin(fn);
  }
  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;

 private:
  mcu::Mcu& mcu_;
  std::vector<memory::FunctionId> pins_;
};

}  // namespace

LatencySummary summarize_latencies(std::vector<sim::SimTime> latencies) {
  LatencySummary summary{};
  if (latencies.empty()) return summary;
  std::sort(latencies.begin(), latencies.end());
  sim::SimTime sum;
  for (const sim::SimTime t : latencies) sum += t;
  summary.min = latencies.front();
  summary.max = latencies.back();
  summary.mean = sim::SimTime::ps(
      sum.picoseconds() / static_cast<std::int64_t>(latencies.size()));
  summary.p50 = percentile(latencies, 0.50);
  summary.p90 = percentile(latencies, 0.90);
  summary.p99 = percentile(latencies, 0.99);
  return summary;
}

CoprocessorServer::CoprocessorServer(AgileCoprocessor& card,
                                     const ServerConfig& config)
    : card_(card),
      config_(config),
      device_scheduler_(make_device_scheduler(config.device_policy)) {}

CoprocessorServer::Pending& CoprocessorServer::pending(std::uint64_t id) {
  const auto it = queue_.find(id);
  AAD_CHECK(it != queue_.end(), "unknown in-flight request id");
  return it->second;
}

std::uint64_t CoprocessorServer::submit(unsigned client,
                                        algorithms::KernelId kernel,
                                        Bytes input, Completion done) {
  return submit_function_at(now(), client, algorithms::function_id(kernel),
                            std::move(input), std::move(done));
}

std::uint64_t CoprocessorServer::submit_function(unsigned client,
                                                 memory::FunctionId function,
                                                 Bytes input, Completion done) {
  return submit_function_at(now(), client, function, std::move(input),
                            std::move(done));
}

std::uint64_t CoprocessorServer::submit_function_at(sim::SimTime when,
                                                    unsigned client,
                                                    memory::FunctionId function,
                                                    Bytes input,
                                                    Completion done) {
  AAD_REQUIRE(when >= now(), "cannot submit a request in the past");
  const std::uint64_t id = next_id_++;
  Pending p;
  p.request.id = id;
  p.request.client = client;
  p.request.function = function;
  p.request.submit_time = when;
  p.input = std::move(input);
  p.done = std::move(done);
  queue_.emplace(id, std::move(p));
  ++inbound_[function];
  ++in_flight_;
  ++submitted_;
  card_.scheduler().schedule_at(when, [this, id] { begin_pci_in(id); });
  return id;
}

void CoprocessorServer::begin_pci_in(std::uint64_t id) {
  Pending& p = pending(id);
  pci::PciBus& bus = card_.bus();
  // Command setup (4 doorbell registers + status poll) plus the input DMA
  // occupy the bus as one arbitration unit, exactly as the synchronous
  // driver issues them.
  const sim::SimTime duration =
      card_.pci_command_overhead(4) + bus.dma_to_device(p.input.size());
  const pci::BusGrant grant = bus.acquire(now(), duration);
  p.request.pci_in_start = grant.start;
  p.request.pci_in_time = duration;
  p.request.bus_wait += grant.queue_delay;
  card_.trace().record(sim::Stage::kHostPci, "server/in", grant.start,
                       grant.end);
  card_.scheduler().schedule_at(grant.end, [this, id] { device_ready(id); });
}

void CoprocessorServer::device_ready(std::uint64_t id) {
  pending(id).request.device_ready = now();
  device_queue_.push_back(id);
  pump_device();
}

void CoprocessorServer::schedule_pump(sim::SimTime when) {
  if (pump_wake_ && *pump_wake_ <= when) return;  // already covered
  pump_wake_ = when;
  card_.scheduler().schedule_at(when, [this, when] {
    if (pump_wake_ == when) pump_wake_.reset();
    // A superseded (later) wake-up still fires; pump_device just finds the
    // queue empty or the device busy and re-arms as needed.
    pump_device();
  });
}

void CoprocessorServer::pump_device() {
  if (device_queue_.empty()) return;
  if (now() < device_available()) {
    // The device is planned busy; one wake-up at its next-start instant
    // serves the whole queue (each commit reschedules the next).  Waiting
    // until then — rather than committing windows into the future — is
    // what lets the DeviceScheduler reorder everything still queued.
    schedule_pump(device_available());
    return;
  }

  std::size_t choice = 0;  // FIFO: the queue is already in arrival order
  if (device_scheduler_->kind() != DevicePolicy::kFifo) {
    // The policy decides against the card's configuration state right now
    // — residency at pick time, not at arrival time.
    std::vector<DeviceQueueEntry> entries;
    entries.reserve(device_queue_.size());
    const mcu::Mcu& mcu = card_.mcu();
    for (const std::uint64_t ready_id : device_queue_) {
      const Pending& p = pending(ready_id);
      DeviceQueueEntry entry;
      entry.id = ready_id;
      entry.function = p.request.function;
      entry.ready = p.request.device_ready;
      entry.resident = mcu.is_resident(entry.function);
      if (!entry.resident)
        if (const auto record = mcu.rom().lookup(entry.function))
          entry.reconfig_frames = record->frames;
      entries.push_back(entry);
    }
    choice = device_scheduler_->pick(entries);
    AAD_CHECK(choice < device_queue_.size(),
              "device scheduler picked out of range");
  }
  const std::uint64_t id = device_queue_[choice];
  if (!serve_device(id)) {
    // The pick may not take the engine while the fabric is busy (overlap
    // refused).  It stays queued — later arrivals can still be reordered
    // ahead of it — and the pump retries once the fabric frees.
    schedule_pump(fabric_free_);
    return;
  }
  device_queue_.erase(device_queue_.begin() +
                      static_cast<std::ptrdiff_t>(choice));
  pump_device();  // the commit advanced engine_free_; wake up then
}

bool CoprocessorServer::serve_device(std::uint64_t id) {
  Pending& p = pending(id);
  mcu::Mcu& mcu = card_.mcu();
  // The pump only fires once the engine is free, so the engine grant is
  // immediate (or the request defers without committing anything).
  const sim::SimTime engine_start = std::max(now(), engine_free_);

  // Fabric windows that are over by the time the engine starts no longer
  // constrain anything.
  std::erase_if(executing_, [engine_start](const FabricCommitment& c) {
    return c.end <= engine_start;
  });

  // Overlapped reconfiguration: with the fabric still executing, this
  // request's load may stream through the config engine only if it cannot
  // touch any executing function's frames.  Pinning the executing functions
  // keeps them out of the eviction loop, which — allocation only ever
  // handing out free frames — makes the new frame set disjoint from theirs.
  // When overlap is off, or even the limit state (everything non-pinned
  // evicted) cannot place the function, defer: the request waits for the
  // fabric like the pre-split server, but uncommitted, so the scheduler
  // can still reorder the queue meanwhile.
  std::vector<memory::FunctionId> pins;
  const bool fabric_busy = fabric_free_ > engine_start;
  if (fabric_busy) {
    if (!config_.overlap_reconfig) return false;
    if (!mcu.is_resident(p.request.function)) {
      for (const FabricCommitment& c : executing_)
        if (std::find(pins.begin(), pins.end(), c.function) == pins.end())
          pins.push_back(c.function);
      PinGuard probe(mcu, pins);
      if (!mcu.load_feasible(p.request.function)) return false;
      // probe unpins; the real pins are re-applied around the load below.
    }
  }
  const sim::SimTime fabric_busy_until = fabric_free_;

  p.request.engine_wait = engine_start - p.request.device_ready;
  p.request.device_start = engine_start;

  p.request.decode_time = mcu.decode_invoke(engine_start);
  const sim::SimTime load_start = engine_start + p.request.decode_time;
  sim::SimTime load_elapsed;
  {
    PinGuard guard(mcu, std::move(pins));
    p.request.load = mcu.load_invoke(p.request.function, load_start,
                                     &load_elapsed);
  }
  // The load has committed: from here on Mcu::is_resident carries the
  // routing signal, so the inbound marker retires (were it kept through
  // PCI-out, an eviction by a later overlapped load could leave the fleet
  // routing on a function this card no longer holds or expects).
  const auto inbound = inbound_.find(p.request.function);
  AAD_CHECK(inbound != inbound_.end(), "inbound accounting out of sync");
  if (--inbound->second == 0) inbound_.erase(inbound);

  p.request.prepare_time = p.request.decode_time + load_elapsed;
  const sim::SimTime engine_end = engine_start + p.request.prepare_time;

  // The overlap win: load time that ran while another request's fabric
  // execution was still in flight.
  if (fabric_busy_until > load_start && load_elapsed > sim::SimTime::zero())
    p.request.hidden_reconfig =
        std::min(engine_end, fabric_busy_until) - load_start;

  const sim::SimTime fabric_start = std::max(engine_end, fabric_free_);
  p.request.fabric_wait = fabric_start - engine_end;
  p.request.fabric_start = fabric_start;
  p.request.device_wait = p.request.engine_wait + p.request.fabric_wait;

  mcu::ExecutedInvoke run =
      mcu.execute_invoke(p.request.function, p.input, fabric_start);
  p.request.execute_time = run.time;
  p.request.exec_cycles = run.exec_cycles;
  p.request.output = std::move(run.output);
  Bytes().swap(p.input);  // payload has been consumed by the card

  engine_free_ = engine_end;
  fabric_free_ = fabric_start + run.time;
  executing_.push_back({fabric_free_, p.request.function});
  card_.scheduler().schedule_at(fabric_free_,
                                [this, id] { begin_pci_out(id); });
  return true;
}

void CoprocessorServer::begin_pci_out(std::uint64_t id) {
  Pending& p = pending(id);
  pci::PciBus& bus = card_.bus();
  const sim::SimTime duration =
      bus.dma_from_device(p.request.output.size()) + bus.register_read();
  const pci::BusGrant grant = bus.acquire(now(), duration);
  p.request.pci_out_start = grant.start;
  p.request.pci_out_time = duration;
  p.request.bus_wait += grant.queue_delay;
  card_.trace().record(sim::Stage::kHostPci, "server/out", grant.start,
                       grant.end);
  card_.scheduler().schedule_at(grant.end, [this, id] { complete(id); });
}

void CoprocessorServer::complete(std::uint64_t id) {
  const auto it = queue_.find(id);
  AAD_CHECK(it != queue_.end(), "completing an unknown request");
  ServerRequest request = std::move(it->second.request);
  const Completion done = std::move(it->second.done);
  queue_.erase(it);
  --in_flight_;
  request.complete_time = now();
  completed_.push_back(request);
  if (done) done(completed_.back());
}

std::size_t CoprocessorServer::run() { return card_.scheduler().run(); }

std::size_t CoprocessorServer::run_until(sim::SimTime deadline) {
  return card_.scheduler().run_until(deadline);
}

ServerStats CoprocessorServer::stats() const {
  ServerStats stats;
  stats.submitted = submitted_;
  stats.completed = completed_.size();
  if (completed_.empty()) return stats;

  sim::SimTime first_submit = completed_.front().submit_time;
  sim::SimTime last_complete = completed_.front().complete_time;
  std::vector<sim::SimTime> latencies;
  latencies.reserve(completed_.size());
  for (const ServerRequest& r : completed_) {
    first_submit = std::min(first_submit, r.submit_time);
    last_complete = std::max(last_complete, r.complete_time);
    latencies.push_back(r.latency());
    stats.total_bus_wait += r.bus_wait;
    stats.total_device_wait += r.device_wait;
    stats.total_engine_wait += r.engine_wait;
    stats.total_fabric_wait += r.fabric_wait;
    stats.total_hidden_reconfig += r.hidden_reconfig;
    if (r.hidden_reconfig > sim::SimTime::zero()) ++stats.overlapped_loads;
  }
  stats.makespan = last_complete - first_submit;
  if (stats.makespan > sim::SimTime::zero())
    stats.throughput_rps =
        static_cast<double>(completed_.size()) / stats.makespan.seconds();
  stats.latency = summarize_latencies(std::move(latencies));
  return stats;
}

}  // namespace aad::core
