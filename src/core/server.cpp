#include "core/server.h"

#include <algorithm>

namespace aad::core {
namespace {

sim::SimTime percentile(const std::vector<sim::SimTime>& sorted, double q) {
  if (sorted.empty()) return sim::SimTime::zero();
  // Nearest-rank: the smallest value with at least q of the mass below it.
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(q * n + 0.999999);
  rank = std::clamp<std::size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

}  // namespace

LatencySummary summarize_latencies(std::vector<sim::SimTime> latencies) {
  LatencySummary summary{};
  if (latencies.empty()) return summary;
  std::sort(latencies.begin(), latencies.end());
  sim::SimTime sum;
  for (const sim::SimTime t : latencies) sum += t;
  summary.min = latencies.front();
  summary.max = latencies.back();
  summary.mean = sim::SimTime::ps(
      sum.picoseconds() / static_cast<std::int64_t>(latencies.size()));
  summary.p50 = percentile(latencies, 0.50);
  summary.p90 = percentile(latencies, 0.90);
  summary.p99 = percentile(latencies, 0.99);
  return summary;
}

CoprocessorServer::CoprocessorServer(AgileCoprocessor& card) : card_(card) {}

CoprocessorServer::Pending& CoprocessorServer::pending(std::uint64_t id) {
  const auto it = queue_.find(id);
  AAD_CHECK(it != queue_.end(), "unknown in-flight request id");
  return it->second;
}

std::uint64_t CoprocessorServer::submit(unsigned client,
                                        algorithms::KernelId kernel,
                                        Bytes input, Completion done) {
  return submit_function_at(now(), client, algorithms::function_id(kernel),
                            std::move(input), std::move(done));
}

std::uint64_t CoprocessorServer::submit_function(unsigned client,
                                                 memory::FunctionId function,
                                                 Bytes input, Completion done) {
  return submit_function_at(now(), client, function, std::move(input),
                            std::move(done));
}

std::uint64_t CoprocessorServer::submit_function_at(sim::SimTime when,
                                                    unsigned client,
                                                    memory::FunctionId function,
                                                    Bytes input,
                                                    Completion done) {
  AAD_REQUIRE(when >= now(), "cannot submit a request in the past");
  const std::uint64_t id = next_id_++;
  Pending p;
  p.request.id = id;
  p.request.client = client;
  p.request.function = function;
  p.request.submit_time = when;
  p.input = std::move(input);
  p.done = std::move(done);
  queue_.emplace(id, std::move(p));
  ++in_flight_;
  ++submitted_;
  card_.scheduler().schedule_at(when, [this, id] { begin_pci_in(id); });
  return id;
}

void CoprocessorServer::begin_pci_in(std::uint64_t id) {
  Pending& p = pending(id);
  pci::PciBus& bus = card_.bus();
  // Command setup (4 doorbell registers + status poll) plus the input DMA
  // occupy the bus as one arbitration unit, exactly as the synchronous
  // driver issues them.
  const sim::SimTime duration =
      card_.pci_command_overhead(4) + bus.dma_to_device(p.input.size());
  const pci::BusGrant grant = bus.acquire(now(), duration);
  p.request.pci_in_start = grant.start;
  p.request.pci_in_time = duration;
  p.request.bus_wait += grant.queue_delay;
  card_.trace().record(sim::Stage::kHostPci, "server/in", grant.start,
                       grant.end);
  card_.scheduler().schedule_at(grant.end, [this, id] { begin_device(id); });
}

void CoprocessorServer::begin_device(std::uint64_t id) {
  Pending& p = pending(id);
  // The card serves requests FIFO in data-arrival order: reserve the next
  // free window now and plan both device stages into it.  Mutating MCU
  // state here is safe because reservations are made in chronological
  // order, so the residency/eviction decisions happen in service order.
  const sim::SimTime start = std::max(now(), device_free_);
  p.request.device_wait = start - now();
  p.request.device_start = start;

  const mcu::PreparedInvoke prep =
      card_.mcu().prepare_invoke(p.request.function, start);
  mcu::ExecutedInvoke run = card_.mcu().execute_invoke(
      p.request.function, p.input, start + prep.time);

  p.request.load = prep.load;
  p.request.prepare_time = prep.time;
  p.request.execute_time = run.time;
  p.request.exec_cycles = run.exec_cycles;
  p.request.output = std::move(run.output);
  Bytes().swap(p.input);  // payload has been consumed by the card

  device_free_ = start + prep.time + run.time;
  card_.scheduler().schedule_at(device_free_,
                                [this, id] { begin_pci_out(id); });
}

void CoprocessorServer::begin_pci_out(std::uint64_t id) {
  Pending& p = pending(id);
  pci::PciBus& bus = card_.bus();
  const sim::SimTime duration =
      bus.dma_from_device(p.request.output.size()) + bus.register_read();
  const pci::BusGrant grant = bus.acquire(now(), duration);
  p.request.pci_out_start = grant.start;
  p.request.pci_out_time = duration;
  p.request.bus_wait += grant.queue_delay;
  card_.trace().record(sim::Stage::kHostPci, "server/out", grant.start,
                       grant.end);
  card_.scheduler().schedule_at(grant.end, [this, id] { complete(id); });
}

void CoprocessorServer::complete(std::uint64_t id) {
  const auto it = queue_.find(id);
  AAD_CHECK(it != queue_.end(), "completing an unknown request");
  ServerRequest request = std::move(it->second.request);
  const Completion done = std::move(it->second.done);
  queue_.erase(it);
  --in_flight_;
  request.complete_time = now();
  completed_.push_back(request);
  if (done) done(completed_.back());
}

std::size_t CoprocessorServer::run() { return card_.scheduler().run(); }

std::size_t CoprocessorServer::run_until(sim::SimTime deadline) {
  return card_.scheduler().run_until(deadline);
}

ServerStats CoprocessorServer::stats() const {
  ServerStats stats;
  stats.submitted = submitted_;
  stats.completed = completed_.size();
  if (completed_.empty()) return stats;

  sim::SimTime first_submit = completed_.front().submit_time;
  sim::SimTime last_complete = completed_.front().complete_time;
  std::vector<sim::SimTime> latencies;
  latencies.reserve(completed_.size());
  for (const ServerRequest& r : completed_) {
    first_submit = std::min(first_submit, r.submit_time);
    last_complete = std::max(last_complete, r.complete_time);
    latencies.push_back(r.latency());
    stats.total_bus_wait += r.bus_wait;
    stats.total_device_wait += r.device_wait;
  }
  stats.makespan = last_complete - first_submit;
  if (stats.makespan > sim::SimTime::zero())
    stats.throughput_rps =
        static_cast<double>(completed_.size()) / stats.makespan.seconds();
  stats.latency = summarize_latencies(std::move(latencies));
  return stats;
}

}  // namespace aad::core
