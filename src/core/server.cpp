#include "core/server.h"

#include <algorithm>

namespace aad::core {
namespace {

sim::SimTime percentile(const std::vector<sim::SimTime>& sorted, double q) {
  if (sorted.empty()) return sim::SimTime::zero();
  // Nearest-rank: the smallest value with at least q of the mass below it,
  // sorted[ceil(q*n) - 1].  The +0.999999 turns the truncation into a
  // ceiling for any q*n that is not already (within 1e-6 of) an integer,
  // so e.g. p50 of 10 samples is rank 5 and p99 of 10 samples is rank 10
  // (the max — every percentile above 1 - 1/n collapses to the max).
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(q * n + 0.999999);
  rank = std::clamp<std::size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

/// Unpins on scope exit, so a throwing load cannot leak pins.
class PinGuard {
 public:
  PinGuard(mcu::Mcu& mcu, std::vector<memory::FunctionId> pins)
      : mcu_(mcu), pins_(std::move(pins)) {
    for (const memory::FunctionId fn : pins_) mcu_.pin(fn);
  }
  ~PinGuard() {
    for (const memory::FunctionId fn : pins_) mcu_.unpin(fn);
  }
  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;

 private:
  mcu::Mcu& mcu_;
  std::vector<memory::FunctionId> pins_;
};

}  // namespace

LatencySummary summarize_latencies(std::vector<sim::SimTime> latencies) {
  LatencySummary summary{};
  if (latencies.empty()) return summary;
  std::sort(latencies.begin(), latencies.end());
  sim::SimTime sum;
  for (const sim::SimTime t : latencies) sum += t;
  summary.min = latencies.front();
  summary.max = latencies.back();
  summary.mean = sim::SimTime::ps(
      sum.picoseconds() / static_cast<std::int64_t>(latencies.size()));
  summary.p50 = percentile(latencies, 0.50);
  summary.p90 = percentile(latencies, 0.90);
  summary.p99 = percentile(latencies, 0.99);
  return summary;
}

CoprocessorServer::CoprocessorServer(AgileCoprocessor& card,
                                     const ServerConfig& config)
    : card_(card),
      config_(config),
      device_scheduler_(make_device_scheduler(config.device_policy)),
      batch_policy_(make_batch_policy(config.batch)),
      counters_{card.registry().counter("server.submitted"),
                card.registry().counter("server.cancelled"),
                card.registry().counter("server.batches"),
                card.registry().counter("server.coalesced_loads"),
                card.registry().counter("server.amortized_reconfig_ps"),
                card.registry().counter("server.prefetch_issued"),
                card.registry().counter("server.prefetch_hits"),
                card.registry().counter("server.prefetch_wasted"),
                card.registry().counter("server.prefetch_hidden_ps"),
                card.registry().gauge("server.device_queue_depth")},
      predictor_(config.prefetch.predictor) {}

void CoprocessorServer::attach_trace(telemetry::TraceSink& sink,
                                     const std::string& label,
                                     std::int64_t card) {
  const std::uint32_t pid = sink.add_process(label);
  pci_track_ = sink.add_track(pid, "pci", card);
  engine_track_ = sink.add_track(pid, "engine", card);
  fabric_track_ = sink.add_track(pid, "fabric", card);
  batch_track_ = sink.add_track(pid, "batch", card);
}

CoprocessorServer::Pending& CoprocessorServer::pending(std::uint64_t id) {
  const auto it = queue_.find(id);
  AAD_CHECK(it != queue_.end(), "unknown in-flight request id");
  return it->second;
}

std::uint64_t CoprocessorServer::submit(unsigned client,
                                        algorithms::KernelId kernel,
                                        Bytes input, Completion done) {
  return submit_function_at(now(), client, algorithms::function_id(kernel),
                            std::move(input), std::move(done));
}

std::uint64_t CoprocessorServer::submit_function(unsigned client,
                                                 memory::FunctionId function,
                                                 Bytes input, Completion done) {
  return submit_function_at(now(), client, function, std::move(input),
                            std::move(done));
}

std::uint64_t CoprocessorServer::submit_function_at(sim::SimTime when,
                                                    unsigned client,
                                                    memory::FunctionId function,
                                                    Bytes input,
                                                    Completion done) {
  AAD_REQUIRE(when >= now(), "cannot submit a request in the past");
  const std::uint64_t id = next_id_++;
  Pending p;
  p.request.id = id;
  p.request.client = client;
  p.request.function = function;
  p.request.submit_time = when;
  p.input = std::move(input);
  p.done = std::move(done);
  Pending& entry = queue_.emplace(id, std::move(p)).first->second;
  ++inbound_[function];
  ++in_flight_;
  counters_.submitted.add();
  entry.chain_event = schedule(when, [this, id] { begin_pci_in(id); });
  return id;
}

sim::EventId CoprocessorServer::schedule(sim::SimTime when,
                                         std::function<void()> action) {
  // The holder lets the wrapper erase its own ledger entry when it fires;
  // power_off cancels whatever ids remain in the ledger.
  auto holder = std::make_shared<sim::EventId>(0);
  const sim::EventId id = card_.scheduler().schedule_at(
      when, [this, holder, action = std::move(action)] {
        scheduled_.erase(*holder);
        action();
      });
  *holder = id;
  scheduled_.insert(id);
  return id;
}

std::optional<CoprocessorServer::CancelledRequest> CoprocessorServer::try_cancel(
    std::uint64_t id) {
  const auto it = queue_.find(id);
  if (it == queue_.end()) return std::nullopt;  // already completed
  Pending& p = it->second;
  if (p.committed) return std::nullopt;  // engine/fabric windows are booked
  const auto queued = std::find(device_queue_.begin(), device_queue_.end(), id);
  if (queued != device_queue_.end()) {
    device_queue_.erase(queued);
    counters_.queue_depth.set(
        static_cast<std::int64_t>(device_queue_.size()));
  } else {
    // Still riding its submit -> pci-in -> device_ready chain.
    AAD_CHECK(p.chain_event.has_value(),
              "uncommitted request has no pending event");
    card_.scheduler().cancel(*p.chain_event);
    scheduled_.erase(*p.chain_event);
  }
  const auto inbound = inbound_.find(p.request.function);
  AAD_CHECK(inbound != inbound_.end(), "inbound accounting out of sync");
  if (--inbound->second == 0) inbound_.erase(inbound);
  // If this was the open batch's last queued member, retire the anchor so
  // open_batch_for stops advertising a batch nobody can join.
  if (hold_anchors_.contains(p.request.function)) {
    bool still_queued = false;
    for (const std::uint64_t ready_id : device_queue_)
      if (queue_.at(ready_id).request.function == p.request.function) {
        still_queued = true;
        break;
      }
    if (!still_queued) hold_anchors_.erase(p.request.function);
  }
  CancelledRequest out;
  out.id = id;
  out.client = p.request.client;
  out.function = p.request.function;
  out.input = std::move(p.input);
  out.done = std::move(p.done);
  out.submit_time = p.request.submit_time;
  queue_.erase(it);
  --in_flight_;
  counters_.cancelled.add();
  return out;
}

std::vector<CoprocessorServer::CancelledRequest>
CoprocessorServer::power_off() {
  // Cancel the whole event ledger first: a dead card's pipeline must not
  // fire another event (and the cancelled callbacks' captured payloads are
  // released immediately).
  for (const sim::EventId event : scheduled_) card_.scheduler().cancel(event);
  scheduled_.clear();
  std::vector<CancelledRequest> refugees;
  refugees.reserve(queue_.size());
  for (auto& [id, p] : queue_) {
    CancelledRequest r;
    r.id = id;
    r.client = p.request.client;
    r.function = p.request.function;
    r.input = std::move(p.input);
    r.done = std::move(p.done);
    r.submit_time = p.request.submit_time;
    refugees.push_back(std::move(r));
  }
  counters_.cancelled.add(queue_.size());
  queue_.clear();
  device_queue_.clear();
  counters_.queue_depth.set(0);
  inbound_.clear();
  hold_anchors_.clear();
  executing_.clear();
  pump_wake_.reset();
  // Issued-but-unconsumed prefetches die with the fabric: wasted, like a
  // steal.  The predictor itself is host-driver state and survives.
  counters_.prefetch_wasted.add(prefetched_.size());
  prefetched_.clear();
  prefetch_queue_.clear();
  prefetch_wake_.reset();
  engine_free_ = sim::SimTime::zero();
  fabric_free_ = sim::SimTime::zero();
  in_flight_ = 0;
  card_.mcu().reset_fabric();  // recovery starts with a cold fabric
  return refugees;
}

void CoprocessorServer::begin_pci_in(std::uint64_t id) {
  Pending& p = pending(id);
  pci::PciBus& bus = card_.bus();
  // Command setup (4 doorbell registers + status poll) plus the input DMA
  // occupy the bus as one arbitration unit, exactly as the synchronous
  // driver issues them.
  const sim::SimTime duration =
      card_.pci_command_overhead(4) + bus.dma_to_device(p.input.size());
  const pci::BusGrant grant = bus.acquire(now(), duration);
  p.request.pci_in_start = grant.start;
  p.request.pci_in_time = duration;
  p.request.bus_wait += grant.queue_delay;
  card_.trace().record(sim::Stage::kHostPci, "server/in", grant.start,
                       grant.end);
  if (pci_track_ != nullptr)
    pci_track_->span("pci", "pci-in", grant.start, grant.end, id,
                     p.request.client, p.request.function);
  p.chain_event = schedule(grant.end, [this, id] { device_ready(id); });
}

void CoprocessorServer::device_ready(std::uint64_t id) {
  Pending& p = pending(id);
  p.chain_event.reset();  // from here the device queue carries the request
  p.request.device_ready = now();
  device_queue_.push_back(id);
  counters_.queue_depth.set(static_cast<std::int64_t>(device_queue_.size()));
  pump_device();
}

void CoprocessorServer::schedule_pump(sim::SimTime when) {
  if (pump_wake_ && *pump_wake_ <= when) return;  // already covered
  pump_wake_ = when;
  schedule(when, [this, when] {
    if (pump_wake_ == when) pump_wake_.reset();
    // A superseded (later) wake-up still fires; pump_device just finds the
    // queue empty or the device busy and re-arms as needed.
    pump_device();
  });
}

void CoprocessorServer::pump_device() {
  if (device_queue_.empty()) return;
  if (now() < device_available()) {
    // The device is planned busy; one wake-up at its next-start instant
    // serves the whole queue (each commit reschedules the next).  Waiting
    // until then — rather than committing windows into the future — is
    // what lets the DeviceScheduler reorder everything still queued.
    schedule_pump(device_available());
    return;
  }

  std::size_t choice = 0;  // FIFO: the queue is already in arrival order
  if (device_scheduler_->kind() != DevicePolicy::kFifo) {
    // The policy decides against the card's configuration state right now
    // — residency at pick time, not at arrival time.
    std::vector<DeviceQueueEntry> entries;
    entries.reserve(device_queue_.size());
    const mcu::Mcu& mcu = card_.mcu();
    // SJF's ordering key: the real modeled load cost once the card tracks
    // frame contents (delta reconfiguration), else frames-as-picoseconds —
    // a monotone map of the footprint, so orderings (and ties) are exactly
    // the old frame-count SJF's.
    const bool cost_model =
        device_scheduler_->kind() == DevicePolicy::kShortestReconfigFirst &&
        mcu.config().engine.delta_reconfig;
    for (const std::uint64_t ready_id : device_queue_) {
      const Pending& p = pending(ready_id);
      DeviceQueueEntry entry;
      entry.id = ready_id;
      entry.function = p.request.function;
      entry.ready = p.request.device_ready;
      entry.resident = mcu.is_resident(entry.function);
      if (!entry.resident)
        if (const auto record = mcu.rom().lookup(entry.function))
          entry.reconfig_frames = record->frames;
      entry.reconfig_cost = cost_model
                                ? mcu.estimated_load_cost(entry.function)
                                : sim::SimTime::ps(entry.reconfig_frames);
      entries.push_back(entry);
    }
    choice = device_scheduler_->pick(entries);
    AAD_CHECK(choice < device_queue_.size(),
              "device scheduler picked out of range");
  }
  const std::uint64_t id = device_queue_[choice];

  // Batch formation: the scheduler chose WHICH function is served next;
  // the batch policy decides whether to commit now and how many queued
  // same-function requests ride along (sharing one decode + load).  The
  // hold anchor survives across pumps as long as the pick stays on the
  // same function, so a windowed policy's horizon is measured from the
  // first time the function became the pick, not from the latest wake-up.
  std::uint64_t leader = id;
  memory::FunctionId function = pending(id).request.function;
  std::vector<std::uint64_t> batch{id};
  if (batch_policy_->kind() != BatchMode::kNone) {
    // kNone always commits a batch of one, so the same-function queue
    // scans below would only compute counts its decide() discards — skip
    // them on what is every pre-batching configuration's hot path.
    const auto view_for = [this](memory::FunctionId fn, sim::SimTime anchor) {
      BatchView view;
      view.function = fn;
      for (const std::uint64_t ready_id : device_queue_)
        if (pending(ready_id).request.function == fn) ++view.queued;
      view.hold_since = anchor;
      view.now = now();
      view.est_load_cost = card_.mcu().estimated_load_cost(fn);
      return view;
    };
    // The horizon anchor is PER FUNCTION and survives the pick moving
    // elsewhere (a resident-first scheduler can commit another function
    // mid-hold): the window is measured from the first time the function
    // became the pick, not from its latest re-pick.  The anchor retires
    // when the function's batch commits.
    const sim::SimTime anchor =
        hold_anchors_.try_emplace(function, now()).first->second;
    BatchDecision decision = batch_policy_->decide(view_for(function, anchor));
    if (!decision.commit) {
      AAD_CHECK(decision.reconsider_at > now(),
                "batch policy held without a future reconsider time");
      // The pick holds — but a DIFFERENT anchored function whose own
      // horizon has already run out must not keep waiting for the pick to
      // bounce back to it (a trickle of scheduler-preferred arrivals each
      // opening a fresh hold would defer it unboundedly).  Ask the policy
      // about every other anchored function: serve the oldest-anchored
      // one that commits, and otherwise sleep until the EARLIEST
      // reconsider time over all of them, so each hold expires on its own
      // clock even while another function is the pick.
      bool found = false;
      sim::SimTime wake = decision.reconsider_at;
      memory::FunctionId alt{};
      sim::SimTime alt_anchor;
      for (const auto& [fn, fn_anchor] : hold_anchors_) {
        if (fn == function) continue;
        const BatchView view = view_for(fn, fn_anchor);
        if (view.queued == 0) continue;
        const BatchDecision d = batch_policy_->decide(view);
        if (!d.commit) {
          AAD_CHECK(d.reconsider_at > now(),
                    "batch policy held without a future reconsider time");
          wake = std::min(wake, d.reconsider_at);
          continue;
        }
        if (!found || fn_anchor < alt_anchor) {
          found = true;
          alt = fn;
          alt_anchor = fn_anchor;
          decision = d;
        }
      }
      if (!found) {
        schedule_pump(wake);
        return;
      }
      function = alt;
      bool leader_found = false;
      for (const std::uint64_t ready_id : device_queue_)
        if (pending(ready_id).request.function == function) {
          leader = ready_id;
          leader_found = true;
          break;
        }
      AAD_CHECK(leader_found, "anchored function has no queued request");
    }
    AAD_CHECK(decision.limit >= 1, "batch policy committed an empty batch");
    batch = collect_batch(leader, decision.limit);
  }
  if (!serve_batch(batch)) {
    // The batch may not take the engine while the fabric is busy (overlap
    // refused).  Every member stays queued — later arrivals can still be
    // reordered ahead of them — and the pump retries once the fabric
    // frees.  The function's hold anchor persists across the refusal, so
    // a windowed horizon is not restarted and open_batch_for keeps
    // advertising the still-forming batch to the fleet router.
    schedule_pump(fabric_free_);
    return;
  }
  if (const auto anchor = hold_anchors_.find(function);
      anchor != hold_anchors_.end()) {
    if (batch_track_ != nullptr && anchor->second < now())
      batch_track_->span("batch", "batch-hold", anchor->second, now(),
                         /*request=*/-1, /*client=*/-1, function);
    hold_anchors_.erase(anchor);
  }
  for (const std::uint64_t member : batch) std::erase(device_queue_, member);
  counters_.queue_depth.set(static_cast<std::int64_t>(device_queue_.size()));
  pump_device();  // the commit advanced engine_free_; wake up then
}

std::vector<std::uint64_t> CoprocessorServer::collect_batch(
    std::uint64_t leader, std::size_t limit) const {
  std::vector<std::uint64_t> batch{leader};
  if (limit <= 1) return batch;
  const memory::FunctionId function = queue_.at(leader).request.function;
  // Leader first (the scheduler's pick), then the other same-function
  // entries in arrival order.  With the built-in device policies the pick
  // IS the earliest same-function entry, so the whole batch is in arrival
  // order.
  for (const std::uint64_t ready_id : device_queue_) {
    if (batch.size() >= limit) break;
    if (ready_id == leader) continue;
    if (queue_.at(ready_id).request.function == function)
      batch.push_back(ready_id);
  }
  return batch;
}

bool CoprocessorServer::serve_batch(const std::vector<std::uint64_t>& batch) {
  AAD_CHECK(!batch.empty(), "serving an empty batch");
  Pending& p = pending(batch.front());
  mcu::Mcu& mcu = card_.mcu();
  // The pump only fires once the engine is free, so the engine grant is
  // immediate (or the request defers without committing anything).
  const sim::SimTime engine_start = std::max(now(), engine_free_);

  // Fabric windows that are over by the time the engine starts no longer
  // constrain anything.
  std::erase_if(executing_, [engine_start](const FabricCommitment& c) {
    return c.end <= engine_start;
  });

  // Overlapped reconfiguration: with the fabric still executing, this
  // request's load may stream through the config engine only if it cannot
  // touch any executing function's frames.  Pinning the executing functions
  // keeps them out of the eviction loop, which — allocation only ever
  // handing out free frames — makes the new frame set disjoint from theirs.
  // When overlap is off, or even the limit state (everything non-pinned
  // evicted) cannot place the function, defer: the request waits for the
  // fabric like the pre-split server, but uncommitted, so the scheduler
  // can still reorder the queue meanwhile.
  std::vector<memory::FunctionId> pins;
  const bool fabric_busy = fabric_free_ > engine_start;
  if (fabric_busy && !config_.overlap_reconfig) return false;
  // The probe must also run when the fabric looks free but a pin is still
  // held: a previous batch's standing pin outlives its last fabric window
  // by one same-timestamp event (the unpin fires AT fabric_free_, and the
  // scheduler orders equal timestamps FIFO, so a device_ready enqueued
  // before that batch committed runs first).  Skipping the probe there
  // would send load_invoke into the eviction loop with the pin active and
  // crash on a device where the pinned frames block placement, instead of
  // deferring one event until the unpin retires the pin.
  if (!mcu.is_resident(p.request.function) &&
      (fabric_busy || mcu.pinned_count() > 0)) {
    for (const FabricCommitment& c : executing_)
      if (std::find(pins.begin(), pins.end(), c.function) == pins.end())
        pins.push_back(c.function);
    PinGuard probe(mcu, pins);
    if (!mcu.load_feasible(p.request.function)) return false;
    // probe unpins; the real pins are re-applied around the load below.
  }
  const sim::SimTime fabric_busy_until = fabric_free_;

  p.request.engine_wait = engine_start - p.request.device_ready;
  p.request.device_start = engine_start;

  p.request.decode_time = mcu.decode_invoke(engine_start);
  const sim::SimTime load_start = engine_start + p.request.decode_time;
  sim::SimTime load_elapsed;
  {
    PinGuard guard(mcu, std::move(pins));
    try {
      p.request.load = mcu.load_invoke(p.request.function, load_start,
                                       &load_elapsed);
    } catch (const Error& error) {
      if (error.code() != ErrorCode::kCorruptData) throw;
      // Corrupted bitstream the MCU's re-fetch path could not repair: the
      // fabric is untouched (decode-before-program), so nothing to unwind
      // on the device — the whole batch surfaces as failed right now.
      fail_batch(batch, FailReason::kCrcReject);
      return true;  // batch consumed: the pump must drop it from the queue
    }
  }
  // The load has committed: from here on Mcu::is_resident carries the
  // routing signal, so the inbound marker retires (were it kept through
  // PCI-out, an eviction by a later overlapped load could leave the fleet
  // routing on a function this card no longer holds or expects).
  const auto inbound = inbound_.find(p.request.function);
  AAD_CHECK(inbound != inbound_.end(), "inbound accounting out of sync");
  if (--inbound->second == 0) inbound_.erase(inbound);
  if (config_.prefetch.enabled)
    settle_prefetch(p.request.function, p.request.load.hit);

  p.request.prepare_time = p.request.decode_time + load_elapsed;
  const sim::SimTime engine_end = engine_start + p.request.prepare_time;
  if (engine_track_ != nullptr) {
    engine_track_->span("engine", "decode", engine_start, load_start,
                        p.request.id, p.request.client, p.request.function);
    if (load_elapsed > sim::SimTime::zero())
      engine_track_->span("engine", "load", load_start,
                          load_start + load_elapsed, p.request.id,
                          p.request.client, p.request.function);
  }

  // The overlap win: load time that ran while another request's fabric
  // execution was still in flight.
  if (fabric_busy_until > load_start && load_elapsed > sim::SimTime::zero())
    p.request.hidden_reconfig =
        std::min(engine_end, fabric_busy_until) - load_start;

  const sim::SimTime fabric_start = std::max(engine_end, fabric_free_);
  p.request.fabric_wait = fabric_start - engine_end;
  p.request.fabric_start = fabric_start;
  p.request.device_wait = p.request.engine_wait + p.request.fabric_wait;

  mcu::ExecutedInvoke run =
      mcu.execute_invoke(p.request.function, p.input, fabric_start);
  p.request.execute_time = run.time;
  p.request.exec_cycles = run.exec_cycles;
  p.request.output = std::move(run.output);
  // The input payload stays on the Pending: a card death after commit hands
  // it back as a refugee for redispatch (at-least-once semantics).
  p.committed = true;

  engine_free_ = engine_end;
  fabric_free_ = fabric_start + run.time;
  if (fabric_track_ != nullptr)
    fabric_track_->span("fabric", "execute", fabric_start, fabric_free_,
                        p.request.id, p.request.client, p.request.function);
  executing_.push_back({fabric_free_, p.request.function});
  {
    const std::uint64_t leader_id = batch.front();
    schedule(fabric_free_, [this, leader_id] { begin_pci_out(leader_id); });
  }

  // The coalesced members: no engine occupancy at all — they ride the
  // leader's decode + load and run back-to-back fabric windows behind it.
  const std::uint64_t batch_id = counters_.batches.value();
  counters_.batches.add();
  const memory::FunctionId function = p.request.function;
  const sim::SimTime leader_prepare = p.request.prepare_time;
  p.request.batch_id = batch_id;
  p.request.batch_size = static_cast<std::uint32_t>(batch.size());
  for (std::size_t i = 1; i < batch.size(); ++i) {
    const std::uint64_t member_id = batch[i];
    Pending& q = pending(member_id);
    AAD_CHECK(q.request.function == function, "mixed-function batch");
    q.request.batch_id = batch_id;
    q.request.batch_size = static_cast<std::uint32_t>(batch.size());
    q.request.coalesced_load = true;
    // The member's load "commits" with the leader's: the function is
    // resident (and pinned, below) for its window, so it is a hit with no
    // engine time of its own; Mcu::is_resident carries the routing signal
    // from here on, exactly as for the leader.
    q.request.load.hit = true;
    const auto member_inbound = inbound_.find(function);
    AAD_CHECK(member_inbound != inbound_.end(),
              "inbound accounting out of sync");
    if (--member_inbound->second == 0) inbound_.erase(member_inbound);

    q.request.device_start = engine_start;
    q.request.engine_wait = engine_start - q.request.device_ready;
    const sim::SimTime member_start = fabric_free_;
    q.request.fabric_start = member_start;
    q.request.fabric_wait = member_start - engine_end;
    q.request.device_wait = q.request.engine_wait + q.request.fabric_wait;

    mcu::ExecutedInvoke member_run =
        mcu.execute_invoke(function, q.input, member_start);
    q.request.execute_time = member_run.time;
    q.request.exec_cycles = member_run.exec_cycles;
    q.request.output = std::move(member_run.output);
    q.committed = true;

    fabric_free_ = member_start + member_run.time;
    if (fabric_track_ != nullptr)
      fabric_track_->span("fabric", "execute", member_start, fabric_free_,
                          q.request.id, q.request.client, function);
    executing_.push_back({fabric_free_, function});
    schedule(fabric_free_, [this, member_id] { begin_pci_out(member_id); });

    counters_.coalesced_loads.add();
    counters_.amortized_reconfig.add_time(leader_prepare);
  }

  // A real batch keeps one pin reference on its function until the last
  // window retires, so an overlapped load of another function streaming
  // during the batch can never evict it between windows (Mcu pins are
  // refcounted, so this composes with the per-load PinGuards above).
  if (batch.size() > 1) {
    mcu.pin(function);
    schedule(fabric_free_, [this, function] { card_.mcu().unpin(function); });
  }
  return true;
}

void CoprocessorServer::fail_batch(const std::vector<std::uint64_t>& batch,
                                   FailReason reason) {
  for (const std::uint64_t member : batch) {
    Pending& q = pending(member);
    q.committed = true;  // terminal: a timeout cancel must not race this
    const auto inbound = inbound_.find(q.request.function);
    AAD_CHECK(inbound != inbound_.end(), "inbound accounting out of sync");
    if (--inbound->second == 0) inbound_.erase(inbound);
    q.request.failed = true;
    q.request.fail_reason = reason;
    if (engine_track_ != nullptr)
      engine_track_->instant("fault", "batch-failed", now(), q.request.id,
                             q.request.client, q.request.function);
    complete(member);
  }
}

void CoprocessorServer::begin_pci_out(std::uint64_t id) {
  Pending& p = pending(id);
  pci::PciBus& bus = card_.bus();
  const sim::SimTime duration =
      bus.dma_from_device(p.request.output.size()) + bus.register_read();
  const pci::BusGrant grant = bus.acquire(now(), duration);
  p.request.pci_out_start = grant.start;
  p.request.pci_out_time = duration;
  p.request.bus_wait += grant.queue_delay;
  card_.trace().record(sim::Stage::kHostPci, "server/out", grant.start,
                       grant.end);
  if (pci_track_ != nullptr)
    pci_track_->span("pci", "pci-out", grant.start, grant.end, id,
                     p.request.client, p.request.function);
  schedule(grant.end, [this, id] { complete(id); });
}

void CoprocessorServer::complete(std::uint64_t id) {
  const auto it = queue_.find(id);
  AAD_CHECK(it != queue_.end(), "completing an unknown request");
  ServerRequest request = std::move(it->second.request);
  const Completion done = std::move(it->second.done);
  queue_.erase(it);
  --in_flight_;
  request.complete_time = now();
  completed_.push_back(request);
  if (config_.prefetch.enabled && !completed_.back().failed) {
    // Train on the completion stream (successes only) and queue the
    // client's predicted next function for the idle-engine pump.  Before
    // the hook: the completion precedes the client's next action.
    const ServerRequest& r = completed_.back();
    predictor_.observe(r.client, r.function);
    if (const auto p = predictor_.predict(r.client))
      queue_prefetch_at(now(), p->function);
    // Candidates queued while demand was in flight (the fleet's
    // dispatch-time predictions) wait for the card to drain; this
    // completion may have been the drain.
    if (!prefetch_queue_.empty())
      schedule_prefetch_pump(std::max(now(), device_available()));
  }
  if (done) done(completed_.back());
}

void CoprocessorServer::queue_prefetch_at(sim::SimTime when,
                                          memory::FunctionId function) {
  if (!config_.prefetch.enabled) return;
  AAD_REQUIRE(when >= now(), "cannot prefetch in the past");
  if (prefetched_.contains(function)) return;  // warmed, awaiting demand
  if (std::find(prefetch_queue_.begin(), prefetch_queue_.end(), function) ==
      prefetch_queue_.end())
    prefetch_queue_.push_back(function);
  schedule_prefetch_pump(std::max(when, device_available()));
}

void CoprocessorServer::schedule_prefetch_pump(sim::SimTime when) {
  if (prefetch_wake_ && *prefetch_wake_ <= when) return;  // already covered
  prefetch_wake_ = when;
  schedule(when, [this, when] {
    if (prefetch_wake_ == when) prefetch_wake_.reset();
    pump_prefetch();
  });
}

void CoprocessorServer::pump_prefetch() {
  if (prefetch_queue_.empty()) return;
  // Demand work owns the engine — and a request still in PCI-in or decode
  // will want it within the speculative load's own window, so the pump
  // only runs on a fully idle card.  No re-arm here: every completion
  // re-arms the pump while candidates are waiting (complete()).
  if (in_flight_ > 0) return;
  if (!device_queue_.empty()) return;
  if (now() < device_available()) {
    schedule_prefetch_pump(device_available());
    return;
  }

  mcu::Mcu& mcu = card_.mcu();
  while (!prefetch_queue_.empty()) {
    const memory::FunctionId function = prefetch_queue_.front();
    prefetch_queue_.erase(prefetch_queue_.begin());
    if (mcu.is_resident(function) || inbound_.contains(function)) continue;
    // The modeled delta/codec cost must exist (the function is provisioned
    // and estimable); load_invoke below charges the REAL elapsed time.
    const mcu::LoadEstimate est = mcu.estimate_load(function);
    if (!est.known) continue;
    // Evictions only out of the dead tail: a prefetch that would displace
    // a live resident is a bad bet and is skipped outright.
    if (est.evictions > 0 &&
        !mcu.prefetch_feasible(function, now(),
                               config_.prefetch.min_victim_idle,
                               config_.prefetch.victim_idle_factor))
      continue;
    // Feasibility through the demand machinery: pin the executing AND
    // inbound demand functions around the probe + load, exactly like an
    // overlapped demand load — the speculation may evict idle residents
    // (the replacement policy's victim), but never a function real work is
    // running or about to hit.  The guard unwinds the pins with this
    // scope — a speculative load never holds a standing pin, so it cannot
    // delay real work either.
    const sim::SimTime start = now();
    std::erase_if(executing_, [start](const FabricCommitment& c) {
      return c.end <= start;
    });
    std::vector<memory::FunctionId> pins;
    for (const FabricCommitment& c : executing_)
      if (std::find(pins.begin(), pins.end(), c.function) == pins.end())
        pins.push_back(c.function);
    for (const auto& [inbound_fn, refs] : inbound_)
      if (mcu.is_resident(inbound_fn) &&
          std::find(pins.begin(), pins.end(), inbound_fn) == pins.end())
        pins.push_back(inbound_fn);
    PinGuard guard(mcu, std::move(pins));
    if (!mcu.load_feasible(function)) continue;
    sim::SimTime elapsed;
    try {
      mcu.load_invoke(function, start, &elapsed);
    } catch (const Error& error) {
      if (error.code() != ErrorCode::kCorruptData) throw;
      continue;  // speculation surfaces no failures; drop the guess
    }
    mcu.mark_speculative(function);
    prefetched_.emplace(function, elapsed);
    counters_.prefetch_issued.add();
    if (engine_track_ != nullptr)
      engine_track_->span("prefetch", "prefetch-load", start, start + elapsed,
                          /*request=*/-1, /*client=*/-1, function);
    engine_free_ = start + elapsed;
    break;  // one speculative load per idle window
  }
  if (!prefetch_queue_.empty()) schedule_prefetch_pump(device_available());
}

void CoprocessorServer::settle_prefetch(memory::FunctionId function,
                                        bool load_hit) {
  const auto it = prefetched_.find(function);
  if (it == prefetched_.end()) return;
  if (load_hit) {
    // The demand found the speculative resident in place: the engine time
    // the prefetch paid is latency this requester never saw.
    counters_.prefetch_hits.add();
    counters_.hidden_prefetch.add_time(it->second);
    card_.mcu().clear_speculative(function);
  } else {
    // Stolen before any demand arrived; the demand paid the full load.
    counters_.prefetch_wasted.add();
  }
  prefetched_.erase(it);
}

std::size_t CoprocessorServer::run() { return card_.scheduler().run(); }

std::size_t CoprocessorServer::run_until(sim::SimTime deadline) {
  return card_.scheduler().run_until(deadline);
}

ServerStats CoprocessorServer::stats() const {
  ServerStats stats;
  stats.submitted = counters_.submitted.value();
  stats.cancelled = counters_.cancelled.value();
  stats.batches = counters_.batches.value();
  stats.coalesced_loads = counters_.coalesced_loads.value();
  stats.total_amortized_reconfig = counters_.amortized_reconfig.time();
  stats.mean_batch_size =
      mean_batch_size(stats.batches, stats.coalesced_loads);
  const mcu::McuStats device = card_.mcu().stats();
  stats.frames_skipped_delta = device.frames_skipped_delta;
  stats.bytes_streamed = device.compressed_bytes_streamed;
  stats.codec_picks = device.codec_picks;
  stats.crc_rejects = device.crc_rejects;
  stats.refetches = device.refetches;
  stats.prefetch_issued = counters_.prefetch_issued.value();
  stats.prefetch_hits = counters_.prefetch_hits.value();
  stats.prefetch_wasted = counters_.prefetch_wasted.value();
  stats.hidden_reconfig_prefetch = counters_.hidden_prefetch.time();

  // Latency/throughput/wait statistics cover SUCCESSFUL requests only;
  // failed records are done (their hooks fired) but have no meaningful
  // device timeline.
  sim::SimTime first_submit, last_complete;
  bool any = false;
  std::vector<sim::SimTime> latencies;
  latencies.reserve(completed_.size());
  for (const ServerRequest& r : completed_) {
    if (r.failed) {
      ++stats.failed;
      continue;
    }
    if (!any) {
      any = true;
      first_submit = r.submit_time;
      last_complete = r.complete_time;
    }
    first_submit = std::min(first_submit, r.submit_time);
    last_complete = std::max(last_complete, r.complete_time);
    latencies.push_back(r.latency());
    stats.total_bus_wait += r.bus_wait;
    stats.total_device_wait += r.device_wait;
    stats.total_engine_wait += r.engine_wait;
    stats.total_fabric_wait += r.fabric_wait;
    stats.total_hidden_reconfig += r.hidden_reconfig;
    if (r.hidden_reconfig > sim::SimTime::zero()) ++stats.overlapped_loads;
  }
  stats.completed = completed_.size() - stats.failed;
  if (!any) return stats;
  stats.makespan = last_complete - first_submit;
  if (stats.makespan > sim::SimTime::zero())
    stats.throughput_rps =
        static_cast<double>(stats.completed) / stats.makespan.seconds();
  stats.latency = summarize_latencies(std::move(latencies));
  return stats;
}

}  // namespace aad::core
