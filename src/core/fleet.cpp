#include "core/fleet.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace aad::core {

const char* to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin:
      return "round-robin";
    case DispatchPolicy::kLeastQueued:
      return "least-queued";
    case DispatchPolicy::kResidencyAffinity:
      return "residency-affinity";
  }
  return "unknown";
}

namespace {

/// Lookahead for the parallel engine when FleetConfig::lookahead is unset:
/// the PCI command-setup cost (4 register writes — the same sequence every
/// submission pays before anything card-visible happens), computed on a
/// throwaway bus so no card's stats are disturbed.
sim::SimTime derived_lookahead(const pci::PciTiming& timing) {
  pci::PciBus probe(timing);
  sim::SimTime total;
  for (unsigned i = 0; i < 4; ++i) total += probe.register_write();
  if (total <= sim::SimTime::zero()) total = sim::SimTime::ns(1);
  return total;
}

}  // namespace

CoprocessorFleet::CoprocessorFleet(const FleetConfig& config)
    : policy_(config.policy),
      cost_routing_(config.cost_routing),
      faults_(config.faults),
      retry_(config.retry),
      counters_{registry_.counter("fleet.prefetch_routed"),
                registry_.counter("fleet.affinity_routed"),
                registry_.counter("fleet.delta_routed"),
                registry_.counter("fleet.affinity_fallback"),
                registry_.counter("fleet.prefetch_cross"),
                registry_.counter("fleet.deaths"),
                registry_.counter("fleet.redispatched"),
                registry_.counter("fleet.retries"),
                registry_.counter("fleet.timeouts"),
                registry_.counter("fleet.failed")} {
  AAD_REQUIRE(config.cards >= 1, "a fleet needs at least one card");
  // Ticket tracking costs a map entry and a wrapped completion per request;
  // the fault-free configuration keeps the original zero-overhead path.
  fault_mode_ =
      !faults_.empty() || retry_.timeout > sim::SimTime::zero();
  // The fleet's own predictor sees the UNSPLIT arrival stream at dispatch
  // time; the per-card predictors only see what routing sends them.  Both
  // are inert (and cost nothing) unless the server config enables prefetch.
  prefetch_enabled_ = config.server.prefetch.enabled;
  predictor_ = FunctionPredictor(config.server.prefetch.predictor);
  if (config.threads >= 2) {
    const sim::SimTime lookahead = config.lookahead > sim::SimTime::zero()
                                       ? config.lookahead
                                       : derived_lookahead(config.card.pci);
    parallel_ = std::make_unique<sim::ParallelScheduler>(
        config.cards, config.threads, lookahead);
  }
  shards_.reserve(config.cards);
  for (unsigned i = 0; i < config.cards; ++i) {
    Shard shard;
    // Parallel mode hands each card its own shard queue; card-local
    // pipeline events never leave it.  Classic mode shares scheduler_.
    sim::Scheduler& queue = parallel_ ? parallel_->shard(i) : scheduler_;
    shard.card = std::make_unique<AgileCoprocessor>(config.card, queue);
    shard.server =
        std::make_unique<CoprocessorServer>(*shard.card, config.server);
    shards_.push_back(std::move(shard));
  }
}

void CoprocessorFleet::download(algorithms::KernelId kernel,
                                std::optional<compress::CodecId> codec) {
  provision([&](Shard& shard) { shard.card->download(kernel, codec); });
}

void CoprocessorFleet::download_bitstream(
    memory::FunctionId id, const bitstream::Bitstream& bitstream,
    std::optional<compress::CodecId> codec) {
  provision(
      [&](Shard& shard) { shard.card->download_bitstream(id, bitstream, codec); });
}

void CoprocessorFleet::download_all(std::optional<compress::CodecId> codec) {
  provision([&](Shard& shard) { shard.card->download_all(codec); });
}

void CoprocessorFleet::attach_trace(telemetry::TraceSink& sink,
                                    const std::string& label) {
  const std::uint32_t pid = sink.add_process(label);
  fleet_track_ = sink.add_track(pid, "dispatch");
  for (unsigned i = 0; i < card_count(); ++i)
    shards_[i].server->attach_trace(sink,
                                    label + "/card " + std::to_string(i),
                                    static_cast<std::int64_t>(i));
}

std::uint64_t CoprocessorFleet::submit(unsigned client,
                                       algorithms::KernelId kernel, Bytes input,
                                       Completion done) {
  return submit_function_at(now(), client, algorithms::function_id(kernel),
                            std::move(input), std::move(done));
}

std::uint64_t CoprocessorFleet::submit_function(unsigned client,
                                                memory::FunctionId function,
                                                Bytes input, Completion done) {
  return submit_function_at(now(), client, function, std::move(input),
                            std::move(done));
}

std::uint64_t CoprocessorFleet::submit_function_at(sim::SimTime when,
                                                   unsigned client,
                                                   memory::FunctionId function,
                                                   Bytes input,
                                                   Completion done) {
  if (parallel_) {
    // A closed-loop completion hook resubmits at complete_time + think,
    // but it runs on the coordination queue, which may already sit past
    // that instant (the hook's delivery was clamped, or a sibling shard
    // ran ahead inside the lookahead window).  Clamp to the coordination
    // clock — this is exactly the round alignment FleetConfig::threads
    // documents for closed-loop traffic; open-loop submissions all land
    // before run() starts and are never moved.
    when = std::max(when, sim_now());
  } else {
    AAD_REQUIRE(when >= now(), "cannot submit a request in the past");
  }
  const std::uint64_t ticket = next_ticket_++;
  ++undispatched_;
  if (fault_mode_) {
    // Fault plans are armed on the FIRST submission, so the plan's times
    // are relative to when traffic starts, not to how long provisioning
    // took (which varies with the function set).
    arm_faults();
    TicketState state;
    state.client = client;
    state.function = function;
    state.input = std::move(input);
    state.done = std::move(done);
    state.submit_time = when;
    tickets_.emplace(ticket, std::move(state));
    coord().schedule_at(when, [this, ticket] { dispatch_ticket(ticket); });
    return ticket;
  }
  // The card is chosen when the request ARRIVES, not now: pre-scheduled
  // open-loop arrivals and closed-loop resubmissions alike get routed
  // against the queue depths and residency of their arrival instant.
  coord().schedule_at(
      when, [this, client, function, input = std::move(input),
             done = std::move(done)]() mutable {
        dispatch(client, function, std::move(input), std::move(done));
      });
  return ticket;
}

void CoprocessorFleet::dispatch(unsigned client, memory::FunctionId function,
                                Bytes input, Completion done) {
  --undispatched_;
  const unsigned index = route(function);
  Shard& shard = shards_[index];
  ++shard.dispatched;
  if (fleet_track_ != nullptr)
    fleet_track_->instant("dispatch", "dispatch", sim_now(), /*request=*/-1,
                          client, function, index);
  // Parallel mode: the card fires completions on a worker thread, so the
  // submitter's hook is funneled back to the coordination queue as a
  // message (with a COPY of the record — the reference aims into the
  // card's reallocating completion log).  The card event itself lands at
  // the dispatch instant, exactly as in classic mode: the coordinator only
  // runs when every shard has burned down all earlier work, so sim_now()
  // is never in the shard's past for an open-loop arrival.  Only a
  // round-aligned closed-loop resubmission can trail a shard's clock; the
  // clamp keeps its card time monotone.
  Completion hook = std::move(done);
  if (parallel_ && hook) {
    hook = [this, index, done = std::move(hook)](const ServerRequest& r) {
      parallel_->post_to_coord(index, shards_[index].card->now(),
                               [done, record = r] { done(record); });
    };
  }
  const sim::SimTime when =
      parallel_ ? std::max(sim_now(), shard.card->now()) : now();
  shard.server->submit_function_at(when, client, function, std::move(input),
                                   std::move(hook));
  if (prefetch_enabled_) maybe_cross_prefetch(client, function, index);
}

bool CoprocessorFleet::any_alive() const {
  for (const Shard& shard : shards_)
    if (shard.alive) return true;
  return false;
}

void CoprocessorFleet::arm_faults() {
  if (faults_armed_ || faults_.empty()) return;
  faults_armed_ = true;
  const sim::SimTime base = now();
  for (const sim::CardDeath& death : faults_.deaths) {
    if (death.card >= card_count()) continue;
    coord().schedule_at(base + death.at,
                        [this, card = death.card] { kill_card(card); });
    if (death.recover_at > death.at)
      coord().schedule_at(base + death.recover_at,
                          [this, card = death.card] { revive_card(card); });
  }
  for (const sim::RomCorruption& c : faults_.corruptions) {
    if (c.card >= card_count()) continue;
    coord().schedule_at(base + c.at, [this, c] {
      shards_[c.card].card->mcu().rom().corrupt_payload(c.function, c.seed,
                                                        c.bit_flips);
    });
  }
}

void CoprocessorFleet::dispatch_ticket(std::uint64_t ticket) {
  --undispatched_;
  const auto it = tickets_.find(ticket);
  AAD_CHECK(it != tickets_.end(), "dispatching an unknown ticket");
  TicketState& state = it->second;
  if (!any_alive()) {
    fail_ticket(ticket, FailReason::kCardDeath);
    return;
  }
  const unsigned card = route(state.function);
  Shard& shard = shards_[card];
  ++shard.dispatched;
  if (fleet_track_ != nullptr)
    fleet_track_->instant("dispatch", "dispatch", sim_now(),
                          static_cast<std::int64_t>(ticket), state.client,
                          state.function, card);
  ++state.attempts;
  state.on_card = true;
  state.card = card;
  // The payload moves onto the card; try_cancel/power_off hand it back if
  // the request has to be pulled.  The fleet ALWAYS wraps the completion
  // freshly per dispatch — a refugee's old wrapper is never reused (it
  // would fire the ticket bookkeeping twice).  Under the parallel engine
  // the wrapper additionally funnels through the coordination queue: the
  // card fires it on a worker thread, and on_card_complete touches
  // coordinator-owned ticket state (and may cancel the watchdog), so it
  // must run as a coordination event, with a COPY of the record.
  Completion completion;
  if (parallel_) {
    completion = [this, ticket, card](const ServerRequest& r) {
      parallel_->post_to_coord(
          card, shards_[card].card->now(),
          [this, ticket, record = r] { on_card_complete(ticket, record); });
    };
  } else {
    completion = [this, ticket](const ServerRequest& r) {
      on_card_complete(ticket, r);
    };
  }
  const sim::SimTime when =
      parallel_ ? std::max(sim_now(), shard.card->now()) : now();
  state.card_request = shard.server->submit_function_at(
      when, state.client, state.function, std::move(state.input),
      std::move(completion));
  state.input = Bytes();
  if (retry_.timeout > sim::SimTime::zero())
    state.timeout_event = coord().schedule_at(
        sim_now() + retry_.timeout, [this, ticket] { on_timeout(ticket); });
  if (prefetch_enabled_)
    maybe_cross_prefetch(state.client, state.function, card);
}

void CoprocessorFleet::on_card_complete(std::uint64_t ticket,
                                        const ServerRequest& request) {
  const auto it = tickets_.find(ticket);
  AAD_CHECK(it != tickets_.end(), "completion for an unknown ticket");
  const Completion done = std::move(it->second.done);
  if (it->second.timeout_event)
    coord().cancel(*it->second.timeout_event);
  tickets_.erase(it);
  // Card-level outcomes — success or failure (a CRC reject the MCU's
  // re-fetch could not repair) — are terminal: a corrupted ROM payload is
  // per-card persistent state, not a transient worth burning retries on.
  if (done) done(request);
}

void CoprocessorFleet::on_timeout(std::uint64_t ticket) {
  const auto it = tickets_.find(ticket);
  if (it == tickets_.end()) return;  // completed at this same instant
  TicketState& state = it->second;
  state.timeout_event.reset();
  auto cancelled = shards_[state.card].server->try_cancel(state.card_request);
  if (!cancelled) {
    // Committed: the engine/fabric windows are booked and the result will
    // arrive — cancelling now would waste real device work.  Let it ride;
    // only a card death can still unwind it.
    return;
  }
  counters_.timeouts.add();
  if (fleet_track_ != nullptr)
    fleet_track_->instant("fault", "timeout", sim_now(),
                          static_cast<std::int64_t>(ticket), state.client,
                          state.function, state.card);
  state.on_card = false;
  state.input = std::move(cancelled->input);
  if (state.attempts > retry_.max_retries) {
    fail_ticket(ticket, FailReason::kTimeout);
    return;
  }
  counters_.retries.add();
  ++undispatched_;
  const double scale =
      std::pow(retry_.backoff, static_cast<double>(state.attempts - 1));
  const sim::SimTime delay = sim::SimTime::ps(static_cast<std::int64_t>(
      static_cast<double>(retry_.backoff_base.picoseconds()) * scale));
  coord().schedule_at(sim_now() + delay,
                      [this, ticket] { dispatch_ticket(ticket); });
}

void CoprocessorFleet::fail_ticket(std::uint64_t ticket, FailReason reason) {
  const auto it = tickets_.find(ticket);
  AAD_CHECK(it != tickets_.end(), "failing an unknown ticket");
  TicketState state = std::move(it->second);
  tickets_.erase(it);
  if (state.timeout_event) coord().cancel(*state.timeout_event);
  counters_.failed.add();
  if (fleet_track_ != nullptr)
    fleet_track_->instant("fault", "request-failed", sim_now(),
                          static_cast<std::int64_t>(ticket), state.client,
                          state.function);
  ServerRequest failed;
  failed.id = ticket;
  failed.client = state.client;
  failed.function = state.function;
  failed.submit_time = state.submit_time;
  failed.complete_time = sim_now();
  failed.failed = true;
  failed.fail_reason = reason;
  if (state.done) state.done(failed);
}

void CoprocessorFleet::kill_card(unsigned index) {
  AAD_REQUIRE(index < card_count(), "card index out of range");
  Shard& shard = shards_[index];
  if (!shard.alive) return;
  shard.alive = false;
  ++shard.deaths;
  shard.death_time = sim_now();
  counters_.deaths.add();
  if (fleet_track_ != nullptr)
    fleet_track_->instant("fault", "card-death", sim_now(), /*request=*/-1,
                          /*client=*/-1, /*function=*/-1, index);
  std::vector<CoprocessorServer::CancelledRequest> refugees =
      shard.server->power_off();
  const bool survivors = any_alive();
  for (auto& refugee : refugees) {
    // Match the refugee back to its fleet ticket.
    std::uint64_t ticket = 0;
    bool matched = false;
    for (const auto& [tid, st] : tickets_) {
      if (st.on_card && st.card == index && st.card_request == refugee.id) {
        ticket = tid;
        matched = true;
        break;
      }
    }
    if (!matched) {
      // Submitted directly through the exposed per-card server: the fleet
      // has no ticket (and no retry budget) for it — surface the failure
      // through its own hook.
      counters_.failed.add();
      ServerRequest failed;
      failed.id = refugee.id;
      failed.client = refugee.client;
      failed.function = refugee.function;
      failed.submit_time = refugee.submit_time;
      failed.complete_time = sim_now();
      failed.failed = true;
      failed.fail_reason = FailReason::kCardDeath;
      if (refugee.done) refugee.done(failed);
      continue;
    }
    TicketState& state = tickets_.at(ticket);
    if (state.timeout_event) {
      coord().cancel(*state.timeout_event);
      state.timeout_event.reset();
    }
    state.on_card = false;
    state.input = std::move(refugee.input);
    // refugee.done is the fleet's own wrapper from dispatch_ticket —
    // dropped here; redispatch installs a fresh one.
    if (survivors) {
      counters_.redispatched.add();
      ++undispatched_;
      coord().schedule_at(sim_now(),
                          [this, ticket] { dispatch_ticket(ticket); });
    } else {
      fail_ticket(ticket, FailReason::kCardDeath);
    }
  }
}

void CoprocessorFleet::revive_card(unsigned index) {
  AAD_REQUIRE(index < card_count(), "card index out of range");
  // power_off already erased the fabric; the card rejoins dispatch cold.
  // The ROM — host-programmed flash — survived the outage.
  Shard& shard = shards_[index];
  if (!shard.alive && fleet_track_ != nullptr)
    fleet_track_->span("fault", "dead", shard.death_time, sim_now(),
                       /*request=*/-1, /*client=*/-1, /*function=*/-1, index);
  shard.alive = true;
}

unsigned CoprocessorFleet::least_queued() const {
  // Lowest ALIVE card index among the minima keeps ties deterministic;
  // callers never route to a dead card (dispatch_ticket fails the request
  // up front when nothing is alive, so `found` only misses then).
  unsigned best = 0;
  bool found = false;
  for (unsigned i = 0; i < card_count(); ++i) {
    if (!shards_[i].alive) continue;
    if (!found ||
        shards_[i].server->in_flight() < shards_[best].server->in_flight()) {
      best = i;
      found = true;
    }
  }
  return best;
}

unsigned CoprocessorFleet::choose(memory::FunctionId function,
                                  bool& prefetch_hit, bool& affinity_hit,
                                  bool& delta_hit) const {
  prefetch_hit = false;
  affinity_hit = false;
  delta_hit = false;
  switch (policy_) {
    case DispatchPolicy::kRoundRobin: {
      // First alive card at or after the cursor (all alive: the cursor
      // itself, exactly the fault-free behavior).
      for (unsigned k = 0; k < card_count(); ++k) {
        const unsigned i =
            static_cast<unsigned>((rr_cursor_ + k) % shards_.size());
        if (shards_[i].alive) return i;
      }
      return static_cast<unsigned>(rr_cursor_ % shards_.size());
    }
    case DispatchPolicy::kLeastQueued:
      return least_queued();
    case DispatchPolicy::kResidencyAffinity: {
      // Strongest signal first: a card whose device stage is holding an
      // OPEN batch for this function (a windowed BatchPolicy waiting for
      // more same-function arrivals) — a request routed there joins the
      // batch and shares its single decode + load, paying no
      // reconfiguration at all.
      bool found = false;
      unsigned best = 0;
      for (unsigned i = 0; i < card_count(); ++i) {
        if (!shards_[i].alive) continue;
        if (!shards_[i].server->open_batch_for(function)) continue;
        if (!found ||
            shards_[i].server->in_flight() < shards_[best].server->in_flight()) {
          best = i;
          found = true;
        }
      }
      if (found) {
        affinity_hit = true;
        return best;
      }
      // Second: a card that PREFETCHED this function and still holds the
      // speculation unconsumed.  Stronger than mere residency — the frames
      // were loaded FOR this demand, and consuming the speculation here
      // both scores the guaranteed hit and frees the speculative marker
      // (an unconsumed marker leaves the frames first in line for
      // stealing).  Inert unless prefetch is enabled.
      if (prefetch_enabled_) {
        for (unsigned i = 0; i < card_count(); ++i) {
          if (!shards_[i].alive) continue;
          if (!shards_[i].server->prefetch_resident(function)) continue;
          if (!found ||
              shards_[i].server->in_flight() <
                  shards_[best].server->in_flight()) {
            best = i;
            found = true;
          }
        }
        if (found) {
          prefetch_hit = true;
          return best;
        }
      }
      // Otherwise, among the cards already holding the configuration — or
      // with an in-flight request about to load it (function_inbound) —
      // take the least loaded (lowest index on ties).  A queued request
      // ahead of us could still evict the function, but
      // residency-at-arrival is the cheap, driver-visible signal —
      // mispredictions just cost one reconfiguration.
      for (unsigned i = 0; i < card_count(); ++i) {
        if (!shards_[i].alive) continue;
        if (!shards_[i].card->mcu().is_resident(function) &&
            !shards_[i].server->function_inbound(function))
          continue;
        if (!found ||
            shards_[i].server->in_flight() < shards_[best].server->in_flight()) {
          best = i;
          found = true;
        }
      }
      if (found) {
        affinity_hit = true;
        return best;
      }
      // Third tier: no card holds the function, but under delta
      // reconfiguration a cold load is not uniformly expensive — a card
      // whose fabric still carries frames matching the function's image
      // (an earlier variant, an evicted copy) reloads only the dirty
      // frames.  Route to the cheapest modeled load among cards matching
      // at least one frame (ties: least in flight, then lowest index).
      // Inert when delta tracking is off: no card ever matches a frame.
      if (cost_routing_) {
        sim::SimTime best_cost;
        for (unsigned i = 0; i < card_count(); ++i) {
          if (!shards_[i].alive) continue;
          const mcu::Mcu& mcu = shards_[i].card->mcu();
          if (!mcu.config().engine.delta_reconfig) continue;
          const mcu::LoadEstimate est = mcu.estimate_load(function);
          if (!est.known || est.frames_matched == 0) continue;
          if (!found || est.time < best_cost ||
              (est.time == best_cost &&
               shards_[i].server->in_flight() <
                   shards_[best].server->in_flight())) {
            best = i;
            best_cost = est.time;
            found = true;
          }
        }
        if (found) {
          delta_hit = true;
          return best;
        }
      }
      return least_queued();
    }
  }
  return 0;
}

unsigned CoprocessorFleet::preview_card(memory::FunctionId function) const {
  bool prefetch_hit = false, affinity_hit = false, delta_hit = false;
  return choose(function, prefetch_hit, affinity_hit, delta_hit);
}

unsigned CoprocessorFleet::route(memory::FunctionId function) {
  bool prefetch_hit = false, affinity_hit = false, delta_hit = false;
  const unsigned card = choose(function, prefetch_hit, affinity_hit, delta_hit);
  if (policy_ == DispatchPolicy::kRoundRobin) {
    ++rr_cursor_;
  } else if (policy_ == DispatchPolicy::kResidencyAffinity) {
    if (prefetch_hit)
      counters_.prefetch_routed.add();
    else if (affinity_hit)
      counters_.affinity_routed.add();
    else if (delta_hit)
      counters_.delta_routed.add();
    else
      counters_.affinity_fallback.add();
  }
  return card;
}

bool CoprocessorFleet::prefetch_placeable(unsigned card,
                                          memory::FunctionId function) const {
  const mcu::Mcu& mcu = shards_[card].card->mcu();
  const mcu::LoadEstimate est = mcu.estimate_load(function);
  return est.known && !est.resident && est.evictions == 0;
}

void CoprocessorFleet::maybe_cross_prefetch(unsigned client,
                                            memory::FunctionId function,
                                            unsigned chosen) {
  // Train on the routed stream.  This runs on the coordination queue at
  // the dispatch instant — which pre-exists in the queue for open-loop
  // traffic and bounds every shard's progress — so observations, and the
  // prefetches they trigger, land identically under any thread count.
  predictor_.observe(client, function);
  if (card_count() < 2) return;  // nothing to hand the speculation to
  const auto prediction = predictor_.predict(client);
  if (!prediction) return;
  const memory::FunctionId next = prediction->function;
  if (next == function) return;
  for (const Shard& shard : shards_) {
    if (!shard.alive) continue;
    if (shard.card->mcu().is_resident(next) ||
        shard.server->function_inbound(next) ||
        shard.server->prefetch_resident(next))
      return;  // already warm, or warming, somewhere
  }
  // Placement ladder.  The prefetched routing tier sends the eventual
  // demand to WHICHEVER card warmed the function, so placement is free to
  // chase the cheapest home: the demand's own card when it has free frames
  // (locality — the client's next request heads there anyway), else a
  // sibling with free frames (the cross-card path: a cold card warms what
  // the hot card cannot hold), else the demand's card again and its pump
  // may evict idle residents.
  unsigned target = chosen;
  if (!shards_[chosen].alive || !prefetch_placeable(chosen, next)) {
    bool found = false;
    unsigned best = 0;
    for (unsigned i = 0; i < card_count(); ++i) {
      if (i == chosen || !shards_[i].alive) continue;
      if (!prefetch_placeable(i, next)) continue;
      if (!found ||
          shards_[i].server->in_flight() < shards_[best].server->in_flight()) {
        best = i;
        found = true;
      }
    }
    if (found) {
      counters_.prefetch_cross.add();
      target = best;
    } else if (!shards_[chosen].alive) {
      return;
    }
  }
  Shard& home = shards_[target];
  const sim::SimTime when =
      parallel_ ? std::max(sim_now(), home.card->now()) : now();
  home.server->queue_prefetch_at(when, next);
}

std::size_t CoprocessorFleet::run() {
  return parallel_ ? parallel_->run() : scheduler_.run();
}

std::size_t CoprocessorFleet::run_until(sim::SimTime deadline) {
  return parallel_ ? parallel_->run_until(deadline) : scheduler_.run_until(deadline);
}

AgileCoprocessor& CoprocessorFleet::card(unsigned index) {
  AAD_REQUIRE(index < card_count(), "card index out of range");
  return *shards_[index].card;
}

CoprocessorServer& CoprocessorFleet::server(unsigned index) {
  AAD_REQUIRE(index < card_count(), "card index out of range");
  return *shards_[index].server;
}

const CoprocessorServer& CoprocessorFleet::server(unsigned index) const {
  AAD_REQUIRE(index < card_count(), "card index out of range");
  return *shards_[index].server;
}

std::uint64_t CoprocessorFleet::in_flight() const {
  // Sum live counts rather than subtracting completions from next_ticket_:
  // requests submitted directly through a card's server (the servers are
  // exposed) would otherwise underflow the difference.
  std::uint64_t in_flight = undispatched_;
  for (const Shard& shard : shards_) in_flight += shard.server->in_flight();
  return in_flight;
}

FleetStats CoprocessorFleet::stats() const {
  FleetStats stats;
  stats.prefetch_routed = counters_.prefetch_routed.value();
  stats.affinity_routed = counters_.affinity_routed.value();
  stats.delta_routed = counters_.delta_routed.value();
  stats.affinity_fallback = counters_.affinity_fallback.value();
  stats.prefetch_cross = counters_.prefetch_cross.value();
  stats.deaths = counters_.deaths.value();
  stats.redispatched = counters_.redispatched.value();
  stats.retries = counters_.retries.value();
  stats.timeouts = counters_.timeouts.value();
  // Card-level failures are added per shard below.
  stats.failed = counters_.failed.value();
  stats.cards.reserve(shards_.size());

  bool any = false;
  std::uint64_t server_submitted = 0, dispatched = 0;
  sim::SimTime first_submit, last_complete;
  std::vector<sim::SimTime> latencies;
  for (unsigned i = 0; i < card_count(); ++i) {
    const Shard& shard = shards_[i];
    FleetCardStats card;
    card.card = i;
    card.server = shard.server->stats();
    card.dispatched = shard.dispatched;
    card.queue_depth = shard.server->in_flight();
    card.resident = shard.card->mcu().resident_count();
    card.alive = shard.alive;
    card.deaths = shard.deaths;
    for (const ServerRequest& r : shard.server->completed()) {
      if (r.failed) continue;  // no device timeline to attribute
      r.load.hit ? ++card.config_hits : ++card.config_misses;
      if (!any || r.submit_time < first_submit) first_submit = r.submit_time;
      if (!any || r.complete_time > last_complete)
        last_complete = r.complete_time;
      any = true;
      latencies.push_back(r.latency());
    }
    if (card.server.completed > 0)
      card.hit_rate = static_cast<double>(card.config_hits) /
                      static_cast<double>(card.server.completed);
    server_submitted += card.server.submitted;
    dispatched += card.dispatched;
    stats.completed += card.server.completed;
    stats.config_hits += card.config_hits;
    stats.config_misses += card.config_misses;
    stats.total_bus_wait += card.server.total_bus_wait;
    stats.total_device_wait += card.server.total_device_wait;
    stats.total_engine_wait += card.server.total_engine_wait;
    stats.total_fabric_wait += card.server.total_fabric_wait;
    stats.total_hidden_reconfig += card.server.total_hidden_reconfig;
    stats.overlapped_loads += card.server.overlapped_loads;
    stats.batches += card.server.batches;
    stats.coalesced_loads += card.server.coalesced_loads;
    stats.total_amortized_reconfig += card.server.total_amortized_reconfig;
    stats.frames_skipped_delta += card.server.frames_skipped_delta;
    stats.bytes_streamed += card.server.bytes_streamed;
    stats.failed += card.server.failed;
    stats.crc_rejects += card.server.crc_rejects;
    stats.refetches += card.server.refetches;
    stats.prefetch_issued += card.server.prefetch_issued;
    stats.prefetch_hits += card.server.prefetch_hits;
    stats.prefetch_wasted += card.server.prefetch_wasted;
    stats.hidden_reconfig_prefetch += card.server.hidden_reconfig_prefetch;
    for (const auto& [codec, picks] : card.server.codec_picks)
      stats.codec_picks[codec] += picks;
    stats.cards.push_back(std::move(card));
  }
  stats.mean_batch_size = mean_batch_size(stats.batches, stats.coalesced_loads);

  // Fleet tickets plus anything submitted directly through an exposed
  // per-card server (its submitted count minus what we dispatched to it),
  // so completed can never outrun submitted under mixed usage.
  stats.submitted = next_ticket_ + (server_submitted - dispatched);
  if (stats.completed > 0)
    stats.hit_rate = static_cast<double>(stats.config_hits) /
                     static_cast<double>(stats.completed);
  if (any) {
    stats.makespan = last_complete - first_submit;
    if (stats.makespan > sim::SimTime::zero())
      stats.throughput_rps =
          static_cast<double>(stats.completed) / stats.makespan.seconds();
  }
  stats.latency = summarize_latencies(std::move(latencies));
  return stats;
}

}  // namespace aad::core
