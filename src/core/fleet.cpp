#include "core/fleet.h"

#include <algorithm>
#include <utility>

namespace aad::core {

const char* to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin:
      return "round-robin";
    case DispatchPolicy::kLeastQueued:
      return "least-queued";
    case DispatchPolicy::kResidencyAffinity:
      return "residency-affinity";
  }
  return "unknown";
}

CoprocessorFleet::CoprocessorFleet(const FleetConfig& config)
    : policy_(config.policy), cost_routing_(config.cost_routing) {
  AAD_REQUIRE(config.cards >= 1, "a fleet needs at least one card");
  shards_.reserve(config.cards);
  for (unsigned i = 0; i < config.cards; ++i) {
    Shard shard;
    shard.card = std::make_unique<AgileCoprocessor>(config.card, scheduler_);
    shard.server =
        std::make_unique<CoprocessorServer>(*shard.card, config.server);
    shards_.push_back(std::move(shard));
  }
}

void CoprocessorFleet::download(algorithms::KernelId kernel,
                                std::optional<compress::CodecId> codec) {
  for (Shard& shard : shards_) shard.card->download(kernel, codec);
}

void CoprocessorFleet::download_bitstream(
    memory::FunctionId id, const bitstream::Bitstream& bitstream,
    std::optional<compress::CodecId> codec) {
  for (Shard& shard : shards_) shard.card->download_bitstream(id, bitstream, codec);
}

void CoprocessorFleet::download_all(std::optional<compress::CodecId> codec) {
  for (Shard& shard : shards_) shard.card->download_all(codec);
}

std::uint64_t CoprocessorFleet::submit(unsigned client,
                                       algorithms::KernelId kernel, Bytes input,
                                       Completion done) {
  return submit_function_at(now(), client, algorithms::function_id(kernel),
                            std::move(input), std::move(done));
}

std::uint64_t CoprocessorFleet::submit_function(unsigned client,
                                                memory::FunctionId function,
                                                Bytes input, Completion done) {
  return submit_function_at(now(), client, function, std::move(input),
                            std::move(done));
}

std::uint64_t CoprocessorFleet::submit_function_at(sim::SimTime when,
                                                   unsigned client,
                                                   memory::FunctionId function,
                                                   Bytes input,
                                                   Completion done) {
  AAD_REQUIRE(when >= now(), "cannot submit a request in the past");
  const std::uint64_t ticket = next_ticket_++;
  ++undispatched_;
  // The card is chosen when the request ARRIVES, not now: pre-scheduled
  // open-loop arrivals and closed-loop resubmissions alike get routed
  // against the queue depths and residency of their arrival instant.
  scheduler_.schedule_at(
      when, [this, client, function, input = std::move(input),
             done = std::move(done)]() mutable {
        dispatch(client, function, std::move(input), std::move(done));
      });
  return ticket;
}

void CoprocessorFleet::dispatch(unsigned client, memory::FunctionId function,
                                Bytes input, Completion done) {
  --undispatched_;
  Shard& shard = shards_[route(function)];
  ++shard.dispatched;
  shard.server->submit_function_at(now(), client, function, std::move(input),
                                   std::move(done));
}

unsigned CoprocessorFleet::least_queued() const {
  // Lowest card index among the minima keeps ties deterministic.
  unsigned best = 0;
  for (unsigned i = 1; i < card_count(); ++i)
    if (shards_[i].server->in_flight() < shards_[best].server->in_flight())
      best = i;
  return best;
}

unsigned CoprocessorFleet::choose(memory::FunctionId function,
                                  bool& affinity_hit, bool& delta_hit) const {
  affinity_hit = false;
  delta_hit = false;
  switch (policy_) {
    case DispatchPolicy::kRoundRobin:
      return static_cast<unsigned>(rr_cursor_ % shards_.size());
    case DispatchPolicy::kLeastQueued:
      return least_queued();
    case DispatchPolicy::kResidencyAffinity: {
      // Strongest signal first: a card whose device stage is holding an
      // OPEN batch for this function (a windowed BatchPolicy waiting for
      // more same-function arrivals) — a request routed there joins the
      // batch and shares its single decode + load, paying no
      // reconfiguration at all.
      bool found = false;
      unsigned best = 0;
      for (unsigned i = 0; i < card_count(); ++i) {
        if (!shards_[i].server->open_batch_for(function)) continue;
        if (!found ||
            shards_[i].server->in_flight() < shards_[best].server->in_flight()) {
          best = i;
          found = true;
        }
      }
      if (found) {
        affinity_hit = true;
        return best;
      }
      // Otherwise, among the cards already holding the configuration — or
      // with an in-flight request about to load it (function_inbound) —
      // take the least loaded (lowest index on ties).  A queued request
      // ahead of us could still evict the function, but
      // residency-at-arrival is the cheap, driver-visible signal —
      // mispredictions just cost one reconfiguration.
      for (unsigned i = 0; i < card_count(); ++i) {
        if (!shards_[i].card->mcu().is_resident(function) &&
            !shards_[i].server->function_inbound(function))
          continue;
        if (!found ||
            shards_[i].server->in_flight() < shards_[best].server->in_flight()) {
          best = i;
          found = true;
        }
      }
      if (found) {
        affinity_hit = true;
        return best;
      }
      // Third tier: no card holds the function, but under delta
      // reconfiguration a cold load is not uniformly expensive — a card
      // whose fabric still carries frames matching the function's image
      // (an earlier variant, an evicted copy) reloads only the dirty
      // frames.  Route to the cheapest modeled load among cards matching
      // at least one frame (ties: least in flight, then lowest index).
      // Inert when delta tracking is off: no card ever matches a frame.
      if (cost_routing_) {
        sim::SimTime best_cost;
        for (unsigned i = 0; i < card_count(); ++i) {
          const mcu::Mcu& mcu = shards_[i].card->mcu();
          if (!mcu.config().engine.delta_reconfig) continue;
          const mcu::LoadEstimate est = mcu.estimate_load(function);
          if (!est.known || est.frames_matched == 0) continue;
          if (!found || est.time < best_cost ||
              (est.time == best_cost &&
               shards_[i].server->in_flight() <
                   shards_[best].server->in_flight())) {
            best = i;
            best_cost = est.time;
            found = true;
          }
        }
        if (found) {
          delta_hit = true;
          return best;
        }
      }
      return least_queued();
    }
  }
  return 0;
}

unsigned CoprocessorFleet::preview_card(memory::FunctionId function) const {
  bool affinity_hit = false, delta_hit = false;
  return choose(function, affinity_hit, delta_hit);
}

unsigned CoprocessorFleet::route(memory::FunctionId function) {
  bool affinity_hit = false, delta_hit = false;
  const unsigned card = choose(function, affinity_hit, delta_hit);
  if (policy_ == DispatchPolicy::kRoundRobin) {
    ++rr_cursor_;
  } else if (policy_ == DispatchPolicy::kResidencyAffinity) {
    if (affinity_hit)
      ++affinity_routed_;
    else if (delta_hit)
      ++delta_routed_;
    else
      ++affinity_fallback_;
  }
  return card;
}

std::size_t CoprocessorFleet::run() { return scheduler_.run(); }

std::size_t CoprocessorFleet::run_until(sim::SimTime deadline) {
  return scheduler_.run_until(deadline);
}

AgileCoprocessor& CoprocessorFleet::card(unsigned index) {
  AAD_REQUIRE(index < card_count(), "card index out of range");
  return *shards_[index].card;
}

CoprocessorServer& CoprocessorFleet::server(unsigned index) {
  AAD_REQUIRE(index < card_count(), "card index out of range");
  return *shards_[index].server;
}

const CoprocessorServer& CoprocessorFleet::server(unsigned index) const {
  AAD_REQUIRE(index < card_count(), "card index out of range");
  return *shards_[index].server;
}

std::uint64_t CoprocessorFleet::in_flight() const {
  // Sum live counts rather than subtracting completions from next_ticket_:
  // requests submitted directly through a card's server (the servers are
  // exposed) would otherwise underflow the difference.
  std::uint64_t in_flight = undispatched_;
  for (const Shard& shard : shards_) in_flight += shard.server->in_flight();
  return in_flight;
}

FleetStats CoprocessorFleet::stats() const {
  FleetStats stats;
  stats.affinity_routed = affinity_routed_;
  stats.delta_routed = delta_routed_;
  stats.affinity_fallback = affinity_fallback_;
  stats.cards.reserve(shards_.size());

  bool any = false;
  std::uint64_t server_submitted = 0, dispatched = 0;
  sim::SimTime first_submit, last_complete;
  std::vector<sim::SimTime> latencies;
  for (unsigned i = 0; i < card_count(); ++i) {
    const Shard& shard = shards_[i];
    FleetCardStats card;
    card.card = i;
    card.server = shard.server->stats();
    card.dispatched = shard.dispatched;
    card.queue_depth = shard.server->in_flight();
    card.resident = shard.card->mcu().resident_count();
    for (const ServerRequest& r : shard.server->completed()) {
      r.load.hit ? ++card.config_hits : ++card.config_misses;
      if (!any || r.submit_time < first_submit) first_submit = r.submit_time;
      if (!any || r.complete_time > last_complete)
        last_complete = r.complete_time;
      any = true;
      latencies.push_back(r.latency());
    }
    if (card.server.completed > 0)
      card.hit_rate = static_cast<double>(card.config_hits) /
                      static_cast<double>(card.server.completed);
    server_submitted += card.server.submitted;
    dispatched += card.dispatched;
    stats.completed += card.server.completed;
    stats.config_hits += card.config_hits;
    stats.config_misses += card.config_misses;
    stats.total_bus_wait += card.server.total_bus_wait;
    stats.total_device_wait += card.server.total_device_wait;
    stats.total_engine_wait += card.server.total_engine_wait;
    stats.total_fabric_wait += card.server.total_fabric_wait;
    stats.total_hidden_reconfig += card.server.total_hidden_reconfig;
    stats.overlapped_loads += card.server.overlapped_loads;
    stats.batches += card.server.batches;
    stats.coalesced_loads += card.server.coalesced_loads;
    stats.total_amortized_reconfig += card.server.total_amortized_reconfig;
    stats.frames_skipped_delta += card.server.frames_skipped_delta;
    stats.bytes_streamed += card.server.bytes_streamed;
    for (const auto& [codec, picks] : card.server.codec_picks)
      stats.codec_picks[codec] += picks;
    stats.cards.push_back(std::move(card));
  }
  stats.mean_batch_size = mean_batch_size(stats.batches, stats.coalesced_loads);

  // Fleet tickets plus anything submitted directly through an exposed
  // per-card server (its submitted count minus what we dispatched to it),
  // so completed can never outrun submitted under mixed usage.
  stats.submitted = next_ticket_ + (server_submitted - dispatched);
  if (stats.completed > 0)
    stats.hit_rate = static_cast<double>(stats.config_hits) /
                     static_cast<double>(stats.completed);
  if (any) {
    stats.makespan = last_complete - first_submit;
    if (stats.makespan > sim::SimTime::zero())
      stats.throughput_rps =
          static_cast<double>(stats.completed) / stats.makespan.seconds();
  }
  stats.latency = summarize_latencies(std::move(latencies));
  return stats;
}

}  // namespace aad::core
