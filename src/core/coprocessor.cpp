#include "core/coprocessor.h"

namespace aad::core {

AgileCoprocessor::AgileCoprocessor(const CoprocessorConfig& config,
                                   std::unique_ptr<sim::Scheduler> owned,
                                   sim::Scheduler* shared)
    : owned_scheduler_(std::move(owned)),
      scheduler_(shared != nullptr ? *shared : *owned_scheduler_),
      fabric_(config.fabric),
      bus_(config.pci),
      mcu_(fabric_, scheduler_, trace_, registry_, runtime_, config.mcu) {
  trace_.set_enabled(config.trace_enabled);
  algorithms::register_runtimes(runtime_);
}

AgileCoprocessor::AgileCoprocessor(const CoprocessorConfig& config)
    : AgileCoprocessor(config, std::make_unique<sim::Scheduler>(), nullptr) {}

AgileCoprocessor::AgileCoprocessor(const CoprocessorConfig& config,
                                   sim::Scheduler& scheduler)
    : AgileCoprocessor(config, nullptr, &scheduler) {}

sim::SimTime AgileCoprocessor::pci_command_overhead(unsigned registers) {
  sim::SimTime total = sim::SimTime::zero();
  for (unsigned i = 0; i < registers; ++i) total += bus_.register_write();
  total += bus_.register_read();  // status poll
  return total;
}

memory::RomRecord AgileCoprocessor::download(
    algorithms::KernelId kernel, std::optional<compress::CodecId> codec) {
  const auto& spec = algorithms::spec(kernel);
  const bitstream::Bitstream bs = spec.make_bitstream(fabric_.geometry());
  return download_bitstream(algorithms::function_id(kernel), bs, codec);
}

memory::RomRecord AgileCoprocessor::download_bitstream(
    memory::FunctionId id, const bitstream::Bitstream& bitstream,
    std::optional<compress::CodecId> codec) {
  // The host compresses and ships the stream; the MCU stores it.  The MCU
  // call performs compression + ROM programming (and advances time for the
  // ROM); we then charge the PCI for the compressed payload it carried.
  const memory::RomRecord record = mcu_.store_function(id, bitstream, codec);
  const sim::SimTime begin = scheduler_.now();
  sim::SimTime pci = pci_command_overhead(4);
  pci += bus_.dma_to_device(record.compressed_size);
  scheduler_.advance(pci);
  trace_.record(sim::Stage::kHostPci, record.name + "/download", begin,
                scheduler_.now());
  return record;
}

void AgileCoprocessor::download_all(std::optional<compress::CodecId> codec) {
  for (const auto& spec : algorithms::catalog()) download(spec.id, codec);
}

InvokeOutcome AgileCoprocessor::invoke_function(memory::FunctionId id,
                                                ByteSpan input) {
  InvokeOutcome outcome;
  const sim::SimTime begin = scheduler_.now();

  // Command setup + input DMA into local RAM.
  {
    const sim::SimTime t0 = scheduler_.now();
    sim::SimTime pci = pci_command_overhead(4);
    pci += bus_.dma_to_device(input.size());
    scheduler_.advance(pci);
    trace_.record(sim::Stage::kHostPci, "invoke/in", t0, scheduler_.now());
    outcome.pci_time += pci;
  }

  outcome.device = mcu_.invoke(id, input);

  // Output DMA + completion status.
  {
    const sim::SimTime t0 = scheduler_.now();
    sim::SimTime pci = bus_.dma_from_device(outcome.device.output.size());
    pci += bus_.register_read();
    scheduler_.advance(pci);
    trace_.record(sim::Stage::kHostPci, "invoke/out", t0, scheduler_.now());
    outcome.pci_time += pci;
  }

  outcome.output = outcome.device.output;
  outcome.latency = scheduler_.now() - begin;
  return outcome;
}

InvokeOutcome AgileCoprocessor::invoke(algorithms::KernelId kernel,
                                       ByteSpan input) {
  return invoke_function(algorithms::function_id(kernel), input);
}

HostOutcome AgileCoprocessor::run_on_host(algorithms::KernelId kernel,
                                          ByteSpan input) {
  const auto& spec = algorithms::spec(kernel);
  HostOutcome outcome;
  outcome.output = spec.software(input);
  outcome.latency = spec.host_time(input.size());
  scheduler_.advance(outcome.latency);
  return outcome;
}

mcu::LoadResult AgileCoprocessor::preload(algorithms::KernelId kernel) {
  const sim::SimTime pci = pci_command_overhead(2);
  scheduler_.advance(pci);
  return mcu_.ensure_loaded(algorithms::function_id(kernel));
}

void AgileCoprocessor::evict(algorithms::KernelId kernel) {
  const sim::SimTime pci = pci_command_overhead(2);
  scheduler_.advance(pci);
  mcu_.evict(algorithms::function_id(kernel));
}

CoprocessorStats AgileCoprocessor::stats() const {
  return CoprocessorStats{mcu_.stats(), bus_.stats(), scheduler_.now()};
}

}  // namespace aad::core
