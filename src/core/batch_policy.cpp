#include "core/batch_policy.h"

#include "common/error.h"

namespace aad::core {
namespace {

class NoBatchPolicy final : public BatchPolicy {
 public:
  BatchMode kind() const noexcept override { return BatchMode::kNone; }
  BatchDecision decide(const BatchView&) override {
    return {.commit = true, .limit = 1, .reconsider_at = {}};
  }
};

class GreedyBatchPolicy final : public BatchPolicy {
 public:
  explicit GreedyBatchPolicy(std::size_t max_batch) : max_batch_(max_batch) {}
  BatchMode kind() const noexcept override { return BatchMode::kGreedy; }
  BatchDecision decide(const BatchView&) override {
    return {.commit = true, .limit = max_batch_, .reconsider_at = {}};
  }

 private:
  std::size_t max_batch_;
};

class WindowedBatchPolicy final : public BatchPolicy {
 public:
  WindowedBatchPolicy(sim::SimTime window, std::size_t max_batch,
                      bool cost_aware, sim::SimTime cheap_load)
      : window_(window),
        max_batch_(max_batch),
        cost_aware_(cost_aware),
        cheap_load_(cheap_load) {}
  BatchMode kind() const noexcept override { return BatchMode::kWindowed; }
  BatchDecision decide(const BatchView& view) override {
    // Holding trades head-of-line latency for amortizing one load across
    // more members — worthless when the load-cost model says the load is
    // already cheap (resident, or a delta upgrade of a few dirty frames).
    if (cost_aware_ && view.est_load_cost <= cheap_load_)
      return {.commit = true, .limit = max_batch_, .reconsider_at = {}};
    // Commit early once the batch cannot grow (cap reached); otherwise
    // hold until the horizon expires.  A lone request whose window expires
    // commits as a batch of one — windowed degenerates to no-batch when
    // nothing coalesces, it never starves a request forever.
    if (view.queued >= max_batch_ ||
        view.now - view.hold_since >= window_)
      return {.commit = true, .limit = max_batch_, .reconsider_at = {}};
    return {.commit = false,
            .limit = 0,
            .reconsider_at = view.hold_since + window_};
  }

 private:
  sim::SimTime window_;
  std::size_t max_batch_;
  bool cost_aware_;
  sim::SimTime cheap_load_;
};

}  // namespace

const char* to_string(BatchMode mode) {
  switch (mode) {
    case BatchMode::kNone:
      return "none";
    case BatchMode::kGreedy:
      return "greedy";
    case BatchMode::kWindowed:
      return "windowed";
  }
  return "unknown";
}

std::unique_ptr<BatchPolicy> make_batch_policy(const BatchConfig& config) {
  AAD_REQUIRE(config.max_batch >= 1, "max_batch must be at least 1");
  switch (config.mode) {
    case BatchMode::kNone:
      return std::make_unique<NoBatchPolicy>();
    case BatchMode::kGreedy:
      return std::make_unique<GreedyBatchPolicy>(config.max_batch);
    case BatchMode::kWindowed:
      AAD_REQUIRE(config.window >= sim::SimTime::zero(),
                  "batch window cannot be negative");
      return std::make_unique<WindowedBatchPolicy>(
          config.window, config.max_batch, config.cost_aware,
          config.cheap_load);
  }
  AAD_FAIL(ErrorCode::kInvalidArgument, "unknown batch mode");
}

}  // namespace aad::core
