// BatchPolicy: the pluggable policy that decides when a CoprocessorServer
// coalesces queued same-function requests into one batch.
//
// The paper's dominant cost is reconfiguration, and the device stage
// already hides it behind execution (overlap_reconfig) and reorders around
// it (DeviceScheduler).  Batching attacks it from the other side: when the
// device scheduler picks a function for the config engine, every queued
// request for that SAME function can ride the one firmware decode and the
// one on-demand load, then run back-to-back fabric windows — one
// reconfiguration amortized across the whole batch instead of each request
// paying its own decode/load decision (and, under thrash, its own
// reconfiguration after an intervening eviction).
//
// The policy decides two things at pick time: whether to commit now or
// hold the device idle a little longer so more same-function arrivals can
// coalesce, and how many queued requests one batch may drain:
//
//   * none     — every request is its own batch of one; bit-exact with the
//                unbatched server (the regression tests pin this);
//   * greedy   — commit immediately, draining everything queued for the
//                picked function (up to max_batch);
//   * windowed — hold commitment up to `window` after the function first
//                became the pick, betting the added head-of-line latency
//                against a bigger batch; commits early when max_batch
//                same-function requests are already waiting.
//
// Policies are picked per server via ServerConfig::batch and compose with
// the device policy (which still chooses WHICH function is served next)
// and the fleet dispatch policies (residency-affinity prefers a card
// holding an open batch for the function — CoprocessorServer::
// open_batch_for — so bursts converge on the card already coalescing
// them).
#pragma once

#include <cstdint>
#include <memory>

#include "memory/rom.h"
#include "sim/time.h"

namespace aad::core {

/// How a CoprocessorServer coalesces same-function requests.
enum class BatchMode : std::uint8_t {
  kNone,      ///< batches of one — bit-exact with the unbatched server
  kGreedy,    ///< drain every queued same-function request immediately
  kWindowed,  ///< hold up to a horizon so more same-function arrivals join
};

const char* to_string(BatchMode mode);

struct BatchConfig {
  BatchMode mode = BatchMode::kNone;
  /// kWindowed: how long the device may sit on an uncommitted pick waiting
  /// for more same-function arrivals, measured from the instant the
  /// function first became the scheduler's pick.
  sim::SimTime window = sim::SimTime::us(50);
  /// Largest number of requests one batch may drain (>= 1).  Also the
  /// windowed policy's early-commit threshold.
  std::size_t max_batch = 16;
  /// kWindowed: consult the load-cost model — when the pick's estimated
  /// load is at most `cheap_load` (a hit, or a delta upgrade touching only
  /// a few frames), holding buys nothing worth amortizing, so commit
  /// immediately instead of idling the device for the horizon.  Off by
  /// default: the hold decision stays bit-exact with the cost-blind policy.
  bool cost_aware = false;
  sim::SimTime cheap_load = sim::SimTime::us(40);
};

/// What the policy sees when the device scheduler has picked a function
/// and the config engine is free.
struct BatchView {
  memory::FunctionId function = 0;
  std::size_t queued = 0;     ///< same-function requests ready right now
  sim::SimTime hold_since;    ///< when `function` first became the pick
  sim::SimTime now;
  /// The card's modeled cost of loading `function` right now
  /// (Mcu::estimated_load_cost: zero when resident, dirty-frames-only
  /// under delta reconfiguration).  Only cost_aware policies read it.
  sim::SimTime est_load_cost;
};

/// The policy's verdict: commit a batch of up to `limit` requests now, or
/// keep the device idle and decide again no later than `reconsider_at`.
struct BatchDecision {
  bool commit = true;
  std::size_t limit = 1;        ///< max requests to drain (commit only)
  sim::SimTime reconsider_at;   ///< next decision time (hold only)
};

class BatchPolicy {
 public:
  virtual ~BatchPolicy() = default;
  virtual BatchMode kind() const noexcept = 0;
  /// Must be deterministic in `view`.
  virtual BatchDecision decide(const BatchView& view) = 0;
};

std::unique_ptr<BatchPolicy> make_batch_policy(const BatchConfig& config);

}  // namespace aad::core
