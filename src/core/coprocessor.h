// AgileCoprocessor: the public API of the library — the single-chip
// PCI-card system of Figure 1 assembled end to end.
//
//   host (this API)
//     └─ PCI bus model ── microcontroller ── ROM / local RAM
//                              └─ configuration module ── partially
//                                 reconfigurable fabric (frames, CLBs)
//
// Typical use:
//
//   aad::core::AgileCoprocessor cp;
//   cp.download(aad::algorithms::KernelId::kAes128);    // provision ROM
//   auto r = cp.invoke(aad::algorithms::KernelId::kAes128, input);
//   // r.output    — the function result (bit-exact with software)
//   // r.latency   — simulated end-to-end time, reconfiguration included
//
// Every method advances the embedded discrete-event clock; stats() and
// trace() expose where the time went.
#pragma once

#include <memory>
#include <optional>

#include "algorithms/kernels.h"
#include "fabric/fabric.h"
#include "mcu/mcu.h"
#include "pci/pci.h"
#include "sim/scheduler.h"
#include "sim/trace.h"
#include "telemetry/registry.h"

namespace aad::core {

struct CoprocessorConfig {
  fabric::Fabric::Config fabric;
  mcu::McuConfig mcu;
  pci::PciTiming pci;
  bool trace_enabled = false;  ///< span tracing costs memory on long runs
};

struct InvokeOutcome {
  Bytes output;
  mcu::InvokeResult device;   ///< MCU-side breakdown
  sim::SimTime pci_time;      ///< host<->card transfer time
  sim::SimTime latency;       ///< end-to-end, as the host experiences it
};

struct HostOutcome {
  Bytes output;
  sim::SimTime latency;       ///< host-only software execution time
};

struct CoprocessorStats {
  mcu::McuStats device;
  pci::PciStats bus;
  sim::SimTime uptime;        ///< simulated time since construction
};

class AgileCoprocessor {
 public:
  /// A standalone card: owns its discrete-event scheduler.
  explicit AgileCoprocessor(const CoprocessorConfig& config = {});

  /// A card driven by an external scheduler shared with other cards (the
  /// CoprocessorFleet path): all cards see one simulated clock, so
  /// cross-card overlap is simulated faithfully.  `scheduler` must outlive
  /// the card.  Caution: the synchronous paths (invoke, preload, evict,
  /// provisioning) advance the SHARED clock and execute any events pending
  /// on it — only use them while the other owners of the scheduler are
  /// quiescent (the fleet's download_* calls, benches between runs).
  AgileCoprocessor(const CoprocessorConfig& config, sim::Scheduler& scheduler);

  // --- provisioning ---------------------------------------------------------

  /// Build the kernel's bitstream for this device, compress it and download
  /// it into the card's ROM over PCI.  Returns the ROM record.
  memory::RomRecord download(
      algorithms::KernelId kernel,
      std::optional<compress::CodecId> codec = std::nullopt);

  /// Download a caller-supplied bitstream under an explicit function id.
  memory::RomRecord download_bitstream(
      memory::FunctionId id, const bitstream::Bitstream& bitstream,
      std::optional<compress::CodecId> codec = std::nullopt);

  /// Download every kernel in the catalog (convenience for experiments).
  void download_all(std::optional<compress::CodecId> codec = std::nullopt);

  // --- execution ------------------------------------------------------------

  /// Execute `kernel` on `input` via the card (reconfiguring on demand).
  InvokeOutcome invoke(algorithms::KernelId kernel, ByteSpan input);

  /// Execute an arbitrary provisioned function id.
  InvokeOutcome invoke_function(memory::FunctionId id, ByteSpan input);

  /// Host-only baseline: same computation, no card (E4's comparator).
  HostOutcome run_on_host(algorithms::KernelId kernel, ByteSpan input);

  /// Preload a kernel without executing (host-directed warm-up).
  mcu::LoadResult preload(algorithms::KernelId kernel);
  /// Host-directed swap-out.
  void evict(algorithms::KernelId kernel);

  /// PCI command setup cost: `registers` doorbell writes + one status poll.
  /// (Shared with the event-driven CoprocessorServer.)
  sim::SimTime pci_command_overhead(unsigned registers);

  // --- introspection ----------------------------------------------------------
  CoprocessorStats stats() const;
  sim::SimTime now() const noexcept { return scheduler_.now(); }
  sim::Scheduler& scheduler() noexcept { return scheduler_; }
  const sim::Trace& trace() const noexcept { return trace_; }
  sim::Trace& trace() noexcept { return trace_; }
  /// This card's perf-counter registry: every `mcu.*` / `server.*` counter
  /// the card's subsystems registered, enumerable via snapshot().
  telemetry::Registry& registry() noexcept { return registry_; }
  const telemetry::Registry& registry() const noexcept { return registry_; }
  const fabric::Fabric& fabric() const noexcept { return fabric_; }
  mcu::Mcu& mcu() noexcept { return mcu_; }
  const mcu::Mcu& mcu() const noexcept { return mcu_; }
  pci::PciBus& bus() noexcept { return bus_; }

 private:
  AgileCoprocessor(const CoprocessorConfig& config,
                   std::unique_ptr<sim::Scheduler> owned,
                   sim::Scheduler* shared);

  std::unique_ptr<sim::Scheduler> owned_scheduler_;  ///< null when shared
  sim::Scheduler& scheduler_;
  sim::Trace trace_;
  telemetry::Registry registry_;  ///< before mcu_: subsystems register here
  fabric::Fabric fabric_;
  pci::PciBus bus_;
  mcu::RuntimeRegistry runtime_;
  mcu::Mcu mcu_;
};

}  // namespace aad::core
