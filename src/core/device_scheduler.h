// DeviceScheduler: the pluggable policy that orders the device-ready queue
// of one card's CoprocessorServer.
//
// The server's device stage is two independently-arbitrated resources — the
// configuration engine (firmware decode + on-demand load) and the fabric
// (RAM staging + execution).  Whenever the engine frees up and requests are
// waiting with their input DMA complete, the scheduler picks which one is
// served next.  FIFO is the bit-exact baseline (data-arrival order, exactly
// the pre-split server); the reordering policies trade arrival fairness for
// configuration locality:
//
//   * resident-first — serve a request whose function is already configured
//     before any request that needs a reconfiguration: hits cost only the
//     firmware decode, so letting them jump the queue keeps the fabric fed
//     while the misses' reconfigurations are batched behind them;
//   * shortest-reconfiguration-first — SJF on the reconfiguration estimate
//     (resident = 0; miss = the card's modeled load cost, which under
//     delta reconfiguration sees through to the dirty-frame count via
//     Mcu::estimated_load_cost, and otherwise reduces to the function's
//     ROM frame footprint): minimizes mean engine occupancy ahead of any
//     given request.
//
// Both reordering policies are deliberately simple and can starve a cold
// request under a steady stream of resident traffic (classic SJF
// starvation); they are makespan/throughput policies, not fairness
// policies.  A deadline- or age-bounded variant slots into the same
// interface.  Policies are picked per server via ServerConfig and compose
// with the fleet's dispatch policies (core::CoprocessorFleet).
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "memory/rom.h"
#include "sim/time.h"

namespace aad::core {

/// How a CoprocessorServer orders its device-ready queue.
enum class DevicePolicy : std::uint8_t {
  kFifo,                    ///< data-arrival order (bit-exact baseline)
  kResidentFirst,           ///< configuration hits jump the queue
  kShortestReconfigFirst,   ///< smallest reconfiguration estimate first
};

const char* to_string(DevicePolicy policy);

/// One ready request, as the policy sees it.  `resident` and
/// `reconfig_frames` are refreshed at pick time, so the policy always
/// decides against the card's current configuration state.
struct DeviceQueueEntry {
  std::uint64_t id = 0;              ///< ServerRequest id
  memory::FunctionId function = 0;
  sim::SimTime ready;                ///< input DMA completed (arrival order)
  bool resident = false;             ///< configuration currently on the fabric
  unsigned reconfig_frames = 0;      ///< 0 when resident; ROM footprint else
  /// The SJF ordering key: zero when resident.  Without a load-cost model
  /// the server fills frames-as-picoseconds (a monotone map of the old
  /// footprint key, so orderings are unchanged); with delta reconfiguration
  /// it is the card's real modeled load cost.
  sim::SimTime reconfig_cost;
};

class DeviceScheduler {
 public:
  virtual ~DeviceScheduler() = default;
  virtual DevicePolicy kind() const noexcept = 0;
  /// Index into `queue` (never empty, arrival order) of the request to
  /// serve next.  Must be deterministic; ties break to the earliest entry.
  virtual std::size_t pick(std::span<const DeviceQueueEntry> queue) = 0;
};

std::unique_ptr<DeviceScheduler> make_device_scheduler(DevicePolicy policy);

}  // namespace aad::core
