// CoprocessorServer: the event-driven, multi-client front end of the card.
//
// The synchronous AgileCoprocessor::invoke folds a whole invocation into one
// blocking call.  The server instead drives every request through the
// discrete-event scheduler as five staged events,
//
//   submit ──► PCI data-in ──► decode ──► load ──► execute ──► PCI data-out
//                              └─ config engine ─┘   fabric
//
// with three shared resources arbitrated independently:
//   * the PCI bus           — one transfer at a time (pci::PciBus::acquire),
//   * the config engine     — MCU firmware decode + the on-demand load
//                             (eviction + streaming reconfiguration),
//   * the fabric            — RAM staging + execution, one function at a time.
//
// Because the resources are independent, request B's input DMA overlaps
// request A's reconfiguration or execution, and — when overlap_reconfig is
// on — request B's *reconfiguration* streams through the config engine
// while request A still owns the fabric.  That is legal exactly when B's
// allocated frames are disjoint from every executing function's frames; the
// server guarantees it by pinning every function with an outstanding fabric
// window (mcu::Mcu::pin) for the duration of B's load, so the eviction loop
// can never touch them, and by serializing behind the fabric when
// mcu::Mcu::load_feasible says the pinned frames fragment the device too
// much.  The device-ready queue is ordered by a pluggable DeviceScheduler
// (FIFO baseline — bit-exact with the pre-split single-resource server when
// overlap_reconfig is off — plus resident-first and
// shortest-reconfiguration-first; see core/device_scheduler.h).
//
// On top of the scheduler's pick, a pluggable BatchPolicy
// (core/batch_policy.h) coalesces queued SAME-FUNCTION requests into one
// batch: the batch shares a single firmware decode and a single on-demand
// load, then runs back-to-back fabric windows, so one reconfiguration is
// amortized across every member.  The batch's function holds a pin
// reference (mcu::Mcu::pin is refcounted) from load commit until its last
// window retires, so overlapped loads of other functions can never evict
// it mid-batch.  BatchMode::kNone (the default) serves every request as a
// batch of one and is bit-exact with the unbatched server; kGreedy drains
// the queue immediately; kWindowed holds commitment up to a horizon so
// more same-function arrivals can coalesce.
//
// stats() reports per-request latency percentiles, throughput, and the wait
// attribution split into bus/engine/fabric, plus the total reconfiguration
// time hidden behind execution.  One server pipelines one card;
// core::CoprocessorFleet (fleet.h) shards N of these pipelines behind a
// dispatch policy that composes with the per-card device policy.
//
// Typical use:
//
//   aad::core::AgileCoprocessor card;
//   card.download_all();
//   aad::core::ServerConfig sc;
//   sc.device_policy = aad::core::DevicePolicy::kResidentFirst;
//   aad::core::CoprocessorServer server(card, sc);
//   server.submit(/*client=*/0, KernelId::kAes128, input_a);
//   server.submit(/*client=*/1, KernelId::kSha256, input_b);
//   server.run();                       // drain the event queue
//   auto st = server.stats();           // p50/p99 latency, hidden reconfig
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/batch_policy.h"
#include "core/coprocessor.h"
#include "core/device_scheduler.h"
#include "core/predictor.h"
#include "telemetry/registry.h"
#include "telemetry/trace_sink.h"

namespace aad::core {

/// Why a request surfaced as failed instead of completing with output.
enum class FailReason : std::uint8_t {
  kNone = 0,
  kCardDeath,   ///< the card powered off with the request on it, no survivor
  kTimeout,     ///< the fleet's watchdog expired and retries were exhausted
  kCrcReject,   ///< corrupted bitstream: load rejected even after re-fetch
};

/// One completed (or in-flight) request, with its full time breakdown.
struct ServerRequest {
  std::uint64_t id = 0;          ///< submission order, dense from 0
  unsigned client = 0;           ///< logical client that issued it
  memory::FunctionId function = 0;
  Bytes output;
  mcu::LoadResult load;          ///< hit/miss + reconfiguration breakdown
  std::int64_t exec_cycles = 0;

  sim::SimTime submit_time;      ///< arrival at the host driver
  sim::SimTime pci_in_start;     ///< bus granted for the input DMA
  sim::SimTime device_ready;     ///< input DMA done; entered the device queue
  sim::SimTime device_start;     ///< config engine begins firmware decode
  sim::SimTime fabric_start;     ///< fabric begins RAM staging + execution
  sim::SimTime pci_out_start;    ///< bus granted for the output DMA
  sim::SimTime complete_time;    ///< host observes completion

  sim::SimTime pci_in_time;      ///< command setup + input DMA occupancy
  sim::SimTime decode_time;      ///< firmware command decode
  sim::SimTime prepare_time;     ///< decode + eviction + reconfiguration
  sim::SimTime execute_time;     ///< RAM staging + fabric execution
  sim::SimTime pci_out_time;     ///< output DMA + status occupancy
  sim::SimTime bus_wait;         ///< PCI arbitration queuing delay
  sim::SimTime engine_wait;      ///< device_ready -> config engine grant
  sim::SimTime fabric_wait;      ///< load done -> fabric grant
  sim::SimTime device_wait;      ///< engine_wait + fabric_wait
  /// Reconfiguration (+eviction) time that ran while another request's
  /// fabric execution was still in flight — the overlap win.  Zero when the
  /// load was a hit, the fabric was idle, or overlap is disabled.
  sim::SimTime hidden_reconfig;

  // Batch accounting (core/batch_policy.h).  Without batching every
  // request is its own batch of one.
  std::uint64_t batch_id = 0;    ///< device commit this request rode, dense
  std::uint32_t batch_size = 1;  ///< members of that commit
  /// True when this request shared a batch-mate's decode + load instead of
  /// paying its own engine occupancy (decode_time and prepare_time are
  /// zero; the load was the batch leader's).
  bool coalesced_load = false;

  /// Terminal failure: the request is done (its completion hook fired
  /// exactly once) but produced no output.  Failed records are excluded
  /// from latency/throughput statistics.
  bool failed = false;
  FailReason fail_reason = FailReason::kNone;

  sim::SimTime latency() const noexcept { return complete_time - submit_time; }
};

struct LatencySummary {
  sim::SimTime min, mean, p50, p90, p99, max;
};

/// Nearest-rank percentile summary of a latency sample (sorted in place):
/// the q-quantile is the smallest sample value with at least a fraction q
/// of the sample at or below it, i.e. sorted[ceil(q*n) - 1].  A single
/// sample is its own p50/p90/p99; with n < 100 the p99 is simply the max
/// (ceil(0.99*n) == n for 1 <= n <= 100).  Zeroes on an empty sample.
/// Shared by CoprocessorServer::stats() and the fleet-wide aggregation in
/// CoprocessorFleet::stats().
LatencySummary summarize_latencies(std::vector<sim::SimTime> latencies);

/// Members per committed batch: every batch is one leader plus its
/// coalesced followers, so the member total is batches + coalesced_loads.
/// Zero when nothing committed.  Shared by CoprocessorServer::stats() and
/// CoprocessorFleet::stats() so the two levels can never drift apart.
inline double mean_batch_size(std::uint64_t batches,
                              std::uint64_t coalesced_loads) noexcept {
  if (batches == 0) return 0.0;
  return static_cast<double>(batches + coalesced_loads) /
         static_cast<double>(batches);
}

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   ///< successfully (failed ones not counted)
  std::uint64_t failed = 0;      ///< surfaced as failed (CRC reject, ...)
  std::uint64_t cancelled = 0;   ///< pulled back before commit (timeout
                                 ///< redispatch) or orphaned by power_off
  std::uint64_t crc_rejects = 0; ///< MCU-level corrupted-bitstream rejects
  std::uint64_t refetches = 0;   ///< pristine-stream ROM repairs that worked
  sim::SimTime makespan;         ///< first submission -> last completion
  double throughput_rps = 0.0;   ///< completed per simulated second
  LatencySummary latency;        ///< over completed requests
  sim::SimTime total_bus_wait;
  sim::SimTime total_device_wait;    ///< engine + fabric wait, summed
  sim::SimTime total_engine_wait;    ///< queued for the config engine
  sim::SimTime total_fabric_wait;    ///< load done, fabric still busy
  sim::SimTime total_hidden_reconfig;  ///< reconfig overlapped with execution
  std::uint64_t overlapped_loads = 0;  ///< loads that ran during execution
  // Batch amortization (commit-time accounting: counts every committed
  // batch and member, including ones whose PCI-out is still in flight).
  std::uint64_t batches = 0;           ///< device commits (each >= 1 request)
  std::uint64_t coalesced_loads = 0;   ///< members that shared the leader's
                                       ///< decode + load
  double mean_batch_size = 0.0;        ///< members per committed batch
  /// Config-engine occupancy (decode + load) the coalesced members shared
  /// instead of re-paying: the leader's prepare_time, once per follower.
  sim::SimTime total_amortized_reconfig;
  // Load-cost telemetry, mirrored from the card's MCU counters (so the
  // fleet can merge it per shard): frames the delta tracker skipped,
  // compressed bytes actually fetched from ROM by loads, and which codec
  // each stored function ended up with (the auto pick's record).
  std::uint64_t frames_skipped_delta = 0;
  std::uint64_t bytes_streamed = 0;
  std::map<compress::CodecId, std::uint64_t> codec_picks;
  // Speculative prefetch (PrefetchConfig).  All zero with prefetch off.
  std::uint64_t prefetch_issued = 0;  ///< speculative loads the pump streamed
  std::uint64_t prefetch_hits = 0;    ///< consumed by a later demand request
  /// Prefetched frames a demand miss stole (or death wiped) before any
  /// demand for the function arrived — the mispredict cost, which is only
  /// idle engine time and cold frames.  issued - hits - wasted prefetches
  /// are still resident awaiting a demand.
  std::uint64_t prefetch_wasted = 0;
  /// Reconfiguration time paid speculatively in idle engine cycles and then
  /// consumed by a demand hit: latency the requester never saw.
  sim::SimTime hidden_reconfig_prefetch;
};

/// Per-server policy knobs.  The defaults (FIFO + overlap) serve requests
/// in data-arrival order while hiding reconfigurations behind execution;
/// {kFifo, overlap_reconfig = false} reproduces the pre-split
/// single-resource device stage bit-exactly (the regression tests pin this).
/// Speculative configuration prefetch (core/predictor.h).  When the card is
/// fully idle, the server consults a per-client Markov predictor trained on
/// its completion stream and speculatively streams the predicted next
/// configuration into free frames or frames of dead-looking residents
/// (never a live one — Mcu::prefetch_feasible gates that).  A speculative
/// load never holds a standing pin, and the MCU's eviction loop steals
/// speculative frames FIRST the instant a demand miss needs them, so a
/// prefetch can never delay real work.  Default off: the server is
/// bit-exact with the prefetch-free pipeline.
struct PrefetchConfig {
  bool enabled = false;
  PredictorConfig predictor;
  /// A speculative load may claim free frames, other speculative frames,
  /// and frames of DEAD-looking demand residents — never a live one
  /// (evicting one trades a probable future hit for a predicted one).
  /// Dead = idle longer than both this floor and `victim_idle_factor`
  /// times the resident's own mean inter-access gap; see
  /// Mcu::prefetch_feasible.
  sim::SimTime min_victim_idle = sim::SimTime::ms(1);
  double victim_idle_factor = 2.0;
};

struct ServerConfig {
  DevicePolicy device_policy = DevicePolicy::kFifo;
  /// Stream a queued request's configuration while the fabric executes
  /// another (frames permitting).  Off = decode+load+execute serialize per
  /// request, exactly the old one-busy-until-scalar device stage.
  bool overlap_reconfig = true;
  /// Same-function request coalescing (core/batch_policy.h).  The default
  /// (BatchMode::kNone) serves every request as a batch of one, bit-exact
  /// with the unbatched server.
  BatchConfig batch;
  /// Speculative next-function prefetch (default off).
  PrefetchConfig prefetch;
};

class CoprocessorServer {
 public:
  /// Completion hook, fired from inside the event loop when the request's
  /// output DMA finishes.  May submit further requests (closed-loop clients).
  using Completion = std::function<void(const ServerRequest&)>;

  /// The card must outlive the server.  Functions are provisioned through
  /// the card as before (download / download_all).
  explicit CoprocessorServer(AgileCoprocessor& card,
                             const ServerConfig& config = {});

  // --- submission ----------------------------------------------------------

  /// Queue an invocation arriving now.  Returns the request id.
  std::uint64_t submit(unsigned client, algorithms::KernelId kernel,
                       Bytes input, Completion done = {});
  std::uint64_t submit_function(unsigned client, memory::FunctionId function,
                                Bytes input, Completion done = {});
  /// Queue an invocation arriving at absolute time `when` (>= now) —
  /// open-loop traffic.
  std::uint64_t submit_function_at(sim::SimTime when, unsigned client,
                                   memory::FunctionId function, Bytes input,
                                   Completion done = {});

  // --- event loop ----------------------------------------------------------

  /// Run until every submitted request (including any submitted by
  /// completion hooks) has finished.  Returns events executed.
  std::size_t run();
  /// Run events up to `deadline`; in-flight requests stay queued.
  std::size_t run_until(sim::SimTime deadline);

  // --- introspection -------------------------------------------------------

  sim::SimTime now() const noexcept { return card_.now(); }
  std::size_t in_flight() const noexcept { return in_flight_; }
  const ServerConfig& config() const noexcept { return config_; }
  /// Requests whose input DMA finished but the config engine has not yet
  /// accepted them (what the DeviceScheduler reorders).
  std::size_t device_queue_depth() const noexcept {
    return device_queue_.size();
  }
  /// Is any in-flight request for `function` heading to this card whose
  /// load has not yet committed?  The fleet's residency-affinity router
  /// counts an inbound configuration like a resident one: by the time a
  /// new arrival reaches the device stage, the inbound request will have
  /// loaded it (or be queued ahead doing so).  Once the load commits,
  /// Mcu::is_resident carries the signal instead.
  bool function_inbound(memory::FunctionId function) const {
    return inbound_.contains(function);
  }
  /// Is the device stage holding an OPEN batch for `function` — an
  /// uncommitted coalescing opportunity (a windowed hold, or any batch the
  /// fabric refused and will retry) that a new same-function arrival would
  /// still join?  The fleet's residency-affinity router prefers such a
  /// card over a merely-resident one: a request routed here joins the
  /// batch and shares its single decode + load.  Always false under
  /// BatchMode::kNone; under kGreedy only a refused-and-retrying batch is
  /// ever observable (greedy commits the instant it picks).
  bool open_batch_for(memory::FunctionId function) const {
    return hold_anchors_.contains(function);
  }
  /// Did this card prefetch `function` and still hold it, unconsumed?  The
  /// fleet's router prefers such a card over a merely-resident one (the
  /// prefetch was made FOR the predicted demand; consuming it elsewhere
  /// wastes the speculative work).
  bool prefetch_resident(memory::FunctionId function) const {
    return prefetched_.contains(function) &&
           card_.mcu().is_resident(function);
  }
  /// Ask this card to speculatively warm `function` at absolute time
  /// `when` (>= now) — the fleet's cross-card prefetch path.  The request
  /// joins the local candidate queue and obeys the same rules as local
  /// predictions: idle engine only, free frames only, no pin held.  No-op
  /// when prefetch is disabled.
  void queue_prefetch_at(sim::SimTime when, memory::FunctionId function);
  /// Candidates + issued-but-unconsumed prefetches (tests/benches).
  std::size_t prefetch_outstanding() const noexcept {
    return prefetch_queue_.size() + prefetched_.size();
  }
  const std::vector<ServerRequest>& completed() const noexcept {
    return completed_;
  }
  /// Latency percentiles, throughput and queueing totals over the requests
  /// completed so far (in_flight() requests are not included).  When the
  /// server runs as one shard of a CoprocessorFleet, these are the per-card
  /// numbers; CoprocessorFleet::stats() merges them fleet-wide.
  ServerStats stats() const;
  AgileCoprocessor& card() noexcept { return card_; }

  // --- telemetry -----------------------------------------------------------

  /// Open this card's span lanes (pci / engine / fabric / batch) as one
  /// trace process named `label`; `card` (when >= 0) stamps every span's
  /// card arg.  Call before running; the sink must outlive the server.
  /// Without a sink every record site is a single null-pointer branch.
  void attach_trace(telemetry::TraceSink& sink, const std::string& label,
                    std::int64_t card = -1);

  // --- fault injection + recovery ------------------------------------------

  /// Everything the dispatcher needs to retry a pulled-back request
  /// elsewhere: the original payload and the caller's completion hook.
  struct CancelledRequest {
    std::uint64_t id = 0;
    unsigned client = 0;
    memory::FunctionId function = 0;
    Bytes input;
    Completion done;
    sim::SimTime submit_time;
  };

  /// Pull an in-flight request back BEFORE its device commit (the fleet's
  /// timeout watchdog).  Pending pipeline events are cancelled, the inbound
  /// marker and any now-stale batch hold anchor are unwound, and the
  /// payload + completion hook are returned for redispatch.  Returns
  /// nullopt — the request rides to completion here — when it is unknown,
  /// already done, or its batch has committed to the engine/fabric.
  std::optional<CancelledRequest> try_cancel(std::uint64_t id);

  /// Card death: cancel every pending event this server scheduled, wipe all
  /// queue state, and erase the fabric (mcu::Mcu::reset_fabric — recovery
  /// starts cold).  EVERY in-flight request — queued or committed — comes
  /// back as a refugee for the dispatcher to redispatch or fail.  Committed
  /// ones may already have produced device-side work that is now lost, so
  /// fleet-level redispatch is at-least-once, never at-most-once.
  std::vector<CancelledRequest> power_off();

 private:
  struct Pending {
    ServerRequest request;
    Bytes input;
    Completion done;
    /// Device commit happened: the engine/fabric windows are booked and the
    /// request can no longer be cancelled (only card death unwinds it).
    bool committed = false;
    /// The one pending pipeline event carrying this request (submit ->
    /// pci-in -> device_ready); unset while it sits in the device queue or
    /// after commit.
    std::optional<sim::EventId> chain_event;
  };
  /// A committed fabric window: `function` owns the fabric until `end` and
  /// must be pinned against eviction by any load overlapping that window.
  struct FabricCommitment {
    sim::SimTime end;
    memory::FunctionId function;
  };
  void begin_pci_in(std::uint64_t id);
  void device_ready(std::uint64_t id);
  /// When the device could next START a request's engine window: the
  /// engine's free instant — or, with overlap off, the fabric's too.
  /// Committing no earlier than this keeps the ready queue reorderable for
  /// as long as the hardware is genuinely busy.
  sim::SimTime device_available() const noexcept {
    return config_.overlap_reconfig ? engine_free_
                                    : std::max(engine_free_, fabric_free_);
  }
  /// Ensure a pump_device wake-up fires no later than `when`.
  void schedule_pump(sim::SimTime when);
  /// Commit the policy's next pick to the engine + fabric; reschedules
  /// itself at the device's next-start instant while requests are waiting.
  void pump_device();
  /// Queued same-function batch mates of `leader` (the scheduler's pick),
  /// leader first, the rest in arrival order, capped at `limit`.
  std::vector<std::uint64_t> collect_batch(std::uint64_t leader,
                                           std::size_t limit) const;
  /// Plan the batch's shared engine window (leader decode + load) and its
  /// back-to-back fabric windows, and mutate the MCU accordingly.
  /// Returns false — nothing committed, every member stays queued — when
  /// the fabric is busy and the leader may not take the engine yet
  /// (overlap disabled, or its load cannot avoid the pinned frames); the
  /// pump retries once the fabric frees, and can reorder around it.
  bool serve_batch(const std::vector<std::uint64_t>& batch);
  void begin_pci_out(std::uint64_t id);
  void complete(std::uint64_t id);
  Pending& pending(std::uint64_t id);
  /// Fail the whole batch terminally (corrupted bitstream): every member
  /// completes NOW with failed=true and no engine/fabric time charged.
  void fail_batch(const std::vector<std::uint64_t>& batch, FailReason reason);
  /// schedule_at through the server's event ledger, so power_off can cancel
  /// everything this server has in flight without touching other users of
  /// the (possibly shared) scheduler.
  sim::EventId schedule(sim::SimTime when, std::function<void()> action);
  /// Ensure a pump_prefetch wake-up fires no later than `when`.
  void schedule_prefetch_pump(sim::SimTime when);
  /// Speculatively load the best actionable candidate if the engine is idle
  /// and no demand work is pending.
  void pump_prefetch();
  /// Demand-side prefetch accounting: a demand load for a prefetched
  /// function either consumes the speculation (hit) or finds its frames
  /// already stolen (wasted).
  void settle_prefetch(memory::FunctionId function, bool load_hit);

  AgileCoprocessor& card_;
  ServerConfig config_;
  std::unique_ptr<DeviceScheduler> device_scheduler_;
  std::unique_ptr<BatchPolicy> batch_policy_;
  std::map<std::uint64_t, Pending> queue_;  ///< in-flight, by request id
  std::vector<std::uint64_t> device_queue_;  ///< ready ids, arrival order
  /// In-flight requests whose load has not yet committed, by function.
  std::map<memory::FunctionId, unsigned> inbound_;
  std::uint64_t next_id_ = 0;
  std::size_t in_flight_ = 0;
  sim::SimTime engine_free_;         ///< config engine busy-until
  sim::SimTime fabric_free_;         ///< fabric busy-until
  std::vector<FabricCommitment> executing_;  ///< fabric windows not yet over
  std::optional<sim::SimTime> pump_wake_;  ///< earliest pending pump event
  /// When each queued function FIRST became the scheduler's pick: the
  /// windowed policy's horizon anchors, kept across pick changes (a
  /// non-FIFO device policy can commit other functions mid-hold) and
  /// across fabric refusals, retired when the function's batch commits.
  /// Every entry is an open batch (open_batch_for) a new same-function
  /// arrival would join.
  std::map<memory::FunctionId, sim::SimTime> hold_anchors_;
  std::vector<ServerRequest> completed_;
  /// Ids of every event this server has scheduled and not yet seen fire —
  /// the ledger power_off cancels.
  std::set<sim::EventId> scheduled_;

  // Registry handles — the `server.*` counter block on the card's
  // telemetry::Registry, registered at construction; ServerStats is a
  // snapshot view over them (plus the request records).
  struct Counters {
    telemetry::Counter& submitted;
    telemetry::Counter& cancelled;
    /// Committed device batches; doubles as the dense batch-id allocator
    /// (a batch's id is the counter's value at commit).
    telemetry::Counter& batches;
    telemetry::Counter& coalesced_loads;
    telemetry::Counter& amortized_reconfig;  ///< picoseconds
    telemetry::Counter& prefetch_issued;
    telemetry::Counter& prefetch_hits;
    telemetry::Counter& prefetch_wasted;
    telemetry::Counter& hidden_prefetch;     ///< picoseconds
    telemetry::Gauge& queue_depth;  ///< device queue level + high water
  };
  Counters counters_;

  // Chrome-trace lanes (telemetry/trace_sink.h); null until attach_trace.
  telemetry::TraceTrack* pci_track_ = nullptr;
  telemetry::TraceTrack* engine_track_ = nullptr;
  telemetry::TraceTrack* fabric_track_ = nullptr;
  telemetry::TraceTrack* batch_track_ = nullptr;
  // Speculative prefetch (PrefetchConfig; all dormant when disabled).
  /// Per-client next-function Markov table, trained in complete().  Host
  /// driver state: it survives card death (power_off), like the ROM map.
  FunctionPredictor predictor_;
  /// Predicted functions awaiting an idle engine, FIFO, unique.
  std::vector<memory::FunctionId> prefetch_queue_;
  /// Issued speculative loads not yet consumed by a demand, with the
  /// engine occupancy each one paid (the latency a demand hit hides).
  std::map<memory::FunctionId, sim::SimTime> prefetched_;
  std::optional<sim::SimTime> prefetch_wake_;  ///< pending pump wake-up
};

}  // namespace aad::core
