// CoprocessorServer: the event-driven, multi-client front end of the card.
//
// The synchronous AgileCoprocessor::invoke folds a whole invocation into one
// blocking call.  The server instead drives every request through the
// discrete-event scheduler as four staged events,
//
//   submit ──► PCI data-in ──► device (reconfig + execute) ──► PCI data-out
//
// with two shared resources arbitrated independently:
//   * the PCI bus      — one transfer at a time (pci::PciBus::acquire),
//   * the card itself  — MCU firmware, configuration engine and fabric
//                        serialize per request, FIFO in data-arrival order.
//
// Because the resources are independent, request B's input DMA overlaps
// request A's reconfiguration or execution, and back-to-back requests for a
// resident function pipeline: the card computes while the bus streams the
// next payload.  stats() reports per-request latency percentiles and
// throughput.  One server pipelines one card; core::CoprocessorFleet
// (fleet.h) shards N of these pipelines behind a dispatch policy, and every
// further scaling PR (preemption, heterogeneous cards) slots in there.
//
// Typical use:
//
//   aad::core::AgileCoprocessor card;
//   card.download_all();
//   aad::core::CoprocessorServer server(card);
//   server.submit(/*client=*/0, KernelId::kAes128, input_a);
//   server.submit(/*client=*/1, KernelId::kSha256, input_b);
//   server.run();                       // drain the event queue
//   auto st = server.stats();           // p50/p99 latency, throughput
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/coprocessor.h"

namespace aad::core {

/// One completed (or in-flight) request, with its full time breakdown.
struct ServerRequest {
  std::uint64_t id = 0;          ///< submission order, dense from 0
  unsigned client = 0;           ///< logical client that issued it
  memory::FunctionId function = 0;
  Bytes output;
  mcu::LoadResult load;          ///< hit/miss + reconfiguration breakdown
  std::int64_t exec_cycles = 0;

  sim::SimTime submit_time;      ///< arrival at the host driver
  sim::SimTime pci_in_start;     ///< bus granted for the input DMA
  sim::SimTime device_start;     ///< card begins firmware + load + execute
  sim::SimTime pci_out_start;    ///< bus granted for the output DMA
  sim::SimTime complete_time;    ///< host observes completion

  sim::SimTime pci_in_time;      ///< command setup + input DMA occupancy
  sim::SimTime prepare_time;     ///< firmware + eviction + reconfiguration
  sim::SimTime execute_time;     ///< RAM staging + fabric execution
  sim::SimTime pci_out_time;     ///< output DMA + status occupancy
  sim::SimTime bus_wait;         ///< PCI arbitration queuing delay
  sim::SimTime device_wait;      ///< queued behind other requests' device use

  sim::SimTime latency() const noexcept { return complete_time - submit_time; }
};

struct LatencySummary {
  sim::SimTime min, mean, p50, p90, p99, max;
};

/// Nearest-rank percentile summary of a latency sample (sorted in place).
/// Shared by CoprocessorServer::stats() and the fleet-wide aggregation in
/// CoprocessorFleet::stats(); zeroes on an empty sample.
LatencySummary summarize_latencies(std::vector<sim::SimTime> latencies);

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  sim::SimTime makespan;         ///< first submission -> last completion
  double throughput_rps = 0.0;   ///< completed per simulated second
  LatencySummary latency;        ///< over completed requests
  sim::SimTime total_bus_wait;
  sim::SimTime total_device_wait;
};

class CoprocessorServer {
 public:
  /// Completion hook, fired from inside the event loop when the request's
  /// output DMA finishes.  May submit further requests (closed-loop clients).
  using Completion = std::function<void(const ServerRequest&)>;

  /// The card must outlive the server.  Functions are provisioned through
  /// the card as before (download / download_all).
  explicit CoprocessorServer(AgileCoprocessor& card);

  // --- submission ----------------------------------------------------------

  /// Queue an invocation arriving now.  Returns the request id.
  std::uint64_t submit(unsigned client, algorithms::KernelId kernel,
                       Bytes input, Completion done = {});
  std::uint64_t submit_function(unsigned client, memory::FunctionId function,
                                Bytes input, Completion done = {});
  /// Queue an invocation arriving at absolute time `when` (>= now) —
  /// open-loop traffic.
  std::uint64_t submit_function_at(sim::SimTime when, unsigned client,
                                   memory::FunctionId function, Bytes input,
                                   Completion done = {});

  // --- event loop ----------------------------------------------------------

  /// Run until every submitted request (including any submitted by
  /// completion hooks) has finished.  Returns events executed.
  std::size_t run();
  /// Run events up to `deadline`; in-flight requests stay queued.
  std::size_t run_until(sim::SimTime deadline);

  // --- introspection -------------------------------------------------------

  sim::SimTime now() const noexcept { return card_.now(); }
  std::size_t in_flight() const noexcept { return in_flight_; }
  const std::vector<ServerRequest>& completed() const noexcept {
    return completed_;
  }
  /// Latency percentiles, throughput and queueing totals over the requests
  /// completed so far (in_flight() requests are not included).  When the
  /// server runs as one shard of a CoprocessorFleet, these are the per-card
  /// numbers; CoprocessorFleet::stats() merges them fleet-wide.
  ServerStats stats() const;
  AgileCoprocessor& card() noexcept { return card_; }

 private:
  struct Pending {
    ServerRequest request;
    Bytes input;
    Completion done;
  };

  void begin_pci_in(std::uint64_t id);
  void begin_device(std::uint64_t id);
  void begin_pci_out(std::uint64_t id);
  void complete(std::uint64_t id);
  Pending& pending(std::uint64_t id);

  AgileCoprocessor& card_;
  std::map<std::uint64_t, Pending> queue_;  ///< in-flight, by request id
  std::uint64_t next_id_ = 0;
  std::size_t in_flight_ = 0;
  sim::SimTime device_free_;         ///< card busy-until (FIFO service)
  std::vector<ServerRequest> completed_;
  std::uint64_t submitted_ = 0;
};

}  // namespace aad::core
