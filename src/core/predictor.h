// FunctionPredictor: per-client first-order Markov table over observed
// function transitions, the learning half of speculative configuration
// prefetch.
//
// The driver records each client's completed-function stream; the table
// counts "after finishing f, the client next asked for g" transitions and
// predicts the most likely next function with a confidence score.  Two
// deliberate modeling choices:
//
//   * Self-transitions (f -> f) are NOT recorded.  A repeated function is
//     already resident, so it carries no prefetch signal — what the pump
//     needs is the next *different* configuration.  This also makes the
//     table burst-granular on bursty traces (it learns the burst-to-burst
//     sequence, not the within-burst repeats) and gives version chains
//     (v -> v+1 with re-invokes in between) full-confidence edges.
//
//   * Counts decay by integer halving once a row's total exceeds
//     `decay_limit`, so a client that shifts to a new working set can
//     overtake stale history in a bounded number of observations.  Halving
//     keeps the predictor deterministic (no wall clock, no randomness) —
//     a requirement for the simulator's reproducibility guarantees.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "memory/rom.h"

namespace aad::core {

struct PredictorConfig {
  /// Minimum share of a row's observations the best successor must hold
  /// before the predictor speaks.  Below it: no prediction, no prefetch.
  double min_confidence = 0.55;
  /// Minimum observations in a row before it is trusted at all.
  unsigned min_samples = 2;
  /// Halve a row's counts once its total exceeds this (0 = never decay).
  unsigned decay_limit = 64;
};

struct Prediction {
  memory::FunctionId function = 0;
  double confidence = 0.0;  ///< best-successor count / row total
};

class FunctionPredictor {
 public:
  explicit FunctionPredictor(const PredictorConfig& config = {})
      : config_(config) {}

  /// Record that `client` just completed `function`.  Updates the
  /// last-function -> function transition count (self-transitions are
  /// dropped; the last-function marker still advances).
  void observe(unsigned client, memory::FunctionId function);

  /// Most likely next function for `client` given its last completion, or
  /// nullopt when the row is unseen, too thin (`min_samples`) or too flat
  /// (`min_confidence`).  Ties break toward the lowest function id so the
  /// prediction is a pure function of the table.
  std::optional<Prediction> predict(unsigned client) const;

  /// Same, but conditioned on an explicit current function instead of the
  /// client's recorded last completion (the fleet's dispatch-time hook).
  std::optional<Prediction> predict_after(unsigned client,
                                          memory::FunctionId function) const;

  const PredictorConfig& config() const noexcept { return config_; }
  /// Total transitions recorded (post-filter, pre-decay).
  std::uint64_t observations() const noexcept { return observations_; }

 private:
  struct Row {
    std::map<memory::FunctionId, std::uint64_t> counts;
    std::uint64_t total = 0;
  };
  struct ClientState {
    bool has_last = false;
    memory::FunctionId last = 0;
    std::map<memory::FunctionId, Row> rows;
  };

  PredictorConfig config_;
  std::map<unsigned, ClientState> clients_;
  std::uint64_t observations_ = 0;
};

}  // namespace aad::core
