// Small bit-manipulation helpers used by the fabric, bitstream and
// compression layers.  All functions are constexpr and allocation-free.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"

namespace aad::bits {

/// Extract bit `index` (0 = LSB) of `word`.
constexpr bool get_bit(std::uint64_t word, unsigned index) noexcept {
  return (word >> index) & 1u;
}

/// Return `word` with bit `index` set to `value`.
constexpr std::uint64_t with_bit(std::uint64_t word, unsigned index,
                                 bool value) noexcept {
  const std::uint64_t mask = std::uint64_t{1} << index;
  return value ? (word | mask) : (word & ~mask);
}

/// Mask of the low `n` bits (n in [0,64]).
constexpr std::uint64_t low_mask(unsigned n) noexcept {
  return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/// Extract `count` bits starting at `offset` (LSB-first) from `word`.
constexpr std::uint64_t field(std::uint64_t word, unsigned offset,
                              unsigned count) noexcept {
  return (word >> offset) & low_mask(count);
}

/// Insert `value` into `word` at `offset`, width `count`.
constexpr std::uint64_t with_field(std::uint64_t word, unsigned offset,
                                   unsigned count,
                                   std::uint64_t value) noexcept {
  const std::uint64_t mask = low_mask(count) << offset;
  return (word & ~mask) | ((value << offset) & mask);
}

/// Number of set bits.
constexpr unsigned popcount(std::uint64_t word) noexcept {
  return static_cast<unsigned>(std::popcount(word));
}

/// Reverse the low `n` bits of `word` (used by FFT bit-reversal and CRC).
constexpr std::uint64_t reverse_bits(std::uint64_t word, unsigned n) noexcept {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < n; ++i) out = with_bit(out, n - 1 - i, get_bit(word, i));
  return out;
}

/// Ceil(numerator / denominator) for positive integers.
constexpr std::size_t ceil_div(std::size_t numerator,
                               std::size_t denominator) noexcept {
  return (numerator + denominator - 1) / denominator;
}

/// Round `value` up to the next multiple of `alignment` (alignment > 0).
constexpr std::size_t round_up(std::size_t value,
                               std::size_t alignment) noexcept {
  return ceil_div(value, alignment) * alignment;
}

/// True iff `value` is a power of two (and nonzero).
constexpr bool is_pow2(std::size_t value) noexcept {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Integer log2 for powers of two.
constexpr unsigned log2_exact(std::size_t value) noexcept {
  return static_cast<unsigned>(std::countr_zero(value));
}

/// A dynamically sized bit vector with word-level access, used for LUT masks
/// and frame configuration payloads.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t size_bits, bool fill = false)
      : size_(size_bits),
        words_(ceil_div(size_bits, 64),
               fill ? ~std::uint64_t{0} : std::uint64_t{0}) {
    trim_tail();
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool get(std::size_t index) const {
    AAD_REQUIRE(index < size_, "BitVector index out of range");
    return get_bit(words_[index / 64], index % 64);
  }

  void set(std::size_t index, bool value) {
    AAD_REQUIRE(index < size_, "BitVector index out of range");
    words_[index / 64] = with_bit(words_[index / 64], index % 64, value);
  }

  void resize(std::size_t size_bits) {
    size_ = size_bits;
    words_.resize(ceil_div(size_bits, 64), 0);
    trim_tail();
  }

  /// Count of set bits over the whole vector.
  std::size_t count() const noexcept {
    std::size_t total = 0;
    for (auto w : words_) total += popcount(w);
    return total;
  }

  std::span<const std::uint64_t> words() const noexcept { return words_; }

  bool operator==(const BitVector& other) const noexcept {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  // Keep bits beyond size_ zero so count()/operator== stay exact.
  void trim_tail() noexcept {
    if (size_ % 64 != 0 && !words_.empty())
      words_.back() &= low_mask(static_cast<unsigned>(size_ % 64));
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace aad::bits
