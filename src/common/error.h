// Error handling primitives for the AAD co-processor library.
//
// Construction failures and contract violations throw aad::Error carrying an
// ErrorCode; hot-path query APIs return values/optionals instead.  The
// AAD_CHECK / AAD_REQUIRE macros give uniform, message-bearing enforcement.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace aad {

/// Stable error taxonomy shared by every subsystem.
enum class ErrorCode : std::uint8_t {
  kInvalidArgument,   ///< caller passed a value outside the documented domain
  kOutOfRange,        ///< index / address beyond a container or device bound
  kCapacityExceeded,  ///< a fixed-size resource (ROM, fabric, RAM) is full
  kCorruptData,       ///< CRC mismatch, malformed header, truncated stream
  kNotFound,          ///< lookup by id/name failed
  kAlreadyExists,     ///< duplicate registration
  kDeviceBusy,        ///< operation issued while a previous one is pending
  kUnsupported,       ///< feature not provided by this configuration
  kProtocolViolation, ///< host/MCU command sequence broke the protocol
  kInternal,          ///< invariant violation inside the library
};

/// Human-readable name of an ErrorCode ("InvalidArgument", ...).
constexpr std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kOutOfRange: return "OutOfRange";
    case ErrorCode::kCapacityExceeded: return "CapacityExceeded";
    case ErrorCode::kCorruptData: return "CorruptData";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kAlreadyExists: return "AlreadyExists";
    case ErrorCode::kDeviceBusy: return "DeviceBusy";
    case ErrorCode::kUnsupported: return "Unsupported";
    case ErrorCode::kProtocolViolation: return "ProtocolViolation";
    case ErrorCode::kInternal: return "Internal";
  }
  return "Unknown";
}

/// Exception type thrown throughout the library.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(to_string(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

namespace detail {
[[noreturn]] inline void fail(ErrorCode code, const std::string& message,
                              const char* file, int line) {
  throw Error(code, message + " [" + file + ":" + std::to_string(line) + "]");
}
}  // namespace detail

}  // namespace aad

/// Enforce a caller-facing precondition; throws kInvalidArgument on failure.
#define AAD_REQUIRE(cond, msg)                                               \
  do {                                                                       \
    if (!(cond))                                                             \
      ::aad::detail::fail(::aad::ErrorCode::kInvalidArgument, (msg),         \
                          __FILE__, __LINE__);                               \
  } while (false)

/// Enforce an internal invariant; throws kInternal on failure.
#define AAD_CHECK(cond, msg)                                                 \
  do {                                                                       \
    if (!(cond))                                                             \
      ::aad::detail::fail(::aad::ErrorCode::kInternal, (msg), __FILE__,     \
                          __LINE__);                                         \
  } while (false)

/// Throw a specific error code with a message.
#define AAD_FAIL(code, msg) \
  ::aad::detail::fail((code), (msg), __FILE__, __LINE__)
