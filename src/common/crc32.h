// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
//
// Used in three roles: (1) integrity field of the bitstream format, (2) the
// golden software reference for the CRC32 hardware kernel, and (3) checksum
// of ROM records.  Incremental interface so streams can be checksummed
// window by window.
#pragma once

#include <cstdint>
#include <cstddef>

#include "common/bytebuffer.h"

namespace aad {

class Crc32 {
 public:
  Crc32() = default;

  /// Fold `data` into the running CRC.
  void update(ByteSpan data) noexcept;
  void update(Byte b) noexcept;

  /// Final (post-inverted) CRC value.
  std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

  void reset() noexcept { state_ = 0xFFFFFFFFu; }

  /// One-shot convenience.
  static std::uint32_t compute(ByteSpan data) noexcept {
    Crc32 crc;
    crc.update(data);
    return crc.value();
  }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace aad
