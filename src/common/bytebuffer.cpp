#include "common/bytebuffer.h"

#include <algorithm>

namespace aad {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::fixed_string(const std::string& s, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i)
    u8(i < s.size() ? static_cast<std::uint8_t>(s[i]) : 0u);
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  AAD_REQUIRE(offset + 4 <= data_.size(), "patch_u32 out of range");
  for (int i = 0; i < 4; ++i)
    data_[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
}

void ByteReader::require(std::size_t count) const {
  if (offset_ + count > data_.size())
    AAD_FAIL(ErrorCode::kCorruptData, "ByteReader read past end of data");
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[offset_++];
}

std::uint16_t ByteReader::u16() {
  const auto lo = u8();
  const auto hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::u32() {
  const auto lo = u16();
  const auto hi = u16();
  return static_cast<std::uint32_t>(lo) |
         (static_cast<std::uint32_t>(hi) << 16);
}

std::uint64_t ByteReader::u64() {
  const auto lo = u32();
  const auto hi = u32();
  return static_cast<std::uint64_t>(lo) |
         (static_cast<std::uint64_t>(hi) << 32);
}

Bytes ByteReader::bytes(std::size_t count) {
  require(count);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
            data_.begin() + static_cast<std::ptrdiff_t>(offset_ + count));
  offset_ += count;
  return out;
}

std::string ByteReader::fixed_string(std::size_t width) {
  const Bytes raw = bytes(width);
  const auto end = std::find(raw.begin(), raw.end(), Byte{0});
  return std::string(raw.begin(), end);
}

void ByteReader::skip(std::size_t count) {
  require(count);
  offset_ += count;
}

}  // namespace aad
