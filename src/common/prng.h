// Deterministic PRNG (xoshiro256**) used by workload generators, test data
// and randomized placement.  Seeded explicitly everywhere so experiments are
// reproducible run to run; never std::random_device.
#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>

namespace aad {

class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    // splitmix64 seeding to fill the xoshiro state from one word.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using rejection-free multiply-shift.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double probability_true) noexcept {
    return next_double() < probability_true;
  }

  // UniformRandomBitGenerator interface for <algorithm> shuffles.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace aad
