// Minimal leveled logger.  Off by default (kWarn) so benches stay quiet;
// examples raise it to kInfo to narrate the co-processor's activity.
#pragma once

#include <sstream>
#include <string>

namespace aad::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide threshold; messages below it are discarded.
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

void write(Level level, const std::string& message);

namespace detail {
class LineLogger {
 public:
  explicit LineLogger(Level level) : level_(level) {}
  ~LineLogger() { write(level_, stream_.str()); }
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;

  template <typename T>
  LineLogger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace aad::log

#define AAD_LOG(level)                                        \
  if (::aad::log::Level::level < ::aad::log::threshold()) {   \
  } else                                                      \
    ::aad::log::detail::LineLogger(::aad::log::Level::level)
