// ByteBuffer: growable byte container with little-endian scalar packing,
// shared by the bitstream writer/reader, ROM image and PCI payloads.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace aad {

using Byte = std::uint8_t;
using Bytes = std::vector<Byte>;
using ByteSpan = std::span<const Byte>;

/// Append-only little-endian serializer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes initial) : data_(std::move(initial)) {}

  void u8(std::uint8_t v) { data_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(ByteSpan span) { data_.insert(data_.end(), span.begin(), span.end()); }
  /// Fixed-width string field, zero padded / truncated to `width`.
  void fixed_string(const std::string& s, std::size_t width);

  std::size_t size() const noexcept { return data_.size(); }
  const Bytes& data() const noexcept { return data_; }
  Bytes take() && { return std::move(data_); }

  /// Patch a previously written u32 at `offset` (e.g. length prologues).
  void patch_u32(std::size_t offset, std::uint32_t v);

 private:
  Bytes data_;
};

/// Cursor-based little-endian deserializer over a borrowed span.
/// Throws kCorruptData when a read runs past the end.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes bytes(std::size_t count);
  std::string fixed_string(std::size_t width);

  std::size_t offset() const noexcept { return offset_; }
  std::size_t remaining() const noexcept { return data_.size() - offset_; }
  bool at_end() const noexcept { return offset_ == data_.size(); }
  void skip(std::size_t count);

 private:
  void require(std::size_t count) const;

  ByteSpan data_;
  std::size_t offset_ = 0;
};

}  // namespace aad
