#include "common/crc32.h"

#include <array>

namespace aad {
namespace {

// Table generated at static-init time from the reflected IEEE polynomial.
std::array<std::uint32_t, 256> make_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() noexcept {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

void Crc32::update(Byte b) noexcept {
  state_ = table()[(state_ ^ b) & 0xFFu] ^ (state_ >> 8);
}

void Crc32::update(ByteSpan data) noexcept {
  for (Byte b : data) update(b);
}

}  // namespace aad
