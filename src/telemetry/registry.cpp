#include "telemetry/registry.h"

#include "common/error.h"

namespace aad::telemetry {

Counter& Registry::counter(std::string_view name) {
  for (const auto& entry : counters_)
    if (entry.name == name) return *entry.metric;
  AAD_REQUIRE(find_gauge(name) == nullptr,
              "metric already registered as a gauge");
  counters_.push_back({std::string(name), std::make_unique<Counter>()});
  return *counters_.back().metric;
}

Gauge& Registry::gauge(std::string_view name) {
  for (const auto& entry : gauges_)
    if (entry.name == name) return *entry.metric;
  AAD_REQUIRE(find_counter(name) == nullptr,
              "metric already registered as a counter");
  gauges_.push_back({std::string(name), std::make_unique<Gauge>()});
  return *gauges_.back().metric;
}

const Counter* Registry::find_counter(std::string_view name) const noexcept {
  for (const auto& entry : counters_)
    if (entry.name == name) return entry.metric.get();
  return nullptr;
}

const Gauge* Registry::find_gauge(std::string_view name) const noexcept {
  for (const auto& entry : gauges_)
    if (entry.name == name) return entry.metric.get();
  return nullptr;
}

std::vector<MetricSample> Registry::snapshot() const {
  std::vector<MetricSample> samples;
  samples.reserve(size());
  for (const auto& entry : counters_) {
    MetricSample s;
    s.name = entry.name;
    s.kind = MetricKind::kCounter;
    s.value = entry.metric->value();
    samples.push_back(std::move(s));
  }
  for (const auto& entry : gauges_) {
    MetricSample s;
    s.name = entry.name;
    s.kind = MetricKind::kGauge;
    s.value = static_cast<std::uint64_t>(entry.metric->value());
    s.high_water = entry.metric->high_water();
    samples.push_back(std::move(s));
  }
  return samples;
}

void Registry::reset() noexcept {
  for (const auto& entry : counters_) entry.metric->value_ = 0;
  for (const auto& entry : gauges_) {
    entry.metric->value_ = 0;
    entry.metric->high_water_ = 0;
  }
}

}  // namespace aad::telemetry
