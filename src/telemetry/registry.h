// Perf-counter registry: named, per-card monotonic counters and gauges.
//
// Modeled on the hardware-counter idiom (a perf PMU exposes a flat
// namespace of named events; a driver registers its counter block once and
// the tooling enumerates it without knowing the emitting code): each
// subsystem registers its counters at construction against the registry its
// card (or fleet) owns, keeps the returned handle, and bumps it on the hot
// path — one pointer-indirect integer add, no lookup, no lock.  The
// ad-hoc stat fields that used to live on Mcu/CoprocessorServer/
// CoprocessorFleet are now thin snapshot views over these handles
// (McuStats/ServerStats/FleetStats are built by reading the registry), so
// any tool can walk every counter on a card with snapshot() and never
// learn a new struct when a subsystem grows a metric.
//
// Kinds:
//   * Counter — monotonic u64.  add(n) only; SimTime totals ride as
//     picoseconds (add_time), so "hidden-reconfig time" is a counter too.
//   * Gauge   — instantaneous i64 level with a high-water mark (queue
//     depths).  set()/adjust() move the level; the high-water only rises.
//
// Threading follows the simulator's ownership discipline (sim/scheduler.h):
// a registry is single-owner state — a card's registry is only touched by
// whichever thread is running that card's shard, the fleet's only by the
// coordination thread — so there is no internal locking, and reset()/
// snapshot() are only legal while the owning engine is quiescent.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace aad::telemetry {

/// Monotonic event count (or picosecond total).  Handles stay valid and
/// stable for the registry's lifetime.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  /// Accumulate a simulated duration as picoseconds.
  void add_time(sim::SimTime delta) noexcept {
    value_ += static_cast<std::uint64_t>(delta.picoseconds());
  }
  std::uint64_t value() const noexcept { return value_; }
  /// The accumulated picoseconds, as a duration.
  sim::SimTime time() const noexcept {
    return sim::SimTime::ps(static_cast<std::int64_t>(value_));
  }

 private:
  friend class Registry;
  std::uint64_t value_ = 0;
};

/// Instantaneous level plus its high-water mark.
class Gauge {
 public:
  void set(std::int64_t level) noexcept {
    value_ = level;
    if (level > high_water_) high_water_ = level;
  }
  void adjust(std::int64_t delta) noexcept { set(value_ + delta); }
  std::int64_t value() const noexcept { return value_; }
  std::int64_t high_water() const noexcept { return high_water_; }

 private:
  friend class Registry;
  std::int64_t value_ = 0;
  std::int64_t high_water_ = 0;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge };

/// One enumerated metric: a counter's value, or a gauge's level and
/// high-water mark.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;       ///< counter value, or gauge level
  std::int64_t high_water = 0;   ///< gauges only
};

class Registry {
 public:
  /// Get-or-register: the first call under `name` creates the metric, later
  /// calls return the same handle (two subsystems may share a counter).
  /// Registering a name under the other kind is a programming error.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// Probe without registering (nullptr when absent) — the "enumerate a
  /// card you didn't build" path, alongside snapshot().
  const Counter* find_counter(std::string_view name) const noexcept;
  const Gauge* find_gauge(std::string_view name) const noexcept;

  /// Every metric, in registration order.
  std::vector<MetricSample> snapshot() const;

  /// Zero every value and high-water mark; registrations (names, handles)
  /// survive, so held handles stay valid.
  void reset() noexcept;

  std::size_t size() const noexcept {
    return counters_.size() + gauges_.size();
  }

 private:
  template <typename T>
  struct Entry {
    std::string name;
    std::unique_ptr<T> metric;  ///< heap slot: handle addresses are stable
  };
  std::vector<Entry<Counter>> counters_;  ///< registration order
  std::vector<Entry<Gauge>> gauges_;
};

}  // namespace aad::telemetry
