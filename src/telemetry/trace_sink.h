// Chrome-trace sink: lifecycle spans recorded in sim-time, exported as
// trace-event JSON that chrome://tracing and Perfetto open directly.
//
// The sink is a tree of tracks.  A *process* groups one pipeline instance
// (one fleet, or one bare server) and a *track* is one serialized resource
// lane inside it — per card: the PCI bus, the config engine, the fabric,
// and the batch-hold lane; per fleet: the dispatch/fault lane.  Components
// append complete spans ("X" events) and instants ("i") to their own
// track; begin/end pairs never cross the process boundary, so a track's
// spans mirror exactly the occupancy windows the simulator booked.
//
// Concurrency contract (the same single-owner discipline as sim/scheduler.h
// and telemetry/registry.h): a track is only ever appended to by the thread
// currently running its card's shard (card lanes) or the coordination
// thread (fleet lanes), so recording takes no lock.  Under the
// ParallelScheduler each card's lanes are its private per-shard buffers;
// merged()/write_chrome_trace() merge them AFTER the run by the total
// order (timestamp, process, track, per-track sequence), which no thread
// interleaving can perturb — threads=1 and threads=N runs of the same
// open-loop workload emit identical sorted span sets
// (tests/test_parallel.cpp holds that line).
//
// Everything is pointer-gated: a component without an attached track skips
// recording on a single branch, so the off path costs nothing and the
// gated bench baselines stay byte-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.h"

namespace aad::telemetry {

/// One trace event: a complete span (duration >= 0) or an instant.
struct TraceEvent {
  std::int64_t ts_ps = 0;    ///< sim-time begin, picoseconds
  std::int64_t dur_ps = -1;  ///< span duration; negative = instant event
  std::uint32_t process = 0;  ///< Chrome pid (pipeline instance)
  std::uint32_t track = 0;    ///< Chrome tid (resource lane)
  std::uint64_t seq = 0;      ///< per-track posting order (merge tie-break)
  const char* category = "";  ///< "pci" | "engine" | "fabric" | ...
  const char* name = "";
  // Args (negative = absent): which request/client/function/card the span
  // belongs to, so a Perfetto query can slice by any of them.
  std::int64_t request = -1;
  std::int64_t client = -1;
  std::int64_t function = -1;
  std::int64_t card = -1;

  bool is_span() const noexcept { return dur_ps >= 0; }
};

/// One resource lane.  Append-only; created via TraceSink::add_track.
class TraceTrack {
 public:
  /// `card` >= 0 overrides the track's default card arg (the fleet's
  /// dispatch lane stamps which card each decision picked).
  void span(const char* category, const char* name, sim::SimTime begin,
            sim::SimTime end, std::int64_t request = -1,
            std::int64_t client = -1, std::int64_t function = -1,
            std::int64_t card = -1);
  void instant(const char* category, const char* name, sim::SimTime at,
               std::int64_t request = -1, std::int64_t client = -1,
               std::int64_t function = -1, std::int64_t card = -1);

  std::size_t events() const noexcept { return events_.size(); }

 private:
  friend class TraceSink;
  TraceTrack(std::uint32_t process, std::uint32_t track, std::int64_t card)
      : process_(process), track_(track), card_(card) {}

  std::uint32_t process_;
  std::uint32_t track_;
  std::int64_t card_;  ///< stamped into every event (-1 = no card)
  std::uint64_t next_seq_ = 0;
  std::vector<TraceEvent> events_;
};

class TraceSink {
 public:
  /// Register a pipeline instance ("fleet", "card 2", "F1 cards=4/card 0").
  /// Returns its Chrome pid.  Instances are never reused: a bench that runs
  /// ten fleets registers ten processes, so each run's spans stay on their
  /// own monotonic tracks.
  std::uint32_t add_process(std::string name);

  /// Register a lane under `process`; `card` (when >= 0) is stamped into
  /// every event the lane records.  The returned track lives as long as
  /// the sink; the caller keeps the raw pointer.
  TraceTrack* add_track(std::uint32_t process, std::string name,
                        std::int64_t card = -1);

  /// Every event across every track, sorted by the deterministic total
  /// order (ts, process, track, seq).
  std::vector<TraceEvent> merged() const;

  std::size_t event_count() const noexcept;
  bool empty() const noexcept { return event_count() == 0; }

  /// Write `{"traceEvents": [...]}` (metadata names + sorted events, ts/dur
  /// in microseconds); returns false on I/O failure.
  bool write_chrome_trace(const char* path) const;

 private:
  struct Process {
    std::uint32_t pid;
    std::string name;
    std::uint32_t next_track = 0;
  };
  struct Track {
    std::string name;
    std::unique_ptr<TraceTrack> track;  ///< stable address for recorders
  };
  std::vector<Process> processes_;
  std::vector<Track> tracks_;
};

}  // namespace aad::telemetry
