#include "telemetry/trace_sink.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <tuple>

#include "common/error.h"

namespace aad::telemetry {

void TraceTrack::span(const char* category, const char* name,
                      sim::SimTime begin, sim::SimTime end,
                      std::int64_t request, std::int64_t client,
                      std::int64_t function, std::int64_t card) {
  AAD_REQUIRE(end >= begin, "trace span ends before it begins");
  TraceEvent e;
  e.ts_ps = begin.picoseconds();
  e.dur_ps = (end - begin).picoseconds();
  e.process = process_;
  e.track = track_;
  e.seq = next_seq_++;
  e.category = category;
  e.name = name;
  e.request = request;
  e.client = client;
  e.function = function;
  e.card = card >= 0 ? card : card_;
  events_.push_back(e);
}

void TraceTrack::instant(const char* category, const char* name,
                         sim::SimTime at, std::int64_t request,
                         std::int64_t client, std::int64_t function,
                         std::int64_t card) {
  TraceEvent e;
  e.ts_ps = at.picoseconds();
  e.dur_ps = -1;
  e.process = process_;
  e.track = track_;
  e.seq = next_seq_++;
  e.category = category;
  e.name = name;
  e.request = request;
  e.client = client;
  e.function = function;
  e.card = card >= 0 ? card : card_;
  events_.push_back(e);
}

std::uint32_t TraceSink::add_process(std::string name) {
  const auto pid = static_cast<std::uint32_t>(processes_.size() + 1);
  processes_.push_back({pid, std::move(name), 0});
  return pid;
}

TraceTrack* TraceSink::add_track(std::uint32_t process, std::string name,
                                 std::int64_t card) {
  AAD_REQUIRE(process >= 1 && process <= processes_.size(),
              "trace track added under unregistered process");
  auto& owner = processes_[process - 1];
  const std::uint32_t tid = owner.next_track++;
  tracks_.push_back(
      {std::move(name),
       std::unique_ptr<TraceTrack>(new TraceTrack(process, tid, card))});
  return tracks_.back().track.get();
}

std::vector<TraceEvent> TraceSink::merged() const {
  std::vector<TraceEvent> all;
  all.reserve(event_count());
  for (const auto& t : tracks_)
    all.insert(all.end(), t.track->events_.begin(), t.track->events_.end());
  // (ts, process, track, seq) is a total order: seq is unique per track, so
  // no comparator tie survives — the merge is identical however the
  // per-shard buffers were filled.
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.ts_ps, a.process, a.track, a.seq) <
                     std::tie(b.ts_ps, b.process, b.track, b.seq);
            });
  return all;
}

std::size_t TraceSink::event_count() const noexcept {
  std::size_t n = 0;
  for (const auto& t : tracks_) n += t.track->events_.size();
  return n;
}

namespace {

// Minimal JSON string escape — track/process names are ASCII identifiers,
// but keep the writer honest anyway.
void write_escaped(std::FILE* f, const std::string& s) {
  std::fputc('"', f);
  for (const char c : s) {
    switch (c) {
      case '"': std::fputs("\\\"", f); break;
      case '\\': std::fputs("\\\\", f); break;
      case '\n': std::fputs("\\n", f); break;
      case '\t': std::fputs("\\t", f); break;
      default: std::fputc(c, f); break;
    }
  }
  std::fputc('"', f);
}

// Chrome trace timestamps are microseconds; emit fixed six-decimal
// microseconds so every distinct picosecond stays distinct in the file.
void write_us(std::FILE* f, std::int64_t ps) {
  const char* sign = ps < 0 ? "-" : "";
  const std::uint64_t mag = ps < 0 ? static_cast<std::uint64_t>(-ps)
                                   : static_cast<std::uint64_t>(ps);
  std::fprintf(f, "%s%" PRIu64 ".%06" PRIu64, sign, mag / 1000000,
               mag % 1000000);
}

void write_args(std::FILE* f, const TraceEvent& e) {
  std::fputs(",\"args\":{", f);
  bool first = true;
  const auto arg = [&](const char* key, std::int64_t value) {
    if (value < 0) return;
    if (!first) std::fputc(',', f);
    first = false;
    std::fprintf(f, "\"%s\":%" PRId64, key, value);
  };
  arg("request", e.request);
  arg("client", e.client);
  arg("function", e.function);
  arg("card", e.card);
  std::fputc('}', f);
}

}  // namespace

bool TraceSink::write_chrome_trace(const char* path) const {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;

  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", f);
  bool first = true;
  const auto sep = [&] {
    if (!first) std::fputc(',', f);
    first = false;
    std::fputs("\n", f);
  };

  // Metadata first: process and thread names, so Perfetto labels the lanes.
  for (const auto& p : processes_) {
    sep();
    std::fprintf(f, "{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
                    "\"args\":{\"name\":",
                 p.pid);
    write_escaped(f, p.name);
    std::fputs("}}", f);
  }
  for (const auto& t : tracks_) {
    sep();
    std::fprintf(f, "{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                    "\"name\":\"thread_name\",\"args\":{\"name\":",
                 t.track->process_, t.track->track_);
    write_escaped(f, t.name);
    std::fputs("}}", f);
  }

  for (const TraceEvent& e : merged()) {
    sep();
    std::fprintf(f, "{\"name\":\"%s\",\"cat\":\"%s\",", e.name, e.category);
    if (e.is_span()) {
      std::fputs("\"ph\":\"X\",\"ts\":", f);
      write_us(f, e.ts_ps);
      std::fputs(",\"dur\":", f);
      write_us(f, e.dur_ps);
    } else {
      std::fputs("\"ph\":\"i\",\"s\":\"t\",\"ts\":", f);
      write_us(f, e.ts_ps);
    }
    std::fprintf(f, ",\"pid\":%u,\"tid\":%u", e.process, e.track);
    write_args(f, e);
    std::fputc('}', f);
  }

  std::fputs("\n]}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

}  // namespace aad::telemetry
