// Internal: per-codec factory hooks used by make_codec().
#pragma once

#include <memory>

#include "compress/codec.h"

namespace aad::compress::detail {

std::unique_ptr<Codec> make_null();
std::unique_ptr<Codec> make_rle();
std::unique_ptr<Codec> make_lzss();
std::unique_ptr<Codec> make_huffman();
std::unique_ptr<Codec> make_golomb();
std::unique_ptr<Codec> make_frame_delta(std::size_t frame_bytes);
std::unique_ptr<Codec> make_delta_golomb(std::size_t frame_bytes);

/// Shared by kRle and kFrameDelta: raw RLE encode/decode of a byte stream
/// (no container header).
Bytes rle_encode(ByteSpan raw);

/// Incremental RLE decoder over a borrowed compressed span.
class RleDecoder {
 public:
  explicit RleDecoder(ByteSpan data) : data_(data) {}

  /// Produce up to out.size() bytes; returns count (0 = end).
  std::size_t read(std::span<Byte> out);

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;         // cursor into data_
  std::size_t run_left_ = 0;    // bytes remaining in current op
  bool run_is_repeat_ = false;
  Byte repeat_byte_ = 0;
};

}  // namespace aad::compress::detail
