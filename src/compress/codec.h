// Bitstream compression codecs.
//
// The paper stores *compressed* configuration bit-streams in ROM (§2.2) and
// the configuration module "decompresses the compressed bit-stream window by
// window" (§2.3).  Every codec here therefore provides, besides one-shot
// compress, a *pull-based streaming decompressor* whose working set is
// bounded (ring buffers / previous-frame history), so the configuration
// engine can produce one frame-sized window at a time without ever
// materializing the full bitstream in MCU RAM.
//
// Container format (shared by all codecs): u32 raw_size (LE) followed by the
// codec-specific stream.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytebuffer.h"

namespace aad::compress {

enum class CodecId : std::uint8_t {
  kNull = 0,       ///< stored; baseline
  kRle = 1,        ///< byte run-length
  kLzss = 2,       ///< LZSS, 4 KiB window, 3..18 byte matches
  kHuffman = 3,    ///< canonical byte Huffman
  kGolomb = 4,     ///< Rice-coded zero runs + literals (sparse streams)
  kFrameDelta = 5, ///< XOR with previous frame, then RLE (paper §4 open
                   ///< problem: exploits inter-frame CLB symmetry)
  kDeltaGolomb = 6,///< XOR with previous frame, then Rice-coded zero runs
                   ///< (the open problem pushed further; see
                   ///< bench_compression's ablation)
  kAuto = 255,     ///< not a codec: provisioning-time sentinel asking the
                   ///< MCU to trial-compress with every real codec and pick
                   ///< the one with the cheapest modeled load (mcu::Mcu)
};

const char* to_string(CodecId id) noexcept;

/// Inverse of to_string, accepting every real codec name plus "auto".
/// Throws ErrorCode::kInvalidArgument on an unknown name.
CodecId codec_from_string(const std::string& name);

/// Pull-based decompressor.  read() fills as much of `out` as it can and
/// returns the byte count produced; 0 means end of stream.
class DecompressStream {
 public:
  virtual ~DecompressStream() = default;
  virtual std::size_t read(std::span<Byte> out) = 0;

  /// Total bytes this stream will produce (from the container header).
  virtual std::size_t raw_size() const = 0;
};

class Codec {
 public:
  virtual ~Codec() = default;
  virtual CodecId id() const noexcept = 0;
  virtual std::string name() const = 0;

  /// One-shot compression (host side, during function provisioning).
  virtual Bytes compress(ByteSpan raw) const = 0;

  /// Open a streaming decompressor over `compressed` (borrowed; must
  /// outlive the stream).
  virtual std::unique_ptr<DecompressStream> decompress_stream(
      ByteSpan compressed) const = 0;

  /// Convenience: full decompression through the streaming path (so tests
  /// of this method exercise the same code the configuration module uses).
  Bytes decompress(ByteSpan compressed) const;
};

/// Factory.  `frame_bytes` parameterizes kFrameDelta and kDeltaGolomb (the
/// window/frame size of the target device); other codecs ignore it.
/// kAuto is a selection policy, not a codec — asking for it throws.
std::unique_ptr<Codec> make_codec(CodecId id, std::size_t frame_bytes = 0);

/// All real codec ids (kAuto excluded), in presentation order for
/// experiments — and the candidate set the auto pick chooses from.
std::vector<CodecId> all_codec_ids();

/// MCU-side decompression cost model (configuration-module cycles per
/// *output* byte).  Calibrated to the relative work each decoder does:
/// table-free copies are cheapest, bit-serial entropy coders dearest.
double decompress_cycles_per_byte(CodecId id) noexcept;

}  // namespace aad::compress
