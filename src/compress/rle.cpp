// Null (stored) codec and byte run-length codec.
//
// RLE op format: control byte c —
//   c < 0x80 : literal run, c+1 bytes follow (1..128)
//   c >= 0x80: repeat run, byte follows, repeated (c-0x80)+3 times (3..130)
#include <algorithm>

#include "compress/detail.h"

namespace aad::compress::detail {
namespace {

constexpr std::size_t kMaxLiteral = 128;
constexpr std::size_t kMinRepeat = 3;
constexpr std::size_t kMaxRepeat = 130;

// ---------------------------------------------------------------------------
// Null codec
// ---------------------------------------------------------------------------

class NullStream final : public DecompressStream {
 public:
  NullStream(ByteSpan payload, std::size_t raw_size)
      : payload_(payload), raw_size_(raw_size) {
    if (payload.size() != raw_size)
      AAD_FAIL(ErrorCode::kCorruptData, "stored payload length mismatch");
  }

  std::size_t read(std::span<Byte> out) override {
    const std::size_t n = std::min(out.size(), payload_.size() - pos_);
    std::copy_n(payload_.begin() + static_cast<std::ptrdiff_t>(pos_), n,
                out.begin());
    pos_ += n;
    return n;
  }

  std::size_t raw_size() const override { return raw_size_; }

 private:
  ByteSpan payload_;
  std::size_t raw_size_;
  std::size_t pos_ = 0;
};

class NullCodec final : public Codec {
 public:
  CodecId id() const noexcept override { return CodecId::kNull; }
  std::string name() const override { return "null"; }

  Bytes compress(ByteSpan raw) const override {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(raw.size()));
    w.bytes(raw);
    return std::move(w).take();
  }

  std::unique_ptr<DecompressStream> decompress_stream(
      ByteSpan compressed) const override {
    ByteReader r(compressed);
    const std::size_t raw_size = r.u32();
    return std::make_unique<NullStream>(compressed.subspan(4), raw_size);
  }
};

// ---------------------------------------------------------------------------
// RLE codec
// ---------------------------------------------------------------------------

class RleStream final : public DecompressStream {
 public:
  RleStream(ByteSpan payload, std::size_t raw_size)
      : decoder_(payload), raw_size_(raw_size) {}

  std::size_t read(std::span<Byte> out) override {
    const std::size_t want =
        std::min(out.size(), raw_size_ - produced_);
    const std::size_t got = decoder_.read(out.subspan(0, want));
    produced_ += got;
    return got;
  }

  std::size_t raw_size() const override { return raw_size_; }

 private:
  RleDecoder decoder_;
  std::size_t raw_size_;
  std::size_t produced_ = 0;
};

class RleCodec final : public Codec {
 public:
  CodecId id() const noexcept override { return CodecId::kRle; }
  std::string name() const override { return "rle"; }

  Bytes compress(ByteSpan raw) const override {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(raw.size()));
    w.bytes(rle_encode(raw));
    return std::move(w).take();
  }

  std::unique_ptr<DecompressStream> decompress_stream(
      ByteSpan compressed) const override {
    ByteReader r(compressed);
    const std::size_t raw_size = r.u32();
    return std::make_unique<RleStream>(compressed.subspan(4), raw_size);
  }
};

}  // namespace

Bytes rle_encode(ByteSpan raw) {
  Bytes out;
  std::size_t i = 0;
  std::size_t literal_start = 0;
  auto flush_literals = [&](std::size_t end) {
    std::size_t start = literal_start;
    while (start < end) {
      const std::size_t n = std::min(kMaxLiteral, end - start);
      out.push_back(static_cast<Byte>(n - 1));
      out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(start),
                 raw.begin() + static_cast<std::ptrdiff_t>(start + n));
      start += n;
    }
  };
  while (i < raw.size()) {
    std::size_t run = 1;
    while (i + run < raw.size() && raw[i + run] == raw[i] &&
           run < kMaxRepeat)
      ++run;
    if (run >= kMinRepeat) {
      flush_literals(i);
      out.push_back(static_cast<Byte>(0x80 + (run - kMinRepeat)));
      out.push_back(raw[i]);
      i += run;
      literal_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(raw.size());
  return out;
}

std::size_t RleDecoder::read(std::span<Byte> out) {
  std::size_t produced = 0;
  while (produced < out.size()) {
    if (run_left_ == 0) {
      if (pos_ >= data_.size()) break;  // end of ops
      const Byte control = data_[pos_++];
      if (control < 0x80) {
        run_is_repeat_ = false;
        run_left_ = static_cast<std::size_t>(control) + 1;
        if (pos_ + run_left_ > data_.size())
          AAD_FAIL(ErrorCode::kCorruptData, "RLE literal run truncated");
      } else {
        run_is_repeat_ = true;
        run_left_ = static_cast<std::size_t>(control - 0x80) + kMinRepeat;
        if (pos_ >= data_.size())
          AAD_FAIL(ErrorCode::kCorruptData, "RLE repeat byte missing");
        repeat_byte_ = data_[pos_++];
      }
    }
    const std::size_t n = std::min(run_left_, out.size() - produced);
    if (run_is_repeat_) {
      std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(produced), n,
                  repeat_byte_);
    } else {
      std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(pos_), n,
                  out.begin() + static_cast<std::ptrdiff_t>(produced));
      pos_ += n;
    }
    run_left_ -= n;
    produced += n;
  }
  return produced;
}

std::unique_ptr<Codec> make_null() { return std::make_unique<NullCodec>(); }
std::unique_ptr<Codec> make_rle() { return std::make_unique<RleCodec>(); }

}  // namespace aad::compress::detail
