// LZSS with a 4 KiB sliding window.
//
// Token groups: one flag byte describes the next 8 tokens MSB-first
// (1 = literal byte, 0 = match).  A match is two bytes:
//   byte0 = offset[11:4], byte1 = offset[3:0] << 4 | (length - 3)
// with offset in 1..4096 (distance back from the current position, stored
// minus 1) and length in 3..18.
//
// The compressor uses a 3-byte-prefix hash chain with bounded probe depth —
// the standard speed/ratio trade-off point for this family.
#include <algorithm>
#include <array>

#include "compress/detail.h"

namespace aad::compress::detail {
namespace {

constexpr std::size_t kWindow = 4096;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 18;
constexpr int kMaxProbes = 64;
constexpr std::size_t kHashSize = 1u << 15;

std::size_t hash3(const Byte* p) noexcept {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - 15);
}

class LzssStream final : public DecompressStream {
 public:
  LzssStream(ByteSpan payload, std::size_t raw_size)
      : payload_(payload), raw_size_(raw_size) {
    ring_.fill(0);
  }

  std::size_t read(std::span<Byte> out) override {
    std::size_t produced = 0;
    while (produced < out.size() && emitted_ < raw_size_) {
      if (match_left_ > 0) {
        // Continue an in-flight match copy.
        const Byte b = ring_[match_pos_ & (kWindow - 1)];
        ++match_pos_;
        --match_left_;
        emit(out, produced, b);
        continue;
      }
      if (flag_bits_ == 0) {
        flags_ = next_byte();
        flag_bits_ = 8;
      }
      const bool literal = (flags_ & 0x80) != 0;
      flags_ = static_cast<Byte>(flags_ << 1);
      --flag_bits_;
      if (literal) {
        emit(out, produced, next_byte());
      } else {
        const Byte b0 = next_byte();
        const Byte b1 = next_byte();
        const std::size_t offset =
            ((static_cast<std::size_t>(b0) << 4) | (b1 >> 4)) + 1;
        match_left_ = static_cast<std::size_t>(b1 & 0x0F) + kMinMatch;
        if (offset > write_pos_)
          AAD_FAIL(ErrorCode::kCorruptData, "LZSS offset before stream start");
        match_pos_ = write_pos_ - offset;
      }
    }
    return produced;
  }

  std::size_t raw_size() const override { return raw_size_; }

 private:
  Byte next_byte() {
    if (pos_ >= payload_.size())
      AAD_FAIL(ErrorCode::kCorruptData, "LZSS stream truncated");
    return payload_[pos_++];
  }

  void emit(std::span<Byte> out, std::size_t& produced, Byte b) {
    out[produced++] = b;
    ring_[write_pos_ & (kWindow - 1)] = b;
    ++write_pos_;
    ++emitted_;
  }

  ByteSpan payload_;
  std::size_t raw_size_;
  std::size_t pos_ = 0;
  std::size_t emitted_ = 0;
  std::array<Byte, kWindow> ring_;
  std::size_t write_pos_ = 0;   // monotonically increasing; masked for ring
  std::size_t match_pos_ = 0;
  std::size_t match_left_ = 0;
  Byte flags_ = 0;
  unsigned flag_bits_ = 0;
};

class LzssCodec final : public Codec {
 public:
  CodecId id() const noexcept override { return CodecId::kLzss; }
  std::string name() const override { return "lzss"; }

  Bytes compress(ByteSpan raw) const override {
    ByteWriter header;
    header.u32(static_cast<std::uint32_t>(raw.size()));
    Bytes out = std::move(header).take();

    std::vector<std::int64_t> head(kHashSize, -1);
    std::vector<std::int64_t> chain(raw.size(), -1);

    Bytes group;          // up to 8 tokens
    Byte flags = 0;
    unsigned token_count = 0;
    auto flush_group = [&] {
      if (token_count == 0) return;
      flags = static_cast<Byte>(flags << (8 - token_count));
      out.push_back(flags);
      out.insert(out.end(), group.begin(), group.end());
      group.clear();
      flags = 0;
      token_count = 0;
    };

    std::size_t i = 0;
    while (i < raw.size()) {
      std::size_t best_len = 0;
      std::size_t best_off = 0;
      if (i + kMinMatch <= raw.size()) {
        const std::size_t h = hash3(&raw[i]);
        std::int64_t cand = head[h];
        int probes = 0;
        while (cand >= 0 && probes++ < kMaxProbes &&
               i - static_cast<std::size_t>(cand) <= kWindow) {
          const std::size_t c = static_cast<std::size_t>(cand);
          const std::size_t limit = std::min(kMaxMatch, raw.size() - i);
          std::size_t len = 0;
          while (len < limit && raw[c + len] == raw[i + len]) ++len;
          if (len > best_len) {
            best_len = len;
            best_off = i - c;
            if (len == kMaxMatch) break;
          }
          cand = chain[c];
        }
      }

      if (best_len >= kMinMatch) {
        // Match token.
        flags = static_cast<Byte>(flags << 1);  // 0 bit
        ++token_count;
        const std::size_t stored_off = best_off - 1;
        group.push_back(static_cast<Byte>(stored_off >> 4));
        group.push_back(static_cast<Byte>(((stored_off & 0x0F) << 4) |
                                          (best_len - kMinMatch)));
        for (std::size_t k = 0; k < best_len; ++k) {
          if (i + kMinMatch <= raw.size()) {
            const std::size_t h = hash3(&raw[i]);
            chain[i] = head[h];
            head[h] = static_cast<std::int64_t>(i);
          }
          ++i;
        }
      } else {
        // Literal token.
        flags = static_cast<Byte>((flags << 1) | 1u);
        ++token_count;
        group.push_back(raw[i]);
        if (i + kMinMatch <= raw.size()) {
          const std::size_t h = hash3(&raw[i]);
          chain[i] = head[h];
          head[h] = static_cast<std::int64_t>(i);
        }
        ++i;
      }
      if (token_count == 8) flush_group();
    }
    flush_group();
    return out;
  }

  std::unique_ptr<DecompressStream> decompress_stream(
      ByteSpan compressed) const override {
    ByteReader r(compressed);
    const std::size_t raw_size = r.u32();
    return std::make_unique<LzssStream>(compressed.subspan(4), raw_size);
  }
};

}  // namespace

std::unique_ptr<Codec> make_lzss() { return std::make_unique<LzssCodec>(); }

}  // namespace aad::compress::detail
