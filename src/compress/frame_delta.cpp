// Frame-delta codec: the paper's §4 open problem made concrete.
//
// Consecutive configuration frames of a column-regular fabric are highly
// similar (same CLB layout, repeated LUT dictionary, shared routing
// patterns).  XOR-ing each frame with its predecessor turns that symmetry
// into long zero runs, which plain RLE then collapses.
//
// Header: u32 raw_size, u32 frame_bytes, then RLE ops over the delta
// stream.  The streaming decoder's working set is exactly one frame of
// history — it reconstructs window by window, as §2.3 requires.
#include <algorithm>

#include "compress/detail.h"

namespace aad::compress::detail {
namespace {

class FrameDeltaStream final : public DecompressStream {
 public:
  FrameDeltaStream(ByteSpan payload, std::size_t raw_size,
                   std::size_t frame_bytes)
      : decoder_(payload),
        raw_size_(raw_size),
        history_(frame_bytes, 0) {}

  std::size_t read(std::span<Byte> out) override {
    const std::size_t want = std::min(out.size(), raw_size_ - produced_);
    const std::size_t got = decoder_.read(out.subspan(0, want));
    for (std::size_t i = 0; i < got; ++i) {
      const Byte reconstructed =
          static_cast<Byte>(out[i] ^ history_[history_pos_]);
      out[i] = reconstructed;
      history_[history_pos_] = reconstructed;
      if (++history_pos_ == history_.size()) history_pos_ = 0;
    }
    produced_ += got;
    return got;
  }

  std::size_t raw_size() const override { return raw_size_; }

 private:
  RleDecoder decoder_;
  std::size_t raw_size_;
  std::size_t produced_ = 0;
  Bytes history_;  // previous frame, reconstructed
  std::size_t history_pos_ = 0;
};

class FrameDeltaCodec final : public Codec {
 public:
  explicit FrameDeltaCodec(std::size_t frame_bytes)
      : frame_bytes_(frame_bytes) {
    AAD_REQUIRE(frame_bytes_ > 0, "frame_bytes must be positive");
  }

  CodecId id() const noexcept override { return CodecId::kFrameDelta; }
  std::string name() const override { return "frame-delta"; }

  Bytes compress(ByteSpan raw) const override {
    Bytes delta(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i)
      delta[i] = i >= frame_bytes_
                     ? static_cast<Byte>(raw[i] ^ raw[i - frame_bytes_])
                     : raw[i];
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(raw.size()));
    w.u32(static_cast<std::uint32_t>(frame_bytes_));
    w.bytes(rle_encode(delta));
    return std::move(w).take();
  }

  std::unique_ptr<DecompressStream> decompress_stream(
      ByteSpan compressed) const override {
    ByteReader r(compressed);
    const std::size_t raw_size = r.u32();
    const std::size_t frame_bytes = r.u32();
    if (frame_bytes == 0)
      AAD_FAIL(ErrorCode::kCorruptData, "frame-delta frame_bytes is zero");
    return std::make_unique<FrameDeltaStream>(compressed.subspan(8),
                                              raw_size, frame_bytes);
  }

 private:
  std::size_t frame_bytes_;
};

}  // namespace

std::unique_ptr<Codec> make_frame_delta(std::size_t frame_bytes) {
  return std::make_unique<FrameDeltaCodec>(frame_bytes);
}

}  // namespace aad::compress::detail
