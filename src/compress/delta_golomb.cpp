// Delta+Golomb codec: the §4 open problem taken one step further.
//
// FrameDelta showed that XOR-ing against the previous frame converts
// CLB-column symmetry into zero bytes; this codec replaces the RLE back end
// with Rice-coded zero runs, which encode the (geometrically distributed)
// gaps between surviving difference bytes far more tightly.  The ablation
// in bench_compression compares rle / delta+rle / golomb / delta+golomb to
// isolate the two effects.
//
// Header: u32 raw_size, u32 frame_bytes, u8 k, bit stream of
// rice(zero_run) [literal(8)] tokens over the delta stream.
#include <algorithm>

#include "compress/bitio.h"
#include "compress/detail.h"

namespace aad::compress::detail {
namespace {

void rice_encode(BitWriter& bits, std::uint64_t value, unsigned k) {
  bits.put_unary(value >> k);
  bits.put_bits(value, k);
}

std::uint64_t rice_decode(BitReader& bits, unsigned k) {
  const std::uint64_t q = bits.get_unary();
  return (q << k) | bits.get_bits(k);
}

class DeltaGolombStream final : public DecompressStream {
 public:
  DeltaGolombStream(ByteSpan payload, std::size_t raw_size,
                    std::size_t frame_bytes, unsigned k)
      : bits_(payload),
        raw_size_(raw_size),
        k_(k),
        history_(frame_bytes, 0) {}

  std::size_t read(std::span<Byte> out) override {
    std::size_t produced = 0;
    while (produced < out.size() && emitted_ < raw_size_) {
      Byte delta;
      if (zeros_pending_ > 0) {
        --zeros_pending_;
        delta = 0;
      } else if (literal_pending_) {
        delta = literal_;
        literal_pending_ = false;
      } else {
        zeros_pending_ = rice_decode(bits_, k_);
        if (emitted_ + zeros_pending_ < raw_size_) {
          literal_ = static_cast<Byte>(bits_.get_bits(8));
          literal_pending_ = true;
        }
        continue;
      }
      const Byte reconstructed =
          static_cast<Byte>(delta ^ history_[history_pos_]);
      history_[history_pos_] = reconstructed;
      if (++history_pos_ == history_.size()) history_pos_ = 0;
      out[produced++] = reconstructed;
      ++emitted_;
    }
    return produced;
  }

  std::size_t raw_size() const override { return raw_size_; }

 private:
  BitReader bits_;
  std::size_t raw_size_;
  unsigned k_;
  Bytes history_;
  std::size_t history_pos_ = 0;
  std::size_t emitted_ = 0;
  std::size_t zeros_pending_ = 0;
  Byte literal_ = 0;
  bool literal_pending_ = false;
};

class DeltaGolombCodec final : public Codec {
 public:
  explicit DeltaGolombCodec(std::size_t frame_bytes)
      : frame_bytes_(frame_bytes) {
    AAD_REQUIRE(frame_bytes_ > 0, "frame_bytes must be positive");
  }

  CodecId id() const noexcept override { return CodecId::kDeltaGolomb; }
  std::string name() const override { return "delta-golomb"; }

  Bytes compress(ByteSpan raw) const override {
    Bytes delta(raw.size());
    std::size_t zeros = 0;
    std::size_t nonzeros = 0;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      delta[i] = i >= frame_bytes_
                     ? static_cast<Byte>(raw[i] ^ raw[i - frame_bytes_])
                     : raw[i];
      (delta[i] == 0 ? zeros : nonzeros)++;
    }
    const double mean_run =
        static_cast<double>(zeros) / std::max<std::size_t>(1, nonzeros + 1);
    unsigned k = 0;
    while ((1u << (k + 1)) <= mean_run + 1 && k < 30) ++k;

    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(raw.size()));
    w.u32(static_cast<std::uint32_t>(frame_bytes_));
    w.u8(static_cast<std::uint8_t>(k));
    BitWriter bits;
    std::size_t run = 0;
    for (Byte b : delta) {
      if (b == 0) {
        ++run;
      } else {
        rice_encode(bits, run, k);
        bits.put_bits(b, 8);
        run = 0;
      }
    }
    if (run > 0) rice_encode(bits, run, k);
    w.bytes(bits.finish());
    return std::move(w).take();
  }

  std::unique_ptr<DecompressStream> decompress_stream(
      ByteSpan compressed) const override {
    ByteReader r(compressed);
    const std::size_t raw_size = r.u32();
    const std::size_t frame_bytes = r.u32();
    const unsigned k = r.u8();
    if (frame_bytes == 0 || k > 30)
      AAD_FAIL(ErrorCode::kCorruptData, "delta-golomb header invalid");
    return std::make_unique<DeltaGolombStream>(compressed.subspan(9),
                                               raw_size, frame_bytes, k);
  }

 private:
  std::size_t frame_bytes_;
};

}  // namespace

std::unique_ptr<Codec> make_delta_golomb(std::size_t frame_bytes) {
  return std::make_unique<DeltaGolombCodec>(frame_bytes);
}

}  // namespace aad::compress::detail
