// Rice/Golomb codec for sparse streams.
//
// Configuration planes are mostly zero (unused slots, empty routing), so the
// stream is modeled as zero runs separated by literal non-zero bytes:
//   token := rice(run_length, k) [ literal(8) ]
// The literal is omitted after the final run (the decoder knows raw_size).
// The Rice parameter k is fitted to the mean zero-run length and stored in
// the header: u32 raw_size, u8 k, bit stream.
#include <algorithm>
#include <cmath>

#include "compress/bitio.h"
#include "compress/detail.h"

namespace aad::compress::detail {
namespace {

void rice_encode(BitWriter& bits, std::uint64_t value, unsigned k) {
  bits.put_unary(value >> k);
  bits.put_bits(value, k);
}

std::uint64_t rice_decode(BitReader& bits, unsigned k) {
  const std::uint64_t q = bits.get_unary();
  return (q << k) | bits.get_bits(k);
}

class GolombStream final : public DecompressStream {
 public:
  GolombStream(ByteSpan payload, std::size_t raw_size, unsigned k)
      : bits_(payload), raw_size_(raw_size), k_(k) {}

  std::size_t read(std::span<Byte> out) override {
    std::size_t produced = 0;
    while (produced < out.size() && emitted_ < raw_size_) {
      if (zeros_pending_ > 0) {
        const std::size_t n =
            std::min({zeros_pending_,
                      out.size() - produced,
                      raw_size_ - emitted_});
        std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(produced), n, 0);
        zeros_pending_ -= n;
        produced += n;
        emitted_ += n;
        continue;
      }
      if (literal_pending_) {
        out[produced++] = literal_;
        ++emitted_;
        literal_pending_ = false;
        continue;
      }
      // Next token.
      zeros_pending_ = rice_decode(bits_, k_);
      if (emitted_ + zeros_pending_ < raw_size_) {
        literal_ = static_cast<Byte>(bits_.get_bits(8));
        literal_pending_ = true;
      }
    }
    return produced;
  }

  std::size_t raw_size() const override { return raw_size_; }

 private:
  BitReader bits_;
  std::size_t raw_size_;
  unsigned k_;
  std::size_t emitted_ = 0;
  std::size_t zeros_pending_ = 0;
  Byte literal_ = 0;
  bool literal_pending_ = false;
};

class GolombCodec final : public Codec {
 public:
  CodecId id() const noexcept override { return CodecId::kGolomb; }
  std::string name() const override { return "golomb"; }

  Bytes compress(ByteSpan raw) const override {
    std::size_t zeros = 0;
    std::size_t nonzeros = 0;
    for (Byte b : raw) (b == 0 ? zeros : nonzeros)++;
    const double mean_run =
        static_cast<double>(zeros) / std::max<std::size_t>(1, nonzeros + 1);
    unsigned k = 0;
    while ((1u << (k + 1)) <= mean_run + 1 && k < 30) ++k;

    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(raw.size()));
    w.u8(static_cast<std::uint8_t>(k));
    BitWriter bits;
    std::size_t run = 0;
    for (Byte b : raw) {
      if (b == 0) {
        ++run;
      } else {
        rice_encode(bits, run, k);
        bits.put_bits(b, 8);
        run = 0;
      }
    }
    if (run > 0) rice_encode(bits, run, k);
    w.bytes(bits.finish());
    return std::move(w).take();
  }

  std::unique_ptr<DecompressStream> decompress_stream(
      ByteSpan compressed) const override {
    ByteReader r(compressed);
    const std::size_t raw_size = r.u32();
    const unsigned k = r.u8();
    if (k > 30) AAD_FAIL(ErrorCode::kCorruptData, "Rice parameter invalid");
    return std::make_unique<GolombStream>(compressed.subspan(5), raw_size, k);
  }
};

}  // namespace

std::unique_ptr<Codec> make_golomb() {
  return std::make_unique<GolombCodec>();
}

}  // namespace aad::compress::detail
