// MSB-first bit-level I/O used by the Huffman and Golomb codecs.
#pragma once

#include <cstdint>

#include "common/bytebuffer.h"

namespace aad::compress {

class BitWriter {
 public:
  void put_bit(bool bit) {
    current_ = static_cast<Byte>((current_ << 1) | (bit ? 1u : 0u));
    if (++filled_ == 8) flush_byte();
  }

  /// Write the low `count` bits of `value`, most significant first.
  void put_bits(std::uint64_t value, unsigned count) {
    for (unsigned i = count; i-- > 0;) put_bit((value >> i) & 1u);
  }

  /// Unary: `value` ones then a zero.
  void put_unary(std::uint64_t value) {
    for (std::uint64_t i = 0; i < value; ++i) put_bit(true);
    put_bit(false);
  }

  /// Pad to a byte boundary with zeros and return the buffer.
  Bytes finish() {
    while (filled_ != 0) put_bit(false);
    return std::move(out_);
  }

 private:
  void flush_byte() {
    out_.push_back(current_);
    current_ = 0;
    filled_ = 0;
  }

  Bytes out_;
  Byte current_ = 0;
  unsigned filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(ByteSpan data) : data_(data) {}

  bool get_bit() {
    if (byte_ >= data_.size())
      AAD_FAIL(ErrorCode::kCorruptData, "bit stream truncated");
    const bool bit = (data_[byte_] >> (7 - bit_)) & 1u;
    if (++bit_ == 8) {
      bit_ = 0;
      ++byte_;
    }
    return bit;
  }

  std::uint64_t get_bits(unsigned count) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < count; ++i) v = (v << 1) | (get_bit() ? 1u : 0u);
    return v;
  }

  std::uint64_t get_unary() {
    std::uint64_t v = 0;
    while (get_bit()) ++v;
    return v;
  }

  bool exhausted() const noexcept { return byte_ >= data_.size(); }

 private:
  ByteSpan data_;
  std::size_t byte_ = 0;
  unsigned bit_ = 0;
};

}  // namespace aad::compress
