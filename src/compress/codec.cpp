#include "compress/codec.h"

#include "compress/detail.h"

namespace aad::compress {

const char* to_string(CodecId id) noexcept {
  switch (id) {
    case CodecId::kNull: return "null";
    case CodecId::kRle: return "rle";
    case CodecId::kLzss: return "lzss";
    case CodecId::kHuffman: return "huffman";
    case CodecId::kGolomb: return "golomb";
    case CodecId::kFrameDelta: return "frame-delta";
    case CodecId::kDeltaGolomb: return "delta-golomb";
    case CodecId::kAuto: return "auto";
  }
  return "?";
}

CodecId codec_from_string(const std::string& name) {
  if (name == "auto") return CodecId::kAuto;
  for (const CodecId id : all_codec_ids())
    if (name == to_string(id)) return id;
  AAD_FAIL(ErrorCode::kInvalidArgument, "unknown codec name: " + name);
}

Bytes Codec::decompress(ByteSpan compressed) const {
  auto stream = decompress_stream(compressed);
  Bytes out(stream->raw_size());
  std::size_t produced = 0;
  while (produced < out.size()) {
    const std::size_t got = stream->read(
        std::span<Byte>(out.data() + produced, out.size() - produced));
    if (got == 0)
      AAD_FAIL(ErrorCode::kCorruptData, "decompressor ended early");
    produced += got;
  }
  Byte probe;
  if (stream->read(std::span<Byte>(&probe, 1)) != 0)
    AAD_FAIL(ErrorCode::kCorruptData, "decompressor produced excess data");
  return out;
}

std::unique_ptr<Codec> make_codec(CodecId id, std::size_t frame_bytes) {
  switch (id) {
    case CodecId::kNull: return detail::make_null();
    case CodecId::kRle: return detail::make_rle();
    case CodecId::kLzss: return detail::make_lzss();
    case CodecId::kHuffman: return detail::make_huffman();
    case CodecId::kGolomb: return detail::make_golomb();
    case CodecId::kFrameDelta:
      AAD_REQUIRE(frame_bytes > 0, "frame-delta codec needs frame_bytes");
      return detail::make_frame_delta(frame_bytes);
    case CodecId::kDeltaGolomb:
      AAD_REQUIRE(frame_bytes > 0, "delta-golomb codec needs frame_bytes");
      return detail::make_delta_golomb(frame_bytes);
    case CodecId::kAuto:
      AAD_FAIL(ErrorCode::kInvalidArgument,
               "kAuto is a selection policy, not a codec");
  }
  AAD_FAIL(ErrorCode::kInvalidArgument, "unknown codec id");
}

std::vector<CodecId> all_codec_ids() {
  return {CodecId::kNull,       CodecId::kRle,    CodecId::kLzss,
          CodecId::kHuffman,    CodecId::kGolomb, CodecId::kFrameDelta,
          CodecId::kDeltaGolomb};
}

double decompress_cycles_per_byte(CodecId id) noexcept {
  switch (id) {
    case CodecId::kNull: return 0.25;       // straight copy / DMA
    case CodecId::kRle: return 1.0;         // byte ops
    case CodecId::kFrameDelta: return 1.5;  // RLE + XOR with history
    case CodecId::kLzss: return 2.0;        // window copies
    case CodecId::kGolomb: return 6.0;      // bit-serial
    case CodecId::kHuffman: return 8.0;     // bit-serial + table walk
    case CodecId::kDeltaGolomb: return 7.0; // bit-serial + XOR history
  }
  return 1.0;
}

}  // namespace aad::compress
