// Canonical byte-Huffman codec.
//
// Header: u32 raw_size, then 256 code lengths (one byte each), then the
// MSB-first bit stream.  Codes are canonical (assigned in (length, symbol)
// order) so the decoder rebuilds the codebook from lengths alone.
#include <algorithm>
#include <array>
#include <queue>

#include "compress/bitio.h"
#include "compress/detail.h"

namespace aad::compress::detail {
namespace {

constexpr std::size_t kSymbols = 256;
constexpr unsigned kMaxLen = 58;  // worst case for 2^32 input symbols

struct Codebook {
  std::array<std::uint8_t, kSymbols> lengths{};
  std::array<std::uint64_t, kSymbols> codes{};
};

std::array<std::uint8_t, kSymbols> compute_lengths(
    const std::array<std::uint64_t, kSymbols>& freq) {
  std::array<std::uint8_t, kSymbols> lengths{};
  struct Tree {
    std::uint64_t weight;
    std::vector<std::uint16_t> members;  // leaf symbols in this subtree
  };
  auto cmp = [](const Tree& a, const Tree& b) { return a.weight > b.weight; };
  std::priority_queue<Tree, std::vector<Tree>, decltype(cmp)> heap(cmp);
  for (std::uint16_t s = 0; s < kSymbols; ++s)
    if (freq[s] > 0) heap.push(Tree{freq[s], {s}});
  if (heap.empty()) return lengths;
  if (heap.size() == 1) {
    lengths[heap.top().members[0]] = 1;
    return lengths;
  }
  // Merging subtrees and bumping member depths avoids explicit tree nodes.
  while (heap.size() > 1) {
    Tree a = heap.top();
    heap.pop();
    Tree b = heap.top();
    heap.pop();
    for (std::uint16_t s : a.members) ++lengths[s];
    for (std::uint16_t s : b.members) ++lengths[s];
    a.weight += b.weight;
    a.members.insert(a.members.end(), b.members.begin(), b.members.end());
    heap.push(std::move(a));
  }
  return lengths;
}

Codebook build_codebook(const std::array<std::uint8_t, kSymbols>& lengths) {
  Codebook book;
  book.lengths = lengths;
  // Canonical assignment: sort by (length, symbol).
  std::array<std::uint16_t, kSymbols> order;
  for (std::uint16_t s = 0; s < kSymbols; ++s) order[s] = s;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint16_t a, std::uint16_t b) {
                     return lengths[a] < lengths[b];
                   });
  std::uint64_t code = 0;
  unsigned prev_len = 0;
  for (std::uint16_t s : order) {
    const unsigned len = lengths[s];
    if (len == 0) continue;
    code <<= (len - prev_len);
    book.codes[s] = code;
    ++code;
    prev_len = len;
  }
  return book;
}

/// Canonical decoding tables: per length, the first code and the symbol list.
struct DecodeTables {
  std::array<std::uint64_t, kMaxLen + 1> first_code{};
  std::array<std::uint32_t, kMaxLen + 1> count{};
  std::array<std::uint32_t, kMaxLen + 1> symbol_base{};
  std::vector<std::uint16_t> symbols;  // in (length, symbol) order
  unsigned max_len = 0;
};

DecodeTables build_decode_tables(
    const std::array<std::uint8_t, kSymbols>& lengths) {
  DecodeTables t;
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (lengths[s] == 0) continue;
    if (lengths[s] > kMaxLen)
      AAD_FAIL(ErrorCode::kCorruptData, "Huffman code length out of range");
    ++t.count[lengths[s]];
    t.max_len = std::max<unsigned>(t.max_len, lengths[s]);
  }
  std::uint64_t code = 0;
  std::uint32_t base = 0;
  for (unsigned len = 1; len <= t.max_len; ++len) {
    code <<= 1;
    t.first_code[len] = code;
    t.symbol_base[len] = base;
    code += t.count[len];
    base += t.count[len];
  }
  t.symbols.reserve(base);
  for (unsigned len = 1; len <= t.max_len; ++len)
    for (std::uint16_t s = 0; s < kSymbols; ++s)
      if (lengths[s] == len) t.symbols.push_back(s);
  return t;
}

class HuffmanStream final : public DecompressStream {
 public:
  HuffmanStream(ByteSpan payload, std::size_t raw_size,
                const std::array<std::uint8_t, kSymbols>& lengths)
      : tables_(build_decode_tables(lengths)),
        bits_(payload),
        raw_size_(raw_size) {
    if (raw_size_ > 0 && tables_.max_len == 0)
      AAD_FAIL(ErrorCode::kCorruptData, "empty Huffman codebook");
  }

  std::size_t read(std::span<Byte> out) override {
    std::size_t produced = 0;
    while (produced < out.size() && emitted_ < raw_size_) {
      std::uint64_t code = 0;
      unsigned len = 0;
      for (;;) {
        code = (code << 1) | (bits_.get_bit() ? 1u : 0u);
        ++len;
        if (len > tables_.max_len)
          AAD_FAIL(ErrorCode::kCorruptData, "invalid Huffman code");
        const std::uint64_t offset = code - tables_.first_code[len];
        if (code >= tables_.first_code[len] && offset < tables_.count[len]) {
          out[produced++] = static_cast<Byte>(
              tables_.symbols[tables_.symbol_base[len] +
                              static_cast<std::uint32_t>(offset)]);
          ++emitted_;
          break;
        }
      }
    }
    return produced;
  }

  std::size_t raw_size() const override { return raw_size_; }

 private:
  DecodeTables tables_;
  BitReader bits_;
  std::size_t raw_size_;
  std::size_t emitted_ = 0;
};

class HuffmanCodec final : public Codec {
 public:
  CodecId id() const noexcept override { return CodecId::kHuffman; }
  std::string name() const override { return "huffman"; }

  Bytes compress(ByteSpan raw) const override {
    std::array<std::uint64_t, kSymbols> freq{};
    for (Byte b : raw) ++freq[b];
    const auto lengths = compute_lengths(freq);
    const Codebook book = build_codebook(lengths);

    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(raw.size()));
    for (std::uint8_t len : lengths) w.u8(len);
    BitWriter bits;
    for (Byte b : raw) bits.put_bits(book.codes[b], book.lengths[b]);
    w.bytes(bits.finish());
    return std::move(w).take();
  }

  std::unique_ptr<DecompressStream> decompress_stream(
      ByteSpan compressed) const override {
    ByteReader r(compressed);
    const std::size_t raw_size = r.u32();
    std::array<std::uint8_t, kSymbols> lengths{};
    for (auto& len : lengths) len = r.u8();
    return std::make_unique<HuffmanStream>(
        compressed.subspan(4 + kSymbols), raw_size, lengths);
  }
};

}  // namespace

std::unique_ptr<Codec> make_huffman() {
  return std::make_unique<HuffmanCodec>();
}

}  // namespace aad::compress::detail
