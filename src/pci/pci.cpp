#include "pci/pci.h"

#include <algorithm>

namespace aad::pci {

PciBus::PciBus(const PciTiming& timing) : timing_(timing) {
  AAD_REQUIRE(timing.bus_width_bits % 8 == 0 && timing.bus_width_bits >= 8,
              "bus width must be a byte multiple");
  AAD_REQUIRE(timing.max_burst_words >= 1, "burst length must be >= 1");
}

std::size_t PciBus::padded_size(std::size_t bytes) const noexcept {
  const std::size_t w = timing_.bus_width_bytes();
  return (bytes + w - 1) / w * w;
}

sim::SimTime PciBus::single_word_time() const noexcept {
  return timing_.clock.cycles(timing_.arbitration_cycles +
                              timing_.address_phase_cycles +
                              timing_.initial_latency_cycles + 1);
}

sim::SimTime PciBus::register_write() {
  ++stats_.register_writes;
  const auto t = single_word_time();
  stats_.bus_time += t;
  return t;
}

sim::SimTime PciBus::register_read() {
  ++stats_.register_reads;
  const auto t = single_word_time();
  stats_.bus_time += t;
  return t;
}

sim::SimTime PciBus::dma_time(std::size_t bytes) const noexcept {
  if (bytes == 0) return sim::SimTime::zero();
  const std::size_t words = padded_size(bytes) / timing_.bus_width_bytes();
  const std::size_t bursts =
      (words + timing_.max_burst_words - 1) / timing_.max_burst_words;
  const std::int64_t cycles =
      static_cast<std::int64_t>(bursts) *
          (timing_.arbitration_cycles + timing_.address_phase_cycles +
           timing_.initial_latency_cycles) +
      static_cast<std::int64_t>(words);
  return timing_.clock.cycles(cycles);
}

sim::SimTime PciBus::programmed_io_time(std::size_t bytes) const noexcept {
  if (bytes == 0) return sim::SimTime::zero();
  const std::size_t words = padded_size(bytes) / timing_.bus_width_bytes();
  return single_word_time() * static_cast<std::int64_t>(words);
}

sim::SimTime PciBus::dma_to_device(std::size_t bytes) {
  ++stats_.dma_transfers;
  stats_.bytes_to_device += padded_size(bytes);
  const auto t = dma_time(bytes);
  stats_.bus_time += t;
  return t;
}

BusGrant PciBus::acquire(sim::SimTime request_time, sim::SimTime duration) {
  AAD_REQUIRE(duration >= sim::SimTime::zero(),
              "transfer duration cannot be negative");
  BusGrant grant;
  grant.start = std::max(request_time, busy_until_);
  grant.end = grant.start + duration;
  grant.queue_delay = grant.start - request_time;
  busy_until_ = grant.end;
  ++stats_.grants;
  if (grant.queue_delay > sim::SimTime::zero()) {
    ++stats_.contended_grants;
    stats_.queue_delay += grant.queue_delay;
  }
  return grant;
}

sim::SimTime PciBus::dma_from_device(std::size_t bytes) {
  ++stats_.dma_transfers;
  stats_.bytes_from_device += padded_size(bytes);
  const auto t = dma_time(bytes);
  stats_.bus_time += t;
  return t;
}

}  // namespace aad::pci
