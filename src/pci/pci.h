// Transaction-level PCI bus model (32-bit / 33 MHz, the Stratix PCI dev
// board's profile).
//
// Two transfer styles, matching how the host driver talks to the card:
//   * register access — single-word transactions (doorbells, status polls),
//     paying full arbitration + address-phase overhead per word;
//   * DMA burst — long data phases re-arbitrated every `max_burst_words`,
//     the path used for function inputs/outputs and bitstream downloads
//     ("data transfer is a multiple of the width of the interface bus",
//     paper §2.3 — enforced by padding to bus-word multiples).
#pragma once

#include <cstdint>

#include "common/bytebuffer.h"
#include "common/error.h"
#include "sim/time.h"

namespace aad::pci {

struct PciTiming {
  sim::Frequency clock = sim::Frequency::mhz(33);
  unsigned bus_width_bits = 32;
  unsigned arbitration_cycles = 6;   ///< REQ#/GNT# + bus turnaround
  unsigned address_phase_cycles = 1;
  unsigned initial_latency_cycles = 2;  ///< target TRDY# latency
  unsigned max_burst_words = 64;     ///< data phases per transaction

  unsigned bus_width_bytes() const noexcept { return bus_width_bits / 8; }
};

struct PciStats {
  std::uint64_t register_reads = 0;
  std::uint64_t register_writes = 0;
  std::uint64_t dma_transfers = 0;
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_from_device = 0;
  sim::SimTime bus_time;
  // Event-driven arbitration (acquire()) only:
  std::uint64_t grants = 0;            ///< exclusive occupancy grants
  std::uint64_t contended_grants = 0;  ///< grants that had to queue
  sim::SimTime queue_delay;            ///< total time transfers waited
};

/// An exclusive occupancy window granted by the arbiter.
struct BusGrant {
  sim::SimTime start;        ///< when the transfer owns the bus (>= request)
  sim::SimTime end;          ///< start + duration
  sim::SimTime queue_delay;  ///< start - request time
};

/// Pure timing + accounting model; payload movement happens in the caller
/// (host driver / MCU mailbox) so the model stays direction-agnostic.
class PciBus {
 public:
  explicit PciBus(const PciTiming& timing = PciTiming{});

  const PciTiming& timing() const noexcept { return timing_; }
  const PciStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = PciStats{}; }

  /// Round a payload up to the bus-word multiple actually transferred.
  std::size_t padded_size(std::size_t bytes) const noexcept;

  /// Single 32-bit register transaction.
  sim::SimTime register_write();
  sim::SimTime register_read();

  /// Burst DMA of `bytes` (padded to bus words) toward the device.
  sim::SimTime dma_to_device(std::size_t bytes);
  /// Burst DMA of `bytes` (padded to bus words) from the device.
  sim::SimTime dma_from_device(std::size_t bytes);

  /// Timing of a DMA without accounting (what-if queries for benches).
  sim::SimTime dma_time(std::size_t bytes) const noexcept;
  /// Timing of a single-word non-burst transfer sequence of `bytes`.
  sim::SimTime programmed_io_time(std::size_t bytes) const noexcept;

  // --- arbitration (event-driven path) --------------------------------------
  // The bus is a single shared resource: concurrent transfers serialize.
  // A transfer requested at `request_time` for `duration` is granted the
  // first window at or after the request where the bus is free; the wait is
  // the PCI arbiter's queuing delay and is accounted in stats().

  BusGrant acquire(sim::SimTime request_time, sim::SimTime duration);
  /// Earliest time a new transfer could start.
  sim::SimTime busy_until() const noexcept { return busy_until_; }
  /// Forget occupancy (device reset); stats are kept.
  void release_all() noexcept { busy_until_ = sim::SimTime::zero(); }

 private:
  sim::SimTime single_word_time() const noexcept;

  PciTiming timing_;
  PciStats stats_;
  sim::SimTime busy_until_;
};

}  // namespace aad::pci
