#include "bitstream/synth.h"

#include <array>

#include "common/prng.h"
#include "fabric/clbcodec.h"

namespace aad::bitstream {

using netlist::LutNetwork;
using netlist::LutSlot;
using netlist::NetKind;
using netlist::NetRef;

Bitstream synthesize_behavioral(const std::string& name,
                                std::uint32_t kernel_id,
                                std::uint32_t input_width,
                                std::uint32_t output_width,
                                const fabric::FrameGeometry& geometry,
                                const SynthParams& params) {
  geometry.validate();
  AAD_REQUIRE(params.frames >= 1, "behavioral kernel needs >= 1 frame");
  AAD_REQUIRE(params.density > 0.0 && params.density <= 1.0,
              "density must be in (0, 1]");

  const std::size_t total =
      static_cast<std::size_t>(params.frames) * geometry.slots_per_frame();
  AAD_REQUIRE(total >= output_width,
              "kernel footprint too small for its output bus");

  // Real designs reuse a handful of LUT functions; drawing from this
  // dictionary reproduces that clustering (and thus codec-visible
  // redundancy).
  constexpr std::array<std::uint16_t, 10> kTruthDict = {
      0xAAAA,  // pass
      0x6666,  // xor(p0,p1)
      0x8888,  // and(p0,p1)
      0xEEEE,  // or(p0,p1)
      0x9999,  // xnor(p0,p1)
      0x6996,  // parity(p0..p2 with p3 replicate)
      0xCACA,  // mux
      0xE8E8,  // majority
      0x7777,  // nand-ish
      0x1111,  // nor
  };

  Prng rng(params.seed * 0x9E3779B97F4A7C15ull + kernel_id + 1);
  LutNetwork network(name, input_width, output_width);
  std::vector<std::uint32_t> ff_slots;

  const unsigned slots_per_frame = geometry.slots_per_frame();
  std::uint32_t outputs_bound = 0;
  for (std::size_t i = 0; i < total; ++i) {
    // Columnar repetition: datapaths are bit-sliced, so a slot often mirrors
    // the same-row slot one frame earlier.  Repeated slots keep their pin
    // structure verbatim (backward references stay backward when shifted by
    // a whole frame), which is exactly the inter-frame symmetry the
    // frame-delta codec collapses.
    if (i >= slots_per_frame && rng.next_bool(params.column_repeat)) {
      LutSlot copy = network.slots()[i - slots_per_frame];
      copy.is_output = false;
      const bool empty = copy == LutSlot{};
      // While output bits still need drivers, don't replicate holes —
      // fall through and synthesize a fresh occupied slot instead.
      if (!empty || outputs_bound >= output_width) {
        if (!empty && outputs_bound < output_width) {
          copy.is_output = true;
          copy.output_bit = static_cast<std::uint16_t>(outputs_bound++);
        }
        network.add_slot(copy);
        continue;
      }
    }
    // Occupancy is Bernoulli(density) with the head of the design forced
    // occupied so every output bit finds a driver; empty slots stay
    // interleaved through the frames (realistic sparsity).
    const bool occupied =
        i < output_width || rng.next_bool(params.density);
    if (!occupied) {
      network.add_slot(LutSlot{});
      continue;
    }
    LutSlot slot;
    slot.truth = kTruthDict[rng.next_below(kTruthDict.size())];
    slot.has_ff = rng.next_bool(params.ff_fraction);

    for (unsigned pin = 0; pin < 4; ++pin) {
      const double roll = rng.next_double();
      if (roll < 0.30 && input_width > 0) {
        slot.pins[pin] = NetRef{NetKind::kPrimary,
                                static_cast<std::uint32_t>(
                                    rng.next_below(input_width))};
      } else if (roll < 0.80 && i > 0) {
        // Backward reference with geometric locality: most routing stays
        // within a few CLBs, occasionally reaching far back.
        std::size_t back = 1 + rng.next_below(8);
        if (rng.next_bool(0.1)) back = 1 + rng.next_below(i);
        if (back > i) back = i;
        slot.pins[pin] = NetRef{
            NetKind::kLutComb, static_cast<std::uint32_t>(i - back)};
      } else if (roll < 0.90 && !ff_slots.empty()) {
        slot.pins[pin] = NetRef{
            NetKind::kLutReg,
            ff_slots[rng.next_below(ff_slots.size())]};
      } else {
        slot.pins[pin] = NetRef{rng.next_bool(0.5) ? NetKind::kConst0
                                                   : NetKind::kUnused,
                                0};
      }
    }
    // Bind output bits to the first output_width occupied slots.
    if (outputs_bound < output_width) {
      slot.is_output = true;
      slot.output_bit = static_cast<std::uint16_t>(outputs_bound++);
    }
    const std::uint32_t index = network.add_slot(slot);
    if (slot.has_ff) ff_slots.push_back(index);
  }

  Bitstream out;
  out.info.name = name;
  out.info.kind = FunctionKind::kBehavioral;
  out.info.geometry = geometry;
  out.info.input_width = input_width;
  out.info.output_width = output_width;
  out.info.kernel_id = kernel_id;
  out.frames = fabric::encode_frames(network, geometry);
  // encode_frames sizes by slot count; pad to the requested footprint so the
  // kernel reserves the frames its placement actually needs.
  while (out.frames.size() < params.frames)
    out.frames.emplace_back(geometry.words_per_frame(), 0);
  return out;
}

}  // namespace aad::bitstream
