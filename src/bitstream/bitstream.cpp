#include "bitstream/bitstream.h"

#include "common/crc32.h"
#include "fabric/clbcodec.h"

namespace aad::bitstream {

const char* to_string(FunctionKind kind) noexcept {
  switch (kind) {
    case FunctionKind::kNetlist: return "netlist";
    case FunctionKind::kBehavioral: return "behavioral";
  }
  return "?";
}

std::size_t Bitstream::byte_size() const noexcept {
  // Header (fixed) + payload words + CRC.
  constexpr std::size_t kHeaderBytes =
      4 + 2 + 1 + 1 + kNameBytes + 2 + 2 + 4 + 4 + 4 + 4;
  std::size_t words = 0;
  for (const auto& f : frames) words += f.size();
  return kHeaderBytes + words * sizeof(fabric::Word) + 4;
}

Bytes serialize(const Bitstream& bitstream) {
  const auto& info = bitstream.info;
  AAD_REQUIRE(info.name.size() <= kNameBytes, "function name too long");
  for (const auto& frame : bitstream.frames)
    AAD_REQUIRE(frame.size() == info.geometry.words_per_frame(),
                "frame payload size does not match geometry");

  ByteWriter w;
  w.u32(kMagic);
  w.u16(kVersion);
  w.u8(static_cast<std::uint8_t>(info.kind));
  w.u8(0);  // reserved
  w.fixed_string(info.name, kNameBytes);
  w.u16(static_cast<std::uint16_t>(info.geometry.clb_rows));
  w.u16(static_cast<std::uint16_t>(info.geometry.frame_count));
  w.u32(info.input_width);
  w.u32(info.output_width);
  w.u32(info.kernel_id);
  w.u32(static_cast<std::uint32_t>(bitstream.frames.size()));
  for (const auto& frame : bitstream.frames)
    for (fabric::Word word : frame) w.u32(word);
  const std::uint32_t crc = Crc32::compute(w.data());
  w.u32(crc);
  return std::move(w).take();
}

Bitstream parse(ByteSpan data) {
  if (data.size() < 4 + 4)
    AAD_FAIL(ErrorCode::kCorruptData, "bitstream truncated");
  // CRC covers everything but the trailing CRC word itself.
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(data[data.size() - 4]) |
      (static_cast<std::uint32_t>(data[data.size() - 3]) << 8) |
      (static_cast<std::uint32_t>(data[data.size() - 2]) << 16) |
      (static_cast<std::uint32_t>(data[data.size() - 1]) << 24);
  if (Crc32::compute(data.subspan(0, data.size() - 4)) != stored_crc)
    AAD_FAIL(ErrorCode::kCorruptData, "bitstream CRC mismatch");

  ByteReader r(data);
  if (r.u32() != kMagic)
    AAD_FAIL(ErrorCode::kCorruptData, "bad bitstream magic");
  if (r.u16() != kVersion)
    AAD_FAIL(ErrorCode::kCorruptData, "unsupported bitstream version");

  Bitstream out;
  const auto kind_raw = r.u8();
  if (kind_raw > static_cast<std::uint8_t>(FunctionKind::kBehavioral))
    AAD_FAIL(ErrorCode::kCorruptData, "unknown function kind");
  out.info.kind = static_cast<FunctionKind>(kind_raw);
  r.skip(1);  // reserved
  out.info.name = r.fixed_string(kNameBytes);
  out.info.geometry.clb_rows = r.u16();
  out.info.geometry.frame_count = r.u16();
  out.info.geometry.validate();
  out.info.input_width = r.u32();
  out.info.output_width = r.u32();
  out.info.kernel_id = r.u32();
  const std::uint32_t frame_count = r.u32();
  const std::size_t words_per_frame = out.info.geometry.words_per_frame();
  if (r.remaining() != frame_count * words_per_frame * sizeof(fabric::Word) + 4)
    AAD_FAIL(ErrorCode::kCorruptData, "bitstream payload length mismatch");
  out.frames.resize(frame_count);
  for (auto& frame : out.frames) {
    frame.resize(words_per_frame);
    for (auto& word : frame) word = r.u32();
  }
  return out;
}

Bytes pack_frame_payloads(const Bitstream& bitstream) {
  ByteWriter w;
  for (const auto& frame : bitstream.frames)
    for (fabric::Word word : frame) w.u32(word);
  return std::move(w).take();
}

std::vector<fabric::Word> bytes_to_words(ByteSpan data) {
  AAD_REQUIRE(data.size() % 4 == 0, "word stream length not word-aligned");
  std::vector<fabric::Word> words(data.size() / 4);
  ByteReader r(data);
  for (auto& word : words) word = r.u32();
  return words;
}

Bitstream from_network(const netlist::LutNetwork& network,
                       const fabric::FrameGeometry& geometry) {
  Bitstream out;
  out.info.name = network.name();
  out.info.kind = FunctionKind::kNetlist;
  out.info.geometry = geometry;
  out.info.input_width = static_cast<std::uint32_t>(network.input_width());
  out.info.output_width = static_cast<std::uint32_t>(network.output_width());
  out.frames = fabric::encode_frames(network, geometry);
  return out;
}

}  // namespace aad::bitstream
