// Synthetic bitstream generator for behavioral kernels.
//
// Behavioral kernels (AES, SHA, FFT, ...) are too large to gate-map inside
// this repository, but their configuration streams still have to flow
// through the whole ROM → decompress → config-port pipeline with *realistic
// content*, otherwise every compression result would be an artifact of
// feeding the codecs random or all-zero data.
//
// The generator therefore emits frames that are exactly what the CLB codec
// would produce for a plausible design of the requested density: LUT truth
// tables drawn from a small dictionary (real designs reuse a handful of
// functions), pin selectors with strong backward locality, a sprinkling of
// flip-flops, derived switch-block words, and unused slots left empty.
// The result decodes and validates like any netlist bitstream.
#pragma once

#include <cstdint>

#include "bitstream/bitstream.h"

namespace aad::bitstream {

struct SynthParams {
  std::uint32_t frames = 4;        ///< frame payloads to emit
  double density = 0.75;           ///< fraction of LUT slots occupied
  double ff_fraction = 0.25;       ///< fraction of occupied slots with an FF
  /// Probability that a slot repeats the same-row slot of the previous
  /// frame — the columnar regularity of real datapaths (bit-sliced ALUs,
  /// round functions) that the paper's open-problem codec exploits.
  double column_repeat = 0.45;
  std::uint64_t seed = 1;          ///< content seed (kernel id works well)
};

/// Generate a behavioral-kind bitstream with realistic structure.
/// `input_width`/`output_width` describe the kernel's per-cycle buses and
/// are carried in the header for the data I/O modules.
Bitstream synthesize_behavioral(const std::string& name,
                                std::uint32_t kernel_id,
                                std::uint32_t input_width,
                                std::uint32_t output_width,
                                const fabric::FrameGeometry& geometry,
                                const SynthParams& params);

}  // namespace aad::bitstream
