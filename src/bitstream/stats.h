// Bitstream content statistics: the quantities that explain *why* each
// compression codec performs the way it does (E2 in DESIGN.md).
#pragma once

#include <cstddef>
#include <string>

#include "bitstream/bitstream.h"

namespace aad::bitstream {

struct ContentStats {
  std::size_t total_bytes = 0;
  double zero_byte_fraction = 0.0;   ///< sparsity
  double zero_word_fraction = 0.0;   ///< empty LUT slots / unused routing
  std::size_t distinct_words = 0;    ///< vocabulary size (dictionary reuse)
  double byte_entropy_bits = 0.0;    ///< Shannon entropy, bits per byte
  /// Mean fraction of words identical to the same offset in the previous
  /// frame — the inter-frame symmetry the paper's open problem targets.
  double interframe_similarity = 0.0;
};

ContentStats analyze(const Bitstream& bitstream);
ContentStats analyze_bytes(ByteSpan data);

std::string to_string(const ContentStats& stats);

}  // namespace aad::bitstream
