#include "bitstream/stats.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <unordered_set>

namespace aad::bitstream {
namespace {

double entropy_bits(const std::array<std::size_t, 256>& histogram,
                    std::size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::size_t count : histogram) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

ContentStats analyze_bytes(ByteSpan data) {
  ContentStats stats;
  stats.total_bytes = data.size();
  std::array<std::size_t, 256> histogram{};
  std::size_t zero_bytes = 0;
  for (Byte b : data) {
    ++histogram[b];
    if (b == 0) ++zero_bytes;
  }
  stats.zero_byte_fraction =
      data.empty() ? 0.0
                   : static_cast<double>(zero_bytes) /
                         static_cast<double>(data.size());
  stats.byte_entropy_bits = entropy_bits(histogram, data.size());
  return stats;
}

ContentStats analyze(const Bitstream& bitstream) {
  const Bytes raw = serialize(bitstream);
  ContentStats stats = analyze_bytes(raw);

  std::size_t zero_words = 0;
  std::size_t total_words = 0;
  std::unordered_set<fabric::Word> vocabulary;
  for (const auto& frame : bitstream.frames) {
    total_words += frame.size();
    for (fabric::Word w : frame) {
      if (w == 0) ++zero_words;
      vocabulary.insert(w);
    }
  }
  stats.zero_word_fraction =
      total_words == 0 ? 0.0
                       : static_cast<double>(zero_words) /
                             static_cast<double>(total_words);
  stats.distinct_words = vocabulary.size();

  // Inter-frame similarity: same-offset word matches between consecutive
  // frames, averaged over frame pairs.
  if (bitstream.frames.size() >= 2) {
    double sum = 0.0;
    for (std::size_t f = 1; f < bitstream.frames.size(); ++f) {
      const auto& prev = bitstream.frames[f - 1];
      const auto& cur = bitstream.frames[f];
      std::size_t same = 0;
      for (std::size_t i = 0; i < cur.size(); ++i)
        if (cur[i] == prev[i]) ++same;
      sum += static_cast<double>(same) / static_cast<double>(cur.size());
    }
    stats.interframe_similarity =
        sum / static_cast<double>(bitstream.frames.size() - 1);
  }
  return stats;
}

std::string to_string(const ContentStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%zu B, zero-bytes %.1f%%, zero-words %.1f%%, vocab %zu, "
                "entropy %.2f b/B, interframe-sim %.1f%%",
                stats.total_bytes, stats.zero_byte_fraction * 100.0,
                stats.zero_word_fraction * 100.0, stats.distinct_words,
                stats.byte_entropy_bits,
                stats.interframe_similarity * 100.0);
  return buf;
}

}  // namespace aad::bitstream
