// Open, frame-addressed configuration bitstream format ("AADB").
//
// A bitstream is a header plus an ordered list of *relocatable* frame
// payloads (logical frame order; physical placement is chosen by the
// mini-OS at load time) followed by a CRC-32 of everything before it.
//
// Two function kinds share the container:
//   * kNetlist    — payloads encode a real LUT network; the fabric executes
//                   it from the configuration plane.
//   * kBehavioral — payloads are synthesized with realistic structure
//                   (synth.h); execution is delegated to a registered
//                   behavioral model with a calibrated cycle cost.  This is
//                   the documented substitution for kernels too large to
//                   gate-map (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytebuffer.h"
#include "fabric/geometry.h"
#include "netlist/lutnetwork.h"

namespace aad::bitstream {

constexpr std::uint32_t kMagic = 0x42444141u;  // "AADB" little-endian
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kNameBytes = 24;

enum class FunctionKind : std::uint8_t { kNetlist = 0, kBehavioral = 1 };

const char* to_string(FunctionKind kind) noexcept;

struct BitstreamInfo {
  std::string name;                  ///< function name (<= 24 bytes)
  FunctionKind kind = FunctionKind::kNetlist;
  fabric::FrameGeometry geometry;    ///< device the stream was built for
  std::uint32_t input_width = 0;     ///< input bus bits per cycle
  std::uint32_t output_width = 0;    ///< output bus bits per cycle
  std::uint32_t kernel_id = 0;       ///< behavioral model key (0 = none)

  bool operator==(const BitstreamInfo&) const = default;
};

struct Bitstream {
  BitstreamInfo info;
  std::vector<std::vector<fabric::Word>> frames;  ///< logical load order

  std::size_t frame_count() const noexcept { return frames.size(); }
  /// Raw (uncompressed) serialized size in bytes.
  std::size_t byte_size() const noexcept;

  bool operator==(const Bitstream&) const = default;
};

/// Serialize to the on-ROM byte layout (with trailing CRC-32).
Bytes serialize(const Bitstream& bitstream);

/// Parse and validate (magic, version, geometry sanity, CRC).
/// Throws kCorruptData on any violation.
Bitstream parse(ByteSpan data);

/// Build a netlist-kind bitstream from a mapped LUT network.
Bitstream from_network(const netlist::LutNetwork& network,
                       const fabric::FrameGeometry& geometry);

/// Concatenate the frame payload words (little-endian) — the byte stream
/// the ROM stores in compressed form.  Metadata travels in the ROM record,
/// not the stream, so the configuration module can reconstruct frames
/// window by window without buffering a header.
Bytes pack_frame_payloads(const Bitstream& bitstream);

/// Inverse of one window of pack_frame_payloads: turn `frame_bytes` bytes
/// back into configuration words.  Size must be a multiple of 4.
std::vector<fabric::Word> bytes_to_words(ByteSpan data);

}  // namespace aad::bitstream
