#include "algorithms/matmul.h"

#include <cmath>

#include "common/error.h"

namespace aad::algorithms {

std::vector<std::int32_t> matmul(const std::vector<std::int16_t>& a,
                                 const std::vector<std::int16_t>& b,
                                 std::size_t n) {
  AAD_REQUIRE(a.size() == n * n && b.size() == n * n,
              "matrix size mismatch");
  std::vector<std::int32_t> c(n * n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k) {
      const std::int32_t aik = a[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        // A 16x16 product always fits in 32 bits, but the running sum is a
        // hardware MAC accumulator that WRAPS at 32 bits; accumulate
        // unsigned so the wraparound is defined instead of signed-overflow
        // UB (same two's-complement values either way).
        const std::int32_t prod = aik * static_cast<std::int32_t>(b[k * n + j]);
        c[i * n + j] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(c[i * n + j]) +
            static_cast<std::uint32_t>(prod));
      }
    }
  return c;
}

Bytes matmul_bytes(ByteSpan input) {
  AAD_REQUIRE(input.size() % 4 == 0, "matmul payload must hold two matrices");
  const std::size_t elements = input.size() / 4;  // per matrix, int16
  const std::size_t n =
      static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(elements))));
  AAD_REQUIRE(n * n == elements, "matmul payload is not two square matrices");

  auto load = [&](std::size_t base, std::size_t count) {
    std::vector<std::int16_t> m(count);
    for (std::size_t i = 0; i < count; ++i)
      m[i] = static_cast<std::int16_t>(
          static_cast<std::uint16_t>(input[base + 2 * i]) |
          (static_cast<std::uint16_t>(input[base + 2 * i + 1]) << 8));
    return m;
  };
  const auto a = load(0, n * n);
  const auto b = load(2 * n * n, n * n);
  const auto c = matmul(a, b, n);

  Bytes out(c.size() * 4);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const auto v = static_cast<std::uint32_t>(c[i]);
    out[4 * i] = static_cast<Byte>(v);
    out[4 * i + 1] = static_cast<Byte>(v >> 8);
    out[4 * i + 2] = static_cast<Byte>(v >> 16);
    out[4 * i + 3] = static_cast<Byte>(v >> 24);
  }
  return out;
}

}  // namespace aad::algorithms
