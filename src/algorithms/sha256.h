// SHA-256 (FIPS 180-2).  Round constants and initial state are derived at
// startup from the fractional parts of cube/square roots of the first
// primes, as the standard defines them, instead of being transcribed.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytebuffer.h"

namespace aad::algorithms {

class Sha256 {
 public:
  Sha256() { reset(); }

  void update(ByteSpan data);
  std::array<Byte, 32> digest();
  void reset();

  static std::array<Byte, 32> hash(ByteSpan data) {
    Sha256 h;
    h.update(data);
    return h.digest();
  }

 private:
  void process_block(const Byte block[64]);

  std::uint32_t h_[8];
  Byte buffer_[64] = {};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace aad::algorithms
