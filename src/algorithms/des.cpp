#include "algorithms/des.h"

#include <array>

#include "common/error.h"

namespace aad::algorithms {
namespace {

// Standard FIPS 46-3 tables.  All tables are 1-based bit positions counted
// from the most significant bit, as in the standard.
constexpr std::uint8_t kIp[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr std::uint8_t kExpansion[48] = {
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
    8,  9,  10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr std::uint8_t kP[32] = {16, 7,  20, 21, 29, 12, 28, 17,
                                 1,  15, 23, 26, 5,  18, 31, 10,
                                 2,  8,  24, 14, 32, 27, 3,  9,
                                 19, 13, 30, 6,  22, 11, 4,  25};

constexpr std::uint8_t kPc1[56] = {
    57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
    10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
    14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

constexpr std::uint8_t kPc2[48] = {
    14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10,
    23, 19, 12, 4,  26, 8,  16, 7,  27, 20, 13, 2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr std::uint8_t kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2,
                                      1, 2, 2, 2, 2, 2, 2, 1};

constexpr std::uint8_t kSbox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

/// Apply a 1-based-from-MSB permutation table: out bit i (MSB-first over
/// `out_bits`) = in bit table[i] of an `in_bits`-wide value.
std::uint64_t permute(std::uint64_t in, unsigned in_bits,
                      const std::uint8_t* table, unsigned out_bits) {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < out_bits; ++i) {
    const unsigned src = table[i];  // 1-based from MSB
    const std::uint64_t bit = (in >> (in_bits - src)) & 1u;
    out = (out << 1) | bit;
  }
  return out;
}

/// Final permutation derived as the inverse of IP.
const std::uint8_t* final_permutation() {
  static const std::array<std::uint8_t, 64> fp = [] {
    std::array<std::uint8_t, 64> t{};
    for (unsigned i = 0; i < 64; ++i) t[kIp[i] - 1] = static_cast<std::uint8_t>(i + 1);
    return t;
  }();
  return fp.data();
}

std::uint32_t feistel(std::uint32_t half, std::uint64_t subkey) {
  const std::uint64_t expanded = permute(half, 32, kExpansion, 48) ^ subkey;
  std::uint32_t s_out = 0;
  for (int box = 0; box < 8; ++box) {
    const unsigned six =
        static_cast<unsigned>((expanded >> (42 - 6 * box)) & 0x3F);
    const unsigned row = ((six >> 4) & 0x2) | (six & 0x1);
    const unsigned col = (six >> 1) & 0xF;
    s_out = (s_out << 4) | kSbox[box][row * 16 + col];
  }
  return static_cast<std::uint32_t>(permute(s_out, 32, kP, 32));
}

}  // namespace

Des::Des(ByteSpan key) {
  AAD_REQUIRE(key.size() == 8, "DES key must be 8 bytes");
  std::uint64_t k = 0;
  for (Byte b : key) k = (k << 8) | b;
  std::uint64_t cd = permute(k, 64, kPc1, 56);
  std::uint32_t c = static_cast<std::uint32_t>(cd >> 28);
  std::uint32_t d = static_cast<std::uint32_t>(cd & 0x0FFFFFFF);
  for (int round = 0; round < 16; ++round) {
    const unsigned s = kShifts[round];
    c = ((c << s) | (c >> (28 - s))) & 0x0FFFFFFF;
    d = ((d << s) | (d >> (28 - s))) & 0x0FFFFFFF;
    const std::uint64_t merged =
        (static_cast<std::uint64_t>(c) << 28) | d;
    subkeys_[round] = permute(merged, 56, kPc2, 48);
  }
}

std::uint64_t Des::crypt(std::uint64_t block, bool decrypt) const {
  const std::uint64_t ip = permute(block, 64, kIp, 64);
  std::uint32_t left = static_cast<std::uint32_t>(ip >> 32);
  std::uint32_t right = static_cast<std::uint32_t>(ip);
  for (int round = 0; round < 16; ++round) {
    const std::uint64_t subkey = subkeys_[decrypt ? 15 - round : round];
    const std::uint32_t next = left ^ feistel(right, subkey);
    left = right;
    right = next;
  }
  // Pre-output: R16 || L16 (the halves are swapped).
  const std::uint64_t pre =
      (static_cast<std::uint64_t>(right) << 32) | left;
  return permute(pre, 64, final_permutation(), 64);
}

std::uint64_t Des::encrypt_block(std::uint64_t block) const {
  return crypt(block, false);
}

std::uint64_t Des::decrypt_block(std::uint64_t block) const {
  return crypt(block, true);
}

Bytes Des::encrypt_ecb(ByteSpan data) const {
  AAD_REQUIRE(data.size() % 8 == 0, "DES-ECB input must be 8-byte blocks");
  Bytes out(data.size());
  for (std::size_t off = 0; off < data.size(); off += 8) {
    std::uint64_t block = 0;
    for (int i = 0; i < 8; ++i) block = (block << 8) | data[off + static_cast<std::size_t>(i)];
    block = encrypt_block(block);
    for (int i = 7; i >= 0; --i) {
      out[off + static_cast<std::size_t>(i)] = static_cast<Byte>(block & 0xFF);
      block >>= 8;
    }
  }
  return out;
}

}  // namespace aad::algorithms
