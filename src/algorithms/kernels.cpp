#include "algorithms/kernels.h"

#include <cmath>

#include "algorithms/aes.h"
#include "algorithms/bignum.h"
#include "algorithms/des.h"
#include "algorithms/fft.h"
#include "algorithms/fir.h"
#include "algorithms/matmul.h"
#include "algorithms/md5.h"
#include "algorithms/sha1.h"
#include "algorithms/sha256.h"
#include "algorithms/xtea.h"
#include "bitstream/synth.h"
#include "common/bitops.h"
#include "common/crc32.h"
#include "common/error.h"
#include "common/prng.h"
#include "netlist/generators.h"
#include "netlist/lutmap.h"
#include "netlist/optimize.h"

namespace aad::algorithms {
namespace {

using bitstream::Bitstream;
using bitstream::FunctionKind;
using fabric::FrameGeometry;

constexpr double kHostGhz = 3.0;  // 2005-era desktop CPU for the baseline

sim::SimTime host_ns_from_cycles(double cycles) {
  return sim::SimTime::ns(cycles / kHostGhz);
}

std::uint32_t load_le32(ByteSpan data, std::size_t offset) {
  return static_cast<std::uint32_t>(data[offset]) |
         (static_cast<std::uint32_t>(data[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(data[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(data[offset + 3]) << 24);
}

void store_le32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<Byte>(v));
  out.push_back(static_cast<Byte>(v >> 8));
  out.push_back(static_cast<Byte>(v >> 16));
  out.push_back(static_cast<Byte>(v >> 24));
}

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Prng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<Byte>(rng.next());
  return out;
}

// --- LFSR reference (must mirror make_lfsr's shift direction/taps) ---------

constexpr unsigned kLfsrTaps[] = {0, 1, 21, 31};

std::uint32_t lfsr_step(std::uint32_t state) {
  std::uint32_t fb = 0;
  for (unsigned t : kLfsrTaps) fb ^= (state >> t) & 1u;
  return (state >> 1) | (fb << 31);
}

// --- netlist bitstream builders ---------------------------------------------

Bitstream netlist_bitstream(const netlist::Netlist& nl, KernelId id,
                            const FrameGeometry& geometry) {
  const auto network = netlist::map_to_luts(netlist::optimize(nl));
  Bitstream bs = bitstream::from_network(network, geometry);
  bs.info.kernel_id = function_id(id);
  return bs;
}

Bitstream behavioral_bitstream(const std::string& name, KernelId id,
                               std::uint32_t iw, std::uint32_t ow,
                               unsigned frames, double density,
                               const FrameGeometry& geometry) {
  bitstream::SynthParams params;
  params.frames = frames;
  params.density = density;
  params.seed = function_id(id);
  return bitstream::synthesize_behavioral(name, function_id(id), iw, ow,
                                          geometry, params);
}

// --- catalog construction ---------------------------------------------------

std::vector<KernelSpec> build_catalog() {
  std::vector<KernelSpec> out;
  const FrameGeometry default_geometry;

  auto add = [&](KernelSpec spec) {
    if (spec.nominal_frames == 0) {
      // Netlist kernels: measure the real footprint on default geometry.
      spec.nominal_frames = static_cast<unsigned>(
          spec.make_bitstream(default_geometry).frame_count());
    }
    out.push_back(std::move(spec));
  };

  // ---- netlist kernels -----------------------------------------------------

  add(KernelSpec{
      .id = KernelId::kAdder32,
      .name = "add32",
      .kind = FunctionKind::kNetlist,
      .input_width = 64,
      .output_width = 33,
      .nominal_frames = 0,
      .software =
          [](ByteSpan in) {
            AAD_REQUIRE(in.size() == 8, "add32 expects a||b (8 bytes)");
            const std::uint64_t sum =
                static_cast<std::uint64_t>(load_le32(in, 0)) + load_le32(in, 4);
            Bytes out;
            store_le32(out, static_cast<std::uint32_t>(sum));
            out.push_back(static_cast<Byte>(sum >> 32));
            return out;
          },
      .fabric_cycles = nullptr,
      .host_time = [](std::size_t) { return host_ns_from_cycles(2); },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return netlist_bitstream(netlist::make_ripple_adder(32),
                                     KernelId::kAdder32, g);
          },
      .make_input = [](std::size_t, std::uint64_t seed) {
        return random_bytes(8, seed);
      }});

  add(KernelSpec{
      .id = KernelId::kParity32,
      .name = "parity32",
      .kind = FunctionKind::kNetlist,
      .input_width = 32,
      .output_width = 1,
      .nominal_frames = 0,
      .software =
          [](ByteSpan in) {
            AAD_REQUIRE(in.size() == 4, "parity32 expects 4 bytes");
            const unsigned p = bits::popcount(load_le32(in, 0)) & 1u;
            return Bytes{static_cast<Byte>(p)};
          },
      .fabric_cycles = nullptr,
      .host_time = [](std::size_t) { return host_ns_from_cycles(1); },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return netlist_bitstream(netlist::make_parity(32),
                                     KernelId::kParity32, g);
          },
      .make_input = [](std::size_t, std::uint64_t seed) {
        return random_bytes(4, seed);
      }});

  add(KernelSpec{
      .id = KernelId::kPopcount32,
      .name = "popcount32",
      .kind = FunctionKind::kNetlist,
      .input_width = 32,
      .output_width = 6,
      .nominal_frames = 0,
      .software =
          [](ByteSpan in) {
            AAD_REQUIRE(in.size() == 4, "popcount32 expects 4 bytes");
            return Bytes{static_cast<Byte>(bits::popcount(load_le32(in, 0)))};
          },
      .fabric_cycles = nullptr,
      .host_time = [](std::size_t) { return host_ns_from_cycles(1); },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return netlist_bitstream(netlist::make_popcount(32),
                                     KernelId::kPopcount32, g);
          },
      .make_input = [](std::size_t, std::uint64_t seed) {
        return random_bytes(4, seed);
      }});

  add(KernelSpec{
      .id = KernelId::kComparator32,
      .name = "cmp32",
      .kind = FunctionKind::kNetlist,
      .input_width = 64,
      .output_width = 2,
      .nominal_frames = 0,
      .software =
          [](ByteSpan in) {
            AAD_REQUIRE(in.size() == 8, "cmp32 expects a||b (8 bytes)");
            const std::uint32_t a = load_le32(in, 0);
            const std::uint32_t b = load_le32(in, 4);
            const unsigned eq = a == b ? 1u : 0u;
            const unsigned lt = a < b ? 1u : 0u;
            return Bytes{static_cast<Byte>(eq | (lt << 1))};
          },
      .fabric_cycles = nullptr,
      .host_time = [](std::size_t) { return host_ns_from_cycles(1); },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return netlist_bitstream(netlist::make_comparator(32),
                                     KernelId::kComparator32, g);
          },
      .make_input = [](std::size_t, std::uint64_t seed) {
        return random_bytes(8, seed);
      }});

  add(KernelSpec{
      .id = KernelId::kGray32,
      .name = "gray32",
      .kind = FunctionKind::kNetlist,
      .input_width = 32,
      .output_width = 32,
      .nominal_frames = 0,
      .software =
          [](ByteSpan in) {
            AAD_REQUIRE(in.size() == 4, "gray32 expects 4 bytes");
            const std::uint32_t v = load_le32(in, 0);
            Bytes out;
            store_le32(out, v ^ (v >> 1));
            return out;
          },
      .fabric_cycles = nullptr,
      .host_time = [](std::size_t) { return host_ns_from_cycles(1); },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return netlist_bitstream(netlist::make_gray_encoder(32),
                                     KernelId::kGray32, g);
          },
      .make_input = [](std::size_t, std::uint64_t seed) {
        return random_bytes(4, seed);
      }});

  add(KernelSpec{
      .id = KernelId::kMul8,
      .name = "mul8",
      .kind = FunctionKind::kNetlist,
      .input_width = 16,
      .output_width = 16,
      .nominal_frames = 0,
      .software =
          [](ByteSpan in) {
            AAD_REQUIRE(in.size() == 2, "mul8 expects a||b (2 bytes)");
            const std::uint16_t p = static_cast<std::uint16_t>(
                static_cast<unsigned>(in[0]) * in[1]);
            return Bytes{static_cast<Byte>(p), static_cast<Byte>(p >> 8)};
          },
      .fabric_cycles = nullptr,
      .host_time = [](std::size_t) { return host_ns_from_cycles(1); },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return netlist_bitstream(netlist::make_array_multiplier(8),
                                     KernelId::kMul8, g);
          },
      .make_input = [](std::size_t, std::uint64_t seed) {
        return random_bytes(2, seed);
      }});

  add(KernelSpec{
      .id = KernelId::kCrc32,
      .name = "crc32",
      .kind = FunctionKind::kNetlist,
      .input_width = 9,  // byte[8] + valid[1]
      .output_width = 32,
      .nominal_frames = 0,
      .software =
          [](ByteSpan in) {
            Bytes out;
            store_le32(out, Crc32::compute(in));
            return out;
          },
      .fabric_cycles = nullptr,
      .host_time =
          [](std::size_t bytes) {
            return host_ns_from_cycles(5.0 * static_cast<double>(bytes));
          },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return netlist_bitstream(netlist::make_crc32_datapath(),
                                     KernelId::kCrc32, g);
          },
      .make_input = [](std::size_t blocks, std::uint64_t seed) {
        return random_bytes(std::max<std::size_t>(1, blocks), seed);
      }});

  add(KernelSpec{
      .id = KernelId::kLfsr32,
      .name = "lfsr32",
      .kind = FunctionKind::kNetlist,
      .input_width = 33,  // init[32] + load[1]
      .output_width = 32,
      .nominal_frames = 0,
      .software =
          [](ByteSpan in) {
            AAD_REQUIRE(in.size() == 8, "lfsr32 expects seed||steps");
            std::uint32_t state = load_le32(in, 0);
            const std::uint32_t steps = load_le32(in, 4);
            AAD_REQUIRE(steps <= 1u << 16, "lfsr32 steps capped at 65536");
            for (std::uint32_t i = 0; i < steps; ++i) state = lfsr_step(state);
            Bytes out;
            store_le32(out, state);
            return out;
          },
      .fabric_cycles = nullptr,
      .host_time =
          [](std::size_t) { return host_ns_from_cycles(2.0 * 256); },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return netlist_bitstream(
                netlist::make_lfsr(32, {kLfsrTaps[0], kLfsrTaps[1],
                                        kLfsrTaps[2], kLfsrTaps[3]}),
                KernelId::kLfsr32, g);
          },
      .make_input = [](std::size_t blocks, std::uint64_t seed) {
        Bytes in = random_bytes(4, seed);
        store_le32(in, static_cast<std::uint32_t>(
                           std::max<std::size_t>(1, blocks)));
        return in;
      }});

  // ---- behavioral kernels --------------------------------------------------
  // Block layout conventions: ciphers take key || data; hashes take raw
  // data.  Cycle models assume the canonical FPGA micro-architecture named
  // in the comment.

  // AES-128: one round per cycle, pipelined across blocks.
  add(KernelSpec{
      .id = KernelId::kAes128,
      .name = "aes128",
      .kind = FunctionKind::kBehavioral,
      .input_width = 128,
      .output_width = 128,
      .nominal_frames = 12,
      .software =
          [](ByteSpan in) {
            AAD_REQUIRE(in.size() >= 32 && (in.size() - 16) % 16 == 0,
                        "aes128 expects key(16) || blocks(16k)");
            const Aes128 aes(in.subspan(0, 16));
            return aes.encrypt_ecb(in.subspan(16));
          },
      .fabric_cycles =
          [](std::size_t bytes) {
            const std::int64_t blocks =
                static_cast<std::int64_t>((bytes - 16) / 16);
            return 11 + 10 + blocks;  // key schedule + pipeline fill + 1/cyc
          },
      .host_time =
          [](std::size_t bytes) {
            return host_ns_from_cycles(28.0 * static_cast<double>(bytes - 16));
          },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return behavioral_bitstream("aes128", KernelId::kAes128, 128, 128,
                                        12, 0.85, g);
          },
      .make_input = [](std::size_t blocks, std::uint64_t seed) {
        return random_bytes(16 + 16 * std::max<std::size_t>(1, blocks), seed);
      }});

  // DES: fully unrolled 16-stage pipeline, one block per cycle when full
  // (the standard FPGA implementation of this vintage).
  add(KernelSpec{
      .id = KernelId::kDes,
      .name = "des",
      .kind = FunctionKind::kBehavioral,
      .input_width = 64,
      .output_width = 64,
      .nominal_frames = 8,
      .software =
          [](ByteSpan in) {
            AAD_REQUIRE(in.size() >= 16 && (in.size() - 8) % 8 == 0,
                        "des expects key(8) || blocks(8k)");
            const Des des(in.subspan(0, 8));
            return des.encrypt_ecb(in.subspan(8));
          },
      .fabric_cycles =
          [](std::size_t bytes) {
            const std::int64_t blocks =
                static_cast<std::int64_t>((bytes - 8) / 8);
            return 16 + 16 + blocks;  // key setup + pipeline fill + 1/cyc
          },
      .host_time =
          [](std::size_t bytes) {
            return host_ns_from_cycles(60.0 * static_cast<double>(bytes - 8));
          },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return behavioral_bitstream("des", KernelId::kDes, 64, 64, 8,
                                        0.80, g);
          },
      .make_input = [](std::size_t blocks, std::uint64_t seed) {
        return random_bytes(8 + 8 * std::max<std::size_t>(1, blocks), seed);
      }});

  // XTEA: 32-stage pipeline (one half-round pair per stage), one block per
  // cycle when full.
  add(KernelSpec{
      .id = KernelId::kXtea,
      .name = "xtea",
      .kind = FunctionKind::kBehavioral,
      .input_width = 64,
      .output_width = 64,
      .nominal_frames = 4,
      .software =
          [](ByteSpan in) {
            AAD_REQUIRE(in.size() >= 24 && (in.size() - 16) % 8 == 0,
                        "xtea expects key(16) || blocks(8k)");
            const Xtea xtea(in.subspan(0, 16));
            return xtea.encrypt_ecb(in.subspan(16));
          },
      .fabric_cycles =
          [](std::size_t bytes) {
            const std::int64_t blocks =
                static_cast<std::int64_t>((bytes - 16) / 8);
            return 4 + 32 + blocks;  // key setup + pipeline fill + 1/cyc
          },
      .host_time =
          [](std::size_t bytes) {
            return host_ns_from_cycles(18.0 * static_cast<double>(bytes - 16));
          },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return behavioral_bitstream("xtea", KernelId::kXtea, 64, 64, 4,
                                        0.70, g);
          },
      .make_input = [](std::size_t blocks, std::uint64_t seed) {
        return random_bytes(16 + 8 * std::max<std::size_t>(1, blocks), seed);
      }});

  // SHA-1: 80 rounds per 64-byte block, one round per cycle.
  add(KernelSpec{
      .id = KernelId::kSha1,
      .name = "sha1",
      .kind = FunctionKind::kBehavioral,
      .input_width = 32,
      .output_width = 32,
      .nominal_frames = 8,
      .software =
          [](ByteSpan in) {
            const auto d = Sha1::hash(in);
            return Bytes(d.begin(), d.end());
          },
      .fabric_cycles =
          [](std::size_t bytes) {
            const std::int64_t blocks =
                static_cast<std::int64_t>((bytes + 9 + 63) / 64);
            return 10 + 80 * blocks;
          },
      .host_time =
          [](std::size_t bytes) {
            return host_ns_from_cycles(11.0 * static_cast<double>(bytes) + 500);
          },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return behavioral_bitstream("sha1", KernelId::kSha1, 32, 32, 8,
                                        0.80, g);
          },
      .make_input = [](std::size_t blocks, std::uint64_t seed) {
        return random_bytes(64 * std::max<std::size_t>(1, blocks), seed);
      }});

  // SHA-256: 64 rounds per block.
  add(KernelSpec{
      .id = KernelId::kSha256,
      .name = "sha256",
      .kind = FunctionKind::kBehavioral,
      .input_width = 32,
      .output_width = 32,
      .nominal_frames = 10,
      .software =
          [](ByteSpan in) {
            const auto d = Sha256::hash(in);
            return Bytes(d.begin(), d.end());
          },
      .fabric_cycles =
          [](std::size_t bytes) {
            const std::int64_t blocks =
                static_cast<std::int64_t>((bytes + 9 + 63) / 64);
            return 10 + 64 * blocks;
          },
      .host_time =
          [](std::size_t bytes) {
            return host_ns_from_cycles(18.0 * static_cast<double>(bytes) + 600);
          },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return behavioral_bitstream("sha256", KernelId::kSha256, 32, 32,
                                        10, 0.82, g);
          },
      .make_input = [](std::size_t blocks, std::uint64_t seed) {
        return random_bytes(64 * std::max<std::size_t>(1, blocks), seed);
      }});

  // MD5: 64 steps per block.
  add(KernelSpec{
      .id = KernelId::kMd5,
      .name = "md5",
      .kind = FunctionKind::kBehavioral,
      .input_width = 32,
      .output_width = 32,
      .nominal_frames = 7,
      .software =
          [](ByteSpan in) {
            const auto d = Md5::hash(in);
            return Bytes(d.begin(), d.end());
          },
      .fabric_cycles =
          [](std::size_t bytes) {
            const std::int64_t blocks =
                static_cast<std::int64_t>((bytes + 9 + 63) / 64);
            return 8 + 64 * blocks;
          },
      .host_time =
          [](std::size_t bytes) {
            return host_ns_from_cycles(7.0 * static_cast<double>(bytes) + 400);
          },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return behavioral_bitstream("md5", KernelId::kMd5, 32, 32, 7,
                                        0.78, g);
          },
      .make_input = [](std::size_t blocks, std::uint64_t seed) {
        return random_bytes(64 * std::max<std::size_t>(1, blocks), seed);
      }});

  // Matrix multiply: 16x16 systolic array, tiled.
  add(KernelSpec{
      .id = KernelId::kMatMul,
      .name = "matmul",
      .kind = FunctionKind::kBehavioral,
      .input_width = 256,
      .output_width = 512,
      .nominal_frames = 14,
      .software = [](ByteSpan in) { return matmul_bytes(in); },
      .fabric_cycles =
          [](std::size_t bytes) {
            const double n = std::sqrt(static_cast<double>(bytes) / 4.0);
            const double tiles = std::ceil(n / 16.0);
            return static_cast<std::int64_t>(tiles * tiles * tiles * 48.0) +
                   20;
          },
      .host_time =
          [](std::size_t bytes) {
            const double n = std::sqrt(static_cast<double>(bytes) / 4.0);
            return host_ns_from_cycles(1.6 * n * n * n + 200);
          },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return behavioral_bitstream("matmul", KernelId::kMatMul, 256, 512,
                                        14, 0.90, g);
          },
      .make_input = [](std::size_t blocks, std::uint64_t seed) {
        // `blocks` is the matrix dimension n.
        const std::size_t n = std::max<std::size_t>(2, blocks);
        return random_bytes(4 * n * n, seed);
      }});

  // Radix-2 FFT: 4 butterflies per cycle.
  add(KernelSpec{
      .id = KernelId::kFft,
      .name = "fft",
      .kind = FunctionKind::kBehavioral,
      .input_width = 64,
      .output_width = 64,
      .nominal_frames = 16,
      .software = [](ByteSpan in) { return fft_bytes(in); },
      .fabric_cycles =
          [](std::size_t bytes) {
            const double n = static_cast<double>(bytes) / 4.0;
            const double stages = std::log2(std::max(2.0, n));
            return static_cast<std::int64_t>(n / 2.0 * stages / 4.0) + 12;
          },
      .host_time =
          [](std::size_t bytes) {
            const double n = static_cast<double>(bytes) / 4.0;
            const double stages = std::log2(std::max(2.0, n));
            return host_ns_from_cycles(18.0 * n / 2.0 * stages + 300);
          },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return behavioral_bitstream("fft", KernelId::kFft, 64, 64, 16,
                                        0.85, g);
          },
      .make_input = [](std::size_t blocks, std::uint64_t seed) {
        // `blocks` is log2 of the FFT size; default 256 points.
        const std::size_t n = std::size_t{1}
                              << std::max<std::size_t>(3, blocks);
        return random_bytes(4 * n, seed);
      }});

  // 16-tap FIR: 4 MACs per cycle.
  add(KernelSpec{
      .id = KernelId::kFir16,
      .name = "fir16",
      .kind = FunctionKind::kBehavioral,
      .input_width = 16,
      .output_width = 16,
      .nominal_frames = 6,
      .software = [](ByteSpan in) { return fir_bytes(in); },
      .fabric_cycles =
          [](std::size_t bytes) {
            return static_cast<std::int64_t>(bytes / 2) * 4 + 8;
          },
      .host_time =
          [](std::size_t bytes) {
            return host_ns_from_cycles(20.0 * static_cast<double>(bytes / 2) +
                                       100);
          },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return behavioral_bitstream("fir16", KernelId::kFir16, 16, 16, 6,
                                        0.60, g);
          },
      .make_input = [](std::size_t blocks, std::uint64_t seed) {
        return random_bytes(2 * 64 * std::max<std::size_t>(1, blocks), seed);
      }});

  // Modular exponentiation (RSA private-key-style op): the workload the
  // algorithm-agile crypto engines of refs [1][2] were built for, and the
  // one with enough compute per transferred byte to beat the PCI wall.
  // Hardware model: bit-serial square-and-multiply with a pipelined
  // Montgomery multiplier, ~bits*(bits/8) cycles (RSA-1024 in ~1.3 ms at
  // 100 MHz, in line with published Virtex-II implementations).  Host
  // model: ~30 Mcycles for a 1024-bit private op (~10 ms on the 3 GHz
  // baseline), scaling cubically with width.
  add(KernelSpec{
      .id = KernelId::kModExp,
      .name = "modexp",
      .kind = FunctionKind::kBehavioral,
      .input_width = 32,
      .output_width = 32,
      .nominal_frames = 18,
      .software = [](ByteSpan in) { return modexp_bytes(in); },
      .fabric_cycles =
          [](std::size_t bytes) {
            const double bits = static_cast<double>(bytes) / 3.0 * 8.0;
            return static_cast<std::int64_t>(bits * bits / 8.0) + 64;
          },
      .host_time =
          [](std::size_t bytes) {
            const double bits = static_cast<double>(bytes) / 3.0 * 8.0;
            const double scale = bits / 1024.0;
            return host_ns_from_cycles(30e6 * scale * scale * scale + 5000);
          },
      .make_bitstream =
          [](const FrameGeometry& g) {
            return behavioral_bitstream("modexp", KernelId::kModExp, 32, 32,
                                        18, 0.88, g);
          },
      .make_input = [](std::size_t blocks, std::uint64_t seed) {
        // `blocks` scales the operand width: width = 32*blocks bytes.
        const std::size_t width = 32 * std::max<std::size_t>(1, blocks);
        Bytes in = random_bytes(3 * width, seed);
        // Force a valid odd modulus with its top bit set (RSA-shaped).
        in[3 * width - 1] |= 0x80;
        in[2 * width] |= 0x01;
        return in;
      }});

  return out;
}

// --- custom netlist drivers --------------------------------------------------

mcu::HardwareResult crc32_driver(netlist::LutExecutor& executor,
                                 ByteSpan input) {
  std::vector<bool> bus(9, false);
  for (Byte byte : input) {
    for (unsigned i = 0; i < 8; ++i) bus[i] = (byte >> i) & 1u;
    bus[8] = true;  // valid
    executor.step(bus);
  }
  std::fill(bus.begin(), bus.end(), false);  // drain cycle, valid = 0
  const auto out_bits = executor.step(bus);
  return mcu::HardwareResult{
      mcu::bits_to_bytes(out_bits),
      static_cast<std::int64_t>(input.size()) + 1};
}

mcu::HardwareResult lfsr32_driver(netlist::LutExecutor& executor,
                                  ByteSpan input) {
  AAD_REQUIRE(input.size() == 8, "lfsr32 expects seed||steps");
  const std::uint32_t steps = load_le32(input, 4);
  AAD_REQUIRE(steps <= 1u << 16, "lfsr32 steps capped at 65536");

  std::vector<bool> bus(33, false);
  for (unsigned i = 0; i < 32; ++i)
    bus[i] = (input[i / 8] >> (i % 8)) & 1u;
  bus[32] = true;  // load
  executor.step(bus);

  std::fill(bus.begin(), bus.end(), false);
  for (std::uint32_t i = 0; i < steps; ++i) executor.step(bus);
  const auto out_bits = executor.step(bus);  // pre-latch read
  return mcu::HardwareResult{
      mcu::bits_to_bytes(out_bits),
      static_cast<std::int64_t>(steps) + 2};
}

}  // namespace

const std::vector<KernelSpec>& catalog() {
  static const std::vector<KernelSpec> kCatalog = build_catalog();
  return kCatalog;
}

const KernelSpec& spec(KernelId id) {
  for (const KernelSpec& s : catalog())
    if (s.id == id) return s;
  AAD_FAIL(ErrorCode::kNotFound, "unknown kernel id");
}

std::vector<std::uint32_t> function_bank() {
  std::vector<std::uint32_t> bank;
  bank.reserve(catalog().size());
  for (const KernelSpec& s : catalog()) bank.push_back(function_id(s.id));
  return bank;
}

Bytes bank_input(std::uint32_t function, std::size_t blocks,
                 std::uint64_t seed) {
  return spec(static_cast<KernelId>(function)).make_input(blocks, seed);
}

void register_runtimes(mcu::RuntimeRegistry& registry) {
  registry.register_netlist_driver(function_id(KernelId::kCrc32),
                                   crc32_driver);
  registry.register_netlist_driver(function_id(KernelId::kLfsr32),
                                   lfsr32_driver);
  for (const KernelSpec& s : catalog()) {
    if (s.kind != FunctionKind::kBehavioral) continue;
    registry.register_behavioral(
        function_id(s.id),
        mcu::BehavioralModel{s.software, s.fabric_cycles});
  }
}

}  // namespace aad::algorithms
