#include "algorithms/sha256.h"

#include <cmath>

namespace aad::algorithms {
namespace {

std::uint32_t rotr(std::uint32_t x, unsigned n) noexcept {
  return (x >> n) | (x << (32 - n));
}

std::uint32_t frac_bits(double x) noexcept {
  return static_cast<std::uint32_t>(
      (x - std::floor(x)) * 4294967296.0 /* 2^32 */);
}

const std::uint32_t* round_constants() {
  static const auto k = [] {
    std::array<std::uint32_t, 64> out{};
    int found = 0;
    for (int n = 2; found < 64; ++n) {
      bool prime = true;
      for (int d = 2; d * d <= n; ++d)
        if (n % d == 0) {
          prime = false;
          break;
        }
      if (prime) out[static_cast<std::size_t>(found++)] = frac_bits(std::cbrt(static_cast<double>(n)));
    }
    return out;
  }();
  return k.data();
}

const std::uint32_t* initial_state() {
  static const auto h = [] {
    std::array<std::uint32_t, 8> out{};
    int found = 0;
    for (int n = 2; found < 8; ++n) {
      bool prime = true;
      for (int d = 2; d * d <= n; ++d)
        if (n % d == 0) {
          prime = false;
          break;
        }
      if (prime) out[static_cast<std::size_t>(found++)] = frac_bits(std::sqrt(static_cast<double>(n)));
    }
    return out;
  }();
  return h.data();
}

}  // namespace

void Sha256::reset() {
  for (int i = 0; i < 8; ++i) h_[i] = initial_state()[i];
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha256::process_block(const Byte block[64]) {
  const std::uint32_t* k = round_constants();
  std::uint32_t w[64];
  for (int t = 0; t < 16; ++t)
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  for (int t = 16; t < 64; ++t) {
    const std::uint32_t s0 =
        rotr(w[t - 15], 7) ^ rotr(w[t - 15], 18) ^ (w[t - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[t - 2], 17) ^ rotr(w[t - 2], 19) ^ (w[t - 2] >> 10);
    w[t] = w[t - 16] + s0 + w[t - 7] + s1;
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int t = 0; t < 64; ++t) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ ((~e) & g);
    const std::uint32_t temp1 = h + s1 + ch + k[t] + w[t];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha256::update(ByteSpan data) {
  total_bytes_ += data.size();
  for (Byte byte : data) {
    buffer_[buffered_++] = byte;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
}

std::array<Byte, 32> Sha256::digest() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  Byte pad = 0x80;
  update(ByteSpan(&pad, 1));
  const Byte zero = 0;
  while (buffered_ != 56) update(ByteSpan(&zero, 1));
  Byte len[8];
  for (int i = 0; i < 8; ++i)
    len[i] = static_cast<Byte>(bit_len >> (56 - 8 * i));
  update(ByteSpan(len, 8));

  std::array<Byte, 32> out;
  for (int i = 0; i < 8; ++i)
    for (int b = 0; b < 4; ++b)
      out[static_cast<std::size_t>(4 * i + b)] =
          static_cast<Byte>(h_[i] >> (24 - 8 * b));
  return out;
}

}  // namespace aad::algorithms
