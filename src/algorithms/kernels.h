// The algorithm bank: every function the co-processor can execute
// on demand, with
//   * a golden software implementation (also the host-only baseline),
//   * a bitstream builder (real mapped netlist, or realistic behavioral
//     stream per DESIGN.md's substitution policy),
//   * a fabric cycle model (netlist kernels count real executor cycles;
//     behavioral kernels use a calibrated per-block model),
//   * a host-CPU time model for the speedup experiment (E4), representing
//     a ~3 GHz 2005-era desktop running the same software implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bitstream/bitstream.h"
#include "common/bytebuffer.h"
#include "mcu/runtime.h"
#include "sim/time.h"

namespace aad::algorithms {

enum class KernelId : std::uint32_t {
  // Netlist kernels: really placed, configured and executed from the
  // simulated fabric's configuration plane.
  kAdder32 = 1,
  kParity32 = 2,
  kPopcount32 = 3,
  kComparator32 = 4,
  kGray32 = 5,
  kMul8 = 6,
  kCrc32 = 7,
  kLfsr32 = 8,
  // Behavioral kernels: software-exact compute + calibrated cycle model
  // behind a realistic synthesized bitstream.
  kAes128 = 100,
  kDes = 101,
  kXtea = 102,
  kSha1 = 103,
  kSha256 = 104,
  kMd5 = 105,
  kMatMul = 106,
  kFft = 107,
  kFir16 = 108,
  kModExp = 109,  ///< RSA-style 1024-bit modular exponentiation
};

struct KernelSpec {
  KernelId id;
  std::string name;
  bitstream::FunctionKind kind;
  std::uint32_t input_width = 0;   ///< input bus bits per fabric cycle
  std::uint32_t output_width = 0;  ///< output bus bits per fabric cycle
  /// Frames a default-geometry build occupies (behavioral: fixed footprint;
  /// netlist: what the mapper+packer produced for the 16-row geometry).
  unsigned nominal_frames = 0;

  /// Golden software implementation (bit-exact with the hardware path).
  std::function<Bytes(ByteSpan)> software;
  /// Fabric cycles for `input_bytes` (behavioral kernels only; netlist
  /// kernels report real executor cycles at run time).
  std::function<std::int64_t(std::size_t)> fabric_cycles;
  /// Host-only execution time for `input_bytes` (E4 baseline).
  std::function<sim::SimTime(std::size_t)> host_time;
  /// Build the configuration bitstream for `geometry`.
  std::function<bitstream::Bitstream(const fabric::FrameGeometry&)>
      make_bitstream;

  /// Canonical example input of `blocks` payload units (tests/benches).
  std::function<Bytes(std::size_t blocks, std::uint64_t seed)> make_input;
};

/// All kernels, netlist first.
const std::vector<KernelSpec>& catalog();

/// Lookup; throws kNotFound for an unknown id.
const KernelSpec& spec(KernelId id);

/// The ROM/MCU function id of a kernel (stable across runs).
constexpr std::uint32_t function_id(KernelId id) noexcept {
  return static_cast<std::uint32_t>(id);
}

/// Every catalog kernel's function id, in catalog order — the full bank
/// that multi-client traces draw from.  Tests, benches and examples share
/// this instead of each re-enumerating the catalog.
std::vector<std::uint32_t> function_bank();

/// Canonical request payload for a provisioned `function` id: the kernel's
/// make_input under a caller-chosen seed.  The workload::replay companion —
/// wrap it to mix a trace-local seed base with the request index.
Bytes bank_input(std::uint32_t function, std::size_t blocks,
                 std::uint64_t seed);

/// Register every behavioral model and custom netlist driver.
void register_runtimes(mcu::RuntimeRegistry& registry);

}  // namespace aad::algorithms
