#include "algorithms/fir.h"

#include <cmath>

#include "common/error.h"

namespace aad::algorithms {

std::vector<std::int16_t> fir(const std::vector<std::int16_t>& samples,
                              const std::vector<std::int16_t>& coeffs) {
  AAD_REQUIRE(!coeffs.empty(), "FIR needs at least one tap");
  std::vector<std::int16_t> out(samples.size());
  for (std::size_t n = 0; n < samples.size(); ++n) {
    std::int32_t acc = 0;
    for (std::size_t k = 0; k < coeffs.size() && k <= n; ++k)
      acc += static_cast<std::int32_t>(coeffs[k]) *
             static_cast<std::int32_t>(samples[n - k]);
    acc >>= 14;  // Q1.14 coefficient scaling
    if (acc > 32767) acc = 32767;
    if (acc < -32768) acc = -32768;
    out[n] = static_cast<std::int16_t>(acc);
  }
  return out;
}

std::vector<std::int16_t> default_lowpass16() {
  std::vector<std::int16_t> coeffs(16);
  for (int k = 0; k < 16; ++k) {
    const double t = static_cast<double>(k) - 7.5;
    const double sinc = std::sin(0.5 * 3.14159265358979323846 * t) /
                        (3.14159265358979323846 * t);
    const double window =
        0.54 - 0.46 * std::cos(2.0 * 3.14159265358979323846 *
                               static_cast<double>(k) / 15.0);
    coeffs[static_cast<std::size_t>(k)] = static_cast<std::int16_t>(
        std::lround(sinc * window * (1 << 14)));
  }
  return coeffs;
}

Bytes fir_bytes(ByteSpan input) {
  AAD_REQUIRE(input.size() % 2 == 0, "FIR payload must be int16 samples");
  const std::size_t n = input.size() / 2;
  std::vector<std::int16_t> samples(n);
  for (std::size_t i = 0; i < n; ++i)
    samples[i] = static_cast<std::int16_t>(
        static_cast<std::uint16_t>(input[2 * i]) |
        (static_cast<std::uint16_t>(input[2 * i + 1]) << 8));
  const auto filtered = fir(samples, default_lowpass16());
  Bytes out(input.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<std::uint16_t>(filtered[i]);
    out[2 * i] = static_cast<Byte>(v);
    out[2 * i + 1] = static_cast<Byte>(v >> 8);
  }
  return out;
}

}  // namespace aad::algorithms
