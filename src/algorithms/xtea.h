// XTEA (Needham & Wheeler, 1997), 64 Feistel half-rounds, ECB over 8-byte
// blocks.  Small enough that an RTL implementation is one round of logic
// iterated 32 fabric cycles — the cycle model in kernels.cpp reflects that.
#pragma once

#include <cstdint>

#include "common/bytebuffer.h"

namespace aad::algorithms {

class Xtea {
 public:
  /// `key` is 16 bytes (four 32-bit words, little-endian).
  explicit Xtea(ByteSpan key);

  void encrypt_block(std::uint32_t& v0, std::uint32_t& v1) const;
  void decrypt_block(std::uint32_t& v0, std::uint32_t& v1) const;

  /// ECB encryption; size must be a multiple of 8 (little-endian packing).
  Bytes encrypt_ecb(ByteSpan data) const;

 private:
  std::uint32_t key_[4];
};

}  // namespace aad::algorithms
