// Minimal unsigned big-integer arithmetic for the modular-exponentiation
// kernel (RSA-style workloads — the algorithm-agile crypto co-processors the
// paper builds on, refs [1][2], were motivated by exactly this).
//
// Little-endian 32-bit limbs; schoolbook multiplication and binary long
// division — small and obviously correct rather than fast, since the golden
// path only has to validate the hardware model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytebuffer.h"

namespace aad::algorithms {

class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t value);
  /// Little-endian byte import/export.
  static BigUint from_bytes(ByteSpan data);
  Bytes to_bytes(std::size_t width_bytes) const;

  bool is_zero() const noexcept { return limbs_.empty(); }
  std::size_t bit_length() const noexcept;
  bool bit(std::size_t index) const noexcept;

  static int compare(const BigUint& a, const BigUint& b) noexcept;
  bool operator==(const BigUint& other) const noexcept {
    return limbs_ == other.limbs_;
  }

  static BigUint add(const BigUint& a, const BigUint& b);
  /// a - b; requires a >= b.
  static BigUint sub(const BigUint& a, const BigUint& b);
  static BigUint mul(const BigUint& a, const BigUint& b);
  /// a mod m; m must be nonzero.
  static BigUint mod(const BigUint& a, const BigUint& m);
  BigUint shifted_left(std::size_t bits) const;

  /// base^exponent mod modulus (square-and-multiply); modulus > 1.
  static BigUint mod_exp(const BigUint& base, const BigUint& exponent,
                         const BigUint& modulus);

 private:
  void trim();
  std::vector<std::uint32_t> limbs_;  // little-endian, no trailing zeros
};

/// Behavioral-kernel byte contract: input = base || exponent || modulus,
/// each `width` = input.size()/3 bytes little-endian; output = result,
/// `width` bytes.  Throws unless the size divides evenly and modulus > 1.
Bytes modexp_bytes(ByteSpan input);

}  // namespace aad::algorithms
