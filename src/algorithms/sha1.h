// SHA-1 (FIPS 180-1).  Golden reference for the SHA-1 behavioral kernel.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytebuffer.h"

namespace aad::algorithms {

class Sha1 {
 public:
  void update(ByteSpan data);
  /// Finalize and return the 20-byte digest; the object then needs reset().
  std::array<Byte, 20> digest();
  void reset();

  static std::array<Byte, 20> hash(ByteSpan data) {
    Sha1 h;
    h.update(data);
    return h.digest();
  }

 private:
  void process_block(const Byte block[64]);

  std::uint32_t h_[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u,
                         0xC3D2E1F0u};
  Byte buffer_[64] = {};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace aad::algorithms
