#include "algorithms/sha1.h"

namespace aad::algorithms {
namespace {
std::uint32_t rotl(std::uint32_t x, unsigned n) noexcept {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

void Sha1::reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha1::process_block(const Byte block[64]) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t)
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  for (int t = 16; t < 80; ++t)
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f;
    std::uint32_t k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(ByteSpan data) {
  total_bytes_ += data.size();
  for (Byte byte : data) {
    buffer_[buffered_++] = byte;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
}

std::array<Byte, 20> Sha1::digest() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  Byte pad = 0x80;
  update(ByteSpan(&pad, 1));
  const Byte zero = 0;
  while (buffered_ != 56) update(ByteSpan(&zero, 1));
  Byte len[8];
  for (int i = 0; i < 8; ++i)
    len[i] = static_cast<Byte>(bit_len >> (56 - 8 * i));
  update(ByteSpan(len, 8));

  std::array<Byte, 20> out;
  for (int i = 0; i < 5; ++i)
    for (int b = 0; b < 4; ++b)
      out[static_cast<std::size_t>(4 * i + b)] =
          static_cast<Byte>(h_[i] >> (24 - 8 * b));
  return out;
}

}  // namespace aad::algorithms
