// Integer matrix multiply: the "offload a dense kernel" workload the paper's
// introduction motivates.  Operates on int16 inputs with int32 accumulation
// (a systolic-array-friendly precision choice); the behavioral kernel's
// cycle model assumes an NxN systolic array streaming one row per cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytebuffer.h"

namespace aad::algorithms {

/// C = A * B for square NxN int16 matrices, row-major.
std::vector<std::int32_t> matmul(const std::vector<std::int16_t>& a,
                                 const std::vector<std::int16_t>& b,
                                 std::size_t n);

/// Byte-level wrapper used by the behavioral kernel: input is A then B as
/// little-endian int16 (must be 2 * 2 * n^2 bytes for some integer n);
/// output is C as little-endian int32.
Bytes matmul_bytes(ByteSpan input);

}  // namespace aad::algorithms
