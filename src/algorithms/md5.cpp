#include "algorithms/md5.h"

#include <cmath>

namespace aad::algorithms {
namespace {

std::uint32_t rotl(std::uint32_t x, unsigned n) noexcept {
  return (x << n) | (x >> (32 - n));
}

const std::uint32_t* sine_table() {
  static const auto k = [] {
    std::array<std::uint32_t, 64> out{};
    for (int i = 0; i < 64; ++i)
      out[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(
          std::floor(std::abs(std::sin(static_cast<double>(i + 1))) *
                     4294967296.0));
    return out;
  }();
  return k.data();
}

constexpr unsigned kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

}  // namespace

void Md5::reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  buffered_ = 0;
  total_bytes_ = 0;
}

void Md5::process_block(const Byte block[64]) {
  const std::uint32_t* k = sine_table();
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i)
    m[i] = static_cast<std::uint32_t>(block[4 * i]) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 8) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 3]) << 24);

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  for (int t = 0; t < 64; ++t) {
    std::uint32_t f;
    int g;
    if (t < 16) {
      f = (b & c) | ((~b) & d);
      g = t;
    } else if (t < 32) {
      f = (d & b) | ((~d) & c);
      g = (5 * t + 1) % 16;
    } else if (t < 48) {
      f = b ^ c ^ d;
      g = (3 * t + 5) % 16;
    } else {
      f = c ^ (b | (~d));
      g = (7 * t) % 16;
    }
    const std::uint32_t temp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + k[t] + m[g], kShift[t]);
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
}

void Md5::update(ByteSpan data) {
  total_bytes_ += data.size();
  for (Byte byte : data) {
    buffer_[buffered_++] = byte;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
}

std::array<Byte, 16> Md5::digest() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  Byte pad = 0x80;
  update(ByteSpan(&pad, 1));
  const Byte zero = 0;
  while (buffered_ != 56) update(ByteSpan(&zero, 1));
  Byte len[8];
  for (int i = 0; i < 8; ++i)
    len[i] = static_cast<Byte>(bit_len >> (8 * i));  // little-endian length
  update(ByteSpan(len, 8));

  std::array<Byte, 16> out;
  for (int i = 0; i < 4; ++i)
    for (int b = 0; b < 4; ++b)
      out[static_cast<std::size_t>(4 * i + b)] =
          static_cast<Byte>(h_[i] >> (8 * b));  // little-endian state
  return out;
}

}  // namespace aad::algorithms
