// AES-128 (FIPS-197), ECB encryption of whole 16-byte blocks.
//
// The S-box and round constants are derived algebraically (GF(2^8) inverse +
// affine map) rather than transcribed, and checked against the FIPS-197
// example vector in tests.  This is the golden reference for the AES
// behavioral kernel.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytebuffer.h"

namespace aad::algorithms {

class Aes128 {
 public:
  /// Expands `key` (16 bytes) into the round-key schedule.
  explicit Aes128(ByteSpan key);

  /// Encrypt one 16-byte block in place.
  void encrypt_block(std::uint8_t block[16]) const;

  /// ECB over a whole buffer; size must be a multiple of 16.
  Bytes encrypt_ecb(ByteSpan data) const;

  /// The AES S-box (exposed for tests and for the hardware cycle model's
  /// table-lookup discussion).
  static const std::array<std::uint8_t, 256>& sbox();

 private:
  std::array<std::uint8_t, 176> round_keys_{};  // 11 round keys x 16
};

}  // namespace aad::algorithms
