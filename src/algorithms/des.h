// DES (FIPS 46-3), ECB over whole 8-byte blocks.
//
// Kept in the bank because the algorithm-agile co-processor literature the
// paper builds on ([1], [2]) is explicitly about cipher agility for
// IPSec-era protocol suites, where DES/3DES endpoints were the common case.
// The final permutation is derived as the inverse of IP rather than
// transcribed.
#pragma once

#include <cstdint>

#include "common/bytebuffer.h"

namespace aad::algorithms {

class Des {
 public:
  /// `key` is 8 bytes (parity bits ignored, as usual).
  explicit Des(ByteSpan key);

  std::uint64_t encrypt_block(std::uint64_t block) const;
  std::uint64_t decrypt_block(std::uint64_t block) const;

  /// ECB encryption; size must be a multiple of 8 (big-endian packing).
  Bytes encrypt_ecb(ByteSpan data) const;

 private:
  std::uint64_t crypt(std::uint64_t block, bool decrypt) const;
  std::uint64_t subkeys_[16];  // 48-bit round keys
};

}  // namespace aad::algorithms
