// MD5 (RFC 1321).  The sine-derived constant table is generated at startup
// from the RFC's definition K[i] = floor(2^32 * |sin(i+1)|).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytebuffer.h"

namespace aad::algorithms {

class Md5 {
 public:
  void update(ByteSpan data);
  std::array<Byte, 16> digest();
  void reset();

  static std::array<Byte, 16> hash(ByteSpan data) {
    Md5 h;
    h.update(data);
    return h.digest();
  }

 private:
  void process_block(const Byte block[64]);

  std::uint32_t h_[4] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u};
  Byte buffer_[64] = {};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace aad::algorithms
