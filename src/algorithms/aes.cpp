#include "algorithms/aes.h"

#include "common/error.h"

namespace aad::algorithms {
namespace {

std::uint8_t xtime(std::uint8_t x) noexcept {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) ? 0x1B : 0x00));
}

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) noexcept {
  std::uint8_t out = 0;
  while (b) {
    if (b & 1) out ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return out;
}

std::array<std::uint8_t, 256> make_sbox() noexcept {
  // Multiplicative inverse in GF(2^8) followed by the affine transform.
  std::array<std::uint8_t, 256> box{};
  for (unsigned v = 0; v < 256; ++v) {
    std::uint8_t inv = 0;
    if (v != 0) {
      for (unsigned c = 1; c < 256; ++c) {
        if (gf_mul(static_cast<std::uint8_t>(v),
                   static_cast<std::uint8_t>(c)) == 1) {
          inv = static_cast<std::uint8_t>(c);
          break;
        }
      }
    }
    std::uint8_t b = inv;
    std::uint8_t result = 0x63;
    for (int i = 0; i < 8; ++i) {
      const std::uint8_t bit =
          static_cast<std::uint8_t>(((b >> i) ^ (b >> ((i + 4) % 8)) ^
                                     (b >> ((i + 5) % 8)) ^
                                     (b >> ((i + 6) % 8)) ^
                                     (b >> ((i + 7) % 8))) &
                                    1u);
      result = static_cast<std::uint8_t>(result ^ (bit << i));
    }
    box[v] = result;
  }
  return box;
}

}  // namespace

const std::array<std::uint8_t, 256>& Aes128::sbox() {
  static const std::array<std::uint8_t, 256> box = make_sbox();
  return box;
}

Aes128::Aes128(ByteSpan key) {
  AAD_REQUIRE(key.size() == 16, "AES-128 key must be 16 bytes");
  const auto& box = sbox();
  for (int i = 0; i < 16; ++i) round_keys_[static_cast<std::size_t>(i)] = key[static_cast<std::size_t>(i)];
  std::uint8_t rcon = 0x01;
  for (int word = 4; word < 44; ++word) {
    std::uint8_t temp[4];
    for (int k = 0; k < 4; ++k)
      temp[k] = round_keys_[static_cast<std::size_t>((word - 1) * 4 + k)];
    if (word % 4 == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(box[temp[1]] ^ rcon);
      temp[1] = box[temp[2]];
      temp[2] = box[temp[3]];
      temp[3] = box[t0];
      rcon = xtime(rcon);
    }
    for (int k = 0; k < 4; ++k)
      round_keys_[static_cast<std::size_t>(word * 4 + k)] = static_cast<std::uint8_t>(
          round_keys_[static_cast<std::size_t>((word - 4) * 4 + k)] ^ temp[k]);
  }
}

void Aes128::encrypt_block(std::uint8_t block[16]) const {
  const auto& box = sbox();
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i)
      block[i] = static_cast<std::uint8_t>(
          block[i] ^ round_keys_[static_cast<std::size_t>(round * 16 + i)]);
  };
  auto sub_bytes = [&] {
    for (int i = 0; i < 16; ++i) block[i] = box[block[i]];
  };
  auto shift_rows = [&] {
    // State is column-major: byte index = 4*col + row.
    std::uint8_t tmp[16];
    for (int col = 0; col < 4; ++col)
      for (int row = 0; row < 4; ++row)
        tmp[4 * col + row] = block[4 * ((col + row) % 4) + row];
    for (int i = 0; i < 16; ++i) block[i] = tmp[i];
  };
  auto mix_columns = [&] {
    for (int col = 0; col < 4; ++col) {
      std::uint8_t* c = block + 4 * col;
      const std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
      c[0] = static_cast<std::uint8_t>(xtime(a0) ^ xtime(a1) ^ a1 ^ a2 ^ a3);
      c[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ xtime(a2) ^ a2 ^ a3);
      c[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ xtime(a3) ^ a3);
      c[3] = static_cast<std::uint8_t>(xtime(a0) ^ a0 ^ a1 ^ a2 ^ xtime(a3));
    }
  };

  add_round_key(0);
  for (int round = 1; round <= 9; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}

Bytes Aes128::encrypt_ecb(ByteSpan data) const {
  AAD_REQUIRE(data.size() % 16 == 0, "AES-ECB input must be 16-byte blocks");
  Bytes out(data.begin(), data.end());
  for (std::size_t off = 0; off < out.size(); off += 16)
    encrypt_block(out.data() + off);
  return out;
}

}  // namespace aad::algorithms
