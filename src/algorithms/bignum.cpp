#include "algorithms/bignum.h"

#include "common/error.h"

namespace aad::algorithms {

BigUint::BigUint(std::uint64_t value) {
  if (value != 0) limbs_.push_back(static_cast<std::uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_bytes(ByteSpan data) {
  BigUint out;
  out.limbs_.resize((data.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < data.size(); ++i)
    out.limbs_[i / 4] |= static_cast<std::uint32_t>(data[i]) << (8 * (i % 4));
  out.trim();
  return out;
}

Bytes BigUint::to_bytes(std::size_t width_bytes) const {
  Bytes out(width_bytes, 0);
  for (std::size_t i = 0; i < width_bytes && i / 4 < limbs_.size(); ++i)
    out[i] = static_cast<Byte>(limbs_[i / 4] >> (8 * (i % 4)));
  return out;
}

std::size_t BigUint::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  std::size_t bits = limbs_.size() * 32;
  std::uint32_t top = limbs_.back();
  while (!(top & 0x80000000u)) {
    top <<= 1;
    --bits;
  }
  return bits;
}

bool BigUint::bit(std::size_t index) const noexcept {
  const std::size_t limb = index / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (index % 32)) & 1u;
}

int BigUint::compare(const BigUint& a, const BigUint& b) noexcept {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUint BigUint::add(const BigUint& a, const BigUint& b) {
  BigUint out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

BigUint BigUint::sub(const BigUint& a, const BigUint& b) {
  AAD_REQUIRE(compare(a, b) >= 0, "BigUint::sub would underflow");
  BigUint out;
  out.limbs_.resize(a.limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigUint BigUint::mul(const BigUint& a, const BigUint& b) {
  if (a.is_zero() || b.is_zero()) return BigUint{};
  BigUint out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(a.limbs_[i]) * b.limbs_[j] +
          out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    out.limbs_[i + b.limbs_.size()] += static_cast<std::uint32_t>(carry);
  }
  out.trim();
  return out;
}

BigUint BigUint::shifted_left(std::size_t bits) const {
  if (is_zero()) return BigUint{};
  const std::size_t limb_shift = bits / 32;
  const unsigned bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0)
      out.limbs_[i + limb_shift + 1] |=
          static_cast<std::uint32_t>(limbs_[i] >> (32 - bit_shift));
  }
  out.trim();
  return out;
}

BigUint BigUint::mod(const BigUint& a, const BigUint& m) {
  AAD_REQUIRE(!m.is_zero(), "modulus must be nonzero");
  if (compare(a, m) < 0) return a;
  // Binary long division: subtract the largest aligned shift of m.
  BigUint rem = a;
  const std::size_t shift_max = a.bit_length() - m.bit_length();
  for (std::size_t s = shift_max + 1; s-- > 0;) {
    const BigUint shifted = m.shifted_left(s);
    if (compare(rem, shifted) >= 0) rem = sub(rem, shifted);
  }
  return rem;
}

BigUint BigUint::mod_exp(const BigUint& base, const BigUint& exponent,
                         const BigUint& modulus) {
  AAD_REQUIRE(compare(modulus, BigUint{1}) > 0, "modulus must exceed 1");
  BigUint result{1};
  BigUint acc = mod(base, modulus);
  const std::size_t bits = exponent.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exponent.bit(i)) result = mod(mul(result, acc), modulus);
    acc = mod(mul(acc, acc), modulus);
  }
  return result;
}

Bytes modexp_bytes(ByteSpan input) {
  AAD_REQUIRE(input.size() % 3 == 0 && input.size() > 0,
              "modexp payload must be base||exponent||modulus");
  const std::size_t width = input.size() / 3;
  const BigUint base = BigUint::from_bytes(input.subspan(0, width));
  const BigUint exponent = BigUint::from_bytes(input.subspan(width, width));
  const BigUint modulus = BigUint::from_bytes(input.subspan(2 * width, width));
  AAD_REQUIRE(BigUint::compare(modulus, BigUint{1}) > 0,
              "modexp modulus must exceed 1");
  return BigUint::mod_exp(base, exponent, modulus).to_bytes(width);
}

}  // namespace aad::algorithms
