#include "algorithms/fft.h"

#include <cmath>

#include "common/bitops.h"
#include "common/error.h"

namespace aad::algorithms {
namespace {

constexpr int kTwiddleFrac = 14;  // Q1.14

std::int16_t sat16(std::int32_t v) noexcept {
  if (v > 32767) return 32767;
  if (v < -32768) return -32768;
  return static_cast<std::int16_t>(v);
}

}  // namespace

void fft_q15(std::vector<ComplexQ15>& data) {
  const std::size_t n = data.size();
  AAD_REQUIRE(n >= 2 && bits::is_pow2(n), "FFT size must be a power of two");
  const unsigned log_n = bits::log2_exact(n);

  // Bit-reversal reorder.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j =
        static_cast<std::size_t>(bits::reverse_bits(i, log_n));
    if (j > i) std::swap(data[i], data[j]);
  }

  for (unsigned stage = 1; stage <= log_n; ++stage) {
    const std::size_t m = std::size_t{1} << stage;
    const std::size_t half = m / 2;
    for (std::size_t k = 0; k < n; k += m) {
      for (std::size_t j = 0; j < half; ++j) {
        // Twiddle W_m^j = e^{-2*pi*i*j/m} in Q1.14.
        const double angle =
            -2.0 * 3.14159265358979323846 * static_cast<double>(j) /
            static_cast<double>(m);
        const std::int32_t wr = static_cast<std::int32_t>(
            std::lround(std::cos(angle) * (1 << kTwiddleFrac)));
        const std::int32_t wi = static_cast<std::int32_t>(
            std::lround(std::sin(angle) * (1 << kTwiddleFrac)));

        ComplexQ15& u = data[k + j];
        ComplexQ15& v = data[k + j + half];
        const std::int32_t tr =
            (wr * v.re - wi * v.im) >> kTwiddleFrac;
        const std::int32_t ti =
            (wr * v.im + wi * v.re) >> kTwiddleFrac;
        // Butterfly with 1/2 scaling per stage (overflow-safe pipeline).
        const std::int32_t ur = u.re;
        const std::int32_t ui = u.im;
        u.re = sat16((ur + tr) >> 1);
        u.im = sat16((ui + ti) >> 1);
        v.re = sat16((ur - tr) >> 1);
        v.im = sat16((ui - ti) >> 1);
      }
    }
  }
}

Bytes fft_bytes(ByteSpan input) {
  AAD_REQUIRE(input.size() % 4 == 0, "FFT payload must be complex int16");
  const std::size_t n = input.size() / 4;
  std::vector<ComplexQ15> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i].re = static_cast<std::int16_t>(
        static_cast<std::uint16_t>(input[4 * i]) |
        (static_cast<std::uint16_t>(input[4 * i + 1]) << 8));
    data[i].im = static_cast<std::int16_t>(
        static_cast<std::uint16_t>(input[4 * i + 2]) |
        (static_cast<std::uint16_t>(input[4 * i + 3]) << 8));
  }
  fft_q15(data);
  Bytes out(input.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto re = static_cast<std::uint16_t>(data[i].re);
    const auto im = static_cast<std::uint16_t>(data[i].im);
    out[4 * i] = static_cast<Byte>(re);
    out[4 * i + 1] = static_cast<Byte>(re >> 8);
    out[4 * i + 2] = static_cast<Byte>(im);
    out[4 * i + 3] = static_cast<Byte>(im >> 8);
  }
  return out;
}

}  // namespace aad::algorithms
