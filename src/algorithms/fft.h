// Fixed-point radix-2 decimation-in-time FFT (Q1.14 twiddles, int32
// intermediate), power-of-two sizes.  Matches the arithmetic an FPGA
// butterfly datapath would use, so the behavioral kernel's outputs are what
// the hardware would genuinely produce (bit-exact integer math).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytebuffer.h"

namespace aad::algorithms {

struct ComplexQ15 {
  std::int16_t re = 0;
  std::int16_t im = 0;

  bool operator==(const ComplexQ15&) const = default;
};

/// In-place FFT over `data` (size must be a power of two >= 2).  Applies
/// the conventional 1/2 scaling per stage to avoid overflow, as fixed-point
/// pipelines do.
void fft_q15(std::vector<ComplexQ15>& data);

/// Byte wrapper: input = N complex samples as (re,im) little-endian int16
/// pairs; output = transformed samples in the same layout.
Bytes fft_bytes(ByteSpan input);

}  // namespace aad::algorithms
