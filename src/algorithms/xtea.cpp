#include "algorithms/xtea.h"

#include "common/error.h"

namespace aad::algorithms {

namespace {
constexpr std::uint32_t kDelta = 0x9E3779B9u;
constexpr unsigned kRounds = 32;
}  // namespace

Xtea::Xtea(ByteSpan key) {
  AAD_REQUIRE(key.size() == 16, "XTEA key must be 16 bytes");
  for (int w = 0; w < 4; ++w) {
    key_[w] = 0;
    for (int b = 3; b >= 0; --b)
      key_[w] = (key_[w] << 8) | key[static_cast<std::size_t>(w * 4 + b)];
  }
}

void Xtea::encrypt_block(std::uint32_t& v0, std::uint32_t& v1) const {
  std::uint32_t sum = 0;
  for (unsigned i = 0; i < kRounds; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key_[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key_[(sum >> 11) & 3]);
  }
}

void Xtea::decrypt_block(std::uint32_t& v0, std::uint32_t& v1) const {
  std::uint32_t sum = kDelta * kRounds;
  for (unsigned i = 0; i < kRounds; ++i) {
    v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key_[(sum >> 11) & 3]);
    sum -= kDelta;
    v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key_[sum & 3]);
  }
}

Bytes Xtea::encrypt_ecb(ByteSpan data) const {
  AAD_REQUIRE(data.size() % 8 == 0, "XTEA-ECB input must be 8-byte blocks");
  Bytes out(data.begin(), data.end());
  for (std::size_t off = 0; off < out.size(); off += 8) {
    std::uint32_t v0 = 0;
    std::uint32_t v1 = 0;
    for (int b = 3; b >= 0; --b) {
      v0 = (v0 << 8) | out[off + static_cast<std::size_t>(b)];
      v1 = (v1 << 8) | out[off + 4 + static_cast<std::size_t>(b)];
    }
    encrypt_block(v0, v1);
    for (int b = 0; b < 4; ++b) {
      out[off + static_cast<std::size_t>(b)] = static_cast<Byte>(v0 >> (8 * b));
      out[off + 4 + static_cast<std::size_t>(b)] = static_cast<Byte>(v1 >> (8 * b));
    }
  }
  return out;
}

}  // namespace aad::algorithms
