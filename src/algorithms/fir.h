// Fixed-point FIR filter (int16 samples, Q1.14 coefficients, int32 MAC).
// The streaming-DSP workload for the on-demand swap examples.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytebuffer.h"

namespace aad::algorithms {

/// y[n] = sum_k coeff[k] * x[n-k], zero prehistory, >>14 output scaling.
std::vector<std::int16_t> fir(const std::vector<std::int16_t>& samples,
                              const std::vector<std::int16_t>& coeffs);

/// A 16-tap low-pass prototype (Hamming-windowed sinc, cutoff 0.25 fs).
std::vector<std::int16_t> default_lowpass16();

/// Byte wrapper with the default 16-tap filter: little-endian int16 samples
/// in, same layout out.
Bytes fir_bytes(ByteSpan input);

}  // namespace aad::algorithms
