#include "mcu/config_engine.h"

#include <algorithm>

#include "common/crc32.h"

namespace aad::mcu {

std::uint64_t window_content_hash(ByteSpan window) noexcept {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const Byte b : window) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h == 0 ? 1 : h;  // 0 is the frame table's "unknown" sentinel
}

ConfigureResult ConfigEngine::configure(
    const memory::RomImage& rom, const memory::RomRecord& record,
    std::span<const fabric::FrameIndex> targets, fabric::Fabric& fabric,
    const memory::RomTiming& rom_timing, sim::Trace* trace,
    sim::SimTime start, std::uint32_t expected_raw_crc) {
  const auto& geometry = fabric.geometry();
  AAD_REQUIRE(record.frames == targets.size(),
              "target frame count does not match the record footprint");
  AAD_REQUIRE(record.clb_rows == geometry.clb_rows,
              "bitstream was built for a different device geometry");
  const std::size_t frame_bytes = geometry.frame_bytes();
  AAD_REQUIRE(record.raw_size ==
                  frame_bytes * static_cast<std::size_t>(record.frames),
              "record raw size inconsistent with footprint");

  const ByteSpan compressed = rom.payload(record);
  if (Crc32::compute(compressed) != record.payload_crc)
    AAD_FAIL(ErrorCode::kCorruptData,
             "compressed payload CRC mismatch (ROM corruption)");

  const auto codec = compress::make_codec(record.codec, frame_bytes);
  auto stream = codec->decompress_stream(compressed);
  if (stream->raw_size() != record.raw_size)
    AAD_FAIL(ErrorCode::kCorruptData,
             "compressed stream raw size disagrees with record");

  // Per-window stage durations.  Compressed bytes arrive from ROM roughly
  // evenly per window (the decoder consumes as it produces); the data path
  // below is exact, only the ROM-stage apportioning is averaged.
  const std::size_t windows = targets.size();
  const std::size_t rom_bytes_per_window =
      windows == 0 ? 0 : (compressed.size() + windows - 1) / windows;
  const sim::SimTime rom_t = rom_timing.read_time(rom_bytes_per_window);
  const double cpb = compress::decompress_cycles_per_byte(record.codec);
  const sim::SimTime dec_t = config_.engine_clock.cycles(
      static_cast<std::int64_t>(cpb * static_cast<double>(frame_bytes)));
  const sim::SimTime cfg_t = fabric.port().frame_time(geometry);
  const sim::SimTime check_t = config_.engine_clock.cycles(
      static_cast<std::int64_t>(config_.delta_check_cycles));

  const bool delta = config_.delta_reconfig;
  if (delta && frame_hashes_.size() < geometry.frame_count)
    frame_hashes_.resize(geometry.frame_count, 0);

  ConfigureResult result;
  result.compressed_bytes = compressed.size();
  result.raw_bytes = record.raw_size;

  // Decode-before-program: pull the WHOLE image out of the decompressor
  // and verify it up front.  A truncated, overlong or CRC-divergent stream
  // is rejected here — before any frame is programmed or any tracker entry
  // updated — so a corrupted bitstream can never leave garbage frames on
  // the fabric.  The timing recurrence below is unchanged: the real module
  // still streams window by window; only the failure atomicity differs.
  Bytes raw(static_cast<std::size_t>(windows) * frame_bytes);
  {
    std::size_t got = 0;
    while (got < raw.size()) {
      const std::size_t n =
          stream->read(std::span<Byte>(raw.data() + got, raw.size() - got));
      if (n == 0)
        AAD_FAIL(ErrorCode::kCorruptData,
                 "configuration stream ended mid-frame");
      got += n;
    }
    Byte probe;
    if (stream->read(std::span<Byte>(&probe, 1)) != 0)
      AAD_FAIL(ErrorCode::kCorruptData,
               "configuration stream longer than the record footprint");
    if (expected_raw_crc != 0 && Crc32::compute(raw) != expected_raw_crc)
      AAD_FAIL(ErrorCode::kCorruptData,
               "decoded function image CRC mismatch");
  }

  // Pipeline recurrence over the three stages.
  sim::SimTime rom_done = start;
  sim::SimTime dec_done = start;
  sim::SimTime cfg_done = start;

  for (std::size_t w = 0; w < windows; ++w) {
    const ByteSpan window(raw.data() + w * frame_bytes, frame_bytes);
    const auto words = bitstream::bytes_to_words(window);

    // Delta flow: the frame table says this frame already holds exactly
    // this window — verified by readback compare (hash-collision
    // insurance).  The window's compressed span is never fetched or
    // decoded; only the table lookup costs anything.
    bool delta_skip = false;
    std::uint64_t wh = 0;
    if (delta) {
      wh = window_content_hash(window);
      if (frame_hashes_[targets[w]] == wh) {
        const auto current = fabric.memory().read_frame(targets[w]);
        delta_skip = std::equal(words.begin(), words.end(), current.begin());
      }
    }
    // Difference-based flow (XAPP290): readback compare skips only the
    // port write — the window still streams and decodes.
    bool skip = delta_skip;
    if (!skip && config_.difference_based) {
      const auto current = fabric.memory().read_frame(targets[w]);
      skip = std::equal(words.begin(), words.end(), current.begin());
    }
    sim::SimTime this_rom_t = rom_t;
    sim::SimTime this_dec_t = dec_t;
    sim::SimTime this_cfg_t = cfg_t;
    if (delta_skip) {
      ++result.frames_skipped;
      ++result.frames_skipped_delta;
      this_rom_t = sim::SimTime::zero();
      this_dec_t = check_t;
      this_cfg_t = sim::SimTime::zero();
    } else if (skip) {
      ++result.frames_skipped;
      this_cfg_t = config_.engine_clock.cycles(static_cast<std::int64_t>(
          config_.compare_cycles_per_byte * static_cast<double>(frame_bytes)));
    } else {
      fabric.configure_frame(targets[w], words);
    }
    if (delta) frame_hashes_[targets[w]] = wh;

    // Timing: stage chaining.
    const sim::SimTime rom_begin = rom_done;
    rom_done = rom_done + this_rom_t;
    const sim::SimTime dec_begin = std::max(rom_done, dec_done);
    dec_done = dec_begin + this_dec_t;
    const sim::SimTime cfg_begin = std::max(dec_done, cfg_done);
    cfg_done = cfg_begin + this_cfg_t;

    result.rom_bound += this_rom_t;
    result.decompress_bound += this_dec_t;
    result.config_bound += this_cfg_t;

    if (trace) {
      trace->record(sim::Stage::kRom, record.name + "/rom", rom_begin,
                    rom_done);
      trace->record(sim::Stage::kDecompress, record.name + "/dec", dec_begin,
                    dec_done);
      trace->record(sim::Stage::kConfigure,
                    record.name + "/frame" + std::to_string(targets[w]),
                    cfg_begin, cfg_done);
    }
  }

  result.total = cfg_done - start;
  result.frames_written = windows - result.frames_skipped;
  result.bytes_streamed =
      std::min(compressed.size(),
               (windows - result.frames_skipped_delta) * rom_bytes_per_window);
  return result;
}

sim::SimTime ConfigEngine::estimate_time(std::size_t compressed_bytes,
                                         unsigned frames,
                                         compress::CodecId codec,
                                         std::size_t frame_bytes,
                                         sim::SimTime frame_time,
                                         const memory::RomTiming& rom_timing,
                                         const std::vector<bool>& skip) const {
  const std::size_t windows = frames;
  if (windows == 0) return sim::SimTime::zero();
  const std::size_t rom_bytes_per_window =
      (compressed_bytes + windows - 1) / windows;
  const sim::SimTime rom_t = rom_timing.read_time(rom_bytes_per_window);
  const double cpb = compress::decompress_cycles_per_byte(codec);
  const sim::SimTime dec_t = config_.engine_clock.cycles(
      static_cast<std::int64_t>(cpb * static_cast<double>(frame_bytes)));
  const sim::SimTime check_t = config_.engine_clock.cycles(
      static_cast<std::int64_t>(config_.delta_check_cycles));

  sim::SimTime rom_done = sim::SimTime::zero();
  sim::SimTime dec_done = sim::SimTime::zero();
  sim::SimTime cfg_done = sim::SimTime::zero();
  for (std::size_t w = 0; w < windows; ++w) {
    const bool s = w < skip.size() && skip[w];
    rom_done = rom_done + (s ? sim::SimTime::zero() : rom_t);
    dec_done = std::max(rom_done, dec_done) + (s ? check_t : dec_t);
    cfg_done = std::max(dec_done, cfg_done) + (s ? sim::SimTime::zero()
                                                 : frame_time);
  }
  return cfg_done;
}

}  // namespace aad::mcu
