#include "mcu/config_engine.h"

#include <algorithm>

#include "common/crc32.h"

namespace aad::mcu {

ConfigureResult ConfigEngine::configure(
    const memory::RomImage& rom, const memory::RomRecord& record,
    std::span<const fabric::FrameIndex> targets, fabric::Fabric& fabric,
    const memory::RomTiming& rom_timing, sim::Trace* trace,
    sim::SimTime start) {
  const auto& geometry = fabric.geometry();
  AAD_REQUIRE(record.frames == targets.size(),
              "target frame count does not match the record footprint");
  AAD_REQUIRE(record.clb_rows == geometry.clb_rows,
              "bitstream was built for a different device geometry");
  const std::size_t frame_bytes = geometry.frame_bytes();
  AAD_REQUIRE(record.raw_size ==
                  frame_bytes * static_cast<std::size_t>(record.frames),
              "record raw size inconsistent with footprint");

  const ByteSpan compressed = rom.payload(record);
  if (Crc32::compute(compressed) != record.payload_crc)
    AAD_FAIL(ErrorCode::kCorruptData,
             "compressed payload CRC mismatch (ROM corruption)");

  const auto codec = compress::make_codec(record.codec, frame_bytes);
  auto stream = codec->decompress_stream(compressed);
  if (stream->raw_size() != record.raw_size)
    AAD_FAIL(ErrorCode::kCorruptData,
             "compressed stream raw size disagrees with record");

  // Per-window stage durations.  Compressed bytes arrive from ROM roughly
  // evenly per window (the decoder consumes as it produces); the data path
  // below is exact, only the ROM-stage apportioning is averaged.
  const std::size_t windows = targets.size();
  const std::size_t rom_bytes_per_window =
      windows == 0 ? 0 : (compressed.size() + windows - 1) / windows;
  const sim::SimTime rom_t = rom_timing.read_time(rom_bytes_per_window);
  const double cpb = compress::decompress_cycles_per_byte(record.codec);
  const sim::SimTime dec_t = config_.engine_clock.cycles(
      static_cast<std::int64_t>(cpb * static_cast<double>(frame_bytes)));
  const sim::SimTime cfg_t = fabric.port().frame_time(geometry);

  ConfigureResult result;
  result.compressed_bytes = compressed.size();
  result.raw_bytes = record.raw_size;

  // Pipeline recurrence over the three stages.
  sim::SimTime rom_done = start;
  sim::SimTime dec_done = start;
  sim::SimTime cfg_done = start;

  Bytes window(frame_bytes);
  for (std::size_t w = 0; w < windows; ++w) {
    // Exact data path: pull one frame-sized window from the decompressor.
    std::size_t got = 0;
    while (got < frame_bytes) {
      const std::size_t n = stream->read(
          std::span<Byte>(window.data() + got, frame_bytes - got));
      if (n == 0)
        AAD_FAIL(ErrorCode::kCorruptData,
                 "configuration stream ended mid-frame");
      got += n;
    }
    const auto words = bitstream::bytes_to_words(window);

    // Difference-based flow: skip the port write if the frame already holds
    // exactly this configuration (readback compare).
    bool skip = false;
    if (config_.difference_based) {
      const auto current = fabric.memory().read_frame(targets[w]);
      skip = std::equal(words.begin(), words.end(), current.begin());
    }
    sim::SimTime this_cfg_t = cfg_t;
    if (skip) {
      ++result.frames_skipped;
      this_cfg_t = config_.engine_clock.cycles(static_cast<std::int64_t>(
          config_.compare_cycles_per_byte * static_cast<double>(frame_bytes)));
    } else {
      fabric.configure_frame(targets[w], words);
    }

    // Timing: stage chaining.
    const sim::SimTime rom_begin = rom_done;
    rom_done = rom_done + rom_t;
    const sim::SimTime dec_begin = std::max(rom_done, dec_done);
    dec_done = dec_begin + dec_t;
    const sim::SimTime cfg_begin = std::max(dec_done, cfg_done);
    cfg_done = cfg_begin + this_cfg_t;

    result.rom_bound += rom_t;
    result.decompress_bound += dec_t;
    result.config_bound += this_cfg_t;

    if (trace) {
      trace->record(sim::Stage::kRom, record.name + "/rom", rom_begin,
                    rom_done);
      trace->record(sim::Stage::kDecompress, record.name + "/dec", dec_begin,
                    dec_done);
      trace->record(sim::Stage::kConfigure,
                    record.name + "/frame" + std::to_string(targets[w]),
                    cfg_begin, cfg_done);
    }
  }
  Byte probe;
  if (stream->read(std::span<Byte>(&probe, 1)) != 0)
    AAD_FAIL(ErrorCode::kCorruptData,
             "configuration stream longer than the record footprint");

  result.total = cfg_done - start;
  result.frames_written = windows - result.frames_skipped;
  return result;
}

}  // namespace aad::mcu
